package vsensor_test

// One benchmark per table/figure of the paper's evaluation (§6), plus the
// ablation benches listed in DESIGN.md. Each bench runs a scaled-down
// version of the corresponding vsexp experiment and reports the metrics the
// paper's artifact reports (who wins, by what factor) via b.ReportMetric.
// The full-size reproductions live in cmd/vsexp.

import (
	"testing"
	"time"

	vsensor "vsensor"
	"vsensor/internal/apps"
	"vsensor/internal/cluster"
	"vsensor/internal/detect"
	"vsensor/internal/instrument"
	"vsensor/internal/ir"
	"vsensor/internal/obs"
	"vsensor/internal/stats"
	"vsensor/internal/vm"
)

func mustRun(b *testing.B, src string, opt vsensor.Options) *vsensor.Report {
	b.Helper()
	rep, err := vsensor.Run(src, opt)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkFig01RunToRunVariance: repeated FT submissions on a noisy
// machine; reports the max/min run-time ratio (paper: >3x).
func BenchmarkFig01RunToRunVariance(b *testing.B) {
	app := apps.MustGet("FT", apps.Scale{Iters: 10, Work: 20})
	var ratio float64
	for i := 0; i < b.N; i++ {
		var times []float64
		for run := 0; run < 8; run++ {
			cl := cluster.New(cluster.Config{Nodes: 4, RanksPerNode: 4, Seed: int64(run), JitterPct: 0.02})
			h := uint64(run)*0x9e3779b97f4a7c15 + 12345
			if h%3 != 0 {
				cl.AddNetWindow(0, int64(3e12), 0.10+float64(h%50)/100.0)
			}
			rep := mustRun(b, app.Source, vsensor.Options{Ranks: 16, Cluster: cl, Uninstrumented: true})
			times = append(times, rep.TotalSeconds())
		}
		ratio = stats.MaxOverMin(times)
	}
	b.ReportMetric(ratio, "max/min")
}

// BenchmarkTable1Validation: per-app pipeline with PMU validation; reports
// the worst workload error across computation sensors (paper: <5%).
func BenchmarkTable1Validation(b *testing.B) {
	for _, name := range apps.Names() {
		b.Run(name, func(b *testing.B) {
			app := apps.MustGet(name, apps.Scale{Iters: 10, Work: 20})
			var worst float64 = 1
			for i := 0; i < b.N; i++ {
				rep := mustRun(b, app.Source, vsensor.Options{
					Ranks: 8, CollectRecords: true, PMUJitterPct: 0.005,
				})
				comp := map[int]bool{}
				for _, s := range rep.Instrumented.Sensors {
					if s.Type == ir.Computation {
						comp[s.ID] = true
					}
				}
				bySensor := map[int][]float64{}
				for _, r := range rep.Records {
					if comp[r.Sensor] && r.Instr > 0 {
						bySensor[r.Sensor] = append(bySensor[r.Sensor], float64(r.Instr))
					}
				}
				worst = 1
				for _, vs := range bySensor {
					if len(vs) > 1 {
						if ps := stats.MaxOverMin(vs); ps > worst {
							worst = ps
						}
					}
				}
			}
			b.ReportMetric((worst-1)*100, "workload-err-%")
		})
	}
}

// BenchmarkTable1Overhead: instrumented vs baseline execution time
// (paper: <4%).
func BenchmarkTable1Overhead(b *testing.B) {
	app := apps.MustGet("SP", apps.Scale{Iters: 15, Work: 40})
	var overhead float64
	for i := 0; i < b.N; i++ {
		base := mustRun(b, app.Source, vsensor.Options{Ranks: 8, Uninstrumented: true})
		ins := mustRun(b, app.Source, vsensor.Options{Ranks: 8})
		overhead = float64(ins.Result.TotalNs-base.Result.TotalNs) / float64(base.Result.TotalNs)
	}
	b.ReportMetric(overhead*100, "overhead-%")
}

// BenchmarkFig12Smoothing: coefficient of variation of a short sensor's
// series at 10µs vs 1000µs resolution (paper: smoothing flattens it).
func BenchmarkFig12Smoothing(b *testing.B) {
	src := `
func main() {
    for (int i = 0; i < 5000; i++) {
        for (int k = 0; k < 20; k++) {
            flops(1000);
        }
    }
}`
	var cvRaw, cvSmooth float64
	for i := 0; i < b.N; i++ {
		cl := cluster.New(cluster.Config{Nodes: 1, RanksPerNode: 1})
		cl.SetOSNoise(100_000, 12_000, 0.3)
		rep := mustRun(b, src, vsensor.Options{Ranks: 1, Cluster: cl, CollectRecords: true})
		cv := func(sliceNs int64) float64 {
			agg := map[int64][]float64{}
			for _, r := range rep.Records {
				agg[r.Start/sliceNs] = append(agg[r.Start/sliceNs], float64(r.Duration()))
			}
			var means []float64
			for _, vs := range agg {
				sum := 0.0
				for _, v := range vs {
					sum += v
				}
				means = append(means, sum/float64(len(vs)))
			}
			s := stats.Summarize(means)
			return s.StdDev / s.Mean
		}
		cvRaw, cvSmooth = cv(10_000), cv(1_000_000)
	}
	b.ReportMetric(cvRaw, "cv-10us")
	b.ReportMetric(cvSmooth, "cv-1000us")
}

// BenchmarkFig13DynamicRules: variance records flagged without vs with
// miss-rate grouping on the paper's worked example (3 vs 1).
func BenchmarkFig13DynamicRules(b *testing.B) {
	var plain, grouped int
	for i := 0; i < b.N; i++ {
		mk := func(buckets []float64) int {
			d := detect.New(0, []detect.Sensor{{ID: 0, Type: ir.Computation}},
				detect.Config{SliceNs: 1_000_000, VarianceThreshold: 0.7, MissRateBuckets: buckets}, nil)
			durs := []int64{3, 3, 7, 3, 5, 3, 7, 3, 3, 3}
			miss := []float64{.05, .05, .45, .05, .05, .05, .45, .05, .05, .05}
			for j := range durs {
				s := int64(j) * 1_000_000
				d.OnRecord(vm.Record{Sensor: 0, Start: s, End: s + durs[j]*100_000, MissRate: miss[j]})
			}
			d.Finish()
			return len(d.Events())
		}
		plain = mk(nil)
		grouped = mk([]float64{0.2, 1.01})
	}
	b.ReportMetric(float64(plain), "flagged-plain")
	b.ReportMetric(float64(grouped), "flagged-grouped")
}

// BenchmarkFig14CleanMatrix: matrix construction on a clean run; reports
// mean normalized performance (expected ~1.0).
func BenchmarkFig14CleanMatrix(b *testing.B) {
	app := apps.MustGet("CG", apps.Scale{Iters: 30, Work: 40})
	var mean float64
	for i := 0; i < b.N; i++ {
		cl := cluster.New(cluster.Config{Nodes: 4, RanksPerNode: 8, JitterPct: 0.03, Seed: 11})
		rep := mustRun(b, app.Source, vsensor.Options{Ranks: 32, Cluster: cl})
		mean = rep.Matrices(time.Millisecond)[ir.Computation].MeanPerf()
	}
	b.ReportMetric(mean, "mean-perf")
}

// BenchmarkFig16Fig17Distribution: duration/interval histograms across the
// eight apps; reports the fraction of sub-100µs durations (paper: most).
func BenchmarkFig16Fig17Distribution(b *testing.B) {
	var subFrac float64
	for i := 0; i < b.N; i++ {
		var sub, total int64
		for _, app := range apps.All(apps.Scale{Iters: 10, Work: 20}) {
			rep := mustRun(b, app.Source, vsensor.Options{Ranks: 8, CollectRecords: true})
			d := rep.Distribution()
			sub += d.Durations.Counts[0]
			total += d.Durations.Total()
		}
		subFrac = float64(sub) / float64(total)
	}
	b.ReportMetric(subFrac, "frac-sub100us")
}

// BenchmarkFig18Fig19Profiler: profiler MPI-time growth under noise
// injection (the misleading signal of Figs. 18-19).
func BenchmarkFig18Fig19Profiler(b *testing.B) {
	app := apps.MustGet("CG", apps.Scale{Iters: 60, Work: 80})
	var growth float64
	for i := 0; i < b.N; i++ {
		mk := func() *cluster.Cluster {
			return cluster.New(cluster.Config{Nodes: 8, RanksPerNode: 4})
		}
		clean := mustRun(b, app.Source, vsensor.Options{Ranks: 32, Cluster: mk(), Profile: true})
		total := clean.Result.TotalNs
		noisy := mk()
		noisy.AddCPUNoise(2, total/4, total/2, 0.3)
		rep := mustRun(b, app.Source, vsensor.Options{Ranks: 32, Cluster: noisy, Profile: true})
		growth = rep.Profiler.MeanMPISeconds() / clean.Profiler.MeanMPISeconds()
	}
	b.ReportMetric(growth, "mpi-time-growth")
}

// BenchmarkFig20NoiseLocated: vSensor localizes the injected block; reports
// whether the block was found at the right ranks (1 = yes).
func BenchmarkFig20NoiseLocated(b *testing.B) {
	app := apps.MustGet("CG", apps.Scale{Iters: 120, Work: 150})
	var located float64
	for i := 0; i < b.N; i++ {
		mk := func() *cluster.Cluster {
			return cluster.New(cluster.Config{Nodes: 8, RanksPerNode: 4})
		}
		clean := mustRun(b, app.Source, vsensor.Options{Ranks: 32, Cluster: mk(), Uninstrumented: true})
		total := clean.Result.TotalNs
		noisy := mk()
		noisy.AddCPUNoise(2, total/4, total/2, 0.3) // ranks 8..11
		rep := mustRun(b, app.Source, vsensor.Options{Ranks: 32, Cluster: noisy})
		located = 0
		m := rep.Matrices(2 * time.Millisecond)[ir.Computation]
		for _, blk := range m.LowBlocks(0.8, 0.02) {
			if blk.FirstRank <= 11 && blk.LastRank >= 8 {
				located = 1
			}
		}
	}
	b.ReportMetric(located, "block-located")
}

// BenchmarkTraceVolume: tracer bytes over vSensor bytes on the same run
// (paper: 501.5 MB vs 8.8 MB = 57x).
func BenchmarkTraceVolume(b *testing.B) {
	app := apps.MustGet("CG", apps.Scale{Iters: 100, Work: 60})
	var ratio float64
	for i := 0; i < b.N; i++ {
		rep := mustRun(b, app.Source, vsensor.Options{Ranks: 16, Trace: true})
		ratio = float64(rep.Tracer.Bytes()) / float64(rep.DataVolume())
	}
	b.ReportMetric(ratio, "trace/vsensor")
}

// BenchmarkFig21BadNode: the bad-node case; reports the improvement from
// removing the node (paper: 21%).
func BenchmarkFig21BadNode(b *testing.B) {
	app := apps.MustGet("CG", apps.Scale{Iters: 40, Work: 60})
	var improvement float64
	for i := 0; i < b.N; i++ {
		run := func(bad bool) *vsensor.Report {
			cl := cluster.New(cluster.Config{Nodes: 8, RanksPerNode: 4})
			if bad {
				cl.SetNodeMemSpeed(5, 0.55)
			}
			return mustRun(b, app.Source, vsensor.Options{Ranks: 32, Cluster: cl})
		}
		bad, good := run(true), run(false)
		improvement = 1 - good.TotalSeconds()/bad.TotalSeconds()
	}
	b.ReportMetric(improvement*100, "improvement-%")
}

// BenchmarkFig22NetworkDegradation: FT under a congestion window; reports
// the slowdown factor (paper: 3.37x).
func BenchmarkFig22NetworkDegradation(b *testing.B) {
	app := apps.MustGet("FT", apps.Scale{Iters: 25, Work: 30})
	var slowdown float64
	for i := 0; i < b.N; i++ {
		mk := func() *cluster.Cluster {
			return cluster.New(cluster.Config{Nodes: 8, RanksPerNode: 8})
		}
		clean := mustRun(b, app.Source, vsensor.Options{Ranks: 64, Cluster: mk(), Uninstrumented: true})
		cl := mk()
		cl.AddNetWindow(clean.Result.TotalNs/5, int64(1)<<62, 0.25)
		congested := mustRun(b, app.Source, vsensor.Options{Ranks: 64, Cluster: cl, Uninstrumented: true})
		slowdown = congested.TotalSeconds() / clean.TotalSeconds()
	}
	b.ReportMetric(slowdown, "slowdown-x")
}

// BenchmarkOverheadScaling: overhead at increasing rank counts (paper:
// <4% up to 16,384 processes; use -timeout and larger -benchtime for the
// 16k point via cmd/vsexp -big).
func BenchmarkOverheadScaling(b *testing.B) {
	app := apps.MustGet("SP", apps.Scale{Iters: 10, Work: 30})
	for _, ranks := range []int{4, 32, 256} {
		b.Run(itoa(ranks), func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				nodes := ranks / 8
				if nodes < 1 {
					nodes = 1
				}
				mk := func() *cluster.Cluster {
					return cluster.New(cluster.Config{Nodes: nodes, RanksPerNode: (ranks + nodes - 1) / nodes})
				}
				base := mustRun(b, app.Source, vsensor.Options{Ranks: ranks, Cluster: mk(), Uninstrumented: true})
				ins := mustRun(b, app.Source, vsensor.Options{Ranks: ranks, Cluster: mk()})
				overhead = float64(ins.Result.TotalNs-base.Result.TotalNs) / float64(base.Result.TotalNs)
			}
			b.ReportMetric(overhead*100, "overhead-%")
		})
	}
}

// BenchmarkObsOverhead: wall-clock cost of attaching the observability
// layer to a full instrumented run. Virtual time is identical by
// construction (obs charges no simulated cost); this measures the real
// host-time overhead of the counters, spans and per-record hooks, which
// must stay within the paper's <4% envelope.
func BenchmarkObsOverhead(b *testing.B) {
	app := apps.MustGet("SP", apps.Scale{Iters: 15, Work: 40})
	// Interleave plain and obs-attached runs within one loop so clock
	// drift and frequency scaling hit both sides equally.
	var plain, withObs time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		mustRun(b, app.Source, vsensor.Options{Ranks: 8})
		plain += time.Since(start)

		start = time.Now()
		mustRun(b, app.Source, vsensor.Options{Ranks: 8, Obs: obs.New()})
		withObs += time.Since(start)
	}
	if plain > 0 {
		b.ReportMetric(float64(withObs-plain)/float64(plain)*100, "overhead-%")
	}
}

// ---------- ablations ----------

// BenchmarkAblationMaxDepth: sensors instrumented vs max-depth (A1).
func BenchmarkAblationMaxDepth(b *testing.B) {
	app := apps.MustGet("CG", apps.Scale{Iters: 10, Work: 20})
	for _, depth := range []int{1, 3} {
		b.Run(itoa(depth), func(b *testing.B) {
			var sensors float64
			for i := 0; i < b.N; i++ {
				rep := mustRun(b, app.Source, vsensor.Options{
					Ranks:      4,
					Instrument: instrument.Config{MaxDepth: depth, KeepNested: true},
				})
				sensors = float64(len(rep.Instrumented.Sensors))
			}
			b.ReportMetric(sensors, "sensors")
		})
	}
}

// BenchmarkAblationSliceSize: false-positive variance events on a clean
// cluster with OS noise, vs smoothing slice (A2).
func BenchmarkAblationSliceSize(b *testing.B) {
	app := apps.MustGet("CG", apps.Scale{Iters: 20, Work: 40})
	for _, sliceNs := range []int64{10_000, 1_000_000} {
		b.Run(itoa(int(sliceNs/1000))+"us", func(b *testing.B) {
			var events float64
			for i := 0; i < b.N; i++ {
				cl := cluster.New(cluster.Config{Nodes: 2, RanksPerNode: 4})
				cl.SetOSNoise(100_000, 10_000, 0.3)
				rep := mustRun(b, app.Source, vsensor.Options{
					Ranks: 8, Cluster: cl,
					Detect: detect.Config{SliceNs: sliceNs},
				})
				events = float64(len(rep.Events()))
			}
			b.ReportMetric(events, "false-positives")
		})
	}
}

// BenchmarkAblationNestedSensors: record volume with nested sensors kept
// vs outermost-only (A3).
func BenchmarkAblationNestedSensors(b *testing.B) {
	app := apps.MustGet("CG", apps.Scale{Iters: 10, Work: 20})
	for _, keep := range []bool{false, true} {
		name := "outermost"
		if keep {
			name = "nested"
		}
		b.Run(name, func(b *testing.B) {
			var recs float64
			for i := 0; i < b.N; i++ {
				rep := mustRun(b, app.Source, vsensor.Options{
					Ranks: 4, CollectRecords: true,
					Instrument: instrument.Config{KeepNested: keep},
				})
				recs = float64(len(rep.Records))
			}
			b.ReportMetric(recs, "records")
		})
	}
}

// BenchmarkAblationBatching: server messages with and without batching (A4).
func BenchmarkAblationBatching(b *testing.B) {
	app := apps.MustGet("CG", apps.Scale{Iters: 30, Work: 40})
	for _, batch := range []int{1, 64} {
		b.Run("batch"+itoa(batch), func(b *testing.B) {
			var msgs float64
			for i := 0; i < b.N; i++ {
				rep := mustRun(b, app.Source, vsensor.Options{Ranks: 8, BatchSize: batch})
				msgs = float64(rep.Server.Messages())
			}
			b.ReportMetric(msgs, "messages")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
