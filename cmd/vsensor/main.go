// Command vsensor is the command-line front end to the vSensor pipeline.
//
// Usage:
//
//	vsensor analyze    [flags] prog.mc   — identify v-sensors, print a table
//	vsensor instrument [flags] prog.mc   — emit instrumented source
//	vsensor run        [flags] prog.mc   — run with on-line detection
//	vsensor serve      [flags]           — host a multi-tenant analysis service over TCP
//	vsensor trace      [flags] run.json  — print sampled record journeys from a trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	vsensor "vsensor"
	"vsensor/internal/analysis"
	"vsensor/internal/cluster"
	"vsensor/internal/instrument"
	"vsensor/internal/ir"
	"vsensor/internal/netsrv"
	"vsensor/internal/obs"
	"vsensor/internal/rundata"
	"vsensor/internal/server"
	"vsensor/internal/transport"
	"vsensor/internal/validate"
	"vsensor/internal/vis"
	"vsensor/internal/vm"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: vsensor <command> [flags] <prog.mc | data-file | scenario>

analyze     identify v-sensors and print the identification table
instrument  emit instrumented mini-C source with vs_tick/vs_tock probes
run         execute on the simulated cluster with on-line detection
serve       host a standalone multi-tenant analysis service over TCP ('vsensor serve -h' for its flags)
validate    check fixed-workload property (PMU ratios, message sizes)
scenario    run a built-in evaluation scenario ('scenario list' to list)
report      regenerate the variance report from saved run data
trace       print per-record lineage timelines from a -trace-json file

flags:
`)
	flag.PrintDefaults()
	os.Exit(2)
}

var (
	ranks     = flag.Int("ranks", 8, "number of simulated MPI ranks")
	nodes     = flag.Int("nodes", 0, "cluster nodes (default ranks/8, min 1)")
	maxDepth  = flag.Int("maxdepth", 0, "instrumentation depth cutoff (0 = default 3)")
	staticRls = flag.Bool("staticrules", false, "enable extra static rules (communication peer)")
	slice     = flag.Duration("slice", time.Millisecond, "smoothing time slice")
	col       = flag.Duration("col", 2*time.Millisecond, "matrix column resolution")
	badNode   = flag.Int("badnode", -1, "degrade this node's memory to 55%")
	netWindow = flag.String("netwindow", "", "degrade network to 15% during A,B (fractions of expected run)")
	matrix    = flag.Bool("matrix", false, "print ASCII performance matrices")
	csvOut    = flag.String("csv", "", "write the computation matrix as CSV to this file")
	pngOut    = flag.String("png", "", "write per-type matrix heatmaps as PNG files with this prefix")
	saveOut   = flag.String("save", "", "save the run's performance data for later 'vsensor report'")
	quiet     = flag.Bool("q", false, "suppress program print() output")
	httpAddr  = flag.String("http", "", "serve the live introspection endpoint on this address (/metrics, /status, /records, /outliers)")
	httpHold  = flag.Duration("http-hold", 0, "keep the -http endpoint serving this long after the run finishes (for external pollers)")
	traceJSON = flag.String("trace-json", "", "write pipeline spans as Chrome trace_event JSON to this file")

	serverShards = flag.Int("server-shards", 0, "analysis-server ingest shards, rounded up to a power of two (0 = default 16)")

	faults = flag.String("faults", "", "inject record-transport faults, e.g. "+
		"drop=0.2,dup=0.05,reorder=0.1,corrupt=0.02,delay=20us,seed=7,crashafter=100,crashdown=20")
	batchSize    = flag.Int("batch", 0, "records per analysis-server batch/frame (0 = default 64; 1 disables batching)")
	retryMax     = flag.Int("retry-max", 0, "transport delivery retries per batch before it parks in the retransmit buffer (0 = default 8)")
	retryTimeout = flag.Duration("retry-timeout", 0, "virtual ack timeout charged per failed transport attempt (0 = default 50µs)")
	retryBackoff = flag.Duration("retry-backoff", 0, "initial transport retry backoff, doubling per retry (0 = default 20µs)")
	bufferCap    = flag.Int("buffer-cap", 0, "transport retransmit-buffer cap per rank; oldest frame dropped beyond it (0 = default 64)")

	lineage      = flag.Bool("lineage", false, "enable record-lineage tracing: deterministically sample frames and record every hop of their journey in the flight recorder")
	lineageEvery = flag.Uint64("lineage-every", 0, "sample one frame in N for lineage (0 = default 256; 1 traces every frame)")
	lineageSeed  = flag.Uint64("lineage-seed", 0, "lineage sampler seed; same seed + workload = same sampled set")
	flightCap    = flag.Int("flight-cap", 0, "flight-recorder span capacity, rounded up to a power of two (0 = default 4096)")
	traceID      = flag.String("trace-id", "", "restrict 'vsensor trace' to one hex trace ID")

	wal           = flag.Bool("wal", false, "make the analysis server durable: WAL + snapshots; crashafter faults wipe and recover it")
	snapshotEvery = flag.Int("snapshot-every", 0, "frames between automatic server checkpoints; needs -wal (0 = default 256, negative disables)")
	syncEvery     = flag.Int("sync-every", 0, "WAL entries between disk syncs; needs -wal (0 = default 1: sync per delivery outcome)")
	flushEvery    = flag.Int("flush-every", 0, "delivery outcomes per WAL commit group, one write+sync each; needs -wal (0 = default 1: per-op)")
	coalesce      = flag.Bool("coalesce", false, "collapse runs of heartbeat/duplicate/reject outcomes into count-delta WAL entries; needs -wal, implies group commit")
	lease         = flag.Duration("lease", 0, "rank liveness lease; ranks heartbeat every lease/2, go suspect after 1 lease of silence, dead after 3")

	connectAddr = flag.String("connect", "", "deliver records over TCP to an external 'vsensor serve' analysis service at this address (the run then has no in-process server)")
	runIDFlag   = flag.String("run-id", "", "run identifier for the networked session (needs -connect; default 'local')")

	reconnect        = flag.Bool("reconnect", false, "self-heal the networked session: auto-redial with jittered backoff on connection failures and resume the run at the server's durable LSN (needs -connect)")
	dialRetryBudget  = flag.Duration("dial-retry-budget", 0, "total retry budget per dial — and per outage with -reconnect (0 = default 10s; needs -connect)")
	dialRetryBackoff = flag.Duration("dial-retry-backoff", 0, "first dial-retry backoff, doubling with jitter per attempt when the server sends no retry-after hint (0 = default 5ms; needs -connect)")
)

// applyTransport maps the -faults / retry / server knobs onto the run
// options, rejecting nonsense values before the pipeline sees them.
func applyTransport(opts *vsensor.Options) {
	if *serverShards < 0 {
		fatal(fmt.Errorf("bad -server-shards %d: shard count cannot be negative", *serverShards))
	}
	opts.ServerShards = *serverShards
	if *retryMax < 0 || *bufferCap < 0 || *retryTimeout < 0 || *retryBackoff < 0 {
		fatal(fmt.Errorf("transport knobs must be >= 0 (retry-max %d, buffer-cap %d, retry-timeout %s, retry-backoff %s)",
			*retryMax, *bufferCap, *retryTimeout, *retryBackoff))
	}
	if *batchSize < 0 {
		fatal(fmt.Errorf("bad -batch %d: batch size cannot be negative", *batchSize))
	}
	opts.BatchSize = *batchSize
	if *snapshotEvery != 0 && !*wal {
		fatal(fmt.Errorf("-snapshot-every %d needs -wal (there is no journal to checkpoint)", *snapshotEvery))
	}
	if *syncEvery < 0 {
		fatal(fmt.Errorf("bad -sync-every %d: sync cadence cannot be negative", *syncEvery))
	}
	if *flushEvery < 0 {
		fatal(fmt.Errorf("bad -flush-every %d: commit-group size cannot be negative", *flushEvery))
	}
	if (*syncEvery != 0 || *flushEvery != 0 || *coalesce) && !*wal {
		fatal(fmt.Errorf("-sync-every/-flush-every/-coalesce need -wal (there is no journal to tune)"))
	}
	if *lease < 0 {
		fatal(fmt.Errorf("bad -lease %s: lease cannot be negative", *lease))
	}
	if *httpHold < 0 {
		fatal(fmt.Errorf("bad -http-hold %s: hold cannot be negative", *httpHold))
	}
	if *httpHold > 0 && *httpAddr == "" {
		fatal(fmt.Errorf("-http-hold needs -http (there is no endpoint to hold open)"))
	}
	if *runIDFlag != "" && *connectAddr == "" {
		fatal(fmt.Errorf("-run-id needs -connect (there is no networked session to name)"))
	}
	if *connectAddr != "" && *wal {
		fatal(fmt.Errorf("-wal tunes the in-process server; a -connect run has none (configure durability on the serve side)"))
	}
	opts.Connect = *connectAddr
	opts.RunID = *runIDFlag
	if *dialRetryBudget < 0 || *dialRetryBackoff < 0 {
		fatal(fmt.Errorf("dial-retry knobs must be >= 0 (dial-retry-budget %s, dial-retry-backoff %s)",
			*dialRetryBudget, *dialRetryBackoff))
	}
	if (*reconnect || *dialRetryBudget != 0 || *dialRetryBackoff != 0) && *connectAddr == "" {
		fatal(fmt.Errorf("-reconnect/-dial-retry-budget/-dial-retry-backoff need -connect (there is no networked dial to shape)"))
	}
	retry := netsrv.RetryPolicy{MaxElapsed: *dialRetryBudget, BackoffBase: *dialRetryBackoff}
	if *reconnect {
		opts.Reconnect = &netsrv.ReconnectConfig{Retry: retry}
	} else if *dialRetryBudget != 0 || *dialRetryBackoff != 0 {
		opts.DialRetry = &retry
	}
	transportTuned := *retryMax != 0 || *retryTimeout != 0 || *retryBackoff != 0 || *bufferCap != 0 || *lease != 0
	if *faults != "" {
		plan, err := transport.ParsePlan(*faults)
		if err != nil {
			fatal(err)
		}
		opts.Faults = &plan
	}
	if transportTuned {
		opts.Transport = &transport.Config{
			MaxRetries:    *retryMax,
			TimeoutNs:     retryTimeout.Nanoseconds(),
			BackoffBaseNs: retryBackoff.Nanoseconds(),
			BufferCap:     *bufferCap,
			LeaseNs:       lease.Nanoseconds(),
		}
	}
	if *wal {
		opts.Durability = &server.DurabilityConfig{
			SnapshotEvery: *snapshotEvery,
			SyncEvery:     *syncEvery,
			FlushEvery:    *flushEvery,
			Coalesce:      *coalesce,
		}
	}
	applyLineage(opts)
}

// applyLineage maps the -lineage knobs onto the run options.
func applyLineage(opts *vsensor.Options) {
	if !*lineage {
		if *lineageEvery != 0 || *lineageSeed != 0 || *flightCap != 0 {
			fatal(fmt.Errorf("-lineage-every/-lineage-seed/-flight-cap need -lineage"))
		}
		return
	}
	if *flightCap < 0 {
		fatal(fmt.Errorf("bad -flight-cap %d: capacity cannot be negative", *flightCap))
	}
	opts.Lineage = &obs.LineageConfig{
		SampleEvery: *lineageEvery,
		Seed:        *lineageSeed,
		FlightCap:   *flightCap,
	}
}

// printLineage reports the flight recorder's view after a lineage-enabled
// run.
func printLineage(rep *vsensor.Report) {
	lin := rep.Lineage()
	if lin == nil {
		return
	}
	if rep.Server != nil {
		// Evaluate the final inter-process verdict so sampled journeys end
		// with their epoch close/verdict spans before the recorder is read
		// (epochs only close when a query passes the watermark over them).
		_ = rep.Server.InterProcessOutliers(0.8)
	}
	st := lin.Stats()
	fmt.Printf("lineage: sampled %d frames (1 in %d, seed %d), %d spans recorded (flight cap %d)\n",
		st.SampledFrames, st.SampleEvery, st.Seed, st.Spans, st.FlightCap)
}

// printCoverage reports delivery coverage after a transport-routed run,
// plus durability, liveness, and report-cache summaries when those layers
// were on. Everything reads through the server's versioned snapshot — the
// same render /status and /outliers serve.
func printCoverage(rep *vsensor.Report) {
	snap := rep.Snapshot()
	if rep.Link == nil && snap == nil {
		return
	}
	if rep.Link != nil && snap != nil {
		cov := snap.Coverage
		fmt.Printf("transport: plan [%s], coverage %.1f%% (%d/%d records, %d dup frames, %d checksum rejects)\n",
			rep.Link.Plan(), cov.Fraction()*100, cov.IngestedRecords, cov.ExpectedRecords,
			cov.DupFrames, cov.ChecksumErrors)
		if ds := snap.Durability; ds.Enabled {
			fmt.Printf("durability: gen %d, lsn %d, %d WAL entries (%d bytes, %d syncs), %d snapshots, %d recoveries\n",
				ds.Generation, ds.LSN, ds.WALEntries, ds.WALBytes, ds.Syncs, ds.Snapshots, ds.Recoveries)
			if ds.FlushEvery > 1 {
				fmt.Printf("group commit: %d outcomes/group, %d group commits, %d outcomes coalesced (coalesce=%v)\n",
					ds.FlushEvery, ds.GroupCommits, ds.CoalescedEntries, ds.Coalesce)
			}
			if ds.Recoveries > 0 {
				lr := ds.LastRecovery
				fmt.Printf("last recovery: snapshot gen %d + %d WAL entries replayed (%d frames, %d records, %d bytes truncated)\n",
					lr.SnapshotGen, lr.WALEntriesReplayed, lr.FramesReplayed, lr.RecordsRecovered, lr.TruncatedBytes)
			}
		}
		if rep.Server.Heartbeats() > 0 {
			ls := snap.Liveness
			fmt.Printf("liveness: %d alive, %d suspect, %d dead\n", ls.Alive, ls.Suspect, ls.Dead)
			out := snap.Report
			if out.Degraded {
				fmt.Printf("DEGRADED verdict: dead ranks %v excluded from watermark, confidence %.1f%% (coverage %.1f%% x liveness %.1f%%)\n",
					out.DeadRanks, out.Confidence*100, out.Coverage.Fraction()*100, out.LivenessConfidence*100)
			}
		}
	}
	if rep.Server != nil {
		st := rep.Server.SnapshotStats()
		fmt.Printf("report cache: gen %d, %d reads, %d rebuilds (hit rate %.1f%%)\n",
			st.Gen, st.Reads, st.Builds, st.HitRate()*100)
	}
}

// setupObs builds the observability bundle when -http or -trace-json is
// set, starting the HTTP endpoint immediately so it is pollable while the
// run executes. The returned finish func stops the endpoint and writes the
// trace file.
func setupObs() (*obs.Obs, func()) {
	if *httpAddr == "" && *traceJSON == "" {
		return nil, func() {}
	}
	o := obs.New()
	var srv *obs.HTTPServer
	if *httpAddr != "" {
		var err error
		srv, err = obs.Serve(*httpAddr, o)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "introspection: http://%s/ (/metrics /status /records /outliers)\n", srv.Addr())
	}
	return o, func() {
		if *traceJSON != "" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				fatal(err)
			}
			// With lineage on, the sampled records' journeys ride along as
			// their own process row in the Chrome trace.
			if err := o.Tracer().WriteChromeMerged(f, o.Lineage()); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			extra := ""
			if flight, _ := o.Lineage().Snapshot(nil, 0); len(flight) > 0 {
				extra = fmt.Sprintf(" + %d lineage spans", len(flight))
			}
			fmt.Printf("wrote %s (%d spans%s)\n", *traceJSON, o.Tracer().Len(), extra)
		}
		if srv != nil {
			if *httpHold > 0 {
				// The run's summary lines are already out (finish is
				// deferred after them); keep serving the final snapshot so
				// external pollers can revalidate against the last ETag.
				time.Sleep(*httpHold)
			}
			srv.Close()
		}
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if cmd == "serve" {
		doServe(os.Args[2:])
		return
	}
	flag.CommandLine.Parse(os.Args[2:])
	if flag.NArg() != 1 {
		usage()
	}
	if cmd == "report" {
		doReport(flag.Arg(0))
		return
	}
	if cmd == "trace" {
		doTrace(flag.Arg(0))
		return
	}
	if cmd == "scenario" {
		doScenario(flag.Arg(0))
		return
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)

	acfg := analysis.Config{UseStaticRules: *staticRls}
	icfg := instrument.Config{MaxDepth: *maxDepth}

	switch cmd {
	case "analyze":
		doAnalyze(src, acfg, icfg)
	case "instrument":
		out, err := vsensor.InstrumentSource(src, acfg, icfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case "run":
		doRun(src, acfg, icfg)
	case "validate":
		doValidate(src, acfg, icfg)
	default:
		usage()
	}
}

// doServe hosts the standalone multi-tenant analysis service: one TCP
// listener multiplexing many concurrent runs, each admitted by its vSS1
// hello into its own sharded server. It serves until SIGINT/SIGTERM, then
// refuses new work and drains cleanly. The bound address is announced on
// stdout as "serving: <addr>" so scripts (and the e2e tests) can dial a
// :0 listener.
func doServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "TCP address to listen on")
	minWorkers := fs.Int("min-workers", 0, "worker-pool floor (0 = default 1)")
	maxWorkers := fs.Int("max-workers", 0, "worker-pool ceiling; connections beyond queue+pool are refused with vSE1 busy (0 = default 8)")
	acceptQueue := fs.Int("accept-queue", 0, "bounded accept queue depth; a full queue sheds with an explicit refusal (0 = default 64)")
	maxRuns := fs.Int("max-runs", 0, "concurrent run (tenant) cap (0 = unlimited)")
	maxRunSessions := fs.Int("max-run-sessions", 0, "concurrent sessions per run (0 = unlimited)")
	retryAfterMs := fs.Int("retry-after-ms", 0, "retry-after hint carried in vSE1 busy refusals, milliseconds (0 = default 50)")
	idleTimeout := fs.Duration("idle-timeout", 0, "dead-peer reaper: close sessions that do not complete an envelope (data or heartbeat) within this window (0 = disabled)")
	shards := fs.Int("server-shards", 0, "ingest shards per tenant server, rounded up to a power of two (0 = default 16)")
	httpAddr := fs.String("http", "", "serve the live introspection endpoint on this address (/metrics, /status)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fatal(fmt.Errorf("serve takes no positional arguments (got %q)", fs.Args()))
	}
	for name, v := range map[string]int{
		"-min-workers": *minWorkers, "-max-workers": *maxWorkers,
		"-accept-queue": *acceptQueue, "-max-runs": *maxRuns,
		"-max-run-sessions": *maxRunSessions, "-retry-after-ms": *retryAfterMs,
		"-server-shards": *shards,
	} {
		if v < 0 {
			fatal(fmt.Errorf("bad %s %d: cannot be negative", name, v))
		}
	}
	if *idleTimeout < 0 {
		fatal(fmt.Errorf("bad -idle-timeout %s: cannot be negative", *idleTimeout))
	}
	svc, err := netsrv.Listen(*listen, netsrv.Config{
		MinWorkers:     *minWorkers,
		MaxWorkers:     *maxWorkers,
		AcceptQueue:    *acceptQueue,
		MaxRuns:        *maxRuns,
		MaxRunSessions: *maxRunSessions,
		RetryAfterMs:   uint32(*retryAfterMs),
		IdleSession:    *idleTimeout,
		Shards:         *shards,
	})
	if err != nil {
		fatal(err)
	}
	if *httpAddr != "" {
		o := obs.New()
		hs, err := obs.Serve(*httpAddr, o)
		if err != nil {
			fatal(err)
		}
		defer hs.Close()
		svc.SetObs(o)
		o.SetStatus(func() any {
			return map[string]any{"net": svc.StatusMap(), "runs": svc.RunIDs()}
		})
		fmt.Fprintf(os.Stderr, "introspection: http://%s/ (/metrics /status)\n", hs.Addr())
	}
	fmt.Printf("serving: %s\n", svc.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	st := svc.Stats()
	if err := svc.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("shutdown: %s after %d sessions over %d runs (%d shed)\n",
		got, st.Sessions, st.Runs, st.Shed)
}

// doValidate runs the §6.2 validation: execute with simulated PMU jitter
// and check that every instrumented computation sensor's instruction counts
// are fixed, and every network operation's message sizes are constant.
func doValidate(src string, acfg analysis.Config, icfg instrument.Config) {
	rep, err := vsensor.Run(src, vsensor.Options{
		Ranks:          *ranks,
		Analysis:       acfg,
		Instrument:     icfg,
		CollectRecords: true,
		PMUJitterPct:   0.005,
		Trace:          true,
	})
	if err != nil {
		fatal(err)
	}
	res := validate.Records(rep.Instrumented, rep.Records, 1.02)
	fmt.Printf("computation sensors: Pm = %.4f (workload max error %.2f%%)\n",
		res.Pm, res.WorkloadMaxError()*100)
	if len(res.Violations) == 0 {
		fmt.Println("no computation sensor exceeded the tolerance")
	}
	for _, v := range res.Violations {
		fmt.Printf("VIOLATION: sensor %d rank %d Ps=%.3f over %d executions\n",
			v.Sensor, v.Rank, v.Ps(), v.Executions)
	}
	// Network sensors: message-size constancy from the traced events.
	events := collectEvents(rep)
	fixed, violations := validate.NetSizes(events)
	if fixed {
		fmt.Println("network operations: all message sizes constant")
	} else {
		for _, v := range violations {
			fmt.Printf("VIOLATION: varying message size at %s\n", v)
		}
	}
}

func collectEvents(rep *vsensor.Report) []vm.Event {
	if rep.Tracer == nil {
		return nil
	}
	// The tracer stores events internally; re-decode them from its
	// encoding-independent accessor.
	return rep.TraceEvents()
}

// doScenario runs a built-in evaluation scenario end-to-end.
func doScenario(name string) {
	if name == "list" || name == "" {
		fmt.Println("available scenarios:")
		for _, n := range vsensor.ScenarioNames() {
			fmt.Println(" ", n)
		}
		return
	}
	o, finishObs := setupObs()
	opts := vsensor.Options{Obs: o}
	applyTransport(&opts)
	rep, baseline, err := vsensor.RunScenario(name, opts)
	if err != nil {
		fatal(err)
	}
	defer finishObs()
	printCoverage(rep)
	printLineage(rep)
	if baseline != nil {
		fmt.Printf("baseline: %.3f ms, injected: %.3f ms (%.2fx)\n",
			baseline.TotalSeconds()*1e3, rep.TotalSeconds()*1e3,
			rep.TotalSeconds()/baseline.TotalSeconds())
	} else {
		fmt.Printf("run: %.3f ms\n", rep.TotalSeconds()*1e3)
	}
	fmt.Print(rep.ReportText(*col, 8))
	if *matrix {
		for _, typ := range []ir.SnippetType{ir.Computation, ir.Network, ir.IO} {
			if m := rep.Matrices(*col)[typ]; m != nil {
				fmt.Println()
				fmt.Print(m.ASCII(32, 78))
			}
		}
	}
}

// doReport regenerates the variance report from saved performance data.
func doReport(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	d, err := rundata.Load(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("saved run: %d ranks, %.3f ms, %d sensors, %d slice records\n",
		d.Ranks, float64(d.TotalNs)/1e6, len(d.Sensors), len(d.Records))
	mats := vis.Build(d.Records, d.SensorTypes(), d.Ranks, col.Nanoseconds())
	fmt.Print(vis.RenderReport(vis.Diagnose(mats, vis.ReportConfig{}), 0))
	if *matrix {
		for _, typ := range []ir.SnippetType{ir.Computation, ir.Network, ir.IO} {
			if m := mats[typ]; m != nil {
				fmt.Println()
				fmt.Print(m.ASCII(32, 78))
			}
		}
	}
}

// doTrace prints per-record lineage timelines from a Chrome trace_event
// file written by -trace-json on a lineage-enabled run. Events carrying a
// lineage trace ID (the sampled-records process row) are grouped by that ID
// and replayed as a relative-time journey: one line per hop, in order.
func doTrace(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(fmt.Errorf("%s: not a Chrome trace_event file: %w", path, err))
	}
	type hop struct {
		ts, dur float64
		stage   string
		rank    int
		try     float64
		arg     float64
		hasTry  bool
		hasArg  bool
	}
	journeys := make(map[string][]hop)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Args == nil {
			continue
		}
		id, ok := ev.Args["trace"].(string)
		if !ok || id == "" {
			continue
		}
		if *traceID != "" && !strings.EqualFold(strings.TrimLeft(id, "0"), strings.TrimLeft(*traceID, "0")) {
			continue
		}
		h := hop{ts: ev.Ts, dur: ev.Dur, stage: ev.Name, rank: ev.Tid}
		if v, ok := ev.Args["try"].(float64); ok {
			h.try, h.hasTry = v, true
		}
		if v, ok := ev.Args["arg"].(float64); ok {
			h.arg, h.hasArg = v, true
		}
		journeys[id] = append(journeys[id], h)
	}
	if len(journeys) == 0 {
		fmt.Printf("%s: no lineage spans (was the run started with -lineage and -trace-json?)\n", path)
		return
	}
	ids := make([]string, 0, len(journeys))
	for id := range journeys {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Printf("%d sampled record journey(s) in %s\n", len(ids), path)
	for _, id := range ids {
		hops := journeys[id]
		sort.SliceStable(hops, func(i, j int) bool { return hops[i].ts < hops[j].ts })
		fmt.Printf("\ntrace %s (%d hops)\n", id, len(hops))
		t0 := hops[0].ts
		for _, h := range hops {
			line := fmt.Sprintf("  %+10.1fµs  %-13s rank %d", h.ts-t0, h.stage, h.rank)
			if h.hasTry {
				line += fmt.Sprintf("  try %d", int(h.try))
			}
			if h.dur > 0 {
				line += fmt.Sprintf("  (%.1fµs)", h.dur)
			}
			if h.hasArg {
				line += fmt.Sprintf("  arg %d", int64(h.arg))
			}
			fmt.Println(line)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsensor:", err)
	os.Exit(1)
}

func doAnalyze(src string, acfg analysis.Config, icfg instrument.Config) {
	res, err := vsensor.Analyze(src, acfg)
	if err != nil {
		fatal(err)
	}
	ins := instrument.Apply(res, icfg)
	fmt.Printf("snippets: %d\nv-sensors: %d\nglobal v-sensors: %d\ninstrumented: %d (%s)\n\n",
		len(res.Snippets), len(res.Sensors), len(res.GlobalSensors), len(ins.Sensors), ins.TypeSummary())
	fmt.Printf("%-5s %-26s %-5s %-6s %-8s %s\n", "ID", "location", "type", "depth", "fixed/ps", "deps")
	for _, s := range ins.Sensors {
		fmt.Printf("%-5d %-26s %-5s %-6d %-8v %s\n",
			s.ID, s.Name, s.Type, s.Snippet.Depth, s.ProcessFixed, s.Snippet.Deps)
	}
}

func doRun(src string, acfg analysis.Config, icfg instrument.Config) {
	nNodes := *nodes
	if nNodes <= 0 {
		nNodes = *ranks / 8
		if nNodes < 1 {
			nNodes = 1
		}
	}
	rpn := (*ranks + nNodes - 1) / nNodes
	if *badNode >= nNodes {
		fatal(fmt.Errorf("conflicting knobs: -badnode %d but the cluster has %d nodes (see -nodes/-ranks)", *badNode, nNodes))
	}
	mk := func() *cluster.Cluster {
		return cluster.New(cluster.Config{Nodes: nNodes, RanksPerNode: rpn})
	}

	opts := vsensor.Options{Ranks: *ranks, Cluster: mk()}
	if !*quiet {
		opts.Stdout = os.Stdout
	}
	opts.Detect.SliceNs = slice.Nanoseconds()
	o, finishObs := setupObs()
	defer finishObs()
	opts.Obs = o
	applyTransport(&opts)

	// Variance injection needs the expected run length: do a quick clean
	// run first when a relative window was requested.
	if *netWindow != "" || *badNode >= 0 {
		base, err := vsensor.Run(src, vsensor.Options{Ranks: *ranks, Cluster: mk(), Uninstrumented: true})
		if err != nil {
			fatal(err)
		}
		cl := mk()
		if *badNode >= 0 {
			cl.SetNodeMemSpeed(*badNode, 0.55)
		}
		if *netWindow != "" {
			parts := strings.SplitN(*netWindow, ",", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad -netwindow %q, want A,B", *netWindow))
			}
			a, err1 := strconv.ParseFloat(parts[0], 64)
			b, err2 := strconv.ParseFloat(parts[1], 64)
			if err1 != nil || err2 != nil || a < 0 || b <= a {
				fatal(fmt.Errorf("bad -netwindow %q", *netWindow))
			}
			total := float64(base.Result.TotalNs)
			cl.AddNetWindow(int64(a*total), int64(b*total), 0.15)
		}
		opts.Cluster = cl
	}

	rep, err := vsensor.Run(src, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("execution time: %.3f ms over %d ranks\n", rep.TotalSeconds()*1e3, *ranks)
	if rep.Server != nil {
		fmt.Printf("sensors: %s, server data: %d bytes in %d messages\n",
			rep.Instrumented.TypeSummary(), rep.DataVolume(), rep.Server.Messages())
	} else {
		rid := *runIDFlag
		if rid == "" {
			rid = "local"
		}
		if rep.Resilient != nil {
			st := rep.Resilient.Stats()
			fmt.Printf("sensors: %s, records delivered to %s (run %q, durable lsn %d, %d reconnects over %d dial attempts)\n",
				rep.Instrumented.TypeSummary(), *connectAddr, rid, st.LSN, st.Reconnects, st.DialAttempts)
		} else {
			fmt.Printf("sensors: %s, records delivered to %s (run %q, session lsn %d)\n",
				rep.Instrumented.TypeSummary(), *connectAddr, rid, rep.Session.Ack().LSN)
		}
	}
	printCoverage(rep)
	printLineage(rep)
	events := rep.Events()
	fmt.Printf("per-process variance events: %d\n", len(events))
	fmt.Print(rep.ReportText(*col, rpn))

	mats := rep.Matrices(*col)
	if *matrix {
		for _, typ := range []ir.SnippetType{ir.Computation, ir.Network, ir.IO} {
			if m := mats[typ]; m != nil {
				fmt.Println()
				fmt.Print(m.ASCII(32, 78))
			}
		}
	}
	if *csvOut != "" {
		if m := mats[ir.Computation]; m != nil {
			if err := os.WriteFile(*csvOut, []byte(m.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *csvOut)
		}
	}
	if *pngOut != "" {
		for typ, m := range mats {
			path := fmt.Sprintf("%s_%s.png", *pngOut, strings.ToLower(typ.String()))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := m.PNG(f, 4, 4); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if *saveOut != "" {
		f, err := os.Create(*saveOut)
		if err != nil {
			fatal(err)
		}
		if err := rep.SaveData(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *saveOut)
	}
}
