package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI is tested by re-executing the test binary as the vsensor command:
// TestMain dispatches to main() when VSENSOR_TEST_MAIN=1 is in the
// environment, so every test below exercises the real flag parsing, the
// real fatal() paths, and the real exit codes.

func TestMain(m *testing.M) {
	if os.Getenv("VSENSOR_TEST_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI re-executes this test binary as `vsensor args...` and returns the
// combined stdout, stderr, and exit code.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "VSENSOR_TEST_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code = 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

func TestFlagParsing(t *testing.T) {
	tiny := filepath.Join("testdata", "tiny.mc")
	tests := []struct {
		name       string
		args       []string
		wantCode   int
		wantStderr string // substring that must appear on stderr
	}{
		{
			name:       "no arguments",
			args:       nil,
			wantCode:   2,
			wantStderr: "usage: vsensor",
		},
		{
			name:       "unknown command",
			args:       []string{"frobnicate", tiny},
			wantCode:   2,
			wantStderr: "usage: vsensor",
		},
		{
			name:       "missing program argument",
			args:       []string{"run"},
			wantCode:   2,
			wantStderr: "usage: vsensor",
		},
		{
			name:       "bad faults spec",
			args:       []string{"run", "-faults", "drop=banana", tiny},
			wantCode:   1,
			wantStderr: "drop",
		},
		{
			name:       "unknown fault key",
			args:       []string{"run", "-faults", "explode=1", tiny},
			wantCode:   1,
			wantStderr: "explode",
		},
		{
			name:       "negative server shards",
			args:       []string{"run", "-server-shards", "-2", tiny},
			wantCode:   1,
			wantStderr: "server-shards",
		},
		{
			name:       "non-integer server shards",
			args:       []string{"run", "-server-shards", "many", tiny},
			wantCode:   2,
			wantStderr: "invalid value",
		},
		{
			name:       "negative retry knob",
			args:       []string{"run", "-retry-max", "-1", tiny},
			wantCode:   1,
			wantStderr: "transport knobs must be >= 0",
		},
		{
			name:       "conflicting badnode and nodes",
			args:       []string{"run", "-nodes", "2", "-badnode", "5", tiny},
			wantCode:   1,
			wantStderr: "conflicting knobs",
		},
		{
			name:       "bad netwindow",
			args:       []string{"run", "-netwindow", "0.5", tiny},
			wantCode:   1,
			wantStderr: "netwindow",
		},
		{
			name:       "missing program file",
			args:       []string{"run", "no-such-file.mc"},
			wantCode:   1,
			wantStderr: "no-such-file.mc",
		},
		{
			name:       "negative batch",
			args:       []string{"run", "-batch", "-4", tiny},
			wantCode:   1,
			wantStderr: "batch size cannot be negative",
		},
		{
			name:       "snapshot-every without wal",
			args:       []string{"run", "-snapshot-every", "64", tiny},
			wantCode:   1,
			wantStderr: "needs -wal",
		},
		{
			name:       "negative lease",
			args:       []string{"run", "-lease", "-1ms", tiny},
			wantCode:   1,
			wantStderr: "lease cannot be negative",
		},
		{
			name:       "deadrank without deadafter",
			args:       []string{"run", "-faults", "deadrank=2", tiny},
			wantCode:   1,
			wantStderr: "deadafter",
		},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			_, stderr, code := runCLI(t, tt.args...)
			if code != tt.wantCode {
				t.Errorf("exit code = %d, want %d (stderr: %q)", code, tt.wantCode, stderr)
			}
			if !strings.Contains(stderr, tt.wantStderr) {
				t.Errorf("stderr %q does not contain %q", stderr, tt.wantStderr)
			}
		})
	}
}

// TestRunEndToEnd drives a full faulty run through the CLI and checks the
// operator-facing contract: exit 0, a coverage summary line, and a valid
// Chrome trace file from -trace-json.
func TestRunEndToEnd(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	stdout, stderr, code := runCLI(t,
		"run", "-q", "-ranks", "4", "-server-shards", "4",
		"-faults", "drop=0.1,dup=0.05,seed=3",
		"-trace-json", trace,
		filepath.Join("testdata", "tiny.mc"))
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "execution time:") {
		t.Errorf("stdout missing run summary:\n%s", stdout)
	}
	cov := ""
	for _, line := range strings.Split(stdout, "\n") {
		if strings.HasPrefix(line, "transport: plan") {
			cov = line
			break
		}
	}
	if cov == "" {
		t.Fatalf("stdout missing 'transport: plan' coverage line:\n%s", stdout)
	}
	if !strings.Contains(cov, "coverage") || !strings.Contains(cov, "records") {
		t.Errorf("coverage line malformed: %q", cov)
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("reading trace file: %v", err)
	}
	var trc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trc); err != nil {
		t.Fatalf("-trace-json output is not valid trace_event JSON: %v", err)
	}
	if len(trc.TraceEvents) == 0 {
		t.Error("trace file has no spans")
	}
	for i, ev := range trc.TraceEvents {
		if _, ok := ev["name"]; !ok {
			t.Fatalf("trace event %d has no name: %v", i, ev)
		}
	}
}

// TestRunDurableEndToEnd drives a -wal -lease run with a mid-run server
// crash and a permanently dead rank through the CLI, and checks the
// operator-facing durability contract: exit 0, a durability summary with a
// recorded recovery, a liveness summary with one dead rank, and a DEGRADED
// verdict line naming it.
func TestRunDurableEndToEnd(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"run", "-q", "-ranks", "8", "-server-shards", "2",
		"-slice", "20us", "-batch", "4",
		"-faults", "drop=0.1,seed=11,crashafter=20,crashdown=8,deadrank=5,deadafter=2",
		"-wal", "-snapshot-every", "32", "-lease", "50us",
		filepath.Join("testdata", "tiny.mc"))
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, want := range []string{
		"durability: gen",
		"recoveries",
		"last recovery: snapshot gen",
		"liveness:",
		"1 dead",
		"DEGRADED verdict: dead ranks [5]",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// TestAnalyzeEndToEnd covers the analyze command's identification table.
func TestAnalyzeEndToEnd(t *testing.T) {
	stdout, stderr, code := runCLI(t, "analyze", filepath.Join("testdata", "tiny.mc"))
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr)
	}
	for _, want := range []string{"snippets:", "v-sensors:", "instrumented:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("analyze output missing %q:\n%s", want, stdout)
		}
	}
}
