package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The CLI is tested by re-executing the test binary as the vsensor command:
// TestMain dispatches to main() when VSENSOR_TEST_MAIN=1 is in the
// environment, so every test below exercises the real flag parsing, the
// real fatal() paths, and the real exit codes.

func TestMain(m *testing.M) {
	if os.Getenv("VSENSOR_TEST_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI re-executes this test binary as `vsensor args...` and returns the
// combined stdout, stderr, and exit code.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "VSENSOR_TEST_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code = 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

func TestFlagParsing(t *testing.T) {
	tiny := filepath.Join("testdata", "tiny.mc")
	tests := []struct {
		name       string
		args       []string
		wantCode   int
		wantStderr string // substring that must appear on stderr
	}{
		{
			name:       "no arguments",
			args:       nil,
			wantCode:   2,
			wantStderr: "usage: vsensor",
		},
		{
			name:       "unknown command",
			args:       []string{"frobnicate", tiny},
			wantCode:   2,
			wantStderr: "usage: vsensor",
		},
		{
			name:       "missing program argument",
			args:       []string{"run"},
			wantCode:   2,
			wantStderr: "usage: vsensor",
		},
		{
			name:       "bad faults spec",
			args:       []string{"run", "-faults", "drop=banana", tiny},
			wantCode:   1,
			wantStderr: "drop",
		},
		{
			name:       "unknown fault key",
			args:       []string{"run", "-faults", "explode=1", tiny},
			wantCode:   1,
			wantStderr: "explode",
		},
		{
			name:       "negative server shards",
			args:       []string{"run", "-server-shards", "-2", tiny},
			wantCode:   1,
			wantStderr: "server-shards",
		},
		{
			name:       "non-integer server shards",
			args:       []string{"run", "-server-shards", "many", tiny},
			wantCode:   2,
			wantStderr: "invalid value",
		},
		{
			name:       "negative retry knob",
			args:       []string{"run", "-retry-max", "-1", tiny},
			wantCode:   1,
			wantStderr: "transport knobs must be >= 0",
		},
		{
			name:       "conflicting badnode and nodes",
			args:       []string{"run", "-nodes", "2", "-badnode", "5", tiny},
			wantCode:   1,
			wantStderr: "conflicting knobs",
		},
		{
			name:       "bad netwindow",
			args:       []string{"run", "-netwindow", "0.5", tiny},
			wantCode:   1,
			wantStderr: "netwindow",
		},
		{
			name:       "missing program file",
			args:       []string{"run", "no-such-file.mc"},
			wantCode:   1,
			wantStderr: "no-such-file.mc",
		},
		{
			name:       "negative batch",
			args:       []string{"run", "-batch", "-4", tiny},
			wantCode:   1,
			wantStderr: "batch size cannot be negative",
		},
		{
			name:       "snapshot-every without wal",
			args:       []string{"run", "-snapshot-every", "64", tiny},
			wantCode:   1,
			wantStderr: "needs -wal",
		},
		{
			name:       "negative lease",
			args:       []string{"run", "-lease", "-1ms", tiny},
			wantCode:   1,
			wantStderr: "lease cannot be negative",
		},
		{
			name:       "negative sync-every",
			args:       []string{"run", "-wal", "-sync-every", "-1", tiny},
			wantCode:   1,
			wantStderr: "sync cadence cannot be negative",
		},
		{
			name:       "negative flush-every",
			args:       []string{"run", "-wal", "-flush-every", "-8", tiny},
			wantCode:   1,
			wantStderr: "commit-group size cannot be negative",
		},
		{
			name:       "sync-every without wal",
			args:       []string{"run", "-sync-every", "4", tiny},
			wantCode:   1,
			wantStderr: "need -wal",
		},
		{
			name:       "flush-every without wal",
			args:       []string{"run", "-flush-every", "64", tiny},
			wantCode:   1,
			wantStderr: "need -wal",
		},
		{
			name:       "coalesce without wal",
			args:       []string{"run", "-coalesce", tiny},
			wantCode:   1,
			wantStderr: "need -wal",
		},
		{
			name:       "deadrank without deadafter",
			args:       []string{"run", "-faults", "deadrank=2", tiny},
			wantCode:   1,
			wantStderr: "deadafter",
		},
		{
			name:       "run-id without connect",
			args:       []string{"run", "-run-id", "lonely", tiny},
			wantCode:   1,
			wantStderr: "-run-id needs -connect",
		},
		{
			name:       "wal with connect",
			args:       []string{"run", "-connect", "127.0.0.1:1", "-wal", tiny},
			wantCode:   1,
			wantStderr: "a -connect run has none",
		},
		{
			name:       "connect to unreachable service",
			args:       []string{"run", "-connect", "127.0.0.1:1", tiny},
			wantCode:   1,
			wantStderr: "refused",
		},
		{
			name:       "reconnect without connect",
			args:       []string{"run", "-reconnect", tiny},
			wantCode:   1,
			wantStderr: "need -connect",
		},
		{
			name:       "dial-retry budget without connect",
			args:       []string{"run", "-dial-retry-budget", "1s", tiny},
			wantCode:   1,
			wantStderr: "need -connect",
		},
		{
			name:       "negative dial-retry backoff",
			args:       []string{"run", "-connect", "127.0.0.1:1", "-dial-retry-backoff", "-1ms", tiny},
			wantCode:   1,
			wantStderr: "dial-retry knobs must be >= 0",
		},
		{
			name:       "serve with negative idle-timeout",
			args:       []string{"serve", "-idle-timeout", "-1s"},
			wantCode:   1,
			wantStderr: "cannot be negative",
		},
		{
			name:       "serve with positional argument",
			args:       []string{"serve", "stray.mc"},
			wantCode:   1,
			wantStderr: "no positional arguments",
		},
		{
			name:       "serve with negative workers",
			args:       []string{"serve", "-max-workers", "-3"},
			wantCode:   1,
			wantStderr: "cannot be negative",
		},
		{
			name:       "serve on unparseable address",
			args:       []string{"serve", "-listen", "not-an-address"},
			wantCode:   1,
			wantStderr: "not-an-address",
		},
		{
			name:       "http-hold without http",
			args:       []string{"run", "-http-hold", "5s", tiny},
			wantCode:   1,
			wantStderr: "-http-hold needs -http",
		},
		{
			name:       "negative http-hold",
			args:       []string{"run", "-http", "127.0.0.1:0", "-http-hold", "-1s", tiny},
			wantCode:   1,
			wantStderr: "hold cannot be negative",
		},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			_, stderr, code := runCLI(t, tt.args...)
			if code != tt.wantCode {
				t.Errorf("exit code = %d, want %d (stderr: %q)", code, tt.wantCode, stderr)
			}
			if !strings.Contains(stderr, tt.wantStderr) {
				t.Errorf("stderr %q does not contain %q", stderr, tt.wantStderr)
			}
		})
	}
}

// TestRunEndToEnd drives a full faulty run through the CLI and checks the
// operator-facing contract: exit 0, a coverage summary line, and a valid
// Chrome trace file from -trace-json.
func TestRunEndToEnd(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	stdout, stderr, code := runCLI(t,
		"run", "-q", "-ranks", "4", "-server-shards", "4",
		"-faults", "drop=0.1,dup=0.05,seed=3",
		"-trace-json", trace,
		filepath.Join("testdata", "tiny.mc"))
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "execution time:") {
		t.Errorf("stdout missing run summary:\n%s", stdout)
	}
	cov := ""
	for _, line := range strings.Split(stdout, "\n") {
		if strings.HasPrefix(line, "transport: plan") {
			cov = line
			break
		}
	}
	if cov == "" {
		t.Fatalf("stdout missing 'transport: plan' coverage line:\n%s", stdout)
	}
	if !strings.Contains(cov, "coverage") || !strings.Contains(cov, "records") {
		t.Errorf("coverage line malformed: %q", cov)
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("reading trace file: %v", err)
	}
	var trc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trc); err != nil {
		t.Fatalf("-trace-json output is not valid trace_event JSON: %v", err)
	}
	if len(trc.TraceEvents) == 0 {
		t.Error("trace file has no spans")
	}
	for i, ev := range trc.TraceEvents {
		if _, ok := ev["name"]; !ok {
			t.Fatalf("trace event %d has no name: %v", i, ev)
		}
	}
}

// TestRunDurableEndToEnd drives a -wal -lease run with a mid-run server
// crash and a permanently dead rank through the CLI, and checks the
// operator-facing durability contract: exit 0, a durability summary with a
// recorded recovery, a liveness summary with one dead rank, and a DEGRADED
// verdict line naming it.
func TestRunDurableEndToEnd(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"run", "-q", "-ranks", "8", "-server-shards", "2",
		"-slice", "20us", "-batch", "4",
		"-faults", "drop=0.1,seed=11,crashafter=20,crashdown=8,deadrank=5,deadafter=2",
		"-wal", "-snapshot-every", "32", "-lease", "50us",
		filepath.Join("testdata", "tiny.mc"))
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, want := range []string{
		"durability: gen",
		"recoveries",
		"last recovery: snapshot gen",
		"liveness:",
		"1 dead",
		"DEGRADED verdict: dead ranks [5]",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// TestRunGroupCommitEndToEnd drives a -wal run with group commit and
// outcome coalescing through the CLI, including a mid-run crash, and
// checks that the tuned journal still recovers and reports its effective
// configuration in the durability summary.
func TestRunGroupCommitEndToEnd(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"run", "-q", "-ranks", "8", "-server-shards", "2",
		"-slice", "20us", "-batch", "4",
		"-faults", "drop=0.1,seed=11,crashafter=20,crashdown=8",
		"-wal", "-snapshot-every", "32", "-flush-every", "16", "-coalesce", "-lease", "50us",
		filepath.Join("testdata", "tiny.mc"))
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, want := range []string{
		"durability: gen",
		"recoveries",
		"group commits",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// TestServeConnectEndToEnd is the service satellite's operator contract
// over a real TCP round trip: `vsensor serve` announces its bound address,
// a `vsensor run -connect` delivers its records there and reports the
// remote delivery instead of a local server summary, and an interrupt
// shuts the service down cleanly with a session-count summary.
func TestServeConnectEndToEnd(t *testing.T) {
	srv := exec.Command(os.Args[0], "serve", "-listen", "127.0.0.1:0", "-max-workers", "4")
	srv.Env = append(os.Environ(), "VSENSOR_TEST_MAIN=1")
	stdoutPipe, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = io.Discard
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()

	// The service announces its bound address on stdout once listening.
	sc := bufio.NewScanner(stdoutPipe)
	var addr string
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "serving: ") {
			addr = strings.TrimPrefix(sc.Text(), "serving: ")
			break
		}
	}
	if addr == "" {
		t.Fatalf("serving line never appeared (scan err %v)", sc.Err())
	}

	// Two runs share the one listener under distinct run IDs.
	for _, rid := range []string{"job-a", "job-b"} {
		stdout, stderr, code := runCLI(t,
			"run", "-q", "-ranks", "4", "-connect", addr, "-run-id", rid,
			filepath.Join("testdata", "tiny.mc"))
		if code != 0 {
			t.Fatalf("run -connect (%s) exit %d\nstdout: %s\nstderr: %s", rid, code, stdout, stderr)
		}
		if !strings.Contains(stdout, "records delivered to "+addr) ||
			!strings.Contains(stdout, `run "`+rid+`"`) {
			t.Errorf("run %s stdout missing remote-delivery summary:\n%s", rid, stdout)
		}
		if strings.Contains(stdout, "server data:") {
			t.Errorf("run %s printed a local-server summary in connect mode:\n%s", rid, stdout)
		}
	}

	// Clean shutdown on signal: exit 0 and a drain summary counting both runs.
	if err := srv.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	var shutdown string
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "shutdown: ") {
			shutdown = sc.Text()
			break
		}
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("serve did not exit cleanly on interrupt: %v (shutdown line %q)", err, shutdown)
	}
	if !strings.Contains(shutdown, "2 sessions over 2 runs") {
		t.Errorf("shutdown summary = %q, want 2 sessions over 2 runs", shutdown)
	}
}

// TestAnalyzeEndToEnd covers the analyze command's identification table.
func TestAnalyzeEndToEnd(t *testing.T) {
	stdout, stderr, code := runCLI(t, "analyze", filepath.Join("testdata", "tiny.mc"))
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr)
	}
	for _, want := range []string{"snippets:", "v-sensors:", "instrumented:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("analyze output missing %q:\n%s", want, stdout)
		}
	}
}

// TestLineageFlagValidation pins the lineage flag-gating errors.
func TestLineageFlagValidation(t *testing.T) {
	tiny := filepath.Join("testdata", "tiny.mc")
	tests := []struct {
		name       string
		args       []string
		wantStderr string
	}{
		{
			name:       "lineage-every without lineage",
			args:       []string{"run", "-lineage-every", "16", tiny},
			wantStderr: "need -lineage",
		},
		{
			name:       "flight-cap without lineage",
			args:       []string{"run", "-flight-cap", "1024", tiny},
			wantStderr: "need -lineage",
		},
		{
			name:       "negative flight cap",
			args:       []string{"run", "-lineage", "-flight-cap", "-8", tiny},
			wantStderr: "flight-cap",
		},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			_, stderr, code := runCLI(t, tt.args...)
			if code != 1 {
				t.Errorf("exit code = %d, want 1 (stderr: %q)", code, stderr)
			}
			if !strings.Contains(stderr, tt.wantStderr) {
				t.Errorf("stderr %q does not contain %q", stderr, tt.wantStderr)
			}
		})
	}
}

// TestLineageEndToEndCLI drives a faulty -lineage run through the CLI,
// checks the lineage summary line, then feeds the emitted Chrome trace to
// `vsensor trace` and checks at least one journey renders with its hops.
func TestLineageEndToEndCLI(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	stdout, stderr, code := runCLI(t,
		"run", "-q", "-ranks", "8", "-batch", "4", "-slice", "50us",
		"-faults", "drop=0.2,dup=0.05,seed=7",
		"-wal", "-lineage", "-lineage-every", "4",
		"-trace-json", trace,
		filepath.Join("testdata", "tiny.mc"))
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	lineageLine := ""
	for _, line := range strings.Split(stdout, "\n") {
		if strings.HasPrefix(line, "lineage: sampled") {
			lineageLine = line
			break
		}
	}
	if lineageLine == "" {
		t.Fatalf("stdout missing 'lineage: sampled' summary:\n%s", stdout)
	}
	if strings.Contains(lineageLine, "sampled 0 frames") {
		t.Fatalf("lineage run sampled nothing: %q", lineageLine)
	}
	if !strings.Contains(lineageLine, "(1 in 4, seed 0)") {
		t.Errorf("lineage line does not echo the sampling config: %q", lineageLine)
	}

	// The trace subcommand must reconstruct journeys from the emitted file.
	stdout, stderr, code = runCLI(t, "trace", trace)
	if code != 0 {
		t.Fatalf("trace exit code = %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "sampled record journey(s)") {
		t.Fatalf("trace output missing journey count:\n%s", stdout)
	}
	if !strings.Contains(stdout, "server_ingest") || !strings.Contains(stdout, "enqueue") {
		t.Errorf("trace output missing expected hop stages:\n%s", stdout)
	}

	// Filtering by a trace ID that appears in the output keeps exactly that
	// journey; filtering by a bogus ID reports none.
	var id string
	for _, line := range strings.Split(stdout, "\n") {
		if strings.HasPrefix(line, "trace ") {
			id = strings.Fields(line)[1]
			break
		}
	}
	if id == "" {
		t.Fatalf("no 'trace <id>' header in output:\n%s", stdout)
	}
	stdout, _, code = runCLI(t, "trace", "-trace-id", id, trace)
	if code != 0 || !strings.Contains(stdout, "1 sampled record journey(s)") {
		t.Errorf("trace -trace-id %s: code %d output:\n%s", id, code, stdout)
	}
	stdout, _, code = runCLI(t, "trace", "-trace-id", "ffffffffffffffff", trace)
	if code != 0 || !strings.Contains(stdout, "no lineage spans") {
		t.Errorf("bogus -trace-id: code %d output:\n%s", code, stdout)
	}
}

// TestTraceCommandErrors pins the trace subcommand's failure modes.
func TestTraceCommandErrors(t *testing.T) {
	if _, stderr, code := runCLI(t, "trace", "no-such-trace.json"); code != 1 ||
		!strings.Contains(stderr, "no-such-trace.json") {
		t.Errorf("missing file: code %d stderr %q", code, stderr)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr, code := runCLI(t, "trace", bad); code != 1 ||
		!strings.Contains(stderr, "not a Chrome trace_event file") {
		t.Errorf("bad file: code %d stderr %q", code, stderr)
	}
}

// TestHTTPConditionalEndToEnd runs the CLI with -http and -http-hold, polls
// the live endpoint over a real socket, and pins the operator contract: the
// first /status costs a body with a strong ETag, revalidating with that tag
// costs a 304 with no body, /outliers speaks the same protocol, and the
// run's coverage summary reports the report-cache hit rate.
func TestHTTPConditionalEndToEnd(t *testing.T) {
	cmd := exec.Command(os.Args[0],
		"run", "-q", "-ranks", "8", "-batch", "4", "-slice", "50us",
		"-http", "127.0.0.1:0", "-http-hold", "30s",
		filepath.Join("testdata", "tiny.mc"))
	cmd.Env = append(os.Environ(), "VSENSOR_TEST_MAIN=1")
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stdout strings.Builder
	cmd.Stdout = &stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The CLI announces the bound address on stderr once the listener is up.
	var base string
	sc := bufio.NewScanner(stderrPipe)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "introspection: ") {
			base = strings.TrimSuffix(strings.Fields(line)[1], "/")
			break
		}
	}
	if base == "" {
		t.Fatalf("introspection line never appeared (scan err %v)", sc.Err())
	}
	// Drain the rest of stderr so the child never blocks on a full pipe.
	go io.Copy(io.Discard, stderrPipe) //nolint:errcheck

	get := func(path, inm string) (int, string, string) {
		t.Helper()
		req, err := http.NewRequest("GET", base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		// The endpoint holds for 30s after the run; retry briefly around
		// subprocess scheduling.
		var resp *http.Response
		for i := 0; i < 50; i++ {
			resp, err = http.DefaultClient.Do(req)
			if err == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("ETag")
	}

	// Wait for the run itself to finish so the snapshot is final: /status
	// eventually reports progress and its generation stops moving.
	var tag string
	for i := 0; i < 100; i++ {
		_, _, t1 := get("/status", "")
		time.Sleep(20 * time.Millisecond)
		_, _, t2 := get("/status", "")
		if t1 != "" && t1 == t2 {
			tag = t1
			break
		}
	}
	if tag == "" {
		t.Fatal("/status generation never settled")
	}

	code, body, _ := get("/status", "")
	if code != http.StatusOK {
		t.Fatalf("/status = %d", code)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if st["running"] != true {
		t.Fatalf("/status body = %v", st)
	}

	// The second poll with If-None-Match is the satellite's core assertion:
	// an unchanged generation costs a 304, not a body.
	code, body, etag := get("/status", tag)
	if code != http.StatusNotModified || body != "" {
		t.Fatalf("revalidation = %d %q, want 304 with empty body", code, body)
	}
	if etag != tag {
		t.Fatalf("304 ETag = %q, want %q", etag, tag)
	}

	// /outliers speaks the same protocol from the same generation.
	code, body, otag := get("/outliers", "")
	if code != http.StatusOK || otag != tag {
		t.Fatalf("/outliers = %d ETag %q (status tag %q)", code, otag, tag)
	}
	if !strings.Contains(body, `"outliers"`) {
		t.Fatalf("/outliers body missing report:\n%s", body)
	}
	if code, body, _ := get("/outliers", tag); code != http.StatusNotModified || body != "" {
		t.Fatalf("/outliers revalidation = %d %q", code, body)
	}

	// /records serves the full window with base and a resumable cursor.
	code, body, _ = get("/records", "")
	if code != http.StatusOK {
		t.Fatalf("/records = %d", code)
	}
	var rb struct {
		Cursor  int              `json:"cursor"`
		Base    int              `json:"base"`
		Records []map[string]any `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &rb); err != nil {
		t.Fatalf("/records not JSON: %v", err)
	}
	if len(rb.Records) == 0 || rb.Cursor != rb.Base+len(rb.Records) {
		t.Fatalf("/records window = cursor %d base %d len %d", rb.Cursor, rb.Base, len(rb.Records))
	}

	// The summary (already flushed to stdout before the hold) reports the
	// cache's effectiveness.
	cmd.Process.Kill()
	cmd.Wait()
	out := stdout.String()
	var cacheLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "report cache: gen ") {
			cacheLine = line
			break
		}
	}
	if cacheLine == "" {
		t.Fatalf("stdout missing 'report cache' summary:\n%s", out)
	}
	if !strings.Contains(cacheLine, "hit rate") || !strings.Contains(cacheLine, "rebuilds") {
		t.Fatalf("cache summary incomplete: %q", cacheLine)
	}
}
