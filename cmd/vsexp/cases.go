package main

import (
	"fmt"
	"io"
	"time"

	vsensor "vsensor"
	"vsensor/internal/apps"
	"vsensor/internal/cluster"
	"vsensor/internal/detect"
	"vsensor/internal/instrument"
	"vsensor/internal/ir"
)

// runFig18: the noise-injection study (Figs. 18, 19, 20): mpiP-style
// profiles before/after injection, and the vSensor matrix that localizes
// the injected blocks.
func runFig18(w io.Writer, cfg suiteConfig) {
	ranks := cfg.ranks
	if ranks == 0 {
		ranks = 128
	}
	rpn := 8
	app := apps.MustGet("CG", apps.Scale{Iters: 200, Work: 150})
	mk := func() *cluster.Cluster {
		return cluster.New(cluster.Config{Nodes: ranks / rpn, RanksPerNode: rpn})
	}

	clean, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: mk(), Profile: true})
	if err != nil {
		fmt.Fprintln(w, "run failed:", err)
		return
	}
	total := clean.Result.TotalNs

	noisy := mk()
	for node := 3; node <= 5; node++ { // ranks 24..47
		noisy.AddCPUNoise(node, total/4, total/4+total/6, 0.3)
	}
	for node := 9; node <= 11; node++ { // ranks 72..95
		noisy.AddCPUNoise(node, total*2/3, total*2/3+total/6, 0.3)
	}
	rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: noisy, Profile: true})
	if err != nil {
		fmt.Fprintln(w, "run failed:", err)
		return
	}

	fmt.Fprintln(w, "| Run | Mean comp time | Mean MPI time | Total |")
	fmt.Fprintln(w, "|---|---|---|---|")
	fmt.Fprintf(w, "| normal (Fig. 18) | %.3f ms | %.3f ms | %.3f ms |\n",
		clean.Profiler.MeanCompSeconds()*1e3, clean.Profiler.MeanMPISeconds()*1e3, clean.TotalSeconds()*1e3)
	fmt.Fprintf(w, "| noise-injected (Fig. 19) | %.3f ms | %.3f ms | %.3f ms |\n",
		rep.Profiler.MeanCompSeconds()*1e3, rep.Profiler.MeanMPISeconds()*1e3, rep.TotalSeconds()*1e3)
	fmt.Fprintln(w, "\nThe profiler shows times growing but not where or when the noise was")
	fmt.Fprintln(w, "injected (and waiting inflates MPI time, pointing at the wrong component).")

	m := rep.Matrices(2 * time.Millisecond)[ir.Computation]
	blocks := m.LowBlocks(0.8, 0.02)
	fmt.Fprintf(w, "\nvSensor (Fig. 20) localizes %d variance blocks:\n\n", len(blocks))
	for _, b := range blocks {
		fmt.Fprintf(w, "- ranks %d-%d during %.1f..%.1f ms (mean perf %.2f); injected: ranks 24-47 and 72-95\n",
			b.FirstRank, b.LastRank, float64(b.StartNs)/1e6, float64(b.EndNs)/1e6, b.MeanPerf)
	}
	fmt.Fprintln(w, "\n```")
	fmt.Fprint(w, m.ASCII(32, 72))
	fmt.Fprintln(w, "```")
}

// runFig21: one node's memory at 55% slows CG; vSensor shows a persistent
// low band at that node's ranks, and removing the node recovers ~20%.
func runFig21(w io.Writer, cfg suiteConfig) {
	ranks := cfg.ranks
	if ranks == 0 {
		ranks = 256
	}
	rpn := 8
	badNode := (ranks / rpn) / 2
	app := apps.MustGet("CG", apps.Scale{Iters: 100, Work: 100})

	run := func(bad bool) (*vsensor.Report, error) {
		cl := cluster.New(cluster.Config{Nodes: ranks / rpn, RanksPerNode: rpn})
		if bad {
			cl.SetNodeMemSpeed(badNode, 0.55)
		}
		return vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: cl})
	}
	bad, err := run(true)
	if err != nil {
		fmt.Fprintln(w, "run failed:", err)
		return
	}
	good, err := run(false)
	if err != nil {
		fmt.Fprintln(w, "run failed:", err)
		return
	}
	m := bad.Matrices(2 * time.Millisecond)[ir.Computation]
	fmt.Fprintf(w, "CG, %d ranks; node %d memory at 55%% (hosting ranks %d-%d).\n\n",
		ranks, badNode, badNode*rpn, badNode*rpn+rpn-1)
	for _, b := range m.LowRankBands(0.85, 0.5) {
		fmt.Fprintf(w, "- detected persistent low band: ranks %d-%d (mean perf %.2f) -> node %d\n",
			b.First, b.Last, b.MeanPerf, b.First/rpn)
	}
	imp := 1 - good.TotalSeconds()/bad.TotalSeconds()
	fmt.Fprintf(w, "\n| Run | Time |\n|---|---|\n| with bad node | %.3f ms |\n| without | %.3f ms |\n",
		bad.TotalSeconds()*1e3, good.TotalSeconds()*1e3)
	fmt.Fprintf(w, "\nImprovement after removing the node: %.0f%% (paper: 21%%, 80.04s -> 66.05s).\n", imp*100)
}

// runFig22: mid-run network degradation slows FT's all-to-all; the network
// matrix shows the window, computation stays clean.
func runFig22(w io.Writer, cfg suiteConfig) {
	ranks := cfg.ranks
	if ranks == 0 {
		ranks = 1024
	}
	app := apps.MustGet("FT", apps.Scale{Iters: 50, Work: 40})
	mk := func() *cluster.Cluster {
		return cluster.New(cluster.Config{Nodes: ranks / 16, RanksPerNode: 16})
	}
	clean, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: mk()})
	if err != nil {
		fmt.Fprintln(w, "run failed:", err)
		return
	}
	total := clean.Result.TotalNs
	cl := mk()
	// Congestion sets in at 20% of the run and persists until the job
	// finishes, like the paper's 16s..67s episode in a stretched 78s run.
	cl.AddNetWindow(total/5, int64(1)<<62, 0.25)
	congested, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: cl})
	if err != nil {
		fmt.Fprintln(w, "run failed:", err)
		return
	}
	slow := congested.TotalSeconds() / clean.TotalSeconds()
	fmt.Fprintf(w, "FT, %d ranks. Normal %.3f ms, congested %.3f ms — **%.2fx slower**\n",
		ranks, clean.TotalSeconds()*1e3, congested.TotalSeconds()*1e3, slow)
	fmt.Fprintf(w, "(paper: 23.31s vs 78.66s, 3.37x).\n\n")
	m := congested.Matrices(2 * time.Millisecond)[ir.Network]
	for _, win := range m.LowTimeWindows(0.7, 0.8) {
		fmt.Fprintf(w, "- network degradation window: %.1f..%.1f ms (mean perf %.2f)\n",
			float64(win.StartNs)/1e6, float64(win.EndNs)/1e6, win.MeanPerf)
	}
	if mc := congested.Matrices(2 * time.Millisecond)[ir.Computation]; mc != nil {
		fmt.Fprintf(w, "- computation matrix windows in the same period: %d (the network is the root cause)\n",
			len(mc.LowTimeWindows(0.7, 0.8)))
	}
}

// runVolume: tracer vs vSensor data volumes on the same run.
func runVolume(w io.Writer, cfg suiteConfig) {
	ranks := cfg.ranks
	if ranks == 0 {
		ranks = 128
	}
	app := apps.MustGet("CG", apps.Scale{Iters: 300, Work: 120})
	cl := cluster.New(cluster.Config{Nodes: ranks / 8, RanksPerNode: 8})
	// Virtual time is compressed relative to the paper's 140s real run; a
	// 10ms slice keeps the slice-to-run-length proportion comparable.
	rep, err := vsensor.Run(app.Source, vsensor.Options{
		Ranks: ranks, Cluster: cl, Trace: true,
		Detect: detect.Config{SliceNs: 10_000_000},
	})
	if err != nil {
		fmt.Fprintln(w, "run failed:", err)
		return
	}
	tb, sb := rep.Tracer.Bytes(), rep.DataVolume()
	secs := rep.TotalSeconds()
	fmt.Fprintf(w, "| Tool | Data volume | Rate per process |\n|---|---|---|\n")
	fmt.Fprintf(w, "| ITAC-style tracer | %.2f MB | %.1f KB/s |\n",
		float64(tb)/1e6, float64(tb)/1e3/secs/float64(ranks))
	fmt.Fprintf(w, "| vSensor | %.3f MB | %.2f KB/s |\n",
		float64(sb)/1e6, float64(sb)/1e3/secs/float64(ranks))
	fmt.Fprintf(w, "\nRatio: %.1fx (paper: 501.5 MB vs 8.8 MB = 57x on a 140 s, 128-process run).\n",
		float64(tb)/float64(sb))
}

// runOverhead: instrumentation overhead versus rank count; the paper's
// flagship claim is <4% at 16,384 processes.
func runOverhead(w io.Writer, cfg suiteConfig) {
	rankCounts := []int{4, 16, 64, 256, 1024}
	if cfg.big {
		rankCounts = append(rankCounts, 4096, 16384)
	}
	fmt.Fprintln(w, "| Ranks | Baseline (ms) | Instrumented (ms) | Overhead |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, ranks := range rankCounts {
		// Scale the per-rank work down at very large rank counts so the
		// flagship point stays laptop-tractable; overhead is a ratio, so
		// the comparison remains valid.
		scale := apps.Scale{Iters: 25, Work: 60}
		if ranks >= 4096 {
			scale = apps.Scale{Iters: 8, Work: 25}
		}
		app := apps.MustGet("SP", scale)
		nodes := ranks / 8
		if nodes < 1 {
			nodes = 1
		}
		mk := func() *cluster.Cluster {
			return cluster.New(cluster.Config{Nodes: nodes, RanksPerNode: (ranks + nodes - 1) / nodes})
		}
		base, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: mk(), Uninstrumented: true})
		if err != nil {
			fmt.Fprintln(w, "run failed:", err)
			return
		}
		ins, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: mk()})
		if err != nil {
			fmt.Fprintln(w, "run failed:", err)
			return
		}
		ov := float64(ins.Result.TotalNs-base.Result.TotalNs) / float64(base.Result.TotalNs)
		fmt.Fprintf(w, "| %d | %.3f | %.3f | %.2f%% |\n",
			ranks, base.TotalSeconds()*1e3, ins.TotalSeconds()*1e3, ov*100)
	}
	fmt.Fprintln(w, "\nPaper: overhead < 4% with up to 16,384 processes.")
}

// runAblations: sweeps over the design choices of §4/§5.
func runAblations(w io.Writer, cfg suiteConfig) {
	app := apps.MustGet("CG", apps.Scale{Iters: 60, Work: 60})
	const ranks = 16

	// A1: max-depth sweep — deeper instrumentation, more sensors, more
	// overhead.
	fmt.Fprintln(w, "### A1 — max-depth sweep (granularity rule)")
	fmt.Fprintln(w, "\n| MaxDepth | Sensors | Records | Overhead |")
	fmt.Fprintln(w, "|---|---|---|---|")
	base, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Uninstrumented: true})
	if err != nil {
		fmt.Fprintln(w, "run failed:", err)
		return
	}
	for _, depth := range []int{1, 2, 3, 4} {
		rep, err := vsensor.Run(app.Source, vsensor.Options{
			Ranks: ranks, CollectRecords: true,
			Instrument: instrument.Config{MaxDepth: depth, KeepNested: true},
		})
		if err != nil {
			fmt.Fprintln(w, "run failed:", err)
			return
		}
		ov := float64(rep.Result.TotalNs-base.Result.TotalNs) / float64(base.Result.TotalNs)
		fmt.Fprintf(w, "| %d | %d | %d | %.2f%% |\n", depth, len(rep.Instrumented.Sensors), len(rep.Records), ov*100)
	}

	// A3: nested-sensor rule.
	fmt.Fprintln(w, "\n### A3 — nested-sensor exclusion")
	fmt.Fprintln(w, "\n| Rule | Sensors | Records | Overhead |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, keep := range []bool{false, true} {
		rep, err := vsensor.Run(app.Source, vsensor.Options{
			Ranks: ranks, CollectRecords: true,
			Instrument: instrument.Config{KeepNested: keep},
		})
		if err != nil {
			fmt.Fprintln(w, "run failed:", err)
			return
		}
		ov := float64(rep.Result.TotalNs-base.Result.TotalNs) / float64(base.Result.TotalNs)
		name := "outermost only (paper)"
		if keep {
			name = "keep nested"
		}
		fmt.Fprintf(w, "| %s | %d | %d | %.2f%% |\n", name, len(rep.Instrumented.Sensors), len(rep.Records), ov*100)
	}

	// A2: smoothing-slice sweep — small slices admit OS noise as false
	// positives.
	fmt.Fprintln(w, "\n### A2 — smoothing slice sweep (false positives from OS noise)")
	fmt.Fprintln(w, "\n| Slice | Variance events on a clean-but-noisy-OS cluster |")
	fmt.Fprintln(w, "|---|---|")
	for _, sliceNs := range []int64{10_000, 100_000, 1_000_000, 10_000_000} {
		cl := cluster.New(cluster.Config{Nodes: 2, RanksPerNode: 8})
		cl.SetOSNoise(100_000, 10_000, 0.3)
		rep, err := vsensor.Run(app.Source, vsensor.Options{
			Ranks: ranks, Cluster: cl,
			Detect: detect.Config{SliceNs: sliceNs},
		})
		if err != nil {
			fmt.Fprintln(w, "run failed:", err)
			return
		}
		fmt.Fprintf(w, "| %dµs | %d |\n", sliceNs/1000, len(rep.Events()))
	}

	// A4: batching.
	fmt.Fprintln(w, "\n### A4 — analysis-server batching")
	fmt.Fprintln(w, "\n| Batch | Messages | Bytes |")
	fmt.Fprintln(w, "|---|---|---|")
	for _, batch := range []int{1, 64} {
		rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, BatchSize: batch})
		if err != nil {
			fmt.Fprintln(w, "run failed:", err)
			return
		}
		fmt.Fprintf(w, "| %d | %d | %d |\n", batch, rep.Server.Messages(), rep.Server.BytesReceived())
	}

	// A5: minimum detectable disturbance duration vs smoothing slice —
	// the smoothing that suppresses OS noise also hides disturbances much
	// shorter than the slice, quantifying the paper's granularity
	// trade-off (§5.1: "vSensor focuses on more durable ... variance").
	fmt.Fprintln(w, "\n### A5 — detectability of short disturbances vs smoothing slice")
	fmt.Fprintln(w, "\n| Disturbance | slice 100µs | slice 1000µs | slice 10000µs |")
	fmt.Fprintln(w, "|---|---|---|---|")
	base2, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Uninstrumented: true})
	if err != nil {
		fmt.Fprintln(w, "run failed:", err)
		return
	}
	total := base2.Result.TotalNs
	for _, durNs := range []int64{50_000, 500_000, 5_000_000} {
		fmt.Fprintf(w, "| %dµs |", durNs/1000)
		for _, sliceNs := range []int64{100_000, 1_000_000, 10_000_000} {
			cl := cluster.New(cluster.Config{Nodes: 2, RanksPerNode: 8})
			cl.AddCPUNoise(0, total/2, total/2+durNs, 0.1)
			rep, err := vsensor.Run(app.Source, vsensor.Options{
				Ranks: ranks, Cluster: cl,
				Detect: detect.Config{SliceNs: sliceNs},
			})
			if err != nil {
				fmt.Fprintln(w, "run failed:", err)
				return
			}
			detected := "miss"
			if len(rep.Events()) > 0 {
				detected = "hit"
			}
			fmt.Fprintf(w, " %s |", detected)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nLonger slices suppress noise but miss disturbances shorter than the slice.")
}
