// Command vsexp regenerates every table and figure of the paper's
// evaluation (§6) on the simulated substrate, emitting Markdown. Running
// with no flags executes the full suite (several minutes); -exp selects a
// single experiment.
//
//	vsexp -exp table1      # Table 1: validation and overhead
//	vsexp -exp fig1        # run-to-run variance of FT
//	vsexp -exp fig12       # data smoothing
//	vsexp -exp fig13       # dynamic rules example
//	vsexp -exp fig14       # clean performance matrix
//	vsexp -exp fig16       # sense durations and intervals (+fig17)
//	vsexp -exp fig18       # noise injection: profiler vs vSensor (+fig19/20)
//	vsexp -exp fig21       # bad node case study
//	vsexp -exp fig22       # network degradation case study
//	vsexp -exp volume      # tracer vs vSensor data volume
//	vsexp -exp overhead    # overhead scaling with rank count
//	vsexp -exp ablations   # max-depth / slice / nesting / batching
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

type experiment struct {
	name  string
	title string
	run   func(w io.Writer, cfg suiteConfig)
}

type suiteConfig struct {
	ranks    int  // base rank count for the heavyweight experiments
	big      bool // enable the flagship 16,384-rank overhead point
	fastIter int  // iteration scale
}

var experiments = []experiment{
	{"table1", "Table 1 — validation and overhead", runTable1},
	{"fig1", "Figure 1 — run-to-run variance on fixed nodes", runFig1},
	{"fig12", "Figure 12 — filtering background noise by smoothing", runFig12},
	{"fig13", "Figure 13 — dynamic rules (cache-miss grouping)", runFig13},
	{"fig14", "Figure 14 — performance matrix of a clean run", runFig14},
	{"fig16", "Figures 16/17 — sense durations and intervals", runFig16},
	{"fig18", "Figures 18-20 — noise injection: profiler vs vSensor", runFig18},
	{"fig21", "Figure 21 — bad node case study (CG)", runFig21},
	{"fig22", "Figure 22 — network degradation case study (FT)", runFig22},
	{"volume", "Trace volume — ITAC-style tracer vs vSensor", runVolume},
	{"overhead", "Overhead scaling with rank count", runOverhead},
	{"ablations", "Ablations — design-choice sweeps", runAblations},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	out := flag.String("out", "", "write Markdown to this file instead of stdout")
	ranks := flag.Int("ranks", 0, "override rank count for the case studies")
	big := flag.Bool("big", false, "include the 16,384-rank overhead point (slow)")
	flag.Parse()

	cfg := suiteConfig{ranks: *ranks, big: *big}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	names := map[string]bool{}
	for _, e := range experiments {
		names[e.name] = true
	}
	if *exp != "all" && !names[*exp] {
		var all []string
		for n := range names {
			all = append(all, n)
		}
		sort.Strings(all)
		fmt.Fprintf(os.Stderr, "unknown experiment %q; have %v\n", *exp, all)
		os.Exit(2)
	}

	for _, e := range experiments {
		if *exp != "all" && e.name != *exp {
			continue
		}
		start := time.Now()
		fmt.Fprintf(w, "\n## %s\n\n", e.title)
		e.run(w, cfg)
		fmt.Fprintf(os.Stderr, "[vsexp] %s done in %s\n", e.name, time.Since(start).Round(time.Millisecond))
	}
}
