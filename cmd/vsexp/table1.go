package main

import (
	"fmt"
	"io"

	vsensor "vsensor"
	"vsensor/internal/apps"
	"vsensor/internal/cluster"
	"vsensor/internal/validate"
)

// runTable1 reproduces Table 1: per program, the compile-time counts
// (snippets, v-sensors, instrumented number and type) and the runtime
// metrics (workload max error from PMU validation, instrumentation
// overhead, sense-time coverage, sense frequency).
func runTable1(w io.Writer, cfg suiteConfig) {
	ranks := cfg.ranks
	if ranks == 0 {
		ranks = 32
	}
	scale := apps.Scale{Iters: 40, Work: 60}

	fmt.Fprintf(w, "Simulated at %d ranks; the paper measured 16,384 ranks on Tianhe-2. Mini apps are\n", ranks)
	fmt.Fprintf(w, "structurally representative but orders of magnitude smaller than the originals.\n\n")
	fmt.Fprintln(w, "| Program | LoC | Snippets | v-sensors | Instrumented | Workload max err | Overhead | Coverage | Freq (kHz) |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|")

	for _, app := range apps.All(scale) {
		nodes := ranks / 8
		if nodes < 1 {
			nodes = 1
		}
		mk := func() *cluster.Cluster {
			return cluster.New(cluster.Config{Nodes: nodes, RanksPerNode: (ranks + nodes - 1) / nodes})
		}

		base, err := vsensor.Run(app.Source, vsensor.Options{
			Ranks: ranks, Cluster: mk(), Uninstrumented: true,
		})
		if err != nil {
			fmt.Fprintf(w, "| %s | run failed: %v |\n", app.Name, err)
			continue
		}
		rep, err := vsensor.Run(app.Source, vsensor.Options{
			Ranks: ranks, Cluster: mk(),
			CollectRecords: true, PMUJitterPct: 0.005,
		})
		if err != nil {
			fmt.Fprintf(w, "| %s | run failed: %v |\n", app.Name, err)
			continue
		}

		// Workload validation (§6.2): computation sensors via PMU
		// instruction counts (Pm = max over sensors/ranks of max/min),
		// exactly as in the paper; network sensors are validated by their
		// recorded message sizes instead, because their instruction
		// footprint is a handful of instructions where integer counter
		// granularity, not workload, dominates the ratio.
		val := validate.Records(rep.Instrumented, rep.Records, 1.02)
		pm := val.Pm

		overhead := float64(rep.Result.TotalNs-base.Result.TotalNs) / float64(base.Result.TotalNs)
		dist := rep.Distribution()

		fmt.Fprintf(w, "| %s | %d | %d | %d | %s | %.2f%% | %.2f%% | %.2f%% | %.1f |\n",
			app.Name, app.LoC(),
			len(rep.Analysis.Snippets), len(rep.Analysis.Sensors),
			rep.Instrumented.TypeSummary(),
			(pm-1)*100, overhead*100,
			dist.Coverage()*100, dist.FrequencyHz()/1e3)
	}

	fmt.Fprintln(w, "\nPaper reference (16,384 ranks): workload max error < 5%, overhead < 4%,")
	fmt.Fprintln(w, "AMG lowest coverage/frequency, BT/LU computation-only instrumentation.")
}
