package main

import (
	"fmt"
	"io"
	"math"
	"time"

	vsensor "vsensor"
	"vsensor/internal/apps"
	"vsensor/internal/cluster"
	"vsensor/internal/detect"
	"vsensor/internal/ir"
	"vsensor/internal/stats"
	"vsensor/internal/vm"
)

// runFig1: the same FT job submitted repeatedly on fixed nodes of a noisy
// machine; execution times vary severely (the paper saw max/min > 3x).
func runFig1(w io.Writer, cfg suiteConfig) {
	app := apps.MustGet("FT", apps.Scale{Iters: 20, Work: 30})
	const ranks = 64
	var times []float64
	fmt.Fprintln(w, "| Submission | Time (ms) |")
	fmt.Fprintln(w, "|---|---|")
	for run := 0; run < 20; run++ {
		cl := cluster.New(cluster.Config{Nodes: 8, RanksPerNode: 8, Seed: int64(run), JitterPct: 0.02})
		// Background interference from other jobs sharing the network:
		// pseudo-random per submission.
		h := mix(uint64(run) + 0x1234)
		if h%3 != 0 {
			frac := 0.10 + float64(h%53)/100.0
			cl.AddNetWindow(0, int64(3e12), frac)
		}
		rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: cl, Uninstrumented: true})
		if err != nil {
			fmt.Fprintln(w, "run failed:", err)
			return
		}
		times = append(times, rep.TotalSeconds()*1e3)
		fmt.Fprintf(w, "| %d | %.2f |\n", run+1, rep.TotalSeconds()*1e3)
	}
	fmt.Fprintf(w, "\nmax/min = %.2fx (paper: >3x on Tianhe-2)\n", stats.MaxOverMin(times))
}

// mix is a splitmix64-style hash for per-run pseudo-randomness.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// runFig12: a ~10µs sensor under periodic OS noise looks chaotic at 10µs
// resolution and smooth at 1000µs (the paper's smoothing argument).
func runFig12(w io.Writer, cfg suiteConfig) {
	src := `
func main() {
    for (int i = 0; i < 20000; i++) {
        for (int k = 0; k < 20; k++) {
            flops(1000);
        }
    }
}`
	cl := cluster.New(cluster.Config{Nodes: 1, RanksPerNode: 1})
	// Kernel noise: every 100µs a 12µs slice at 30% speed.
	cl.SetOSNoise(100_000, 12_000, 0.3)
	rep, err := vsensor.Run(src, vsensor.Options{Ranks: 1, Cluster: cl, CollectRecords: true})
	if err != nil {
		fmt.Fprintln(w, "run failed:", err)
		return
	}

	series := func(sliceNs int64) []float64 {
		agg := map[int64][]float64{}
		for _, r := range rep.Records {
			s := r.Start / sliceNs
			agg[s] = append(agg[s], float64(r.Duration()))
		}
		var out []float64
		var maxSlice int64
		for s := range agg {
			if s > maxSlice {
				maxSlice = s
			}
		}
		for s := int64(0); s <= maxSlice; s++ {
			vs := agg[s]
			if len(vs) == 0 {
				continue
			}
			sum := 0.0
			for _, v := range vs {
				sum += v
			}
			out = append(out, sum/float64(len(vs)))
		}
		return out
	}
	cv := func(vals []float64) float64 {
		s := stats.Summarize(vals)
		if s.Mean == 0 {
			return math.NaN()
		}
		return s.StdDev / s.Mean
	}
	raw := series(10_000)
	smooth := series(1_000_000)
	fmt.Fprintf(w, "| Resolution | Samples | Coefficient of variation | max/min |\n|---|---|---|---|\n")
	fmt.Fprintf(w, "| 10µs | %d | %.3f | %.2f |\n", len(raw), cv(raw), stats.MaxOverMin(raw))
	fmt.Fprintf(w, "| 1000µs | %d | %.3f | %.2f |\n", len(smooth), cv(smooth), stats.MaxOverMin(smooth))
	fmt.Fprintln(w, "\nSmoothing filters the periodic OS noise (paper Fig. 12: the 1000µs curve is flat).")
}

// runFig13: the worked dynamic-rule example — without miss-rate grouping,
// high-miss executions read as variance; with grouping only the genuine
// outlier remains.
func runFig13(w io.Writer, cfg suiteConfig) {
	mk := func(buckets []float64) *detect.Detector {
		d := detect.New(0, []detect.Sensor{{ID: 0, Type: ir.Computation}},
			detect.Config{SliceNs: 1_000_000, VarianceThreshold: 0.7, MissRateBuckets: buckets}, nil)
		durs := []int64{3, 3, 7, 3, 5, 3, 7, 3, 3, 3}
		miss := []float64{.05, .05, .45, .05, .05, .05, .45, .05, .05, .05}
		for i := range durs {
			s := int64(i) * 1_000_000
			d.OnRecord(vm.Record{Sensor: 0, Start: s, End: s + durs[i]*100_000, MissRate: miss[i]})
		}
		d.Finish()
		return d
	}
	plain := mk(nil)
	grouped := mk([]float64{0.2, 1.01})
	fmt.Fprintf(w, "Record wall-times 3,3,7,3,5,3,7,3,3,3 (records 2 and 6 have high cache miss).\n\n")
	fmt.Fprintf(w, "| Mode | Variance records flagged |\n|---|---|\n")
	fmt.Fprintf(w, "| constant-miss expectation | %d (records 2, 4, 6) |\n", len(plain.Events()))
	fmt.Fprintf(w, "| miss rate as dynamic rule | %d (record 4 only) |\n", len(grouped.Events()))
	for _, e := range grouped.Events() {
		fmt.Fprintf(w, "\nwith grouping, the surviving variance is at slice %d (record %d), group %d\n",
			e.SliceNs, e.SliceNs/1_000_000, e.Group)
	}
}

// runFig14: a clean CG run's computation performance matrix — good overall
// performance, only scattered dots.
func runFig14(w io.Writer, cfg suiteConfig) {
	ranks := cfg.ranks
	if ranks == 0 {
		ranks = 128
	}
	app := apps.MustGet("CG", apps.Scale{Iters: 120, Work: 120})
	cl := cluster.New(cluster.Config{Nodes: ranks / 8, RanksPerNode: 8, JitterPct: 0.03, Seed: 11})
	rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: cl})
	if err != nil {
		fmt.Fprintln(w, "run failed:", err)
		return
	}
	m := rep.Matrices(2 * time.Millisecond)[ir.Computation]
	fmt.Fprintf(w, "CG, %d ranks, clean cluster. Mean normalized performance %.3f;\n", ranks, m.MeanPerf())
	fmt.Fprintf(w, "low rank bands: %d, low time windows: %d (expected none).\n\n",
		len(m.LowRankBands(0.85, 0.5)), len(m.LowTimeWindows(0.7, 0.8)))
	fmt.Fprintln(w, "```")
	fmt.Fprint(w, m.ASCII(32, 72))
	fmt.Fprintln(w, "```")
}

// runFig16: duration and interval histograms per app (Figs. 16 and 17).
func runFig16(w io.Writer, cfg suiteConfig) {
	scale := apps.Scale{Iters: 40, Work: 60}
	fmt.Fprintln(w, "| Program | Durations (<100µs / 100µs-10ms / 10ms-1s / >1s) | Intervals (<100µs / 100µs-10ms / 10ms-1s / >1s) |")
	fmt.Fprintln(w, "|---|---|---|")
	for _, app := range apps.All(scale) {
		rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: 16, CollectRecords: true})
		if err != nil {
			fmt.Fprintf(w, "| %s | run failed: %v | |\n", app.Name, err)
			continue
		}
		d := rep.Distribution()
		fmt.Fprintf(w, "| %s | %d / %d / %d / %d | %d / %d / %d / %d |\n", app.Name,
			d.Durations.Counts[0], d.Durations.Counts[1], d.Durations.Counts[2], d.Durations.Counts[3],
			d.Intervals.Counts[0], d.Intervals.Counts[1], d.Intervals.Counts[2], d.Intervals.Counts[3])
	}
	fmt.Fprintln(w, "\nPaper shape: most durations < 100µs (fine-grained sensors, motivating")
	fmt.Fprintln(w, "aggregation); most intervals short, AMG dominated by long gaps.")
}
