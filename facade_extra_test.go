package vsensor_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	vsensor "vsensor"
	"vsensor/internal/apps"
	"vsensor/internal/cluster"
	"vsensor/internal/detect"
	"vsensor/internal/ir"
	"vsensor/internal/rundata"
	"vsensor/internal/vis"
)

const facadeSrc = `
func main() {
    for (int i = 0; i < 60; i++) {
        for (int k = 0; k < 10; k++) {
            flops(5000);
        }
        mpi_allreduce(64, 1.0);
    }
}`

func TestSaveDataRoundTrip(t *testing.T) {
	cl := cluster.New(cluster.Config{Nodes: 2, RanksPerNode: 4})
	cl.SetNodeMemSpeed(1, 0.5)
	rep, err := vsensor.Run(facadeSrc, vsensor.Options{Ranks: 8, Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.SaveData(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := rundata.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ranks != 8 || d.TotalNs != rep.Result.TotalNs {
		t.Errorf("metadata mismatch: %+v", d)
	}
	if len(d.Records) != len(rep.Server.Records()) {
		t.Errorf("records: %d vs %d", len(d.Records), len(rep.Server.Records()))
	}
	// The saved data regenerates the same findings as the live report.
	mats := vis.Build(d.Records, d.SensorTypes(), d.Ranks, (2 * time.Millisecond).Nanoseconds())
	saved := vis.Diagnose(mats, vis.ReportConfig{})
	live := rep.Findings(2 * time.Millisecond)
	if len(saved) != len(live) {
		t.Errorf("findings differ: saved %d vs live %d", len(saved), len(live))
	}
}

func TestReportTextCleanRun(t *testing.T) {
	rep, err := vsensor.Run(facadeSrc, vsensor.Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	txt := rep.ReportText(2*time.Millisecond, 4)
	if !strings.Contains(txt, "no performance variance") {
		t.Errorf("clean run report:\n%s", txt)
	}
}

func TestReportTextBadNode(t *testing.T) {
	cl := cluster.New(cluster.Config{Nodes: 4, RanksPerNode: 2})
	cl.SetNodeCPUSpeed(2, 0.4)
	rep, err := vsensor.Run(facadeSrc, vsensor.Options{Ranks: 8, Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	txt := rep.ReportText(2*time.Millisecond, 2)
	if !strings.Contains(txt, "ranks 4-5") || !strings.Contains(txt, "node 2") {
		t.Errorf("report:\n%s", txt)
	}
}

// Component-tracker integration: merged same-type streams detect a short
// network dip from staggered sensors through the Fanout emitter path.
func TestComponentTrackerIntegration(t *testing.T) {
	// Feed the tracker from server records of a congested run.
	cl := cluster.New(cluster.Config{Nodes: 2, RanksPerNode: 4})
	probe, err := vsensor.Run(facadeSrc, vsensor.Options{Ranks: 8, Cluster: cl, Uninstrumented: true})
	if err != nil {
		t.Fatal(err)
	}
	mid := probe.Result.TotalNs / 2
	cl2 := cluster.New(cluster.Config{Nodes: 2, RanksPerNode: 4})
	cl2.AddNetWindow(mid/2, mid*3/2, 0.2)
	rep, err := vsensor.Run(facadeSrc, vsensor.Options{Ranks: 8, Cluster: cl2})
	if err != nil {
		t.Fatal(err)
	}
	var meta []detect.Sensor
	for _, s := range rep.Instrumented.Sensors {
		meta = append(meta, detect.Sensor{ID: s.ID, Type: s.Type, Name: s.Name})
	}
	tr := detect.NewComponentTracker(meta, 500_000, 0.8)
	for _, r := range rep.Server.Records() {
		tr.OnSlice(r)
	}
	events := tr.Finish()
	netHit := false
	for _, e := range events {
		if e.Type.String() == "Net" && e.SliceNs >= mid/2-1_000_000 && e.SliceNs < mid*3/2+1_000_000 {
			netHit = true
		}
	}
	if !netHit {
		t.Errorf("merged network stream missed the window; %d events", len(events))
	}
}

func TestRunScenarioOSNoise(t *testing.T) {
	rep, baseline, err := vsensor.RunScenario("osnoise-cg", vsensor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if baseline != nil {
		t.Error("permanent injection should not need a baseline run")
	}
	if rep.Result.TotalNs <= 0 || len(rep.Server.Records()) == 0 {
		t.Error("scenario run produced no data")
	}
}

func TestRunScenarioWindowed(t *testing.T) {
	rep, baseline, err := vsensor.RunScenario("iostorm-btio", vsensor.Options{Ranks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if baseline == nil {
		t.Fatal("windowed scenario requires a baseline")
	}
	if rep.Result.TotalNs <= baseline.Result.TotalNs {
		t.Errorf("injected run should be slower: %d vs %d", rep.Result.TotalNs, baseline.Result.TotalNs)
	}
}

func TestRunScenarioUnknown(t *testing.T) {
	if _, _, err := vsensor.RunScenario("nope", vsensor.Options{}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if len(vsensor.ScenarioNames()) < 5 {
		t.Error("scenario names missing")
	}
}

// The §5.3 short-sensor rule end-to-end: a sensor whose executions are a
// few hundred nanoseconds gets disabled at runtime, and its records stop.
func TestShortSensorDisabledEndToEnd(t *testing.T) {
	src := `
func main() {
    for (int i = 0; i < 500; i++) {
        for (int tiny = 0; tiny < 2; tiny++) {
            flops(20);
        }
        for (int big = 0; big < 50; big++) {
            flops(4000);
        }
    }
}`
	rep, err := vsensor.Run(src, vsensor.Options{
		Ranks:  1,
		Detect: detect.Config{DisableShortNs: 2_000, WarmupRecords: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Detectors[0]
	var tinyID, bigID = -1, -1
	for _, s := range rep.Instrumented.Sensors {
		if s.Snippet.Loop != nil && s.Snippet.Loop.IndVar == "tiny" {
			tinyID = s.ID
		}
		if s.Snippet.Loop != nil && s.Snippet.Loop.IndVar == "big" {
			bigID = s.ID
		}
	}
	if tinyID < 0 || bigID < 0 {
		t.Fatalf("sensors not found: %v", rep.Instrumented.Sensors)
	}
	if !d.Disabled(tinyID) {
		t.Error("tiny sensor not disabled at runtime")
	}
	if d.Disabled(bigID) {
		t.Error("big sensor wrongly disabled")
	}
	if d.Dropped() == 0 {
		t.Error("no records dropped after disabling")
	}
}

// MaxSteps propagates through the facade.
func TestFacadeMaxSteps(t *testing.T) {
	src := `func main() { while (1 == 1) { flops(1); } }`
	_, err := vsensor.Run(src, vsensor.Options{Ranks: 1, MaxSteps: 50_000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("err = %v", err)
	}
}

// Stdout propagates through the facade and is rank-tagged.
func TestFacadeStdout(t *testing.T) {
	var buf bytes.Buffer
	src := `func main() { print("hello", mpi_comm_rank()); }`
	if _, err := vsensor.Run(src, vsensor.Options{Ranks: 2, Stdout: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[rank 0] hello 0") || !strings.Contains(out, "[rank 1] hello 1") {
		t.Errorf("stdout:\n%s", out)
	}
}

// Dynamic rules end-to-end (§5.3): a sensor whose first half of the run
// executes with high cache miss (and commensurately slower) looks like
// variance without grouping; with miss-rate buckets each group is
// self-consistent except at the single phase boundary.
func TestDynamicRulesEndToEnd(t *testing.T) {
	src := `
func main() {
    for (int i = 0; i < 4000; i++) {
        for (int k = 0; k < 10; k++) {
            flops(2000);
        }
    }
}`
	// Measure the clean per-iteration period to place the slow window.
	clean, err := vsensor.Run(src, vsensor.Options{Ranks: 1, CollectRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Records) < 4000 {
		t.Fatalf("records = %d", len(clean.Records))
	}
	period := clean.Records[1].Start - clean.Records[0].Start
	// Fast phase first (the §5.3 standard is the fastest record seen so
	// far, so only slowdowns relative to history are detectable).
	slowStart := 2000 * period

	missRate := func(rank, sensor int, execIdx int64) float64 {
		if execIdx >= 2000 {
			return 0.45 // high-miss phase
		}
		return 0.05
	}
	run := func(buckets []float64) int {
		cl := cluster.New(cluster.Config{Nodes: 1, RanksPerNode: 1})
		cl.AddCPUNoise(0, slowStart, int64(1)<<62, 0.6) // the high-miss phase runs slower
		rep, err := vsensor.Run(src, vsensor.Options{
			Ranks:    1,
			Cluster:  cl,
			MissRate: missRate,
			Detect:   detect.Config{SliceNs: 500_000, VarianceThreshold: 0.75, MissRateBuckets: buckets},
		})
		if err != nil {
			t.Fatal(err)
		}
		return len(rep.Events())
	}
	plain := run(nil)
	grouped := run([]float64{0.2, 1.01})
	if plain < 5 {
		t.Fatalf("without grouping the high-miss phase should read as variance: %d", plain)
	}
	if grouped >= plain/2 {
		t.Errorf("grouping should remove most false variance: plain=%d grouped=%d", plain, grouped)
	}
}

// Two simultaneous problems — a bad node and a network congestion window —
// are separated by component and shape in one report.
func TestCombinedInjections(t *testing.T) {
	app := apps.MustGet("CG", apps.Scale{Iters: 200, Work: 200})
	mk := func() *cluster.Cluster {
		return cluster.New(cluster.Config{Nodes: 8, RanksPerNode: 4})
	}
	probe, err := vsensor.Run(app.Source, vsensor.Options{Ranks: 32, Cluster: mk(), Uninstrumented: true})
	if err != nil {
		t.Fatal(err)
	}
	total := probe.Result.TotalNs

	cl := mk()
	cl.SetNodeMemSpeed(6, 0.5)                // ranks 24-27, persistent
	cl.AddNetWindow(total/3, 2*total/3, 0.15) // mid-run congestion
	rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: 32, Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	findings := rep.Findings(2 * time.Millisecond)
	var compBand, netWindow bool
	for _, f := range findings {
		if f.Component == ir.Computation && f.Kind == vis.BadRanks && f.FirstRank <= 24 && f.LastRank >= 27 {
			compBand = true
		}
		if f.Component == ir.Network && (f.Kind == vis.DegradedPeriod || f.Kind == vis.LocalizedBlock) {
			netWindow = true
		}
	}
	if !compBand {
		t.Errorf("bad-node band missing from findings: %+v", findings)
	}
	if !netWindow {
		t.Errorf("network window missing from findings: %+v", findings)
	}
}
