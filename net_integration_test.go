package vsensor_test

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	vsensor "vsensor"
	"vsensor/internal/detect"
	"vsensor/internal/netsrv"
	"vsensor/internal/obs"
	"vsensor/internal/server"
)

const netTestSrc = `
func main() {
    for (int i = 0; i < 20; i++) {
        for (int k = 0; k < 8; k++) {
            flops(4000);
        }
        mpi_allreduce(64, 1.0);
    }
}`

func sortedRecords(recs []detect.SliceRecord) []detect.SliceRecord {
	out := append([]detect.SliceRecord(nil), recs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Sensor != b.Sensor {
			return a.Sensor < b.Sensor
		}
		return a.SliceNs < b.SliceNs
	})
	return out
}

// Listen mode is the same pipeline with the record path squeezed through
// the real wire protocol on loopback TCP: the run must see the identical
// record set, coverage, and data volume as the plain in-process run.
func TestListenModeMatchesInProcess(t *testing.T) {
	direct, err := vsensor.Run(netTestSrc, vsensor.Options{Ranks: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	networked, err := vsensor.Run(netTestSrc, vsensor.Options{
		Ranks: 4, Seed: 7, Listen: "127.0.0.1:0", RunID: "listen-mode",
	})
	if err != nil {
		t.Fatal(err)
	}
	if networked.Service == nil || networked.Session == nil || networked.Link == nil {
		t.Fatalf("Listen run missing net plumbing: service=%v session=%v link=%v",
			networked.Service, networked.Session, networked.Link)
	}
	if networked.Service.Tenant("listen-mode") != networked.Server {
		t.Fatal("service tenant is not the run's server")
	}
	got, want := sortedRecords(networked.Server.Records()), sortedRecords(direct.Server.Records())
	if len(got) != len(want) {
		t.Fatalf("networked run has %d records, direct %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs:\n got: %+v\nwant: %+v", i, got[i], want[i])
		}
	}
	if g, w := networked.Coverage(), direct.Coverage(); g.IngestedRecords != w.IngestedRecords || !g.Complete() {
		t.Fatalf("coverage differs: got %+v want %+v", g, w)
	}
	if g, w := networked.DataVolume(), direct.DataVolume(); g != w {
		t.Fatalf("data volume %d, want %d", g, w)
	}
	if st := networked.Service.Stats(); st.FramesIn == 0 || st.Sessions != 1 {
		t.Fatalf("no frames actually crossed the socket: %+v", st)
	}
}

// Connect mode ships the records to an external service: the run itself
// has no server, and the remote tenant ends up with the same record set an
// in-process run produces.
func TestConnectModeDeliversToRemoteService(t *testing.T) {
	direct, err := vsensor.Run(netTestSrc, vsensor.Options{Ranks: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := netsrv.Listen("127.0.0.1:0", netsrv.Config{Shards: server.DefaultShards})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rep, err := vsensor.Run(netTestSrc, vsensor.Options{
		Ranks: 4, Seed: 7, Connect: svc.Addr().String(), RunID: "remote-run",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Server != nil {
		t.Fatal("Connect run should have no local server")
	}
	if rep.Session == nil || rep.Link == nil {
		t.Fatal("Connect run missing session/link")
	}
	if rep.DataVolume() != 0 || rep.Snapshot() != nil {
		t.Fatal("local read surface should be empty in Connect mode")
	}
	ten := svc.Tenant("remote-run")
	if ten == nil {
		t.Fatalf("remote tenant missing (runs: %v)", svc.RunIDs())
	}
	got, want := sortedRecords(ten.Records()), sortedRecords(direct.Server.Records())
	if len(got) != len(want) {
		t.Fatalf("remote tenant has %d records, direct run %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs:\n got: %+v\nwant: %+v", i, got[i], want[i])
		}
	}
	if !ten.Coverage().Complete() {
		t.Fatalf("remote coverage incomplete: %+v", ten.Coverage())
	}
}

// Options.Reconnect routes the record path through the self-healing
// session. On a healthy loopback wire it must be invisible — identical
// records and coverage, zero reconnects or outages — while the resume
// bookkeeping shows up in Report.Resilient and the /status net block.
func TestReconnectModeMatchesInProcess(t *testing.T) {
	direct, err := vsensor.Run(netTestSrc, vsensor.Options{Ranks: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	networked, err := vsensor.Run(netTestSrc, vsensor.Options{
		Ranks: 4, Seed: 7, Listen: "127.0.0.1:0", RunID: "resilient-mode", Obs: o,
		Reconnect: &netsrv.ReconnectConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if networked.Resilient == nil || networked.Session != nil || networked.Link == nil {
		t.Fatalf("Reconnect run plumbing wrong: resilient=%v session=%v link=%v",
			networked.Resilient, networked.Session, networked.Link)
	}
	got, want := sortedRecords(networked.Server.Records()), sortedRecords(direct.Server.Records())
	if len(got) != len(want) {
		t.Fatalf("resilient run has %d records, direct %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs:\n got: %+v\nwant: %+v", i, got[i], want[i])
		}
	}
	if !networked.Coverage().Complete() {
		t.Fatalf("resilient coverage incomplete: %+v", networked.Coverage())
	}
	st := networked.Resilient.Stats()
	if st.DialAttempts < 1 || st.Reconnects != 0 || st.Outages != 0 {
		t.Fatalf("healthy-wire resilient stats off: %+v", st)
	}

	ts := httptest.NewServer(o.Handler())
	defer ts.Close()
	res, err := ts.Client().Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	var status struct {
		Run struct {
			Reconnect *netsrv.ResilientStats `json:"reconnect"`
		} `json:"run"`
	}
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if status.Run.Reconnect == nil || status.Run.Reconnect.DialAttempts < 1 {
		t.Fatalf("/status missing reconnect stats:\n%s", body)
	}
}

// Connect mode with Reconnect: the external tenant sees the same record
// set, and the run's summary surface is the resilient session.
func TestReconnectConnectModeDelivers(t *testing.T) {
	direct, err := vsensor.Run(netTestSrc, vsensor.Options{Ranks: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := netsrv.Listen("127.0.0.1:0", netsrv.Config{Shards: server.DefaultShards})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rep, err := vsensor.Run(netTestSrc, vsensor.Options{
		Ranks: 4, Seed: 7, Connect: svc.Addr().String(), RunID: "resilient-remote",
		Reconnect: &netsrv.ReconnectConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Server != nil || rep.Session != nil {
		t.Fatal("Connect+Reconnect run should have neither local server nor plain session")
	}
	if rep.Resilient == nil || rep.Link == nil {
		t.Fatal("Connect+Reconnect run missing resilient session/link")
	}
	ten := svc.Tenant("resilient-remote")
	if ten == nil {
		t.Fatalf("remote tenant missing (runs: %v)", svc.RunIDs())
	}
	got, want := sortedRecords(ten.Records()), sortedRecords(direct.Server.Records())
	if len(got) != len(want) {
		t.Fatalf("remote tenant has %d records, direct run %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs:\n got: %+v\nwant: %+v", i, got[i], want[i])
		}
	}
	if !ten.Coverage().Complete() {
		t.Fatalf("remote coverage incomplete: %+v", ten.Coverage())
	}
}

// With Obs attached, a Listen run's /status must surface the network
// layer next to the server snapshot: the bound address and the
// accept/shed/session counters, plus the service counters in /metrics.
func TestListenModeStatusExposesNet(t *testing.T) {
	o := obs.New()
	rep, err := vsensor.Run(netTestSrc, vsensor.Options{
		Ranks: 4, Seed: 7, Listen: "127.0.0.1:0", RunID: "status-run", Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(o.Handler())
	defer ts.Close()

	res, err := ts.Client().Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	var st struct {
		Run struct {
			Listen string         `json:"listen"`
			Net    map[string]any `json:"net"`
		} `json:"run"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if st.Run.Listen != rep.Service.Addr().String() {
		t.Errorf("/status listen = %q, want %q", st.Run.Listen, rep.Service.Addr())
	}
	if acc, ok := st.Run.Net["accepted"].(float64); !ok || acc < 1 {
		t.Errorf("/status net.accepted = %v, want >= 1 (net: %v)", st.Run.Net["accepted"], st.Run.Net)
	}

	res, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(metrics), "net_accepted_total 1") {
		t.Errorf("/metrics missing net_accepted_total:\n%s", metrics)
	}
}

// The Listen/Connect option-combination errors must surface before any
// execution happens.
func TestNetworkedOptionValidation(t *testing.T) {
	if _, err := vsensor.Run(netTestSrc, vsensor.Options{
		Ranks: 2, Listen: "127.0.0.1:0", Connect: "127.0.0.1:1",
	}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("Listen+Connect error = %v", err)
	}
	if _, err := vsensor.Run(netTestSrc, vsensor.Options{
		Ranks: 2, Connect: "127.0.0.1:1", Durability: &server.DurabilityConfig{},
	}); err == nil || !strings.Contains(err.Error(), "Durability") {
		t.Errorf("Connect+Durability error = %v", err)
	}
	if _, err := vsensor.Run(netTestSrc, vsensor.Options{
		Ranks: 2, Reconnect: &netsrv.ReconnectConfig{},
	}); err == nil || !strings.Contains(err.Error(), "Reconnect") {
		t.Errorf("Reconnect without network error = %v", err)
	}
	if _, err := vsensor.Run(netTestSrc, vsensor.Options{
		Ranks: 2, DialRetry: &netsrv.RetryPolicy{},
	}); err == nil || !strings.Contains(err.Error(), "DialRetry") {
		t.Errorf("DialRetry without Connect error = %v", err)
	}
	// A refused/unreachable dial is an error, not a hang.
	if _, err := vsensor.Run(netTestSrc, vsensor.Options{
		Ranks: 2, Connect: "127.0.0.1:1",
	}); err == nil {
		t.Error("unreachable Connect address did not error")
	}
}
