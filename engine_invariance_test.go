package vsensor_test

import (
	"fmt"
	"hash/fnv"
	"testing"

	vsensor "vsensor"
	"vsensor/internal/apps"
	"vsensor/internal/cluster"
)

// Engine-invariance goldens: full pipeline runs (8 ranks, noisy cluster,
// batched record transport, detection) captured on the scope-map
// interpreter that the slot-resolved engine replaced. The simulation is
// deterministic, so the final virtual time, every aggregated server record
// (hashed), and the detection-event count must stay bit-identical across
// engine changes — this is the acceptance gate that the resolve→execute
// split is semantics-preserving end to end, not just on toy programs.
var invarianceGoldens = []struct {
	app         string
	totalNs     int64
	records     int
	recordsHash uint64
	events      int
}{
	{"CG", 975606, 48, 0xe74e7bf7da97c56a, 0},
	{"FT", 1794342, 80, 0x3191dcdd49e6988b, 0},
	{"LULESH", 2217391, 113, 0xf031003a0496893a, 1},
	{"AMG", 1846136, 32, 0xbd784018a9504cec, 1},
}

func TestEngineInvariance(t *testing.T) {
	for _, tc := range invarianceGoldens {
		t.Run(tc.app, func(t *testing.T) {
			app := apps.MustGet(tc.app, apps.Scale{Iters: 12, Work: 25})
			cl := cluster.New(cluster.Config{Nodes: 2, RanksPerNode: 4, Seed: 7, JitterPct: 0.02})
			cl.SetOSNoise(150_000, 15_000, 0.25)
			cl.AddCPUNoise(1, 200_000, 900_000, 0.35)
			rep, err := vsensor.Run(app.Source, vsensor.Options{
				Ranks: 8, Cluster: cl, Seed: 42, PMUJitterPct: 0.004, BatchSize: 32,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Result.TotalNs != tc.totalNs {
				t.Errorf("TotalNs = %d, want %d (virtual time is no longer invariant)", rep.Result.TotalNs, tc.totalNs)
			}
			recs := rep.Server.Records()
			if len(recs) != tc.records {
				t.Errorf("server records = %d, want %d", len(recs), tc.records)
			}
			h := fnv.New64a()
			for _, r := range recs {
				fmt.Fprintf(h, "%d|%d|%d|%d|%d|%.9g|%.9g;", r.Sensor, r.Group, r.Rank, r.SliceNs, r.Count, r.AvgNs, r.AvgInstr)
			}
			if got := h.Sum64(); got != tc.recordsHash {
				t.Errorf("records hash = %#x, want %#x", got, tc.recordsHash)
			}
			if got := len(rep.Events()); got != tc.events {
				t.Errorf("detection events = %d, want %d", got, tc.events)
			}
		})
	}
}
