package vsensor_test

// End-to-end validation property (the heart of the paper's §6.2): for
// randomly generated programs, every instrumented v-sensor must have a
// genuinely fixed workload at runtime — with PMU jitter disabled, the exact
// instruction count of every execution of a (process-fixed, dynamic-rule-
// free) sensor must be identical on a given rank; and for process-fixed
// sensors, identical across ranks too. Any counterexample is a soundness
// bug in the identification algorithm.

import (
	"fmt"
	"strings"
	"testing"

	vsensor "vsensor"
	"vsensor/internal/vm"
)

// progGen builds random structured mini-C programs from a seed. Programs
// mix fixed loops, parameter- and rank-dependent loops, accumulators,
// branches, helper functions and MPI collectives, so both sensor and
// non-sensor snippets occur.
type progGen struct {
	rng uint64
	sb  strings.Builder
}

func (g *progGen) next(n int) int {
	g.rng = g.rng*6364136223846793005 + 1442695040888963407
	return int((g.rng >> 33) % uint64(n))
}

func (g *progGen) generate() string {
	g.sb.Reset()
	nHelpers := 1 + g.next(3)
	for h := 0; h < nHelpers; h++ {
		g.helper(h)
	}
	g.sb.WriteString("func main() {\n")
	g.sb.WriteString("    int rank = mpi_comm_rank();\n")
	g.sb.WriteString("    int acc = 0;\n")
	fmt.Fprintf(&g.sb, "    for (int t = 0; t < %d; t++) {\n", 4+g.next(6))
	nStmts := 2 + g.next(4)
	for s := 0; s < nStmts; s++ {
		g.mainStmt(nHelpers)
	}
	g.sb.WriteString("        acc += 1;\n")
	g.sb.WriteString("    }\n}\n")
	return g.sb.String()
}

func (g *progGen) helper(id int) {
	fmt.Fprintf(&g.sb, "func helper%d(int n) {\n", id)
	switch g.next(3) {
	case 0: // fixed inner loop
		fmt.Fprintf(&g.sb, "    for (int i = 0; i < %d; i++) {\n        flops(%d);\n    }\n",
			3+g.next(8), 10+g.next(200))
	case 1: // parameter-bounded loop
		fmt.Fprintf(&g.sb, "    for (int i = 0; i < n; i++) {\n        flops(%d);\n        mem(%d);\n    }\n",
			10+g.next(100), 5+g.next(50))
	default: // branch + loop
		fmt.Fprintf(&g.sb, "    if (n > %d) {\n        flops(%d);\n    }\n", g.next(20),
			10+g.next(100))
		fmt.Fprintf(&g.sb, "    for (int i = 0; i < %d; i++) {\n        mem(%d);\n    }\n",
			2+g.next(6), 10+g.next(40))
	}
	g.sb.WriteString("}\n\n")
}

func (g *progGen) mainStmt(nHelpers int) {
	switch g.next(7) {
	case 0: // fixed-arg helper call (sensor)
		fmt.Fprintf(&g.sb, "        helper%d(%d);\n", g.next(nHelpers), 2+g.next(10))
	case 1: // iteration-dependent helper call (not a sensor)
		fmt.Fprintf(&g.sb, "        helper%d(t);\n", g.next(nHelpers))
	case 2: // rank-dependent helper call (not process-fixed)
		fmt.Fprintf(&g.sb, "        helper%d(rank %% 4);\n", g.next(nHelpers))
	case 3: // accumulator-dependent loop (not a sensor)
		fmt.Fprintf(&g.sb, "        for (int a = 0; a < acc %% 7; a++) {\n            flops(%d);\n        }\n",
			5+g.next(50))
	case 4: // fixed local loop (sensor)
		fmt.Fprintf(&g.sb, "        for (int f = 0; f < %d; f++) {\n            flops(%d);\n        }\n",
			2+g.next(8), 5+g.next(80))
	case 5: // fixed collective (network sensor)
		fmt.Fprintf(&g.sb, "        mpi_allreduce(%d, 1.0);\n", 8+8*g.next(8))
	default: // varying collective (not a sensor)
		g.sb.WriteString("        mpi_allreduce(8 + t * 8, 1.0);\n")
	}
}

func TestPropertyInstrumentedSensorsAreFixedWorkload(t *testing.T) {
	const (
		seeds = 40
		ranks = 4
	)
	checked := 0
	for seed := 0; seed < seeds; seed++ {
		g := &progGen{rng: uint64(seed)*0x9e3779b97f4a7c15 + 1}
		src := g.generate()

		var recs []vm.Record
		rep, err := vsensor.Run(src, vsensor.Options{Ranks: ranks, CollectRecords: true, Seed: int64(seed)})
		if err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
		recs = rep.Records

		processFixed := make(map[int]bool)
		for _, s := range rep.Instrumented.Sensors {
			processFixed[s.ID] = s.ProcessFixed
		}

		// Per (sensor, rank): exact instruction counts must be constant.
		type key struct{ sensor, rank int }
		perRank := make(map[key]int64)
		perSensor := make(map[int]int64)
		for _, r := range recs {
			k := key{r.Sensor, r.Rank}
			if prev, ok := perRank[k]; ok && prev != r.Instr {
				t.Fatalf("seed %d: sensor %d rank %d workload varies: %d vs %d\nsource:\n%s",
					seed, r.Sensor, r.Rank, prev, r.Instr, src)
			}
			perRank[k] = r.Instr
			checked++

			if processFixed[r.Sensor] {
				if prev, ok := perSensor[r.Sensor]; ok && prev != r.Instr {
					t.Fatalf("seed %d: process-fixed sensor %d differs across ranks: %d vs %d\nsource:\n%s",
						seed, r.Sensor, prev, r.Instr, src)
				}
				perSensor[r.Sensor] = r.Instr
			}
		}
	}
	if checked < 1000 {
		t.Errorf("property checked only %d records; generator too weak?", checked)
	}
}

// Determinism of the full pipeline across repeated runs.
func TestPropertyPipelineDeterministic(t *testing.T) {
	g := &progGen{rng: 424242}
	src := g.generate()
	run := func() (int64, int) {
		rep, err := vsensor.Run(src, vsensor.Options{Ranks: 4, CollectRecords: true, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Result.TotalNs, len(rep.Records)
	}
	t1, n1 := run()
	t2, n2 := run()
	if t1 != t2 || n1 != n2 {
		t.Errorf("pipeline not deterministic: (%d,%d) vs (%d,%d)", t1, n1, t2, n2)
	}
}
