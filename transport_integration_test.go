package vsensor_test

import (
	"strings"
	"testing"

	vsensor "vsensor"
	"vsensor/internal/cluster"
	"vsensor/internal/obs"
	"vsensor/internal/transport"
)

const lossySrc = `
func main() {
    for (int i = 0; i < 50; i++) {
        for (int k = 0; k < 8; k++) {
            mem(4000);
        }
        mpi_allreduce(64, 1.0);
    }
}`

func lossyCluster() *cluster.Cluster {
	cl := cluster.New(cluster.Config{Nodes: 4, RanksPerNode: 4})
	cl.SetNodeMemSpeed(2, 0.5)
	return cl
}

// The full pipeline over the fault-injectable transport: every injected
// outlier must still be detected, and coverage must account for every record
// the ranks sent.
func TestPipelineOverLossyTransport(t *testing.T) {
	plan := &transport.FaultPlan{
		Seed: 9, Drop: 0.25, Dup: 0.1, Reorder: 0.12, Corrupt: 0.05,
		CrashAfterFrames: 30, CrashDownFrames: 10,
	}
	rep, err := vsensor.Run(lossySrc, vsensor.Options{
		Ranks: 16, Cluster: lossyCluster(), Faults: plan, BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Link == nil {
		t.Fatal("Faults set but Report.Link is nil")
	}
	cov := rep.Coverage()
	if !cov.Complete() || cov.ExpectedRecords == 0 {
		t.Fatalf("coverage = %+v, want complete", cov)
	}
	if cov.DupFrames == 0 && cov.ChecksumErrors == 0 {
		t.Errorf("fault plan injected nothing? coverage = %+v", cov)
	}

	// The slow node's ranks (8-11) must dominate the inter-process outliers.
	report := rep.Server.InterProcessReport(0.85)
	if report.Confidence != 1 {
		t.Errorf("confidence = %v with complete coverage", report.Confidence)
	}
	byNode := map[int]int{}
	for _, o := range report.Outliers {
		byNode[o.Rank/4]++
	}
	if len(report.Outliers) == 0 {
		t.Fatal("no outliers detected over the lossy link")
	}
	best, bestN := -1, -1
	for n, c := range byNode {
		if c > bestN {
			best, bestN = n, c
		}
	}
	if best != 2 {
		t.Errorf("dominant outlier node = %d (counts %v), want the injected node 2", best, byNode)
	}
}

// The default path (no Faults, no Transport) must not create a link — it is
// the bit-identical direct delivery that TestEngineInvariance pins.
func TestDefaultPathHasNoLink(t *testing.T) {
	rep, err := vsensor.Run(lossySrc, vsensor.Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Link != nil {
		t.Error("direct path created a transport link")
	}
	if cov := rep.Coverage(); !cov.Complete() {
		t.Errorf("direct path coverage = %+v", cov)
	}
}

// An explicit Transport config without faults routes through the link too
// (production-shaped path over a perfect network).
func TestTransportConfigWithoutFaults(t *testing.T) {
	rep, err := vsensor.Run(lossySrc, vsensor.Options{
		Ranks: 4, Transport: &transport.Config{BatchSize: 4, MaxRetries: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Link == nil {
		t.Fatal("Transport set but no link created")
	}
	if !rep.Link.Plan().Zero() {
		t.Errorf("plan = %v, want zero", rep.Link.Plan())
	}
	if cov := rep.Coverage(); !cov.Complete() || cov.ExpectedRecords == 0 {
		t.Errorf("coverage = %+v", cov)
	}
}

// Transport metrics and coverage gauges surface through the obs registry.
func TestTransportObsMetrics(t *testing.T) {
	o := obs.New()
	plan := &transport.FaultPlan{Seed: 4, Drop: 0.3, Corrupt: 0.05}
	rep, err := vsensor.Run(lossySrc, vsensor.Options{
		Ranks: 8, Cluster: lossyCluster(), Faults: plan, BatchSize: 4, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := o.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"transport_frames_total", "transport_acked_total", "transport_retries_total",
		"transport_dropped_total", "server_records_expected", "server_records_ingested",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metric %s missing from /metrics", name)
		}
	}
	reg := o.Registry()
	if v := reg.Counter("transport_retries_total").Value(); v == 0 {
		t.Error("30% drop produced no retries in transport_retries_total")
	}
	cov := rep.Coverage()
	exp := reg.Gauge("server_records_expected").Value()
	ing := reg.Gauge("server_records_ingested").Value()
	if exp != float64(cov.ExpectedRecords) || ing != float64(cov.IngestedRecords) {
		t.Errorf("gauges expected=%v ingested=%v, coverage %+v", exp, ing, cov)
	}
}
