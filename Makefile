GO ?= go

.PHONY: build test race vet bench-obs bench-vm check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Observability hot-path benchmarks; writes BENCH_obs.json for regression
# tracking across PRs.
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkCounterInc$$|BenchmarkHistogramObserve$$|BenchmarkSpanStartEnd$$' \
	    -benchmem -benchtime 2s ./internal/obs

# VM execution-engine benchmarks (variable access, interpreter hot loop,
# end-to-end instrumented rank run); scripts/check.sh writes the same set
# to BENCH_vm.json for regression tracking across PRs.
bench-vm:
	$(GO) test -run '^$$' -bench 'BenchmarkVarAccess$$|BenchmarkInterpHotLoop$$|BenchmarkRankRunE2E$$' \
	    -benchmem -benchtime 2s ./internal/vm

# The full gate: build + vet + race tests + race bench smoke + obs/vm
# benchmarks (writes BENCH_obs.json and BENCH_vm.json).
check:
	scripts/check.sh

clean:
	rm -f BENCH_obs.json BENCH_vm.json vsensor.test
