GO ?= go

.PHONY: build test race vet bench-obs check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Observability hot-path benchmarks; writes BENCH_obs.json for regression
# tracking across PRs.
bench-obs:
	scripts/check.sh BENCH_obs.json

# The full gate: build + vet + race tests + obs benchmarks.
check:
	scripts/check.sh

clean:
	rm -f BENCH_obs.json vsensor.test
