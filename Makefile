GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet cover fuzz chaos chaos-recover chaos-net chaos-proxy bench-obs bench-vm bench-transport bench-server bench-lineage bench-load bench-read bench-net check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Coverage gate: full suite with -coverprofile, per-package delta table
# against scripts/coverage_baseline.txt, hard failure if the total drops
# below the seed baseline. Writes cover.out for `go tool cover -html`.
cover:
	sh scripts/cover.sh

# Coverage-guided fuzz smoke over every fuzz target (wire codec, server
# ingest, WAL replay, mini-C parser and lexer, HTTP conditional-read
# protocol, network session handshake), FUZZTIME each. `go test -fuzz`
# takes one target per invocation, so they run sequentially.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzBatchRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run '^$$' -fuzz 'FuzzCheckBatch$$' -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run '^$$' -fuzz 'FuzzWALReplay$$' -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run '^$$' -fuzz 'FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/minic
	$(GO) test -run '^$$' -fuzz 'FuzzLex$$' -fuzztime $(FUZZTIME) ./internal/minic
	$(GO) test -run '^$$' -fuzz 'FuzzETagCursor$$' -fuzztime $(FUZZTIME) ./internal/obs
	$(GO) test -run '^$$' -fuzz 'FuzzSession$$' -fuzztime $(FUZZTIME) ./internal/netsrv

# The transport chaos test (drops+dups+reorder+corruption+crash-restart,
# concurrent ranks) under the race detector.
chaos:
	$(GO) test -race -run 'TestChaosExactlyOnce$$' -count 1 ./internal/transport

# The kill-and-recover chaos gate under the race detector: 120 seeded
# trials of crash + disk faults (torn writes, lying fsyncs, bit rot) +
# WAL/snapshot recovery + resumed ingest, each proven exactly equal to a
# never-crashed server while a poller races the crash.
chaos-recover:
	$(GO) test -race -run 'TestKillRecoverConformance$$' -count 1 ./internal/server

# The socket suites under the race detector: the transport chaos and
# kill-recover conformance properties re-run through vSS1 sessions over
# real loopback TCP, plus the multi-tenant differential property (N runs
# on one listener bit-identical to N isolated servers).
chaos-net:
	$(GO) test -race -run 'TestSocketChaosExactlyOnce$$|TestSocketKillRecoverConformance$$|TestMultiTenantDifferentialConformance$$' \
	    -count 1 ./internal/netsrv

# The wire-level chaos suites under the race detector: a seeded TCP
# chaos proxy (resets, partitions, stalls, bit flips, split/coalesced
# writes, half-open closes) between a self-healing client and the
# service, with tenant crash-recovery and disk faults layered on top —
# final state proven exactly equal to an undisturbed reference.
chaos-proxy:
	$(GO) test -race -run 'TestProxyChaosExactlyOnce$$|TestProxyKillRecoverConformance$$' \
	    -count 1 ./internal/netsrv

# Observability hot-path benchmarks; writes BENCH_obs.json for regression
# tracking across PRs.
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkCounterInc$$|BenchmarkHistogramObserve$$|BenchmarkSpanStartEnd$$' \
	    -benchmem -benchtime 2s ./internal/obs

# VM execution-engine benchmarks (variable access, interpreter hot loop,
# end-to-end instrumented rank run); scripts/check.sh writes the same set
# to BENCH_vm.json for regression tracking across PRs.
bench-vm:
	$(GO) test -run '^$$' -bench 'BenchmarkVarAccess$$|BenchmarkInterpHotLoop$$|BenchmarkRankRunE2E$$' \
	    -benchmem -benchtime 2s ./internal/vm

# Record-transport benchmarks (frame codec, fault-free and faulty flush
# paths); scripts/check.sh writes the same set to BENCH_transport.json.
bench-transport:
	$(GO) test -run '^$$' -bench 'BenchmarkFrameRoundTrip$$|BenchmarkConnFlush$$|BenchmarkConnFlushFaulty$$' \
	    -benchmem -benchtime 2s ./internal/transport

# Analysis-server ingest benchmarks: the sharded incremental engine against
# the embedded single-lock baseline at 64/512/4096 ranks; scripts/check.sh
# writes the same set to BENCH_server.json.
bench-server:
	$(GO) test -run '^$$' -bench 'BenchmarkIngestParallel$$|BenchmarkIngestSingleLock$$' \
	    -benchmem -benchtime 2s ./internal/server

# Lineage-overhead benchmarks: streaming ingest with record-lineage tracing
# off vs on (1/256 sampling) at 64 and 4096 ranks; scripts/check.sh writes
# the same set to BENCH_lineage.json and gates the 4096-rank overhead at 5%.
bench-lineage:
	$(GO) test -run '^$$' -bench 'BenchmarkIngestLineage$$' \
	    -benchmem -benchtime 2s ./internal/server

# Durable-ingest load harness: the identical workload driven through the
# per-op, group-commit, and coalesced WAL encoders at 64/512/4096 ranks
# with a modeled device fsync latency. Writes BENCH_load.json;
# scripts/check.sh runs the same suite and gates group-commit's 4096-rank
# speedup over per-op.
bench-load:
	sh scripts/bench_load.sh

# Read-path storm benchmarks: streaming ingest at 64/512/4096 ranks while
# 0/100/10k dashboard pollers hit /outliers, with and without ETag
# revalidation; scripts/check.sh writes the same suite to BENCH_read.json
# and gates the 10k-poller ingest tax at READ_MAX_TAX (default 10) percent.
bench-read:
	$(GO) test -run '^$$' -bench 'BenchmarkReadStorm$$' \
	    -benchmem -benchtime 2s ./internal/server

# Network-ingest benchmarks: the identical streaming workload delivered
# in-process vs over loopback-TCP vSS1 sessions at 64/512/4096 ranks and
# 1/8/64 tenants; scripts/check.sh writes the same grid to BENCH_net.json
# and gates the 8-tenant TCP number at 4096 ranks within NET_MAX_SLOWDOWN
# (default 2) of the in-process single-tenant one.
bench-net:
	$(GO) test -run '^$$' -bench 'BenchmarkNetIngest$$' \
	    -benchmem -benchtime 2s ./internal/netsrv

# The full gate: build + vet + race tests + race chaos + race conformance +
# coverage gate + fuzz smoke + bench suites (writes BENCH_obs.json,
# BENCH_vm.json, BENCH_transport.json, BENCH_server.json,
# BENCH_lineage.json, BENCH_load.json, BENCH_read.json, BENCH_net.json)
# with the lineage ingest-overhead gate, the group-commit speedup gate,
# the poller-storm read-tax gate, and the TCP-overhead gate.
check:
	scripts/check.sh

clean:
	rm -f BENCH_obs.json BENCH_vm.json BENCH_transport.json BENCH_server.json BENCH_lineage.json BENCH_load.json BENCH_read.json BENCH_net.json cover.out vsensor.test
