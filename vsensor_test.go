package vsensor_test

import (
	"strings"
	"testing"
	"time"

	vsensor "vsensor"
	"vsensor/internal/analysis"
	"vsensor/internal/apps"
	"vsensor/internal/cluster"
	"vsensor/internal/instrument"
	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

func TestPipelineQuickstart(t *testing.T) {
	src := `
func main() {
    for (int i = 0; i < 30; i++) {
        for (int k = 0; k < 10; k++) {
            flops(5000);
        }
        mpi_allreduce(64, 1.0);
    }
}`
	rep, err := vsensor.Run(src, vsensor.Options{Ranks: 4, CollectRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Instrumented.Sensors) != 2 {
		t.Fatalf("sensors = %d", len(rep.Instrumented.Sensors))
	}
	if len(rep.Records) == 0 {
		t.Fatal("no records collected")
	}
	if rep.DataVolume() <= 0 {
		t.Error("no data shipped to analysis server")
	}
	d := rep.Distribution()
	if d.Coverage() <= 0 || d.FrequencyHz() <= 0 {
		t.Errorf("coverage=%v freq=%v", d.Coverage(), d.FrequencyHz())
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := vsensor.Run("func main() {", vsensor.Options{}); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := vsensor.Run("func f() {}\nfunc f() {}", vsensor.Options{}); err == nil {
		t.Error("resolve error not surfaced")
	}
	if _, err := vsensor.Run("func main() { boom(); }", vsensor.Options{Ranks: 1}); err == nil {
		t.Error("runtime error not surfaced")
	}
}

// A bad node (slow memory) shows as a persistent low-performance rank band
// in the computation matrix — the Fig. 21 case study shape.
func TestBadNodeDetected(t *testing.T) {
	app := apps.MustGet("CG", apps.Scale{Iters: 40, Work: 60})
	cl := cluster.New(cluster.Config{Nodes: 8, RanksPerNode: 4})
	cl.SetNodeMemSpeed(5, 0.55) // ranks 20..23

	rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: 32, Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Matrices(20 * time.Millisecond)[ir.Computation]
	if m == nil {
		t.Fatal("no computation matrix")
	}
	bands := m.LowRankBands(0.85, 0.5)
	if len(bands) != 1 {
		t.Fatalf("bands = %+v\n%s", bands, m.ASCII(32, 60))
	}
	if bands[0].First != 20 || bands[0].Last != 23 {
		t.Errorf("band = %+v, want ranks 20-23", bands[0])
	}
	// Inter-process analysis flags the same ranks.
	outs := rep.Server.InterProcessOutliers(0.85)
	if len(outs) == 0 {
		t.Fatal("no inter-process outliers")
	}
	for _, o := range outs {
		if o.Rank < 20 || o.Rank > 23 {
			t.Errorf("unexpected outlier rank %d", o.Rank)
		}
	}
}

// A network degradation window shows as a time-bounded low column across
// ranks in the network matrix — the Fig. 22 case study shape.
func TestNetworkWindowDetected(t *testing.T) {
	app := apps.MustGet("FT", apps.Scale{Iters: 60, Work: 40})
	cl := cluster.New(cluster.Config{Nodes: 8, RanksPerNode: 4})

	// First a clean run to find the run length, then degrade the middle.
	clean, err := vsensor.Run(app.Source, vsensor.Options{Ranks: 32, Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	mid := clean.Result.TotalNs / 2
	cl2 := cluster.New(cluster.Config{Nodes: 8, RanksPerNode: 4})
	cl2.AddNetWindow(mid/2, mid*3/2, 0.15)

	rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: 32, Cluster: cl2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.TotalNs <= clean.Result.TotalNs*12/10 {
		t.Errorf("degraded run should be visibly slower: %d vs %d", rep.Result.TotalNs, clean.Result.TotalNs)
	}
	m := rep.Matrices(20 * time.Millisecond)[ir.Network]
	if m == nil {
		t.Fatal("no network matrix")
	}
	wins := m.LowTimeWindows(0.7, 0.8)
	if len(wins) == 0 {
		t.Fatalf("no low window found\n%s", m.ASCII(32, 60))
	}
	// The window must overlap the injected one.
	found := false
	for _, w := range wins {
		if w.StartNs < mid*3/2 && w.EndNs > mid/2 {
			found = true
		}
	}
	if !found {
		t.Errorf("windows %+v do not overlap injection [%d,%d)", wins, mid/2, mid*3/2)
	}
	// The computation matrix must NOT show the same window (root cause is
	// the network, paper §5.5: the sensor type identifies the component).
	if mc := rep.Matrices(20 * time.Millisecond)[ir.Computation]; mc != nil {
		if cw := mc.LowTimeWindows(0.7, 0.8); len(cw) > 0 {
			t.Errorf("computation matrix wrongly shows windows: %+v", cw)
		}
	}
}

// Instrumentation overhead stays small (paper: <4%).
func TestOverheadUnderFourPercent(t *testing.T) {
	app := apps.MustGet("SP", apps.Scale{Iters: 30, Work: 80})
	base, err := vsensor.Run(app.Source, vsensor.Options{Ranks: 8, Uninstrumented: true})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := vsensor.Run(app.Source, vsensor.Options{Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	overhead := float64(ins.Result.TotalNs-base.Result.TotalNs) / float64(base.Result.TotalNs)
	if overhead > 0.04 {
		t.Errorf("overhead = %.3f, want < 0.04", overhead)
	}
	if overhead < 0 {
		t.Errorf("instrumented run faster than baseline: %.4f", overhead)
	}
}

// The profiler baseline cannot localize injected noise; vSensor can —
// the §6.4 comparison.
func TestNoiseInjectionProfilerVsSensor(t *testing.T) {
	app := apps.MustGet("CG", apps.Scale{Iters: 200, Work: 250})
	mk := func() *cluster.Cluster {
		return cluster.New(cluster.Config{Nodes: 16, RanksPerNode: 2})
	}

	clean, err := vsensor.Run(app.Source, vsensor.Options{Ranks: 32, Cluster: mk(), Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	total := clean.Result.TotalNs

	noisy := mk()
	// Inject noise on nodes 4-5 (ranks 8-11) during the middle third.
	noisy.AddCPUNoise(4, total/3, 2*total/3, 0.3)
	noisy.AddCPUNoise(5, total/3, 2*total/3, 0.3)
	rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: 32, Cluster: noisy, Profile: true})
	if err != nil {
		t.Fatal(err)
	}

	// The profiler sees MPI time grow (misleading) but has no location.
	if rep.Profiler.MeanMPISeconds() <= clean.Profiler.MeanMPISeconds() {
		t.Logf("note: MPI time did not grow (%.3f vs %.3f)", rep.Profiler.MeanMPISeconds(), clean.Profiler.MeanMPISeconds())
	}

	// vSensor's computation matrix localizes the block in time AND ranks.
	m := rep.Matrices(2 * time.Millisecond)[ir.Computation]
	blocks := m.LowBlocks(0.8, 0.02)
	if len(blocks) == 0 {
		t.Fatalf("no variance blocks found\n%s", m.ASCII(32, 60))
	}
	b := blocks[0]
	if b.FirstRank > 11 || b.LastRank < 8 {
		t.Errorf("block ranks [%d,%d], want overlapping 8-11", b.FirstRank, b.LastRank)
	}
	if b.EndNs < total/3 || b.StartNs > 2*total/3 {
		t.Errorf("block time [%d,%d] outside injection window", b.StartNs, b.EndNs)
	}
}

// Trace volume vastly exceeds sensor-record volume (paper: 501.5 MB vs
// 8.8 MB, a ~57x ratio; we require at least 5x on the mini workload).
func TestTraceVolumeComparison(t *testing.T) {
	app := apps.MustGet("CG", apps.Scale{Iters: 60, Work: 40})
	rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: 16, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	traceBytes := rep.Tracer.Bytes()
	sensorBytes := rep.DataVolume()
	if sensorBytes <= 0 || traceBytes <= 0 {
		t.Fatalf("volumes: trace=%d sensor=%d", traceBytes, sensorBytes)
	}
	if traceBytes < 5*sensorBytes {
		t.Errorf("trace should dwarf sensor data: trace=%d sensor=%d", traceBytes, sensorBytes)
	}
}

func TestRunToRunVariance(t *testing.T) {
	// Fig. 1 shape: repeated submissions on a noisy machine vary in time;
	// a clean machine does not.
	app := apps.MustGet("FT", apps.Scale{Iters: 15, Work: 30})
	times := func(noisy bool) []float64 {
		var out []float64
		for run := 0; run < 6; run++ {
			cl := cluster.New(cluster.Config{Nodes: 4, RanksPerNode: 4, Seed: int64(run)})
			if noisy && run%2 == 1 {
				cl.AddNetWindow(0, 1<<62, 0.25)
			}
			rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: 16, Cluster: cl, Uninstrumented: true})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rep.TotalSeconds())
		}
		return out
	}
	noisy := times(true)
	var min, max float64 = noisy[0], noisy[0]
	for _, v := range noisy {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min < 1.5 {
		t.Errorf("noisy runs should vary: %v", noisy)
	}
}

// The detection is on-line: the analysis server accumulates data while the
// job is still running, so a monitoring loop can poll it mid-run
// (paper §2: reports update periodically, no need to wait for the job).
func TestOnlineMonitoringMidRun(t *testing.T) {
	app := apps.MustGet("CG", apps.Scale{Iters: 150, Work: 150})
	rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: 8, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	recs, cursor := rep.Server.RecordsSince(0)
	if len(recs) == 0 || cursor != len(recs) {
		t.Fatalf("cursor API: %d records, cursor %d", len(recs), cursor)
	}
	if more, c2 := rep.Server.RecordsSince(cursor); len(more) != 0 || c2 != cursor {
		t.Error("no new records expected after completion")
	}
	p := rep.Server.Progress()
	if p.Records != len(recs) || p.LatestSliceNs <= 0 {
		t.Errorf("progress = %+v", p)
	}
}

// Users can describe external functions (paper §3.5): an undescribed
// extern poisons its snippet; with a registered description the same call
// becomes a v-sensor.
func TestUserExternDescriptions(t *testing.T) {
	src := `
func main() {
    for (int i = 0; i < 20; i++) {
        for (int k = 0; k < 5; k++) {
            my_library_kernel(256);
        }
    }
}`
	undescribed, err := vsensor.Analyze(src, analysis.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range undescribed.GlobalSensors {
		if s.Call != nil && s.Call.Callee == "my_library_kernel" {
			t.Fatal("undescribed extern must not be a sensor")
		}
	}

	ext := ir.DefaultExterns().Clone()
	ext.Register(ir.ExternDesc{
		Name: "my_library_kernel", Type: ir.Computation,
		Fixed: true, WorkArgs: []int{0},
	})
	prog, err := ir.BuildWithExterns(minic.MustParse(src), ext)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Analyze(prog)
	found := false
	for _, s := range res.GlobalSensors {
		if s.Call != nil && s.Call.Callee == "my_library_kernel" {
			found = true
		}
	}
	if !found {
		t.Fatal("described extern should be a global sensor")
	}
	// The full pipeline rejects running it (the VM has no implementation),
	// but analysis and instrumentation both work:
	ins := instrument.Apply(res, instrument.Config{})
	if len(ins.Sensors) == 0 {
		t.Error("described extern not instrumented")
	}
}

func TestEmitSourceViaFacade(t *testing.T) {
	src := `
func main() {
    for (int i = 0; i < 10; i++) {
        for (int k = 0; k < 5; k++) {
            flops(100);
        }
    }
}`
	out, err := vsensor.InstrumentSource(src, analysis.Config{}, instrument.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "vs_tick(0);") || !strings.Contains(out, "vs_tock(0);") {
		t.Errorf("instrumented source:\n%s", out)
	}
}
