#!/bin/sh
# Coverage gate: run the full test suite with per-package coverage, print a
# per-package delta table against the seed baseline recorded in
# scripts/coverage_baseline.txt, and fail if the statement-weighted total
# drops below the baseline total. `make cover` and scripts/check.sh both
# run this.
#
# Usage: scripts/cover.sh [profile-output]
set -eu

cd "$(dirname "$0")/.."
profile="${1:-cover.out}"
baseline="scripts/coverage_baseline.txt"

cover_txt="$(mktemp)"
trap 'rm -f "$cover_txt"' EXIT

go test -count=1 -coverprofile="$profile" ./... | tee "$cover_txt"
total="$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')"

awk -v total="$total" '
NR == FNR {
    if ($1 ~ /^#/ || NF < 2) next
    if ($1 == "total") { base_total = $2; next }
    base[$1] = $2
    next
}
$1 == "ok" && /coverage:/ {
    for (i = 3; i <= NF; i++) {
        if ($i == "coverage:") { pct = $(i + 1); sub(/%/, "", pct); cur[$2] = pct }
    }
}
END {
    printf "\n%-36s %8s %8s %8s\n", "package", "seed", "now", "delta"
    n = 0
    for (p in base) pkgs[n++] = p
    for (p in cur) if (!(p in base)) pkgs[n++] = p
    # insertion sort; mawk/busybox awk have no asort
    for (i = 1; i < n; i++) {
        for (j = i; j > 0 && pkgs[j - 1] > pkgs[j]; j--) {
            t = pkgs[j]; pkgs[j] = pkgs[j - 1]; pkgs[j - 1] = t
        }
    }
    for (i = 0; i < n; i++) {
        p = pkgs[i]
        now = (p in cur) ? cur[p] + 0 : 0
        if (p in base) {
            printf "%-36s %8.1f %8.1f %+8.1f\n", p, base[p], now, now - base[p]
        } else {
            printf "%-36s %8s %8.1f %8s\n", p, "-", now, "new"
        }
    }
    printf "%-36s %8.1f %8.1f %+8.1f\n", "TOTAL", base_total, total, total - base_total
    if (total + 0 < base_total + 0) {
        printf "\nFAIL: total coverage %.1f%% is below the seed baseline %.1f%%\n", total, base_total
        exit 1
    }
    printf "\ncoverage gate OK: %.1f%% >= baseline %.1f%%\n", total, base_total
}
' "$baseline" "$cover_txt"
