#!/bin/sh
# Full repository check: build, vet, race-enabled tests (including the
# transport chaos test, the sharded-server differential conformance
# property, and the kill-and-recover WAL/snapshot conformance gate), the
# coverage gate against the seed baseline, a race-enabled benchmark smoke,
# a coverage-guided fuzz smoke over every fuzz target, then the
# observability / VM / transport / analysis-server benchmarks.
# Benchmark results are written to BENCH_obs.json, BENCH_vm.json,
# BENCH_transport.json, BENCH_server.json, and BENCH_lineage.json so
# successive PRs can diff overhead, interpreter-speed, record-path,
# ingest-throughput, and lineage-overhead numbers. The lineage suite also
# gates: ingest at 4096 ranks with lineage on (1/256 sampling) must stay
# within LINEAGE_MAX_PCT (default 5) percent of lineage off.
#
# FUZZTIME (default 10s) is the budget per fuzz target.
#
# Usage: scripts/check.sh [obs-output.json] [vm-output.json] [transport-output.json] [server-output.json] [lineage-output.json]
set -eu

cd "$(dirname "$0")/.."
obs_out="${1:-BENCH_obs.json}"
vm_out="${2:-BENCH_vm.json}"
transport_out="${3:-BENCH_transport.json}"
server_out="${4:-BENCH_server.json}"
lineage_out="${5:-BENCH_lineage.json}"
fuzztime="${FUZZTIME:-10s}"
lineage_max_pct="${LINEAGE_MAX_PCT:-5}"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== race-enabled transport chaos (drop+dup+reorder+corrupt+crash, exactly-once)"
go test -race -run 'TestChaosExactlyOnce$' -count 1 ./internal/transport

echo "== race-enabled differential conformance (sharded engine vs batch recompute)"
go test -race -run 'TestDifferentialConformance$|TestRecordsSnapshotUnderIngest$' -count 1 ./internal/server

echo "== race-enabled kill-and-recover conformance (WAL+snapshot recovery vs never-crashed server)"
go test -race -run 'TestKillRecoverConformance$' -count 1 ./internal/server

echo "== coverage gate (per-package deltas vs seed baseline)"
sh scripts/cover.sh

echo "== race-enabled benchmark smoke"
go test -race -run '^$' -bench 'BenchmarkInterpHotLoop$' -benchtime 1x ./internal/vm

echo "== fuzz smoke ($fuzztime per target)"
go test -run '^$' -fuzz 'FuzzBatchRoundTrip$' -fuzztime "$fuzztime" ./internal/server
go test -run '^$' -fuzz 'FuzzCheckBatch$' -fuzztime "$fuzztime" ./internal/server
go test -run '^$' -fuzz 'FuzzWALReplay$' -fuzztime "$fuzztime" ./internal/server
go test -run '^$' -fuzz 'FuzzParse$' -fuzztime "$fuzztime" ./internal/minic
go test -run '^$' -fuzz 'FuzzLex$' -fuzztime "$fuzztime" ./internal/minic

# bench_json PATTERN PKG OUT runs the benchmarks and renders each result
# line as a JSON entry. Parsing is unit-aware ("value unit" pairs after the
# iteration count), so custom b.ReportMetric columns such as the analysis
# server's records/s survive alongside ns/op, B/op, and allocs/op.
bench_json() {
    pattern="$1"; pkg="$2"; out="$3"
    bench_txt="$(mktemp)"
    go test -run '^$' -bench "$pattern" -benchmem -benchtime 2s "$pkg" | tee "$bench_txt"
    awk '
    BEGIN { print "{"; first = 1 }
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (!first) printf ",\n"
        first = 0
        printf "  \"%s\": {", name
        sep = ""
        for (i = 3; i < NF; i += 2) {
            unit = $(i + 1)
            gsub(/[\/]/, "_per_", unit)
            gsub(/[^A-Za-z0-9_]/, "_", unit)
            if (unit == "B_per_op") unit = "bytes_per_op"
            printf "%s\"%s\": %s", sep, unit, $i
            sep = ", "
        }
        printf "}"
    }
    END { print "\n}" }
    ' "$bench_txt" > "$out"
    rm -f "$bench_txt"
    echo "== wrote $out"
    cat "$out"
}

echo "== obs hot-path benchmarks"
bench_json 'BenchmarkCounterInc$|BenchmarkHistogramObserve$|BenchmarkSpanStartEnd$' \
    ./internal/obs "$obs_out"

echo "== vm execution-engine benchmarks"
bench_json 'BenchmarkVarAccess$|BenchmarkInterpHotLoop$|BenchmarkRankRunE2E$' \
    ./internal/vm "$vm_out"

echo "== record-transport benchmarks"
bench_json 'BenchmarkFrameRoundTrip$|BenchmarkConnFlush$|BenchmarkConnFlushFaulty$' \
    ./internal/transport "$transport_out"

echo "== analysis-server ingest benchmarks (sharded engine vs single-lock baseline)"
bench_json 'BenchmarkIngestParallel$|BenchmarkIngestSingleLock$' \
    ./internal/server "$server_out"

echo "== lineage-overhead benchmarks (ingest with record tracing off vs on)"
bench_json 'BenchmarkIngestLineage$' ./internal/server "$lineage_out"

echo "== lineage ingest-overhead gate (on vs off at 4096 ranks, max ${lineage_max_pct}%)"
awk -v max="$lineage_max_pct" '
/"BenchmarkIngestLineage\/lineage=off\/ranks=4096"/ {
    if (match($0, /"ns_per_op": [0-9.e+]+/))
        off = substr($0, RSTART + 13, RLENGTH - 13) + 0
}
/"BenchmarkIngestLineage\/lineage=on\/ranks=4096"/ {
    if (match($0, /"ns_per_op": [0-9.e+]+/))
        on = substr($0, RSTART + 13, RLENGTH - 13) + 0
}
END {
    if (off <= 0 || on <= 0) {
        print "lineage gate: missing ranks=4096 results"; exit 1
    }
    pct = (on - off) * 100 / off
    printf "lineage overhead at 4096 ranks: off %.0f ns/op, on %.0f ns/op (%+.2f%%)\n", off, on, pct
    if (pct > max) {
        printf "FAIL: lineage overhead %.2f%% exceeds %s%% budget\n", pct, max
        exit 1
    }
}' "$lineage_out"
