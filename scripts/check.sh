#!/bin/sh
# Full repository check: build, vet, race-enabled tests (including the
# transport chaos test, the sharded-server differential conformance
# property, and the kill-and-recover WAL/snapshot conformance gate), the
# coverage gate against the seed baseline, a race-enabled benchmark smoke,
# a coverage-guided fuzz smoke over every fuzz target, then the
# observability / VM / transport / analysis-server benchmarks.
# Benchmark results are written to BENCH_obs.json, BENCH_vm.json,
# BENCH_transport.json, BENCH_server.json, BENCH_lineage.json,
# BENCH_load.json, and BENCH_read.json so successive PRs can diff overhead,
# interpreter-speed, record-path, ingest-throughput, lineage-overhead,
# durable-ingest, and read-path numbers. BENCH_net.json prices the process
# boundary: the same streaming workload in-process vs over loopback-TCP
# vSS1 sessions. Four suites also gate: ingest at 4096 ranks with lineage
# on (1/256 sampling) must stay within LINEAGE_MAX_PCT (default 5) percent
# of lineage off, the group-commit WAL must ingest at least
# LOAD_MIN_SPEEDUP (default 2) times the per-op encoder's records/s at
# 4096 ranks, ingest under a 10k-poller ETag-revalidating dashboard storm
# must stay within READ_MAX_TAX (default 10) percent of the poller-free
# number at 4096 ranks, and multi-tenant TCP ingest (8 tenants) must stay
# within NET_MAX_SLOWDOWN (default 2) times the in-process single-tenant
# records/s at 4096 ranks.
#
# FUZZTIME (default 10s) is the budget per fuzz target.
#
# Usage: scripts/check.sh [obs-output.json] [vm-output.json] [transport-output.json] [server-output.json] [lineage-output.json] [load-output.json] [read-output.json] [net-output.json]
set -eu

cd "$(dirname "$0")/.."
obs_out="${1:-BENCH_obs.json}"
vm_out="${2:-BENCH_vm.json}"
transport_out="${3:-BENCH_transport.json}"
server_out="${4:-BENCH_server.json}"
lineage_out="${5:-BENCH_lineage.json}"
load_out="${6:-BENCH_load.json}"
read_out="${7:-BENCH_read.json}"
net_out="${8:-BENCH_net.json}"
fuzztime="${FUZZTIME:-10s}"
lineage_max_pct="${LINEAGE_MAX_PCT:-5}"
load_min_speedup="${LOAD_MIN_SPEEDUP:-2}"
read_max_tax="${READ_MAX_TAX:-10}"
net_max_slowdown="${NET_MAX_SLOWDOWN:-2}"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== race-enabled transport chaos (drop+dup+reorder+corrupt+crash, exactly-once)"
go test -race -run 'TestChaosExactlyOnce$' -count 1 ./internal/transport

echo "== race-enabled differential conformance (sharded engine vs batch recompute)"
go test -race -run 'TestDifferentialConformance$|TestRecordsSnapshotUnderIngest$' -count 1 ./internal/server

echo "== race-enabled read-snapshot conformance (cached renders vs fresh recompute, torn-read hunt)"
go test -race -run 'TestReadSnapshotConformance$' -count 1 ./internal/server

echo "== race-enabled kill-and-recover conformance (WAL+snapshot recovery vs never-crashed server)"
go test -race -run 'TestKillRecoverConformance$' -count 1 ./internal/server

echo "== race-enabled socket chaos + kill-recover + multi-tenant conformance (real loopback TCP)"
go test -race -run 'TestSocketChaosExactlyOnce$|TestSocketKillRecoverConformance$|TestMultiTenantDifferentialConformance$' \
    -count 1 ./internal/netsrv

echo "== race-enabled wire-level chaos proxy (resets/partitions/stalls/bit-flips vs self-healing client)"
go test -race -run 'TestProxyChaosExactlyOnce$|TestProxyKillRecoverConformance$' \
    -count 1 ./internal/netsrv

echo "== coverage gate (per-package deltas vs seed baseline)"
sh scripts/cover.sh

echo "== race-enabled benchmark smoke"
go test -race -run '^$' -bench 'BenchmarkInterpHotLoop$' -benchtime 1x ./internal/vm

echo "== fuzz smoke ($fuzztime per target)"
go test -run '^$' -fuzz 'FuzzBatchRoundTrip$' -fuzztime "$fuzztime" ./internal/server
go test -run '^$' -fuzz 'FuzzCheckBatch$' -fuzztime "$fuzztime" ./internal/server
go test -run '^$' -fuzz 'FuzzWALReplay$' -fuzztime "$fuzztime" ./internal/server
go test -run '^$' -fuzz 'FuzzParse$' -fuzztime "$fuzztime" ./internal/minic
go test -run '^$' -fuzz 'FuzzLex$' -fuzztime "$fuzztime" ./internal/minic
go test -run '^$' -fuzz 'FuzzETagCursor$' -fuzztime "$fuzztime" ./internal/obs
go test -run '^$' -fuzz 'FuzzSession$' -fuzztime "$fuzztime" ./internal/netsrv

# bench_json PATTERN PKG OUT (shared with scripts/bench_load.sh) runs the
# benchmarks and renders each result line as a JSON entry.
. scripts/bench_json.sh

echo "== obs hot-path benchmarks"
bench_json 'BenchmarkCounterInc$|BenchmarkHistogramObserve$|BenchmarkSpanStartEnd$' \
    ./internal/obs "$obs_out"

echo "== vm execution-engine benchmarks"
bench_json 'BenchmarkVarAccess$|BenchmarkInterpHotLoop$|BenchmarkRankRunE2E$' \
    ./internal/vm "$vm_out"

echo "== record-transport benchmarks"
bench_json 'BenchmarkFrameRoundTrip$|BenchmarkConnFlush$|BenchmarkConnFlushFaulty$' \
    ./internal/transport "$transport_out"

echo "== analysis-server ingest benchmarks (sharded engine vs single-lock baseline)"
bench_json 'BenchmarkIngestParallel$|BenchmarkIngestSingleLock$' \
    ./internal/server "$server_out"

echo "== lineage-overhead benchmarks (ingest with record tracing off vs on)"
bench_json 'BenchmarkIngestLineage$' ./internal/server "$lineage_out"

echo "== lineage ingest-overhead gate (on vs off at 4096 ranks, best of 3, max ${lineage_max_pct}%)"
# One 2s sample per side swings +-20% on a shared host, dwarfing the 5%
# budget, so the gate re-runs the gated pair with -count 3 and compares
# the per-side minima (the standard noise-robust benchmark estimator).
# BENCH_lineage.json keeps the single-run numbers for PR-over-PR diffing.
go test -run '^$' -bench 'BenchmarkIngestLineage/.*/ranks=4096' \
    -benchtime 2s -count 3 ./internal/server |
awk -v max="$lineage_max_pct" '
/^BenchmarkIngestLineage\/lineage=off\/ranks=4096/ {
    if (off == 0 || $3 + 0 < off) off = $3 + 0
}
/^BenchmarkIngestLineage\/lineage=on\/ranks=4096/ {
    if (on == 0 || $3 + 0 < on) on = $3 + 0
}
END {
    if (off <= 0 || on <= 0) {
        print "lineage gate: missing ranks=4096 results"; exit 1
    }
    pct = (on - off) * 100 / off
    printf "lineage overhead at 4096 ranks: off %.0f ns/op, on %.0f ns/op (%+.2f%%)\n", off, on, pct
    if (pct > max) {
        printf "FAIL: lineage overhead %.2f%% exceeds %s%% budget\n", pct, max
        exit 1
    }
}'

sh scripts/bench_load.sh "$load_out"

echo "== group-commit speedup gate (group vs per-op records/s at 4096 ranks, min ${load_min_speedup}x)"
awk -v min="$load_min_speedup" '
/"BenchmarkLoadDurable\/variant=per-op\/ranks=4096"/ {
    if (match($0, /"records_per_s": [0-9.e+]+/))
        perop = substr($0, RSTART + 17, RLENGTH - 17) + 0
}
/"BenchmarkLoadDurable\/variant=group\/ranks=4096"/ {
    if (match($0, /"records_per_s": [0-9.e+]+/))
        group = substr($0, RSTART + 17, RLENGTH - 17) + 0
}
END {
    if (perop <= 0 || group <= 0) {
        print "load gate: missing ranks=4096 results"; exit 1
    }
    speedup = group / perop
    printf "durable ingest at 4096 ranks: per-op %.0f records/s, group %.0f records/s (%.2fx)\n", perop, group, speedup
    if (speedup < min) {
        printf "FAIL: group-commit speedup %.2fx below %sx floor\n", speedup, min
        exit 1
    }
}' "$load_out"

echo "== read-path storm benchmarks (dashboard pollers vs ingest, ETag on/off)"
bench_json 'BenchmarkReadStorm$' ./internal/server "$read_out"

echo "== poller-storm ingest gate (10k etag pollers vs poller-free at 4096 ranks, best of 3, max ${read_max_tax}% tax)"
# go's -bench matcher splits the pattern on "/", so the two gated combos
# cannot share one alternation. The rounds are interleaved A/B rather
# than 3×A then 3×B: a multi-minute slow window on a shared host
# (hypervisor steal, thermal) would land entirely on one side of a
# back-to-back layout and fake a tax several times the budget, while
# interleaving spreads it over both sides. The awk compares the
# per-side minima, mirroring the lineage gate's estimator.
{
    for _ in 1 2 3; do
        go test -run '^$' -bench 'BenchmarkReadStorm/ranks=4096/pollers=0/' \
            -benchtime 2s ./internal/server
        go test -run '^$' -bench 'BenchmarkReadStorm/ranks=4096/pollers=10000/etag=on' \
            -benchtime 2s ./internal/server
    done
} |
awk -v max="$read_max_tax" '
/^BenchmarkReadStorm\/ranks=4096\/pollers=0\/etag=off/ {
    if (free == 0 || $3 + 0 < free) free = $3 + 0
}
/^BenchmarkReadStorm\/ranks=4096\/pollers=10000\/etag=on/ {
    if (storm == 0 || $3 + 0 < storm) storm = $3 + 0
}
END {
    if (free <= 0 || storm <= 0) {
        print "read gate: missing ranks=4096 results"; exit 1
    }
    pct = (storm - free) * 100 / free
    printf "ingest at 4096 ranks: poller-free %.0f ns/op, 10k etag pollers %.0f ns/op (%+.2f%% tax)\n", free, storm, pct
    if (pct > max) {
        printf "FAIL: poller-storm ingest tax %.2f%% exceeds %s%% budget\n", pct, max
        exit 1
    }
}'

echo "== network-ingest benchmarks (in-process vs loopback-TCP sessions)"
bench_json 'BenchmarkNetIngest$' ./internal/netsrv "$net_out"

echo "== TCP-overhead gate (8-tenant TCP vs in-process single-tenant records/s at 4096 ranks, best of 3, max ${net_max_slowdown}x)"
# Same interleaved-rounds / per-side-extremum estimator as the read gate,
# except records/s is a higher-is-better metric, so each side keeps its
# maximum. The gated pair is the service satellite's promise: one listener
# hosting 8 concurrent runs must ingest within NET_MAX_SLOWDOWN of what a
# single in-process server manages, or the session layer (envelope parsing,
# ack pipelining, worker handoff) has become the bottleneck.
{
    for _ in 1 2 3; do
        go test -run '^$' -bench 'BenchmarkNetIngest/mode=inproc/tenants=1/ranks=4096' \
            -benchtime 2s ./internal/netsrv
        go test -run '^$' -bench 'BenchmarkNetIngest/mode=tcp/tenants=8/ranks=4096' \
            -benchtime 2s ./internal/netsrv
    done
} |
awk -v max="$net_max_slowdown" '
/^BenchmarkNetIngest\/mode=inproc\/tenants=1\/ranks=4096/ {
    if ($5 + 0 > inproc) inproc = $5 + 0
}
/^BenchmarkNetIngest\/mode=tcp\/tenants=8\/ranks=4096/ {
    if ($5 + 0 > tcp) tcp = $5 + 0
}
END {
    if (inproc <= 0 || tcp <= 0) {
        print "net gate: missing ranks=4096 results"; exit 1
    }
    slowdown = inproc / tcp
    printf "ingest at 4096 ranks: in-process 1-tenant %.0f records/s, TCP 8-tenant %.0f records/s (%.2fx slowdown)\n", inproc, tcp, slowdown
    if (slowdown > max) {
        printf "FAIL: TCP slowdown %.2fx exceeds %sx budget\n", slowdown, max
        exit 1
    }
}'
