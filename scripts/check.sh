#!/bin/sh
# Full repository check: build, vet, race-enabled tests, a race-enabled
# benchmark smoke (one iteration through the interpreter hot loop), then
# the observability and VM hot-path benchmarks. Benchmark results are
# written to BENCH_obs.json and BENCH_vm.json so successive PRs can diff
# overhead and interpreter-speed numbers.
#
# Usage: scripts/check.sh [obs-output.json] [vm-output.json]
set -eu

cd "$(dirname "$0")/.."
obs_out="${1:-BENCH_obs.json}"
vm_out="${2:-BENCH_vm.json}"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== race-enabled benchmark smoke"
go test -race -run '^$' -bench 'BenchmarkInterpHotLoop$' -benchtime 1x ./internal/vm

# bench_json PATTERN PKG OUT runs the benchmarks and renders each
# "BenchmarkX-N  iters  ns/op  B/op  allocs/op" line as a JSON entry.
bench_json() {
    pattern="$1"; pkg="$2"; out="$3"
    bench_txt="$(mktemp)"
    go test -run '^$' -bench "$pattern" -benchmem -benchtime 2s "$pkg" | tee "$bench_txt"
    awk '
    BEGIN { print "{"; first = 1 }
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (!first) printf ",\n"
        first = 0
        printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $3, $5, $7
    }
    END { print "\n}" }
    ' "$bench_txt" > "$out"
    rm -f "$bench_txt"
    echo "== wrote $out"
    cat "$out"
}

echo "== obs hot-path benchmarks"
bench_json 'BenchmarkCounterInc$|BenchmarkHistogramObserve$|BenchmarkSpanStartEnd$' \
    ./internal/obs "$obs_out"

echo "== vm execution-engine benchmarks"
bench_json 'BenchmarkVarAccess$|BenchmarkInterpHotLoop$|BenchmarkRankRunE2E$' \
    ./internal/vm "$vm_out"
