#!/bin/sh
# Full repository check: build, vet, race-enabled tests (including the
# transport chaos test), a race-enabled benchmark smoke, a coverage-guided
# fuzz smoke over every fuzz target, then the observability / VM / transport
# benchmarks. Benchmark results are written to BENCH_obs.json, BENCH_vm.json,
# and BENCH_transport.json so successive PRs can diff overhead,
# interpreter-speed, and record-path numbers.
#
# FUZZTIME (default 10s) is the budget per fuzz target.
#
# Usage: scripts/check.sh [obs-output.json] [vm-output.json] [transport-output.json]
set -eu

cd "$(dirname "$0")/.."
obs_out="${1:-BENCH_obs.json}"
vm_out="${2:-BENCH_vm.json}"
transport_out="${3:-BENCH_transport.json}"
fuzztime="${FUZZTIME:-10s}"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== race-enabled transport chaos (drop+dup+reorder+corrupt+crash, exactly-once)"
go test -race -run 'TestChaosExactlyOnce$' -count 1 ./internal/transport

echo "== race-enabled benchmark smoke"
go test -race -run '^$' -bench 'BenchmarkInterpHotLoop$' -benchtime 1x ./internal/vm

echo "== fuzz smoke ($fuzztime per target)"
go test -run '^$' -fuzz 'FuzzBatchRoundTrip$' -fuzztime "$fuzztime" ./internal/server
go test -run '^$' -fuzz 'FuzzCheckBatch$' -fuzztime "$fuzztime" ./internal/server
go test -run '^$' -fuzz 'FuzzParse$' -fuzztime "$fuzztime" ./internal/minic
go test -run '^$' -fuzz 'FuzzLex$' -fuzztime "$fuzztime" ./internal/minic

# bench_json PATTERN PKG OUT runs the benchmarks and renders each
# "BenchmarkX-N  iters  ns/op  B/op  allocs/op" line as a JSON entry.
bench_json() {
    pattern="$1"; pkg="$2"; out="$3"
    bench_txt="$(mktemp)"
    go test -run '^$' -bench "$pattern" -benchmem -benchtime 2s "$pkg" | tee "$bench_txt"
    awk '
    BEGIN { print "{"; first = 1 }
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (!first) printf ",\n"
        first = 0
        printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $3, $5, $7
    }
    END { print "\n}" }
    ' "$bench_txt" > "$out"
    rm -f "$bench_txt"
    echo "== wrote $out"
    cat "$out"
}

echo "== obs hot-path benchmarks"
bench_json 'BenchmarkCounterInc$|BenchmarkHistogramObserve$|BenchmarkSpanStartEnd$' \
    ./internal/obs "$obs_out"

echo "== vm execution-engine benchmarks"
bench_json 'BenchmarkVarAccess$|BenchmarkInterpHotLoop$|BenchmarkRankRunE2E$' \
    ./internal/vm "$vm_out"

echo "== record-transport benchmarks"
bench_json 'BenchmarkFrameRoundTrip$|BenchmarkConnFlush$|BenchmarkConnFlushFaulty$' \
    ./internal/transport "$transport_out"
