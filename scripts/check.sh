#!/bin/sh
# Full repository check: build, vet, race-enabled tests, then the
# observability hot-path benchmarks. Benchmark results are written to
# BENCH_obs.json so successive PRs can diff overhead numbers.
#
# Usage: scripts/check.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_obs.json}"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== obs hot-path benchmarks"
bench_txt="$(mktemp)"
trap 'rm -f "$bench_txt"' EXIT
go test -run '^$' -bench 'BenchmarkCounterInc$|BenchmarkHistogramObserve$|BenchmarkSpanStartEnd$' \
    -benchmem -benchtime 2s ./internal/obs | tee "$bench_txt"

# Render "BenchmarkX-N  iters  ns/op  B/op  allocs/op" lines as JSON.
awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $3, $5, $7
}
END { print "\n}" }
' "$bench_txt" > "$out"

echo "== wrote $out"
cat "$out"
