#!/bin/sh
# Durable-ingest load benchmarks: the identical pre-encoded workload driven
# through the per-op, group-commit, and coalesced WAL encoders at
# 64/512/4096 ranks with a modeled device fsync latency. Writes the results
# to BENCH_load.json (or $1) via the unit-aware bench_json renderer, so
# records/s, wal_B/s, syncs/s, and p95_ns survive as JSON columns.
# scripts/check.sh runs the same suite and additionally gates the 4096-rank
# group-commit speedup.
#
# Usage: scripts/bench_load.sh [load-output.json]
set -eu

cd "$(dirname "$0")/.."
load_out="${1:-BENCH_load.json}"

. scripts/bench_json.sh

echo "== durable-ingest load benchmarks (per-op vs group-commit vs coalesced WAL)"
bench_json 'BenchmarkLoadDurable$' ./internal/load "$load_out"
