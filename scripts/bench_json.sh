# Shared helper: render `go test -bench` output as JSON. Sourced (not
# executed) by scripts/check.sh and scripts/bench_load.sh.
#
# bench_json PATTERN PKG OUT runs the benchmarks and renders each result
# line as a JSON entry. Parsing is unit-aware ("value unit" pairs after the
# iteration count), so custom b.ReportMetric columns such as the analysis
# server's records/s survive alongside ns/op, B/op, and allocs/op.
bench_json() {
    pattern="$1"; pkg="$2"; out="$3"
    bench_txt="$(mktemp)"
    go test -run '^$' -bench "$pattern" -benchmem -benchtime 2s "$pkg" | tee "$bench_txt"
    awk '
    BEGIN { print "{"; first = 1 }
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (!first) printf ",\n"
        first = 0
        printf "  \"%s\": {", name
        sep = ""
        for (i = 3; i < NF; i += 2) {
            unit = $(i + 1)
            gsub(/[\/]/, "_per_", unit)
            gsub(/[^A-Za-z0-9_]/, "_", unit)
            if (unit == "B_per_op") unit = "bytes_per_op"
            printf "%s\"%s\": %s", sep, unit, $i
            sep = ", "
        }
        printf "}"
    }
    END { print "\n}" }
    ' "$bench_txt" > "$out"
    rm -f "$bench_txt"
    echo "== wrote $out"
    cat "$out"
}
