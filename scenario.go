package vsensor

import (
	"fmt"

	"vsensor/internal/scenario"
)

// ScenarioNames lists the built-in evaluation scenarios (the paper's case
// studies and generic injections).
func ScenarioNames() []string { return scenario.Names() }

// RunScenario executes a named scenario end-to-end. When the scenario's
// injections are windowed relative to the run length, a clean baseline run
// resolves them first. The returned baseline report is nil for scenarios
// with only permanent injections.
func RunScenario(name string, opt Options) (rep, baseline *Report, err error) {
	sc, err := scenario.Get(name)
	if err != nil {
		return nil, nil, err
	}
	src, err := sc.Source()
	if err != nil {
		return nil, nil, err
	}
	if opt.Ranks == 0 {
		opt.Ranks = sc.Ranks
	}
	// Scenario-declared transport faults apply unless the caller brought
	// their own plan. The baseline run below is uninstrumented, so faults
	// never touch it either way.
	if opt.Faults == nil && sc.Faults != nil {
		opt.Faults = sc.Faults
	}

	var baseNs int64
	if sc.NeedsBaseline() {
		cleanCluster, err := sc.CleanCluster()
		if err != nil {
			return nil, nil, err
		}
		baseOpt := opt
		baseOpt.Cluster = cleanCluster
		baseOpt.Uninstrumented = true
		baseline, err = Run(src, baseOpt)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario %s baseline: %w", name, err)
		}
		baseNs = baseline.Result.TotalNs
	}

	cl, err := sc.Cluster(baseNs)
	if err != nil {
		return nil, nil, err
	}
	opt.Cluster = cl
	rep, err = Run(src, opt)
	if err != nil {
		return rep, baseline, fmt.Errorf("scenario %s: %w", name, err)
	}
	return rep, baseline, nil
}
