// Package stats computes the v-sensor distribution metrics of paper §6.3
// (Fig. 15): each sensor execution is a "sense" with a duration; sense-time
// is the summed duration, coverage is sense-time over total time, frequency
// is sense-count over total time, and the durations and the intervals
// between consecutive senses are bucketed into the histograms of Figs. 16
// and 17.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vsensor/internal/vm"
)

// Buckets used by the paper's Figures 16 and 17.
var (
	// DurationBuckets: <100µs, 100µs–10ms, 10ms–1s, >1s.
	DurationBuckets = []int64{100_000, 10_000_000, 1_000_000_000}
	// IntervalBuckets: same boundaries.
	IntervalBuckets = []int64{100_000, 10_000_000, 1_000_000_000}
)

// BucketLabels renders histogram bucket labels for the given boundaries.
func BucketLabels(bounds []int64) []string {
	labels := make([]string, len(bounds)+1)
	fmtNs := func(ns int64) string {
		switch {
		case ns >= 1_000_000_000:
			return fmt.Sprintf("%ds", ns/1_000_000_000)
		case ns >= 1_000_000:
			return fmt.Sprintf("%dms", ns/1_000_000)
		default:
			return fmt.Sprintf("%dus", ns/1_000)
		}
	}
	for i := range labels {
		switch {
		case i == 0:
			labels[i] = "<" + fmtNs(bounds[0])
		case i == len(bounds):
			labels[i] = ">" + fmtNs(bounds[len(bounds)-1])
		default:
			labels[i] = fmtNs(bounds[i-1]) + "~" + fmtNs(bounds[i])
		}
	}
	return labels
}

// Histogram counts values into boundary-defined buckets.
type Histogram struct {
	Bounds []int64
	Counts []int64
}

// NewHistogram builds an empty histogram over the given boundaries.
func NewHistogram(bounds []int64) *Histogram {
	return &Histogram{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
}

// Add counts one value.
func (h *Histogram) Add(v int64) {
	for i, b := range h.Bounds {
		if v < b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Total returns the number of counted values.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// String renders the histogram with labels.
func (h *Histogram) String() string {
	labels := BucketLabels(h.Bounds)
	parts := make([]string, len(labels))
	for i := range labels {
		parts[i] = fmt.Sprintf("%s:%d", labels[i], h.Counts[i])
	}
	return strings.Join(parts, " ")
}

// Distribution summarizes the senses of one run (per paper Fig. 15).
type Distribution struct {
	TotalNs    int64
	SenseCount int64
	SenseTime  int64

	Durations *Histogram
	Intervals *Histogram
}

// Coverage is sense-time / total-time.
func (d *Distribution) Coverage() float64 {
	if d.TotalNs == 0 {
		return 0
	}
	return float64(d.SenseTime) / float64(d.TotalNs)
}

// FrequencyHz is sense-count / total-time in senses per second.
func (d *Distribution) FrequencyHz() float64 {
	if d.TotalNs == 0 {
		return 0
	}
	return float64(d.SenseCount) / (float64(d.TotalNs) / 1e9)
}

// FrequencyMHz matches Table 1's unit (senses per microsecond).
func (d *Distribution) FrequencyMHz() float64 { return d.FrequencyHz() / 1e6 }

// Analyze computes the distribution from raw sensor records. totalNs is the
// job's execution time. Records are grouped per rank; intervals are the
// gaps between consecutive senses on the same rank. Overlapping senses
// (nested probes) contribute their union to sense-time.
func Analyze(records []vm.Record, totalNs int64) *Distribution {
	d := &Distribution{
		TotalNs:   totalNs,
		Durations: NewHistogram(DurationBuckets),
		Intervals: NewHistogram(IntervalBuckets),
	}
	byRank := make(map[int][]vm.Record)
	for _, r := range records {
		byRank[r.Rank] = append(byRank[r.Rank], r)
		d.Durations.Add(r.Duration())
		d.SenseCount++
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	var senseTimeAll int64
	for _, rank := range ranks {
		recs := byRank[rank]
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].Start != recs[j].Start {
				return recs[i].Start < recs[j].Start
			}
			return recs[i].End < recs[j].End
		})
		// Union of sense spans and gaps between them.
		curStart, curEnd := int64(-1), int64(-1)
		for _, r := range recs {
			if curEnd < 0 {
				curStart, curEnd = r.Start, r.End
				continue
			}
			if r.Start <= curEnd {
				if r.End > curEnd {
					curEnd = r.End
				}
				continue
			}
			senseTimeAll += curEnd - curStart
			d.Intervals.Add(r.Start - curEnd)
			curStart, curEnd = r.Start, r.End
		}
		if curEnd >= 0 {
			senseTimeAll += curEnd - curStart
		}
	}
	if len(ranks) > 0 {
		// Sense-time as the per-rank average, comparable to total time.
		d.SenseTime = senseTimeAll / int64(len(ranks))
		d.SenseCount /= int64(len(ranks))
	}
	return d
}

// Summary collects scalar statistics over a numeric sample.
type Summary struct {
	N              int
	Min, Max, Mean float64
	StdDev         float64
}

// Summarize computes summary statistics.
func Summarize(vals []float64) Summary {
	s := Summary{N: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(vals) == 0 {
		return Summary{}
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		ss += (v - s.Mean) * (v - s.Mean)
	}
	s.StdDev = math.Sqrt(ss / float64(len(vals)))
	return s
}

// MaxOverMin returns max/min of a sample — the paper's run-to-run variance
// metric ("the maximum execution time is more than three times the
// minimum", Fig. 1) and the Ps workload-validation ratio of §6.2.
func MaxOverMin(vals []float64) float64 {
	s := Summarize(vals)
	if s.N == 0 || s.Min <= 0 {
		return math.NaN()
	}
	return s.Max / s.Min
}
