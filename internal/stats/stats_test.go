package stats

import (
	"math"
	"testing"
	"testing/quick"

	"vsensor/internal/vm"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(DurationBuckets)
	h.Add(50_000)        // <100us
	h.Add(99_999)        // <100us
	h.Add(100_000)       // 100us~10ms
	h.Add(5_000_000)     // 100us~10ms
	h.Add(500_000_000)   // 10ms~1s
	h.Add(2_000_000_000) // >1s
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestBucketLabels(t *testing.T) {
	labels := BucketLabels(DurationBuckets)
	want := []string{"<100us", "100us~10ms", "10ms~1s", ">1s"}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("label %d = %q, want %q", i, labels[i], want[i])
		}
	}
}

func mkRec(rank int, start, end int64) vm.Record {
	return vm.Record{Sensor: 0, Rank: rank, Start: start, End: end}
}

func TestAnalyzeCoverageAndFrequency(t *testing.T) {
	// One rank, 10 senses of 10µs each every 100µs over 1ms total.
	var recs []vm.Record
	for i := 0; i < 10; i++ {
		s := int64(i) * 100_000
		recs = append(recs, mkRec(0, s, s+10_000))
	}
	d := Analyze(recs, 1_000_000)
	if d.SenseCount != 10 {
		t.Errorf("senses = %d", d.SenseCount)
	}
	if d.SenseTime != 100_000 {
		t.Errorf("sense time = %d", d.SenseTime)
	}
	if c := d.Coverage(); math.Abs(c-0.1) > 1e-9 {
		t.Errorf("coverage = %v", c)
	}
	if f := d.FrequencyHz(); math.Abs(f-10_000) > 1e-6 {
		t.Errorf("freq = %v Hz", f)
	}
	if mhz := d.FrequencyMHz(); math.Abs(mhz-0.01) > 1e-9 {
		t.Errorf("freq = %v MHz", mhz)
	}
	// Intervals: 9 gaps of 90µs, all in <100us bucket.
	if d.Intervals.Counts[0] != 9 {
		t.Errorf("interval buckets = %v", d.Intervals.Counts)
	}
}

func TestAnalyzeMultiRankAveraging(t *testing.T) {
	// Two ranks with identical patterns: per-rank averages equal the
	// single-rank values.
	var recs []vm.Record
	for rank := 0; rank < 2; rank++ {
		for i := 0; i < 5; i++ {
			s := int64(i) * 200_000
			recs = append(recs, mkRec(rank, s, s+20_000))
		}
	}
	d := Analyze(recs, 1_000_000)
	if d.SenseCount != 5 {
		t.Errorf("per-rank senses = %d", d.SenseCount)
	}
	if d.SenseTime != 100_000 {
		t.Errorf("per-rank sense time = %d", d.SenseTime)
	}
}

func TestAnalyzeOverlappingSenses(t *testing.T) {
	// Nested probes: union counts once.
	recs := []vm.Record{
		mkRec(0, 0, 100_000),
		mkRec(0, 20_000, 60_000),
		mkRec(0, 200_000, 240_000),
	}
	d := Analyze(recs, 1_000_000)
	if d.SenseTime != 140_000 {
		t.Errorf("union sense time = %d", d.SenseTime)
	}
	// Only one true interval (100k→200k).
	if d.Intervals.Total() != 1 {
		t.Errorf("intervals = %v", d.Intervals.Counts)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-2) > 1e-9 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty = %+v", z)
	}
}

func TestMaxOverMin(t *testing.T) {
	if r := MaxOverMin([]float64{10, 20, 33.7}); math.Abs(r-3.37) > 1e-9 {
		t.Errorf("ratio = %v", r)
	}
	if !math.IsNaN(MaxOverMin(nil)) || !math.IsNaN(MaxOverMin([]float64{0, 1})) {
		t.Error("degenerate inputs should be NaN")
	}
}

// Property: coverage is always within [0, 1] for non-overlapping senses
// bounded by totalNs, and Analyze is order-insensitive.
func TestQuickCoverageBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		next := func(n int64) int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := (rng >> 33) % n
			if v < 0 {
				v += n
			}
			return v
		}
		total := int64(10_000_000)
		var recs []vm.Record
		t0 := int64(0)
		for t0 < total-200_000 {
			t0 += next(100_000) + 1
			dur := next(90_000) + 1
			recs = append(recs, mkRec(0, t0, t0+dur))
			t0 += dur
		}
		d := Analyze(recs, total)
		// Shuffled input gives the same result.
		shuffled := make([]vm.Record, len(recs))
		copy(shuffled, recs)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := next(int64(i + 1))
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		d2 := Analyze(shuffled, total)
		return d.Coverage() >= 0 && d.Coverage() <= 1 &&
			d.SenseTime == d2.SenseTime && d.SenseCount == d2.SenseCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
