package rundata

import (
	"bytes"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/ir"
)

func sample() *RunData {
	return &RunData{
		Ranks:   8,
		TotalNs: 123_456_789,
		Sensors: []detect.Sensor{
			{ID: 0, Type: ir.Computation, ProcessFixed: true, Name: "main:L0@3:5"},
			{ID: 1, Type: ir.Network, ProcessFixed: false, Name: "main:C4@9:9"},
		},
		Records: []detect.SliceRecord{
			{Sensor: 0, Rank: 1, SliceNs: 1_000_000, Count: 12, AvgNs: 345.5, AvgInstr: 99},
			{Sensor: 1, Rank: 7, SliceNs: 2_000_000, Count: 1, AvgNs: 4.25},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if got.Ranks != want.Ranks || got.TotalNs != want.TotalNs {
		t.Errorf("meta mismatch: %+v", got)
	}
	if len(got.Sensors) != 2 || got.Sensors[1].Name != "main:C4@9:9" {
		t.Errorf("sensors = %+v", got.Sensors)
	}
	if len(got.Records) != 2 || got.Records[0] != want.Records[0] {
		t.Errorf("records = %+v", got.Records)
	}
	types := got.SensorTypes()
	if types[0] != ir.Computation || types[1] != ir.Network {
		t.Errorf("types = %v", types)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gob data"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	d := sample()
	if err := Save(&buf, d); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding manually.
	d.Version = 99
	var buf2 bytes.Buffer
	if err := saveRaw(&buf2, d); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf2); err == nil {
		t.Error("wrong version accepted")
	}
}
