// Package rundata persists the performance data a run produces — the
// artifact between the paper's "Run" and "Analyze/Visualize" workflow steps
// (Fig. 2) — so reports and figures can be regenerated without re-running
// the job, and data from a cluster can be inspected elsewhere.
package rundata

import (
	"encoding/gob"
	"fmt"
	"io"

	"vsensor/internal/detect"
	"vsensor/internal/ir"
)

// Version identifies the on-disk format.
const Version = 1

// RunData is everything needed to rebuild matrices and reports.
type RunData struct {
	Version int
	Ranks   int
	TotalNs int64
	Sensors []detect.Sensor
	Records []detect.SliceRecord
}

// SensorTypes rebuilds the sensor-ID → component-type map.
func (d *RunData) SensorTypes() map[int]ir.SnippetType {
	out := make(map[int]ir.SnippetType, len(d.Sensors))
	for _, s := range d.Sensors {
		out[s.ID] = s.Type
	}
	return out
}

// Save writes the run data.
func Save(w io.Writer, d *RunData) error {
	d.Version = Version
	return saveRaw(w, d)
}

// saveRaw encodes without forcing the version; split out so tests can write
// a bad version.
func saveRaw(w io.Writer, d *RunData) error {
	return gob.NewEncoder(w).Encode(d)
}

// Load reads run data, validating the format version.
func Load(r io.Reader) (*RunData, error) {
	var d RunData
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("rundata: %w", err)
	}
	if d.Version != Version {
		return nil, fmt.Errorf("rundata: version %d, want %d", d.Version, Version)
	}
	return &d, nil
}
