package callgraph

import (
	"testing"
	"testing/quick"

	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := ir.Build(minic.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return Build(prog)
}

func indexOf(order []string, name string) int {
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return -1
}

func TestTopoOrderCalleeFirst(t *testing.T) {
	g := build(t, `
func leaf() { flops(1); }
func mid() { leaf(); }
func main() { mid(); leaf(); }
`)
	if len(g.Order) != 3 {
		t.Fatalf("order = %v", g.Order)
	}
	if !(indexOf(g.Order, "leaf") < indexOf(g.Order, "mid") && indexOf(g.Order, "mid") < indexOf(g.Order, "main")) {
		t.Errorf("order = %v", g.Order)
	}
	if len(g.Recursive) != 0 || len(g.RemovedEdges) != 0 {
		t.Errorf("unexpected recursion flags: %v %v", g.Recursive, g.RemovedEdges)
	}
}

func TestSelfRecursionRemoved(t *testing.T) {
	g := build(t, `
func fact(int n) int {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
func main() { fact(5); }
`)
	if !g.Recursive["fact"] {
		t.Error("fact not flagged recursive")
	}
	if g.Recursive["main"] {
		t.Error("main wrongly flagged recursive")
	}
	if g.Callees["fact"]["fact"] {
		t.Error("self edge not removed")
	}
	if indexOf(g.Order, "fact") > indexOf(g.Order, "main") {
		t.Errorf("order = %v", g.Order)
	}
}

func TestMutualRecursionRemoved(t *testing.T) {
	g := build(t, `
func even(int n) int { if (n == 0) { return 1; } return odd(n - 1); }
func odd(int n) int { if (n == 0) { return 0; } return even(n - 1); }
func main() { even(10); }
`)
	if !g.Recursive["even"] || !g.Recursive["odd"] {
		t.Errorf("recursion flags: %v", g.Recursive)
	}
	if len(g.Order) != 3 {
		t.Errorf("order = %v", g.Order)
	}
	// Both cycle edges removed.
	if g.Callees["even"]["odd"] || g.Callees["odd"]["even"] {
		t.Error("cycle edges remain")
	}
	// main -> even edge survives.
	if !g.Callees["main"]["even"] {
		t.Error("main->even edge lost")
	}
}

func TestExternCallsNoEdges(t *testing.T) {
	g := build(t, `func main() { mpi_barrier(); flops(10); unknown_fn(); }`)
	if len(g.Callees["main"]) != 0 {
		t.Errorf("extern calls created edges: %v", g.Callees["main"])
	}
}

func TestReachableFrom(t *testing.T) {
	g := build(t, `
func a() { b(); }
func b() { flops(1); }
func orphan() { flops(1); }
func main() { a(); }
`)
	r := g.ReachableFrom("main")
	if !r["main"] || !r["a"] || !r["b"] {
		t.Errorf("reachable = %v", r)
	}
	if r["orphan"] {
		t.Error("orphan wrongly reachable")
	}
	if len(g.ReachableFrom("nonexistent")) != 0 {
		t.Error("unknown root should be empty")
	}
}

// Property: for random DAG-ish programs, the topological order places every
// callee before its caller, covers all functions exactly once, and is
// deterministic.
func TestQuickTopoProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := genProgram(seed)
		prog, err := ir.Build(minic.MustParse(src))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		g := Build(prog)
		g2 := Build(prog)
		if len(g.Order) != len(prog.Funcs) {
			return false
		}
		for i := range g.Order {
			if g.Order[i] != g2.Order[i] {
				return false // nondeterministic
			}
		}
		seen := make(map[string]int)
		for i, f := range g.Order {
			seen[f] = i
		}
		for caller, callees := range g.Callees {
			for callee := range callees {
				if seen[callee] > seen[caller] {
					t.Logf("seed %d: %s before its callee %s in %v", seed, caller, callee, g.Order)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// genProgram builds a random call structure over N functions; edges may
// include cycles, which Build must break.
func genProgram(seed int64) string {
	rng := seed
	next := func(n int64) int64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := (rng >> 33) % n
		if v < 0 {
			v += n
		}
		return v
	}
	n := next(6) + 2
	src := ""
	for i := int64(0); i < n; i++ {
		src += "func f" + string(rune('a'+i)) + "() {\n"
		calls := next(3)
		for j := int64(0); j < calls; j++ {
			target := next(n)
			src += "    f" + string(rune('a'+target)) + "();\n"
		}
		src += "    flops(1);\n}\n"
	}
	return src
}
