// Package callgraph builds the program call graph used by the whole-program
// v-sensor analysis (paper §3.5, Fig. 10). The graph is preprocessed to
// enable a bottom-up traversal: edges that would create cycles (recursive
// invocations) are removed, and the functions involved are flagged so the
// analysis can treat them conservatively. A topological sort then yields
// the callee-before-caller order.
package callgraph

import (
	"fmt"
	"sort"

	"vsensor/internal/ir"
)

// Graph is the preprocessed call graph of a program.
type Graph struct {
	// Callees maps each defined function to the set of defined functions it
	// calls, after cycle removal.
	Callees map[string]map[string]bool

	// Callers is the reverse adjacency of Callees.
	Callers map[string]map[string]bool

	// Order lists defined functions callee-first (bottom-up).
	Order []string

	// Recursive marks functions that participate in a removed cycle
	// (directly or mutually recursive). Their snippets are treated as
	// never-fixed by the analysis.
	Recursive map[string]bool

	// RemovedEdges lists caller→callee edges dropped to break cycles.
	RemovedEdges [][2]string
}

// Build constructs and preprocesses the call graph for p.
// Calls to externs do not create edges (they are handled through the extern
// registry); calls to unknown names are ignored here and treated as
// never-fixed externs by the analysis.
func Build(p *ir.Program) *Graph {
	g := &Graph{
		Callees:   make(map[string]map[string]bool),
		Callers:   make(map[string]map[string]bool),
		Recursive: make(map[string]bool),
	}
	for name := range p.Funcs {
		g.Callees[name] = make(map[string]bool)
		g.Callers[name] = make(map[string]bool)
	}
	for _, c := range p.Calls {
		if _, defined := p.Funcs[c.Callee]; !defined {
			continue
		}
		g.Callees[c.Func.Name][c.Callee] = true
		g.Callers[c.Callee][c.Func.Name] = true
	}
	g.breakCycles()
	g.topoSort()
	return g
}

// breakCycles finds strongly connected components (Tarjan) and removes all
// edges internal to any component of size > 1 — plus self-loops — flagging
// every function involved as recursive.
func (g *Graph) breakCycles() {
	names := sortedKeys(g.Callees)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	comp := make(map[string]int) // function -> SCC id
	ncomp := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range sortedKeys(g.Callees[v]) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, v := range names {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	compSize := make(map[int]int)
	for _, c := range comp {
		compSize[c]++
	}
	for _, v := range names {
		for _, w := range sortedKeys(g.Callees[v]) {
			sameComp := comp[v] == comp[w]
			if (sameComp && compSize[comp[v]] > 1) || v == w {
				delete(g.Callees[v], w)
				delete(g.Callers[w], v)
				g.RemovedEdges = append(g.RemovedEdges, [2]string{v, w})
				g.Recursive[v] = true
				g.Recursive[w] = true
			}
		}
	}
}

// topoSort orders functions callee-first. The graph is acyclic after
// breakCycles, so this always succeeds.
func (g *Graph) topoSort() {
	indeg := make(map[string]int) // number of (remaining) callees
	for f, callees := range g.Callees {
		indeg[f] = len(callees)
	}
	// Kahn's algorithm from the leaves (functions with no callees).
	var ready []string
	for _, f := range sortedKeys(g.Callees) {
		if indeg[f] == 0 {
			ready = append(ready, f)
		}
	}
	for len(ready) > 0 {
		f := ready[0]
		ready = ready[1:]
		g.Order = append(g.Order, f)
		for _, caller := range sortedKeys(g.Callers[f]) {
			indeg[caller]--
			if indeg[caller] == 0 {
				ready = append(ready, caller)
			}
		}
	}
	if len(g.Order) != len(g.Callees) {
		// Unreachable: cycles were removed above.
		panic(fmt.Sprintf("callgraph: topo sort emitted %d of %d functions", len(g.Order), len(g.Callees)))
	}
}

// ReachableFrom returns the set of functions reachable from root
// (including root itself if defined), following post-preprocessing edges.
func (g *Graph) ReachableFrom(root string) map[string]bool {
	seen := make(map[string]bool)
	if _, ok := g.Callees[root]; !ok {
		return seen
	}
	var visit func(string)
	visit = func(f string) {
		if seen[f] {
			return
		}
		seen[f] = true
		for c := range g.Callees[f] {
			visit(c)
		}
	}
	visit(root)
	return seen
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
