package instrument

import (
	"strings"
	"testing"

	"vsensor/internal/analysis"
	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

func apply(t *testing.T, src string, cfg Config) *Instrumented {
	t.Helper()
	prog, err := ir.Build(minic.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return Apply(analysis.Analyze(prog), cfg)
}

const nestedSrc = `
func inner() {
    for (int j = 0; j < 10; j++) {
        flops(5);
    }
}

func main() {
    for (int n = 0; n < 100; n++) {
        for (int k = 0; k < 10; k++) {
            inner();
        }
        for (int m = 0; m < 20; m++) {
            flops(3);
        }
    }
}
`

func TestNestedExclusionPrefersOutermost(t *testing.T) {
	ins := apply(t, nestedSrc, Config{})
	// The k-loop (calls inner with no varying work) is a global sensor at
	// depth 1; selecting it must exclude the call to inner, the loop inside
	// inner, and the flops call inside inner. The m-loop is selected; the
	// flops(3) call within it is excluded.
	names := make(map[string]bool)
	for _, s := range ins.Sensors {
		names[s.Snippet.Func.Name+":"+s.Snippet.ID()] = true
	}
	if len(ins.Sensors) != 2 {
		t.Fatalf("sensors = %d (%v)", len(ins.Sensors), names)
	}
	for _, s := range ins.Sensors {
		if s.Snippet.Func.Name != "main" || s.Snippet.Loop == nil || s.Snippet.Loop.Depth != 1 {
			t.Errorf("unexpected sensor %s", s.Name)
		}
	}
}

func TestKeepNestedAblation(t *testing.T) {
	base := apply(t, nestedSrc, Config{})
	kept := apply(t, nestedSrc, Config{KeepNested: true})
	if len(kept.Sensors) <= len(base.Sensors) {
		t.Errorf("KeepNested should select more sensors: %d vs %d", len(kept.Sensors), len(base.Sensors))
	}
}

func TestMaxDepth(t *testing.T) {
	src := `
func main() {
    for (int a = 0; a < 4; a++) {
        for (int b = 0; b < 4; b++) {
            for (int c = 0; c < 4; c++) {
                for (int d = 0; d < 4; d++) {
                    flops(1);
                }
            }
        }
    }
}`
	// With KeepNested, depth filtering is directly observable.
	deep := apply(t, src, Config{MaxDepth: 4, KeepNested: true})
	shallow := apply(t, src, Config{MaxDepth: 1, KeepNested: true})
	if len(shallow.Sensors) >= len(deep.Sensors) {
		t.Errorf("maxdepth=1 should instrument fewer sensors: %d vs %d", len(shallow.Sensors), len(deep.Sensors))
	}
	for _, s := range shallow.Sensors {
		if s.Snippet.Depth >= 1 {
			t.Errorf("sensor %s exceeds max depth", s.Name)
		}
	}
}

func TestRequireProcessFixed(t *testing.T) {
	src := `
func main() {
    int rank = mpi_comm_rank();
    for (int n = 0; n < 100; n++) {
        for (int k = 0; k < 10; k++) {
            if (rank % 2 == 1) {
                flops(5);
            }
        }
        for (int m = 0; m < 10; m++) {
            flops(5);
        }
    }
}`
	all := apply(t, src, Config{})
	var rankDependent bool
	for _, s := range all.Sensors {
		if !s.ProcessFixed {
			rankDependent = true
		}
	}
	if !rankDependent {
		t.Fatal("expected a rank-dependent sensor without the filter")
	}
	// With the filter, the rank-dependent k-loop is dropped; the
	// process-fixed flops call inside it gets promoted instead.
	fixed := apply(t, src, Config{RequireProcessFixed: true})
	for _, s := range fixed.Sensors {
		if !s.ProcessFixed {
			t.Errorf("sensor %s not process fixed", s.Name)
		}
		if s.Snippet.Loop != nil && s.Snippet.Loop.IndVar == "k" {
			t.Errorf("rank-dependent k-loop still selected")
		}
	}
}

func TestSensorIDsAndMaps(t *testing.T) {
	ins := apply(t, nestedSrc, Config{})
	for i, s := range ins.Sensors {
		if s.ID != i {
			t.Errorf("sensor %d has ID %d", i, s.ID)
		}
		if s.Snippet.Loop != nil && ins.LoopSensor[s.Snippet.Loop.ID] != s {
			t.Errorf("LoopSensor map inconsistent for %s", s.Name)
		}
		if s.Snippet.Call != nil && ins.CallSensor[s.Snippet.Call.ID] != s {
			t.Errorf("CallSensor map inconsistent for %s", s.Name)
		}
	}
}

func TestEmitSource(t *testing.T) {
	ins := apply(t, nestedSrc, Config{})
	out := ins.EmitSource()
	if strings.Count(out, "vs_tick(") != 2 || strings.Count(out, "vs_tock(") != 2 {
		t.Fatalf("expected 2 tick/tock pairs:\n%s", out)
	}
	// Instrumented source must still parse.
	if _, err := minic.Parse(out); err != nil {
		t.Fatalf("instrumented source does not parse: %v\n%s", err, out)
	}
	// Probes must be properly nested around the loops.
	tick := strings.Index(out, "vs_tick(0);")
	tock := strings.Index(out, "vs_tock(0);")
	if tick == -1 || tock == -1 || tick > tock {
		t.Errorf("probe ordering wrong:\n%s", out)
	}
}

func TestTypeSummary(t *testing.T) {
	src := `
func main() {
    for (int n = 0; n < 100; n++) {
        for (int k = 0; k < 10; k++) {
            flops(5);
        }
        mpi_allreduce(64);
        io_write(4096);
    }
}`
	ins := apply(t, src, Config{})
	sum := ins.TypeSummary()
	if !strings.Contains(sum, "Comp") || !strings.Contains(sum, "Net") || !strings.Contains(sum, "IO") {
		t.Errorf("TypeSummary = %q", sum)
	}
	counts := ins.CountByType()
	if counts[ir.Computation] != 1 || counts[ir.Network] != 1 || counts[ir.IO] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestCallSensorEmission(t *testing.T) {
	src := `
func main() {
    for (int n = 0; n < 100; n++) {
        mpi_allreduce(64);
    }
}`
	ins := apply(t, src, Config{})
	if len(ins.Sensors) != 1 || ins.Sensors[0].Type != ir.Network {
		t.Fatalf("sensors = %+v", ins.Sensors)
	}
	out := ins.EmitSource()
	if !strings.Contains(out, "vs_tick(0);") {
		t.Errorf("call probe missing:\n%s", out)
	}
	if _, err := minic.Parse(out); err != nil {
		t.Fatalf("instrumented source does not parse: %v", err)
	}
}
