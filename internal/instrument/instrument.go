// Package instrument selects which identified v-sensors to instrument and
// produces the instrumented program (paper §4). Selection applies three
// rules: scope (only global v-sensors are chosen), granularity (only
// sensors shallower than a max depth), and nesting (when sensors nest, the
// outermost is preferred, because the Tick/Tock probes themselves are not
// fixed-workload and would invalidate an enclosing sensor).
package instrument

import (
	"fmt"
	"sort"

	"vsensor/internal/analysis"
	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

// Config controls sensor selection.
type Config struct {
	// MaxDepth: only sensors with loop depth < MaxDepth are instrumented
	// (paper §4 "granularity"). Zero means the default of 3.
	MaxDepth int

	// RequireGlobal restricts instrumentation to whole-program (global)
	// sensors, as the paper's implementation does. Enabled by default;
	// set AllowLocal to lift it.
	AllowLocal bool

	// RequireProcessFixed drops sensors whose workload depends on the
	// process rank; such sensors cannot be compared across processes.
	RequireProcessFixed bool

	// KeepNested disables the nested-sensor exclusion rule (ablation A3).
	KeepNested bool
}

// DefaultMaxDepth is the granularity cutoff used when Config.MaxDepth is 0.
const DefaultMaxDepth = 3

// Sensor is one instrumented v-sensor.
type Sensor struct {
	ID           int
	Snippet      *analysis.Snippet
	Type         ir.SnippetType
	ProcessFixed bool
	Name         string // "func:L<loopID>@line:col" or "func:C<callID>@line:col"
}

// Instrumented is a program with its selected sensors, ready to run.
type Instrumented struct {
	Prog    *ir.Program
	Res     *analysis.Result
	Cfg     Config
	Sensors []*Sensor

	// LoopSensor / CallSensor map loop and call IDs to their sensor, for
	// the interpreter's Tick/Tock dispatch.
	LoopSensor map[int]*Sensor
	CallSensor map[int]*Sensor
}

// Apply selects sensors from an analysis result.
func Apply(res *analysis.Result, cfg Config) *Instrumented {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = DefaultMaxDepth
	}
	ins := &Instrumented{
		Prog:       res.Prog,
		Res:        res,
		Cfg:        cfg,
		LoopSensor: make(map[int]*Sensor),
		CallSensor: make(map[int]*Sensor),
	}

	candidates := res.GlobalSensors
	if cfg.AllowLocal {
		candidates = res.Sensors
	}
	var eligible []*analysis.Snippet
	for _, s := range candidates {
		if s.Depth >= cfg.MaxDepth {
			continue
		}
		if cfg.RequireProcessFixed && !s.ProcessFixed {
			continue
		}
		eligible = append(eligible, s)
	}

	// Outermost-first order: callers before callees (reverse bottom-up call
	// graph order), then shallower loops first, then source position.
	funcRank := make(map[string]int, len(res.Graph.Order))
	for i, name := range res.Graph.Order {
		funcRank[name] = len(res.Graph.Order) - i
	}
	sort.SliceStable(eligible, func(i, j int) bool {
		a, b := eligible[i], eligible[j]
		if fa, fb := funcRank[a.Func.Name], funcRank[b.Func.Name]; fa != fb {
			return fa < fb
		}
		if a.Depth != b.Depth {
			return a.Depth < b.Depth
		}
		return a.Pos.Before(b.Pos)
	})

	excludedLoops := make(map[int]bool) // loop IDs whose interior is covered
	excludedFuncs := make(map[string]bool)

	for _, s := range eligible {
		if !cfg.KeepNested && ins.covered(s, excludedLoops, excludedFuncs) {
			continue
		}
		sensor := &Sensor{
			ID:           len(ins.Sensors),
			Snippet:      s,
			Type:         s.Type,
			ProcessFixed: s.ProcessFixed,
			Name:         fmt.Sprintf("%s:%s@%s", s.Func.Name, s.ID(), s.Pos),
		}
		ins.Sensors = append(ins.Sensors, sensor)
		if s.Loop != nil {
			ins.LoopSensor[s.Loop.ID] = sensor
			excludedLoops[s.Loop.ID] = true
			ins.excludeCalleesInLoop(s.Loop, excludedFuncs)
		} else {
			ins.CallSensor[s.Call.ID] = sensor
			ins.excludeCallees(s.Call.Callee, excludedFuncs)
		}
	}
	return ins
}

// covered reports whether snippet s lies inside an already-selected sensor:
// within a selected loop of the same function, or in a function reachable
// from a selected sensor's interior.
func (ins *Instrumented) covered(s *analysis.Snippet, loops map[int]bool, funcs map[string]bool) bool {
	if funcs[s.Func.Name] {
		return true
	}
	for _, l := range s.EnclosingLoops() {
		if loops[l.ID] {
			return true
		}
	}
	return false
}

// excludeCalleesInLoop excludes every function called (transitively) from
// within the loop's body.
func (ins *Instrumented) excludeCalleesInLoop(l *ir.Loop, funcs map[string]bool) {
	for _, c := range l.Func.Calls {
		if withinLoop(c, l) {
			ins.excludeCallees(c.Callee, funcs)
		}
	}
}

func withinLoop(c *ir.CallSite, l *ir.Loop) bool {
	for cur := c.Loop; cur != nil; cur = cur.Parent {
		if cur == l {
			return true
		}
	}
	return false
}

// excludeCallees marks name and everything it calls as covered.
func (ins *Instrumented) excludeCallees(name string, funcs map[string]bool) {
	if _, defined := ins.Prog.Funcs[name]; !defined {
		return
	}
	for f := range ins.Res.Graph.ReachableFrom(name) {
		funcs[f] = true
	}
}

// CountByType returns the number of instrumented sensors per snippet type,
// formatted like the paper's Table 1 ("87Comp", "7Comp+5Net").
func (ins *Instrumented) CountByType() map[ir.SnippetType]int {
	out := make(map[ir.SnippetType]int)
	for _, s := range ins.Sensors {
		out[s.Type]++
	}
	return out
}

// TypeSummary renders the instrumented sensor counts Table 1 style.
func (ins *Instrumented) TypeSummary() string {
	counts := ins.CountByType()
	s := ""
	for _, t := range []ir.SnippetType{ir.Computation, ir.Network, ir.IO} {
		if counts[t] == 0 {
			continue
		}
		if s != "" {
			s += "+"
		}
		s += fmt.Sprintf("%d%s", counts[t], t)
	}
	if s == "" {
		s = "0"
	}
	return s
}

// EmitSource renders the program as instrumented mini-C source with
// vs_tick/vs_tock probe calls around every selected sensor — the paper's
// "map to source + instrument + recompile with the original compiler" path
// (workflow steps 3-5). Loop sensors are bracketed around the loop
// statement; call sensors around the statement containing the call.
func (ins *Instrumented) EmitSource() string {
	type probe struct{ ids []int }
	probes := make(map[minic.Stmt]*probe)

	addProbe := func(s minic.Stmt, id int) {
		p := probes[s]
		if p == nil {
			p = &probe{}
			probes[s] = p
		}
		p.ids = append(p.ids, id)
	}

	// Map each instrumented call to its containing statement.
	for _, f := range ins.Prog.AST.Funcs {
		minic.WalkStmts(f.Body, func(s minic.Stmt) {
			switch st := s.(type) {
			case *minic.ForStmt:
				if sensor, ok := ins.LoopSensor[st.LoopID]; ok {
					addProbe(s, sensor.ID)
				}
			case *minic.WhileStmt:
				if sensor, ok := ins.LoopSensor[st.LoopID]; ok {
					addProbe(s, sensor.ID)
				}
			}
			for _, e := range stmtExprs(s) {
				minic.WalkExprs(e, func(x minic.Expr) {
					if call, ok := x.(*minic.CallExpr); ok {
						if sensor, ok := ins.CallSensor[call.CallID]; ok {
							addProbe(s, sensor.ID)
						}
					}
				})
			}
		})
	}

	p := &minic.Printer{}
	p.BeforeStmt = func(pr *minic.Printer, s minic.Stmt) {
		if pb, ok := probes[s]; ok {
			for _, id := range pb.ids {
				pr.Line(fmt.Sprintf("vs_tick(%d);", id))
			}
		}
	}
	p.AfterStmt = func(pr *minic.Printer, s minic.Stmt) {
		if pb, ok := probes[s]; ok {
			for i := len(pb.ids) - 1; i >= 0; i-- {
				pr.Line(fmt.Sprintf("vs_tock(%d);", pb.ids[i]))
			}
		}
	}
	return p.Print(ins.Prog.AST)
}

// stmtExprs returns the direct expressions of a statement (not descending
// into nested statements).
func stmtExprs(s minic.Stmt) []minic.Expr {
	switch st := s.(type) {
	case *minic.VarDecl:
		return []minic.Expr{st.Init, st.Len}
	case *minic.AssignStmt:
		return []minic.Expr{st.Target, st.Value}
	case *minic.IfStmt:
		return []minic.Expr{st.Cond}
	case *minic.ReturnStmt:
		return []minic.Expr{st.Value}
	case *minic.ExprStmt:
		return []minic.Expr{st.X}
	}
	return nil
}
