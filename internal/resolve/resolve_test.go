package resolve

import (
	"testing"

	"vsensor/internal/minic"
)

// goldenSrc exercises every binding rule the interpreter depends on:
// globals (with an initializer reading an earlier global), parameters,
// block shadowing, same-scope redeclaration, a for-init declaration with a
// body-level shadow whose initializer must bind the OUTER name, and an
// unresolved identifier that may only fault at run time.
const goldenSrc = `
global int N = 8;
global float BIAS = 1.5;
func scale(int k, float v) float {
    float r = v * BIAS;
    for (int i = 0; i < k; i++) {
        float r = r + i;
        BIAS = BIAS + r;
    }
    return r + missing;
}
func main() {
    int a = N;
    {
        int a = a + 1;
        scale(a, 2.0);
    }
    int a = 0;
    print("a", a);
}`

const goldenDescribe = `global N -> g0
global BIAS -> g1
func main frame=3
  var a@13:9 -> s0
  var a@15:13 -> s1
  var a@18:9 -> s2
  use N@13:13 -> g0
  use a@15:17 -> s0
  use a@16:15 -> s1
  use a@19:16 -> s2
func scale frame=5
  param k -> s0
  param v -> s1
  var r@5:11 -> s2
  var i@6:14 -> s3
  var r@7:15 -> s4
  use v@5:15 -> s1
  use BIAS@5:19 -> g1
  use i@6:21 -> s3
  use k@6:25 -> s0
  use i@6:28 -> s3
  use i@6:28 -> s3
  use r@7:19 -> s2
  use i@7:23 -> s3
  use BIAS@8:9 -> g1
  use BIAS@8:16 -> g1
  use r@8:23 -> s4
  use r@10:12 -> s2
  use missing@10:16 -> unresolved
`

// TestDescribeGolden pins the slot model: every declaration's slot and
// every use's binding for a program covering shadowing, redeclaration,
// for-init scopes, globals, and unresolved names.
func TestDescribeGolden(t *testing.T) {
	ast := minic.MustParse(goldenSrc)
	info := Resolve(ast)
	if got := Describe(ast); got != goldenDescribe {
		t.Errorf("Describe mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenDescribe)
	}
	if info.Unresolved != 1 {
		t.Errorf("Unresolved = %d, want 1 (only `missing`)", info.Unresolved)
	}
	if info.NumGlobals != 2 {
		t.Errorf("NumGlobals = %d, want 2", info.NumGlobals)
	}
	if got := info.Frames["scale"]; got != 5 {
		t.Errorf("Frames[scale] = %d, want 5", got)
	}
	if got := info.Frames["main"]; got != 3 {
		t.Errorf("Frames[main] = %d, want 3", got)
	}
}

// TestResolveIdempotent re-runs the pass and requires identical output;
// ir.Build may be applied to an already-resolved AST.
func TestResolveIdempotent(t *testing.T) {
	ast := minic.MustParse(goldenSrc)
	Resolve(ast)
	first := Describe(ast)
	Resolve(ast)
	if second := Describe(ast); second != first {
		t.Errorf("Resolve is not idempotent:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if !ast.Resolved {
		t.Error("ast.Resolved not set")
	}
}

// TestCallBinding checks call pre-binding: user functions get a direct
// *FuncDecl target, builtins a dense dispatch index, and unknown names
// neither (they fault only if executed).
func TestCallBinding(t *testing.T) {
	ast := minic.MustParse(`
func helper(int x) int { return x; }
func main() {
    helper(1);
    flops(10);
    mystery(2);
}`)
	Resolve(ast)
	var calls []*minic.CallExpr
	minic.WalkStmts(ast.Func("main").Body, func(s minic.Stmt) {
		if es, ok := s.(*minic.ExprStmt); ok {
			calls = append(calls, es.X.(*minic.CallExpr))
		}
	})
	if len(calls) != 3 {
		t.Fatalf("found %d calls, want 3", len(calls))
	}
	if calls[0].Target != ast.Func("helper") || calls[0].Builtin != int16(BuiltinNone) {
		t.Errorf("helper(): Target=%v Builtin=%d, want direct target", calls[0].Target, calls[0].Builtin)
	}
	if calls[1].Target != nil || Builtin(calls[1].Builtin) != BuiltinFlops {
		t.Errorf("flops(): Target=%v Builtin=%d, want BuiltinFlops", calls[1].Target, calls[1].Builtin)
	}
	if calls[2].Target != nil || Builtin(calls[2].Builtin) != BuiltinNone {
		t.Errorf("mystery(): Target=%v Builtin=%d, want unbound", calls[2].Target, calls[2].Builtin)
	}
}

// TestBuiltinOfCoversRegistry spot-checks the name table.
func TestBuiltinOfCoversRegistry(t *testing.T) {
	cases := map[string]Builtin{
		"print":         BuiltinPrint,
		"vs_tick":       BuiltinVsTick,
		"mpi_allreduce": BuiltinMPIAllreduce,
		"rand_i":        BuiltinRandI,
		"nope":          BuiltinNone,
	}
	for name, want := range cases {
		if got := BuiltinOf(name); got != want {
			t.Errorf("BuiltinOf(%q) = %d, want %d", name, got, want)
		}
	}
	if int(NumBuiltins) != len(builtinByName)+1 {
		t.Errorf("NumBuiltins = %d, registry has %d names", NumBuiltins, len(builtinByName))
	}
}
