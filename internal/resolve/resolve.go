// Package resolve is the compile-time name-resolution pass of the rank VM's
// two-stage execution engine. It runs once per compiled program (ir.Build
// invokes it) and lexically addresses every identifier to a frame slot, so
// the interpreter executes variable accesses as direct indexes into a flat
// []Value frame — no scope maps, no string hashing, no per-block allocation.
//
// The pass annotates the AST in place:
//
//   - every minic.Ident gets a (Scope, Slot) binding,
//   - every minic.VarDecl gets its frame slot,
//   - every minic.FuncDecl gets its frame size (params + locals),
//   - every minic.GlobalDecl gets its index in the global array,
//   - every minic.CallExpr gets a pre-bound user-function target or a dense
//     builtin-dispatch index.
//
// Resolution mirrors the dynamic scoping discipline of a scope-map
// interpreter exactly: a declaration is visible from the statement after it
// to the end of its block, inner declarations shadow outer ones and globals,
// and a name with no visible declaration stays ScopeUnresolved — it faults
// at run time only if the referencing statement executes, so dead code with
// undefined names keeps running as before. Because mini-C has no forward
// jumps, a slot's declaration statement always executes before any use that
// binds to it, which is what lets the VM reuse frame memory without
// clearing it on scope entry.
package resolve

import (
	"fmt"
	"sort"
	"strings"

	"vsensor/internal/minic"
)

// Builtin identifies one runtime builtin for dense dispatch. The zero value
// BuiltinNone marks calls that are not builtins (user-defined targets and
// unknown names).
type Builtin int16

// Builtin dispatch indexes.
const (
	BuiltinNone Builtin = iota
	BuiltinPrint
	BuiltinVsTick
	BuiltinVsTock
	BuiltinMPICommRank
	BuiltinMPICommSize
	BuiltinMPIBarrier
	BuiltinMPISend
	BuiltinMPIRecv
	BuiltinMPIISend
	BuiltinMPIIRecv
	BuiltinMPIWait
	BuiltinMPISendRecv
	BuiltinMPIAllreduce
	BuiltinMPIAlltoall
	BuiltinMPIBcast
	BuiltinMPIReduce
	BuiltinIORead
	BuiltinIOWrite
	BuiltinFlops
	BuiltinMem
	BuiltinAbsI
	BuiltinMinI
	BuiltinMaxI
	BuiltinSqrtF
	BuiltinRandI

	// NumBuiltins is one past the last builtin index.
	NumBuiltins
)

var builtinByName = map[string]Builtin{
	"print":         BuiltinPrint,
	"vs_tick":       BuiltinVsTick,
	"vs_tock":       BuiltinVsTock,
	"mpi_comm_rank": BuiltinMPICommRank,
	"mpi_comm_size": BuiltinMPICommSize,
	"mpi_barrier":   BuiltinMPIBarrier,
	"mpi_send":      BuiltinMPISend,
	"mpi_recv":      BuiltinMPIRecv,
	"mpi_isend":     BuiltinMPIISend,
	"mpi_irecv":     BuiltinMPIIRecv,
	"mpi_wait":      BuiltinMPIWait,
	"mpi_sendrecv":  BuiltinMPISendRecv,
	"mpi_allreduce": BuiltinMPIAllreduce,
	"mpi_alltoall":  BuiltinMPIAlltoall,
	"mpi_bcast":     BuiltinMPIBcast,
	"mpi_reduce":    BuiltinMPIReduce,
	"io_read":       BuiltinIORead,
	"io_write":      BuiltinIOWrite,
	"flops":         BuiltinFlops,
	"mem":           BuiltinMem,
	"abs_i":         BuiltinAbsI,
	"min_i":         BuiltinMinI,
	"max_i":         BuiltinMaxI,
	"sqrt_f":        BuiltinSqrtF,
	"rand_i":        BuiltinRandI,
}

// BuiltinOf returns the dispatch index for a builtin name, or BuiltinNone.
func BuiltinOf(name string) Builtin { return builtinByName[name] }

// Info summarizes one resolution, for diagnostics and golden tests.
type Info struct {
	// NumGlobals is the size of the per-rank global array.
	NumGlobals int

	// Frames maps each function to its frame size in slots.
	Frames map[string]int

	// Unresolved counts identifier occurrences with no visible declaration
	// (they fault only if executed).
	Unresolved int
}

// Describe renders a resolved program's slot assignment as stable text:
// global slots, then per-function frame sizes with every declaration's
// slot. Used by golden tests to pin the slot model.
func Describe(ast *minic.Program) string {
	var b strings.Builder
	for _, g := range ast.Globals {
		fmt.Fprintf(&b, "global %s -> g%d\n", g.Name, g.Slot)
	}
	names := make([]string, 0, len(ast.Funcs))
	byName := make(map[string]*minic.FuncDecl, len(ast.Funcs))
	for _, f := range ast.Funcs {
		names = append(names, f.Name)
		byName[f.Name] = f
	}
	sort.Strings(names)
	for _, name := range names {
		f := byName[name]
		fmt.Fprintf(&b, "func %s frame=%d\n", f.Name, f.NumSlots)
		for i, p := range f.Params {
			fmt.Fprintf(&b, "  param %s -> s%d\n", p.Name, i)
		}
		minic.WalkStmts(f.Body, func(s minic.Stmt) {
			if d, ok := s.(*minic.VarDecl); ok {
				fmt.Fprintf(&b, "  var %s@%s -> s%d\n", d.Name, d.Pos(), d.Slot)
			}
		})
		walkFuncExprs(f, func(e minic.Expr) {
			if id, ok := e.(*minic.Ident); ok {
				fmt.Fprintf(&b, "  use %s@%s -> %s\n", id.Name, id.Pos(), bindingString(id))
			}
		})
	}
	return b.String()
}

func bindingString(id *minic.Ident) string {
	switch id.Scope {
	case minic.ScopeLocal:
		return fmt.Sprintf("s%d", id.Slot)
	case minic.ScopeGlobal:
		return fmt.Sprintf("g%d", id.Slot)
	}
	return "unresolved"
}

// walkFuncExprs visits every expression of a function in statement order.
func walkFuncExprs(f *minic.FuncDecl, fn func(minic.Expr)) {
	minic.WalkStmts(f.Body, func(s minic.Stmt) {
		for _, e := range stmtExprs(s) {
			minic.WalkExprs(e, fn)
		}
	})
}

func stmtExprs(s minic.Stmt) []minic.Expr {
	switch st := s.(type) {
	case *minic.VarDecl:
		return []minic.Expr{st.Len, st.Init}
	case *minic.AssignStmt:
		return []minic.Expr{st.Target, st.Value}
	case *minic.IfStmt:
		return []minic.Expr{st.Cond}
	case *minic.ForStmt:
		return []minic.Expr{st.Cond}
	case *minic.WhileStmt:
		return []minic.Expr{st.Cond}
	case *minic.ReturnStmt:
		return []minic.Expr{st.Value}
	case *minic.ExprStmt:
		return []minic.Expr{st.X}
	}
	return nil
}

// Resolve annotates ast with slot bindings and returns a summary. It is
// idempotent: re-resolving recomputes identical annotations, so building
// the same AST twice is safe.
func Resolve(ast *minic.Program) *Info {
	r := &resolver{
		ast:  ast,
		info: &Info{Frames: make(map[string]int, len(ast.Funcs))},
	}
	r.globalSlot = make(map[string]int32, len(ast.Globals))

	// Globals resolve in declaration order; an initializer sees only
	// earlier globals (a scope-map interpreter fills the global table
	// progressively, so a forward reference is undefined at run time).
	for i, g := range ast.Globals {
		g.Slot = int32(i)
	}
	for i, g := range ast.Globals {
		r.resolveExpr(g.Len)
		r.resolveExpr(g.Init)
		r.globalSlot[g.Name] = int32(i)
	}
	r.info.NumGlobals = len(ast.Globals)

	for _, f := range ast.Funcs {
		r.resolveFunc(f)
	}
	ast.Resolved = true
	return r.info
}

// binding is one visible local declaration.
type binding struct {
	name string
	slot int32
}

type resolver struct {
	ast        *minic.Program
	info       *Info
	globalSlot map[string]int32

	// Per-function lexical state: ents is the stack of visible local
	// bindings, scopes marks block boundaries as indexes into ents, next is
	// the function's slot high-water mark.
	ents   []binding
	scopes []int
	next   int32
}

func (r *resolver) push() { r.scopes = append(r.scopes, len(r.ents)) }
func (r *resolver) pop() {
	r.ents = r.ents[:r.scopes[len(r.scopes)-1]]
	r.scopes = r.scopes[:len(r.scopes)-1]
}
func (r *resolver) declare(name string) int32 {
	slot := r.next
	r.next++
	r.ents = append(r.ents, binding{name, slot})
	return slot
}

// bind resolves one identifier against the current lexical state. Locals
// shadow globals; the most recent declaration of a name wins.
func (r *resolver) bind(id *minic.Ident) {
	for i := len(r.ents) - 1; i >= 0; i-- {
		if r.ents[i].name == id.Name {
			id.Scope, id.Slot = minic.ScopeLocal, r.ents[i].slot
			return
		}
	}
	if slot, ok := r.globalSlot[id.Name]; ok {
		id.Scope, id.Slot = minic.ScopeGlobal, slot
		return
	}
	id.Scope, id.Slot = minic.ScopeUnresolved, 0
	r.info.Unresolved++
}

func (r *resolver) resolveFunc(f *minic.FuncDecl) {
	r.ents = r.ents[:0]
	r.scopes = r.scopes[:0]
	r.next = 0
	r.push()
	for _, p := range f.Params {
		// Parameters occupy slots 0..len(Params)-1; a duplicate name binds
		// subsequent uses to the later parameter, like a map-based scope.
		r.declare(p.Name)
	}
	r.resolveBlock(f.Body)
	r.pop()
	f.NumSlots = r.next
	r.info.Frames[f.Name] = int(r.next)
}

func (r *resolver) resolveBlock(b *minic.BlockStmt) {
	r.push()
	for _, s := range b.Stmts {
		r.resolveStmt(s)
	}
	r.pop()
}

func (r *resolver) resolveStmt(s minic.Stmt) {
	switch st := s.(type) {
	case nil:
	case *minic.BlockStmt:
		r.resolveBlock(st)
	case *minic.VarDecl:
		// The initializer is resolved before the declaration becomes
		// visible: `int x = x + 1;` binds the right-hand x to the outer x.
		r.resolveExpr(st.Len)
		r.resolveExpr(st.Init)
		st.Slot = r.declare(st.Name)
	case *minic.AssignStmt:
		r.resolveExpr(st.Value)
		r.resolveExpr(st.Target)
	case *minic.IfStmt:
		r.resolveExpr(st.Cond)
		r.resolveBlock(st.Then)
		r.resolveStmt(st.Else)
	case *minic.ForStmt:
		r.push() // scope for the init declaration
		r.resolveStmt(st.Init)
		r.resolveExpr(st.Cond)
		r.resolveStmt(st.Post)
		r.resolveBlock(st.Body)
		r.pop()
	case *minic.WhileStmt:
		r.resolveExpr(st.Cond)
		r.resolveBlock(st.Body)
	case *minic.ReturnStmt:
		r.resolveExpr(st.Value)
	case *minic.ExprStmt:
		r.resolveExpr(st.X)
	}
}

func (r *resolver) resolveExpr(e minic.Expr) {
	switch x := e.(type) {
	case nil:
	case *minic.Ident:
		r.bind(x)
	case *minic.IndexExpr:
		r.bind(x.Array)
		r.resolveExpr(x.Index)
	case *minic.UnaryExpr:
		r.resolveExpr(x.X)
	case *minic.BinaryExpr:
		r.resolveExpr(x.X)
		r.resolveExpr(x.Y)
	case *minic.CallExpr:
		r.bindCall(x)
		for _, a := range x.Args {
			r.resolveExpr(a)
		}
	}
}

// bindCall pre-binds the call's dispatch: a user-defined function target
// wins (ir.Build rejects programs whose functions shadow builtins), then a
// builtin index; unknown names keep Target nil and BuiltinNone and fault
// only if executed.
func (r *resolver) bindCall(call *minic.CallExpr) {
	if fn := r.ast.Func(call.Name); fn != nil {
		call.Target, call.Builtin = fn, int16(BuiltinNone)
		return
	}
	call.Target, call.Builtin = nil, int16(BuiltinOf(call.Name))
}
