// Package cluster models the machine that simulated programs run on: a set
// of nodes with per-node CPU and memory speeds, an interconnect with
// latency/bandwidth and a time-varying congestion factor, and injectable
// performance variance — the phenomena the paper observed on Tianhe-2
// (slow-memory bad nodes, network degradation windows, competing noiser
// processes, periodic OS noise).
//
// All time is virtual, in integer nanoseconds, so runs are deterministic
// and a laptop can "run" thousands of ranks.
package cluster

import (
	"fmt"
	"math"

	"vsensor/internal/obs"
)

// Config describes a cluster.
type Config struct {
	Nodes        int // number of nodes
	RanksPerNode int // MPI ranks placed per node

	// Interconnect parameters. Zero values select the defaults below.
	LatencyNs  int64   // per-message latency
	BytesPerNs float64 // link bandwidth
	CPUSpeed   float64 // baseline speed multiplier for all nodes
	MemSpeed   float64 // baseline memory speed multiplier
	Seed       int64   // seed for the per-rank jitter streams
	JitterPct  float64 // uniform multiplicative jitter on compute costs
}

// Defaults.
const (
	DefaultLatencyNs  = 1500
	DefaultBytesPerNs = 6.0 // ~6 GB/s

	// Shared filesystem defaults: 20µs latency, ~1 GB/s streaming.
	DefaultIOLatencyNs  = 20_000
	DefaultIOBytesPerNs = 1.0
)

// Cluster is a virtual machine room.
type Cluster struct {
	cfg   Config
	nodes []*Node

	netWindows []Window // network congestion factor over time
	ioWindows  []Window // shared-filesystem speed factor over time
	osNoise    *OSNoise

	// Cost-model invocation counters (nil-safe no-ops when obs is off).
	// The cost functions are called concurrently from rank goroutines, so
	// these must stay lock-free.
	obsCompute    *obs.Counter
	obsP2P        *obs.Counter
	obsCollective *obs.Counter
	obsIO         *obs.Counter
}

// SetObs attaches cost-model metrics (cluster_cost_calls_total{kind=...}).
// Call before the run starts; idempotent.
func (c *Cluster) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	c.obsCompute = o.Counter("cluster_cost_calls_total", "kind", "compute")
	c.obsP2P = o.Counter("cluster_cost_calls_total", "kind", "p2p")
	c.obsCollective = o.Counter("cluster_cost_calls_total", "kind", "collective")
	c.obsIO = o.Counter("cluster_cost_calls_total", "kind", "io")
}

// Node is one machine with its own speed profile and noise windows.
type Node struct {
	ID       int
	CPUSpeed float64
	MemSpeed float64
	cpuWin   []Window
	memWin   []Window
}

// Window is a time-bounded multiplicative performance factor.
// Factor 1.0 is nominal; 0.5 means the component runs at half speed.
type Window struct {
	Start, End int64
	Factor     float64
}

func (w Window) active(t int64) bool { return t >= w.Start && t < w.End }

// OSNoise models the periodic, short-duration kernel interference of
// paper §5.1/Fig. 12: every Period ns, a slice of Duration ns runs at
// Factor speed.
type OSNoise struct {
	Period   int64
	Duration int64
	Factor   float64
}

// New creates a cluster.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.RanksPerNode <= 0 {
		cfg.RanksPerNode = 1
	}
	if cfg.LatencyNs == 0 {
		cfg.LatencyNs = DefaultLatencyNs
	}
	if cfg.BytesPerNs == 0 {
		cfg.BytesPerNs = DefaultBytesPerNs
	}
	if cfg.CPUSpeed == 0 {
		cfg.CPUSpeed = 1.0
	}
	if cfg.MemSpeed == 0 {
		cfg.MemSpeed = 1.0
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &Node{ID: i, CPUSpeed: cfg.CPUSpeed, MemSpeed: cfg.MemSpeed})
	}
	return c
}

// Ranks returns the total rank capacity.
func (c *Cluster) Ranks() int { return c.cfg.Nodes * c.cfg.RanksPerNode }

// NodeOf returns the node hosting the given rank.
func (c *Cluster) NodeOf(rank int) *Node {
	return c.nodes[(rank/c.cfg.RanksPerNode)%len(c.nodes)]
}

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// ---------- variance injection ----------

// SetNodeMemSpeed marks a node's memory subsystem as permanently degraded —
// the "bad node" of the paper's Fig. 21 case study (one processor at 55%
// memory performance).
func (c *Cluster) SetNodeMemSpeed(node int, factor float64) {
	c.nodes[node].MemSpeed = factor
}

// SetNodeCPUSpeed sets a node's base CPU speed.
func (c *Cluster) SetNodeCPUSpeed(node int, factor float64) {
	c.nodes[node].CPUSpeed = factor
}

// AddCPUNoise slows the CPUs of a node during [start,end) — the competing
// "noiser" process of the paper's §6.4 injection experiment.
func (c *Cluster) AddCPUNoise(node int, start, end int64, factor float64) {
	n := c.nodes[node]
	n.cpuWin = append(n.cpuWin, Window{Start: start, End: end, Factor: factor})
}

// AddMemNoise slows a node's memory during [start,end).
func (c *Cluster) AddMemNoise(node int, start, end int64, factor float64) {
	n := c.nodes[node]
	n.memWin = append(n.memWin, Window{Start: start, End: end, Factor: factor})
}

// AddNetWindow degrades the whole interconnect during [start,end) — the
// congestion episode behind the paper's Fig. 22 (3.37× FT slowdown).
func (c *Cluster) AddNetWindow(start, end int64, factor float64) {
	c.netWindows = append(c.netWindows, Window{Start: start, End: end, Factor: factor})
}

// SetOSNoise enables periodic kernel noise on every node.
func (c *Cluster) SetOSNoise(period, duration int64, factor float64) {
	c.osNoise = &OSNoise{Period: period, Duration: duration, Factor: factor}
}

// AddIOWindow degrades the shared filesystem during [start,end).
func (c *Cluster) AddIOWindow(start, end int64, factor float64) {
	c.ioWindows = append(c.ioWindows, Window{Start: start, End: end, Factor: factor})
}

// IOFactor returns the shared-filesystem speed factor at time t.
func (c *Cluster) IOFactor(t int64) float64 {
	f := 1.0
	for _, w := range c.ioWindows {
		if w.active(t) {
			f *= w.Factor
		}
	}
	return f
}

// IOCost is the cost of reading or writing n bytes starting at t.
func (c *Cluster) IOCost(t int64, bytes int64) int64 {
	c.obsIO.Inc()
	f := c.IOFactor(t)
	cost := (DefaultIOLatencyNs + float64(bytes)/DefaultIOBytesPerNs) / f
	return int64(math.Ceil(cost))
}

// ---------- cost model ----------

// CPUFactor returns the effective CPU speed of a rank at time t
// (excluding random jitter).
func (c *Cluster) CPUFactor(rank int, t int64) float64 {
	n := c.NodeOf(rank)
	f := n.CPUSpeed
	for _, w := range n.cpuWin {
		if w.active(t) {
			f *= w.Factor
		}
	}
	if c.osNoise != nil && c.osNoise.Period > 0 {
		if t%c.osNoise.Period < c.osNoise.Duration {
			f *= c.osNoise.Factor
		}
	}
	return f
}

// MemFactor returns the effective memory speed of a rank at time t.
func (c *Cluster) MemFactor(rank int, t int64) float64 {
	n := c.NodeOf(rank)
	f := n.MemSpeed
	for _, w := range n.memWin {
		if w.active(t) {
			f *= w.Factor
		}
	}
	return f
}

// NetFactor returns the interconnect speed factor at time t.
func (c *Cluster) NetFactor(t int64) float64 {
	f := 1.0
	for _, w := range c.netWindows {
		if w.active(t) {
			f *= w.Factor
		}
	}
	return f
}

// ComputeCost converts cpuNs of nominal CPU work and memNs of nominal
// memory work done by rank starting at t into elapsed virtual nanoseconds.
func (c *Cluster) ComputeCost(rank int, t int64, cpuNs, memNs float64) int64 {
	c.obsCompute.Inc()
	cf := c.CPUFactor(rank, t)
	mf := c.MemFactor(rank, t)
	total := cpuNs/cf + memNs/mf
	if c.cfg.JitterPct > 0 {
		total *= 1 + c.cfg.JitterPct*(2*c.jitter(rank, t)-1)
	}
	if total < 1 {
		total = 1
	}
	return int64(math.Ceil(total))
}

// P2PCost is the cost of moving n bytes between two ranks starting at t.
func (c *Cluster) P2PCost(t int64, bytes int64) int64 {
	c.obsP2P.Inc()
	nf := c.NetFactor(t)
	cost := (float64(c.cfg.LatencyNs) + float64(bytes)/c.cfg.BytesPerNs) / nf
	return int64(math.Ceil(cost))
}

// CollectiveCost models the cost of a collective over p ranks moving n
// bytes per rank, starting at t.
// kind: "barrier", "bcast", "reduce", "allreduce", "alltoall".
func (c *Cluster) CollectiveCost(kind string, p int, bytes int64, t int64) int64 {
	c.obsCollective.Inc()
	if p <= 1 {
		return 1
	}
	nf := c.NetFactor(t)
	lg := math.Ceil(math.Log2(float64(p)))
	lat := float64(c.cfg.LatencyNs)
	bw := c.cfg.BytesPerNs
	var cost float64
	switch kind {
	case "barrier":
		cost = lg * lat
	case "bcast", "reduce":
		cost = lg * (lat + float64(bytes)/bw)
	case "allreduce":
		cost = 2 * lg * (lat + float64(bytes)/bw)
	case "alltoall":
		// All-to-all moves p-1 messages per rank; heavily network-bound,
		// which is what makes FT vulnerable to congestion (paper §6.5).
		cost = float64(p-1) * (lat/8 + float64(bytes)/bw)
	default:
		panic(fmt.Sprintf("cluster: unknown collective %q", kind))
	}
	return int64(math.Ceil(cost / nf))
}

// jitter returns a deterministic pseudo-random value in [0,1) that varies
// with rank and time, seeded by the cluster seed.
func (c *Cluster) jitter(rank int, t int64) float64 {
	x := uint64(c.cfg.Seed) ^ uint64(rank)*0x9e3779b97f4a7c15 ^ uint64(t)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
