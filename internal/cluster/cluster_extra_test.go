package cluster

import "testing"

func TestAccessors(t *testing.T) {
	c := New(Config{Nodes: 3, RanksPerNode: 4, Seed: 9})
	if c.Node(1).ID != 1 {
		t.Error("Node accessor wrong")
	}
	if cfg := c.Config(); cfg.Nodes != 3 || cfg.RanksPerNode != 4 || cfg.Seed != 9 {
		t.Errorf("Config = %+v", cfg)
	}
	// Rank placement wraps safely for out-of-range ranks.
	if c.NodeOf(12).ID != 0 {
		t.Error("rank wraparound wrong")
	}
}

func TestSetNodeCPUSpeed(t *testing.T) {
	c := New(Config{Nodes: 2, RanksPerNode: 2})
	c.SetNodeCPUSpeed(1, 0.5)
	if c.CPUFactor(2, 0) != 0.5 || c.CPUFactor(0, 0) != 1.0 {
		t.Error("per-node CPU speed wrong")
	}
	fast := c.ComputeCost(0, 0, 1e6, 0)
	slow := c.ComputeCost(2, 0, 1e6, 0)
	if slow < fast*19/10 {
		t.Errorf("half-speed node should take ~2x: %d vs %d", slow, fast)
	}
}

func TestAddMemNoiseWindow(t *testing.T) {
	c := New(Config{Nodes: 2, RanksPerNode: 1})
	c.AddMemNoise(0, 100, 200, 0.25)
	if c.MemFactor(0, 150) != 0.25 {
		t.Error("mem noise not applied inside window")
	}
	if c.MemFactor(0, 50) != 1.0 || c.MemFactor(0, 200) != 1.0 {
		t.Error("mem noise leaked outside window")
	}
	if c.MemFactor(1, 150) != 1.0 {
		t.Error("mem noise leaked to other node")
	}
}

func TestIOWindowAndCost(t *testing.T) {
	c := New(Config{Nodes: 1, RanksPerNode: 1})
	base := c.IOCost(0, 1<<20)
	if base <= 0 {
		t.Fatal("io cost must be positive")
	}
	c.AddIOWindow(1000, 2000, 0.1)
	if c.IOFactor(500) != 1.0 || c.IOFactor(1500) != 0.1 {
		t.Error("io factor windowing wrong")
	}
	slow := c.IOCost(1500, 1<<20)
	if slow < base*9 {
		t.Errorf("storm should slow IO ~10x: %d vs %d", slow, base)
	}
	// Stacked windows multiply.
	c.AddIOWindow(1400, 1600, 0.5)
	if got := c.IOFactor(1500); got != 0.05 {
		t.Errorf("stacked factor = %v", got)
	}
}

func TestZeroNodeConfigDefaults(t *testing.T) {
	c := New(Config{})
	if c.Ranks() != 1 {
		t.Errorf("default ranks = %d", c.Ranks())
	}
	if c.ComputeCost(0, 0, 100, 100) <= 0 {
		t.Error("default cluster cannot compute")
	}
}
