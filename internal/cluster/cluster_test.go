package cluster

import (
	"testing"
	"testing/quick"
)

func TestDefaults(t *testing.T) {
	c := New(Config{Nodes: 4, RanksPerNode: 8})
	if c.Ranks() != 32 {
		t.Errorf("ranks = %d", c.Ranks())
	}
	if c.NodeOf(0).ID != 0 || c.NodeOf(7).ID != 0 || c.NodeOf(8).ID != 1 || c.NodeOf(31).ID != 3 {
		t.Error("rank placement wrong")
	}
	if c.CPUFactor(0, 0) != 1.0 || c.MemFactor(0, 0) != 1.0 || c.NetFactor(0) != 1.0 {
		t.Error("baseline factors should be 1.0")
	}
}

func TestBadNodeMemory(t *testing.T) {
	c := New(Config{Nodes: 4, RanksPerNode: 4})
	c.SetNodeMemSpeed(2, 0.55)
	// Ranks 8..11 live on node 2.
	if c.MemFactor(9, 0) != 0.55 {
		t.Errorf("mem factor = %v", c.MemFactor(9, 0))
	}
	if c.MemFactor(4, 0) != 1.0 {
		t.Error("other nodes unaffected")
	}
	// Memory-heavy work on the bad node takes ~1/0.55 longer.
	good := c.ComputeCost(4, 0, 0, 1e6)
	bad := c.ComputeCost(9, 0, 0, 1e6)
	ratio := float64(bad) / float64(good)
	if ratio < 1.7 || ratio > 1.95 {
		t.Errorf("bad node slowdown ratio = %v", ratio)
	}
}

func TestCPUNoiseWindow(t *testing.T) {
	c := New(Config{Nodes: 2, RanksPerNode: 2})
	c.AddCPUNoise(1, 1000, 2000, 0.5)
	if c.CPUFactor(2, 500) != 1.0 {
		t.Error("before window")
	}
	if c.CPUFactor(2, 1500) != 0.5 {
		t.Error("inside window")
	}
	if c.CPUFactor(2, 2000) != 1.0 {
		t.Error("window end is exclusive")
	}
	if c.CPUFactor(0, 1500) != 1.0 {
		t.Error("other node unaffected")
	}
}

func TestNetWindow(t *testing.T) {
	c := New(Config{Nodes: 2, RanksPerNode: 2})
	c.AddNetWindow(10_000, 20_000, 0.25)
	before := c.P2PCost(0, 1<<20)
	during := c.P2PCost(15_000, 1<<20)
	if during <= before*3 {
		t.Errorf("congested transfer should be ~4x slower: %d vs %d", during, before)
	}
	bar := c.CollectiveCost("barrier", 64, 0, 15_000)
	barNorm := c.CollectiveCost("barrier", 64, 0, 0)
	if bar <= barNorm*3 {
		t.Errorf("congested barrier: %d vs %d", bar, barNorm)
	}
}

func TestOSNoisePeriodicity(t *testing.T) {
	c := New(Config{Nodes: 1, RanksPerNode: 1})
	c.SetOSNoise(1000, 100, 0.2)
	if c.CPUFactor(0, 50) != 0.2 {
		t.Error("inside noise slice")
	}
	if c.CPUFactor(0, 500) != 1.0 {
		t.Error("outside noise slice")
	}
	if c.CPUFactor(0, 1050) != 0.2 {
		t.Error("noise should repeat periodically")
	}
}

func TestCollectiveCosts(t *testing.T) {
	c := New(Config{Nodes: 16, RanksPerNode: 4})
	// alltoall must dominate the others at scale, and costs must grow
	// with rank count.
	p64 := c.CollectiveCost("alltoall", 64, 4096, 0)
	p16 := c.CollectiveCost("alltoall", 16, 4096, 0)
	if p64 <= p16 {
		t.Errorf("alltoall should scale with P: %d vs %d", p64, p16)
	}
	if c.CollectiveCost("alltoall", 64, 4096, 0) <= c.CollectiveCost("allreduce", 64, 4096, 0) {
		t.Error("alltoall should cost more than allreduce at P=64")
	}
	if c.CollectiveCost("barrier", 1, 0, 0) != 1 {
		t.Error("P=1 collective should be trivial")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown collective should panic")
		}
	}()
	c.CollectiveCost("gossip", 4, 0, 0)
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	c := New(Config{Nodes: 1, RanksPerNode: 4, Seed: 42, JitterPct: 0.05})
	a := c.ComputeCost(1, 12345, 1e6, 0)
	b := c.ComputeCost(1, 12345, 1e6, 0)
	if a != b {
		t.Error("jitter not deterministic")
	}
	// Bounded within ±5%.
	f := func(rank uint8, tRaw int64) bool {
		t0 := tRaw % 1_000_000_000
		if t0 < 0 {
			t0 = -t0
		}
		cost := c.ComputeCost(int(rank)%4, t0, 1e6, 0)
		return cost >= 950_000 && cost <= 1_050_001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestComputeCostMinimum(t *testing.T) {
	c := New(Config{Nodes: 1, RanksPerNode: 1})
	if got := c.ComputeCost(0, 0, 0, 0); got != 1 {
		t.Errorf("zero work should cost 1ns, got %d", got)
	}
}

func TestSeedChangesJitter(t *testing.T) {
	a := New(Config{Nodes: 1, RanksPerNode: 1, Seed: 1, JitterPct: 0.05})
	b := New(Config{Nodes: 1, RanksPerNode: 1, Seed: 2, JitterPct: 0.05})
	same := 0
	for t0 := int64(0); t0 < 100; t0 += 7 {
		if a.ComputeCost(0, t0, 1e6, 0) == b.ComputeCost(0, t0, 1e6, 0) {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds should produce different jitter (%d/15 same)", same)
	}
}
