package cluster

import (
	"math"
	"testing"
)

// Window semantics are half-open [Start, End): the boundary instants decide
// whether an injected variance episode bites on the exact tick a sensor
// samples. These tests pin that contract directly and through every factor
// path that composes windows.

func TestWindowActiveBoundaries(t *testing.T) {
	w := Window{Start: 100, End: 200, Factor: 0.5}
	tests := []struct {
		name string
		t    int64
		want bool
	}{
		{"well before", 0, false},
		{"one before start", 99, false},
		{"exactly at start", 100, true}, // Start is inclusive
		{"inside", 150, true},
		{"one before end", 199, true},
		{"exactly at end", 200, false}, // End is exclusive
		{"after", 300, false},
		{"negative time", -5, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := w.active(tt.t); got != tt.want {
				t.Errorf("Window[100,200).active(%d) = %v, want %v", tt.t, got, tt.want)
			}
		})
	}
}

func TestWindowZeroLength(t *testing.T) {
	w := Window{Start: 100, End: 100, Factor: 0.5}
	for _, tm := range []int64{99, 100, 101} {
		if w.active(tm) {
			t.Errorf("zero-length window active at %d", tm)
		}
	}
}

func TestNetFactorWindows(t *testing.T) {
	c := New(Config{Nodes: 1, RanksPerNode: 1})
	c.AddNetWindow(100, 200, 0.5)
	c.AddNetWindow(150, 300, 0.2) // overlaps [150,200)
	tests := []struct {
		name string
		t    int64
		want float64
	}{
		{"before any window", 50, 1.0},
		{"first window start", 100, 0.5},
		{"only first window", 149, 0.5},
		{"overlap start: factors multiply", 150, 0.1},
		{"overlap end boundary", 199, 0.1},
		{"first window closed at its End", 200, 0.2},
		{"only second window", 250, 0.2},
		{"second window closed", 300, 1.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.NetFactor(tt.t); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("NetFactor(%d) = %g, want %g", tt.t, got, tt.want)
			}
		})
	}
}

func TestCPUFactorWindowBoundaries(t *testing.T) {
	c := New(Config{Nodes: 2, RanksPerNode: 1})
	c.AddCPUNoise(0, 1000, 2000, 0.25)
	tests := []struct {
		name string
		rank int
		t    int64
		want float64
	}{
		{"noisy node at start tick", 0, 1000, 0.25},
		{"noisy node one before end", 0, 1999, 0.25},
		{"noisy node at end tick", 0, 2000, 1.0},
		{"noisy node before window", 0, 999, 1.0},
		{"other node unaffected inside window", 1, 1500, 1.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.CPUFactor(tt.rank, tt.t); got != tt.want {
				t.Errorf("CPUFactor(rank=%d, t=%d) = %g, want %g", tt.rank, tt.t, got, tt.want)
			}
		})
	}
}

func TestMemFactorOverlappingWindows(t *testing.T) {
	c := New(Config{Nodes: 1, RanksPerNode: 1})
	c.SetNodeMemSpeed(0, 0.8) // permanent degradation composes with windows
	c.AddMemNoise(0, 100, 300, 0.5)
	c.AddMemNoise(0, 200, 400, 0.5)
	tests := []struct {
		t    int64
		want float64
	}{
		{50, 0.8},
		{100, 0.4}, // base * first window
		{199, 0.4},
		{200, 0.2}, // base * both windows
		{299, 0.2},
		{300, 0.4}, // first window ends exactly here
		{399, 0.4},
		{400, 0.8}, // back to the permanent degradation only
	}
	for _, tt := range tests {
		if got := c.MemFactor(0, tt.t); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("MemFactor(0, %d) = %g, want %g", tt.t, got, tt.want)
		}
	}
}

func TestIOFactorWindowBoundaries(t *testing.T) {
	c := New(Config{Nodes: 1, RanksPerNode: 1})
	c.AddIOWindow(100, 200, 0.1)
	if got := c.IOFactor(100); got != 0.1 {
		t.Errorf("IOFactor at window start = %g, want 0.1", got)
	}
	if got := c.IOFactor(200); got != 1.0 {
		t.Errorf("IOFactor at window end = %g, want 1.0", got)
	}
	// The factor must flow into the cost model: degraded IO is 10x slower.
	slow := c.IOCost(150, 1000)
	fast := c.IOCost(200, 1000)
	if slow != fast*10 {
		t.Errorf("IOCost inside window = %d, outside = %d; want exactly 10x", slow, fast)
	}
}

// OS noise is periodic: every Period ns the first Duration ns run slowed.
// The boundary contract mirrors windows: tick t is noisy iff
// t mod Period < Duration.
func TestOSNoisePeriodBoundaries(t *testing.T) {
	c := New(Config{Nodes: 1, RanksPerNode: 1})
	c.SetOSNoise(1000, 100, 0.5)
	tests := []struct {
		name string
		t    int64
		want float64
	}{
		{"period start is noisy", 0, 0.5},
		{"last noisy tick", 99, 0.5},
		{"first quiet tick", 100, 1.0},
		{"last quiet tick", 999, 1.0},
		{"next period start is noisy again", 1000, 0.5},
		{"next period last noisy tick", 1099, 0.5},
		{"next period first quiet tick", 1100, 1.0},
		{"far future period start", 1_000_000, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.CPUFactor(0, tt.t); got != tt.want {
				t.Errorf("CPUFactor(0, %d) = %g, want %g", tt.t, got, tt.want)
			}
		})
	}
}

func TestOSNoiseComposesWithCPUWindow(t *testing.T) {
	c := New(Config{Nodes: 1, RanksPerNode: 1})
	c.SetOSNoise(1000, 100, 0.5)
	c.AddCPUNoise(0, 0, 50, 0.5)
	if got := c.CPUFactor(0, 10); got != 0.25 {
		t.Errorf("CPUFactor with window + OS noise = %g, want 0.25", got)
	}
	if got := c.CPUFactor(0, 50); got != 0.5 {
		t.Errorf("CPUFactor with OS noise only = %g, want 0.5", got)
	}
}
