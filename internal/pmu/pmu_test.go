package pmu

import (
	"testing"
	"testing/quick"
)

func TestExactCounts(t *testing.T) {
	c := New(0, 1, 0)
	c.AddInstructions(100)
	c.AddInstructions(50)
	c.AddFlops(7)
	c.AddMemOps(3)
	if c.Exact() != 150 {
		t.Errorf("exact = %d", c.Exact())
	}
	if c.Read() != 150 || c.ReadFlops() != 7 || c.ReadMemOps() != 3 {
		t.Error("jitter-free reads should be exact")
	}
}

func TestJitterBounded(t *testing.T) {
	f := func(seedRaw int64, rank uint8) bool {
		c := New(int(rank), seedRaw, 0.005)
		c.AddInstructions(1_000_000)
		for i := 0; i < 20; i++ {
			v := c.Read()
			if v < 995_000 || v > 1_005_001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJitterVariesAcrossReads(t *testing.T) {
	c := New(3, 42, 0.005)
	c.AddInstructions(1_000_000)
	a, b := c.Read(), c.Read()
	if a == b {
		// Two consecutive reads use different sequence numbers; identical
		// values are astronomically unlikely with a 0.5% band.
		t.Errorf("reads identical: %d", a)
	}
}

func TestJitterDeterministic(t *testing.T) {
	mk := func() []int64 {
		c := New(1, 99, 0.01)
		c.AddInstructions(12345)
		out := make([]int64, 5)
		for i := range out {
			out[i] = c.Read()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestZeroReads(t *testing.T) {
	c := New(0, 5, 0.01)
	if c.Read() != 0 {
		t.Error("zero count should read zero even with jitter")
	}
}

func TestMissRateModel(t *testing.T) {
	var m *MissRateModel
	if m.Rate(0) != 0 {
		t.Error("nil model should report 0")
	}
	m = &MissRateModel{Base: 0.05, HighRate: 0.4, Phase: func(i int64) bool { return i%2 == 1 }}
	if m.Rate(0) != 0.05 || m.Rate(1) != 0.4 || m.Rate(2) != 0.05 {
		t.Error("phase selection wrong")
	}
	m2 := &MissRateModel{Base: 0.1}
	if m2.Rate(123) != 0.1 {
		t.Error("base-only model wrong")
	}
}
