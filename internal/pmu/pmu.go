// Package pmu simulates a hardware performance-monitoring unit. The paper
// validates identified v-sensors by reading instruction counts from the PMU
// and checking that a sensor's workload really is fixed (§6.2, Table 1's
// "workload max error" column); it also uses PMU metrics such as cache miss
// rate as dynamic classification rules (§5.3, Fig. 13). Real PMUs are not
// perfectly accurate (the paper cites Weaver et al.), so reads here apply a
// deterministic, bounded, multiplicative jitter.
package pmu

import "math"

// Counter accumulates exact event counts for one rank; Read applies the
// measurement error model.
type Counter struct {
	rank      int
	seed      int64
	jitterPct float64 // max relative read error, e.g. 0.005 for ±0.5%

	instructions int64
	flops        int64
	memOps       int64
	reads        int64 // read sequence number, drives the jitter stream
}

// New returns a counter for one rank. jitterPct bounds the relative error
// of Read results (0 disables the error model).
func New(rank int, seed int64, jitterPct float64) *Counter {
	return &Counter{rank: rank, seed: seed, jitterPct: jitterPct}
}

// AddInstructions records n retired instructions.
func (c *Counter) AddInstructions(n int64) { c.instructions += n }

// AddFlops records n floating-point operations.
func (c *Counter) AddFlops(n int64) { c.flops += n }

// AddMemOps records n memory operations.
func (c *Counter) AddMemOps(n int64) { c.memOps += n }

// Exact returns the true instruction count (no measurement error); used by
// tests and by the harness when computing ground truth.
func (c *Counter) Exact() int64 { return c.instructions }

// Read returns the measured instruction count: the true count with bounded
// multiplicative jitter, mimicking PMU non-determinism and overcount.
func (c *Counter) Read() int64 {
	c.reads++
	return c.perturb(c.instructions)
}

// ReadFlops returns the measured flop count.
func (c *Counter) ReadFlops() int64 {
	c.reads++
	return c.perturb(c.flops)
}

// ReadMemOps returns the measured memory-op count.
func (c *Counter) ReadMemOps() int64 {
	c.reads++
	return c.perturb(c.memOps)
}

func (c *Counter) perturb(v int64) int64 {
	if c.jitterPct == 0 || v == 0 {
		return v
	}
	u := hash64(uint64(c.seed) ^ uint64(c.rank)<<32 ^ uint64(c.reads))
	eps := c.jitterPct * (2*float64(u>>11)/float64(1<<53) - 1)
	out := int64(math.Round(float64(v) * (1 + eps)))
	if out < 0 {
		out = 0
	}
	return out
}

// MissRateModel produces a synthetic cache-miss-rate signal for a sensor
// execution. The paper's Fig. 13 clusters sensor records by miss-rate range
// (a dynamic rule); this model gives each (rank, sensor) stream a base rate
// plus optional high-miss phases.
type MissRateModel struct {
	Base float64 // baseline miss rate, e.g. 0.05

	// HighRate applies during phases selected by Phase.
	HighRate float64

	// Phase selects records with high miss rate: given the execution index
	// of a sensor record, report whether it is a high-miss execution.
	// Nil means never.
	Phase func(execIdx int64) bool
}

// Rate returns the miss rate for the execIdx-th execution.
func (m *MissRateModel) Rate(execIdx int64) float64 {
	if m == nil {
		return 0
	}
	if m.Phase != nil && m.Phase(execIdx) {
		return m.HighRate
	}
	return m.Base
}

func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
