package profiler

import (
	"strings"
	"sync"
	"testing"

	"vsensor/internal/vm"
)

func TestAccumulation(t *testing.T) {
	p := New()
	c0 := p.Collector(0)
	c1 := p.Collector(1)
	c0.OnEvent(vm.Event{Rank: 0, Kind: vm.EvNet, Op: "mpi_barrier", Start: 0, End: 100})
	c0.OnEvent(vm.Event{Rank: 0, Kind: vm.EvNet, Op: "mpi_send", Start: 200, End: 500})
	c0.OnEvent(vm.Event{Rank: 0, Kind: vm.EvIO, Op: "io_write", Start: 600, End: 700})
	c1.OnEvent(vm.Event{Rank: 1, Kind: vm.EvNet, Op: "mpi_barrier", Start: 0, End: 50})

	res := &vm.Result{Ranks: []vm.RankStats{
		{Rank: 0, Total: 1000},
		{Rank: 1, Total: 1000},
	}}
	p.Finalize(res)

	ranks := p.Ranks()
	if len(ranks) != 2 {
		t.Fatalf("ranks = %d", len(ranks))
	}
	r0 := ranks[0]
	if r0.MPINs != 400 || r0.IONs != 100 || r0.CompNs != 500 {
		t.Errorf("rank 0 = %+v", r0)
	}
	if r0.Calls["mpi_send"] != 300 {
		t.Errorf("per-call time = %v", r0.Calls)
	}
	if ranks[1].CompNs != 950 {
		t.Errorf("rank 1 comp = %d", ranks[1].CompNs)
	}
}

func TestMeans(t *testing.T) {
	p := New()
	p.Collector(0).OnEvent(vm.Event{Rank: 0, Kind: vm.EvNet, Op: "x", Start: 0, End: 2_000_000_000})
	p.Collector(1).OnEvent(vm.Event{Rank: 1, Kind: vm.EvNet, Op: "x", Start: 0, End: 4_000_000_000})
	p.Finalize(&vm.Result{Ranks: []vm.RankStats{{Rank: 0, Total: 5_000_000_000}, {Rank: 1, Total: 5_000_000_000}}})
	if m := p.MeanMPISeconds(); m != 3 {
		t.Errorf("mean mpi = %v", m)
	}
	if m := p.MeanCompSeconds(); m != 2 {
		t.Errorf("mean comp = %v", m)
	}
}

func TestReportFormat(t *testing.T) {
	p := New()
	p.Collector(0).OnEvent(vm.Event{Rank: 0, Kind: vm.EvNet, Op: "x", Start: 0, End: 1_500_000_000})
	p.Finalize(&vm.Result{Ranks: []vm.RankStats{{Rank: 0, Total: 2_000_000_000}}})
	rep := p.Report()
	if !strings.Contains(rep, "rank") || !strings.Contains(rep, "1.500") || !strings.Contains(rep, "0.500") {
		t.Errorf("report:\n%s", rep)
	}
}

// TestConcurrentCollectors exercises the per-rank sharded locking: many
// rank collectors accumulate in parallel while a reader snapshots, which
// the old global-mutex design serialized (and go test -race now verifies).
func TestConcurrentCollectors(t *testing.T) {
	p := New()
	const ranks = 8
	const events = 500
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := p.Collector(rank)
			for i := 0; i < events; i++ {
				c.OnEvent(vm.Event{Rank: rank, Kind: vm.EvNet, Op: "mpi_send", Start: int64(i), End: int64(i) + 2})
			}
		}(r)
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p.Ranks() // snapshot-while-writing must be safe
			}
		}
	}()
	wg.Wait()
	close(stop)
	reader.Wait()
	for _, rp := range p.Ranks() {
		if rp.MPINs != 2*events {
			t.Errorf("rank %d MPINs = %d, want %d", rp.Rank, rp.MPINs, 2*events)
		}
		if rp.Calls["mpi_send"] != 2*events {
			t.Errorf("rank %d calls = %v", rp.Rank, rp.Calls)
		}
	}
}

func TestEmptyProfile(t *testing.T) {
	p := New()
	if p.MeanMPISeconds() != 0 || p.MeanCompSeconds() != 0 {
		t.Error("empty profile should report zeros")
	}
	p.Finalize(&vm.Result{Ranks: []vm.RankStats{{Rank: 0, Total: 100}}})
	if len(p.Ranks()) != 1 || p.Ranks()[0].CompNs != 100 {
		t.Error("finalize should create missing rank entries")
	}
}
