// Package profiler is the mpiP-equivalent baseline of paper §6.4: a
// lightweight profiler that accumulates, per rank, the total time spent in
// computation versus MPI communication. The paper shows that such profiles
// cannot localize injected variance — the noise shifts MPI wait time,
// misleading the user to suspect the network (Figs. 18-19) — which is
// exactly the behaviour this baseline reproduces against vSensor.
package profiler

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vsensor/internal/vm"
)

// Profile is the aggregated per-rank time breakdown. Event accumulation is
// sharded: each rank's collector owns its own lock, so concurrent ranks
// never contend with each other on the hot OnEvent path (the registry
// mutex is only taken when a rank's slot is first created or when the
// profile is read).
type Profile struct {
	mu    sync.Mutex // guards the ranks map, not the per-rank data
	ranks map[int]*rankState
}

// rankState is one rank's accumulated times behind its own lock.
type rankState struct {
	mu sync.Mutex
	rp RankProfile
}

// RankProfile is one rank's accumulated times.
type RankProfile struct {
	Rank   int
	MPINs  int64
	IONs   int64
	CompNs int64            // filled in by Finalize from total time
	Calls  map[string]int64 // per-MPI-operation time
}

// New creates an empty profile.
func New() *Profile {
	return &Profile{ranks: make(map[int]*rankState)}
}

// slot returns (creating if needed) the rank's state.
func (p *Profile) slot(rank int) *rankState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.ranks[rank]
	if st == nil {
		st = &rankState{rp: RankProfile{Rank: rank, Calls: make(map[string]int64)}}
		p.ranks[rank] = st
	}
	return st
}

// Collector returns the per-rank event sink feeding this profile.
func (p *Profile) Collector(rank int) vm.EventSink {
	return &collector{st: p.slot(rank)}
}

type collector struct {
	st *rankState
}

// OnEvent accumulates one runtime event under the rank's own lock.
func (c *collector) OnEvent(e vm.Event) {
	c.st.mu.Lock()
	defer c.st.mu.Unlock()
	rp := &c.st.rp
	dur := e.End - e.Start
	switch e.Kind {
	case vm.EvNet:
		rp.MPINs += dur
		rp.Calls[e.Op] += dur
	case vm.EvIO:
		rp.IONs += dur
		rp.Calls[e.Op] += dur
	}
}

// Finalize computes computation time per rank as total minus MPI/IO time.
func (p *Profile) Finalize(result *vm.Result) {
	for _, rs := range result.Ranks {
		st := p.slot(rs.Rank)
		st.mu.Lock()
		st.rp.CompNs = rs.Total - st.rp.MPINs - st.rp.IONs
		if st.rp.CompNs < 0 {
			st.rp.CompNs = 0
		}
		st.mu.Unlock()
	}
}

// Ranks returns copies of the per-rank profiles in rank order. Copies keep
// readers safe even if a collector is still live.
func (p *Profile) Ranks() []*RankProfile {
	p.mu.Lock()
	slots := make([]*rankState, 0, len(p.ranks))
	for _, st := range p.ranks {
		slots = append(slots, st)
	}
	p.mu.Unlock()
	out := make([]*RankProfile, 0, len(slots))
	for _, st := range slots {
		st.mu.Lock()
		cp := st.rp
		cp.Calls = make(map[string]int64, len(st.rp.Calls))
		for k, v := range st.rp.Calls {
			cp.Calls[k] = v
		}
		st.mu.Unlock()
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// MeanMPISeconds returns the mean MPI time across ranks in seconds —
// the quantity that grows under noise injection in the paper's Fig. 19.
func (p *Profile) MeanMPISeconds() float64 {
	ranks := p.Ranks()
	if len(ranks) == 0 {
		return 0
	}
	var sum int64
	for _, rp := range ranks {
		sum += rp.MPINs
	}
	return float64(sum) / float64(len(ranks)) / 1e9
}

// MeanCompSeconds returns the mean computation time across ranks in seconds.
func (p *Profile) MeanCompSeconds() float64 {
	ranks := p.Ranks()
	if len(ranks) == 0 {
		return 0
	}
	var sum int64
	for _, rp := range ranks {
		sum += rp.CompNs
	}
	return float64(sum) / float64(len(ranks)) / 1e9
}

// Report renders the mpiP-style per-rank table (Figs. 18-19's data).
func (p *Profile) Report() string {
	var sb strings.Builder
	sb.WriteString("rank  comp_s   mpi_s    io_s\n")
	for _, rp := range p.Ranks() {
		fmt.Fprintf(&sb, "%4d  %7.3f  %7.3f  %6.3f\n",
			rp.Rank, float64(rp.CompNs)/1e9, float64(rp.MPINs)/1e9, float64(rp.IONs)/1e9)
	}
	return sb.String()
}
