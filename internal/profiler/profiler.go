// Package profiler is the mpiP-equivalent baseline of paper §6.4: a
// lightweight profiler that accumulates, per rank, the total time spent in
// computation versus MPI communication. The paper shows that such profiles
// cannot localize injected variance — the noise shifts MPI wait time,
// misleading the user to suspect the network (Figs. 18-19) — which is
// exactly the behaviour this baseline reproduces against vSensor.
package profiler

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vsensor/internal/vm"
)

// Profile is the aggregated per-rank time breakdown.
type Profile struct {
	mu    sync.Mutex
	ranks map[int]*RankProfile
}

// RankProfile is one rank's accumulated times.
type RankProfile struct {
	Rank   int
	MPINs  int64
	IONs   int64
	CompNs int64            // filled in by Finalize from total time
	Calls  map[string]int64 // per-MPI-operation time
}

// New creates an empty profile.
func New() *Profile {
	return &Profile{ranks: make(map[int]*RankProfile)}
}

// Collector returns the per-rank event sink feeding this profile.
func (p *Profile) Collector(rank int) vm.EventSink {
	return &collector{p: p, rank: rank}
}

type collector struct {
	p    *Profile
	rank int
}

// OnEvent accumulates one runtime event.
func (c *collector) OnEvent(e vm.Event) {
	c.p.mu.Lock()
	defer c.p.mu.Unlock()
	rp := c.p.ranks[c.rank]
	if rp == nil {
		rp = &RankProfile{Rank: c.rank, Calls: make(map[string]int64)}
		c.p.ranks[c.rank] = rp
	}
	dur := e.End - e.Start
	switch e.Kind {
	case vm.EvNet:
		rp.MPINs += dur
		rp.Calls[e.Op] += dur
	case vm.EvIO:
		rp.IONs += dur
		rp.Calls[e.Op] += dur
	}
}

// Finalize computes computation time per rank as total minus MPI/IO time.
func (p *Profile) Finalize(result *vm.Result) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, st := range result.Ranks {
		rp := p.ranks[st.Rank]
		if rp == nil {
			rp = &RankProfile{Rank: st.Rank, Calls: make(map[string]int64)}
			p.ranks[st.Rank] = rp
		}
		rp.CompNs = st.Total - rp.MPINs - rp.IONs
		if rp.CompNs < 0 {
			rp.CompNs = 0
		}
	}
}

// Ranks returns the per-rank profiles in rank order.
func (p *Profile) Ranks() []*RankProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*RankProfile, 0, len(p.ranks))
	for _, rp := range p.ranks {
		out = append(out, rp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// MeanMPISeconds returns the mean MPI time across ranks in seconds —
// the quantity that grows under noise injection in the paper's Fig. 19.
func (p *Profile) MeanMPISeconds() float64 {
	ranks := p.Ranks()
	if len(ranks) == 0 {
		return 0
	}
	var sum int64
	for _, rp := range ranks {
		sum += rp.MPINs
	}
	return float64(sum) / float64(len(ranks)) / 1e9
}

// MeanCompSeconds returns the mean computation time across ranks in seconds.
func (p *Profile) MeanCompSeconds() float64 {
	ranks := p.Ranks()
	if len(ranks) == 0 {
		return 0
	}
	var sum int64
	for _, rp := range ranks {
		sum += rp.CompNs
	}
	return float64(sum) / float64(len(ranks)) / 1e9
}

// Report renders the mpiP-style per-rank table (Figs. 18-19's data).
func (p *Profile) Report() string {
	var sb strings.Builder
	sb.WriteString("rank  comp_s   mpi_s    io_s\n")
	for _, rp := range p.Ranks() {
		fmt.Fprintf(&sb, "%4d  %7.3f  %7.3f  %6.3f\n",
			rp.Rank, float64(rp.CompNs)/1e9, float64(rp.MPINs)/1e9, float64(rp.IONs)/1e9)
	}
	return sb.String()
}
