package transport

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/server"
)

// sortRecords orders a record log canonically so logs can be compared
// independently of delivery order.
func sortRecords(recs []detect.SliceRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.SliceNs != b.SliceNs {
			return a.SliceNs < b.SliceNs
		}
		if a.Sensor != b.Sensor {
			return a.Sensor < b.Sensor
		}
		return a.Group < b.Group
	})
}

// fakeClock implements vm.Clock for charge accounting.
type fakeClock struct{ now int64 }

func (f *fakeClock) Now() int64        { return f.now }
func (f *fakeClock) AdvanceTo(t int64) { f.now = t }

func rec(rank, i int) detect.SliceRecord {
	return detect.SliceRecord{
		Sensor: i % 7, Group: i % 3, Rank: rank,
		SliceNs: int64(i) * 1_000_000, Count: 1, AvgNs: float64(100 + i%13),
	}
}

func TestPerfectLinkDelivery(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{})
	conn := link.NewConn(0, Config{BatchSize: 8})
	const n = 50
	for i := 0; i < n; i++ {
		if err := conn.OnSlice(rec(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Records()); got != n {
		t.Fatalf("records = %d, want %d", got, n)
	}
	cov := srv.Coverage()
	if !cov.Complete() || cov.ExpectedRecords != n {
		t.Errorf("coverage = %+v", cov)
	}
	st := conn.Stats()
	if st.RecordsSent != n || st.Retries != 0 || st.LostRecords != 0 || st.WaitNs != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// A dropping link forces retries; each failed attempt charges timeout plus
// growing backoff to the bound virtual clock.
func TestRetryChargesClock(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{Seed: 1, Drop: 0.5})
	clk := &fakeClock{}
	conn := link.NewConn(0, Config{BatchSize: 4, TimeoutNs: 1000, BackoffBaseNs: 100, BackoffMaxNs: 400})
	conn.BindClock(clk)
	for i := 0; i < 64; i++ {
		conn.OnSlice(rec(0, i))
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	st := conn.Stats()
	if st.Retries == 0 {
		t.Fatal("50% drop produced no retries")
	}
	if st.WaitNs == 0 || clk.now != st.WaitNs {
		t.Errorf("wait=%d clock=%d; retry time not charged to the clock", st.WaitNs, clk.now)
	}
	// Minimum charge: every retry waits out at least the ack timeout.
	if st.WaitNs < st.Retries*1000 {
		t.Errorf("wait %d < retries %d * timeout", st.WaitNs, st.Retries)
	}
	if got := len(srv.Records()); got != 64 {
		t.Errorf("records = %d, want 64 (drops must be retried)", got)
	}
}

// With the link permanently down, frames park; flush intervals pack while
// the park queue is blocked, and once the packed buffer reaches
// BufferCap*BatchSize records a frame is cut anyway — beyond the parked cap
// the oldest frame is evicted and reported as an explicit error, so memory
// stays bounded under unbounded backpressure.
func TestBufferCapDropOldest(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{Seed: 2, Drop: 1})
	conn := link.NewConn(3, Config{
		BatchSize: 2, MaxRetries: 1, BufferCap: 3,
		TimeoutNs: 1, BackoffBaseNs: 1, CloseAttempts: 1,
	})
	const n = 30
	var evictErr error
	for i := 0; i < n; i++ {
		if err := conn.OnSlice(rec(3, i)); err != nil && evictErr == nil {
			evictErr = err
		}
	}
	if evictErr == nil {
		t.Fatal("no backpressure error after overfilling the retransmit buffer")
	}
	if !strings.Contains(evictErr.Error(), "retransmit buffer full") {
		t.Errorf("err = %v", evictErr)
	}
	st := conn.Stats()
	if st.Parked != 3 {
		t.Errorf("parked = %d, want cap 3", st.Parked)
	}
	if st.PackedFlushes == 0 {
		t.Error("no flush intervals packed while the park queue was blocked")
	}
	if st.LostFrames == 0 {
		t.Error("no evictions despite overflowing the cap")
	}
	if err := conn.Close(); err == nil {
		t.Error("close on a dead link should report abandoned frames")
	}
	st = conn.Stats()
	if st.Parked != 0 {
		t.Errorf("parked after close = %d", st.Parked)
	}
	// Every record was either evicted or abandoned: nothing arrived, and
	// the loss accounting covers all n.
	if st.LostRecords != n {
		t.Errorf("lost records = %d, want %d", st.LostRecords, n)
	}
	if got := len(srv.Records()); got != 0 {
		t.Errorf("dead link delivered %d records", got)
	}
}

// The packed-record cap is BufferCap*BatchSize, but never more than one
// frame can carry.
func TestPackLimitCappedByFrame(t *testing.T) {
	link := NewLink(server.New(), FaultPlan{})
	small := link.NewConn(0, Config{BatchSize: 2, BufferCap: 3})
	if got := small.packLimit(); got != 6 {
		t.Errorf("packLimit = %d, want 6", got)
	}
	huge := link.NewConn(1, Config{BatchSize: 4096, BufferCap: 4096})
	if got := huge.packLimit(); got != server.MaxFrameRecords {
		t.Errorf("packLimit = %d, want frame cap %d", got, server.MaxFrameRecords)
	}
}

// Backpressure packing, deterministically: during the server's crash
// window the first undelivered frame parks, later flush intervals defer
// instead of cutting frames behind it, and the first flush after recovery
// delivers the parked frame plus ONE packed frame carrying every deferred
// interval.
func TestBackpressurePackedFlushes(t *testing.T) {
	srv := server.New()
	// Attempt 1 lands; attempts 2-8 hit the down window; attempt 9+ land.
	// With MaxRetries 1 each transmit makes exactly two attempts, so the
	// schedule below is fully deterministic.
	link := NewLink(srv, FaultPlan{CrashAfterFrames: 1, CrashDownFrames: 7})
	conn := link.NewConn(1, Config{
		BatchSize: 64, MaxRetries: 1, BufferCap: 8,
		TimeoutNs: 1, BackoffBaseNs: 1, CloseAttempts: 4,
	})
	flushN := func(k int) {
		for i := 0; i < 2; i++ {
			if err := conn.OnSlice(rec(1, k*2+i)); err != nil {
				t.Fatal(err)
			}
		}
		_ = conn.Flush()
	}
	flushN(0) // attempt 1: delivered
	flushN(1) // attempts 2,3: down, frame parks
	flushN(2) // attempts 4,5 on the parked frame fail; interval defers
	flushN(3) // attempts 6,7 likewise
	flushN(4) // attempts 8,9: parked frame lands; packed frame (6 records) lands
	st := conn.Stats()
	if st.PackedFlushes != 2 {
		t.Errorf("packed flushes = %d, want 2", st.PackedFlushes)
	}
	if st.FramesSent != 3 {
		t.Errorf("frames sent = %d, want 3 (1 clean + 1 parked + 1 packed)", st.FramesSent)
	}
	if st.LostFrames != 0 || st.LostRecords != 0 {
		t.Errorf("lost frames=%d records=%d, want none", st.LostFrames, st.LostRecords)
	}
	if got := len(srv.Records()); got != 10 {
		t.Errorf("records = %d, want all 10", got)
	}
	cov := srv.Coverage()
	if cov.IngestedRecords != 10 || cov.Fraction() != 1 {
		t.Errorf("coverage = %+v, want complete", cov)
	}
}

// Frames rejected during the server's crash window are retried and land
// after the restart: nothing is lost across a crash-restart.
func TestCrashRestartRecovery(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{CrashAfterFrames: 5, CrashDownFrames: 10})
	conn := link.NewConn(0, Config{BatchSize: 2, TimeoutNs: 1, BackoffBaseNs: 1, MaxRetries: 20})
	const n = 40
	for i := 0; i < n; i++ {
		if err := conn.OnSlice(rec(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Records()); got != n {
		t.Fatalf("records = %d, want %d", got, n)
	}
	st := conn.Stats()
	if st.Retries == 0 {
		t.Error("crash window produced no retries")
	}
	if cov := srv.Coverage(); !cov.Complete() {
		t.Errorf("coverage = %+v", cov)
	}
}

// An always-duplicating link delivers every frame twice; the server's
// sequence dedup keeps the log exactly-once.
func TestDuplicatesAbsorbed(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{Dup: 1})
	conn := link.NewConn(0, Config{BatchSize: 4})
	const n = 20
	for i := 0; i < n; i++ {
		conn.OnSlice(rec(0, i))
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Records()); got != n {
		t.Fatalf("records = %d, want %d exactly-once", got, n)
	}
	cov := srv.Coverage()
	if cov.DupFrames != 5 {
		t.Errorf("dup frames = %d, want 5 (one per frame)", cov.DupFrames)
	}
}

// An always-reordering link holds each frame until the next one passes it;
// the log still ends up complete, with the server having seen sequences out
// of order.
func TestReorderEventuallyDelivers(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{Reorder: 1})
	conn := link.NewConn(0, Config{BatchSize: 2})
	const n = 10
	for i := 0; i < n; i++ {
		conn.OnSlice(rec(0, i))
	}
	// Frame 1 is still held in flight until close releases it.
	if got := len(srv.Records()); got != n-2 {
		t.Fatalf("records before close = %d, want %d (one frame in flight)", got, n-2)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Records()); got != n {
		t.Fatalf("records = %d, want %d", got, n)
	}
	if cov := srv.Coverage(); !cov.Complete() {
		t.Errorf("coverage = %+v", cov)
	}
}

// Corrupted frames reach the server, fail the CRC, and are retried intact.
func TestCorruptionRetried(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{Seed: 3, Corrupt: 0.5})
	conn := link.NewConn(0, Config{BatchSize: 4, TimeoutNs: 1, BackoffBaseNs: 1})
	const n = 40
	for i := 0; i < n; i++ {
		conn.OnSlice(rec(0, i))
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Records()); got != n {
		t.Fatalf("records = %d, want %d", got, n)
	}
	if cov := srv.Coverage(); cov.ChecksumErrors == 0 {
		t.Error("50% corruption produced no checksum rejects")
	}
}

// chaosPlan is the kitchen-sink fault plan the acceptance criteria name:
// heavy drop, duplication, reordering, corruption, and one crash-restart.
var chaosPlan = FaultPlan{
	Seed: 11, Drop: 0.25, Dup: 0.1, Reorder: 0.15, Corrupt: 0.05,
	CrashAfterFrames: 60, CrashDownFrames: 20,
}

// runRanks pushes the same synthetic workload through a link from concurrent
// rank goroutines and returns the server.
func runRanks(t *testing.T, plan FaultPlan, ranks, perRank int) *server.Server {
	t.Helper()
	srv := server.New()
	link := NewLink(srv, plan)
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			conn := link.NewConn(rank, Config{
				BatchSize: 8, TimeoutNs: 10, BackoffBaseNs: 10, MaxRetries: 12,
			})
			for i := 0; i < perRank; i++ {
				if err := conn.OnSlice(rec(rank, i)); err != nil {
					errs[rank] = err
					return
				}
			}
			errs[rank] = conn.Close()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return srv
}

// TestChaosExactlyOnce is the acceptance chaos test: under seeded drops,
// duplicates, reordering, corruption, and a server crash-restart, the
// server's final record log must equal the fault-free log after sorting —
// exactly-once delivery of every record, from concurrent rank goroutines
// (run under -race in CI).
func TestChaosExactlyOnce(t *testing.T) {
	const ranks, perRank = 8, 200
	faulty := runRanks(t, chaosPlan, ranks, perRank)
	clean := runRanks(t, FaultPlan{}, ranks, perRank)

	got := faulty.Records()
	want := clean.Records()
	sortRecords(got)
	sortRecords(want)
	if len(got) != len(want) {
		t.Fatalf("faulty log has %d records, clean has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs after sorting: %+v vs %+v", i, got[i], want[i])
		}
	}
	cov := faulty.Coverage()
	if !cov.Complete() {
		t.Errorf("coverage incomplete: %+v", cov)
	}
	if cov.DupFrames == 0 || cov.ChecksumErrors == 0 {
		t.Errorf("chaos plan injected no dups/corruption? coverage = %+v", cov)
	}
}

// The per-rank fault streams are keyed by (seed, rank) only, so a rank's
// delivery accounting is identical across runs regardless of interleaving.
func TestFaultStreamDeterminism(t *testing.T) {
	run := func() ConnStats {
		srv := server.New()
		link := NewLink(srv, FaultPlan{Seed: 5, Drop: 0.3, Corrupt: 0.1, DelayNs: 100})
		conn := link.NewConn(2, Config{BatchSize: 4, TimeoutNs: 10, BackoffBaseNs: 10})
		for i := 0; i < 80; i++ {
			conn.OnSlice(rec(2, i))
		}
		conn.Close()
		return conn.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different stats:\n%+v\n%+v", a, b)
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "drop=0.2,dup=0.05,reorder=0.1,corrupt=0.02,delay=20us,seed=7,crashafter=100,crashdown=20"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := FaultPlan{
		Seed: 7, Drop: 0.2, Dup: 0.05, Reorder: 0.1, Corrupt: 0.02,
		DelayNs: 20_000, CrashAfterFrames: 100, CrashDownFrames: 20,
	}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	// String renders back into parseable syntax.
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Errorf("string round trip: %+v vs %+v", p2, p)
	}
	if got, err := ParsePlan(""); err != nil || !got.Zero() {
		t.Errorf("empty spec: %+v, %v", got, err)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"drop", "drop=x", "drop=1.5", "drop=-0.1", "bogus=1", "delay=5xs",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
