package transport

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/server"
)

// sortRecords orders a record log canonically so logs can be compared
// independently of delivery order.
func sortRecords(recs []detect.SliceRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.SliceNs != b.SliceNs {
			return a.SliceNs < b.SliceNs
		}
		if a.Sensor != b.Sensor {
			return a.Sensor < b.Sensor
		}
		return a.Group < b.Group
	})
}

// fakeClock implements vm.Clock for charge accounting.
type fakeClock struct{ now int64 }

func (f *fakeClock) Now() int64        { return f.now }
func (f *fakeClock) AdvanceTo(t int64) { f.now = t }

func rec(rank, i int) detect.SliceRecord {
	return detect.SliceRecord{
		Sensor: i % 7, Group: i % 3, Rank: rank,
		SliceNs: int64(i) * 1_000_000, Count: 1, AvgNs: float64(100 + i%13),
	}
}

func TestPerfectLinkDelivery(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{})
	conn := link.NewConn(0, Config{BatchSize: 8})
	const n = 50
	for i := 0; i < n; i++ {
		if err := conn.OnSlice(rec(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Records()); got != n {
		t.Fatalf("records = %d, want %d", got, n)
	}
	cov := srv.Coverage()
	if !cov.Complete() || cov.ExpectedRecords != n {
		t.Errorf("coverage = %+v", cov)
	}
	st := conn.Stats()
	if st.RecordsSent != n || st.Retries != 0 || st.LostRecords != 0 || st.WaitNs != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// A dropping link forces retries; each failed attempt charges timeout plus
// growing backoff to the bound virtual clock.
func TestRetryChargesClock(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{Seed: 1, Drop: 0.5})
	clk := &fakeClock{}
	conn := link.NewConn(0, Config{BatchSize: 4, TimeoutNs: 1000, BackoffBaseNs: 100, BackoffMaxNs: 400})
	conn.BindClock(clk)
	for i := 0; i < 64; i++ {
		conn.OnSlice(rec(0, i))
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	st := conn.Stats()
	if st.Retries == 0 {
		t.Fatal("50% drop produced no retries")
	}
	if st.WaitNs == 0 || clk.now != st.WaitNs {
		t.Errorf("wait=%d clock=%d; retry time not charged to the clock", st.WaitNs, clk.now)
	}
	// Minimum charge: every retry waits out at least the ack timeout.
	if st.WaitNs < st.Retries*1000 {
		t.Errorf("wait %d < retries %d * timeout", st.WaitNs, st.Retries)
	}
	if got := len(srv.Records()); got != 64 {
		t.Errorf("records = %d, want 64 (drops must be retried)", got)
	}
}

// With the link permanently down, frames park; beyond the buffer cap the
// oldest parked frame is evicted and reported as an explicit error.
func TestBufferCapDropOldest(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{Seed: 2, Drop: 1})
	conn := link.NewConn(3, Config{
		BatchSize: 2, MaxRetries: 1, BufferCap: 3,
		TimeoutNs: 1, BackoffBaseNs: 1, CloseAttempts: 1,
	})
	var evictErr error
	for i := 0; i < 12; i++ {
		if err := conn.OnSlice(rec(3, i)); err != nil && evictErr == nil {
			evictErr = err
		}
	}
	if evictErr == nil {
		t.Fatal("no backpressure error after overfilling the retransmit buffer")
	}
	if !strings.Contains(evictErr.Error(), "retransmit buffer full") {
		t.Errorf("err = %v", evictErr)
	}
	st := conn.Stats()
	if st.Parked != 3 {
		t.Errorf("parked = %d, want cap 3", st.Parked)
	}
	// 6 frames sent, 3 parked, 3 evicted (2 records each).
	if st.LostFrames != 3 || st.LostRecords != 6 {
		t.Errorf("lost frames=%d records=%d", st.LostFrames, st.LostRecords)
	}
	if err := conn.Close(); err == nil {
		t.Error("close on a dead link should report abandoned frames")
	}
	if st := conn.Stats(); st.Parked != 0 {
		t.Errorf("parked after close = %d", st.Parked)
	}
	if got := len(srv.Records()); got != 0 {
		t.Errorf("dead link delivered %d records", got)
	}
}

// Frames rejected during the server's crash window are retried and land
// after the restart: nothing is lost across a crash-restart.
func TestCrashRestartRecovery(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{CrashAfterFrames: 5, CrashDownFrames: 10})
	conn := link.NewConn(0, Config{BatchSize: 2, TimeoutNs: 1, BackoffBaseNs: 1, MaxRetries: 20})
	const n = 40
	for i := 0; i < n; i++ {
		if err := conn.OnSlice(rec(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Records()); got != n {
		t.Fatalf("records = %d, want %d", got, n)
	}
	st := conn.Stats()
	if st.Retries == 0 {
		t.Error("crash window produced no retries")
	}
	if cov := srv.Coverage(); !cov.Complete() {
		t.Errorf("coverage = %+v", cov)
	}
}

// An always-duplicating link delivers every frame twice; the server's
// sequence dedup keeps the log exactly-once.
func TestDuplicatesAbsorbed(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{Dup: 1})
	conn := link.NewConn(0, Config{BatchSize: 4})
	const n = 20
	for i := 0; i < n; i++ {
		conn.OnSlice(rec(0, i))
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Records()); got != n {
		t.Fatalf("records = %d, want %d exactly-once", got, n)
	}
	cov := srv.Coverage()
	if cov.DupFrames != 5 {
		t.Errorf("dup frames = %d, want 5 (one per frame)", cov.DupFrames)
	}
}

// An always-reordering link holds each frame until the next one passes it;
// the log still ends up complete, with the server having seen sequences out
// of order.
func TestReorderEventuallyDelivers(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{Reorder: 1})
	conn := link.NewConn(0, Config{BatchSize: 2})
	const n = 10
	for i := 0; i < n; i++ {
		conn.OnSlice(rec(0, i))
	}
	// Frame 1 is still held in flight until close releases it.
	if got := len(srv.Records()); got != n-2 {
		t.Fatalf("records before close = %d, want %d (one frame in flight)", got, n-2)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Records()); got != n {
		t.Fatalf("records = %d, want %d", got, n)
	}
	if cov := srv.Coverage(); !cov.Complete() {
		t.Errorf("coverage = %+v", cov)
	}
}

// Corrupted frames reach the server, fail the CRC, and are retried intact.
func TestCorruptionRetried(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{Seed: 3, Corrupt: 0.5})
	conn := link.NewConn(0, Config{BatchSize: 4, TimeoutNs: 1, BackoffBaseNs: 1})
	const n = 40
	for i := 0; i < n; i++ {
		conn.OnSlice(rec(0, i))
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Records()); got != n {
		t.Fatalf("records = %d, want %d", got, n)
	}
	if cov := srv.Coverage(); cov.ChecksumErrors == 0 {
		t.Error("50% corruption produced no checksum rejects")
	}
}

// chaosPlan is the kitchen-sink fault plan the acceptance criteria name:
// heavy drop, duplication, reordering, corruption, and one crash-restart.
var chaosPlan = FaultPlan{
	Seed: 11, Drop: 0.25, Dup: 0.1, Reorder: 0.15, Corrupt: 0.05,
	CrashAfterFrames: 60, CrashDownFrames: 20,
}

// runRanks pushes the same synthetic workload through a link from concurrent
// rank goroutines and returns the server.
func runRanks(t *testing.T, plan FaultPlan, ranks, perRank int) *server.Server {
	t.Helper()
	srv := server.New()
	link := NewLink(srv, plan)
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			conn := link.NewConn(rank, Config{
				BatchSize: 8, TimeoutNs: 10, BackoffBaseNs: 10, MaxRetries: 12,
			})
			for i := 0; i < perRank; i++ {
				if err := conn.OnSlice(rec(rank, i)); err != nil {
					errs[rank] = err
					return
				}
			}
			errs[rank] = conn.Close()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return srv
}

// TestChaosExactlyOnce is the acceptance chaos test: under seeded drops,
// duplicates, reordering, corruption, and a server crash-restart, the
// server's final record log must equal the fault-free log after sorting —
// exactly-once delivery of every record, from concurrent rank goroutines
// (run under -race in CI).
func TestChaosExactlyOnce(t *testing.T) {
	const ranks, perRank = 8, 200
	faulty := runRanks(t, chaosPlan, ranks, perRank)
	clean := runRanks(t, FaultPlan{}, ranks, perRank)

	got := faulty.Records()
	want := clean.Records()
	sortRecords(got)
	sortRecords(want)
	if len(got) != len(want) {
		t.Fatalf("faulty log has %d records, clean has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs after sorting: %+v vs %+v", i, got[i], want[i])
		}
	}
	cov := faulty.Coverage()
	if !cov.Complete() {
		t.Errorf("coverage incomplete: %+v", cov)
	}
	if cov.DupFrames == 0 || cov.ChecksumErrors == 0 {
		t.Errorf("chaos plan injected no dups/corruption? coverage = %+v", cov)
	}
}

// The per-rank fault streams are keyed by (seed, rank) only, so a rank's
// delivery accounting is identical across runs regardless of interleaving.
func TestFaultStreamDeterminism(t *testing.T) {
	run := func() ConnStats {
		srv := server.New()
		link := NewLink(srv, FaultPlan{Seed: 5, Drop: 0.3, Corrupt: 0.1, DelayNs: 100})
		conn := link.NewConn(2, Config{BatchSize: 4, TimeoutNs: 10, BackoffBaseNs: 10})
		for i := 0; i < 80; i++ {
			conn.OnSlice(rec(2, i))
		}
		conn.Close()
		return conn.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different stats:\n%+v\n%+v", a, b)
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "drop=0.2,dup=0.05,reorder=0.1,corrupt=0.02,delay=20us,seed=7,crashafter=100,crashdown=20"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := FaultPlan{
		Seed: 7, Drop: 0.2, Dup: 0.05, Reorder: 0.1, Corrupt: 0.02,
		DelayNs: 20_000, CrashAfterFrames: 100, CrashDownFrames: 20,
	}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	// String renders back into parseable syntax.
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Errorf("string round trip: %+v vs %+v", p2, p)
	}
	if got, err := ParsePlan(""); err != nil || !got.Zero() {
		t.Errorf("empty spec: %+v, %v", got, err)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"drop", "drop=x", "drop=1.5", "drop=-0.1", "bogus=1", "delay=5xs",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
