package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vsensor/internal/detect"
	"vsensor/internal/obs"
	"vsensor/internal/server"
	"vsensor/internal/vm"
)

// nowUnixNs is the wall-clock source for lineage spans; only called on
// sampled paths, so the unsampled hot path never reads the clock.
func nowUnixNs() int64 { return time.Now().UnixNano() }

// Config tunes the reliable client side of the link.
type Config struct {
	// BatchSize is how many records a Conn buffers per frame (default
	// server.DefaultBatchSize; 1 disables batching).
	BatchSize int

	// MaxRetries bounds delivery attempts per frame beyond the first;
	// after that the frame is parked in the retransmit buffer (default 8).
	MaxRetries int

	// TimeoutNs is the virtual time charged for each failed attempt — the
	// ack timeout the sender waits out before concluding loss (default
	// 50µs).
	TimeoutNs int64

	// BackoffBaseNs is the first retry backoff; it doubles per retry up to
	// BackoffMaxNs (defaults 20µs and 1ms).
	BackoffBaseNs int64
	BackoffMaxNs  int64

	// BufferCap caps the retransmit buffer (parked frames) per Conn. When
	// a frame parks beyond the cap, the *oldest* parked frame is dropped
	// and its records are counted as lost — explicit drop-oldest
	// backpressure instead of unbounded memory (default 64).
	BufferCap int

	// CloseAttempts bounds per-frame delivery attempts during Close's
	// final drain, when there is no later flush to retry from (default 64).
	CloseAttempts int

	// LeaseNs enables liveness heartbeats: the Conn promises the server a
	// fresh heartbeat within this much virtual time and emits one at least
	// every LeaseNs/2 as it flushes. The server's lease state machine
	// (server.RankLiveness) marks the rank suspect one lease behind the
	// cluster frontier and dead at three. 0 (the default) disables
	// heartbeats — ranks are then always considered alive.
	LeaseNs int64
}

// Defaults for Config fields left zero.
const (
	DefaultMaxRetries    = 8
	DefaultTimeoutNs     = 50_000
	DefaultBackoffBaseNs = 20_000
	DefaultBackoffMaxNs  = 1_000_000
	DefaultBufferCap     = 64
	DefaultCloseAttempts = 64
)

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = server.DefaultBatchSize
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.TimeoutNs <= 0 {
		c.TimeoutNs = DefaultTimeoutNs
	}
	if c.BackoffBaseNs <= 0 {
		c.BackoffBaseNs = DefaultBackoffBaseNs
	}
	if c.BackoffMaxNs <= 0 {
		c.BackoffMaxNs = DefaultBackoffMaxNs
	}
	if c.BufferCap <= 0 {
		c.BufferCap = DefaultBufferCap
	}
	if c.CloseAttempts <= 0 {
		c.CloseAttempts = DefaultCloseAttempts
	}
	return c
}

// Medium is the delivery target behind a Link — whatever one delivery
// attempt hands an encoded vS* frame to. Receive returns nil when the frame
// was accepted (the sender's ack) and an error when it was rejected or the
// receiver is down. The in-process medium is *server.Server; a networked
// one (internal/netsrv's TCP client link) carries the same bytes over a
// real socket and maps the session-layer ack back onto this contract.
// Implementations must be safe for concurrent Receives from every rank
// goroutine sharing the Link.
type Medium interface {
	Receive(encoded []byte) error
}

// Link is the shared lossy medium in front of one analysis server. Conns
// from every rank send through it; the FaultPlan decides each attempt's
// fate. Safe for concurrent use by all rank goroutines. Delivery is not
// serialized: concurrent attempts land on the server's per-rank ingest
// shards in parallel, and the only cross-rank state — the attempt counter
// driving the crash-restart window — is a single atomic.
//
// The Link itself is a fault-wrapping proxy over any Medium: the dice roll
// on the sender's side of the wire, so the same seeded fault schedule
// applies whether the frames land on an in-process server or cross a real
// TCP socket (NewLinkOver).
type Link struct {
	sink Medium
	plan FaultPlan

	attempts atomic.Int64 // delivery attempts that reached the "network"

	// Crash hooks: with a durable server attached (SetCrashHooks), entering
	// the crash window actually crashes the server (wiping its memory) and
	// leaving it runs recovery — instead of the stateless reject-only window
	// of a purely in-memory server. Each fires exactly once.
	onCrash     func()
	onRecover   func()
	crashOnce   sync.Once
	recoverOnce sync.Once

	// lin is the record-lineage tracer (nil = lineage off), set from SetObs.
	lin *obs.Lineage

	// Observability handles (nil-safe no-ops when obs is off).
	obsFrames     *obs.Counter
	obsAcked      *obs.Counter
	obsRetries    *obs.Counter
	obsDropped    *obs.Counter
	obsCorrupted  *obs.Counter
	obsDuped      *obs.Counter
	obsReordered  *obs.Counter
	obsRejects    *obs.Counter
	obsParked     *obs.Counter
	obsPacked     *obs.Counter
	obsLost       *obs.Counter
	obsHeartbeats *obs.Counter
}

// NewLink wraps srv behind plan. A zero plan is a perfect (but still
// framed, sequenced, and deduplicated) link.
func NewLink(srv *server.Server, plan FaultPlan) *Link {
	return &Link{sink: srv, plan: plan}
}

// NewLinkOver wraps an arbitrary delivery medium behind plan — the fault
// proxy form. With a networked medium every chaos suite's dice (drop, dup,
// reorder, corrupt, delay, crash window) applies to real socket traffic
// exactly as it does to the in-process path.
func NewLinkOver(m Medium, plan FaultPlan) *Link {
	return &Link{sink: m, plan: plan}
}

// Plan returns the link's fault plan.
func (l *Link) Plan() FaultPlan { return l.plan }

// SetCrashHooks makes the crash-restart window stateful: onCrash runs once
// when the first delivery attempt enters the window (a durable server
// crashes its disk and wipes memory there), onRecover runs once on the
// first attempt past it (the server replays its journal). Without hooks
// the window only rejects deliveries, as before. Call before the run
// starts.
func (l *Link) SetCrashHooks(onCrash, onRecover func()) {
	noop := func() {}
	if onCrash == nil {
		onCrash = noop
	}
	if onRecover == nil {
		onRecover = noop
	}
	l.onCrash = onCrash
	l.onRecover = onRecover
}

// Attempts returns how many delivery attempts reached the link so far.
func (l *Link) Attempts() int64 { return l.attempts.Load() }

// SetObs attaches transport metrics. Call before the run starts.
func (l *Link) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	l.obsFrames = o.Counter("transport_frames_total")
	l.obsAcked = o.Counter("transport_acked_total")
	l.obsRetries = o.Counter("transport_retries_total")
	l.obsDropped = o.Counter("transport_dropped_total")
	l.obsCorrupted = o.Counter("transport_corrupted_total")
	l.obsDuped = o.Counter("transport_duplicated_total")
	l.obsReordered = o.Counter("transport_reordered_total")
	l.obsRejects = o.Counter("transport_server_down_rejects_total")
	l.obsParked = o.Counter("transport_parked_total")
	l.obsPacked = o.Counter("transport_packed_flushes_total")
	l.obsLost = o.Counter("transport_records_lost_total")
	l.obsHeartbeats = o.Counter("transport_heartbeats_total")
	l.lin = o.Lineage()
}

// deliver is one attempt reaching the network: it applies the crash window
// and hands the frame (and its reorder/duplicate fate) to the server.
// Returns true when the sender gets an ack. corrupt, when non-nil, is the
// bit-flipped copy that arrives instead of the frame. Runs on the calling
// conn's goroutine without any link-wide lock — the held (reordered) frame
// is conn-local state, and the server's sharded ingest takes concurrent
// frames from different ranks without contention.
func (l *Link) deliver(c *Conn, frame []byte, corrupt []byte, dup, reorder bool) bool {
	attempts := l.attempts.Add(1)
	if l.plan.CrashAfterFrames > 0 && attempts > l.plan.CrashAfterFrames {
		if attempts <= l.plan.CrashAfterFrames+l.plan.CrashDownFrames {
			if l.onCrash != nil {
				l.crashOnce.Do(l.onCrash)
			}
			l.obsRejects.Inc()
			return false
		}
		if l.plan.CrashDownFrames > 0 && l.onRecover != nil {
			// The window also crashed the server even if no attempt landed
			// inside it (the once below covers that race too).
			l.crashOnce.Do(l.onCrash)
			l.recoverOnce.Do(l.onRecover)
		}
	}
	if corrupt != nil {
		// The damaged copy reaches the server, which rejects it by CRC;
		// the sender never gets an ack.
		_ = l.sink.Receive(corrupt)
		l.obsCorrupted.Inc()
		return false
	}
	// An older held frame arrives after the newer one overtook it.
	if c.held != nil && !reorder {
		held := c.held
		c.held = nil
		_ = l.sink.Receive(held)
	}
	if reorder && c.held == nil {
		// The frame lingers in flight; it will arrive after the rank's
		// next frame (or at Close). The sender still gets its ack — from
		// its view the frame was accepted by the network.
		c.held = append([]byte(nil), frame...)
		l.obsReordered.Inc()
		return true
	}
	if err := l.sink.Receive(frame); err != nil {
		return false
	}
	if dup {
		// Ack lost → sender-side retransmit arrives too; the server's
		// sequence dedup absorbs it.
		_ = l.sink.Receive(frame)
		l.obsDuped.Inc()
	}
	return true
}

// release flushes a Conn's held (reordered) frame at close time. Like
// deliver, it runs on the conn's own goroutine; held is conn-local.
func (l *Link) release(c *Conn) {
	if c.held != nil {
		_ = l.sink.Receive(c.held)
		c.held = nil
	}
}

// Conn is one rank's reliable connection over the link. It implements
// detect.Emitter and vm.ClockBinder. Not safe for concurrent use; each
// rank owns one Conn and calls it from its own goroutine.
type Conn struct {
	link  *Link
	rank  int
	cfg   Config
	clock vm.Clock
	rng   *rand.Rand

	buf []detect.SliceRecord
	enc []byte // reusable wire buffer
	seq uint64
	cum uint64

	// parked is the capped retransmit buffer: frames that exhausted their
	// retries, oldest first.
	parked [][]byte
	// held is the in-flight reordered frame; conn-local, only touched from
	// this conn's goroutine (deliver/release).
	held []byte

	// hbEnc is the reusable heartbeat wire buffer; lastHBNs is the virtual
	// time of the last heartbeat that reached the server.
	hbEnc      []byte
	lastHBNs   int64
	sentHB     bool
	heartbeats int64

	framesSent    int64
	recordsSent   int64
	bytesSent     int64
	retries       int64
	waitNs        int64
	lostFrames    int64
	lostRecords   int64
	packedFlushes int64
}

// NewConn creates the rank's connection. The fault stream is seeded by
// (plan.Seed, rank), so each rank's fault schedule is deterministic and
// independent of goroutine interleaving.
func (l *Link) NewConn(rank int, cfg Config) *Conn {
	seed := int64(uint64(l.plan.Seed)*0x9e3779b97f4a7c15 + uint64(rank)*0x100000001b3 + 0x632be5)
	return &Conn{
		link: l,
		rank: rank,
		cfg:  cfg.withDefaults(),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// BindClock attaches the rank's virtual clock (vm.ClockBinder); retry
// timeouts, backoff, and injected delays are charged to it.
func (c *Conn) BindClock(clk vm.Clock) { c.clock = clk }

// charge advances the rank's virtual clock by ns.
func (c *Conn) charge(ns int64) {
	if ns <= 0 {
		return
	}
	c.waitNs += ns
	if c.clock != nil {
		c.clock.AdvanceTo(c.clock.Now() + ns)
	}
}

// silenced reports whether the dead-rank fault has permanently killed this
// connection: rank DeadRank goes quiet after flushing DeadAfterFrames
// frames — no frames, no heartbeats, no virtual-time burn. The server's
// liveness leases are what notice.
func (c *Conn) silenced() bool {
	p := &c.link.plan
	return p.DeadAfterFrames > 0 && c.rank == p.DeadRank && c.seq >= uint64(p.DeadAfterFrames)
}

// maybeHeartbeat emits a liveness heartbeat when the lease cadence is due:
// at least every LeaseNs/2 of virtual time, plus one immediately on the
// first call so the server learns the lease early. Heartbeats bypass the
// fault dice and the link's attempt counter — they are tiny, constantly
// retried frames whose loss the next one repairs, and modeling their
// individual fates would perturb every existing crashafter schedule — but
// they do respect the crash window: a down server hears nothing.
func (c *Conn) maybeHeartbeat() {
	lease := c.cfg.LeaseNs
	if lease <= 0 || c.clock == nil || c.silenced() {
		return
	}
	now := c.clock.Now()
	if c.sentHB && now < c.lastHBNs+lease/2 {
		return
	}
	c.hbEnc = server.AppendHeartbeat(c.hbEnc[:0], c.rank, now, lease)
	if c.link.deliverHeartbeat(c.hbEnc) {
		c.sentHB = true
		c.lastHBNs = now
		c.heartbeats++
	}
}

// deliverHeartbeat hands a heartbeat frame to the server unless the crash
// window is open. It does not advance the attempt counter (see
// maybeHeartbeat).
func (l *Link) deliverHeartbeat(hb []byte) bool {
	a := l.attempts.Load()
	if l.plan.CrashAfterFrames > 0 && a >= l.plan.CrashAfterFrames &&
		a < l.plan.CrashAfterFrames+l.plan.CrashDownFrames {
		return false
	}
	if err := l.sink.Receive(hb); err != nil {
		return false
	}
	l.obsHeartbeats.Inc()
	return true
}

// OnSlice buffers one record, flushing when the batch is full
// (detect.Emitter).
func (c *Conn) OnSlice(r detect.SliceRecord) error {
	if c.silenced() {
		c.lostRecords++
		c.link.obsLost.Inc()
		return nil
	}
	c.buf = append(c.buf, r)
	if len(c.buf) >= c.cfg.BatchSize {
		return c.Flush()
	}
	return nil
}

// NextTrace returns the lineage trace ID of the frame the next buffered
// record will leave in, or 0 when unsampled or lineage is off. Records
// buffered now leave in frame seq+1. Implements detect.TraceSource.
func (c *Conn) NextTrace() uint64 {
	if lin := c.link.lin; lin != nil {
		return lin.TraceID(c.rank, c.seq+1)
	}
	return 0
}

// Flush first retries parked frames, then sends the buffered records as one
// new sequenced frame. The returned error reports backpressure loss
// (drop-oldest evictions), not transient failures — those are retried.
func (c *Conn) Flush() error { return c.flush(false) }

// packLimit is how many records may accumulate across packed flush
// intervals before a frame is cut regardless of backpressure: the record
// equivalent of the parked-frame cap, bounded by what one frame can carry.
func (c *Conn) packLimit() int {
	lim := c.cfg.BufferCap * c.cfg.BatchSize
	if lim > server.MaxFrameRecords {
		lim = server.MaxFrameRecords
	}
	return lim
}

func (c *Conn) flush(force bool) error {
	if c.silenced() {
		c.dropAllSilently()
		return nil
	}
	c.maybeHeartbeat()
	err := c.drainParked(c.cfg.MaxRetries)
	if len(c.buf) == 0 {
		return err
	}
	// Backpressure packing: while earlier frames still sit parked, cutting
	// a new frame would only park it right behind them — instead the
	// interval's records stay buffered, and the flush that finds the park
	// queue drained packs every accumulated interval into one frame, so
	// the wire amortizes the way the WAL's group commit does. A full
	// buffer (BufferCap intervals' worth of records) forces a cut so
	// memory stays bounded and drop-oldest eviction keeps its meaning;
	// Close forces one too — there is no later flush to pack into.
	if !force && len(c.parked) > 0 && len(c.buf) < c.packLimit() {
		c.packedFlushes++
		c.link.obsPacked.Inc()
		return err
	}
	for len(c.buf) > 0 {
		n := len(c.buf)
		if n > server.MaxFrameRecords {
			n = server.MaxFrameRecords
		}
		c.seq++
		c.cum += uint64(n)
		h := server.FrameHeader{Rank: c.rank, Seq: c.seq, CumRecords: c.cum}
		if lin := c.link.lin; lin != nil {
			if h.TraceID = lin.TraceID(c.rank, c.seq); h.TraceID != 0 {
				lin.FrameSampled()
				lin.Record(h.TraceID, obs.StageEnqueue, c.rank, 0, nowUnixNs(), 0, int64(n))
			}
		}
		c.enc = server.AppendFrame(c.enc[:0], h, c.buf[:n])
		c.recordsSent += int64(n)
		c.buf = c.buf[:copy(c.buf, c.buf[n:])]
		c.link.obsFrames.Inc()
		if terr := c.transmit(c.enc, c.cfg.MaxRetries); terr != nil && err == nil {
			err = terr
		}
	}
	return err
}

// transmit pushes one frame with bounded retry + exponential backoff. On
// exhaustion the frame parks in the retransmit buffer; the returned error
// is non-nil only when parking evicted an older frame (data loss).
func (c *Conn) transmit(frame []byte, maxRetries int) error {
	lin := c.link.lin
	var trace uint64
	if lin != nil {
		trace = server.TraceOf(frame)
	}
	backoff := c.cfg.BackoffBaseNs
	for try := 0; ; try++ {
		var t0 int64
		if trace != 0 {
			t0 = nowUnixNs()
		}
		if c.attempt(frame) {
			if trace != 0 {
				lin.Record(trace, obs.StageAttempt, c.rank, try+1, t0, nowUnixNs()-t0, 1)
			}
			c.framesSent++
			c.bytesSent += int64(len(frame))
			c.link.obsAcked.Inc()
			return nil
		}
		if trace != 0 {
			lin.Record(trace, obs.StageAttempt, c.rank, try+1, t0, nowUnixNs()-t0, 0)
		}
		if try >= maxRetries {
			return c.park(frame)
		}
		c.retries++
		c.link.obsRetries.Inc()
		charged := c.cfg.TimeoutNs + backoff
		c.charge(charged)
		if trace != 0 {
			lin.Record(trace, obs.StageRetry, c.rank, try+1, nowUnixNs(), 0, charged)
		}
		backoff *= 2
		if backoff > c.cfg.BackoffMaxNs {
			backoff = c.cfg.BackoffMaxNs
		}
	}
}

// attempt rolls the fault dice for one delivery attempt and hands the frame
// to the link. Returns true on ack.
func (c *Conn) attempt(frame []byte) bool {
	p := &c.link.plan
	if p.DelayNs > 0 {
		c.charge(c.rng.Int63n(p.DelayNs + 1))
	}
	if p.Drop > 0 && c.rng.Float64() < p.Drop {
		c.link.obsDropped.Inc()
		return false
	}
	var corrupt []byte
	if p.Corrupt > 0 && c.rng.Float64() < p.Corrupt {
		corrupt = append([]byte(nil), frame...)
		bit := c.rng.Intn(len(corrupt) * 8)
		corrupt[bit/8] ^= 1 << (bit % 8)
	}
	dup := p.Dup > 0 && c.rng.Float64() < p.Dup
	reorder := p.Reorder > 0 && c.rng.Float64() < p.Reorder
	return c.link.deliver(c, frame, corrupt, dup, reorder)
}

// park appends a frame to the retransmit buffer, evicting the oldest frame
// beyond the cap (drop-oldest backpressure). Evictions are counted as lost
// records and reported as an error.
func (c *Conn) park(frame []byte) error {
	c.parked = append(c.parked, append([]byte(nil), frame...))
	c.link.obsParked.Inc()
	if len(c.parked) <= c.cfg.BufferCap {
		return nil
	}
	oldest := c.parked[0]
	copy(c.parked, c.parked[1:])
	c.parked = c.parked[:len(c.parked)-1]
	lost := int64(0)
	if h, err := server.ParseFrame(oldest); err == nil {
		lost = int64(h.Count)
	}
	c.lostFrames++
	c.lostRecords += lost
	c.link.obsLost.Add(lost)
	return fmt.Errorf("transport: rank %d retransmit buffer full (cap %d), dropped oldest frame (%d records)",
		c.rank, c.cfg.BufferCap, lost)
}

// drainParked retries parked frames oldest-first, stopping at the first
// frame that still cannot be delivered (preserving order).
func (c *Conn) drainParked(maxRetries int) error {
	var err error
	lin := c.link.lin
	for len(c.parked) > 0 {
		frame := c.parked[0]
		// Parked frames hold raw bytes; re-derive the lineage trace from the
		// encoded frame so retransmit attempts stay on the record's journey.
		var trace uint64
		if lin != nil {
			trace = server.TraceOf(frame)
		}
		backoff := c.cfg.BackoffBaseNs
		ok := false
		for try := 0; try <= maxRetries; try++ {
			var t0 int64
			if trace != 0 {
				t0 = nowUnixNs()
			}
			if c.attempt(frame) {
				if trace != 0 {
					lin.Record(trace, obs.StageAttempt, c.rank, try+1, t0, nowUnixNs()-t0, 1)
				}
				ok = true
				break
			}
			if trace != 0 {
				lin.Record(trace, obs.StageAttempt, c.rank, try+1, t0, nowUnixNs()-t0, 0)
			}
			c.retries++
			c.link.obsRetries.Inc()
			charged := c.cfg.TimeoutNs + backoff
			c.charge(charged)
			if trace != 0 {
				lin.Record(trace, obs.StageRetry, c.rank, try+1, nowUnixNs(), 0, charged)
			}
			backoff *= 2
			if backoff > c.cfg.BackoffMaxNs {
				backoff = c.cfg.BackoffMaxNs
			}
		}
		if !ok {
			return err
		}
		c.framesSent++
		c.bytesSent += int64(len(frame))
		c.link.obsAcked.Inc()
		copy(c.parked, c.parked[1:])
		c.parked = c.parked[:len(c.parked)-1]
	}
	return err
}

// dropAllSilently discards everything a dead rank still holds — buffered
// records, parked retransmits, the held reordered frame — counting the
// records as lost. A dead process sends nothing, not even its backlog.
func (c *Conn) dropAllSilently() {
	lost := int64(len(c.buf))
	c.buf = c.buf[:0]
	for _, f := range c.parked {
		if h, err := server.ParseFrame(f); err == nil {
			lost += int64(h.Count)
		}
		c.lostFrames++
	}
	c.parked = nil
	if c.held != nil {
		if h, err := server.ParseFrame(c.held); err == nil {
			lost += int64(h.Count)
		}
		c.held = nil
		c.lostFrames++
	}
	if lost > 0 {
		c.lostRecords += lost
		c.link.obsLost.Add(lost)
	}
}

// Close flushes buffered records, makes a final persistent attempt at every
// parked frame (CloseAttempts each), releases any held reordered frame,
// and reports frames that were abandoned as lost. A dead rank's Close
// discards silently instead — the process is gone.
func (c *Conn) Close() error {
	if c.silenced() {
		c.dropAllSilently()
		return nil
	}
	err := c.flush(true)
	if derr := c.drainParked(c.cfg.CloseAttempts); derr != nil && err == nil {
		err = derr
	}
	if n := len(c.parked); n > 0 {
		for _, f := range c.parked {
			lost := int64(0)
			if h, perr := server.ParseFrame(f); perr == nil {
				lost = int64(h.Count)
			}
			c.lostFrames++
			c.lostRecords += lost
			c.link.obsLost.Add(lost)
		}
		c.parked = nil
		lossErr := fmt.Errorf("transport: rank %d abandoned %d undeliverable frames at close", c.rank, n)
		if err == nil {
			err = lossErr
		}
	}
	c.link.release(c)
	return err
}

// ConnStats is a snapshot of one connection's delivery accounting.
type ConnStats struct {
	Rank          int
	FramesSent    int64 // frames acked by the link (incl. parked retries)
	RecordsSent   int64 // records handed to Flush
	BytesSent     int64
	Retries       int64 // failed attempts that were retried
	Parked        int   // frames currently in the retransmit buffer
	LostFrames    int64 // frames evicted or abandoned (records lost)
	LostRecords   int64
	WaitNs        int64 // virtual time charged for delays/timeouts/backoff
	Heartbeats    int64 // liveness heartbeats that reached the server
	PackedFlushes int64 // flush intervals deferred into a later packed frame
}

// Stats returns the connection's delivery accounting.
func (c *Conn) Stats() ConnStats {
	return ConnStats{
		Rank:          c.rank,
		FramesSent:    c.framesSent,
		RecordsSent:   c.recordsSent,
		BytesSent:     c.bytesSent,
		Retries:       c.retries,
		Parked:        len(c.parked),
		LostFrames:    c.lostFrames,
		LostRecords:   c.lostRecords,
		WaitNs:        c.waitNs,
		Heartbeats:    c.heartbeats,
		PackedFlushes: c.packedFlushes,
	}
}
