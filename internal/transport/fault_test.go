package transport

import (
	"strings"
	"testing"
)

func TestFaultPlanZero(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
		want bool
	}{
		{"empty", FaultPlan{}, true},
		{"seed only", FaultPlan{Seed: 7}, true}, // a seed without rates injects nothing
		{"drop", FaultPlan{Drop: 0.1}, false},
		{"dup", FaultPlan{Dup: 0.1}, false},
		{"reorder", FaultPlan{Reorder: 0.1}, false},
		{"corrupt", FaultPlan{Corrupt: 0.1}, false},
		{"delay", FaultPlan{DelayNs: 1}, false},
		{"crashafter", FaultPlan{CrashAfterFrames: 5}, false},
		// Regression: Zero() used to ignore CrashDownFrames, so a plan that
		// only set the down window was treated as fault-free.
		{"crashdown only", FaultPlan{CrashDownFrames: 5}, false},
		{"deadrank", FaultPlan{DeadRank: 1, DeadAfterFrames: 3}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.plan.Zero(); got != tc.want {
				t.Errorf("Zero(%+v) = %v, want %v", tc.plan, got, tc.want)
			}
		})
	}
}

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name    string
		plan    FaultPlan
		wantErr string // substring; empty means valid
	}{
		{"zero", FaultPlan{}, ""},
		{"full valid", FaultPlan{Drop: 0.5, Dup: 1, Reorder: 0, Corrupt: 0.01, DelayNs: 10,
			CrashAfterFrames: 5, CrashDownFrames: 2, DeadRank: 3, DeadAfterFrames: 7}, ""},
		{"rate above one", FaultPlan{Drop: 1.5}, "out of [0,1]"},
		{"negative rate", FaultPlan{Corrupt: -0.1}, "out of [0,1]"},
		{"negative delay", FaultPlan{DelayNs: -1}, "negative delay/crash"},
		{"negative crashafter", FaultPlan{CrashAfterFrames: -1}, "negative delay/crash"},
		{"crashdown without crashafter", FaultPlan{CrashDownFrames: 4}, "without crashafter"},
		{"negative deadrank", FaultPlan{DeadRank: -2, DeadAfterFrames: 1}, "negative deadrank"},
		{"negative deadafter", FaultPlan{DeadAfterFrames: -1}, "negative deadrank"},
		{"deadrank without deadafter", FaultPlan{DeadRank: 2}, "without deadafter"},
		{"deadafter alone kills rank 0", FaultPlan{DeadAfterFrames: 3}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Errorf("Validate(%+v) = %v, want nil", tc.plan, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Validate(%+v) = %v, want error containing %q", tc.plan, err, tc.wantErr)
			}
		})
	}
}

func TestParsePlanDeadRank(t *testing.T) {
	p, err := ParsePlan("deadrank=2,deadafter=5,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if p.DeadRank != 2 || p.DeadAfterFrames != 5 || p.Seed != 9 {
		t.Fatalf("parsed %+v", p)
	}
	// String renders the pair; re-parsing round-trips.
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("round trip %q -> %+v, want %+v", p.String(), back, p)
	}

	for _, spec := range []string{
		"deadrank=2",             // no deadafter: the rank would never die
		"deadrank=0",             // explicit rank 0, still needs deadafter
		"deadafter=-1",           // negative
		"deadrank=x,deadafter=1", // unparsable
		"crashdown=5",            // down window without a start
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted an invalid spec", spec)
		}
	}

	// deadrank=0 paired with deadafter is legal: rank 0 can die.
	p, err = ParsePlan("deadrank=0,deadafter=4")
	if err != nil {
		t.Fatal(err)
	}
	if p.DeadRank != 0 || p.DeadAfterFrames != 4 {
		t.Fatalf("parsed %+v", p)
	}
}
