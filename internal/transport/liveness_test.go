package transport

import (
	"sync/atomic"
	"testing"

	"vsensor/internal/server"
	"vsensor/internal/storage"
)

// The retry backoff schedule is exact: each failed attempt charges the ack
// timeout plus an exponentially doubling backoff, capped at BackoffMaxNs.
// With every attempt dropped, MaxRetries=5, timeout=1000, base=100,
// cap=400 the virtual clock must advance by precisely
//
//	5*1000 + (100 + 200 + 400 + 400 + 400) = 6500 ns
//
// before the frame parks.
func TestRetryBackoffSchedule(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{Seed: 3, Drop: 1})
	clk := &fakeClock{}
	conn := link.NewConn(0, Config{
		BatchSize: 4, MaxRetries: 5,
		TimeoutNs: 1000, BackoffBaseNs: 100, BackoffMaxNs: 400,
		BufferCap: 8,
	})
	conn.BindClock(clk)
	for i := 0; i < 4; i++ {
		if err := conn.OnSlice(rec(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	const want = 5*1000 + (100 + 200 + 400 + 400 + 400)
	st := conn.Stats()
	if st.Retries != 5 {
		t.Fatalf("retries = %d, want 5 (MaxRetries exhausted)", st.Retries)
	}
	if st.WaitNs != want || clk.now != want {
		t.Fatalf("wait=%d clock=%d, want exactly %d", st.WaitNs, clk.now, int64(want))
	}
	if st.Parked != 1 {
		t.Fatalf("parked = %d, want 1", st.Parked)
	}
}

// A dead rank goes silent mid-run: its first DeadAfterFrames frames land,
// everything after is discarded without retries, virtual-time burn, or a
// close error — while other ranks are untouched.
func TestDeadRankGoesSilent(t *testing.T) {
	srv := server.NewSharded(4)
	link := NewLink(srv, FaultPlan{DeadRank: 1, DeadAfterFrames: 2})
	alive := link.NewConn(0, Config{BatchSize: 1})
	dead := link.NewConn(1, Config{BatchSize: 1})
	clk := &fakeClock{}
	dead.BindClock(clk)
	for i := 0; i < 5; i++ {
		if err := alive.OnSlice(rec(0, i)); err != nil {
			t.Fatal(err)
		}
		if err := dead.OnSlice(rec(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := alive.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dead.Close(); err != nil {
		t.Fatalf("a dead rank's close must be silent, got %v", err)
	}
	var fromDead, fromAlive int
	for _, r := range srv.Records() {
		switch r.Rank {
		case 0:
			fromAlive++
		case 1:
			fromDead++
		}
	}
	if fromAlive != 5 {
		t.Errorf("alive rank delivered %d records, want 5", fromAlive)
	}
	if fromDead != 2 {
		t.Errorf("dead rank delivered %d records, want its first 2", fromDead)
	}
	st := dead.Stats()
	if st.LostRecords != 3 {
		t.Errorf("dead rank lost %d records, want 3", st.LostRecords)
	}
	if clk.now != 0 {
		t.Errorf("dead rank burned %d ns of virtual time", clk.now)
	}
}

// Crash hooks fire exactly once each, in order: onCrash when the first
// attempt enters the down window, onRecover on the first attempt past it.
func TestCrashHooksFireExactlyOnce(t *testing.T) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{CrashAfterFrames: 3, CrashDownFrames: 2})
	var crashes, recovers atomic.Int64
	link.SetCrashHooks(
		func() { crashes.Add(1) },
		func() {
			if crashes.Load() != 1 {
				t.Error("onRecover fired before onCrash")
			}
			recovers.Add(1)
		},
	)
	conn := link.NewConn(0, Config{BatchSize: 1, MaxRetries: 10, TimeoutNs: 1, BackoffBaseNs: 1})
	for i := 0; i < 6; i++ {
		if err := conn.OnSlice(rec(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if crashes.Load() != 1 || recovers.Load() != 1 {
		t.Fatalf("crash hooks fired %d/%d times, want 1/1", crashes.Load(), recovers.Load())
	}
	if got := len(srv.Records()); got != 6 {
		t.Fatalf("records = %d, want 6 (retries cover the window)", got)
	}
}

// End to end: the crash window wired to a durable server really wipes it
// and recovery replays the journal — nothing is lost across the crash.
func TestCrashHooksDriveDurableServer(t *testing.T) {
	srv := server.NewSharded(2)
	srv.AttachDurability(server.DurabilityConfig{Disk: storage.NewDisk(storage.Faults{})})
	link := NewLink(srv, FaultPlan{CrashAfterFrames: 4, CrashDownFrames: 3})
	link.SetCrashHooks(
		func() {
			if err := srv.Crash(); err != nil {
				t.Errorf("crash hook: %v", err)
			}
		},
		func() {
			if _, err := srv.Recover(); err != nil {
				t.Errorf("recover hook: %v", err)
			}
		},
	)
	conn := link.NewConn(0, Config{BatchSize: 1, MaxRetries: 16, TimeoutNs: 1, BackoffBaseNs: 1})
	const n = 10
	for i := 0; i < n; i++ {
		if err := conn.OnSlice(rec(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Records()); got != n {
		t.Fatalf("records after crash+recovery = %d, want %d", got, n)
	}
	if ds := srv.DurabilityStats(); ds.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", ds.Recoveries)
	}
	cov := srv.Coverage()
	if !cov.Complete() {
		t.Fatalf("coverage incomplete after recovery: %+v", cov)
	}
}

// Heartbeats follow the lease cadence — one immediately, then at least
// every LeaseNs/2 of virtual time — without consuming link delivery
// attempts (existing crashafter schedules must not shift).
func TestHeartbeatCadence(t *testing.T) {
	srv := server.NewSharded(2)
	link := NewLink(srv, FaultPlan{})
	clk := &fakeClock{}
	conn := link.NewConn(3, Config{BatchSize: 1, LeaseNs: 1000})
	conn.BindClock(clk)
	times := []int64{0, 300, 600, 900, 1200}
	for i, now := range times {
		clk.now = now
		if err := conn.OnSlice(rec(3, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Heartbeats at t=0 (first flush), t=600 (>= 0+500), t=1200 (>= 600+500).
	if got := conn.Stats().Heartbeats; got != 3 {
		t.Fatalf("conn heartbeats = %d, want 3", got)
	}
	if got := srv.Heartbeats(); got != 3 {
		t.Fatalf("server heartbeats = %d, want 3", got)
	}
	if got := link.Attempts(); got != int64(len(times)) {
		t.Fatalf("attempts = %d, want %d (heartbeats must not consume attempts)", got, len(times))
	}
	// The server learned the lease and still counts the rank alive.
	live := srv.Liveness()
	if len(live) != 1 || live[0].Rank != 3 || live[0].LeaseNs != 1000 || live[0].State != server.Alive {
		t.Fatalf("liveness = %+v", live)
	}
	// Heartbeats are invisible to record accounting.
	if msgs := srv.Messages(); msgs != int64(len(times)) {
		t.Fatalf("messages = %d, want %d record frames only", msgs, len(times))
	}
}
