// Package transport is a simulated, fault-injectable link between the
// per-rank detection clients and the analysis server (paper §5.4). The
// in-process server.Client assumes a perfect function call; on a real
// machine the record path crosses a lossy network whose frames are late,
// lost, duplicated, reordered, or corrupted, and whose receiver stalls and
// restarts. This package gives the reproduction that production shape:
//
//   - A Link wraps the server behind a seeded FaultPlan that drops,
//     duplicates, reorders, delays, and bit-corrupts frames, and rejects
//     deliveries while the server is "down" (crash-restart window).
//   - A per-rank Conn implements detect.Emitter with sequenced, checksummed
//     frames (server wire format), bounded retry with timeout and
//     exponential backoff, and a capped retransmit buffer with an explicit
//     drop-oldest backpressure policy.
//   - Retry, backoff, and injected delay charge *virtual* time to the rank
//     through vm.Clock, so a flaky link slows the simulated job exactly the
//     way it would slow a real one.
//
// The server's sequence-number dedup plus the Conn's retries give
// exactly-once record delivery for every frame that is not explicitly
// dropped by backpressure; delivery gaps are visible in server.Coverage
// rather than silently thinning the analysis.
package transport

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// FaultPlan configures deterministic fault injection. Rates are
// probabilities in [0,1] evaluated per delivery attempt from a stream
// seeded by (Seed, rank), so a plan reproduces the same fault schedule for
// every run of the same workload. The zero value injects nothing.
type FaultPlan struct {
	// Seed derives the per-rank fault streams.
	Seed int64

	// Drop is the probability a frame is silently lost in transit.
	Drop float64

	// Dup is the probability a delivered frame arrives twice (models an
	// ack lost on the way back: the sender would retransmit).
	Dup float64

	// Reorder is the probability a frame is held in flight and delivered
	// after the rank's next frame (adjacent swap).
	Reorder float64

	// Corrupt is the probability a frame arrives with one bit flipped.
	// CRC32 detects all single-bit errors, so the server always rejects
	// these; the client sees a lost frame and retries.
	Corrupt float64

	// DelayNs adds a uniform random virtual latency in [0, DelayNs] to
	// every delivery attempt, charged to the sending rank.
	DelayNs int64

	// CrashAfterFrames crashes the server after this many delivery
	// attempts (0 = never).
	CrashAfterFrames int64

	// CrashDownFrames is how many delivery attempts are rejected while the
	// server is down; afterwards it restarts (with its journal intact) and
	// accepts frames again.
	CrashDownFrames int64

	// DeadRank and DeadAfterFrames model a permanently failed sender: once
	// rank DeadRank has flushed DeadAfterFrames frames, its connection goes
	// silent — no more frames, no heartbeats, records discarded (and counted
	// lost). DeadAfterFrames 0 disables the fault; the server's liveness
	// leases (server.RankLiveness) are what detect the silence.
	DeadRank        int
	DeadAfterFrames int64
}

// Zero reports whether the plan injects no faults at all.
func (p FaultPlan) Zero() bool {
	return p.Drop == 0 && p.Dup == 0 && p.Reorder == 0 && p.Corrupt == 0 &&
		p.DelayNs == 0 && p.CrashAfterFrames == 0 && p.CrashDownFrames == 0 &&
		p.DeadAfterFrames == 0
}

// Validate rejects out-of-range rates and inconsistent fault combinations.
func (p FaultPlan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"dup", p.Dup}, {"reorder", p.Reorder}, {"corrupt", p.Corrupt}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("transport: %s rate %g out of [0,1]", r.name, r.v)
		}
	}
	if p.DelayNs < 0 || p.CrashAfterFrames < 0 || p.CrashDownFrames < 0 {
		return fmt.Errorf("transport: negative delay/crash parameter")
	}
	if p.CrashDownFrames > 0 && p.CrashAfterFrames == 0 {
		return fmt.Errorf("transport: crashdown=%d without crashafter (the window has no start)", p.CrashDownFrames)
	}
	if p.DeadRank < 0 || p.DeadAfterFrames < 0 {
		return fmt.Errorf("transport: negative deadrank/deadafter parameter")
	}
	if p.DeadRank > 0 && p.DeadAfterFrames == 0 {
		return fmt.Errorf("transport: deadrank=%d without deadafter (the rank would never die)", p.DeadRank)
	}
	return nil
}

// ParsePlan builds a FaultPlan from a comma-separated spec, the -faults CLI
// syntax, e.g.
//
//	drop=0.2,dup=0.05,reorder=0.1,corrupt=0.02,delay=20us,seed=7,crashafter=100,crashdown=20
func ParsePlan(spec string) (FaultPlan, error) {
	var p FaultPlan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	sawDeadRank := false
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return p, fmt.Errorf("transport: bad fault spec %q (want key=value)", part)
		}
		key, val := strings.ToLower(kv[0]), kv[1]
		var err error
		switch key {
		case "drop":
			p.Drop, err = strconv.ParseFloat(val, 64)
		case "dup":
			p.Dup, err = strconv.ParseFloat(val, 64)
		case "reorder":
			p.Reorder, err = strconv.ParseFloat(val, 64)
		case "corrupt":
			p.Corrupt, err = strconv.ParseFloat(val, 64)
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "crashafter":
			p.CrashAfterFrames, err = strconv.ParseInt(val, 10, 64)
		case "crashdown":
			p.CrashDownFrames, err = strconv.ParseInt(val, 10, 64)
		case "deadrank":
			var r int64
			r, err = strconv.ParseInt(val, 10, 32)
			p.DeadRank = int(r)
			sawDeadRank = true
		case "deadafter":
			p.DeadAfterFrames, err = strconv.ParseInt(val, 10, 64)
		case "delay":
			var d time.Duration
			d, err = time.ParseDuration(val)
			p.DelayNs = d.Nanoseconds()
		default:
			return p, fmt.Errorf("transport: unknown fault key %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("transport: bad value for %s: %v", key, err)
		}
	}
	// Validate's struct-level rule cannot see an explicit deadrank=0, so the
	// parser enforces the pairing itself.
	if sawDeadRank && p.DeadAfterFrames == 0 {
		return p, fmt.Errorf("transport: deadrank without deadafter (the rank would never die)")
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// String renders the plan in ParsePlan syntax (omitting zero fields).
func (p FaultPlan) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("drop", p.Drop)
	add("dup", p.Dup)
	add("reorder", p.Reorder)
	add("corrupt", p.Corrupt)
	if p.DelayNs != 0 {
		parts = append(parts, fmt.Sprintf("delay=%s", time.Duration(p.DelayNs)))
	}
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	if p.CrashAfterFrames != 0 {
		parts = append(parts, fmt.Sprintf("crashafter=%d", p.CrashAfterFrames))
	}
	if p.CrashDownFrames != 0 {
		parts = append(parts, fmt.Sprintf("crashdown=%d", p.CrashDownFrames))
	}
	if p.DeadAfterFrames != 0 {
		parts = append(parts, fmt.Sprintf("deadrank=%d", p.DeadRank))
		parts = append(parts, fmt.Sprintf("deadafter=%d", p.DeadAfterFrames))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}
