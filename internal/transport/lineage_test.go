package transport

import (
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/obs"
	"vsensor/internal/server"
)

// lineageLink builds a server + link pair with lineage enabled on both
// (SetObs attaches the same obs bundle to each, as the facade does).
func lineageLink(t *testing.T, plan FaultPlan, cfg obs.LineageConfig) (*server.Server, *Link, *obs.Lineage) {
	t.Helper()
	srv := server.New()
	o := obs.New()
	lin := o.EnableLineage(cfg)
	srv.SetObs(o)
	link := NewLink(srv, plan)
	link.SetObs(o)
	return srv, link, lin
}

// TestLineageSpansAcrossLossyLink drives a dropping link with every frame
// sampled and checks the client-side hops land in the flight recorder:
// enqueue on flush, one attempt span per delivery try, and a retry span
// (carrying the charged backoff) between failed tries.
func TestLineageSpansAcrossLossyLink(t *testing.T) {
	_, link, lin := lineageLink(t, FaultPlan{Seed: 3, Drop: 0.5}, obs.LineageConfig{SampleEvery: 1})
	conn := link.NewConn(2, Config{BatchSize: 4})
	conn.BindClock(&fakeClock{})
	const n = 40
	for i := 0; i < n; i++ {
		if err := conn.OnSlice(rec(2, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	spans, _ := lin.Snapshot(nil, 0)
	var enq, attempts, retries, acked int
	for _, sp := range spans {
		switch sp.Stage {
		case obs.StageEnqueue:
			enq++
			if sp.Rank != 2 {
				t.Fatalf("enqueue span rank %d, want 2", sp.Rank)
			}
		case obs.StageAttempt:
			attempts++
			if sp.Try == 0 {
				t.Fatal("attempt span with try 0; tries are 1-based")
			}
			if sp.Arg == 1 {
				acked++
			}
		case obs.StageRetry:
			retries++
			if sp.Arg <= 0 {
				t.Fatalf("retry span charged %d ns, want > 0", sp.Arg)
			}
		}
	}
	frames := n / 4
	if enq != frames {
		t.Fatalf("enqueue spans = %d, want %d (one per flushed frame)", enq, frames)
	}
	if acked != frames {
		t.Fatalf("acked attempt spans = %d, want %d", acked, frames)
	}
	// A 50% drop rate over 10 frames fails some attempts with overwhelming
	// probability; each failure records one attempt(arg=0) and one retry.
	if retries == 0 || attempts <= frames {
		t.Fatalf("attempts=%d retries=%d: fault injection produced no retried deliveries", attempts, retries)
	}
	if attempts != frames+retries {
		t.Fatalf("attempts=%d != acked(%d)+failed(%d): span accounting leaks", attempts, frames, retries)
	}
}

// TestLineageParkedFrameKeepsTrace exhausts retries so a sampled frame
// parks, then heals the link: the drain's attempts must re-derive the trace
// from the parked bytes and continue the same journey.
func TestLineageParkedFrameKeepsTrace(t *testing.T) {
	srv, link, lin := lineageLink(t, FaultPlan{Seed: 1, Drop: 1.0}, obs.LineageConfig{SampleEvery: 1})
	conn := link.NewConn(0, Config{BatchSize: 2, MaxRetries: 2})
	conn.BindClock(&fakeClock{})
	for i := 0; i < 2; i++ {
		if err := conn.OnSlice(rec(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(srv.Records()); got != 0 {
		t.Fatalf("%d records delivered through a 100%% lossy link", got)
	}
	trace := lin.TraceID(0, 1)
	if trace == 0 {
		t.Fatal("frame 1 unsampled at SampleEvery=1")
	}

	spans, _ := lin.Snapshot(nil, 0)
	parkAttempts := 0
	for _, sp := range spans {
		if sp.Trace == trace && sp.Stage == obs.StageAttempt {
			parkAttempts++
		}
	}
	if parkAttempts != 3 {
		t.Fatalf("attempt spans before parking = %d, want 3 (first + MaxRetries)", parkAttempts)
	}

	// Heal the link and flush: drainParked retries the parked frame under
	// the same trace.
	link.plan.Drop = 0
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Records()); got != 2 {
		t.Fatalf("records after heal = %d, want 2", got)
	}
	spans, _ = lin.Snapshot(nil, 0)
	var drainAcked, ingested bool
	for _, sp := range spans {
		if sp.Trace != trace {
			continue
		}
		if sp.Stage == obs.StageAttempt && sp.Arg == 1 {
			drainAcked = true
		}
		if sp.Stage == obs.StageIngest {
			ingested = true
		}
	}
	if !drainAcked {
		t.Fatalf("no acked attempt span for parked trace %#x after heal", trace)
	}
	if !ingested {
		t.Fatalf("no server ingest span for parked trace %#x: trace lost across the park", trace)
	}
}

// TestLineageOffAddsNoSpansOrBytes pins the zero-overhead-when-off
// contract at the transport level: without lineage the wire carries vSF1
// frames and the ring stays empty even with obs attached.
func TestLineageOffAddsNoSpansOrBytes(t *testing.T) {
	srv := server.New()
	o := obs.New() // obs on, lineage off
	srv.SetObs(o)
	link := NewLink(srv, FaultPlan{})
	link.SetObs(o)
	conn := link.NewConn(0, Config{BatchSize: 4})
	for i := 0; i < 8; i++ {
		if err := conn.OnSlice(rec(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if o.Lineage() != nil {
		t.Fatal("lineage enabled without EnableLineage")
	}
	if tr := conn.NextTrace(); tr != 0 {
		t.Fatalf("NextTrace = %#x with lineage off, want 0", tr)
	}

	// Same workload with lineage on but SampleEvery so large nothing is
	// sampled: bytes on the wire must match the lineage-off run exactly.
	srv2, link2, lin := lineageLink(t, FaultPlan{}, obs.LineageConfig{SampleEvery: 1 << 62})
	conn2 := link2.NewConn(0, Config{BatchSize: 4})
	for i := 0; i < 8; i++ {
		if err := conn2.OnSlice(rec(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn2.Close(); err != nil {
		t.Fatal(err)
	}
	if a, b := srv.BytesReceived(), srv2.BytesReceived(); a != b {
		t.Fatalf("unsampled lineage changed wire bytes: %d vs %d", a, b)
	}
	if n := lin.SampledFrames(); n != 0 {
		t.Fatalf("%d frames sampled at SampleEvery=2^62", n)
	}
	if spans, _ := lin.Snapshot(nil, 0); len(spans) != 0 {
		t.Fatalf("%d spans recorded with nothing sampled", len(spans))
	}
}

// TestLineageConnNextTraceMatchesWire pins the TraceSource contract on the
// transport path: NextTrace called before records buffer predicts the trace
// the wire frame actually carries (including when OnSlice itself triggers
// the flush).
func TestLineageConnNextTraceMatchesWire(t *testing.T) {
	_, link, lin := lineageLink(t, FaultPlan{}, obs.LineageConfig{SampleEvery: 2, Seed: 11})
	conn := link.NewConn(5, Config{BatchSize: 3})
	for seq := uint64(1); seq <= 12; seq++ {
		predicted := conn.NextTrace()
		if want := lin.TraceID(5, seq); predicted != want {
			t.Fatalf("before frame %d: NextTrace = %#x, want %#x", seq, predicted, want)
		}
		for i := 0; i < 3; i++ {
			if err := conn.OnSlice(rec(5, int(seq)*3+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Every odd-or-even half of the 12 frames is sampled at SampleEvery=2;
	// the exact set is the sampler's business, but it must be non-empty.
	if lin.SampledFrames() == 0 {
		t.Fatal("no frames sampled at SampleEvery=2 over 12 frames")
	}
}

// TestLineageFaultDeterminismUnchanged pins that enabling lineage does not
// perturb the fault schedule or the delivered record log: the seeded fault
// stream consumes the same dice either way.
func TestLineageFaultDeterminismUnchanged(t *testing.T) {
	plan := FaultPlan{Seed: 9, Drop: 0.2, Dup: 0.1, Reorder: 0.1, Corrupt: 0.05}
	run := func(withLineage bool) []detect.SliceRecord {
		srv := server.New()
		o := obs.New()
		if withLineage {
			o.EnableLineage(obs.LineageConfig{SampleEvery: 2})
		}
		srv.SetObs(o)
		link := NewLink(srv, plan)
		link.SetObs(o)
		conn := link.NewConn(0, Config{BatchSize: 4})
		conn.BindClock(&fakeClock{})
		for i := 0; i < 64; i++ {
			if err := conn.OnSlice(rec(0, i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := conn.Close(); err != nil {
			t.Fatal(err)
		}
		recs := srv.Records()
		sortRecords(recs)
		return recs
	}
	off, on := run(false), run(true)
	if len(off) != len(on) {
		t.Fatalf("record counts diverge: lineage-off %d, lineage-on %d", len(off), len(on))
	}
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("record %d diverges: %+v vs %+v", i, off[i], on[i])
		}
	}
}
