package transport

import (
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/server"
)

// BenchmarkFrameRoundTrip measures the wire codec alone: encode one
// 64-record frame and parse+validate it back (CRC both ways).
func BenchmarkFrameRoundTrip(b *testing.B) {
	recs := make([]detect.SliceRecord, 64)
	for i := range recs {
		recs[i] = rec(1, i)
	}
	h := server.FrameHeader{Rank: 1, Seq: 1, CumRecords: 64}
	var enc []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc = server.AppendFrame(enc[:0], h, recs)
		if _, err := server.ParseFrame(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConnFlush measures one 64-record batch through a fault-free link
// into the server — the steady-state cost of the production-shaped record
// path per flush.
func BenchmarkConnFlush(b *testing.B) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{})
	conn := link.NewConn(0, Config{BatchSize: 64})
	batch := make([]detect.SliceRecord, 64)
	for i := range batch {
		batch[i] = rec(0, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range batch {
			if err := conn.OnSlice(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkConnFlushFaulty is the same path under a 20% drop / 5% corrupt
// plan: retry, backoff accounting, and CRC rejects included.
func BenchmarkConnFlushFaulty(b *testing.B) {
	srv := server.New()
	link := NewLink(srv, FaultPlan{Seed: 1, Drop: 0.2, Corrupt: 0.05})
	conn := link.NewConn(0, Config{BatchSize: 64, TimeoutNs: 10, BackoffBaseNs: 10})
	batch := make([]detect.SliceRecord, 64)
	for i := range batch {
		batch[i] = rec(0, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range batch {
			if err := conn.OnSlice(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
