package obs

import (
	"sync/atomic"
)

// FlightRecorder is a fixed-memory, overwrite-oldest ring of lineage spans —
// the "black box" of the pipeline. Writers claim a monotonically increasing
// global index with one atomic add and publish into slot index&mask under a
// per-slot seqlock, so the hot path is lock-free and allocation-free like
// the registry's counters. Readers (the /debug/flight endpoint, the Chrome
// exporter) snapshot a consistent window without stopping writers: the
// seqlock version plus the stored index let a reader detect and discard any
// torn or lapped entry instead of returning it. Every payload word is
// accessed atomically, so the scheme is also clean under the race detector
// — no "benign race" escape hatch.
type FlightRecorder struct {
	mask uint64
	next atomic.Uint64 // next global span index to claim
	slot []flightSlot
}

// flightSlot is one ring entry: a seqlock version (even = stable, odd =
// write in progress), the global index the span belongs to, and the span
// packed into atomically accessed words. The layout fills a 64-byte cache
// line so concurrent writers a ring lap apart do not false-share.
type flightSlot struct {
	ver   atomic.Uint64
	idx   atomic.Uint64
	trace atomic.Uint64
	start atomic.Int64
	dur   atomic.Int64
	arg   atomic.Int64
	meta  atomic.Uint64 // rank(32) | try(16) | stage(8), low to high
	_     [8]byte
}

// FlightSpan is one recorded hop of a sampled record's journey. StartNs is
// wall-clock unix nanoseconds; DurNs is the hop's duration (0 for instant
// events such as a dedup verdict). Arg is stage-specific (attempt number,
// charged backoff ns, dup flag, outlier count, ...).
type FlightSpan struct {
	Trace   uint64 `json:"trace"`
	Rank    int32  `json:"rank"`
	Stage   Stage  `json:"stage"`
	Try     uint16 `json:"try,omitempty"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Arg     int64  `json:"arg,omitempty"`
}

func packMeta(rank int32, try uint16, stage Stage) uint64 {
	return uint64(uint32(rank)) | uint64(try)<<32 | uint64(stage)<<48
}

func unpackMeta(m uint64) (rank int32, try uint16, stage Stage) {
	return int32(uint32(m)), uint16(m >> 32), Stage(m >> 48)
}

// DefaultFlightCap is the ring capacity used when a LineageConfig does not
// set one: 4096 spans ≈ 340 sampled records' full journeys, in ~256 KiB of
// fixed memory.
const DefaultFlightCap = 4096

// NewFlightRecorder creates a ring with at least capacity slots (rounded up
// to a power of two, minimum 16).
func NewFlightRecorder(capacity int) *FlightRecorder {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &FlightRecorder{mask: uint64(n - 1), slot: make([]flightSlot, n)}
}

// Cap returns the ring capacity in spans.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slot)
}

// Head returns the total number of spans ever recorded — also the cursor
// value at which a fresh Snapshot would begin.
func (f *FlightRecorder) Head() uint64 {
	if f == nil {
		return 0
	}
	return f.next.Load()
}

// Record publishes one span, overwriting the oldest entry once the ring is
// full. It is safe from any goroutine and never allocates.
func (f *FlightRecorder) Record(sp FlightSpan) {
	if f == nil {
		return
	}
	idx := f.next.Add(1) - 1
	s := &f.slot[idx&f.mask]
	for {
		v := s.ver.Load()
		if v&1 != 0 {
			// Another writer holds the slot. Colliding writes are a full
			// ring lap apart, so the spin is effectively free.
			continue
		}
		if !s.ver.CompareAndSwap(v, v+1) {
			continue
		}
		// Locked (ver odd) — we own the slot. A writer that claimed a
		// *newer* global index may already have published here while we
		// were queued; never replace a newer span with an older one.
		if s.idx.Load() <= idx {
			s.idx.Store(idx)
			s.trace.Store(sp.Trace)
			s.start.Store(sp.StartNs)
			s.dur.Store(sp.DurNs)
			s.arg.Store(sp.Arg)
			s.meta.Store(packMeta(sp.Rank, sp.Try, sp.Stage))
		}
		s.ver.Add(1) // release (ver even again)
		return
	}
}

// Snapshot copies the stable spans in [cursor, head) into dst and returns
// them plus the next cursor. Entries already overwritten (cursor lagging
// more than one ring capacity) are skipped; entries mid-write or lapped
// during the copy are dropped rather than returned torn. Pass cursor 0 (or
// any stale value) to read the freshest window.
func (f *FlightRecorder) Snapshot(dst []FlightSpan, cursor uint64) ([]FlightSpan, uint64) {
	if f == nil {
		return dst[:0], cursor
	}
	head := f.next.Load()
	lo := cursor
	if capU := uint64(len(f.slot)); head > capU && lo < head-capU {
		lo = head - capU
	}
	dst = dst[:0]
	for i := lo; i < head; i++ {
		s := &f.slot[i&f.mask]
		v1 := s.ver.Load()
		if v1&1 != 0 {
			continue // write in progress
		}
		idx := s.idx.Load()
		var sp FlightSpan
		sp.Trace = s.trace.Load()
		sp.StartNs = s.start.Load()
		sp.DurNs = s.dur.Load()
		sp.Arg = s.arg.Load()
		sp.Rank, sp.Try, sp.Stage = unpackMeta(s.meta.Load())
		if s.ver.Load() != v1 || idx != i {
			continue // torn read or slot lapped while copying
		}
		if sp.Trace == 0 {
			continue // claimed slot whose body has not been published yet
		}
		dst = append(dst, sp)
	}
	return dst, head
}
