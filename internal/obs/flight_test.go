package obs

import (
	"sync"
	"testing"
)

// TestFlightRecorderBasic checks ordered recording and cursor resumption
// below the wrap point.
func TestFlightRecorderBasic(t *testing.T) {
	f := NewFlightRecorder(64)
	if f.Cap() != 64 {
		t.Fatalf("Cap() = %d, want 64", f.Cap())
	}
	for i := 0; i < 10; i++ {
		f.Record(FlightSpan{Trace: uint64(i + 1), Stage: StageEmit, StartNs: int64(i)})
	}
	spans, next := f.Snapshot(nil, 0)
	if len(spans) != 10 || next != 10 {
		t.Fatalf("Snapshot = %d spans, cursor %d; want 10, 10", len(spans), next)
	}
	for i, sp := range spans {
		if sp.Trace != uint64(i+1) {
			t.Fatalf("span %d trace = %d, want %d", i, sp.Trace, i+1)
		}
	}
	// Resume from the cursor: only new spans appear.
	f.Record(FlightSpan{Trace: 11, Stage: StageIngest})
	spans, next2 := f.Snapshot(spans, next)
	if len(spans) != 1 || spans[0].Trace != 11 || next2 != 11 {
		t.Fatalf("resumed Snapshot = %+v cursor %d, want 1 span trace 11 cursor 11", spans, next2)
	}
}

// TestFlightRecorderCapRounding checks power-of-two rounding and the
// minimum capacity.
func TestFlightRecorderCapRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {100, 128}, {4096, 4096},
	} {
		if got := NewFlightRecorder(tc.in).Cap(); got != tc.want {
			t.Errorf("NewFlightRecorder(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestFlightRecorderWraparound fills the ring several laps over and checks
// overwrite-oldest semantics: the snapshot holds exactly the last cap spans
// in order.
func TestFlightRecorderWraparound(t *testing.T) {
	const capacity = 32
	f := NewFlightRecorder(capacity)
	const total = capacity*4 + 7
	for i := 0; i < total; i++ {
		f.Record(FlightSpan{Trace: uint64(i + 1), StartNs: int64(i)})
	}
	spans, next := f.Snapshot(nil, 0)
	if next != total {
		t.Fatalf("cursor = %d, want %d", next, total)
	}
	if len(spans) != capacity {
		t.Fatalf("snapshot holds %d spans, want cap %d", len(spans), capacity)
	}
	for i, sp := range spans {
		want := uint64(total - capacity + i + 1)
		if sp.Trace != want {
			t.Fatalf("span %d trace = %d, want %d (oldest must be overwritten)", i, sp.Trace, want)
		}
	}
	// A cursor that lags more than one capacity is clamped, not an error.
	spans, _ = f.Snapshot(spans, 3)
	if len(spans) != capacity {
		t.Fatalf("lagged snapshot holds %d spans, want %d", len(spans), capacity)
	}
}

// TestFlightRecorderNilSafe checks the lineage-off path.
func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightSpan{Trace: 1})
	spans, next := f.Snapshot(nil, 5)
	if len(spans) != 0 || next != 5 || f.Cap() != 0 || f.Head() != 0 {
		t.Fatalf("nil recorder must no-op: spans=%v next=%d", spans, next)
	}
	var l *Lineage
	l.Record(1, StageEmit, 0, 0, 0, 0, 0)
	if l.TraceID(3, 9) != 0 || l.SampleEvery() != 0 {
		t.Fatal("nil lineage must never sample")
	}
	if s := l.Stats(); s != (LineageStats{}) {
		t.Fatalf("nil lineage stats = %+v, want zero", s)
	}
}

// TestFlightRecorderConcurrentNoTears is the wraparound-under-writers gate:
// many writers lap a tiny ring while readers continuously snapshot. Every
// span a snapshot returns must be internally consistent (the writer encodes
// a checksum-like relation between its fields), i.e. overwrite-oldest never
// tears a span and cursors never surface a partially overwritten entry.
func TestFlightRecorderConcurrentNoTears(t *testing.T) {
	const (
		writers   = 8
		perWriter = 20000
	)
	f := NewFlightRecorder(64) // tiny ring => constant lapping
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: validate the field relation on every returned span.
	readerErr := make(chan string, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []FlightSpan
			var cursor uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf, cursor = f.Snapshot(buf, cursor)
				for _, sp := range buf {
					// Writer invariant: StartNs = Trace*3, Arg = -int64(Trace),
					// DurNs = Trace+Try. Any torn mix of two writes breaks it.
					if sp.StartNs != int64(sp.Trace)*3 || sp.Arg != -int64(sp.Trace) ||
						sp.DurNs != int64(sp.Trace)+int64(sp.Try) {
						select {
						case readerErr <- "torn span":
						default:
						}
						return
					}
				}
			}
		}()
	}

	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				trace := uint64(w*perWriter + i + 1)
				try := uint16(i & 7)
				f.Record(FlightSpan{
					Trace:   trace,
					Rank:    int32(w),
					Stage:   Stage(i % int(numStages)),
					Try:     try,
					StartNs: int64(trace) * 3,
					DurNs:   int64(trace) + int64(try),
					Arg:     -int64(trace),
				})
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()
	select {
	case msg := <-readerErr:
		t.Fatal(msg)
	default:
	}
	if head := f.Head(); head != writers*perWriter {
		t.Fatalf("head = %d, want %d (every Record claims an index)", head, writers*perWriter)
	}
	// Post-quiescence snapshot: a full ring of stable spans.
	spans, _ := f.Snapshot(nil, 0)
	if len(spans) != f.Cap() {
		t.Fatalf("quiescent snapshot holds %d spans, want full ring %d", len(spans), f.Cap())
	}
}

// TestLineageSamplerDeterminism is the sampler-determinism gate: the same
// seed and workload must pick the identical set of sampled frame IDs across
// repeated runs, across goroutine interleavings, and regardless of how the
// frames would later be sharded. Table-driven over seeds and periods.
func TestLineageSamplerDeterminism(t *testing.T) {
	const ranks, frames = 32, 64
	cases := []struct {
		name  string
		cfg   LineageConfig
		every uint64
	}{
		{"default", LineageConfig{}, DefaultSampleEvery},
		{"every-16-seed-7", LineageConfig{SampleEvery: 16, Seed: 7}, 16},
		{"every-1", LineageConfig{SampleEvery: 1, Seed: 3}, 1},
		{"every-16-seed-8", LineageConfig{SampleEvery: 16, Seed: 8}, 16},
	}
	type frameID struct {
		rank int
		seq  uint64
	}
	sample := func(l *Lineage) map[frameID]uint64 {
		// Walk the workload from concurrent per-rank goroutines to prove
		// the decision is interleaving-independent (run under -race).
		var mu sync.Mutex
		out := make(map[frameID]uint64)
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				local := make(map[frameID]uint64)
				for seq := uint64(1); seq <= frames; seq++ {
					if id := l.TraceID(r, seq); id != 0 {
						local[frameID{r, seq}] = id
					}
				}
				mu.Lock()
				for k, v := range local {
					out[k] = v
				}
				mu.Unlock()
			}(r)
		}
		wg.Wait()
		return out
	}
	sets := make([]map[frameID]uint64, len(cases))
	for i, tc := range cases {
		tc := tc
		i := i
		t.Run(tc.name, func(t *testing.T) {
			first := sample(NewLineage(tc.cfg))
			sets[i] = first
			if tc.every == 1 && len(first) != ranks*frames {
				t.Fatalf("SampleEvery=1 sampled %d of %d frames", len(first), ranks*frames)
			}
			if tc.every > 1 {
				if len(first) == 0 {
					t.Fatalf("no frames sampled out of %d (period %d)", ranks*frames, tc.every)
				}
				if len(first) == ranks*frames {
					t.Fatalf("all frames sampled; period %d should thin them", tc.every)
				}
			}
			for k, id := range first {
				if id == 0 {
					t.Fatalf("sampled frame %+v has zero trace ID", k)
				}
			}
			// Second independent run: identical set and identical IDs.
			second := sample(NewLineage(tc.cfg))
			if len(second) != len(first) {
				t.Fatalf("run 2 sampled %d frames, run 1 sampled %d", len(second), len(first))
			}
			for k, id := range first {
				if second[k] != id {
					t.Fatalf("frame %+v: run 1 id %d, run 2 id %d", k, id, second[k])
				}
			}
		})
	}
	// Different seeds must (for these parameters) pick different sets —
	// the seed genuinely perturbs selection.
	a, b := sets[1], sets[3]
	if a != nil && b != nil {
		same := len(a) == len(b)
		if same {
			for k := range a {
				if _, ok := b[k]; !ok {
					same = false
					break
				}
			}
		}
		if same && len(a) > 0 {
			t.Error("seeds 7 and 8 sampled the identical frame set; seed has no effect")
		}
	}
}

// TestLineageRecordAndStats checks the span → ring → histogram-exemplar
// plumbing end to end within the obs package.
func TestLineageRecordAndStats(t *testing.T) {
	o := New()
	l := o.EnableLineage(LineageConfig{SampleEvery: 1, Seed: 5, FlightCap: 64})
	if got := o.Lineage(); got != l {
		t.Fatal("Obs.Lineage() must return the enabled tracer")
	}
	tr := l.TraceID(2, 1)
	if tr == 0 {
		t.Fatal("SampleEvery=1 must sample every frame")
	}
	l.Record(tr, StageIngest, 2, 0, 100, 5_000_000, 0) // 5ms => a high bucket
	l.Record(tr, StageWALSync, 2, 0, 200, 1000, 0)
	l.Record(0, StageEmit, 2, 0, 1, 1, 0) // unsampled: must be dropped
	spans, _ := l.Snapshot(nil, 0)
	if len(spans) != 2 {
		t.Fatalf("ring holds %d spans, want 2 (trace 0 must not record)", len(spans))
	}
	st := l.Stats()
	if st.Spans != 2 || st.SampleEvery != 1 || st.FlightCap != 64 || st.Seed != 5 {
		t.Fatalf("Stats = %+v", st)
	}
	h := l.StageHistogram(StageIngest)
	if h.Count() != 1 {
		t.Fatalf("ingest histogram count = %d, want 1", h.Count())
	}
	top, ok := h.TopExemplar()
	if !ok || top.Trace != tr || top.Value != 5_000_000 {
		t.Fatalf("TopExemplar = %+v ok=%v, want trace %d value 5e6", top, ok, tr)
	}
	ex := o.Registry().HistogramExemplars("lineage_stage_ns")
	if len(ex) != 2 {
		t.Fatalf("registry exemplar sweep found %d children, want 2: %v", len(ex), ex)
	}
	if _, ok := ex[`stage="server_ingest"`]; !ok {
		t.Fatalf("sweep missing server_ingest child: %v", ex)
	}
}

// TestStageStrings pins the stage labels — they are wire-adjacent (metric
// labels, /debug/flight JSON, trace output) and must not drift silently.
func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageEmit:        "emit",
		StageEnqueue:     "enqueue",
		StageAttempt:     "attempt",
		StageRetry:       "retry",
		StageIngest:      "server_ingest",
		StageDedup:       "dedup",
		StageWALAppend:   "wal_append",
		StageWALSync:     "wal_sync",
		StageSnapshot:    "snapshot",
		StageEpochReopen: "epoch_reopen",
		StageEpochClose:  "epoch_close",
		StageVerdict:     "verdict",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), name)
		}
		j, err := s.MarshalJSON()
		if err != nil || string(j) != `"`+name+`"` {
			t.Errorf("Stage(%d).MarshalJSON() = %s, %v", s, j, err)
		}
	}
	if Stage(200).String() != "stage(200)" {
		t.Errorf("out-of-range stage String = %q", Stage(200).String())
	}
}

// TestStageUnmarshalJSON pins the label → Stage decoder that lets
// /debug/flight payloads round-trip through the producing types.
func TestStageUnmarshalJSON(t *testing.T) {
	for s := Stage(0); s < numStages; s++ {
		j, _ := s.MarshalJSON()
		var got Stage
		if err := got.UnmarshalJSON(j); err != nil || got != s {
			t.Errorf("round-trip of %v: got %v, err %v", s, got, err)
		}
	}
	var s Stage
	if err := s.UnmarshalJSON([]byte(`"warp"`)); err == nil {
		t.Error("unknown stage label accepted")
	}
	if err := s.UnmarshalJSON([]byte(`7`)); err == nil {
		t.Error("non-string stage accepted")
	}
}

// TestLineageNilSafety pins the "nil *Lineage is lineage off" contract:
// every method must be a safe no-op so call sites need only one check.
func TestLineageNilSafety(t *testing.T) {
	var l *Lineage
	if l.SampleEvery() != 0 || l.TraceID(1, 2) != 0 || l.SampledFrames() != 0 {
		t.Error("nil lineage reports sampling")
	}
	l.FrameSampled()
	l.Record(1, StageIngest, 0, 0, 0, 0, 0)
	if l.Ring() != nil || l.StageHistogram(StageIngest) != nil {
		t.Error("nil lineage exposes a ring or histogram")
	}
	if spans, cur := l.Snapshot(nil, 7); len(spans) != 0 || cur != 7 {
		t.Error("nil lineage snapshot not a no-op")
	}
	if st := l.Stats(); st != (LineageStats{}) {
		t.Errorf("nil lineage stats = %+v", st)
	}
}

// TestLineageAccessors covers the live-side accessors end to end on a
// standalone tracer.
func TestLineageAccessors(t *testing.T) {
	l := NewLineage(LineageConfig{SampleEvery: 2, Seed: 5, FlightCap: 32})
	if l.SampleEvery() != 2 {
		t.Errorf("SampleEvery = %d", l.SampleEvery())
	}
	if l.Ring() == nil || l.Ring().Cap() != 32 {
		t.Fatal("ring missing or mis-sized")
	}
	l.FrameSampled()
	l.FrameSampled()
	if l.SampledFrames() != 2 {
		t.Errorf("SampledFrames = %d", l.SampledFrames())
	}
	l.Record(42, StageDedup, 3, 1, 100, 9, 0)
	if h := l.StageHistogram(StageDedup); h == nil || h.Count() == 0 {
		t.Error("stage histogram did not observe the span")
	}
	if l.StageHistogram(numStages) != nil {
		t.Error("out-of-range stage histogram not nil")
	}
	st := l.Stats()
	if st.SampleEvery != 2 || st.Seed != 5 || st.FlightCap != 32 || st.Spans != 1 || st.SampledFrames != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestTracerGrow pins that Grow pre-reserves span capacity (the fix for
// the alloc-free hot-span contract) and is nil/negative safe.
func TestTracerGrow(t *testing.T) {
	var nilT *Tracer
	nilT.Grow(100) // must not panic
	tr := NewTracer()
	tr.Grow(-1)
	tr.Grow(1000)
	allocs := testing.AllocsPerRun(200, func() {
		tr.Start(0, "hot").End()
	})
	if allocs != 0 {
		t.Errorf("Start/End after Grow allocates %.1f per op", allocs)
	}
}
