package obs

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fuzzReport builds a two-generation synthetic report provider over a fixed
// five-record log: cur() serves gen 7, wait() immediately "advances" to gen
// 8 (so ?wait=1 never parks the fuzzer). The record window mirrors the
// server snapshot's contract: base 0, cursors in [0, total] serve the exact
// suffix, anything else is rejected.
func fuzzReport() (cur func() *ReportSnapshot, wait func(uint64, time.Duration) *ReportSnapshot, log []int) {
	log = []int{10, 20, 30, 40, 50}
	mk := func(gen uint64) *ReportSnapshot {
		return &ReportSnapshot{
			Gen:      gen,
			Status:   map[string]any{"gen": gen},
			Outliers: map[string]any{"gen": gen, "outliers": []any{}},
			Records: func(cursor int) (any, int, int, bool) {
				if cursor < 0 || cursor > len(log) {
					return []int{}, 0, 0, false
				}
				return log[cursor:], len(log), 0, true
			},
		}
	}
	sn1, sn2 := mk(7), mk(8)
	cur = func() *ReportSnapshot { return sn1 }
	wait = func(afterGen uint64, _ time.Duration) *ReportSnapshot {
		if afterGen < sn2.Gen {
			return sn2
		}
		return nil
	}
	return cur, wait, log
}

// oracleMatch is an independent re-statement of the If-None-Match rules the
// handler must follow (RFC 9110 weak comparison over a comma-separated
// list), kept deliberately separate from etagMatch so a regression in one
// is caught by the other.
func oracleMatch(header string, gen uint64) bool {
	want := `"` + strconv.FormatUint(gen, 10) + `"`
	for _, part := range strings.Split(header, ",") {
		tag := strings.TrimSpace(part)
		if tag == "*" || tag == want || tag == "W/"+want {
			return true
		}
	}
	return false
}

// FuzzETagCursor throws hostile If-None-Match headers, cursor strings, and
// wait/timeout parameters at the conditional read path and checks the
// protocol invariants: the status code split is exactly 200/304/400 per the
// oracles, the ETag always names the generation served, a 304 carries no
// body, and a records window never skips or duplicates an element.
func FuzzETagCursor(f *testing.F) {
	f.Add(`"7"`, "0", "1", "5")
	f.Add(`W/"7"`, "3", "1", "0")
	f.Add("*", "5", "0", "-20")
	f.Add(`"6", "7"`, "-1", "1", "999999999999")
	f.Add("garbage, W/, \"\"", "6", "2", "abc")
	f.Add("", "99999999999999999999", "", "")
	f.Add(`"8"`, "not-a-number", "1", "60001")
	f.Add("W/\"7\",*", "+3", "1", " 7 ")
	f.Fuzz(func(t *testing.T, inm, cursorQ, waitQ, timeoutQ string) {
		o := New()
		cur, wait, log := fuzzReport()
		o.SetReport(cur, wait)
		h := o.Handler()

		q := url.Values{}
		if cursorQ != "" {
			q.Set("cursor", cursorQ)
		}
		if waitQ != "" {
			q.Set("wait", waitQ)
		}
		if timeoutQ != "" {
			q.Set("timeout_ms", timeoutQ)
		}
		query := ""
		if enc := q.Encode(); enc != "" {
			query = "?" + enc
		}

		get := func(path string) *httptest.ResponseRecorder {
			req := httptest.NewRequest("GET", path+query, nil)
			if inm != "" {
				req.Header.Set("If-None-Match", inm)
			}
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			return rr
		}

		// /status and /outliers: conditional protocol. The generation served
		// is 7, or 8 when a matching ?wait=1 request "parks" and the fake
		// wait provider advances it.
		wantWait := waitQ == "1"
		for _, path := range []string{"/status", "/outliers"} {
			rr := get(path)
			gen := uint64(7)
			if wantWait && oracleMatch(inm, 7) {
				gen = 8
			}
			wantTag := `"` + strconv.FormatUint(gen, 10) + `"`
			if tag := rr.Header().Get("ETag"); tag != wantTag {
				t.Fatalf("%s%s inm=%q: ETag %q, want %q", path, query, inm, tag, wantTag)
			}
			if oracleMatch(inm, gen) {
				if rr.Code != 304 {
					t.Fatalf("%s%s inm=%q: code %d, want 304", path, query, inm, rr.Code)
				}
				if rr.Body.Len() != 0 {
					t.Fatalf("%s%s inm=%q: 304 carried %d body bytes", path, query, inm, rr.Body.Len())
				}
				continue
			}
			if rr.Code != 200 {
				t.Fatalf("%s%s inm=%q: code %d, want 200", path, query, inm, rr.Code)
			}
			var body map[string]any
			if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
				t.Fatalf("%s%s: bad JSON: %v", path, query, err)
			}
			if g, _ := body["gen"].(float64); uint64(g) != gen {
				t.Fatalf("%s%s: body gen %v, want %d", path, query, body["gen"], gen)
			}
		}

		// /records: cursor parse/range split, then window exactness.
		rr := get("/records")
		n, perr := strconv.Atoi(cursorQ) // "" → Atoi error, but the handler treats absent as 0
		if cursorQ == "" {
			n, perr = 0, nil
		}
		switch {
		case perr != nil || n < 0:
			if rr.Code != 400 {
				t.Fatalf("/records cursor=%q: code %d, want 400", cursorQ, rr.Code)
			}
			return
		case n > len(log):
			if rr.Code != 200 {
				t.Fatalf("/records cursor=%q: code %d, want 200", cursorQ, rr.Code)
			}
			var body struct {
				Cursor    int   `json:"cursor"`
				Base      int   `json:"base"`
				Truncated bool  `json:"truncated"`
				Records   []int `json:"records"`
			}
			if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
				t.Fatalf("/records: bad JSON: %v", err)
			}
			if !body.Truncated || body.Cursor != 0 || body.Base != 0 || len(body.Records) != 0 {
				t.Fatalf("/records cursor=%d > total=%d: got %+v, want explicit truncation to base 0", n, len(log), body)
			}
			return
		}
		if rr.Code != 200 {
			t.Fatalf("/records cursor=%d: code %d, want 200", n, rr.Code)
		}
		var body struct {
			Cursor  int   `json:"cursor"`
			Base    int   `json:"base"`
			Records []int `json:"records"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("/records: bad JSON: %v", err)
		}
		if body.Cursor != len(log) || body.Base != 0 {
			t.Fatalf("/records cursor=%d: next=%d base=%d, want next=%d base=0", n, body.Cursor, body.Base, len(log))
		}
		if len(body.Records) != len(log)-n {
			t.Fatalf("/records cursor=%d: window has %d records, want %d (skip or duplicate)", n, len(body.Records), len(log)-n)
		}
		for i, rec := range body.Records {
			if rec != log[n+i] {
				t.Fatalf("/records cursor=%d: records[%d]=%d, want %d", n, i, rec, log[n+i])
			}
		}
	})
}
