package obs

import (
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ReportSnapshot is one immutable generation of the run report, as the HTTP
// layer sees it. The facade wraps the server's versioned snapshot into this
// shape (obs cannot import the server package), and the handler memoizes
// the JSON renders per generation so every poller at the same generation
// receives byte-identical bodies and the marshal cost is paid once.
type ReportSnapshot struct {
	// Gen is the render generation, served as the strong ETag `"<gen>"`.
	Gen uint64

	// Status is the /status "run" payload; Outliers is the full /outliers
	// body. Both must be deterministic for a fixed generation.
	Status   any
	Outliers any

	// Records serves /records?cursor=N from the snapshot's record view: the
	// records after cursor, the cursor to resume from, and the window base.
	// ok=false means the cursor fell outside [base, total] — the client's
	// position no longer exists (e.g. the log shrank across a recovery) and
	// it must restart from base.
	Records func(cursor int) (recs any, next, base int, ok bool)

	mu           sync.Mutex
	statusJSON   []byte
	outliersJSON []byte
}

// StatusBody renders the /status response for this generation, memoized.
// uptime is captured on the first render so later polls at the same
// generation are byte-identical (a changing uptime would defeat both the
// ETag contract and response sharing).
func (sn *ReportSnapshot) StatusBody(uptime float64) ([]byte, error) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.statusJSON == nil {
		data, err := json.Marshal(map[string]any{
			"uptime_seconds": uptime,
			"running":        true,
			"gen":            sn.Gen,
			"run":            sn.Status,
		})
		if err != nil {
			return nil, err
		}
		sn.statusJSON = append(data, '\n')
	}
	return sn.statusJSON, nil
}

// OutliersBody renders the /outliers response for this generation, memoized.
func (sn *ReportSnapshot) OutliersBody() ([]byte, error) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.outliersJSON == nil {
		data, err := json.Marshal(sn.Outliers)
		if err != nil {
			return nil, err
		}
		sn.outliersJSON = append(data, '\n')
	}
	return sn.outliersJSON, nil
}

// SetReport installs the versioned-snapshot providers backing /status,
// /records, and /outliers: cur returns the current snapshot (nil before the
// run starts) and wait blocks until the generation exceeds afterGen or the
// timeout elapses (nil disables ?wait=1). When set, these take precedence
// over the legacy SetStatus/SetRecords providers.
func (o *Obs) SetReport(cur func() *ReportSnapshot, wait func(afterGen uint64, timeout time.Duration) *ReportSnapshot) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.reportFn = cur
	o.reportWaitFn = wait
	o.mu.Unlock()
}

func (o *Obs) reportProviders() (func() *ReportSnapshot, func(uint64, time.Duration) *ReportSnapshot) {
	if o == nil {
		return nil, nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.reportFn, o.reportWaitFn
}

// etagOf renders a generation as a strong entity tag.
func etagOf(gen uint64) string {
	return `"` + strconv.FormatUint(gen, 10) + `"`
}

// etagMatch implements If-None-Match matching (RFC 9110 §13.1.2): the
// header is a comma-separated list of entity tags, each optionally weak
// (W/ prefix), or the wildcard "*". Comparison is weak — a W/-prefixed copy
// of the current tag matches. Anything unparsable simply fails to match,
// which degrades to a full 200 response, never an error.
func etagMatch(header string, gen uint64) bool {
	if header == "" {
		return false
	}
	want := `"` + strconv.FormatUint(gen, 10) + `"`
	for _, part := range strings.Split(header, ",") {
		tag := strings.TrimSpace(part)
		if tag == "*" {
			return true
		}
		tag = strings.TrimPrefix(tag, "W/")
		if tag == want {
			return true
		}
	}
	return false
}
