package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Long-poll bounds for ?wait=1: the default parking time and the cap an
// explicit ?timeout_ms= may request.
const (
	defaultLongPoll = 30 * time.Second
	maxLongPoll     = 60 * time.Second
)

// Handler returns the introspection mux:
//
//	GET /         — plain-text index of endpoints
//	GET /metrics  — Prometheus text exposition of the registry
//	GET /status   — JSON snapshot (uptime + whatever SetStatus/SetReport
//	                provides); with a report provider, strong ETag "<gen>",
//	                If-None-Match → 304, and ?wait=1 long-polls the next
//	                generation (?timeout_ms= bounds the park)
//	GET /outliers — the current outlier report (report provider only), with
//	                the same ETag/304/?wait=1 semantics as /status
//	GET /records  — incremental slice records; ?cursor=N resumes, response
//	                carries the next cursor so each record is seen once and
//	                the window base so a cursor invalidated by recovery is
//	                detectable; ?wait=1 parks a caught-up cursor
//	GET /debug/flight — flight-recorder dump: stable lineage spans after
//	                ?cursor=N plus per-stage histogram exemplars
func (o *Obs) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "vsensor introspection\n\n/metrics  Prometheus text format\n/status   JSON run snapshot (ETag + If-None-Match, ?wait=1 long-poll)\n/outliers  inter-process outlier report (ETag + If-None-Match, ?wait=1)\n/records  incremental slice records (?cursor=N, ?wait=1)\n/debug/flight  lineage flight recorder (?cursor=N)\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := o.Registry().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if cur, wait := o.reportProviders(); cur != nil {
			o.serveConditional(w, r, cur, wait, func(sn *ReportSnapshot) ([]byte, error) {
				return sn.StatusBody(o.UptimeSeconds())
			})
			return
		}
		body := map[string]any{
			"uptime_seconds": o.UptimeSeconds(),
			"running":        false,
		}
		if st, ok := o.statusSnapshot(); ok {
			body["running"] = true
			body["run"] = st
		}
		writeJSON(w, body)
	})
	mux.HandleFunc("/outliers", func(w http.ResponseWriter, r *http.Request) {
		cur, wait := o.reportProviders()
		if cur == nil {
			writeJSON(w, map[string]any{"enabled": false})
			return
		}
		o.serveConditional(w, r, cur, wait, (*ReportSnapshot).OutliersBody)
	})
	mux.HandleFunc("/records", func(w http.ResponseWriter, r *http.Request) {
		cursor := 0
		if q := r.URL.Query().Get("cursor"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad cursor: "+err.Error(), http.StatusBadRequest)
				return
			}
			cursor = n
		}
		if cur, wait := o.reportProviders(); cur != nil {
			o.serveRecords(w, r, cur, wait, cursor)
			return
		}
		recs, next, ok := o.recordsSince(cursor)
		if !ok {
			writeJSON(w, map[string]any{"cursor": cursor, "records": []any{}})
			return
		}
		writeJSON(w, map[string]any{"cursor": next, "records": recs})
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		lin := o.Lineage()
		if lin == nil {
			writeJSON(w, map[string]any{"enabled": false})
			return
		}
		var cursor uint64
		if q := r.URL.Query().Get("cursor"); q != "" {
			n, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad cursor: "+err.Error(), http.StatusBadRequest)
				return
			}
			cursor = n
		}
		spans, next := lin.Snapshot(nil, cursor)
		if spans == nil {
			spans = []FlightSpan{}
		}
		writeJSON(w, map[string]any{
			"enabled":   true,
			"stats":     lin.Stats(),
			"cursor":    next,
			"spans":     spans,
			"exemplars": o.Registry().HistogramExemplars("lineage_stage_ns"),
		})
	})
	return mux
}

// wantsWait reports whether the request asked for long-poll semantics.
// Only the exact value "1" opts in; anything else is ignored.
func wantsWait(r *http.Request) bool {
	return r.URL.Query().Get("wait") == "1"
}

// waitTimeout returns how long a ?wait=1 request may park: ?timeout_ms=N
// when parsable and positive (capped at maxLongPoll), else defaultLongPoll.
func waitTimeout(r *http.Request) time.Duration {
	if q := r.URL.Query().Get("timeout_ms"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n > 0 {
			d := time.Duration(n) * time.Millisecond
			if d > maxLongPoll {
				d = maxLongPoll
			}
			return d
		}
	}
	return defaultLongPoll
}

// serveConditional implements the shared ETag/If-None-Match/long-poll
// protocol for /status and /outliers: render is called at most once per
// generation (the snapshot memoizes the bytes), revalidations cost a 304
// with no body, and ?wait=1 with a current tag parks until the generation
// advances so N pollers cost one wakeup per advance.
func (o *Obs) serveConditional(w http.ResponseWriter, r *http.Request, cur func() *ReportSnapshot, wait func(uint64, time.Duration) *ReportSnapshot, render func(*ReportSnapshot) ([]byte, error)) {
	sn := cur()
	if sn == nil {
		writeJSON(w, map[string]any{"running": false})
		return
	}
	inm := r.Header.Get("If-None-Match")
	if wait != nil && wantsWait(r) && etagMatch(inm, sn.Gen) {
		if ns := wait(sn.Gen, waitTimeout(r)); ns != nil {
			sn = ns
		}
	}
	w.Header().Set("ETag", etagOf(sn.Gen))
	if etagMatch(inm, sn.Gen) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, err := render(sn)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck // client may be gone
}

// serveRecords serves /records from the versioned snapshot's record window.
// Responses always carry the window base; an out-of-range cursor (negative
// is rejected outright, beyond the end happens when the log shrank across a
// crash recovery) answers with truncated=true and the base to restart from,
// never a silently clamped window. A caught-up cursor with ?wait=1 parks
// for the next generation before answering.
func (o *Obs) serveRecords(w http.ResponseWriter, r *http.Request, cur func() *ReportSnapshot, wait func(uint64, time.Duration) *ReportSnapshot, cursor int) {
	if cursor < 0 {
		http.Error(w, "bad cursor: must be non-negative", http.StatusBadRequest)
		return
	}
	sn := cur()
	if sn == nil {
		writeJSON(w, map[string]any{"cursor": 0, "base": 0, "records": []any{}})
		return
	}
	recs, next, base, ok := sn.Records(cursor)
	if ok && next == cursor && wait != nil && wantsWait(r) {
		if ns := wait(sn.Gen, waitTimeout(r)); ns != nil {
			sn = ns
			recs, next, base, ok = sn.Records(cursor)
		}
	}
	w.Header().Set("ETag", etagOf(sn.Gen))
	if !ok {
		writeJSON(w, map[string]any{
			"cursor":    base,
			"base":      base,
			"truncated": true,
			"records":   []any{},
		})
		return
	}
	writeJSON(w, map[string]any{"cursor": next, "base": base, "records": recs})
}

func writeJSON(w http.ResponseWriter, v any) {
	// Marshal before touching the ResponseWriter: once body bytes flow the
	// header is committed, and a mid-stream failure (e.g. the client hung
	// up) must not trigger a second WriteHeader via http.Error.
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n')) //nolint:errcheck // client may be gone
}

// HTTPServer is a running introspection endpoint.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (e.g. "127.0.0.1:6060";
// ":0" picks a free port — read it back with Addr). The server runs until
// Close.
func Serve(addr string, o *Obs) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return &HTTPServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (h *HTTPServer) Addr() string { return h.ln.Addr().String() }

// Close shuts the endpoint down.
func (h *HTTPServer) Close() error { return h.srv.Close() }
