package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the introspection mux:
//
//	GET /         — plain-text index of endpoints
//	GET /metrics  — Prometheus text exposition of the registry
//	GET /status   — JSON snapshot (uptime + whatever SetStatus provides)
//	GET /records  — incremental slice records; ?cursor=N resumes, response
//	                carries the next cursor so each record is seen once
//	GET /debug/flight — flight-recorder dump: stable lineage spans after
//	                ?cursor=N plus per-stage histogram exemplars
func (o *Obs) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "vsensor introspection\n\n/metrics  Prometheus text format\n/status   JSON run snapshot\n/records  incremental slice records (?cursor=N)\n/debug/flight  lineage flight recorder (?cursor=N)\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := o.Registry().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"uptime_seconds": o.UptimeSeconds(),
			"running":        false,
		}
		if st, ok := o.statusSnapshot(); ok {
			body["running"] = true
			body["run"] = st
		}
		writeJSON(w, body)
	})
	mux.HandleFunc("/records", func(w http.ResponseWriter, r *http.Request) {
		cursor := 0
		if q := r.URL.Query().Get("cursor"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad cursor: "+err.Error(), http.StatusBadRequest)
				return
			}
			cursor = n
		}
		recs, next, ok := o.recordsSince(cursor)
		if !ok {
			writeJSON(w, map[string]any{"cursor": cursor, "records": []any{}})
			return
		}
		writeJSON(w, map[string]any{"cursor": next, "records": recs})
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		lin := o.Lineage()
		if lin == nil {
			writeJSON(w, map[string]any{"enabled": false})
			return
		}
		var cursor uint64
		if q := r.URL.Query().Get("cursor"); q != "" {
			n, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad cursor: "+err.Error(), http.StatusBadRequest)
				return
			}
			cursor = n
		}
		spans, next := lin.Snapshot(nil, cursor)
		if spans == nil {
			spans = []FlightSpan{}
		}
		writeJSON(w, map[string]any{
			"enabled":   true,
			"stats":     lin.Stats(),
			"cursor":    next,
			"spans":     spans,
			"exemplars": o.Registry().HistogramExemplars("lineage_stage_ns"),
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	// Marshal before touching the ResponseWriter: once body bytes flow the
	// header is committed, and a mid-stream failure (e.g. the client hung
	// up) must not trigger a second WriteHeader via http.Error.
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n')) //nolint:errcheck // client may be gone
}

// HTTPServer is a running introspection endpoint.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (e.g. "127.0.0.1:6060";
// ":0" picks a free port — read it back with Addr). The server runs until
// Close.
func Serve(addr string, o *Obs) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return &HTTPServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (h *HTTPServer) Addr() string { return h.ln.Addr().String() }

// Close shuts the endpoint down.
func (h *HTTPServer) Close() error { return h.srv.Close() }
