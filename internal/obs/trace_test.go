package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer()
	tr.NameThread(0, "pipeline")
	sp := tr.Start(0, "compile").Arg("files", "3")
	time.Sleep(time.Millisecond)
	sp.End()
	inner := tr.Start(0, "analyze")
	inner.End()
	if tr.Len() != 2 {
		t.Fatalf("spans = %d, want 2", tr.Len())
	}
	names := tr.SpanNames()
	if len(names) != 2 || names[0] != "analyze" || names[1] != "compile" {
		t.Fatalf("names = %v", names)
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	tr := NewTracer()
	tr.NameThread(0, "pipeline")
	tr.NameThread(1, "rank 0")
	tr.Start(0, "execute").End()
	tr.Start(1, "rank").Arg("rank", "0").End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	for _, ev := range out.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
			if ev["name"] != "thread_name" {
				t.Errorf("metadata event name = %v", ev["name"])
			}
		case "X":
			complete++
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event missing dur: %v", ev)
			}
			if _, ok := ev["ts"]; !ok {
				t.Errorf("complete event missing ts: %v", ev)
			}
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if meta != 2 || complete != 2 {
		t.Errorf("meta=%d complete=%d, want 2/2", meta, complete)
	}
}

// TestConcurrentSpans opens and closes spans from many goroutines while a
// writer exports, for go test -race.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			tr.NameThread(tid, "worker")
			for j := 0; j < perG; j++ {
				tr.Start(tid, "op").End()
			}
		}(i)
	}
	stop := make(chan struct{})
	var exp sync.WaitGroup
	exp.Add(1)
	go func() {
		defer exp.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				if err := tr.WriteChrome(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	exp.Wait()
	if tr.Len() != goroutines*perG {
		t.Errorf("spans = %d, want %d", tr.Len(), goroutines*perG)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.NameThread(0, "x")
	tr.Start(0, "x").Arg("a", "b").End()
	if tr.Len() != 0 || tr.SpanNames() != nil {
		t.Error("nil tracer should be empty")
	}
	if err := tr.WriteChrome(nil); err != nil {
		t.Error(err)
	}
}
