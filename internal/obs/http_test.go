package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	o := New()
	o.Counter("reqs_total", "rank", "3").Add(9)
	o.Histogram("server_batch_bytes").Observe(128)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, `reqs_total{rank="3"} 9`) {
		t.Errorf("metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "server_batch_bytes_count 1") {
		t.Errorf("metrics missing histogram:\n%s", body)
	}
	// Line-by-line parseability.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("unparseable line %q", line)
		}
	}
}

func TestStatusEndpoint(t *testing.T) {
	o := New()
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	// Before a run is wired in: running=false.
	code, body := get(t, srv, "/status")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if st["running"] != false {
		t.Errorf("running = %v before SetStatus", st["running"])
	}

	o.SetStatus(func() any {
		return map[string]any{"ranks": 8, "records": 42}
	})
	_, body = get(t, srv, "/status")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if st["running"] != true {
		t.Error("running should be true after SetStatus")
	}
	run, ok := st["run"].(map[string]any)
	if !ok || run["ranks"] != float64(8) || run["records"] != float64(42) {
		t.Errorf("run snapshot = %v", st["run"])
	}
}

func TestRecordsEndpointCursorSemantics(t *testing.T) {
	o := New()
	// Backing store: an append-only list, like Server.RecordsSince.
	store := []int{}
	o.SetRecords(func(cursor int) (any, int) {
		if cursor < 0 {
			cursor = 0
		}
		if cursor > len(store) {
			cursor = len(store)
		}
		out := append([]int{}, store[cursor:]...)
		return out, len(store)
	})
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	type resp struct {
		Cursor  int   `json:"cursor"`
		Records []int `json:"records"`
	}
	poll := func(cursor int) resp {
		t.Helper()
		code, body := get(t, srv, "/records?cursor="+itoa(cursor))
		if code != http.StatusOK {
			t.Fatalf("status = %d: %s", code, body)
		}
		var r resp
		if err := json.Unmarshal([]byte(body), &r); err != nil {
			t.Fatalf("invalid JSON: %v\n%s", err, body)
		}
		return r
	}

	store = append(store, 1, 2, 3)
	r1 := poll(0)
	if len(r1.Records) != 3 || r1.Cursor != 3 {
		t.Fatalf("first poll = %+v", r1)
	}
	// Re-polling at the new cursor yields nothing: exactly-once.
	r2 := poll(r1.Cursor)
	if len(r2.Records) != 0 || r2.Cursor != 3 {
		t.Fatalf("empty delta = %+v", r2)
	}
	store = append(store, 4, 5)
	r3 := poll(r2.Cursor)
	if len(r3.Records) != 2 || r3.Records[0] != 4 || r3.Cursor != 5 {
		t.Fatalf("delta = %+v", r3)
	}
	// Union of all polls covers each record exactly once.
	seen := append(append([]int{}, r1.Records...), r3.Records...)
	if len(seen) != len(store) {
		t.Fatalf("records seen %v vs store %v", seen, store)
	}

	// Bad cursor → 400.
	code, _ := get(t, srv, "/records?cursor=bogus")
	if code != http.StatusBadRequest {
		t.Errorf("bad cursor status = %d", code)
	}
	// No records fn → empty but valid.
	o2 := New()
	srv2 := httptest.NewServer(o2.Handler())
	defer srv2.Close()
	code, body := get(t, srv2, "/records")
	if code != http.StatusOK || !strings.Contains(body, `"records":[]`) {
		t.Errorf("unwired records = %d %s", code, body)
	}
}

func TestServeRealListener(t *testing.T) {
	o := New()
	o.Counter("up").Inc()
	h, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	resp, err := http.Get("http://" + h.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up 1") {
		t.Errorf("metrics over real listener:\n%s", body)
	}
	if err := h.Close(); err != nil {
		t.Error(err)
	}
}

func TestIndexAndNotFound(t *testing.T) {
	o := New()
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	code, body := get(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	code, _ = get(t, srv, "/nope")
	if code != http.StatusNotFound {
		t.Errorf("unknown path = %d", code)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func TestFlightEndpoint(t *testing.T) {
	o := New()
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	// Lineage off: the endpoint reports disabled rather than 404ing, so
	// dashboards can probe for the feature.
	code, body := get(t, srv, "/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var off struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal([]byte(body), &off); err != nil || off.Enabled {
		t.Fatalf("lineage-off body %q (err %v)", body, err)
	}

	lin := o.EnableLineage(LineageConfig{SampleEvery: 1, FlightCap: 64})
	lin.Record(0xabc, StageIngest, 3, 0, 100, 50, 8)
	lin.Record(0xabc, StageWALAppend, 3, 0, 160, 10, 40)
	lin.Record(0xdef, StageIngest, 5, 2, 200, 75, 1)

	code, body = get(t, srv, "/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var on struct {
		Enabled   bool                  `json:"enabled"`
		Cursor    uint64                `json:"cursor"`
		Spans     []FlightSpan          `json:"spans"`
		Stats     LineageStats          `json:"stats"`
		Exemplars map[string][]Exemplar `json:"exemplars"`
	}
	if err := json.Unmarshal([]byte(body), &on); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if !on.Enabled || len(on.Spans) != 3 || on.Cursor != 3 {
		t.Fatalf("enabled=%v spans=%d cursor=%d, want true/3/3", on.Enabled, len(on.Spans), on.Cursor)
	}
	if on.Spans[0].Trace != 0xabc || on.Spans[0].Stage != StageIngest || on.Spans[0].DurNs != 50 {
		t.Fatalf("span 0 = %+v", on.Spans[0])
	}
	if on.Stats.FlightCap != 64 || on.Stats.Spans != 3 {
		t.Fatalf("stats = %+v", on.Stats)
	}
	// The ingest histogram's exemplar resolves to a recorded trace.
	exs := on.Exemplars[`stage="server_ingest"`]
	if len(exs) == 0 || (exs[len(exs)-1].Trace != 0xabc && exs[len(exs)-1].Trace != 0xdef) {
		t.Fatalf("server_ingest exemplars = %+v", exs)
	}

	// Cursor resume: no spans after the returned cursor.
	code, body = get(t, srv, "/debug/flight?cursor="+itoa(int(on.Cursor)))
	if code != http.StatusOK {
		t.Fatalf("resume status = %d", code)
	}
	var resumed struct {
		Spans []FlightSpan `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &resumed); err != nil || len(resumed.Spans) != 0 {
		t.Fatalf("resume returned %d spans (err %v)", len(resumed.Spans), err)
	}

	if code, _ := get(t, srv, "/debug/flight?cursor=nope"); code != http.StatusBadRequest {
		t.Fatalf("bad cursor status = %d", code)
	}
}
