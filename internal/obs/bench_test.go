package obs

import (
	"io"
	"testing"
)

// BenchmarkCounterInc is the headline hot-path number: a counter increment
// must stay lock-free and well under 50ns/op (acceptance criterion; on
// modern hardware an uncontended atomic add is single-digit ns).
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterIncParallel measures the contended case (all ranks
// hitting one family child).
func BenchmarkCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkCounterIncNil measures the observability-off cost: a nil handle
// must be a predicted branch, not a call into anything.
func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkGaugeAdd measures the CAS loop under no contention.
func BenchmarkGaugeAdd(b *testing.B) {
	r := NewRegistry()
	g := r.Gauge("bench_g")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

// BenchmarkHistogramObserve measures the bucket scan + three atomics.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&0xffff) + 1)
	}
}

// BenchmarkSpanStartEnd measures one full span (two time.Now calls plus a
// mutex-guarded append) — cold-path by design, but worth tracking. The span
// slice is pre-reserved with Grow so the number reflects the span itself:
// without it, the tracer's unbounded append amortizes its doubling copies
// below 0.5 allocs/op (rounding to 0) while still reporting hundreds of
// B/op — a self-contradictory result.
func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTracer()
	tr.Grow(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Start(0, "op").End()
	}
}

// BenchmarkFlightRecord measures one flight-recorder ring write: an atomic
// index claim plus a per-slot seqlock publish. This is the per-span cost a
// sampled record pays at every hop, so it must stay allocation-free.
func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlightRecorder(DefaultFlightCap)
	sp := FlightSpan{Trace: 99, Rank: 3, Stage: StageIngest, StartNs: 1, DurNs: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Record(sp)
	}
}

// BenchmarkLineageTraceID measures the sampling decision every frame pays
// when lineage is on — two SplitMix64 mixes and a modulo.
func BenchmarkLineageTraceID(b *testing.B) {
	l := NewLineage(LineageConfig{SampleEvery: 256})
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= l.TraceID(i&0xfff, uint64(i))
	}
	_ = sink
}

// BenchmarkWritePrometheus measures a full exposition pass over a
// realistically sized registry (what one /metrics poll costs).
func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 64; i++ {
		r.Counter("detect_slices_total", "rank", itoa(i)).Add(int64(i))
	}
	r.Histogram("server_batch_bytes").Observe(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
