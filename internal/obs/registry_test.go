package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d, want 5", c.Value())
	}
	// Same name+labels returns the same handle.
	if r.Counter("reqs_total") != c {
		t.Error("re-registration returned a different handle")
	}
	// Different labels are distinct children.
	a := r.Counter("by_rank_total", "rank", "0")
	b := r.Counter("by_rank_total", "rank", "1")
	if a == b {
		t.Error("distinct labels should give distinct handles")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Error("labeled children share state")
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m_total", "a", "1", "b", "2")
	b := r.Counter("m_total", "b", "2", "a", "1")
	if a != b {
		t.Error("label order should not matter for identity")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on type mismatch")
		}
	}()
	r.Gauge("x_total")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp")
	g.Set(2.5)
	g.Add(1.5)
	if g.Value() != 4 {
		t.Fatalf("gauge = %v, want 4", g.Value())
	}
	g.Add(-6)
	if g.Value() != -2 {
		t.Fatalf("gauge = %v, want -2", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("lat", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 99, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5+10+11+99+5000 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// le semantics: v <= bound lands in the bucket.
	if got := h.counts[0].Load(); got != 2 { // 5, 10
		t.Errorf("bucket le=10 = %d, want 2", got)
	}
	if got := h.counts[1].Load(); got != 2 { // 11, 99
		t.Errorf("bucket le=100 = %d, want 2", got)
	}
	if got := h.counts[3].Load(); got != 1 { // 5000 → +Inf
		t.Errorf("bucket +Inf = %d, want 1", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v", b)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Describe("reqs_total", "Requests seen.")
	r.Counter("reqs_total", "rank", "0").Add(7)
	r.Gauge("load").Set(1.5)
	h := r.HistogramWith("size_bytes", []float64{8, 64})
	h.Observe(4)
	h.Observe(100)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP reqs_total Requests seen.",
		"# TYPE reqs_total counter",
		`reqs_total{rank="0"} 7`,
		"# TYPE load gauge",
		"load 1.5",
		"# TYPE size_bytes histogram",
		`size_bytes_bucket{le="8"} 1`,
		`size_bytes_bucket{le="64"} 1`,
		`size_bytes_bucket{le="+Inf"} 2`,
		"size_bytes_sum 104",
		"size_bytes_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value" — parseable
	// line-by-line (acceptance criterion).
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "path", `a"b\c`+"\n").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{path="a\"b\\c\n"} 1`) {
		t.Errorf("bad escaping:\n%s", sb.String())
	}
}

// TestConcurrentIncrements hammers one counter, one gauge, and one
// histogram from many goroutines while snapshots are being taken — the
// go test -race workhorse for the lock-free hot paths.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h")

	const goroutines = 16
	const perG = 5000
	// Snapshot continuously while writers run.
	stop := make(chan struct{})
	var snap sync.WaitGroup
	snap.Add(1)
	go func() {
		defer snap.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 1000))
			}
		}()
	}
	writers.Wait()
	close(stop)
	snap.Wait()

	if c.Value() != goroutines*perG {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*perG)
	}
	if g.Value() != goroutines*perG {
		t.Errorf("gauge = %v, want %d", g.Value(), goroutines*perG)
	}
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
}

// TestConcurrentRegistration registers overlapping families from many
// goroutines; identical name+labels must converge on one handle.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	handles := make([]*Counter, 8)
	for i := range handles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			handles[i] = r.Counter("shared_total", "k", "v")
			handles[i].Inc()
		}(i)
	}
	wg.Wait()
	for _, h := range handles[1:] {
		if h != handles[0] {
			t.Fatal("concurrent registration returned distinct handles")
		}
	}
	if handles[0].Value() != int64(len(handles)) {
		t.Errorf("value = %d, want %d", handles[0].Value(), len(handles))
	}
}

// TestHotPathAllocationFree pins the acceptance criterion: Inc/Observe/Add
// allocate nothing.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total")
	g := r.Gauge("alloc_g")
	h := r.Histogram("alloc_h")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123456) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op", n)
	}
}

// TestNilSafety: every hot-path method must be callable through nil
// handles and a nil registry/bundle.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	var o *Obs
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveInt(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles should read zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry should return nil handles")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Error(err)
	}
	if o.Counter("x") != nil || o.Span(0, "x") != nil || o.Registry() != nil || o.Tracer() != nil {
		t.Error("nil Obs should return nil handles")
	}
	o.Span(0, "x").Arg("k", "v").End()
	o.NameThread(0, "x")
	o.SetStatus(nil)
	o.SetRecords(nil)
}
