package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// reportHarness is a mutable synthetic provider: tests advance the
// generation (and optionally the record log) and the handler must track it
// through the ETag/cursor protocol.
type reportHarness struct {
	cur    atomic.Pointer[ReportSnapshot]
	mu     sync.Mutex
	wakeup chan struct{} // closed by advance(); wait() parks on it
}

func (h *reportHarness) wakeChan() chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.wakeup == nil {
		h.wakeup = make(chan struct{})
	}
	return h.wakeup
}

func (h *reportHarness) snapshot(gen uint64, log []int, base int) *ReportSnapshot {
	return &ReportSnapshot{
		Gen:      gen,
		Status:   map[string]any{"gen": gen, "records": len(log)},
		Outliers: map[string]any{"gen": gen, "outliers": []string{"s0"}},
		Records: func(cursor int) (any, int, int, bool) {
			if cursor < base || cursor > base+len(log) {
				return []int{}, 0, base, false
			}
			return log[cursor-base:], base + len(log), base, true
		},
	}
}

func (h *reportHarness) advance(gen uint64, log []int, base int) {
	h.cur.Store(h.snapshot(gen, log, base))
	h.mu.Lock()
	if h.wakeup != nil {
		close(h.wakeup)
		h.wakeup = nil
	}
	h.mu.Unlock()
}

func (h *reportHarness) wire(o *Obs) {
	o.SetReport(
		func() *ReportSnapshot { return h.cur.Load() },
		func(afterGen uint64, timeout time.Duration) *ReportSnapshot {
			wake := h.wakeChan()
			if sn := h.cur.Load(); sn != nil && sn.Gen > afterGen {
				return sn
			}
			select {
			case <-wake:
				return h.cur.Load()
			case <-time.After(timeout):
				return nil
			}
		},
	)
}

func getINM(t *testing.T, srv *httptest.Server, path, inm string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest("GET", srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestStatusETagRevalidation pins the conditional-GET contract on /status:
// a poll returns a strong ETag, revalidating with it costs a 304 with no
// body, a generation advance invalidates the tag, and two unconditional
// polls at the same generation are byte-identical (shared render).
func TestStatusETagRevalidation(t *testing.T) {
	o := New()
	h := &reportHarness{}
	h.advance(3, []int{1, 2}, 0)
	h.wire(o)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	code, body1, hdr := getINM(t, srv, "/status", "")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	tag := hdr.Get("ETag")
	if tag != `"3"` {
		t.Fatalf("ETag = %q, want %q", tag, `"3"`)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body1), &st); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if st["running"] != true || st["gen"] != float64(3) {
		t.Fatalf("body = %v", st)
	}

	// Same generation: byte-identical body, and a revalidation is free.
	_, body2, _ := getINM(t, srv, "/status", "")
	if body1 != body2 {
		t.Fatalf("same-generation bodies differ:\n%s\n%s", body1, body2)
	}
	code, body3, hdr := getINM(t, srv, "/status", tag)
	if code != http.StatusNotModified || body3 != "" {
		t.Fatalf("revalidation = %d %q, want 304 with empty body", code, body3)
	}
	if hdr.Get("ETag") != tag {
		t.Fatalf("304 ETag = %q, want %q", hdr.Get("ETag"), tag)
	}
	// Weak and list forms match too.
	if code, _, _ := getINM(t, srv, "/status", `W/"3"`); code != http.StatusNotModified {
		t.Errorf("weak revalidation = %d", code)
	}
	if code, _, _ := getINM(t, srv, "/status", `"1", "3"`); code != http.StatusNotModified {
		t.Errorf("list revalidation = %d", code)
	}

	// Generation advance: stale tag now misses.
	h.advance(4, []int{1, 2, 3}, 0)
	code, body4, hdr := getINM(t, srv, "/status", tag)
	if code != http.StatusOK || hdr.Get("ETag") != `"4"` {
		t.Fatalf("post-advance = %d ETag %q", code, hdr.Get("ETag"))
	}
	if body4 == body1 {
		t.Fatal("new generation served the old body")
	}
}

// TestOutliersEndpoint covers the /outliers surface: disabled without a
// report provider, full conditional protocol with one.
func TestOutliersEndpoint(t *testing.T) {
	o := New()
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	code, body, _ := getINM(t, srv, "/outliers", "")
	if code != http.StatusOK || !strings.Contains(body, `"enabled":false`) {
		t.Fatalf("unwired /outliers = %d %s", code, body)
	}

	h := &reportHarness{}
	h.advance(9, nil, 0)
	h.wire(o)
	code, body, hdr := getINM(t, srv, "/outliers", "")
	if code != http.StatusOK || hdr.Get("ETag") != `"9"` {
		t.Fatalf("/outliers = %d ETag %q", code, hdr.Get("ETag"))
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out["gen"] != float64(9) {
		t.Fatalf("outliers body = %v", out)
	}
	if code, b, _ := getINM(t, srv, "/outliers", `"9"`); code != http.StatusNotModified || b != "" {
		t.Fatalf("revalidation = %d %q", code, b)
	}
}

// TestRecordsSnapshotWindow pins the /records regression this PR fixes: an
// out-of-range cursor must answer with an explicit truncation pointing at
// the window base — never a silently clamped window — and a negative
// cursor is a client error.
func TestRecordsSnapshotWindow(t *testing.T) {
	o := New()
	h := &reportHarness{}
	h.advance(2, []int{7, 8, 9}, 0)
	h.wire(o)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	type resp struct {
		Cursor    int   `json:"cursor"`
		Base      int   `json:"base"`
		Truncated bool  `json:"truncated"`
		Records   []int `json:"records"`
	}
	poll := func(q string) (int, resp) {
		t.Helper()
		code, body, _ := getINM(t, srv, "/records"+q, "")
		var r resp
		if code == http.StatusOK {
			if err := json.Unmarshal([]byte(body), &r); err != nil {
				t.Fatalf("invalid JSON: %v\n%s", err, body)
			}
		}
		return code, r
	}

	// In-range walk: exactly-once, base always present.
	code, r := poll("")
	if code != 200 || len(r.Records) != 3 || r.Cursor != 3 || r.Base != 0 || r.Truncated {
		t.Fatalf("full window = %d %+v", code, r)
	}
	code, r = poll("?cursor=3")
	if code != 200 || len(r.Records) != 0 || r.Cursor != 3 {
		t.Fatalf("caught-up = %d %+v", code, r)
	}

	// Past the end (the log shrank, e.g. across a crash recovery): explicit
	// truncation with the base to restart from, not a clamp.
	h.advance(3, []int{7}, 0)
	code, r = poll("?cursor=3")
	if code != 200 || !r.Truncated || r.Cursor != 0 || r.Base != 0 || len(r.Records) != 0 {
		t.Fatalf("stale cursor = %d %+v, want explicit truncation to base", code, r)
	}
	// Restarting from the returned base succeeds.
	code, r = poll("?cursor=0")
	if code != 200 || r.Truncated || len(r.Records) != 1 || r.Records[0] != 7 {
		t.Fatalf("restart = %d %+v", code, r)
	}

	// Negative cursor: 400, not a clamp to zero.
	if code, _ := poll("?cursor=-1"); code != http.StatusBadRequest {
		t.Fatalf("negative cursor = %d, want 400", code)
	}
	// Unparsable: 400 (pre-existing behaviour, kept).
	if code, _ := poll("?cursor=zap"); code != http.StatusBadRequest {
		t.Fatalf("unparsable cursor = %d, want 400", code)
	}

	// Non-zero base after recovery: a cursor below base is truncated too.
	h.advance(4, []int{5, 6}, 10)
	code, r = poll("?cursor=3")
	if code != 200 || !r.Truncated || r.Cursor != 10 || r.Base != 10 {
		t.Fatalf("below-base cursor = %d %+v, want truncation to base 10", code, r)
	}
	code, r = poll("?cursor=10")
	if code != 200 || r.Truncated || len(r.Records) != 2 || r.Cursor != 12 {
		t.Fatalf("at-base = %d %+v", code, r)
	}
}

// TestLongPollStatus exercises ?wait=1: a request at the current generation
// parks and is released by the next advance; an idle one times out and
// re-serves the current generation as a 304.
func TestLongPollStatus(t *testing.T) {
	o := New()
	h := &reportHarness{}
	h.advance(5, nil, 0)
	h.wire(o)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	// Wake path: park at gen 5, advance to 6 mid-poll.
	done := make(chan struct{})
	go func() {
		defer close(done)
		code, _, hdr := getINM(t, srv, "/status?wait=1&timeout_ms=5000", `"5"`)
		if code != http.StatusOK || hdr.Get("ETag") != `"6"` {
			t.Errorf("long-poll wake = %d ETag %q, want 200 %q", code, hdr.Get("ETag"), `"6"`)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	h.advance(6, nil, 0)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke")
	}

	// Timeout path: nothing advances, the poll answers 304 after the bound.
	start := time.Now()
	code, body, hdr := getINM(t, srv, "/status?wait=1&timeout_ms=50", `"6"`)
	if code != http.StatusNotModified || body != "" {
		t.Fatalf("long-poll timeout = %d %q, want 304", code, body)
	}
	if hdr.Get("ETag") != `"6"` {
		t.Fatalf("timeout ETag = %q", hdr.Get("ETag"))
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("timed-out poll returned after %v, want ≥ ~50ms park", elapsed)
	}

	// A mismatched tag never parks, even with wait=1.
	start = time.Now()
	if code, _, _ := getINM(t, srv, "/status?wait=1&timeout_ms=5000", `"1"`); code != http.StatusOK {
		t.Fatalf("stale-tag wait = %d, want immediate 200", code)
	}
	if time.Since(start) > time.Second {
		t.Fatal("stale-tag wait parked")
	}
}
