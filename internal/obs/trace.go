package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records hierarchical spans — facade pipeline stages and per-rank
// executions — and exports them in the Chrome trace_event format so a run
// can be inspected in chrome://tracing or Perfetto. Spans on the same
// thread id (tid) nest by time containment, which is exactly how the
// Chrome viewer draws hierarchy.
//
// Unlike the rest of the simulator, span timestamps are real wall-clock
// time: the tracer observes the reproduction itself (where does the
// pipeline spend host time), not the virtual cluster.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	spans   []spanRecord
	threads map[int]string
}

// spanRecord is one completed span.
type spanRecord struct {
	name    string
	tid     int
	startUs float64
	durUs   float64
	args    map[string]string
}

// Span is one in-flight span; End completes it. All methods are nil-safe.
type Span struct {
	t     *Tracer
	name  string
	tid   int
	begin time.Time
	args  map[string]string
}

// NewTracer creates an empty tracer. The epoch (ts=0 in the export) is the
// creation time.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), threads: make(map[int]string)}
}

// NameThread assigns a display name to a tid (e.g. 0 → "pipeline",
// r+1 → "rank r"), emitted as trace metadata.
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[tid] = name
	t.mu.Unlock()
}

// Grow pre-reserves capacity for n additional spans, so a caller that knows
// its span volume up front (benchmarks, bounded replays) avoids the
// amortized slice-doubling copies that End would otherwise pay.
func (t *Tracer) Grow(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	if free := cap(t.spans) - len(t.spans); free < n {
		grown := make([]spanRecord, len(t.spans), len(t.spans)+n)
		copy(grown, t.spans)
		t.spans = grown
	}
	t.mu.Unlock()
}

// Start opens a span on the given tid. Safe to call from any goroutine.
func (t *Tracer) Start(tid int, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, tid: tid, begin: time.Now()}
}

// Arg attaches a key/value annotation; chainable.
func (s *Span) Arg(k, v string) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]string, 4)
	}
	s.args[k] = v
	return s
}

// End completes the span, recording it in the tracer.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	t := s.t
	t.mu.Lock()
	t.spans = append(t.spans, spanRecord{
		name:    s.name,
		tid:     s.tid,
		startUs: float64(s.begin.Sub(t.epoch)) / float64(time.Microsecond),
		durUs:   float64(end.Sub(s.begin)) / float64(time.Microsecond),
		args:    s.args,
	})
	t.mu.Unlock()
}

// Len returns the number of completed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// SpanNames returns the distinct names of completed spans (sorted), for
// tests and summaries.
func (t *Tracer) SpanNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	set := make(map[string]bool, len(t.spans))
	for _, s := range t.spans {
		set[s.name] = true
	}
	t.mu.Unlock()
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// chromeEvent is one entry of the trace_event JSON array.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the object form of the format ({"traceEvents": [...]});
// both chrome://tracing and Perfetto load it.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports every completed span (and thread-name metadata) as
// Chrome trace_event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return t.WriteChromeMerged(w, nil)
}

// lineagePid is the Chrome-trace process id under which lineage spans are
// grouped (pipeline spans live under pid 1, one row per rank under pid 2).
const lineagePid = 2

// WriteChromeMerged exports the tracer's spans plus, when lin is non-nil,
// every stable span in the lineage flight recorder: each sampled record's
// journey appears as stage slices on the emitting rank's row of a separate
// "lineage" process, with the trace ID in the args so rows correlate with
// /debug/flight and histogram exemplars.
func (t *Tracer) WriteChromeMerged(w io.Writer, lin *Lineage) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := make([]chromeEvent, 0, len(t.spans)+len(t.threads))
	tids := make([]int, 0, len(t.threads))
	for tid := range t.threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		events = append(events, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  tid,
			Args: map[string]string{"name": t.threads[tid]},
		})
	}
	for _, s := range t.spans {
		dur := s.durUs
		events = append(events, chromeEvent{
			Name: s.name,
			Ph:   "X",
			Ts:   s.startUs,
			Dur:  &dur,
			Pid:  1,
			Tid:  s.tid,
			Args: s.args,
		})
	}
	epochNs := t.epoch.UnixNano()
	t.mu.Unlock()

	if flight, _ := lin.Snapshot(nil, 0); len(flight) > 0 {
		events = append(events, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  lineagePid,
			Args: map[string]string{"name": "lineage (sampled records)"},
		})
		for _, sp := range flight {
			dur := float64(sp.DurNs) / float64(time.Microsecond)
			args := map[string]string{
				"trace": fmt.Sprintf("%016x", sp.Trace),
			}
			if sp.Try != 0 {
				args["try"] = fmt.Sprintf("%d", sp.Try)
			}
			if sp.Arg != 0 {
				args["arg"] = fmt.Sprintf("%d", sp.Arg)
			}
			events = append(events, chromeEvent{
				Name: sp.Stage.String(),
				Ph:   "X",
				Ts:   float64(sp.StartNs-epochNs) / float64(time.Microsecond),
				Dur:  &dur,
				Pid:  lineagePid,
				Tid:  int(sp.Rank),
				Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
