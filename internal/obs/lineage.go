package obs

import "fmt"

// Stage identifies one hop of a record's journey through the pipeline, from
// the detector's emit to the analyzer's final verdict.
type Stage uint8

const (
	StageEmit        Stage = iota // detector closed a slice and handed records to the sink
	StageEnqueue                  // conn buffered the records for the next frame
	StageAttempt                  // one delivery attempt on the lossy link
	StageRetry                    // a failed attempt was retried with backoff (arg = charged backoff ns)
	StageIngest                   // server accepted the frame into a shard (server_ingest)
	StageDedup                    // per-rank sequence dedup verdict (arg: 0 fresh, 1 duplicate)
	StageWALAppend                // frame entry appended to the write-ahead log
	StageWALSync                  // group-commit fsync that persisted the frame
	StageSnapshot                 // checkpoint triggered while this frame was in flight
	StageEpochReopen              // a closed epoch was reopened by this late record
	StageEpochClose               // the record's epoch passed the watermark and closed
	StageVerdict                  // final per-epoch verdict (arg = outlier count)
	numStages
)

var stageNames = [numStages]string{
	"emit", "enqueue", "attempt", "retry", "server_ingest", "dedup",
	"wal_append", "wal_sync", "snapshot", "epoch_reopen", "epoch_close",
	"verdict",
}

// String returns the stage's wire/metric label.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// MarshalJSON renders the stage as its label so /debug/flight dumps read
// without a decoder ring.
func (s Stage) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the label form back, so /debug/flight payloads
// round-trip through the same types that produced them.
func (s *Stage) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("obs: stage must be a JSON string, got %s", data)
	}
	name := string(data[1 : len(data)-1])
	for i, n := range stageNames {
		if n == name {
			*s = Stage(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown stage %q", name)
}

// LineageConfig configures the record-lineage tracing layer.
type LineageConfig struct {
	// SampleEvery samples roughly 1/N of frames by a seeded hash of
	// (rank, seq). 0 selects the default of 256; 1 traces every frame.
	SampleEvery uint64
	// Seed perturbs the sampling hash so repeated runs can select different
	// record populations while staying individually deterministic.
	Seed uint64
	// FlightCap is the flight-recorder ring capacity in spans (rounded up
	// to a power of two; 0 selects DefaultFlightCap).
	FlightCap int
}

// DefaultSampleEvery is the sampling period used when LineageConfig leaves
// SampleEvery zero: one traced frame per 256.
const DefaultSampleEvery = 256

// Lineage is the record-lineage tracer: a deterministic frame sampler, the
// flight-recorder ring the sampled spans land in, and per-stage latency
// histograms whose outlier buckets carry exemplar trace IDs. A nil *Lineage
// is the "lineage off" value — every method is a nil-receiver no-op, so
// instrumentation sites pay one predicted branch when tracing is disabled.
type Lineage struct {
	every uint64
	seed  uint64
	ring  *FlightRecorder
	stage [numStages]*Histogram
	frames *Counter // sampled frames stamped onto the wire
}

// newLineage builds the tracer and registers its metric families on reg
// (which may be nil for a registry-less tracer, e.g. in tests).
func newLineage(cfg LineageConfig, reg *Registry) *Lineage {
	every := cfg.SampleEvery
	if every == 0 {
		every = DefaultSampleEvery
	}
	capacity := cfg.FlightCap
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	l := &Lineage{every: every, seed: cfg.Seed, ring: NewFlightRecorder(capacity)}
	for s := Stage(0); s < numStages; s++ {
		l.stage[s] = reg.Histogram("lineage_stage_ns", "stage", s.String())
	}
	l.frames = reg.Counter("lineage_sampled_frames_total")
	return l
}

// NewLineage builds a standalone tracer with no metrics registry attached
// (histograms still work; they are just not exported). Prefer
// Obs.EnableLineage in real wiring.
func NewLineage(cfg LineageConfig) *Lineage {
	return newLineage(cfg, NewRegistry())
}

// SampleEvery returns the sampling period (0 when lineage is off).
func (l *Lineage) SampleEvery() uint64 {
	if l == nil {
		return 0
	}
	return l.every
}

// mix64 is the SplitMix64 finalizer — a cheap, statistically strong 64-bit
// mixer, so sampling is unbiased in rank and seq.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// TraceID decides whether the frame (rank, seq) is sampled. It returns 0
// (the unsampled sentinel) for 1-1/SampleEvery of frames and a nonzero
// deterministic trace ID otherwise. The decision depends only on the seed,
// rank, and sequence number — never on shard count, timing, or goroutine
// interleaving — so the same workload samples the same frames every run.
func (l *Lineage) TraceID(rank int, seq uint64) uint64 {
	if l == nil {
		return 0
	}
	h := mix64(l.seed ^ mix64(uint64(rank)*0x9e3779b97f4a7c15+seq))
	if h%l.every != 0 {
		return 0
	}
	id := mix64(h ^ 0x2545f4914f6cdd1d)
	if id == 0 {
		id = 1
	}
	return id
}

// FrameSampled notes that a sampled frame was stamped onto the wire (the
// counter behind lineage_sampled_frames_total).
func (l *Lineage) FrameSampled() {
	if l == nil {
		return
	}
	l.frames.Inc()
}

// SampledFrames returns the number of frames stamped with a trace ID.
func (l *Lineage) SampledFrames() int64 {
	if l == nil {
		return 0
	}
	return l.frames.Value()
}

// Record publishes one stage span for a sampled record: it lands in the
// flight-recorder ring and feeds the stage's latency histogram with the
// trace ID as the exemplar. trace 0 (unsampled) is a no-op, so call sites
// can record unconditionally after the nil check.
func (l *Lineage) Record(trace uint64, stage Stage, rank int, try int, startNs, durNs, arg int64) {
	if l == nil || trace == 0 {
		return
	}
	l.ring.Record(FlightSpan{
		Trace:   trace,
		Rank:    int32(rank),
		Stage:   stage,
		Try:     uint16(try),
		StartNs: startNs,
		DurNs:   durNs,
		Arg:     arg,
	})
	l.stage[stage].ObserveExemplar(float64(durNs), trace)
}

// Ring returns the flight recorder (nil when lineage is off).
func (l *Lineage) Ring() *FlightRecorder {
	if l == nil {
		return nil
	}
	return l.ring
}

// Snapshot copies the stable flight spans after cursor; see
// FlightRecorder.Snapshot.
func (l *Lineage) Snapshot(dst []FlightSpan, cursor uint64) ([]FlightSpan, uint64) {
	if l == nil {
		return dst[:0], cursor
	}
	return l.ring.Snapshot(dst, cursor)
}

// StageHistogram returns the latency histogram for one stage (nil-safe).
func (l *Lineage) StageHistogram(s Stage) *Histogram {
	if l == nil || s >= numStages {
		return nil
	}
	return l.stage[s]
}

// LineageStats is the /status summary of the tracing layer.
type LineageStats struct {
	SampleEvery   uint64 `json:"sample_every"`
	Seed          uint64 `json:"seed"`
	FlightCap     int    `json:"flight_cap"`
	Spans         uint64 `json:"spans"`
	SampledFrames int64  `json:"sampled_frames"`
}

// Stats snapshots the tracer's counters.
func (l *Lineage) Stats() LineageStats {
	if l == nil {
		return LineageStats{}
	}
	return LineageStats{
		SampleEvery:   l.every,
		Seed:          l.seed,
		FlightCap:     l.ring.Cap(),
		Spans:         l.ring.Head(),
		SampledFrames: l.SampledFrames(),
	}
}
