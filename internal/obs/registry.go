// Package obs is vSensor's self-observability layer: a stdlib-only metrics
// registry (counters, gauges, exponential-bucket histograms with lock-free
// atomic hot paths), a hierarchical span tracer exportable as Chrome
// trace_event JSON, and an opt-in HTTP introspection endpoint serving
// /metrics (Prometheus text exposition), /status (JSON snapshot), and
// /records (incremental slice-record polling).
//
// The paper's whole argument is that performance tools must themselves be
// cheap and always-on (§2: the report updates while the job runs; Table 1:
// <4% overhead). This package applies the same discipline to the vSensor
// pipeline itself: a counter increment is a single uncontended atomic add,
// registration happens once at setup time, and everything degrades to a
// no-op when observability is not requested (all hot-path methods are
// nil-receiver safe).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric family types, mirroring the Prometheus exposition TYPE keywords.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry holds metric families. Registration (Counter/Gauge/Histogram) is
// synchronized and idempotent — the same name+labels returns the same
// handle — while the returned handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric family with zero or more labeled children.
type family struct {
	name string
	typ  string
	help string
	// children maps the canonical rendered label string (no braces) to the
	// child metric. Guarded by the registry mutex.
	children map[string]*child
}

// child is one labeled instance inside a family.
type child struct {
	labels string // canonical "k=\"v\",k2=\"v2\"" (empty for no labels)
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Describe sets the HELP text for a family (shown in /metrics). It may be
// called before or after the family's first registration.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, children: make(map[string]*child)}
		r.families[name] = f
	}
	f.help = help
}

// family returns (creating if needed) the family, checking type consistency.
func (r *Registry) getFamily(name, typ string) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, typ: typ, children: make(map[string]*child)}
		r.families[name] = f
		return f
	}
	if f.typ == "" {
		f.typ = typ // family pre-created by Describe
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// Counter returns the counter for name with the given label key/value pairs,
// registering it on first use. The returned handle's Inc/Add are single
// atomic operations.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, typeCounter)
	ch := f.children[key]
	if ch == nil {
		ch = &child{labels: key, c: &Counter{}}
		f.children[key] = ch
	}
	return ch.c
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, typeGauge)
	ch := f.children[key]
	if ch == nil {
		ch = &child{labels: key, g: &Gauge{}}
		f.children[key] = ch
	}
	return ch.g
}

// DefaultHistogramBuckets: exponential base-4 bounds from 64 up — a good
// fit for nanosecond durations and byte sizes, the two quantities the
// pipeline observes.
var defaultBuckets = expBuckets(64, 4, 16)

// Histogram returns the histogram for name+labels using the default
// exponential buckets, registering it on first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.HistogramWith(name, nil, labels...)
}

// HistogramWith is Histogram with explicit ascending upper bounds (+Inf is
// implicit). Nil bounds selects the defaults. Bounds are fixed at first
// registration; later calls reuse the existing child.
func (r *Registry) HistogramWith(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = defaultBuckets
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, typeHistogram)
	ch := f.children[key]
	if ch == nil {
		ch = &child{labels: key, h: newHistogram(bounds)}
		f.children[key] = ch
	}
	return ch.h
}

// ExpBuckets returns n exponential upper bounds start, start*factor, ... —
// the standard shape for latency/size histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	return expBuckets(start, factor, n)
}

func expBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: exponential buckets need start>0, factor>1, n>0")
	}
	out := make([]float64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// ---------- handles ----------

// Counter is a monotonically increasing value. The zero value is ready to
// use; all methods are nil-receiver safe no-ops so uninstrumented runs pay
// only a predicted branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be >= 0 for the value to stay monotonic; this is not
// enforced on the hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta with a CAS loop (still lock-free).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Observe is lock-free
// and allocation-free: one bucket scan plus three atomic operations.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	// ex holds one exemplar per bucket (last trace ID that landed there),
	// published under a tiny per-slot seqlock so readers never see a trace
	// paired with another observation's value. Only ObserveExemplar touches
	// it; plain Observe costs nothing extra.
	ex []exemplarSlot
}

// exemplarSlot pairs a trace ID with the observed value that put it in the
// bucket. ver is a seqlock: even = stable, odd = write in progress.
type exemplarSlot struct {
	ver   atomic.Uint64
	trace uint64
	bits  uint64 // float64 bits of the observed value
}

// Exemplar is one bucket's exported exemplar.
type Exemplar struct {
	Bucket     int     `json:"bucket"`
	UpperBound float64 `json:"le"` // +Inf rendered as math.Inf(1)
	Count      int64   `json:"count"`
	Trace      uint64  `json:"trace"`
	Value      float64 `json:"value"`
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
		ex:     make([]exemplarSlot, len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveInt records one integer value (convenience for ns / byte counts).
func (h *Histogram) ObserveInt(v int64) { h.Observe(float64(v)) }

// ObserveExemplar records one value and, when trace is nonzero, stamps it
// as the bucket's exemplar — the trace ID a latency outlier in that bucket
// resolves to. The exemplar write is a short per-slot seqlock, taken only
// on this (sampled) path.
func (h *Histogram) ObserveExemplar(v float64, trace uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			break
		}
	}
	if trace == 0 {
		return
	}
	e := &h.ex[i]
	for {
		ver := e.ver.Load()
		if ver&1 != 0 {
			continue // another sampled writer holds the slot; rare
		}
		if !e.ver.CompareAndSwap(ver, ver+1) {
			continue
		}
		e.trace = trace
		e.bits = math.Float64bits(v)
		e.ver.Add(1)
		return
	}
}

// Exemplars returns the stable exemplars of every non-empty bucket,
// ascending by bucket. Slots mid-write are skipped rather than returned
// torn.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	out := make([]Exemplar, 0, len(h.ex))
	for i := range h.ex {
		e := &h.ex[i]
		v1 := e.ver.Load()
		if v1&1 != 0 {
			continue
		}
		trace, bits := e.trace, e.bits
		if e.ver.Load() != v1 || trace == 0 {
			continue
		}
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		out = append(out, Exemplar{
			Bucket:     i,
			UpperBound: bound,
			Count:      h.counts[i].Load(),
			Trace:      trace,
			Value:      math.Float64frombits(bits),
		})
	}
	return out
}

// TopExemplar returns the exemplar of the highest non-empty bucket that has
// one — the trace ID behind the worst observed latency.
func (h *Histogram) TopExemplar() (Exemplar, bool) {
	ex := h.Exemplars()
	if len(ex) == 0 {
		return Exemplar{}, false
	}
	return ex[len(ex)-1], true
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistogramExemplars sweeps one histogram family and returns each child's
// exemplars keyed by its canonical label string (e.g. `stage="wal_sync"`).
// Children with no exemplars are omitted.
func (r *Registry) HistogramExemplars(name string) map[string][]Exemplar {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	f := r.families[name]
	var hs map[string]*Histogram
	if f != nil && f.typ == typeHistogram {
		hs = make(map[string]*Histogram, len(f.children))
		for key, ch := range f.children {
			hs[key] = ch.h
		}
	}
	r.mu.Unlock()
	if len(hs) == 0 {
		return nil
	}
	out := make(map[string][]Exemplar, len(hs))
	for key, h := range hs {
		if ex := h.Exemplars(); len(ex) > 0 {
			out[key] = ex
		}
	}
	return out
}

// ---------- exposition ----------

// WritePrometheus writes every family in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot child lists under the lock; atomic values are read after.
	type famSnap struct {
		f    *family
		keys []string
	}
	snaps := make([]famSnap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		snaps = append(snaps, famSnap{f: f, keys: keys})
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, s := range snaps {
		f := s.f
		if len(s.keys) == 0 {
			continue // Describe'd but never registered
		}
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		for _, key := range s.keys {
			ch := f.children[key]
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, wrapLabels(key), ch.c.Value())
			case typeGauge:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, wrapLabels(key), formatFloat(ch.g.Value()))
			case typeHistogram:
				h := ch.h
				var cum int64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(&sb, "%s_bucket%s %d\n",
						f.name, wrapLabels(joinLabels(key, fmt.Sprintf("le=%q", formatFloat(bound)))), cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(&sb, "%s_bucket%s %d\n",
					f.name, wrapLabels(joinLabels(key, `le="+Inf"`)), cum)
				fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name, wrapLabels(key), formatFloat(h.Sum()))
				fmt.Fprintf(&sb, "%s_count%s %d\n", f.name, wrapLabels(key), h.Count())
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// renderLabels canonicalizes k/v pairs: sorted by key, values escaped.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	return sb.String()
}

func wrapLabels(inner string) string {
	if inner == "" {
		return ""
	}
	return "{" + inner + "}"
}

func joinLabels(inner, extra string) string {
	if inner == "" {
		return extra
	}
	return inner + "," + extra
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// formatFloat renders a float the way Prometheus clients expect: integral
// values without an exponent where possible.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
