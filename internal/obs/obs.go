package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Obs bundles a metrics registry and a span tracer, plus the mutable status
// and record providers that the facade wires in when a run starts. A nil
// *Obs is a valid "observability off" value: every accessor returns a
// nil handle whose methods are no-ops, so instrumentation sites never need
// to branch on configuration.
type Obs struct {
	reg    *Registry
	tracer *Tracer
	start  time.Time
	lin    atomic.Pointer[Lineage] // nil until EnableLineage

	mu        sync.Mutex
	statusFn  func() any
	recordsFn func(cursor int) (any, int)

	// Versioned-snapshot providers (report.go); when reportFn is set it
	// takes precedence over statusFn/recordsFn and enables ETag/304 and
	// long-poll semantics on the HTTP surface.
	reportFn     func() *ReportSnapshot
	reportWaitFn func(afterGen uint64, timeout time.Duration) *ReportSnapshot
}

// New creates an observability bundle with the standard family descriptions
// pre-registered.
func New() *Obs {
	o := &Obs{reg: NewRegistry(), tracer: NewTracer(), start: time.Now()}
	describeStandard(o.reg)
	return o
}

// Registry returns the underlying metrics registry (nil when o is nil).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the underlying span tracer (nil when o is nil).
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Counter resolves a counter handle; nil-safe.
func (o *Obs) Counter(name string, labels ...string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(name, labels...)
}

// Gauge resolves a gauge handle; nil-safe.
func (o *Obs) Gauge(name string, labels ...string) *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(name, labels...)
}

// Histogram resolves a histogram handle with default buckets; nil-safe.
func (o *Obs) Histogram(name string, labels ...string) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.Histogram(name, labels...)
}

// HistogramWith resolves a histogram handle with explicit bounds; nil-safe.
func (o *Obs) HistogramWith(name string, bounds []float64, labels ...string) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.HistogramWith(name, bounds, labels...)
}

// Span opens a span on tid; nil-safe (returns a nil *Span whose End is a
// no-op).
func (o *Obs) Span(tid int, name string) *Span {
	if o == nil {
		return nil
	}
	return o.tracer.Start(tid, name)
}

// NameThread names a trace tid; nil-safe.
func (o *Obs) NameThread(tid int, name string) {
	if o == nil {
		return
	}
	o.tracer.NameThread(tid, name)
}

// EnableLineage turns on record-lineage tracing: it builds the sampler,
// flight-recorder ring, and per-stage exemplar histograms, and makes them
// visible to /debug/flight and the Chrome exporter. Idempotent in spirit —
// calling it again replaces the tracer (fresh ring, same registry families).
func (o *Obs) EnableLineage(cfg LineageConfig) *Lineage {
	if o == nil {
		return nil
	}
	l := newLineage(cfg, o.reg)
	o.lin.Store(l)
	return l
}

// Lineage returns the record-lineage tracer, or nil when lineage is off —
// and a nil *Lineage is itself a valid no-op handle.
func (o *Obs) Lineage() *Lineage {
	if o == nil {
		return nil
	}
	return o.lin.Load()
}

// SetStatus installs the function backing the /status endpoint. The facade
// calls this when a run starts so live polls see the current job.
func (o *Obs) SetStatus(fn func() any) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.statusFn = fn
	o.mu.Unlock()
}

// SetRecords installs the function backing /records?cursor=N. It must
// return the records after the cursor plus the new cursor (the facade wires
// it to Server.RecordsSince).
func (o *Obs) SetRecords(fn func(cursor int) (any, int)) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.recordsFn = fn
	o.mu.Unlock()
}

func (o *Obs) statusSnapshot() (any, bool) {
	o.mu.Lock()
	fn := o.statusFn
	o.mu.Unlock()
	if fn == nil {
		return nil, false
	}
	return fn(), true
}

func (o *Obs) recordsSince(cursor int) (any, int, bool) {
	o.mu.Lock()
	fn := o.recordsFn
	o.mu.Unlock()
	if fn == nil {
		return nil, cursor, false
	}
	recs, next := fn(cursor)
	return recs, next, true
}

// UptimeSeconds returns seconds since New.
func (o *Obs) UptimeSeconds() float64 {
	if o == nil {
		return 0
	}
	return time.Since(o.start).Seconds()
}

// describeStandard registers HELP text for the metric families the pipeline
// exports, so /metrics is self-documenting.
func describeStandard(r *Registry) {
	r.Describe("vm_records_total", "Raw sensor records emitted by Tick/Tock probes across ranks.")
	r.Describe("vm_steps_total", "Interpreted mini-C statements executed across ranks.")
	r.Describe("vm_probe_ns_total", "Virtual nanoseconds charged for Tick/Tock probe overhead (the paper's <4% budget).")
	r.Describe("vm_events_total", "Runtime events seen by baseline sinks, by kind (comp/net/io).")
	r.Describe("vm_time_ns_total", "Virtual nanoseconds per category (comp/net/io) summed across ranks.")
	r.Describe("vm_active_ranks", "Rank goroutines currently executing.")
	r.Describe("detect_records_total", "Raw records consumed by per-rank detectors.")
	r.Describe("detect_slices_total", "Smoothed time-slice analyses completed (one per closed slice).")
	r.Describe("detect_variance_events_total", "Per-process variance events flagged below the threshold.")
	r.Describe("detect_dropped_total", "Records skipped because the short-sensor rule disabled their sensor.")
	r.Describe("detect_emit_errors_total", "Slice records the emitter failed to deliver (transport backpressure loss or decode rejects).")
	r.Describe("server_messages_total", "Batch frames ingested by the analysis server (duplicates excluded).")
	r.Describe("server_bytes_total", "Encoded bytes ingested by the analysis server.")
	r.Describe("server_records_total", "Slice records ingested by the analysis server.")
	r.Describe("server_batch_bytes", "Size distribution of ingested batch frames.")
	r.Describe("server_dup_frames_total", "Retransmitted frames absorbed by per-rank sequence dedup.")
	r.Describe("server_checksum_errors_total", "Frames rejected because their CRC did not match (bit corruption).")
	r.Describe("server_rejected_frames_total", "Frames rejected for framing/header errors (not checksum).")
	r.Describe("server_records_expected", "Records the ranks claim to have sent (from frame headers), summed over ranks.")
	r.Describe("server_records_ingested", "Records actually decoded into the server log; expected-ingested is the coverage gap.")
	r.Describe("server_wal_entries_total", "Entries appended to the analysis server's write-ahead log.")
	r.Describe("server_wal_bytes_total", "Bytes appended to the write-ahead log (framing included).")
	r.Describe("server_wal_syncs_total", "WAL fsyncs issued (group commit flushes).")
	r.Describe("server_snapshots_total", "Checkpoints taken: snapshot written, WAL segment rotated.")
	r.Describe("server_snapshot_bytes", "Size of the most recent snapshot.")
	r.Describe("server_recoveries_total", "Crash recoveries completed (snapshot load + WAL replay).")
	r.Describe("server_wal_truncated_bytes_total", "WAL bytes discarded at recovery as torn or corrupt tails.")
	r.Describe("server_replayed_frames_total", "Frames re-ingested from the WAL during crash recovery.")
	r.Describe("server_heartbeats_total", "Liveness heartbeats ingested from rank connections.")
	r.Describe("server_ranks_alive", "Ranks whose liveness lease is current (or who hold no lease).")
	r.Describe("server_ranks_suspect", "Ranks silent past one lease but not yet declared dead.")
	r.Describe("server_ranks_dead", "Ranks silent past the dead threshold, excluded from the watermark.")
	r.Describe("server_report_gen", "Current generation of the versioned report snapshot (the /status ETag).")
	r.Describe("server_report_builds_total", "Report snapshot rebuilds (cache misses after a state change).")
	r.Describe("server_report_hits_total", "Report snapshot reads served from the cached render.")
	r.Describe("transport_frames_total", "Fresh frames handed to the lossy link by rank conns.")
	r.Describe("transport_acked_total", "Frame deliveries acknowledged by the link (incl. parked retries).")
	r.Describe("transport_retries_total", "Failed delivery attempts that were retried with backoff.")
	r.Describe("transport_dropped_total", "Delivery attempts lost to the fault plan's drop rate.")
	r.Describe("transport_corrupted_total", "Delivery attempts that arrived bit-corrupted and were rejected by CRC.")
	r.Describe("transport_duplicated_total", "Deliveries duplicated by the fault plan (ack-loss model).")
	r.Describe("transport_reordered_total", "Frames held in flight and delivered after a newer frame.")
	r.Describe("transport_server_down_rejects_total", "Delivery attempts rejected while the server was crashed/stalled.")
	r.Describe("transport_parked_total", "Frames parked in a retransmit buffer after exhausting retries.")
	r.Describe("transport_records_lost_total", "Records lost to drop-oldest backpressure or abandoned at close.")
	r.Describe("transport_heartbeats_total", "Liveness heartbeats delivered to the server by rank conns.")
	r.Describe("mpi_collectives_total", "Collective operations completed, by kind.")
	r.Describe("mpi_p2p_messages_total", "Point-to-point messages sent.")
	r.Describe("mpi_p2p_bytes_total", "Point-to-point payload bytes sent.")
	r.Describe("cluster_cost_calls_total", "Cost-model evaluations, by kind (compute/p2p/collective/io).")
	r.Describe("run_ranks", "Rank count of the current (or last) pipeline run.")
	r.Describe("lineage_stage_ns", "Per-stage latency of sampled record lineages; outlier buckets carry exemplar trace IDs.")
	r.Describe("lineage_sampled_frames_total", "Frames stamped with a lineage trace ID (roughly 1/SampleEvery of all frames).")
}
