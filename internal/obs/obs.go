package obs

import (
	"sync"
	"time"
)

// Obs bundles a metrics registry and a span tracer, plus the mutable status
// and record providers that the facade wires in when a run starts. A nil
// *Obs is a valid "observability off" value: every accessor returns a
// nil handle whose methods are no-ops, so instrumentation sites never need
// to branch on configuration.
type Obs struct {
	reg    *Registry
	tracer *Tracer
	start  time.Time

	mu        sync.Mutex
	statusFn  func() any
	recordsFn func(cursor int) (any, int)
}

// New creates an observability bundle with the standard family descriptions
// pre-registered.
func New() *Obs {
	o := &Obs{reg: NewRegistry(), tracer: NewTracer(), start: time.Now()}
	describeStandard(o.reg)
	return o
}

// Registry returns the underlying metrics registry (nil when o is nil).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the underlying span tracer (nil when o is nil).
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Counter resolves a counter handle; nil-safe.
func (o *Obs) Counter(name string, labels ...string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(name, labels...)
}

// Gauge resolves a gauge handle; nil-safe.
func (o *Obs) Gauge(name string, labels ...string) *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(name, labels...)
}

// Histogram resolves a histogram handle with default buckets; nil-safe.
func (o *Obs) Histogram(name string, labels ...string) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.Histogram(name, labels...)
}

// HistogramWith resolves a histogram handle with explicit bounds; nil-safe.
func (o *Obs) HistogramWith(name string, bounds []float64, labels ...string) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.HistogramWith(name, bounds, labels...)
}

// Span opens a span on tid; nil-safe (returns a nil *Span whose End is a
// no-op).
func (o *Obs) Span(tid int, name string) *Span {
	if o == nil {
		return nil
	}
	return o.tracer.Start(tid, name)
}

// NameThread names a trace tid; nil-safe.
func (o *Obs) NameThread(tid int, name string) {
	if o == nil {
		return
	}
	o.tracer.NameThread(tid, name)
}

// SetStatus installs the function backing the /status endpoint. The facade
// calls this when a run starts so live polls see the current job.
func (o *Obs) SetStatus(fn func() any) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.statusFn = fn
	o.mu.Unlock()
}

// SetRecords installs the function backing /records?cursor=N. It must
// return the records after the cursor plus the new cursor (the facade wires
// it to Server.RecordsSince).
func (o *Obs) SetRecords(fn func(cursor int) (any, int)) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.recordsFn = fn
	o.mu.Unlock()
}

func (o *Obs) statusSnapshot() (any, bool) {
	o.mu.Lock()
	fn := o.statusFn
	o.mu.Unlock()
	if fn == nil {
		return nil, false
	}
	return fn(), true
}

func (o *Obs) recordsSince(cursor int) (any, int, bool) {
	o.mu.Lock()
	fn := o.recordsFn
	o.mu.Unlock()
	if fn == nil {
		return nil, cursor, false
	}
	recs, next := fn(cursor)
	return recs, next, true
}

// UptimeSeconds returns seconds since New.
func (o *Obs) UptimeSeconds() float64 {
	if o == nil {
		return 0
	}
	return time.Since(o.start).Seconds()
}

// describeStandard registers HELP text for the metric families the pipeline
// exports, so /metrics is self-documenting.
func describeStandard(r *Registry) {
	r.Describe("vm_records_total", "Raw sensor records emitted by Tick/Tock probes across ranks.")
	r.Describe("vm_steps_total", "Interpreted mini-C statements executed across ranks.")
	r.Describe("vm_probe_ns_total", "Virtual nanoseconds charged for Tick/Tock probe overhead (the paper's <4% budget).")
	r.Describe("vm_events_total", "Runtime events seen by baseline sinks, by kind (comp/net/io).")
	r.Describe("vm_time_ns_total", "Virtual nanoseconds per category (comp/net/io) summed across ranks.")
	r.Describe("vm_active_ranks", "Rank goroutines currently executing.")
	r.Describe("detect_records_total", "Raw records consumed by per-rank detectors.")
	r.Describe("detect_slices_total", "Smoothed time-slice analyses completed (one per closed slice).")
	r.Describe("detect_variance_events_total", "Per-process variance events flagged below the threshold.")
	r.Describe("detect_dropped_total", "Records skipped because the short-sensor rule disabled their sensor.")
	r.Describe("server_messages_total", "Batch messages ingested by the analysis server.")
	r.Describe("server_bytes_total", "Encoded bytes ingested by the analysis server.")
	r.Describe("server_records_total", "Slice records ingested by the analysis server.")
	r.Describe("server_batch_bytes", "Size distribution of ingested batch messages.")
	r.Describe("mpi_collectives_total", "Collective operations completed, by kind.")
	r.Describe("mpi_p2p_messages_total", "Point-to-point messages sent.")
	r.Describe("mpi_p2p_bytes_total", "Point-to-point payload bytes sent.")
	r.Describe("cluster_cost_calls_total", "Cost-model evaluations, by kind (compute/p2p/collective/io).")
	r.Describe("run_ranks", "Rank count of the current (or last) pipeline run.")
}
