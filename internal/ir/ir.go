// Package ir builds the intermediate representation that the v-sensor
// identification algorithm operates on. It wraps a parsed mini-C program
// with resolved symbol information: every loop and call site gets a unique
// ID, loop nesting (parents, children, depth) is computed, and the extern
// registry describes functions whose source is unavailable (MPI, libc and
// compute intrinsics), mirroring the paper's treatment of external
// functions (§3.5).
package ir

import (
	"fmt"
	"sort"

	"vsensor/internal/minic"
	"vsensor/internal/resolve"
)

// Program is an analyzed compilation unit.
type Program struct {
	AST     *minic.Program
	Funcs   map[string]*Function
	Globals map[string]*Global
	Loops   []*Loop     // all loops, indexed by Loop.ID
	Calls   []*CallSite // all call sites, indexed by CallSite.ID
	Externs *ExternRegistry
}

// Global is a program-scope variable.
type Global struct {
	Name string
	Decl *minic.GlobalDecl
}

// Function is a user-defined function with its loops and call sites.
type Function struct {
	Name     string
	Decl     *minic.FuncDecl
	Loops    []*Loop     // all loops in this function, outermost first
	TopLoops []*Loop     // depth-0 loops only
	Calls    []*CallSite // all call sites in this function, source order
}

// Param returns the index of the named parameter, or -1.
func (f *Function) Param(name string) int {
	for i, p := range f.Decl.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Loop is a for or while loop occurrence.
type Loop struct {
	ID       int
	Func     *Function
	Stmt     minic.Stmt // *minic.ForStmt or *minic.WhileStmt
	Body     *minic.BlockStmt
	Parent   *Loop // enclosing loop within the same function, or nil
	Children []*Loop
	Depth    int    // 0 = outermost loop of its function
	IndVar   string // induction variable name; "" if not canonical (while)
	Pos      minic.Pos
}

// Ancestors returns the chain of enclosing loops, innermost first,
// starting at the loop's parent.
func (l *Loop) Ancestors() []*Loop {
	var out []*Loop
	for p := l.Parent; p != nil; p = p.Parent {
		out = append(out, p)
	}
	return out
}

// String identifies the loop for diagnostics.
func (l *Loop) String() string {
	return fmt.Sprintf("loop#%d(%s@%s)", l.ID, l.Func.Name, l.Pos)
}

// CallSite is a single call occurrence.
type CallSite struct {
	ID     int
	Func   *Function // containing function
	Call   *minic.CallExpr
	Loop   *Loop // innermost enclosing loop, or nil
	Callee string
	Pos    minic.Pos
}

// Ancestors returns the enclosing loops of the call site, innermost first.
func (c *CallSite) Ancestors() []*Loop {
	var out []*Loop
	for l := c.Loop; l != nil; l = l.Parent {
		out = append(out, l)
	}
	return out
}

// String identifies the call site for diagnostics.
func (c *CallSite) String() string {
	return fmt.Sprintf("call#%d(%s->%s@%s)", c.ID, c.Func.Name, c.Callee, c.Pos)
}

// Build resolves a parsed program into IR form using the default extern
// registry. It verifies that every called name is either a defined function
// or a described/describable extern and that globals and functions are
// uniquely named.
func Build(ast *minic.Program) (*Program, error) {
	return BuildWithExterns(ast, DefaultExterns())
}

// BuildWithExterns is Build with a caller-supplied extern registry
// (users may describe the behaviour of additional external functions,
// paper §3.5).
func BuildWithExterns(ast *minic.Program, ext *ExternRegistry) (*Program, error) {
	p := &Program{
		AST:     ast,
		Funcs:   make(map[string]*Function),
		Globals: make(map[string]*Global),
		Externs: ext,
	}
	for _, g := range ast.Globals {
		if _, dup := p.Globals[g.Name]; dup {
			return nil, fmt.Errorf("%s: duplicate global %q", g.Pos(), g.Name)
		}
		p.Globals[g.Name] = &Global{Name: g.Name, Decl: g}
	}
	for _, f := range ast.Funcs {
		if _, dup := p.Funcs[f.Name]; dup {
			return nil, fmt.Errorf("%s: duplicate function %q", f.Pos(), f.Name)
		}
		if p.Externs.Lookup(f.Name) != nil {
			return nil, fmt.Errorf("%s: function %q shadows a builtin", f.Pos(), f.Name)
		}
		p.Funcs[f.Name] = &Function{Name: f.Name, Decl: f}
	}
	for _, f := range ast.Funcs {
		if err := p.indexFunction(p.Funcs[f.Name]); err != nil {
			return nil, err
		}
	}
	// Validate call targets.
	for _, c := range p.Calls {
		if _, ok := p.Funcs[c.Callee]; ok {
			continue
		}
		if p.Externs.Lookup(c.Callee) != nil {
			continue
		}
		// Unknown extern: permitted, treated conservatively (never-fixed),
		// like an undescribed external function in the paper.
	}
	// Slot-resolution pass: address every identifier to a frame/global slot
	// and pre-bind call dispatch, so the VM runs over flat frames.
	resolve.Resolve(ast)
	return p, nil
}

// MustBuild builds or panics; for tests and embedded apps.
func MustBuild(ast *minic.Program) *Program {
	p, err := Build(ast)
	if err != nil {
		panic(err)
	}
	return p
}

// indexFunction walks fn's body assigning loop/call IDs and nesting.
func (p *Program) indexFunction(fn *Function) error {
	var loopStack []*Loop

	var walkExpr func(e minic.Expr)
	walkExpr = func(e minic.Expr) {
		minic.WalkExprs(e, func(x minic.Expr) {
			call, ok := x.(*minic.CallExpr)
			if !ok {
				return
			}
			cs := &CallSite{
				ID:     len(p.Calls),
				Func:   fn,
				Call:   call,
				Callee: call.Name,
				Pos:    call.Pos(),
			}
			if len(loopStack) > 0 {
				cs.Loop = loopStack[len(loopStack)-1]
			}
			call.CallID = cs.ID
			p.Calls = append(p.Calls, cs)
			fn.Calls = append(fn.Calls, cs)
		})
	}

	var walkStmt func(s minic.Stmt) error
	walkStmts := func(list []minic.Stmt) error {
		for _, s := range list {
			if err := walkStmt(s); err != nil {
				return err
			}
		}
		return nil
	}
	walkStmt = func(s minic.Stmt) error {
		switch st := s.(type) {
		case nil:
			return nil
		case *minic.BlockStmt:
			return walkStmts(st.Stmts)
		case *minic.VarDecl:
			walkExpr(st.Init)
			walkExpr(st.Len)
		case *minic.AssignStmt:
			walkExpr(st.Target)
			walkExpr(st.Value)
		case *minic.IfStmt:
			walkExpr(st.Cond)
			if err := walkStmt(st.Then); err != nil {
				return err
			}
			return walkStmt(st.Else)
		case *minic.ForStmt:
			loop := p.pushLoop(fn, st, st.Body, st.Pos(), &loopStack)
			st.LoopID = loop.ID
			loop.IndVar = forIndVar(st)
			// Header expressions belong to the loop's *parent* context for
			// call indexing; but charging them to the loop is harmless and
			// matches treating the whole for statement as the snippet.
			if err := walkStmt(st.Init); err != nil {
				return err
			}
			walkExpr(st.Cond)
			if err := walkStmt(st.Post); err != nil {
				return err
			}
			err := walkStmt(st.Body)
			loopStack = loopStack[:len(loopStack)-1]
			return err
		case *minic.WhileStmt:
			loop := p.pushLoop(fn, st, st.Body, st.Pos(), &loopStack)
			st.LoopID = loop.ID
			walkExpr(st.Cond)
			err := walkStmt(st.Body)
			loopStack = loopStack[:len(loopStack)-1]
			return err
		case *minic.ReturnStmt:
			walkExpr(st.Value)
		case *minic.ExprStmt:
			walkExpr(st.X)
		}
		return nil
	}
	return walkStmt(fn.Decl.Body)
}

func (p *Program) pushLoop(fn *Function, s minic.Stmt, body *minic.BlockStmt, pos minic.Pos, stack *[]*Loop) *Loop {
	loop := &Loop{
		ID:   len(p.Loops),
		Func: fn,
		Stmt: s,
		Body: body,
		Pos:  pos,
	}
	if n := len(*stack); n > 0 {
		loop.Parent = (*stack)[n-1]
		loop.Parent.Children = append(loop.Parent.Children, loop)
		loop.Depth = loop.Parent.Depth + 1
	}
	p.Loops = append(p.Loops, loop)
	fn.Loops = append(fn.Loops, loop)
	if loop.Depth == 0 {
		fn.TopLoops = append(fn.TopLoops, loop)
	}
	*stack = append(*stack, loop)
	return loop
}

// forIndVar identifies the canonical induction variable of a for loop:
// the variable declared or assigned in the init clause and updated in the
// post clause. Returns "" when the loop is not in canonical form.
func forIndVar(st *minic.ForStmt) string {
	var initVar, postVar string
	switch init := st.Init.(type) {
	case *minic.VarDecl:
		initVar = init.Name
	case *minic.AssignStmt:
		if id, ok := init.Target.(*minic.Ident); ok {
			initVar = id.Name
		}
	}
	if post, ok := st.Post.(*minic.AssignStmt); ok {
		if id, ok := post.Target.(*minic.Ident); ok {
			postVar = id.Name
		}
	}
	switch {
	case initVar != "" && (postVar == "" || postVar == initVar):
		return initVar
	case initVar == "" && postVar != "":
		return postVar
	}
	return ""
}

// FuncNames returns the defined function names in sorted order.
func (p *Program) FuncNames() []string {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LoopOf returns the loop with the given ID.
func (p *Program) LoopOf(id int) *Loop { return p.Loops[id] }

// CallOf returns the call site with the given ID.
func (p *Program) CallOf(id int) *CallSite { return p.Calls[id] }
