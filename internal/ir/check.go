package ir

import (
	"fmt"

	"vsensor/internal/minic"
)

// Check performs semantic analysis on a built program and returns all
// diagnostics found: undeclared variables, arity mismatches on defined
// functions and described externs, value use of void calls, indexing of
// scalars, assignment to loop induction variables of the wrong shape,
// break/continue outside loops, and duplicate parameter names. Calls to
// unknown extern functions are NOT errors — the paper treats undescribed
// externals as legal, never-fixed-workload calls (§3.5).
func Check(p *Program) []error {
	c := &checker{prog: p}
	for _, f := range p.AST.Funcs {
		c.checkFunc(f)
	}
	return c.errs
}

// CheckStrict is Check but returns the first diagnostic as an error,
// suitable for gating a pipeline.
func CheckStrict(p *Program) error {
	if errs := Check(p); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

type checker struct {
	prog *Program
	errs []error

	fn        *minic.FuncDecl
	scopes    []map[string]minic.Type
	loopDepth int
}

func (c *checker) errf(pos minic.Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]minic.Type{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos minic.Pos, name string, t minic.Type) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errf(pos, "%s redeclared in the same scope", name)
	}
	top[name] = t
}

// lookup resolves a name to its type; the second result reports whether it
// was found (locals shadow globals).
func (c *checker) lookup(name string) (minic.Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	if g, ok := c.prog.Globals[name]; ok {
		return g.Decl.Type, true
	}
	return minic.TypeVoid, false
}

func (c *checker) checkFunc(f *minic.FuncDecl) {
	c.fn = f
	c.loopDepth = 0
	c.scopes = nil
	c.push()
	seen := map[string]bool{}
	for _, prm := range f.Params {
		if seen[prm.Name] {
			c.errf(prm.NamePos, "duplicate parameter %s in %s", prm.Name, f.Name)
		}
		seen[prm.Name] = true
		c.declare(prm.NamePos, prm.Name, prm.Type)
	}
	c.checkBlock(f.Body)
	c.pop()
}

func (c *checker) checkBlock(b *minic.BlockStmt) {
	c.push()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.pop()
}

func (c *checker) checkStmt(s minic.Stmt) {
	switch st := s.(type) {
	case nil:
	case *minic.BlockStmt:
		c.checkBlock(st)
	case *minic.VarDecl:
		if st.Len != nil {
			c.checkExpr(st.Len, false)
		}
		if st.Init != nil {
			c.checkExpr(st.Init, true)
		}
		c.declare(st.NamePos, st.Name, st.Type)
	case *minic.AssignStmt:
		c.checkAssign(st)
	case *minic.IfStmt:
		c.checkExpr(st.Cond, true)
		c.checkBlock(st.Then)
		c.checkStmt(st.Else)
	case *minic.ForStmt:
		c.push() // init-declared variable scope
		c.checkStmt(st.Init)
		if st.Cond != nil {
			c.checkExpr(st.Cond, true)
		}
		c.checkStmt(st.Post)
		c.loopDepth++
		c.checkBlock(st.Body)
		c.loopDepth--
		c.pop()
	case *minic.WhileStmt:
		c.checkExpr(st.Cond, true)
		c.loopDepth++
		c.checkBlock(st.Body)
		c.loopDepth--
	case *minic.ReturnStmt:
		if st.Value != nil {
			if c.fn.Ret == minic.TypeVoid {
				c.errf(st.Pos(), "%s returns a value but is void", c.fn.Name)
			}
			c.checkExpr(st.Value, true)
		} else if c.fn.Ret != minic.TypeVoid {
			c.errf(st.Pos(), "%s must return a %s value", c.fn.Name, c.fn.Ret)
		}
	case *minic.BreakStmt:
		if c.loopDepth == 0 {
			c.errf(st.Pos(), "break outside loop")
		}
	case *minic.ContinueStmt:
		if c.loopDepth == 0 {
			c.errf(st.Pos(), "continue outside loop")
		}
	case *minic.ExprStmt:
		if _, ok := st.X.(*minic.CallExpr); !ok {
			c.errf(st.Pos(), "expression statement must be a call")
			return
		}
		c.checkExpr(st.X, false)
	}
}

func (c *checker) checkAssign(st *minic.AssignStmt) {
	c.checkExpr(st.Value, true)
	switch tgt := st.Target.(type) {
	case *minic.Ident:
		t, ok := c.lookup(tgt.Name)
		if !ok {
			c.errf(tgt.Pos(), "assignment to undeclared variable %s", tgt.Name)
			return
		}
		if t.IsArray() {
			c.errf(tgt.Pos(), "cannot assign to whole array %s", tgt.Name)
		}
	case *minic.IndexExpr:
		c.checkIndex(tgt)
	}
}

func (c *checker) checkIndex(x *minic.IndexExpr) {
	t, ok := c.lookup(x.Array.Name)
	if !ok {
		c.errf(x.Pos(), "indexing undeclared variable %s", x.Array.Name)
		return
	}
	if !t.IsArray() {
		c.errf(x.Pos(), "indexing non-array %s (type %s)", x.Array.Name, t)
	}
	c.checkExpr(x.Index, true)
}

// checkExpr validates an expression; wantValue reports whether the context
// consumes the result.
func (c *checker) checkExpr(e minic.Expr, wantValue bool) {
	switch x := e.(type) {
	case nil:
	case *minic.IntLit, *minic.FloatLit:
	case *minic.StringLit:
		// Only print() may take string arguments; checked at the call.
	case *minic.Ident:
		t, ok := c.lookup(x.Name)
		if !ok {
			c.errf(x.Pos(), "undeclared variable %s", x.Name)
			return
		}
		if wantValue && t.IsArray() {
			// Arrays may be passed to calls (handled there); a bare array
			// in arithmetic is an error caught by the parent context.
			return
		}
	case *minic.IndexExpr:
		c.checkIndex(x)
	case *minic.UnaryExpr:
		c.checkExpr(x.X, true)
	case *minic.BinaryExpr:
		c.checkOperand(x.X)
		c.checkOperand(x.Y)
	case *minic.CallExpr:
		c.checkCall(x, wantValue)
	}
}

// checkOperand validates an arithmetic operand: whole arrays cannot take
// part in arithmetic.
func (c *checker) checkOperand(e minic.Expr) {
	if id, ok := e.(*minic.Ident); ok {
		if t, found := c.lookup(id.Name); found && t.IsArray() {
			c.errf(id.Pos(), "array %s used in arithmetic", id.Name)
			return
		}
	}
	if _, ok := e.(*minic.StringLit); ok {
		c.errf(e.Pos(), "string literal used in arithmetic")
		return
	}
	c.checkExpr(e, true)
}

func (c *checker) checkCall(call *minic.CallExpr, wantValue bool) {
	// print accepts anything, including strings.
	if call.Name == "print" {
		for _, a := range call.Args {
			if _, isStr := a.(*minic.StringLit); isStr {
				continue
			}
			c.checkExpr(a, true)
		}
		return
	}
	for _, a := range call.Args {
		if _, isStr := a.(*minic.StringLit); isStr {
			c.errf(a.Pos(), "string argument outside print()")
			continue
		}
		c.checkExpr(a, true)
	}

	if fn, ok := c.prog.Funcs[call.Name]; ok {
		if len(call.Args) != len(fn.Decl.Params) {
			c.errf(call.Pos(), "%s expects %d arguments, got %d", call.Name, len(fn.Decl.Params), len(call.Args))
		}
		if wantValue && fn.Decl.Ret == minic.TypeVoid {
			c.errf(call.Pos(), "void function %s used as a value", call.Name)
		}
		return
	}
	if d := c.prog.Externs.Lookup(call.Name); d != nil {
		if wantValue && !d.Returns {
			c.errf(call.Pos(), "void builtin %s used as a value", call.Name)
		}
		for _, idx := range d.WorkArgs {
			if idx >= len(call.Args) {
				c.errf(call.Pos(), "%s needs at least %d arguments", call.Name, idx+1)
				break
			}
		}
		return
	}
	// Unknown extern: legal (never-fixed workload). vs_tick/vs_tock from
	// instrumented source also land here when run without IR marking.
}
