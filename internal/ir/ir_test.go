package ir

import (
	"testing"

	"vsensor/internal/minic"
)

const figure4Src = `
global int GLBV = 40;

func foo(int x, int y) int {
    int value = 0;
    for (int i = 0; i < x; i++) {      // L0 in foo
        value += y;
        for (int j = 0; j < 10; j++) { // L1 nested
            value -= 1;
        }
    }
    if (x > GLBV) {
        value -= x * y;
    }
    return value;
}

func main() {
    int count = 0;
    for (int n = 0; n < 100; n++) {         // outer
        for (int k = 0; k < 10; k++) {      // L2
            foo(n, k);
            foo(k, n);
        }
        for (int k = 0; k < 10; k++) {      // L3
            count++;
        }
        mpi_barrier();
    }
}
`

func build(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Build(minic.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildFigure4(t *testing.T) {
	p := build(t, figure4Src)

	foo := p.Funcs["foo"]
	if len(foo.Loops) != 2 || len(foo.TopLoops) != 1 {
		t.Fatalf("foo loops=%d top=%d", len(foo.Loops), len(foo.TopLoops))
	}
	outer := foo.TopLoops[0]
	if outer.IndVar != "i" || outer.Depth != 0 {
		t.Errorf("foo outer loop: indvar=%q depth=%d", outer.IndVar, outer.Depth)
	}
	if len(outer.Children) != 1 || outer.Children[0].IndVar != "j" || outer.Children[0].Depth != 1 {
		t.Errorf("foo inner loop wrong: %+v", outer.Children)
	}

	main := p.Funcs["main"]
	if len(main.TopLoops) != 1 || len(main.Loops) != 3 {
		t.Fatalf("main loops=%d top=%d", len(main.Loops), len(main.TopLoops))
	}
	mainOuter := main.TopLoops[0]
	if mainOuter.IndVar != "n" || len(mainOuter.Children) != 2 {
		t.Errorf("main outer: %q children=%d", mainOuter.IndVar, len(mainOuter.Children))
	}

	// Calls: foo×2, mpi_barrier in main.
	if len(main.Calls) != 3 {
		t.Fatalf("main calls = %d", len(main.Calls))
	}
	if main.Calls[0].Callee != "foo" || main.Calls[0].Loop == nil || main.Calls[0].Loop.IndVar != "k" {
		t.Errorf("call 0: %+v", main.Calls[0])
	}
	if main.Calls[2].Callee != "mpi_barrier" || main.Calls[2].Loop != mainOuter {
		t.Errorf("barrier call site wrong: %+v", main.Calls[2])
	}

	// Ancestor chains.
	anc := main.Calls[0].Ancestors()
	if len(anc) != 2 || anc[0].IndVar != "k" || anc[1].IndVar != "n" {
		t.Errorf("ancestors of foo(n,k) call: %v", anc)
	}
}

func TestLoopIDsMatchAST(t *testing.T) {
	p := build(t, figure4Src)
	for _, l := range p.Loops {
		switch st := l.Stmt.(type) {
		case *minic.ForStmt:
			if st.LoopID != l.ID {
				t.Errorf("loop %d AST id %d", l.ID, st.LoopID)
			}
		case *minic.WhileStmt:
			if st.LoopID != l.ID {
				t.Errorf("loop %d AST id %d", l.ID, st.LoopID)
			}
		}
		if p.LoopOf(l.ID) != l {
			t.Errorf("LoopOf(%d) mismatch", l.ID)
		}
	}
	for _, c := range p.Calls {
		if c.Call.CallID != c.ID || p.CallOf(c.ID) != c {
			t.Errorf("call id mismatch: %+v", c)
		}
	}
}

func TestWhileLoopIndexing(t *testing.T) {
	p := build(t, `func f() { int x = 100; while (x > 0) { x--; flops(10); } }`)
	f := p.Funcs["f"]
	if len(f.Loops) != 1 || f.Loops[0].IndVar != "" {
		t.Fatalf("while loop: %+v", f.Loops)
	}
	if len(f.Calls) != 1 || f.Calls[0].Loop != f.Loops[0] {
		t.Fatalf("call in while: %+v", f.Calls)
	}
}

func TestCallsInHeadersAndConditions(t *testing.T) {
	p := build(t, `
func g() int { return 3; }
func f() {
    for (int i = 0; i < g(); i++) { }
    if (g() > 2) { }
    int z = g();
}`)
	f := p.Funcs["f"]
	if len(f.Calls) != 3 {
		t.Fatalf("calls = %d, want 3 (header, cond, init)", len(f.Calls))
	}
}

func TestDuplicateErrors(t *testing.T) {
	if _, err := Build(minic.MustParse("func f() {}\nfunc f() {}")); err == nil {
		t.Error("duplicate function not rejected")
	}
	if _, err := Build(minic.MustParse("global int x = 1;\nglobal int x = 2;")); err == nil {
		t.Error("duplicate global not rejected")
	}
	if _, err := Build(minic.MustParse("func flops(int n) {}")); err == nil {
		t.Error("builtin shadowing not rejected")
	}
}

func TestExternRegistry(t *testing.T) {
	r := DefaultExterns()
	send := r.Lookup("mpi_send")
	if send == nil || send.Type != Network || len(send.WorkArgs) != 1 || send.WorkArgs[0] != 1 {
		t.Fatalf("mpi_send desc: %+v", send)
	}
	if d := r.Lookup("print"); d == nil || d.Fixed {
		t.Errorf("print should be never-fixed: %+v", d)
	}
	if d := r.Lookup("mpi_comm_rank"); d == nil || !d.RankSource || d.Value != ValueRank {
		t.Errorf("mpi_comm_rank desc: %+v", d)
	}
	if r.Lookup("no_such_fn") != nil {
		t.Error("unknown extern should be nil")
	}

	// Clone isolation.
	c := r.Clone()
	c.Register(ExternDesc{Name: "print", Type: IO, Fixed: true})
	if r.Lookup("print").Fixed {
		t.Error("Clone leaked registration into source registry")
	}
	if !c.Lookup("print").Fixed {
		t.Error("Clone registration missing")
	}
}

func TestSnippetTypeString(t *testing.T) {
	if Computation.String() != "Comp" || Network.String() != "Net" || IO.String() != "IO" {
		t.Error("SnippetType names wrong")
	}
}

func TestForIndVarVariants(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"func f() { for (int i = 0; i < 3; i++) { } }", "i"},
		{"func f() { int i; for (i = 0; i < 3; i++) { } }", "i"},
		{"func f() { int i = 0; for (; i < 3; i++) { } }", "i"},
		{"func f() { int i; int j; for (i = 0; i < 3; j++) { } }", ""}, // mismatched
	}
	for _, c := range cases {
		p := build(t, c.src)
		got := p.Funcs["f"].Loops[0].IndVar
		if got != c.want {
			t.Errorf("%s: indvar = %q, want %q", c.src, got, c.want)
		}
	}
}
