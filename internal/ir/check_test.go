package ir

import (
	"strings"
	"testing"

	"vsensor/internal/minic"
)

func checkSrc(t *testing.T, src string) []error {
	t.Helper()
	p, err := Build(minic.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return Check(p)
}

func wantDiag(t *testing.T, src, substr string) {
	t.Helper()
	errs := checkSrc(t, src)
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return
		}
	}
	t.Errorf("missing diagnostic %q; got %v", substr, errs)
}

func wantClean(t *testing.T, src string) {
	t.Helper()
	if errs := checkSrc(t, src); len(errs) != 0 {
		t.Errorf("unexpected diagnostics: %v", errs)
	}
}

func TestCheckCleanPrograms(t *testing.T) {
	wantClean(t, `
global int N = 8;
global float A[16];

func helper(int x, float data[]) float {
    float acc = 0.0;
    for (int i = 0; i < x; i++) {
        acc += data[i];
        if (acc > 10.0) {
            break;
        }
    }
    return acc;
}

func main() {
    int rank = mpi_comm_rank();
    float r = helper(N, A);
    print("r", r, rank);
    while (r > 1.0) {
        r /= 2.0;
        continue;
    }
    unknown_extern_is_fine();
}`)
}

func TestCheckUndeclared(t *testing.T) {
	wantDiag(t, `func main() { int x = y + 1; }`, "undeclared variable y")
	wantDiag(t, `func main() { z = 1; }`, "undeclared variable z")
	wantDiag(t, `func main() { q[0] = 1; }`, "indexing undeclared")
}

func TestCheckScoping(t *testing.T) {
	// Block scoping: a name declared inside a block is not visible after.
	wantDiag(t, `
func main() {
    if (1 == 1) {
        int inner = 3;
    }
    int x = inner;
}`, "undeclared variable inner")
	// For-init variables are visible in the body, not after.
	wantDiag(t, `
func main() {
    for (int i = 0; i < 3; i++) { }
    int x = i;
}`, "undeclared variable i")
	wantClean(t, `
func main() {
    for (int i = 0; i < 3; i++) {
        int d = i * 2;
        flops(d);
    }
}`)
	// Same-scope redeclaration.
	wantDiag(t, `func main() { int a = 1; int a = 2; }`, "redeclared")
	// Shadowing in a nested scope is legal.
	wantClean(t, `func main() { int a = 1; if (a > 0) { int a = 2; flops(a); } }`)
}

func TestCheckArity(t *testing.T) {
	wantDiag(t, `
func f(int a, int b) int { return a + b; }
func main() { f(1); }`, "expects 2 arguments")
	wantDiag(t, `func main() { flops(); }`, "needs at least 1 arguments")
	wantDiag(t, `
func f(int a) { flops(a); }
func main() { int x = f(1); }`, "void function f used as a value")
	wantDiag(t, `func main() { int x = mpi_barrier(); }`, "void builtin")
}

func TestCheckArraysAndStrings(t *testing.T) {
	wantDiag(t, `func main() { int x = 1; x[0] = 2; }`, "indexing non-array")
	wantDiag(t, `func main() { int a[4]; a = 3; }`, "cannot assign to whole array")
	wantDiag(t, `func main() { int a[4]; int x = a + 1; }`, "array a used in arithmetic")
	wantDiag(t, `func main() { flops("nope"); }`, "string argument outside print")
	wantClean(t, `func main() { print("ok", 1); }`)
}

func TestCheckControlFlow(t *testing.T) {
	wantDiag(t, `func main() { break; }`, "break outside loop")
	wantDiag(t, `func main() { continue; }`, "continue outside loop")
	wantDiag(t, `func f() { return 3; }`, "returns a value but is void")
	wantDiag(t, `func f() int { return; }
func main() { f(); }`, "must return a int value")
	wantDiag(t, `
func f(int a, int a) { flops(a); }`, "duplicate parameter")
}

func TestCheckStrict(t *testing.T) {
	p, err := Build(minic.MustParse(`func main() { boomvar = 1; }`))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStrict(p); err == nil {
		t.Error("CheckStrict should fail")
	}
	p2, err := Build(minic.MustParse(`func main() { flops(1); }`))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStrict(p2); err != nil {
		t.Errorf("CheckStrict on clean program: %v", err)
	}
}

// Every bundled mini app passes the checker.
func TestCheckAppsViaInstrumentedSource(t *testing.T) {
	// (apps package would create an import cycle here; the instrumented-
	// source test at the vm level covers the apps. This test covers the
	// vs_tick path: instrumented source with unknown probes is legal.)
	wantClean(t, `
func main() {
    for (int i = 0; i < 3; i++) {
        vs_tick(0);
        flops(5);
        vs_tock(0);
    }
}`)
}
