package ir

import (
	"strings"
	"testing"

	"vsensor/internal/minic"
)

func TestHelperAccessors(t *testing.T) {
	p := build(t, `
global int G = 1;
func foo(int a, float b) int {
    for (int i = 0; i < a; i++) {
        flops(1);
    }
    return a;
}
func main() {
    for (int n = 0; n < 3; n++) {
        foo(n, 1.5);
    }
}`)
	foo := p.Funcs["foo"]
	if foo.Param("a") != 0 || foo.Param("b") != 1 || foo.Param("zz") != -1 {
		t.Error("Param lookup wrong")
	}
	names := p.FuncNames()
	if len(names) != 2 || names[0] != "foo" || names[1] != "main" {
		t.Errorf("FuncNames = %v", names)
	}
	// Ancestors of a loop with no parent is empty.
	if len(foo.TopLoops[0].Ancestors()) != 0 {
		t.Error("top loop should have no ancestors")
	}
	// String renderings identify the construct.
	if s := foo.TopLoops[0].String(); !strings.Contains(s, "foo") || !strings.Contains(s, "loop#") {
		t.Errorf("loop String = %q", s)
	}
	call := p.Funcs["main"].Calls[0]
	if s := call.String(); !strings.Contains(s, "main->foo") {
		t.Errorf("call String = %q", s)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid programs")
		}
	}()
	MustBuild(minic.MustParse("func f() {}\nfunc f() {}"))
}

func TestMustBuildOK(t *testing.T) {
	p := MustBuild(minic.MustParse("func main() { flops(1); }"))
	if p == nil || len(p.Calls) != 1 {
		t.Error("MustBuild result wrong")
	}
}

func TestExternNames(t *testing.T) {
	r := DefaultExterns()
	names := r.Names()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"mpi_send", "flops", "print", "io_read"} {
		if !found[want] {
			t.Errorf("Names missing %q", want)
		}
	}
}

func TestTypeHelpers(t *testing.T) {
	if minic.TypeIntArray.Elem() != minic.TypeInt || minic.TypeFloatArray.Elem() != minic.TypeFloat {
		t.Error("Elem wrong")
	}
	if minic.TypeInt.Elem() != minic.TypeInt {
		t.Error("Elem of scalar should be identity")
	}
	if !minic.TypeIntArray.IsArray() || minic.TypeFloat.IsArray() {
		t.Error("IsArray wrong")
	}
	for _, typ := range []minic.Type{minic.TypeVoid, minic.TypeInt, minic.TypeFloat, minic.TypeIntArray, minic.TypeFloatArray} {
		if typ.String() == "?" {
			t.Errorf("type %d has no name", typ)
		}
	}
}
