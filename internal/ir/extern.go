package ir

// SnippetType classifies what system component a snippet exercises
// (paper §3.1): computation, network, or IO. The type of a v-sensor tells
// the runtime which component a detected variance implicates.
type SnippetType int

// Snippet types.
const (
	Computation SnippetType = iota
	Network
	IO
)

// String names the snippet type like the paper's tables ("Comp", "Net", "IO").
func (t SnippetType) String() string {
	switch t {
	case Computation:
		return "Comp"
	case Network:
		return "Net"
	case IO:
		return "IO"
	}
	return "?"
}

// ExternDesc describes the workload behaviour of an external function whose
// source is unavailable (paper §3.5). The default registry covers the MPI
// and libc-like builtins of the mini-C runtime; users may register more.
type ExternDesc struct {
	Name string
	Type SnippetType

	// Fixed reports whether the call's workload is determined entirely by
	// its arguments. Undescribed externs are never fixed (conservative
	// default: snippets containing them are never v-sensors).
	Fixed bool

	// WorkArgs are the indices of arguments that determine the quantity of
	// work (e.g. the message size of a send). The call is a fixed-workload
	// snippet only when every work argument is invariant.
	WorkArgs []int

	// StaticRuleArgs are argument indices usable as additional *static*
	// rules (e.g. communication destination, §3.1). They are checked only
	// when Config.UseStaticRules enables them.
	StaticRuleArgs []int

	// RankSource marks functions whose result identifies the calling
	// process (mpi_comm_rank, gethostname). Values derived from them make
	// workloads process-dependent (§3.4).
	RankSource bool

	// WritesGlobals marks externs that may modify program globals. None of
	// the builtins do; an undescribed extern is assumed to.
	WritesGlobals bool

	// Returns reports whether the extern produces a value.
	Returns bool

	// Value classifies the returned value's provenance for dependence
	// propagation: a pure function of the arguments, the process identity,
	// or unpredictable (data-dependent / random / received from a peer).
	Value ValueSource
}

// ValueSource classifies an extern's return value for dependence analysis.
type ValueSource int

// Value sources.
const (
	// ValueOfArgs: the result is a pure function of the arguments
	// (abs, min, sqrt, mpi_comm_size — constant for a given run).
	ValueOfArgs ValueSource = iota
	// ValueRank: the result identifies the calling process.
	ValueRank
	// ValueUnpredictable: the result cannot be predicted statically
	// (received data, IO contents, random numbers).
	ValueUnpredictable
)

// ExternRegistry maps extern function names to their descriptions.
type ExternRegistry struct {
	byName map[string]*ExternDesc
}

// NewExternRegistry returns an empty registry.
func NewExternRegistry() *ExternRegistry {
	return &ExternRegistry{byName: make(map[string]*ExternDesc)}
}

// Register adds or replaces a description.
func (r *ExternRegistry) Register(d ExternDesc) {
	cp := d
	r.byName[d.Name] = &cp
}

// Lookup returns the description for name, or nil if undescribed.
func (r *ExternRegistry) Lookup(name string) *ExternDesc {
	return r.byName[name]
}

// Names returns all registered extern names (unordered).
func (r *ExternRegistry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	return out
}

// Clone returns a deep copy, so user registrations don't mutate the default.
func (r *ExternRegistry) Clone() *ExternRegistry {
	c := NewExternRegistry()
	for _, d := range r.byName {
		c.Register(*d)
	}
	return c
}

// DefaultExterns returns descriptions for the built-in runtime functions:
// the MPI-like message-passing layer, IO operations, compute intrinsics and
// common libc-style helpers — the equivalent of the paper's "default
// descriptions for common functions in Lib-C and MPI library".
func DefaultExterns() *ExternRegistry {
	r := NewExternRegistry()
	for _, d := range []ExternDesc{
		// Process identity.
		{Name: "mpi_comm_rank", Type: Computation, Fixed: true, RankSource: true, Returns: true, Value: ValueRank},
		{Name: "mpi_comm_size", Type: Computation, Fixed: true, Returns: true},

		// Collectives: workload depends on element count (arg 0 where present).
		{Name: "mpi_barrier", Type: Network, Fixed: true},
		{Name: "mpi_allreduce", Type: Network, Fixed: true, WorkArgs: []int{0}, Returns: true, Value: ValueUnpredictable},
		{Name: "mpi_alltoall", Type: Network, Fixed: true, WorkArgs: []int{0}},
		{Name: "mpi_bcast", Type: Network, Fixed: true, WorkArgs: []int{1}, StaticRuleArgs: []int{0}, Returns: true, Value: ValueUnpredictable},
		{Name: "mpi_reduce", Type: Network, Fixed: true, WorkArgs: []int{1}, StaticRuleArgs: []int{0}, Returns: true, Value: ValueUnpredictable},

		// Point-to-point: size argument is workload; peer is a static rule.
		{Name: "mpi_send", Type: Network, Fixed: true, WorkArgs: []int{1}, StaticRuleArgs: []int{0}},
		{Name: "mpi_recv", Type: Network, Fixed: true, WorkArgs: []int{1}, StaticRuleArgs: []int{0}, Returns: true, Value: ValueUnpredictable},
		{Name: "mpi_sendrecv", Type: Network, Fixed: true, WorkArgs: []int{1}, StaticRuleArgs: []int{0}},

		// Nonblocking point-to-point. Posting has a fixed cost determined
		// by the size argument; the request handle must not drive control
		// flow (unpredictable). mpi_wait's workload depends on whichever
		// request it completes, which is not statically known, so it is
		// never-fixed — the same conservative stance the paper takes for
		// undescribed behaviour (§3.5).
		{Name: "mpi_isend", Type: Network, Fixed: true, WorkArgs: []int{1}, StaticRuleArgs: []int{0}, Returns: true, Value: ValueUnpredictable},
		{Name: "mpi_irecv", Type: Network, Fixed: true, WorkArgs: []int{1}, StaticRuleArgs: []int{0}, Returns: true, Value: ValueUnpredictable},
		{Name: "mpi_wait", Type: Network, Fixed: false, Returns: true, Value: ValueUnpredictable},

		// IO: size argument is the workload.
		{Name: "io_read", Type: IO, Fixed: true, WorkArgs: []int{0}, Returns: true, Value: ValueUnpredictable},
		{Name: "io_write", Type: IO, Fixed: true, WorkArgs: []int{0}},

		// Compute intrinsics: cost scales with the argument.
		{Name: "flops", Type: Computation, Fixed: true, WorkArgs: []int{0}},
		{Name: "mem", Type: Computation, Fixed: true, WorkArgs: []int{0}},

		// Libc-style helpers. print is never-fixed by default, matching the
		// paper's conservative treatment of printf.
		{Name: "print", Type: IO, Fixed: false},
		{Name: "abs_i", Type: Computation, Fixed: true, Returns: true},
		{Name: "min_i", Type: Computation, Fixed: true, Returns: true},
		{Name: "max_i", Type: Computation, Fixed: true, Returns: true},
		{Name: "sqrt_f", Type: Computation, Fixed: true, Returns: true},
		{Name: "rand_i", Type: Computation, Fixed: true, Returns: true, Value: ValueUnpredictable},
	} {
		r.Register(d)
	}
	return r
}
