package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/storage"
)

// The kill-and-recover conformance property: for ANY randomized scenario —
// delivery faults, group-commit window, snapshot cadence, disk faults
// (torn writes, lying fsyncs, bit rot), and 1–3 crashes at arbitrary
// points — Crash + Recover + resumed redelivery from the recovered LSN
// must leave the server EXACTLY equal to one that never crashed: same
// record log, same coverage counters, same outlier verdicts.
//
// The dense-LSN design makes "resume from the recovered LSN" well defined:
// every Receive outcome (ingest, dup, checksum reject, framing reject,
// heartbeat) advances the LSN by exactly one — a coalesced entry covers a
// run of outcomes and carries the last one's LSN — so the recovered LSN IS
// the count of delivery-schedule items whose effects survived.
// Redelivering schedule[LSN:] replays the lost suffix through the
// identical state machine, for the per-op, group-commit, and coalescing
// encoders alike.

// durableTrial is one randomized kill-and-recover scenario's tuning.
type durableTrial struct {
	syncEvery  int
	flushEvery int  // > 1 selects the group-commit encoder
	coalesce   bool // collapse chatter runs into count-delta entries
	snapEvery  int
	faults     storage.Faults
	crashes    []int // schedule indices at which the server crashes
}

func TestKillRecoverConformance(t *testing.T) {
	const trials = 120
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xD15C + int64(trial)*104729))
			ranks := 3 + rng.Intn(10)
			shards := 1 << rng.Intn(4)
			sensors := 1 + rng.Intn(3)
			slices := 2 + rng.Intn(3)
			threshold := []float64{0.7, 0.8, 0.9}[rng.Intn(3)]
			plan := conformancePlan{
				drop:    []float64{0, 0.15}[rng.Intn(2)],
				dup:     []float64{0, 0.15}[rng.Intn(2)],
				corrupt: []float64{0, 0.1}[rng.Intn(2)],
				shuffle: rng.Intn(2) == 0,
			}
			trialCfg := durableTrial{
				syncEvery:  []int{0, 1, 4, 16}[rng.Intn(4)],
				flushEvery: []int{0, 0, 2, 8, 32}[rng.Intn(5)],
				coalesce:   rng.Intn(2) == 0,
				snapEvery:  []int{0, -1, 3, 8, 32}[rng.Intn(5)],
				faults: storage.Faults{
					Seed:      0xBAD + int64(trial),
					TornWrite: []float64{0, 0.5, 1}[rng.Intn(3)],
					SyncLoss:  []float64{0, 0.3}[rng.Intn(2)],
					BitRot:    []float64{0, 0.4}[rng.Intn(2)],
				},
			}

			frames := buildConformanceFrames(rng, ranks, sensors, slices)
			schedule := applyPlan(rng, frames, plan)
			// Mix heartbeats into the schedule so walKindHeartbeat replay is
			// exercised; both engines see the same ones, so liveness state
			// must match too.
			withHB := make([][]byte, 0, len(schedule)+ranks)
			for i, f := range schedule {
				withHB = append(withHB, f)
				if i%7 == 3 {
					withHB = append(withHB, AppendHeartbeat(nil, i%ranks, int64(i)*1_000_000, 5_000_000))
				}
			}
			schedule = withHB

			nCrashes := 1 + rng.Intn(3)
			for i := 0; i < nCrashes; i++ {
				trialCfg.crashes = append(trialCfg.crashes, rng.Intn(len(schedule)+1))
			}

			// Reference: a plain in-memory server fed the schedule once,
			// in order, with no crashes.
			ref := NewSharded(shards)
			for _, f := range schedule {
				_ = ref.Receive(f)
			}

			// Durable engine on a faulty disk, same schedule, crashing and
			// recovering at the chosen points.
			dur := NewSharded(shards)
			dur.AttachDurability(DurabilityConfig{
				SyncEvery:     trialCfg.syncEvery,
				FlushEvery:    trialCfg.flushEvery,
				Coalesce:      trialCfg.coalesce,
				SnapshotEvery: trialCfg.snapEvery,
				Disk:          storage.NewDisk(trialCfg.faults),
			})

			// A concurrent poller keeps querying throughout ingest, crash,
			// and recovery: the race detector checks the locking story, and
			// mid-stream polls force epoch close/reopen transitions.
			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					_ = dur.InterProcessOutliers(threshold)
					_ = dur.Coverage()
					_ = dur.Liveness()
					_ = dur.Records()
					_ = dur.DurabilityStats()
				}
			}()

			i := 0
			for _, cp := range trialCfg.crashes {
				for i < cp && i < len(schedule) {
					_ = dur.Receive(schedule[i]) // corrupt frames error; that's their job
					i++
				}
				if err := dur.Crash(); err != nil {
					t.Fatalf("crash at %d: %v", i, err)
				}
				if !dur.Down() {
					t.Fatal("server not down after Crash")
				}
				if len(schedule) > 0 {
					if err := dur.Receive(schedule[0]); !errors.Is(err, ErrServerDown) {
						t.Fatalf("Receive while down = %v, want ErrServerDown", err)
					}
				}
				rs, err := dur.Recover()
				if err != nil {
					t.Fatalf("recover at %d: %v", i, err)
				}
				if dur.Down() {
					t.Fatal("server still down after Recover")
				}
				if rs.LSN > uint64(i) {
					t.Fatalf("recovered LSN %d exceeds %d delivered items", rs.LSN, i)
				}
				// The recovered state reflects schedule[:LSN]; the lost
				// suffix is re-sent — exactly what real clients do.
				i = int(rs.LSN)
			}
			for ; i < len(schedule); i++ {
				_ = dur.Receive(schedule[i])
			}
			close(done)
			wg.Wait()

			// Exact equality with the never-crashed reference.
			gotRecs, refRecs := dur.Records(), ref.Records()
			if len(gotRecs) != len(refRecs) {
				t.Fatalf("recovered log holds %d records, reference %d", len(gotRecs), len(refRecs))
			}
			for j := range gotRecs {
				if gotRecs[j] != refRecs[j] {
					t.Fatalf("record %d differs:\n got: %+v\nwant: %+v", j, gotRecs[j], refRecs[j])
				}
			}
			if got, want := dur.Coverage(), ref.Coverage(); got != want {
				t.Fatalf("coverage differs:\n got: %+v\nwant: %+v", got, want)
			}
			if got, want := dur.Heartbeats(), ref.Heartbeats(); got != want {
				t.Fatalf("heartbeats %d, want %d", got, want)
			}
			outliersEqual(t, trial, dur.InterProcessOutliers(threshold), ref.InterProcessOutliers(threshold))
			// And against the from-scratch batch recompute, closing the loop
			// with the differential conformance property.
			outliersEqual(t, trial, dur.InterProcessOutliers(threshold), batchOutliers(dur.Records(), threshold))

			if ds := dur.DurabilityStats(); !ds.Enabled || ds.Recoveries != int64(nCrashes) {
				t.Fatalf("durability stats = %+v, want %d recoveries", ds, nCrashes)
			}
		})
	}
}

// A crash mid-run with a fault-free, sync-every-entry disk must recover
// every acknowledged frame: ack implies durable.
func TestRecoverAckImpliesDurable(t *testing.T) {
	s := NewSharded(4)
	s.AttachDurability(DurabilityConfig{Disk: storage.NewDisk(storage.Faults{})})
	rng := rand.New(rand.NewSource(42))
	frames := buildConformanceFrames(rng, 5, 2, 3)
	for _, f := range frames {
		if err := s.Receive(f); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Records()
	wantCov := s.Coverage()
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Records()); got != 0 {
		t.Fatalf("crash left %d records in memory", got)
	}
	rs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.LSN != uint64(len(frames)) {
		t.Fatalf("recovered LSN %d, want %d (every ack was synced)", rs.LSN, len(frames))
	}
	got := s.Records()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs after recovery", i)
		}
	}
	if cov := s.Coverage(); cov != wantCov {
		t.Fatalf("coverage after recovery %+v, want %+v", cov, wantCov)
	}
}

// Group commit (SyncEvery > 1) deliberately weakens ack-implies-durable:
// a crash can lose the acknowledged-but-unsynced tail, and the recovered
// LSN tells clients exactly how much to re-send.
func TestRecoverGroupCommitLosesTail(t *testing.T) {
	s := NewSharded(2)
	s.AttachDurability(DurabilityConfig{
		SyncEvery:     64,
		SnapshotEvery: -1, // no checkpoints: the tail stays unsynced
		Disk:          storage.NewDisk(storage.Faults{}),
	})
	recs := []detect.SliceRecord{{Sensor: 1, Rank: 0, SliceNs: 0, Count: 1, AvgNs: 10}}
	for seq := uint64(1); seq <= 10; seq++ {
		f := AppendFrame(nil, FrameHeader{Rank: 0, Seq: seq, CumRecords: seq}, recs)
		if err := s.Receive(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	rs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.LSN != 0 {
		t.Fatalf("nothing was synced, yet recovered LSN = %d", rs.LSN)
	}
	if got := len(s.Records()); got != 0 {
		t.Fatalf("recovered %d records from an unsynced log", got)
	}
	// The server keeps working after a cold-start recovery.
	f := AppendFrame(nil, FrameHeader{Rank: 0, Seq: 1, CumRecords: 1}, recs)
	if err := s.Receive(f); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Records()); got != 1 {
		t.Fatalf("post-recovery ingest yielded %d records", got)
	}
}

func TestCrashRecoverAPIErrors(t *testing.T) {
	plain := NewSharded(1)
	if err := plain.Crash(); err == nil {
		t.Error("Crash without durability should error")
	}
	if _, err := plain.Recover(); err == nil {
		t.Error("Recover without durability should error")
	}

	s := NewSharded(1)
	s.AttachDurability(DurabilityConfig{})
	if _, err := s.Recover(); err == nil {
		t.Error("Recover on a server that has not crashed should error")
	}
}

func TestAttachDurabilityPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	s := NewSharded(1)
	s.AttachDurability(DurabilityConfig{})
	expectPanic("double attach", func() { s.AttachDurability(DurabilityConfig{}) })

	late := NewSharded(1)
	recs := []detect.SliceRecord{{Sensor: 0, Rank: 0, Count: 1, AvgNs: 1}}
	if err := late.Receive(AppendFrame(nil, FrameHeader{Rank: 0, Seq: 1, CumRecords: 1}, recs)); err != nil {
		t.Fatal(err)
	}
	expectPanic("attach after ingest", func() { late.AttachDurability(DurabilityConfig{}) })
}

// appendTestEntry frames one WAL payload the way appendEntry does.
func appendTestEntry(dst []byte, kind byte, lsn uint64, body []byte) []byte {
	payload := append([]byte{kind}, binary.LittleEndian.AppendUint64(nil, lsn)...)
	payload = append(payload, body...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

func TestScanWALStopsAtFirstInvalidEntry(t *testing.T) {
	good := appendTestEntry(nil, walKindChecksum, 1, nil)
	good = appendTestEntry(good, walKindReject, 2, nil)
	n := len(good)

	cases := []struct {
		name string
		data []byte
	}{
		{"torn header", append(append([]byte(nil), good...), 0x07, 0x00)},
		{"torn payload", append(append([]byte(nil), good...), 0x20, 0, 0, 0, 0, 0, 0, 0, walKindDup)},
		{"hostile length", append(binary.LittleEndian.AppendUint32(append([]byte(nil), good...), 0xFFFFFFFF), 0, 0, 0, 0)},
		{"undersized length", append(binary.LittleEndian.AppendUint32(append([]byte(nil), good...), 3), 0, 0, 0, 0, 1, 2, 3)},
		{"crc mismatch", func() []byte {
			bad := appendTestEntry(append([]byte(nil), good...), walKindChecksum, 3, nil)
			bad[len(bad)-1] ^= 1 // flip a payload bit after the CRC was taken
			return bad
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			entries, consumed, truncated := scanWAL(tc.data)
			if !truncated {
				t.Fatal("hostile tail not flagged as truncation")
			}
			if consumed != n {
				t.Fatalf("consumed %d bytes, want the %d-byte valid prefix", consumed, n)
			}
			if len(entries) != 2 || entries[0].lsn != 1 || entries[1].lsn != 2 {
				t.Fatalf("entries = %+v, want the 2-entry prefix", entries)
			}
		})
	}

	entries, consumed, truncated := scanWAL(good)
	if truncated || consumed != n || len(entries) != 2 {
		t.Fatalf("clean segment misparsed: %d entries, consumed %d, truncated %v", len(entries), consumed, truncated)
	}
}

// Replay must stop at an LSN gap — entries past a lost (acknowledged but
// never persisted) predecessor describe state transitions whose inputs
// are gone.
func TestRecoverStopsAtLSNGap(t *testing.T) {
	disk := storage.NewDisk(storage.Faults{})
	seg := appendTestEntry(nil, walKindChecksum, 1, nil)
	seg = appendTestEntry(seg, walKindChecksum, 2, nil)
	seg = appendTestEntry(seg, walKindChecksum, 4, nil) // 3 is missing
	seg = appendTestEntry(seg, walKindChecksum, 5, nil)
	if err := disk.Append("wal.0", seg); err != nil {
		t.Fatal(err)
	}
	if err := disk.Sync("wal.0"); err != nil {
		t.Fatal(err)
	}
	s := NewSharded(1)
	s.AttachDurability(DurabilityConfig{Disk: disk})
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	rs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.LSN != 2 || rs.WALEntriesReplayed != 2 {
		t.Fatalf("recovery crossed the LSN gap: %+v", rs)
	}
	if got := s.Coverage().ChecksumErrors; got != 2 {
		t.Fatalf("checksum counter %d, want the 2-entry prefix", got)
	}
}

// Checkpoint rotates the WAL and keeps exactly one older segment (the
// fallback for a rotten newest snapshot); everything older is deleted.
func TestCheckpointPrunesOldSegments(t *testing.T) {
	s := NewSharded(2)
	disk := storage.NewDisk(storage.Faults{})
	s.AttachDurability(DurabilityConfig{SnapshotEvery: -1, Disk: disk})
	recs := []detect.SliceRecord{{Sensor: 0, Rank: 1, Count: 1, AvgNs: 5}}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.Receive(AppendFrame(nil, FrameHeader{Rank: 1, Seq: seq, CumRecords: seq}, recs)); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	names := disk.List()
	var wals, snaps []string
	for _, n := range names {
		if _, ok := walGen(n); ok {
			wals = append(wals, n)
		} else {
			snaps = append(snaps, n)
		}
	}
	if len(wals) > 2 {
		t.Fatalf("checkpoint left %d WAL segments (%v), want <= 2", len(wals), wals)
	}
	if len(snaps) == 0 || len(snaps) > 2 {
		t.Fatalf("snapshot slots = %v, want snap.a/snap.b", snaps)
	}
	// Recovery from the checkpointed disk reproduces the state.
	want := s.Records()
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	rs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rs.UsedSnapshot {
		t.Fatalf("recovery ignored the snapshot: %+v", rs)
	}
	got := s.Records()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs after snapshot recovery", i)
		}
	}
}
