package server

import (
	"encoding/binary"
	"hash/crc32"

	"vsensor/internal/obs"
)

// The two commit policies behind the WAL append path (wal.go). Both run
// with d.mu held and share the LSN counter, the entry framing, and the
// reusable encode buffer on durability.
//
// perOpEncoder is the original policy: every delivery outcome is framed
// and written to the device immediately, synced per SyncEvery. An ack
// implies the entry is on the device (and, with SyncEvery <= 1, durable).
//
// groupEncoder is group commit: encoded entries accumulate in a staging
// buffer and hit the device as ONE write + ONE sync when the group covers
// FlushEvery outcomes or FlushBytes bytes. With Coalesce, runs of
// heartbeat/dup/checksum/reject outcomes collapse into a single count-delta
// entry (walKind*N) materialized when the run closes, so steady-state
// chatter costs O(1) journal bytes. Staged outcomes are acked before they
// are written: a crash loses the staged tail — the SyncEvery>1 contract —
// and clients re-send from the recovered LSN.

type perOpEncoder struct {
	d *durability
}

func (e *perOpEncoder) frame(ticket uint64, encoded []byte, trace uint64, rank int) error {
	d := e.d
	b := d.entryHead(walKindFrame)
	b = binary.LittleEndian.AppendUint64(b, ticket)
	b = append(b, encoded...)
	d.buf = b
	return d.appendEntry(b, trace, rank)
}

func (e *perOpEncoder) dup(rank int) error {
	d := e.d
	b := d.entryHead(walKindDup)
	b = binary.LittleEndian.AppendUint32(b, uint32(rank))
	d.buf = b
	return d.appendEntry(b, 0, 0)
}

func (e *perOpEncoder) badFrame(checksum bool) error {
	d := e.d
	kind := byte(walKindReject)
	if checksum {
		kind = walKindChecksum
	}
	b := d.entryHead(kind)
	d.buf = b
	return d.appendEntry(b, 0, 0)
}

func (e *perOpEncoder) heartbeat(rank int, nowNs, leaseNs int64) error {
	d := e.d
	b := d.entryHead(walKindHeartbeat)
	b = binary.LittleEndian.AppendUint32(b, uint32(rank))
	b = binary.LittleEndian.AppendUint64(b, uint64(nowNs))
	b = binary.LittleEndian.AppendUint64(b, uint64(leaseNs))
	d.buf = b
	return d.appendEntry(b, 0, 0)
}

// flush: nothing is ever staged — unsynced entries are already on the
// device and SyncEvery-paced syncs are a deliberate relaxation, not a
// staging buffer.
func (e *perOpEncoder) flush() error { return nil }

func (e *perOpEncoder) reset() {}

func (e *perOpEncoder) staged() (int, int64) { return 0, 0 }

type groupEncoder struct {
	d          *durability
	coalesce   bool
	flushEvery int
	flushBytes int

	buf      []byte // framed entries staged for the next commit group
	entries  int    // finalized entries in buf
	outcomes int    // outcomes covered by the group, open run included

	// The one open coalescible run, held as scalars and materialized into
	// buf when it closes. openKind is the *base* kind (walKindDup /
	// walKindChecksum / walKindReject / walKindHeartbeat); 0 = no open run.
	openKind  byte
	openRank  int
	openCount uint32
	openNow   int64 // heartbeat fold: max virtual now seen in the run
	openLease int64 // lease carried by the run's max-now heartbeat

	// syncTrace is the lineage trace of the newest sampled frame staged in
	// this group; its wal_sync span covers the group's single fsync.
	syncTrace uint64
	syncRank  int
}

// stage frames one encoded payload into the staging buffer (no device
// write). Caller holds d.mu.
func (e *groupEncoder) stage(payload []byte) {
	var hdr [walEntryHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	e.buf = append(e.buf, hdr[:]...)
	e.buf = append(e.buf, payload...)
	e.entries++
}

// closeOpen materializes the open coalesced run, if any, into the staging
// buffer. A run of one encodes as its legacy kind, so journals stay
// byte-compatible with per-op segments whenever no run actually formed.
// At close time d.lsn is exactly the LSN of the run's last outcome.
func (e *groupEncoder) closeOpen() {
	if e.openKind == 0 {
		return
	}
	d := e.d
	var b []byte
	switch e.openKind {
	case walKindDup:
		if e.openCount == 1 {
			b = d.entryAt(walKindDup, d.lsn)
			b = binary.LittleEndian.AppendUint32(b, uint32(e.openRank))
		} else {
			b = d.entryAt(walKindDupN, d.lsn)
			b = binary.LittleEndian.AppendUint32(b, uint32(e.openRank))
			b = binary.LittleEndian.AppendUint32(b, e.openCount)
		}
	case walKindChecksum, walKindReject:
		if e.openCount == 1 {
			b = d.entryAt(e.openKind, d.lsn)
		} else {
			kind := byte(walKindRejectN)
			if e.openKind == walKindChecksum {
				kind = walKindChecksumN
			}
			b = d.entryAt(kind, d.lsn)
			b = binary.LittleEndian.AppendUint32(b, e.openCount)
		}
	case walKindHeartbeat:
		if e.openCount == 1 {
			b = d.entryAt(walKindHeartbeat, d.lsn)
			b = binary.LittleEndian.AppendUint32(b, uint32(e.openRank))
			b = binary.LittleEndian.AppendUint64(b, uint64(e.openNow))
			b = binary.LittleEndian.AppendUint64(b, uint64(e.openLease))
		} else {
			b = d.entryAt(walKindHeartbeatN, d.lsn)
			b = binary.LittleEndian.AppendUint32(b, uint32(e.openRank))
			b = binary.LittleEndian.AppendUint64(b, uint64(e.openNow))
			b = binary.LittleEndian.AppendUint64(b, uint64(e.openLease))
			b = binary.LittleEndian.AppendUint32(b, e.openCount)
		}
	}
	d.buf = b
	e.stage(b)
	e.openKind = 0
	e.openCount = 0
}

// extendOpen tries to absorb one outcome of base kind into the open run.
func (e *groupEncoder) extendOpen(kind byte, rank int) bool {
	if !e.coalesce || e.openKind != kind {
		return false
	}
	// dup and heartbeat runs are per-rank; checksum/reject runs are global.
	if (kind == walKindDup || kind == walKindHeartbeat) && e.openRank != rank {
		return false
	}
	d := e.d
	e.openCount++
	d.lsn++
	e.outcomes++
	d.coalesced++
	d.obsCoalesced.Inc()
	return true
}

// openRun starts a fresh coalescible run covering the outcome that was
// just assigned d.lsn.
func (e *groupEncoder) openRun(kind byte, rank int) {
	e.openKind = kind
	e.openRank = rank
	e.openCount = 1
}

func (e *groupEncoder) frame(ticket uint64, encoded []byte, trace uint64, rank int) error {
	d := e.d
	e.closeOpen()
	traced := d.lin != nil && trace != 0
	var t0 int64
	if traced {
		t0 = nowUnixNs()
	}
	b := d.entryHead(walKindFrame)
	b = binary.LittleEndian.AppendUint64(b, ticket)
	b = append(b, encoded...)
	d.buf = b
	e.stage(b)
	e.outcomes++
	if traced {
		d.lin.Record(trace, obs.StageWALAppend, rank, 0, t0, nowUnixNs()-t0, int64(len(b)))
		e.syncTrace, e.syncRank = trace, rank
	}
	return e.maybeFlush()
}

func (e *groupEncoder) dup(rank int) error {
	d := e.d
	if e.extendOpen(walKindDup, rank) {
		return e.maybeFlush()
	}
	e.closeOpen()
	d.lsn++
	e.outcomes++
	if e.coalesce {
		e.openRun(walKindDup, rank)
	} else {
		b := d.entryAt(walKindDup, d.lsn)
		b = binary.LittleEndian.AppendUint32(b, uint32(rank))
		d.buf = b
		e.stage(b)
	}
	return e.maybeFlush()
}

func (e *groupEncoder) badFrame(checksum bool) error {
	d := e.d
	kind := byte(walKindReject)
	if checksum {
		kind = walKindChecksum
	}
	if e.extendOpen(kind, 0) {
		return e.maybeFlush()
	}
	e.closeOpen()
	d.lsn++
	e.outcomes++
	if e.coalesce {
		e.openRun(kind, 0)
	} else {
		b := d.entryAt(kind, d.lsn)
		d.buf = b
		e.stage(b)
	}
	return e.maybeFlush()
}

func (e *groupEncoder) heartbeat(rank int, nowNs, leaseNs int64) error {
	d := e.d
	if e.coalesce && e.openKind == walKindHeartbeat && e.openRank == rank {
		// Fold with the same rule receiveHeartbeat applies (liveness.go):
		// the newest virtual now wins and carries its lease, so replaying
		// the folded pair once equals replaying the run in order.
		if nowNs >= e.openNow {
			e.openNow, e.openLease = nowNs, leaseNs
		}
		e.openCount++
		d.lsn++
		e.outcomes++
		d.coalesced++
		d.obsCoalesced.Inc()
		return e.maybeFlush()
	}
	e.closeOpen()
	d.lsn++
	e.outcomes++
	if e.coalesce {
		e.openRun(walKindHeartbeat, rank)
		e.openNow, e.openLease = nowNs, leaseNs
	} else {
		b := d.entryAt(walKindHeartbeat, d.lsn)
		b = binary.LittleEndian.AppendUint32(b, uint32(rank))
		b = binary.LittleEndian.AppendUint64(b, uint64(nowNs))
		b = binary.LittleEndian.AppendUint64(b, uint64(leaseNs))
		d.buf = b
		e.stage(b)
	}
	return e.maybeFlush()
}

// stagedBytes is the staging buffer plus a conservative estimate for the
// open run's eventual entry (header + kind/lsn prefix + largest body).
func (e *groupEncoder) stagedBytes() int64 {
	n := int64(len(e.buf))
	if e.openKind != 0 {
		n += walEntryHeader + 9 + 24
	}
	return n
}

func (e *groupEncoder) maybeFlush() error {
	if e.outcomes >= e.flushEvery || e.stagedBytes() >= int64(e.flushBytes) {
		return e.flush()
	}
	return nil
}

// flush commits the staged group: one device write, one sync. Caller holds
// d.mu. On error the group stays staged so a later flush can retry.
func (e *groupEncoder) flush() error {
	d := e.d
	e.closeOpen()
	if len(e.buf) == 0 {
		e.outcomes = 0
		return nil
	}
	seg := walSegmentName(d.gen)
	if err := d.disk.Append(seg, e.buf); err != nil {
		return err
	}
	trace := e.syncTrace
	timed := d.obsSyncWait != nil || (d.lin != nil && trace != 0)
	var t0 int64
	if timed {
		t0 = nowUnixNs()
	}
	if err := d.disk.Sync(seg); err != nil {
		return err
	}
	var wait int64
	if timed {
		wait = nowUnixNs() - t0
	}
	d.entries += int64(e.entries)
	d.bytes += int64(len(e.buf))
	d.syncs++
	d.groupCommits++
	d.obsEntries.Add(int64(e.entries))
	d.obsBytes.Add(int64(len(e.buf)))
	d.obsSyncs.Inc()
	d.obsGroupCommits.Inc()
	d.obsFlushBytes.ObserveInt(int64(len(e.buf)))
	d.obsSyncWait.ObserveExemplar(float64(wait), trace)
	if d.lin != nil && trace != 0 {
		d.lin.Record(trace, obs.StageWALSync, e.syncRank, 0, t0, wait, int64(len(e.buf)))
	}
	e.buf = e.buf[:0]
	e.entries = 0
	e.outcomes = 0
	e.syncTrace, e.syncRank = 0, 0
	return nil
}

// reset drops staged state after a crash: the staged tail was acked but
// never written, which is exactly the loss the group-commit ack contract
// permits.
func (e *groupEncoder) reset() {
	e.buf = e.buf[:0]
	e.entries = 0
	e.outcomes = 0
	e.openKind = 0
	e.openCount = 0
	e.syncTrace, e.syncRank = 0, 0
}

func (e *groupEncoder) staged() (int, int64) {
	n := e.entries
	if e.openKind != 0 {
		n++
	}
	return n, e.stagedBytes()
}
