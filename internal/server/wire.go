package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"vsensor/internal/detect"
)

// Wire format: one frame per transferred batch.
//
// Frame layout (little endian):
//
//	off  0: u32 magic       "vSF1"
//	off  4: u32 rank        sending rank
//	off  8: u64 seq         per-rank frame sequence number, 1-based
//	off 16: u64 cumRecords  cumulative records sent by this rank, incl. frame
//	off 24: u32 count       records in this frame
//	off 28: u32 crc         IEEE CRC32 over header[0:28] + payload
//	off 32: payload         count * recordWireSize bytes
//
// Per record: u32 sensor, u32 group, u32 rank, i64 slice, i32 count,
// f64 avgNs, f64 avgInstr.
//
// The "vSF2" variant carries the record-lineage extension — a u64 trace ID
// between the base header and the payload:
//
//	off 32: u64 traceID     nonzero lineage trace ID
//	off 40: payload         count * recordWireSize bytes
//
// The CRC of a vSF2 frame covers header[0:28] + frame[32:] (trace ID and
// payload), so corruption of the extension field is caught like any other
// bit flip. AppendFrame emits vSF2 only when the header carries a nonzero
// TraceID: with lineage off (or for the 255/256 unsampled frames) the bytes
// on the wire are exactly the vSF1 encoding, keeping goldens bit-identical.
//
// The sequence number lets the server deduplicate retransmissions and track
// per-rank delivery gaps; cumRecords lets it compute how many records it
// *should* have seen from a rank even when frames are still missing; the CRC
// rejects bit-corrupted frames before any of the header is trusted.
const (
	frameMagic      = 0x76534631 // "vSF1"
	frameMagic2     = 0x76534632 // "vSF2" — vSF1 + u64 trace ID at off 32
	frameHeaderSize = 32
	frameTraceSize  = 8
	recordWireSize  = 4 + 4 + 4 + 8 + 4 + 8 + 8
)

// MaxFrameRecords bounds the record count a frame header may claim. It is a
// huge-allocation guard: a hostile 32-bit count could otherwise demand a
// multi-gigabyte decode before any payload byte is validated.
const MaxFrameRecords = 1 << 20

// MaxFrameRank bounds the sender rank a frame header may claim, so a
// corrupted rank field cannot blow up per-rank tracking maps.
const MaxFrameRank = 1 << 22

// ErrChecksum marks a frame whose CRC did not match its contents — the
// transport's bit-corruption failure mode, as opposed to a framing error.
var ErrChecksum = errors.New("server: frame checksum mismatch")

// FrameHeader is the decoded per-frame metadata. TraceID is the optional
// lineage extension: zero means unsampled/absent (the frame encodes as
// vSF1), nonzero selects the vSF2 encoding.
type FrameHeader struct {
	Rank       int
	Seq        uint64
	CumRecords uint64
	Count      int
	TraceID    uint64
}

// headerLen returns the encoded header size for this header's variant.
func (h FrameHeader) headerLen() int {
	if h.TraceID != 0 {
		return frameHeaderSize + frameTraceSize
	}
	return frameHeaderSize
}

// AppendFrame serializes a frame onto dst (usually a reused buffer with len
// 0) and returns the extended slice. h.Count is taken from len(recs); the
// CRC is computed here. A zero h.TraceID produces the exact vSF1 bytes this
// function always produced; a nonzero one produces the vSF2 extension.
func AppendFrame(dst []byte, h FrameHeader, recs []detect.SliceRecord) []byte {
	start := len(dst)
	hdrLen := h.headerLen()
	need := hdrLen + len(recs)*recordWireSize
	if cap(dst)-start < need {
		grown := make([]byte, start, start+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:start+need]
	hdr := dst[start:]
	magic := uint32(frameMagic)
	if h.TraceID != 0 {
		magic = frameMagic2
	}
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(h.Rank))
	binary.LittleEndian.PutUint64(hdr[8:], h.Seq)
	binary.LittleEndian.PutUint64(hdr[16:], h.CumRecords)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(recs)))
	if h.TraceID != 0 {
		binary.LittleEndian.PutUint64(hdr[frameHeaderSize:], h.TraceID)
	}
	off := start + hdrLen
	for _, r := range recs {
		binary.LittleEndian.PutUint32(dst[off:], uint32(r.Sensor))
		binary.LittleEndian.PutUint32(dst[off+4:], uint32(r.Group))
		binary.LittleEndian.PutUint32(dst[off+8:], uint32(r.Rank))
		binary.LittleEndian.PutUint64(dst[off+12:], uint64(r.SliceNs))
		binary.LittleEndian.PutUint32(dst[off+20:], uint32(r.Count))
		binary.LittleEndian.PutUint64(dst[off+24:], math.Float64bits(r.AvgNs))
		binary.LittleEndian.PutUint64(dst[off+32:], math.Float64bits(r.AvgInstr))
		off += recordWireSize
	}
	crc := crc32.ChecksumIEEE(dst[start : start+28])
	crc = crc32.Update(crc, crc32.IEEETable, dst[start+frameHeaderSize:])
	binary.LittleEndian.PutUint32(dst[start+28:], crc)
	return dst
}

// ParseFrame validates a frame without trusting any header field: length,
// magic, bounded record count (before the count is used to size anything),
// exact framing, bounded rank, header consistency, and finally the CRC.
// It is the hardened checkBatch: arbitrary bytes must never panic or force
// a huge allocation.
func ParseFrame(data []byte) (FrameHeader, error) {
	var h FrameHeader
	if len(data) < frameHeaderSize {
		return h, fmt.Errorf("server: short frame (%d bytes, header is %d)", len(data), frameHeaderSize)
	}
	hdrLen := frameHeaderSize
	switch m := binary.LittleEndian.Uint32(data[0:]); m {
	case frameMagic:
	case frameMagic2:
		hdrLen = frameHeaderSize + frameTraceSize
		if len(data) < hdrLen {
			return h, fmt.Errorf("server: short vSF2 frame (%d bytes, header is %d)", len(data), hdrLen)
		}
	default:
		return h, fmt.Errorf("server: bad frame magic %#x", m)
	}
	n := binary.LittleEndian.Uint32(data[24:])
	if n > MaxFrameRecords {
		// Reject before computing n*recordWireSize or sizing a decode
		// buffer from it.
		return h, fmt.Errorf("server: frame claims %d records (max %d)", n, MaxFrameRecords)
	}
	want := hdrLen + int(n)*recordWireSize
	if len(data) != want {
		return h, fmt.Errorf("server: frame length %d, want %d for %d records", len(data), want, n)
	}
	rank := binary.LittleEndian.Uint32(data[4:])
	if rank > MaxFrameRank {
		return h, fmt.Errorf("server: frame claims rank %d (max %d)", rank, MaxFrameRank)
	}
	h.Rank = int(rank)
	h.Seq = binary.LittleEndian.Uint64(data[8:])
	h.CumRecords = binary.LittleEndian.Uint64(data[16:])
	h.Count = int(n)
	if h.Seq == 0 {
		return h, fmt.Errorf("server: frame sequence 0 (sequences are 1-based)")
	}
	if h.CumRecords < uint64(h.Count) {
		return h, fmt.Errorf("server: frame cumRecords %d < count %d", h.CumRecords, h.Count)
	}
	if hdrLen > frameHeaderSize {
		h.TraceID = binary.LittleEndian.Uint64(data[frameHeaderSize:])
		if h.TraceID == 0 {
			// Canonical-encoding rule: a zero trace belongs in vSF1. One
			// valid encoding per frame keeps dedup byte-comparisons sane.
			return h, fmt.Errorf("server: vSF2 frame with zero trace ID")
		}
	}
	crc := crc32.ChecksumIEEE(data[:28])
	crc = crc32.Update(crc, crc32.IEEETable, data[frameHeaderSize:])
	if got := binary.LittleEndian.Uint32(data[28:]); got != crc {
		return h, fmt.Errorf("%w: header says %#x, computed %#x", ErrChecksum, got, crc)
	}
	return h, nil
}

// TraceOf extracts the lineage trace ID from an already-validated encoded
// frame without reparsing it (0 for vSF1 or anything unrecognizable). Used
// on retransmit paths that hold raw bytes, e.g. parked-frame drains.
func TraceOf(data []byte) uint64 {
	if len(data) < frameHeaderSize+frameTraceSize ||
		binary.LittleEndian.Uint32(data[0:]) != frameMagic2 {
		return 0
	}
	return binary.LittleEndian.Uint64(data[frameHeaderSize:])
}

// appendDecoded deserializes a parsed frame's n records onto out. data must
// have passed ParseFrame, whose framing check ties the magic to the length.
func appendDecoded(out []detect.SliceRecord, data []byte, n int) []detect.SliceRecord {
	off := frameHeaderSize
	if binary.LittleEndian.Uint32(data[0:]) == frameMagic2 {
		off += frameTraceSize
	}
	for i := 0; i < n; i++ {
		out = append(out, detect.SliceRecord{
			Sensor:   int(binary.LittleEndian.Uint32(data[off:])),
			Group:    int(binary.LittleEndian.Uint32(data[off+4:])),
			Rank:     int(binary.LittleEndian.Uint32(data[off+8:])),
			SliceNs:  int64(binary.LittleEndian.Uint64(data[off+12:])),
			Count:    int32(binary.LittleEndian.Uint32(data[off+20:])),
			AvgNs:    math.Float64frombits(binary.LittleEndian.Uint64(data[off+24:])),
			AvgInstr: math.Float64frombits(binary.LittleEndian.Uint64(data[off+32:])),
		})
		off += recordWireSize
	}
	return out
}

// decodeFrame parses and deserializes a whole frame (test/tooling helper;
// the ingest path decodes straight into the server's log instead).
func decodeFrame(data []byte) (FrameHeader, []detect.SliceRecord, error) {
	h, err := ParseFrame(data)
	if err != nil {
		return h, nil, err
	}
	return h, appendDecoded(make([]detect.SliceRecord, 0, h.Count), data, h.Count), nil
}
