package server

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vsensor/internal/detect"
	"vsensor/internal/obs"
)

// nowUnixNs is the wall-clock source for lineage spans. It is only called
// on sampled paths (a nonzero trace with lineage enabled), so the unsampled
// hot path never pays a clock read.
func nowUnixNs() int64 { return time.Now().UnixNano() }

// The incremental inter-process analyzer. Instead of recomputing
// InterProcessOutliers as a full post-hoc scan over the entire record log,
// every arriving record is folded into the epoch accumulator for its
// (sensor, group, time-slice) key as it is ingested. A query then only has
// to evaluate the epochs that are still open: once the cross-rank watermark
// (the earliest slice any reporting rank is still working on) passes an
// epoch's slice, the epoch's outlier set is computed one final time, cached,
// and the epoch is closed — closed epochs contribute their cached result to
// every later query at no recompute cost.
//
// Closed epochs are immutable but not discarded: a late record (a
// retransmitted or reordered frame arriving after the watermark passed)
// reopens its epoch, invalidating the cached result. That reopen rule is
// what makes the incremental result *exactly* equal to a batch recompute
// over the final log under any ingest permutation — the property the
// differential conformance test pins.
const epochStripes = 64 // power of two; stripes the analyzer's lock by key hash

type epochKey struct {
	sensor int32
	group  int32
	slice  int64
}

// epochEntry is one folded record's contribution: the sending rank and its
// average time, the inputs the cross-rank median comparison needs.
type epochEntry struct {
	rank int32
	avg  float64
}

// epoch accumulates one (sensor, group, slice) group. Alongside the raw
// entries (needed for the exact median), it maintains O(1) summary
// statistics — count, mean, min/max with the ranks that set them — so
// telemetry can describe an epoch without touching the entries.
type epoch struct {
	entries []epochEntry

	sum              float64
	min, max         float64
	minRank, maxRank int32

	// closed marks the epoch as past the watermark with its outlier set
	// cached for closeThreshold. Reopened (and the cache dropped) if a late
	// record arrives.
	closed         bool
	closeThreshold float64
	cached         []Outlier

	// trace is the lineage trace ID of the last sampled record folded into
	// this epoch (0 when none was sampled), and traceRank the rank that sent
	// it — enough to attribute epoch close/reopen/verdict spans to a
	// journey a human can follow end to end.
	trace     uint64
	traceRank int32
}

type epochStripe struct {
	mu     sync.Mutex
	epochs map[epochKey]*epoch
}

type analyzer struct {
	stripes [epochStripes]epochStripe

	open atomic.Int64 // currently open epochs

	// Observability handles (nil-safe no-ops when obs is off).
	obsOpen    *obs.Gauge     // server_epochs_open
	obsClosed  *obs.Counter   // server_epochs_closed_total
	obsReopens *obs.Counter   // server_epoch_reopens_total
	obsLag     *obs.Histogram // server_epoch_lag_ns: watermark - slice at close
	lin        *obs.Lineage   // record-lineage tracer (nil = lineage off)
}

func newAnalyzer() *analyzer {
	a := &analyzer{}
	for i := range a.stripes {
		a.stripes[i].epochs = make(map[epochKey]*epoch)
	}
	return a
}

// reset drops every epoch in place, stripe by stripe. Used by crash
// recovery (recover.go): the analyzer object itself survives — concurrent
// queries hold references to it — and the recovered record log is refolded
// from scratch.
func (a *analyzer) reset() {
	for i := range a.stripes {
		st := &a.stripes[i]
		st.mu.Lock()
		st.epochs = make(map[epochKey]*epoch)
		st.mu.Unlock()
	}
	a.open.Store(0)
	a.obsOpen.Set(0)
}

func (a *analyzer) setObs(o *obs.Obs) {
	a.obsOpen = o.Gauge("server_epochs_open")
	a.obsClosed = o.Counter("server_epochs_closed_total")
	a.obsReopens = o.Counter("server_epoch_reopens_total")
	a.obsLag = o.Histogram("server_epoch_lag_ns")
	a.lin = o.Lineage()
}

func stripeOf(k epochKey) uint64 {
	h := uint64(uint32(k.sensor))*0x9e3779b97f4a7c15 ^
		uint64(uint32(k.group))*0xbf58476d1ce4e5b9 ^
		uint64(k.slice)*0x94d049bb133111eb
	return (h >> 32) & (epochStripes - 1)
}

// fold merges newly ingested records into their epochs. Called outside the
// ingest shard's lock; stripes are keyed by (sensor, group, slice), so two
// shards folding different sensors or slices proceed in parallel. trace is
// the frame's lineage trace ID (0 = unsampled); live=false (WAL replay,
// snapshot refold) still threads the trace into the epoch but records no
// spans — replay reconstructs state, not history.
func (a *analyzer) fold(recs []detect.SliceRecord, trace uint64, live bool) {
	lin := a.lin
	for i := range recs {
		r := &recs[i]
		k := epochKey{sensor: int32(r.Sensor), group: int32(r.Group), slice: r.SliceNs}
		st := &a.stripes[stripeOf(k)]
		st.mu.Lock()
		ep := st.epochs[k]
		if ep == nil {
			ep = &epoch{min: math.Inf(1), max: math.Inf(-1), minRank: -1, maxRank: -1}
			st.epochs[k] = ep
			a.open.Add(1)
		}
		if ep.closed {
			ep.closed = false
			ep.cached = nil
			a.open.Add(1)
			a.obsReopens.Inc()
			if live && lin != nil {
				// Attribute the reopen to the late record's own trace when
				// it is sampled, else to the epoch's remembered journey.
				tr := trace
				if tr == 0 {
					tr = ep.trace
				}
				lin.Record(tr, obs.StageEpochReopen, r.Rank, 0, nowUnixNs(), 0, k.slice)
			}
		}
		if trace != 0 {
			ep.trace = trace
			ep.traceRank = int32(r.Rank)
		}
		ep.entries = append(ep.entries, epochEntry{rank: int32(r.Rank), avg: r.AvgNs})
		ep.sum += r.AvgNs
		if r.AvgNs < ep.min {
			ep.min = r.AvgNs
			ep.minRank = int32(r.Rank)
		}
		if r.AvgNs > ep.max {
			ep.max = r.AvgNs
			ep.maxRank = int32(r.Rank)
		}
		st.mu.Unlock()
	}
	// Refresh the gauge on the ingest path too, so a dashboard watching a
	// run that has not been queried yet still sees the epoch population.
	a.obsOpen.Set(float64(a.open.Load()))
}

// outliers evaluates every epoch against threshold. Open epochs (and closed
// epochs queried at a different threshold) are recomputed; epochs whose
// slice the watermark has passed are closed with their result cached.
// The returned slice is unsorted; the caller applies the canonical order.
func (a *analyzer) outliers(threshold float64, watermark int64, haveWatermark bool) []Outlier {
	var out []Outlier
	var scratch []float64
	for si := range a.stripes {
		st := &a.stripes[si]
		st.mu.Lock()
		for k, ep := range st.epochs {
			if ep.closed && ep.closeThreshold == threshold {
				out = append(out, ep.cached...)
				continue
			}
			res := epochOutliers(k, ep, threshold, &scratch)
			if wasClosed := ep.closed; wasClosed || (haveWatermark && k.slice < watermark) {
				if !wasClosed {
					a.open.Add(-1)
					a.obsClosed.Inc()
					a.obsLag.ObserveInt(watermark - k.slice)
					if lin := a.lin; lin != nil && ep.trace != 0 {
						now := nowUnixNs()
						lin.Record(ep.trace, obs.StageEpochClose, int(ep.traceRank), 0, now, 0, int64(len(ep.entries)))
						lin.Record(ep.trace, obs.StageVerdict, int(ep.traceRank), 0, now, 0, int64(len(res)))
					}
				}
				ep.closed = true
				ep.closeThreshold = threshold
				ep.cached = res
			}
			out = append(out, res...)
		}
		st.mu.Unlock()
	}
	a.obsOpen.Set(float64(a.open.Load()))
	return out
}

// epochOutliers computes one epoch's outlier set: ranks whose average time
// exceeds the cross-rank median by more than 1/threshold. Identical math to
// the batch recompute — median over the same value multiset, same quorum,
// same comparison — so the result cannot depend on arrival order.
func epochOutliers(k epochKey, ep *epoch, threshold float64, scratch *[]float64) []Outlier {
	if len(ep.entries) < 3 {
		return nil
	}
	vals := (*scratch)[:0]
	for _, e := range ep.entries {
		vals = append(vals, e.avg)
	}
	sort.Float64s(vals)
	*scratch = vals
	med := medianSorted(vals)
	if med <= 0 {
		return nil
	}
	var out []Outlier
	for _, e := range ep.entries {
		perf := med / e.avg
		if perf < threshold {
			out = append(out, Outlier{Sensor: int(k.sensor), SliceNs: k.slice, Rank: int(e.rank), Perf: perf})
		}
	}
	return out
}

// EpochStats summarizes the analyzer's state for dashboards.
type EpochStats struct {
	Open   int64 // epochs still accepting records
	Closed int64 // epochs sealed behind the watermark with cached results
}

// EpochStats returns the analyzer's open/closed epoch counts.
func (s *Server) EpochStats() EpochStats {
	var total int64
	for si := range s.an.stripes {
		st := &s.an.stripes[si]
		st.mu.Lock()
		total += int64(len(st.epochs))
		st.mu.Unlock()
	}
	open := s.an.open.Load()
	return EpochStats{Open: open, Closed: total - open}
}

// medianSorted returns the median of an already-sorted value slice.
func medianSorted(vals []float64) float64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
