package server

import (
	"fmt"
	"sync"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/obs"
)

// The benchmarks model the production streaming shape: many ranks deliver
// sequenced frames concurrently while an operator dashboard polls
// InterProcessReport on a fixed cadence. One benchmark op is one complete
// streaming session (ingest everything + all polls), so ns/op is directly
// comparable between the sharded incremental engine and the pre-shard
// single-lock design embedded below as singleLockServer.

const (
	benchFramesPerRank = 4 // one slice per frame
	benchSensors       = 8 // records per frame
	benchPolls         = 64
	benchWorkers       = 8
)

// benchIngester is the surface both engines share for the session driver.
type benchIngester interface {
	Receive(frame []byte) error
	Outliers(threshold float64) []Outlier
}

// singleLockServer replicates the seed design this PR replaced: one global
// mutex guarding a flat append log plus per-rank dedup state, with outlier
// analysis done as a full post-hoc scan of the log on every query.
type singleLockServer struct {
	mu      sync.Mutex
	seen    map[int]map[uint64]bool
	records []detect.SliceRecord
}

func newSingleLock() *singleLockServer {
	return &singleLockServer{seen: make(map[int]map[uint64]bool)}
}

func (s *singleLockServer) Receive(frame []byte) error {
	h, err := ParseFrame(frame)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.seen[h.Rank]
	if f == nil {
		f = make(map[uint64]bool)
		s.seen[h.Rank] = f
	}
	if f[h.Seq] {
		return nil
	}
	f[h.Seq] = true
	s.records = appendDecoded(s.records, frame, int(h.Count))
	return nil
}

func (s *singleLockServer) Outliers(threshold float64) []Outlier {
	s.mu.Lock()
	snap := make([]detect.SliceRecord, len(s.records))
	copy(snap, s.records)
	s.mu.Unlock()
	return batchOutliers(snap, threshold)
}

// shardedIngester adapts *Server to the benchmark surface.
type shardedIngester struct{ s *Server }

func (a shardedIngester) Receive(frame []byte) error { return a.s.Receive(frame) }
func (a shardedIngester) Outliers(threshold float64) []Outlier {
	return a.s.InterProcessOutliers(threshold)
}

// buildBenchFrames pre-encodes the whole session: frames[rank][slice] holds
// benchSensors records for that rank at that slice. Values are arranged so
// some slices genuinely contain outliers (rank 0 runs slow).
func buildBenchFrames(ranks int) [][][]byte { return buildBenchFramesTraced(ranks, nil) }

// buildBenchFramesTraced additionally stamps frames with lineage trace IDs
// per lin's deterministic sampler (nil lin = plain vSF1 frames).
func buildBenchFramesTraced(ranks int, lin *obs.Lineage) [][][]byte {
	frames := make([][][]byte, ranks)
	recs := make([]detect.SliceRecord, benchSensors)
	for rank := 0; rank < ranks; rank++ {
		perRank := make([][]byte, benchFramesPerRank)
		var cum uint64
		for sl := 0; sl < benchFramesPerRank; sl++ {
			for sn := 0; sn < benchSensors; sn++ {
				avg := 100.0 + float64(sn)
				if rank == 0 {
					avg *= 2 // rank 0 is the straggler the analysis must find
				}
				recs[sn] = detect.SliceRecord{
					Sensor:  sn,
					Rank:    rank,
					SliceNs: int64(sl) * 1_000_000,
					Count:   4,
					AvgNs:   avg,
				}
			}
			cum += uint64(len(recs))
			h := FrameHeader{Rank: rank, Seq: uint64(sl) + 1, CumRecords: cum}
			if lin != nil {
				h.TraceID = lin.TraceID(rank, h.Seq)
			}
			perRank[sl] = AppendFrame(nil, h, recs)
		}
		frames[rank] = perRank
	}
	return frames
}

// runStreamingSession drives one full session: benchWorkers goroutines each
// own a partition of the ranks and deliver frames slice-by-slice (so the
// watermark advances the way a real run's does), polling outliers on a
// cadence that totals benchPolls polls per session.
func runStreamingSession(b *testing.B, ing benchIngester, frames [][][]byte) {
	ranks := len(frames)
	totalFrames := ranks * benchFramesPerRank
	pollEvery := totalFrames / benchPolls
	if pollEvery == 0 {
		pollEvery = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < benchWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			delivered := 0
			for sl := 0; sl < benchFramesPerRank; sl++ {
				for rank := w; rank < ranks; rank += benchWorkers {
					if err := ing.Receive(frames[rank][sl]); err != nil {
						b.Error(err)
						return
					}
					delivered++
					if delivered%pollEvery == 0 {
						ing.Outliers(0.9)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := ing.Outliers(0.9); len(got) == 0 {
		b.Fatal("session produced no outliers; workload is miswired")
	}
}

func benchSizes() []int { return []int{64, 512, 4096} }

// BenchmarkIngestParallel is the sharded incremental engine under the
// streaming workload. Compare against BenchmarkIngestSingleLock at the same
// rank count; BENCH_server.json records both so the speedup is auditable.
func BenchmarkIngestParallel(b *testing.B) {
	for _, ranks := range benchSizes() {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			frames := buildBenchFrames(ranks)
			records := ranks * benchFramesPerRank * benchSensors
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runStreamingSession(b, shardedIngester{NewSharded(DefaultShards)}, frames)
			}
			b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkIngestLineage measures the lineage tax on the streaming ingest
// workload. Both modes attach the observability layer; "on" additionally
// enables record-lineage tracing and stamps frames at the production
// sampling rate (1 in obs.DefaultSampleEvery), so the on/off delta is the
// cost of lineage itself — the trace peek on every frame plus span
// recording on the sampled ones. scripts/check.sh gates the delta at 5%
// for ranks=4096.
func BenchmarkIngestLineage(b *testing.B) {
	for _, ranks := range []int{64, 4096} {
		for _, on := range []bool{false, true} {
			mode := "off"
			if on {
				mode = "on"
			}
			b.Run(fmt.Sprintf("lineage=%s/ranks=%d", mode, ranks), func(b *testing.B) {
				var frames [][][]byte
				if on {
					frames = buildBenchFramesTraced(ranks, obs.NewLineage(obs.LineageConfig{}))
				} else {
					frames = buildBenchFrames(ranks)
				}
				records := ranks * benchFramesPerRank * benchSensors
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s := NewSharded(DefaultShards)
					o := obs.New()
					if on {
						o.EnableLineage(obs.LineageConfig{})
					}
					s.SetObs(o)
					runStreamingSession(b, shardedIngester{s}, frames)
				}
				b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
}

// BenchmarkIngestSingleLock is the recorded baseline: the seed's
// one-mutex, scan-everything design under the identical workload.
func BenchmarkIngestSingleLock(b *testing.B) {
	for _, ranks := range benchSizes() {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			frames := buildBenchFrames(ranks)
			records := ranks * benchFramesPerRank * benchSensors
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runStreamingSession(b, newSingleLock(), frames)
			}
			b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// TestStreamingSessionEnginesAgree pins that the two benchmark engines
// compute the same final answer, so the benchmark comparison is apples to
// apples.
func TestStreamingSessionEnginesAgree(t *testing.T) {
	frames := buildBenchFrames(64)
	sharded := shardedIngester{NewSharded(DefaultShards)}
	single := newSingleLock()
	for sl := 0; sl < benchFramesPerRank; sl++ {
		for rank := 0; rank < len(frames); rank++ {
			if err := sharded.Receive(frames[rank][sl]); err != nil {
				t.Fatal(err)
			}
			if err := single.Receive(frames[rank][sl]); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, bb := sharded.Outliers(0.9), single.Outliers(0.9)
	if len(a) == 0 || len(a) != len(bb) {
		t.Fatalf("engines disagree: sharded %d outliers, single-lock %d", len(a), len(bb))
	}
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("outlier %d differs: %+v vs %+v", i, a[i], bb[i])
		}
	}
}
