package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/obs"
	"vsensor/internal/storage"
)

// buildGroupSchedule interleaves frames with duplicate redeliveries and
// same-rank heartbeats — the chatter the coalescing encoder collapses —
// then pads with heartbeats to a multiple of window so the final commit
// group flushes. Every element is one Receive call == one delivery outcome.
func buildGroupSchedule(t *testing.T, window int) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	frames := buildConformanceFrames(rng, 2, 2, 2)
	var schedule [][]byte
	for i, f := range frames {
		schedule = append(schedule, f)
		if i%2 == 1 {
			schedule = append(schedule, f) // immediate redelivery: a dup outcome
		}
		schedule = append(schedule, AppendHeartbeat(nil, i%2, int64(i+1)*1_000, 5_000))
	}
	for len(schedule)%window != 0 {
		schedule = append(schedule, AppendHeartbeat(nil, 0, int64(len(schedule))*1_000, 5_000))
	}
	return schedule
}

// TestGroupCommitFlushBoundary pins the strict-prefix contract at every
// byte offset inside a commit group: a crash that tears the segment mid
// group recovers exactly the complete entries before the tear — in
// particular, a tear at a group's first byte recovers exactly the previous
// group — and redelivering the schedule suffix from the recovered LSN
// reproduces the never-crashed state.
func TestGroupCommitFlushBoundary(t *testing.T) {
	const window = 4
	schedule := buildGroupSchedule(t, window)

	disk := storage.NewDisk(storage.Faults{})
	s := NewSharded(2)
	s.AttachDurability(DurabilityConfig{Disk: disk, SnapshotEvery: -1, FlushEvery: window, Coalesce: true})
	for _, f := range schedule {
		_ = s.Receive(f)
	}
	if st := s.DurabilityStats(); st.StagedEntries != 0 || st.StagedBytes != 0 {
		t.Fatalf("aligned schedule left %d entries / %d bytes staged", st.StagedEntries, st.StagedBytes)
	}
	seg, err := disk.ReadFile("wal.0")
	if err != nil {
		t.Fatal(err)
	}

	// Walk the segment's entry boundaries. Each entry carries the LSN of
	// the last outcome it covers, so the boundary's LSN is the cumulative
	// outcome count of the complete prefix ending there.
	type boundary struct {
		off      int
		outcomes uint64
	}
	bounds := []boundary{{0, 0}}
	sawCoalesced := false
	for off := 0; off < len(seg); {
		n := int(binary.LittleEndian.Uint32(seg[off:]))
		payload := seg[off+walEntryHeader : off+walEntryHeader+n]
		e := walEntry{kind: payload[0], lsn: binary.LittleEndian.Uint64(payload[1:]), body: payload[9:]}
		if span, ok := e.outcomeSpan(); !ok {
			t.Fatalf("entry at %d has invalid span", off)
		} else if span > 1 {
			sawCoalesced = true
		}
		off += walEntryHeader + n
		bounds = append(bounds, boundary{off, e.lsn})
	}
	if !sawCoalesced {
		t.Fatal("schedule produced no coalesced entries; the boundary table would not cover them")
	}
	if last := bounds[len(bounds)-1]; last.outcomes != uint64(len(schedule)) {
		t.Fatalf("segment covers %d outcomes, schedule has %d", last.outcomes, len(schedule))
	}

	type tearCase struct {
		name string
		cut  int
		want uint64 // recovered LSN
	}
	var cases []tearCase
	for i := 1; i < len(bounds); i++ {
		prev, cur := bounds[i-1], bounds[i]
		cases = append(cases,
			tearCase{fmt.Sprintf("entry%d/complete", i), cur.off, cur.outcomes},
			tearCase{fmt.Sprintf("entry%d/first-byte", i), prev.off + 1, prev.outcomes},
			tearCase{fmt.Sprintf("entry%d/header-only", i), prev.off + walEntryHeader, prev.outcomes},
			tearCase{fmt.Sprintf("entry%d/mid-payload", i), prev.off + (cur.off-prev.off)/2, prev.outcomes},
		)
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			torn := storage.NewDisk(storage.Faults{})
			if err := torn.Append("wal.0", seg[:tc.cut]); err != nil {
				t.Fatal(err)
			}
			if err := torn.Sync("wal.0"); err != nil {
				t.Fatal(err)
			}
			r := NewSharded(2)
			r.AttachDurability(DurabilityConfig{Disk: torn, FlushEvery: window, Coalesce: true})
			if err := r.Crash(); err != nil {
				t.Fatal(err)
			}
			rs, err := r.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if rs.LSN != tc.want {
				t.Fatalf("recovered LSN %d, want %d (cut at byte %d)", rs.LSN, tc.want, tc.cut)
			}
			// Resume redelivery from the recovered LSN and compare with a
			// never-crashed server fed the full schedule.
			for _, f := range schedule[rs.LSN:] {
				_ = r.Receive(f)
			}
			ref := NewSharded(2)
			for _, f := range schedule {
				_ = ref.Receive(f)
			}
			gotRecs, refRecs := r.Records(), ref.Records()
			if len(gotRecs) != len(refRecs) {
				t.Fatalf("recovered log holds %d records, reference %d", len(gotRecs), len(refRecs))
			}
			for j := range gotRecs {
				if gotRecs[j] != refRecs[j] {
					t.Fatalf("record %d differs: got %+v want %+v", j, gotRecs[j], refRecs[j])
				}
			}
			if got, want := r.Coverage(), ref.Coverage(); got != want {
				t.Fatalf("coverage differs:\n got: %+v\nwant: %+v", got, want)
			}
			if got, want := r.Heartbeats(), ref.Heartbeats(); got != want {
				t.Fatalf("heartbeats %d, want %d", got, want)
			}
		})
	}
}

// A staged-but-unflushed commit group dies with the process: the crash
// loses the whole acked tail (LSN 0 with nothing flushed) and clients
// re-send it — the SyncEvery>1-equivalent ack contract.
func TestGroupCommitStagedTailLostAtCrash(t *testing.T) {
	disk := storage.NewDisk(storage.Faults{})
	s := NewSharded(1)
	s.AttachDurability(DurabilityConfig{Disk: disk, SnapshotEvery: -1, FlushEvery: 1 << 10})
	rng := rand.New(rand.NewSource(11))
	frames := buildConformanceFrames(rng, 3, 2, 2)
	for _, f := range frames {
		if err := s.Receive(f); err != nil {
			t.Fatal(err)
		}
	}
	st := s.DurabilityStats()
	if st.StagedEntries != len(frames) || st.Syncs != 0 || st.GroupCommits != 0 {
		t.Fatalf("before crash: staged=%d syncs=%d groups=%d, want %d/0/0",
			st.StagedEntries, st.Syncs, st.GroupCommits, len(frames))
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	rs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.LSN != 0 || len(s.Records()) != 0 {
		t.Fatalf("staged tail survived: LSN %d, %d records", rs.LSN, len(s.Records()))
	}
	// Redelivery restores everything.
	for _, f := range frames {
		if err := s.Receive(f); err != nil {
			t.Fatal(err)
		}
	}
	ref := NewSharded(1)
	for _, f := range frames {
		_ = ref.Receive(f)
	}
	if got, want := s.Coverage(), ref.Coverage(); got != want {
		t.Fatalf("coverage after redelivery differs:\n got: %+v\nwant: %+v", got, want)
	}
}

// Checkpoint must close the open coalesced run and flush the staged group
// before capturing the snapshot LSN, so a crash right after a checkpoint
// loses nothing and no run straddles the snapshot boundary.
func TestCheckpointFlushesOpenRun(t *testing.T) {
	disk := storage.NewDisk(storage.Faults{})
	s := NewSharded(1)
	s.AttachDurability(DurabilityConfig{Disk: disk, SnapshotEvery: -1, FlushEvery: 1 << 10, Coalesce: true})
	const n = 10
	for i := 0; i < n; i++ {
		if err := s.Receive(AppendHeartbeat(nil, 3, int64(i+1)*1_000, 5_000)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.DurabilityStats()
	if st.StagedEntries != 1 {
		t.Fatalf("a same-rank heartbeat run staged %d entries, want 1 open run", st.StagedEntries)
	}
	if st.CoalescedEntries != n-1 {
		t.Fatalf("coalesced %d outcomes, want %d", st.CoalescedEntries, n-1)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	rs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.LSN != n {
		t.Fatalf("recovered LSN %d, want %d", rs.LSN, n)
	}
	if got := s.Heartbeats(); got != n {
		t.Fatalf("recovered %d heartbeats, want %d", got, n)
	}
	lv := s.Liveness()
	if len(lv) != 1 || lv[0].Rank != 3 || lv[0].LastSeenNs != n*1_000 {
		t.Fatalf("liveness after recovery = %+v, want rank 3 seen at %d ns", lv, n*1_000)
	}
}

// While the server is down (between Crash and Recover) a Client's flush is
// refused without touching dedup state, the sequence number rolls back, and
// the records stay buffered; the first flush after recovery packs every
// refused interval into one frame with a dense sequence number.
func TestClientPacksAcrossServerDowntime(t *testing.T) {
	s := NewSharded(1)
	s.AttachDurability(DurabilityConfig{Disk: storage.NewDisk(storage.Faults{}), SnapshotEvery: -1})
	c := s.NewClient(2, 4)
	put := func(lo, hi int, down bool) {
		t.Helper()
		for i := lo; i < hi; i++ {
			err := c.OnSlice(detect.SliceRecord{Sensor: 1, Rank: 2, SliceNs: int64(i), Count: 1, AvgNs: 100})
			if down && err != nil && !errors.Is(err, ErrServerDown) {
				t.Fatalf("flush during downtime returned %v, want ErrServerDown", err)
			}
			if !down && err != nil {
				t.Fatal(err)
			}
		}
	}
	put(0, 4, false) // batch full: flushed as frame seq 1
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	put(4, 8, true) // refused: seq rolls back, records stay buffered
	put(8, 12, true)
	if err := c.Flush(); !errors.Is(err, ErrServerDown) {
		t.Fatalf("flush against a down server returned %v, want ErrServerDown", err)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil { // one packed frame: seq 2, records 4..11
		t.Fatal(err)
	}
	if got := c.PackedFlushes(); got != 1 {
		t.Errorf("packed flushes = %d, want 1", got)
	}
	put(12, 14, false)
	if err := c.Flush(); err != nil { // ordinary frame: seq 3, records 12..13
		t.Fatal(err)
	}
	cov := s.Coverage()
	if cov.ExpectedFrames != 3 || cov.IngestedFrames != 3 {
		t.Errorf("frames expected=%d ingested=%d, want dense seq over 3 frames", cov.ExpectedFrames, cov.IngestedFrames)
	}
	if cov.IngestedRecords != 14 || cov.Fraction() != 1 {
		t.Errorf("coverage = %+v, want all 14 records", cov)
	}
	if got := len(s.Records()); got != 14 {
		t.Errorf("records = %d, want 14", got)
	}
}

// Group commit's observability contract: the wal_group_commits_total and
// wal_coalesced_entries_total counters track the encoder's stats, the
// wal_flush_bytes and wal_sync_wait_ns histograms see one observation per
// commit group, and a lineage-sampled frame leaves its trace as a
// wal_sync_wait_ns exemplar — the operator can follow one record into the
// sync stall it waited out.
func TestGroupCommitObsMetrics(t *testing.T) {
	s := NewSharded(1)
	s.AttachDurability(DurabilityConfig{
		Disk: storage.NewDisk(storage.Faults{}), SnapshotEvery: -1,
		FlushEvery: 4, Coalesce: true,
	})
	o := obs.New()
	o.EnableLineage(obs.LineageConfig{SampleEvery: 1}) // trace everything
	s.SetObs(o)
	c := s.NewClient(0, 2)
	for i := 0; i < 8; i++ {
		if err := c.OnSlice(detect.SliceRecord{Sensor: 1, Rank: 0, SliceNs: int64(i), Count: 1, AvgNs: 100}); err != nil {
			t.Fatal(err)
		}
		if err := s.Receive(AppendHeartbeat(nil, 0, int64(i+1)*1_000, 5_000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.DurabilityStats()
	if got := o.Counter("wal_group_commits_total").Value(); got != st.GroupCommits || got == 0 {
		t.Errorf("wal_group_commits_total = %d, stats say %d", got, st.GroupCommits)
	}
	if got := o.Counter("wal_coalesced_entries_total").Value(); got != st.CoalescedEntries || got == 0 {
		t.Errorf("wal_coalesced_entries_total = %d, stats say %d", got, st.CoalescedEntries)
	}
	if got := o.Histogram("wal_flush_bytes").Count(); got != st.GroupCommits {
		t.Errorf("wal_flush_bytes observations = %d, want one per group commit (%d)", got, st.GroupCommits)
	}
	sw := o.Histogram("wal_sync_wait_ns")
	if got := sw.Count(); got != st.GroupCommits {
		t.Errorf("wal_sync_wait_ns observations = %d, want one per group commit (%d)", got, st.GroupCommits)
	}
	ex := sw.Exemplars()
	if len(ex) == 0 {
		t.Fatal("no wal_sync_wait_ns exemplars despite every frame being lineage-sampled")
	}
	for _, e := range ex {
		if e.Trace == 0 {
			t.Errorf("exemplar without a trace: %+v", e)
		}
	}
}

// The coalescing encoder's reason to exist: a heartbeat-heavy workload
// journals at least 5x fewer WAL bytes than the per-op encoder, because a
// run of same-rank heartbeats costs one count-delta entry.
func TestCoalescedWALBytesReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	frames := buildConformanceFrames(rng, 2, 1, 2)
	var schedule [][]byte
	for i, f := range frames {
		schedule = append(schedule, f)
		for j := 0; j < 32; j++ { // heartbeat-heavy steady state
			schedule = append(schedule, AppendHeartbeat(nil, 1, int64(i*32+j+1)*1_000, 5_000))
		}
	}

	run := func(cfg DurabilityConfig) DurabilityStats {
		s := NewSharded(1)
		cfg.Disk = storage.NewDisk(storage.Faults{})
		cfg.SnapshotEvery = -1
		s.AttachDurability(cfg)
		for _, f := range schedule {
			_ = s.Receive(f)
		}
		if err := s.Checkpoint(); err != nil { // flush the tail group
			t.Fatal(err)
		}
		return s.DurabilityStats()
	}

	perOp := run(DurabilityConfig{})
	coal := run(DurabilityConfig{FlushEvery: 64, Coalesce: true})
	if coal.WALBytes*5 > perOp.WALBytes {
		t.Fatalf("coalesced WAL wrote %d bytes, per-op %d: reduction below 5x", coal.WALBytes, perOp.WALBytes)
	}
	if coal.GroupCommits == 0 || coal.CoalescedEntries == 0 {
		t.Fatalf("stats = %+v, want group commits and coalesced outcomes", coal)
	}
	if perOp.Syncs <= coal.Syncs {
		t.Fatalf("per-op synced %d times, coalesced %d: group commit did not amortize", perOp.Syncs, coal.Syncs)
	}
	if coal.FlushEvery != 64 || !coal.Coalesce || perOp.FlushEvery != 1 || perOp.Coalesce {
		t.Fatalf("effective config not surfaced: per-op %+v, coalesced %+v", perOp, coal)
	}
}
