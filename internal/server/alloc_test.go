package server

import (
	"testing"

	"vsensor/internal/detect"
)

// TestFlushSteadyStateAllocs pins the client transfer path's allocation
// behaviour: once the wire buffer, the shard's flow/progress entries, and
// the epoch accumulators are warm, shipping a batch allocates nothing
// beyond the (amortized, pre-sized here) growth of the shard sub-log, its
// segment index, and the epochs' entry slices.
func TestFlushSteadyStateAllocs(t *testing.T) {
	s := New()
	c := s.NewClient(3, 8)
	batch := make([]detect.SliceRecord, 8)
	for i := range batch {
		batch[i] = detect.SliceRecord{
			Sensor: i, Group: i % 2, Rank: 3,
			SliceNs: int64(i) * 1000, Count: 4,
			AvgNs: 12.5, AvgInstr: 99,
		}
	}
	// Pre-size the append-only structures so their growth doesn't count
	// against the per-flush path, and warm the client's buffers (and the
	// epoch map entries) with one round.
	sh := s.shardFor(3)
	sh.records = make([]detect.SliceRecord, 0, 16<<10)
	sh.segments = make([]segment, 0, 1<<10)
	for _, r := range batch {
		c.OnSlice(r)
	}
	for si := range s.an.stripes {
		st := &s.an.stripes[si]
		for k, ep := range st.epochs {
			grown := make([]epochEntry, len(ep.entries), 1<<10)
			copy(grown, ep.entries)
			ep.entries = grown
			st.epochs[k] = ep
		}
	}

	avg := testing.AllocsPerRun(200, func() {
		for _, r := range batch {
			c.OnSlice(r)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state OnSlice+Flush allocates %.1f objects per batch, want 0", avg)
	}
}
