package server

import (
	"testing"

	"vsensor/internal/detect"
)

// TestFlushSteadyStateAllocs pins the client transfer path's allocation
// behaviour: once the wire buffer and the server's rank-progress entries
// are warm, shipping a batch allocates nothing beyond the server record
// log's own (amortized, pre-sized here) growth.
func TestFlushSteadyStateAllocs(t *testing.T) {
	s := New()
	c := s.NewClient(3, 8)
	batch := make([]detect.SliceRecord, 8)
	for i := range batch {
		batch[i] = detect.SliceRecord{
			Sensor: i, Group: i % 2, Rank: 3,
			SliceNs: int64(i) * 1000, Count: 4,
			AvgNs: 12.5, AvgInstr: 99,
		}
	}
	// Pre-size the record log so its growth doesn't count against the
	// per-flush path, and warm the client's buffers with one round.
	s.records = make([]detect.SliceRecord, 0, 16<<10)
	for _, r := range batch {
		c.OnSlice(r)
	}

	avg := testing.AllocsPerRun(200, func() {
		for _, r := range batch {
			c.OnSlice(r)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state OnSlice+Flush allocates %.1f objects per batch, want 0", avg)
	}
}
