package server

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vsensor/internal/detect"
)

// DefaultSnapshotThreshold is the outlier threshold the cached report is
// rendered at. It matches the facade's default dashboard threshold so the
// CLI, /status, and the outlier endpoint all read the same render.
const DefaultSnapshotThreshold = 0.9

// Rebuild throttle: with thousands of pollers racing continuous ingest,
// every poll would otherwise observe a newer mutation version and trigger
// its own rebuild — reintroducing the per-request sweep tax the cache
// exists to remove. Consecutive rebuilds are therefore spaced by a multiple
// of the last rebuild's own cost (bounded below), which caps the rebuild
// rate at a fixed fraction of one core regardless of poller count while
// keeping staleness at roughly one interval: factor 39 bounds the rebuild
// duty cycle at ~2.5% of a core (1 build per 39 build-times of quiet),
// which keeps a 10k-poller storm inside the read-tax budget even on a
// single-core host where every rebuild steals directly from ingest. A
// quiescent server is exempt: once ingest stops, the version stops moving
// and the next rebuild is the last.
const (
	minSnapshotRebuildGap = 200 * time.Microsecond
	snapshotRebuildFactor = 39
)

// ReportSnapshot is one immutable generation of the server's full report:
// outliers, coverage, liveness, progress, and the ordered-segment record
// view, all captured at a single mutation version and stamped with the
// epoch watermark and arrival ticket of that instant. Every field is
// read-only after construction, so any number of pollers can share one
// snapshot without locks; /status, /records, the outlier endpoints, and the
// facade's Report all serve from the same instance until the watermark
// advances.
type ReportSnapshot struct {
	// Gen is the render generation — strictly monotone over the server's
	// lifetime (crash/recover included), and the value served as the HTTP
	// ETag. Two responses with equal Gen are byte-identical.
	Gen uint64

	// Ticket and watermark stamp the ingest instant the snapshot describes:
	// Ticket is the last arrival ticket assigned, WatermarkNs the cross-rank
	// epoch watermark (HaveWatermark false before any rank reports).
	Ticket        uint64
	WatermarkNs   int64
	HaveWatermark bool

	// Threshold is the outlier threshold Report was rendered at.
	Threshold float64

	// Down marks a snapshot served while the server is between Crash and
	// Recover. The remaining fields then describe the last state rendered
	// before the crash — the dashboard's "last known good" during an outage.
	Down bool

	Progress   Progress
	PerRank    []RankProgress
	Coverage   Coverage
	PerShard   []ShardCoverage
	Epochs     EpochStats
	Liveness   LivenessSummary
	Report     OutlierReport
	Durability DurabilityStats

	// version is the mutation counter value the snapshot was built at; segs
	// and offsets hold the ordered-segment record view (offsets[i] = records
	// before segs[i]) so record windows are served without copying the log.
	version uint64
	segs    []segSnap
	offsets []int
	total   int
}

// Outliers returns the rendered inter-process outliers.
func (sn *ReportSnapshot) Outliers() []Outlier { return sn.Report.Outliers }

// Total returns the number of records in the snapshot's ordered view — the
// cursor a fully caught-up client holds.
func (sn *ReportSnapshot) Total() int { return sn.total }

// BaseCursor returns the smallest valid cursor for this snapshot's record
// window. It is 0 today (the log is never compacted in place), but clients
// must take it from the response rather than assume it: a crash with an
// unsynced WAL tail recovers a shorter log, and the explicit base is how a
// client detects that its cursor now points past the end.
func (sn *ReportSnapshot) BaseCursor() int { return 0 }

// RecordsWindow returns the records at positions [cursor, Total()) of the
// snapshot's ordered view, the cursor to resume from, and the window base.
// ok is false when the cursor is outside [base, total] — negative, or
// beyond the end of a log that shrank across a crash — in which case the
// caller should restart from base. The returned slice is never nil.
func (sn *ReportSnapshot) RecordsWindow(cursor int) (recs []detect.SliceRecord, next, base int, ok bool) {
	base = sn.BaseCursor()
	if cursor < base || cursor > sn.total {
		return []detect.SliceRecord{}, base, base, false
	}
	recs = make([]detect.SliceRecord, 0, sn.total-cursor)
	for i, sg := range sn.segs {
		if sn.offsets[i]+len(sg.recs) <= cursor {
			continue
		}
		from := 0
		if cursor > sn.offsets[i] {
			from = cursor - sn.offsets[i]
		}
		recs = append(recs, sg.recs[from:]...)
	}
	return recs, sn.total, base, true
}

// Records materializes the snapshot's full ordered record view.
func (sn *ReportSnapshot) Records() []detect.SliceRecord {
	recs, _, _, _ := sn.RecordsWindow(sn.BaseCursor())
	return recs
}

// snapshotCache is the server-side versioned report cache. A mutation
// counter (ver) is bumped by every state change — frame ingest, dedup,
// reject, heartbeat, crash, recover — and Snapshot rebuilds lazily,
// single-flight, only when the counter moved past the cached render.
type snapshotCache struct {
	ver atomic.Uint64                  // mutation counter; bumped by every state change
	cur atomic.Pointer[ReportSnapshot] // latest render; nil before first Snapshot

	// mu serializes rebuilds; gen/lastBuild/buildDur are guarded by it.
	mu        sync.Mutex
	gen       uint64
	lastBuild time.Time
	buildDur  time.Duration

	hits   atomic.Int64 // Snapshot calls served from cur without a rebuild
	builds atomic.Int64 // rebuilds performed

	// Long-poll fan-out: waiters park on notify, which is closed and
	// replaced on every version bump — one channel close wakes any number
	// of pollers. waiters gates the broadcast so poller-free ingest pays a
	// single atomic load.
	notifyMu sync.Mutex
	notify   chan struct{}
	waiters  atomic.Int32

	threshold atomic.Uint64 // math.Float64bits of the render threshold
}

func (c *snapshotCache) init() {
	c.notify = make(chan struct{})
	c.threshold.Store(math.Float64bits(DefaultSnapshotThreshold))
}

// bumpReadVersion invalidates the cached report and wakes long-pollers.
// Called on every ingest outcome (any of which can advance the watermark,
// reopen an epoch, or flip a liveness lease) and by Crash/Recover.
func (s *Server) bumpReadVersion() {
	c := &s.snap
	c.ver.Add(1)
	if c.waiters.Load() > 0 {
		c.notifyMu.Lock()
		close(c.notify)
		c.notify = make(chan struct{})
		c.notifyMu.Unlock()
	}
}

func (c *snapshotCache) waitChan() <-chan struct{} {
	c.notifyMu.Lock()
	ch := c.notify
	c.notifyMu.Unlock()
	return ch
}

// SetSnapshotThreshold changes the outlier threshold the cached report
// renders at (DefaultSnapshotThreshold until called). Non-positive values
// are ignored. The cache is invalidated so the next Snapshot re-renders.
func (s *Server) SetSnapshotThreshold(threshold float64) {
	if threshold <= 0 {
		return
	}
	s.snap.threshold.Store(math.Float64bits(threshold))
	s.bumpReadVersion()
}

func (s *Server) snapshotThreshold() float64 {
	return math.Float64frombits(s.snap.threshold.Load())
}

// Snapshot returns the current report snapshot, rebuilding it only if the
// server state changed since the last render. The fast path — nothing
// changed — is two atomic loads, so any number of concurrent pollers share
// one render per state change. Rebuilds are single-flight and throttled
// (see minSnapshotRebuildGap), and a reader never queues behind the
// builder: while a rebuild (or its throttle window) is in progress,
// concurrent readers are served the latest completed render. That bounds
// staleness under churn at roughly one throttle interval and makes a
// poller storm cost the ingest path one background sweep per interval
// instead of a convoy. Once the server quiesces the rebuild lock is
// uncontended, so the first Snapshot after the last mutation renders the
// final state — sequential read-your-writes callers (the CLI, tests) are
// always exact.
func (s *Server) Snapshot() *ReportSnapshot {
	c := &s.snap
	if sn := c.cur.Load(); sn != nil && sn.version == c.ver.Load() {
		c.hits.Add(1)
		s.obsSnapHits.Inc()
		return sn
	}
	if !c.mu.TryLock() {
		// A rebuild is in flight. First-ever render: wait for it (there is
		// nothing to serve yet). Otherwise serve the latest completed one.
		if c.cur.Load() == nil {
			c.mu.Lock()
		} else {
			sn := c.cur.Load()
			c.hits.Add(1)
			s.obsSnapHits.Inc()
			return sn
		}
	}
	defer c.mu.Unlock()
	if sn := c.cur.Load(); sn != nil && sn.version == c.ver.Load() {
		c.hits.Add(1)
		s.obsSnapHits.Inc()
		return sn
	}
	if c.cur.Load() != nil {
		gap := c.buildDur * snapshotRebuildFactor
		if gap < minSnapshotRebuildGap {
			gap = minSnapshotRebuildGap
		}
		// Sleeping while holding mu is the throttle: other readers are not
		// blocked (they serve the previous render above), and state changes
		// accumulated during the sleep are folded into the build below.
		if wait := time.Until(c.lastBuild.Add(gap)); wait > 0 {
			time.Sleep(wait)
		}
	}
	start := time.Now()
	sn := s.buildSnapshot()
	if sn == nil {
		// Down (between Crash and Recover): serve the last pre-crash render
		// as "last known good" rather than a half-wiped sweep. Recover bumps
		// the version, so the first post-recovery read rebuilds.
		if old := c.cur.Load(); old != nil {
			c.hits.Add(1)
			s.obsSnapHits.Inc()
			return old
		}
		sn = &ReportSnapshot{
			version:   c.ver.Load(),
			Threshold: s.snapshotThreshold(),
			Down:      true,
		}
	}
	c.gen++
	sn.Gen = c.gen
	c.cur.Store(sn)
	c.lastBuild = time.Now()
	c.buildDur = c.lastBuild.Sub(start)
	c.builds.Add(1)
	s.obsSnapBuilds.Inc()
	s.obsSnapGen.Set(float64(c.gen))
	return sn
}

// buildSnapshot renders the full report at the current mutation version, or
// nil when the server is down. With durability attached it holds the shared
// state lock, so a render never interleaves with Crash/Recover wiping or
// reinstalling the shards.
func (s *Server) buildSnapshot() *ReportSnapshot {
	if d := s.dur; d != nil {
		d.stateMu.RLock()
		defer d.stateMu.RUnlock()
	}
	if s.down.Load() {
		return nil
	}
	threshold := s.snapshotThreshold()
	sn := &ReportSnapshot{
		version:   s.snap.ver.Load(),
		Ticket:    s.ticket.Load(),
		Threshold: threshold,
	}
	sn.segs = s.orderedSegments()
	sn.offsets = make([]int, len(sn.segs))
	for i, sg := range sn.segs {
		sn.offsets[i] = sn.total
		sn.total += len(sg.recs)
	}
	sn.WatermarkNs, sn.HaveWatermark = s.watermark()
	outliers := s.an.outliers(threshold, sn.WatermarkNs, sn.HaveWatermark)
	sortOutliers(outliers)
	// Epoch counts are captured after the outlier render: computing outliers
	// seals epochs under the watermark, and the cached report must agree
	// with a fresh recompute at the same instant (sealing is idempotent).
	sn.Epochs = s.EpochStats()
	sn.Progress = s.Progress()
	sn.PerRank = s.PerRankProgress()
	sn.Coverage = s.Coverage()
	sn.PerShard = s.PerShardCoverage()
	v := s.livenessView()
	sn.Liveness = summarizeLiveness(v)
	sn.Report = assembleReport(outliers, sn.Coverage, v.ranks)
	sn.Durability = s.DurabilityStats()
	return sn
}

// WaitSnapshot is the long-poll primitive behind ?wait=1: it blocks until
// the snapshot generation exceeds afterGen, or timeout elapses, and returns
// the current snapshot either way. N parked pollers cost one channel close
// per state change — no per-poller goroutines or timers on the ingest path.
func (s *Server) WaitSnapshot(afterGen uint64, timeout time.Duration) *ReportSnapshot {
	c := &s.snap
	deadline := time.Now().Add(timeout)
	for {
		sn := s.Snapshot()
		if sn.Gen > afterGen || !time.Now().Before(deadline) {
			return sn
		}
		// Register before re-checking the version: a bump after registration
		// is guaranteed to broadcast, and a bump before it is caught by the
		// re-check. While down, Snapshot serves a stale render whose version
		// lags the counter permanently — park anyway; Recover's bump wakes us.
		c.waiters.Add(1)
		ch := c.waitChan()
		if c.ver.Load() != sn.version && !s.down.Load() {
			c.waiters.Add(-1)
			continue
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-ch:
		case <-timer.C:
		}
		timer.Stop()
		c.waiters.Add(-1)
	}
}

// SnapshotStats describes the report cache: the current generation, how
// many reads it served, and how many of those required a rebuild.
type SnapshotStats struct {
	Gen    uint64
	Reads  int64
	Hits   int64
	Builds int64
}

// HitRate is the fraction of reads served without a rebuild.
func (st SnapshotStats) HitRate() float64 {
	if st.Reads == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Reads)
}

// SnapshotStats returns the report cache counters.
func (s *Server) SnapshotStats() SnapshotStats {
	hits := s.snap.hits.Load()
	builds := s.snap.builds.Load()
	s.snap.mu.Lock()
	gen := s.snap.gen
	s.snap.mu.Unlock()
	return SnapshotStats{Gen: gen, Reads: hits + builds, Hits: hits, Builds: builds}
}

// sortOutliers orders outliers by (slice, sensor, rank, perf) — the
// arrival-order-invariant order every outlier surface serves.
func sortOutliers(out []Outlier) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].SliceNs != out[j].SliceNs {
			return out[i].SliceNs < out[j].SliceNs
		}
		if out[i].Sensor != out[j].Sensor {
			return out[i].Sensor < out[j].Sensor
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		// Perf breaks the remaining tie (two records from one rank in the
		// same keyed group) so the order never depends on arrival order.
		return out[i].Perf < out[j].Perf
	})
}

// assembleReport stamps rendered outliers with coverage and liveness —
// shared by InterProcessReport and the snapshot builder so both produce the
// same OutlierReport for the same inputs.
func assembleReport(outliers []Outlier, cov Coverage, ranks []RankLiveness) OutlierReport {
	rep := OutlierReport{
		Outliers: outliers,
		Coverage: cov,
		Liveness: ranks,
	}
	for _, rl := range ranks {
		if rl.State == Dead {
			rep.DeadRanks = append(rep.DeadRanks, rl.Rank)
		}
	}
	rep.Degraded = len(rep.DeadRanks) > 0
	rep.LivenessConfidence = 1
	if n := len(ranks); n > 0 {
		rep.LivenessConfidence = float64(n-len(rep.DeadRanks)) / float64(n)
	}
	rep.Confidence = cov.Fraction() * rep.LivenessConfidence
	return rep
}

// summarizeLiveness folds a liveness view into per-state counts.
func summarizeLiveness(v livenessView) LivenessSummary {
	out := LivenessSummary{FrontierNs: v.frontier}
	for _, rl := range v.ranks {
		switch rl.State {
		case Alive:
			out.Alive++
		case Suspect:
			out.Suspect++
		case Dead:
			out.Dead++
		}
	}
	return out
}
