package server

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/storage"
)

func u32(v uint32) []byte  { return binary.LittleEndian.AppendUint32(nil, v) }
func u64b(v uint64) []byte { return binary.LittleEndian.AppendUint64(nil, v) }

func testBody(parts ...[]byte) []byte {
	var b []byte
	for _, p := range parts {
		b = append(b, p...)
	}
	return b
}

// FuzzWALReplay hands recovery an arbitrary byte string as the only WAL
// segment on disk (no snapshot). Whatever the bytes claim, Recover must
// neither panic nor loop: it applies the longest valid prefix, reports a
// consistent LSN, and leaves a server that accepts fresh ingest.
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: a real segment produced by a live server, plus edge shapes.
	seedDisk := storage.NewDisk(storage.Faults{})
	seedSrv := NewSharded(2)
	seedSrv.AttachDurability(DurabilityConfig{SnapshotEvery: -1, Disk: seedDisk})
	rng := rand.New(rand.NewSource(99))
	for _, frame := range buildConformanceFrames(rng, 3, 2, 2) {
		_ = seedSrv.Receive(frame)
	}
	_ = seedSrv.Receive(AppendHeartbeat(nil, 1, 1_000, 500))
	if seg, err := seedDisk.ReadFile("wal.0"); err == nil {
		f.Add(seg)
		if len(seg) > 10 {
			f.Add(seg[:len(seg)-7]) // torn tail
		}
	}
	// A segment written by the coalescing group-commit encoder: dup and
	// heartbeat runs collapse into walKindDupN / walKindHeartbeatN entries
	// alongside plain frames.
	coalDisk := storage.NewDisk(storage.Faults{})
	coalSrv := NewSharded(2)
	coalSrv.AttachDurability(DurabilityConfig{SnapshotEvery: -1, Disk: coalDisk,
		FlushEvery: 4, Coalesce: true})
	for _, frame := range buildConformanceFrames(rng, 2, 2, 2) {
		_ = coalSrv.Receive(frame)
		_ = coalSrv.Receive(frame) // immediate redelivery: dup runs
	}
	for i := 0; i < 6; i++ {
		_ = coalSrv.Receive(AppendHeartbeat(nil, 1, int64(1_000+i), 500))
	}
	_ = coalSrv.Checkpoint() // close the open run and flush the group
	if seg, err := coalDisk.ReadFile("wal.0"); err == nil {
		f.Add(seg)
		if len(seg) > 10 {
			f.Add(seg[:len(seg)-7]) // torn tail inside a commit group
		}
	}
	// Hand-built coalesced entries: every N kind, including a run of one,
	// a count that contradicts the LSN, and a hostile count.
	var crafted []byte
	crafted = appendTestEntry(crafted, walKindDupN, 3, testBody(u32(1), u32(3)))
	crafted = appendTestEntry(crafted, walKindChecksumN, 5, testBody(u32(2)))
	crafted = appendTestEntry(crafted, walKindRejectN, 6, testBody(u32(1)))
	crafted = appendTestEntry(crafted, walKindHeartbeatN, 10, testBody(u32(1), u64b(1000), u64b(500), u32(4)))
	f.Add(crafted)
	f.Add(appendTestEntry(nil, walKindDupN, 1, testBody(u32(1), u32(2))))            // span past LSN 1
	f.Add(appendTestEntry(nil, walKindHeartbeatN, 8, testBody(u32(1), u64b(1), u64b(1), u32(1<<31)))) // hostile count
	f.Add(appendTestEntry(nil, walKindDupN, 2, testBody(u32(1))))                    // body too short for count
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, seg []byte) {
		disk := storage.NewDisk(storage.Faults{})
		if err := disk.Append("wal.0", seg); err != nil {
			t.Fatal(err)
		}
		if err := disk.Sync("wal.0"); err != nil {
			t.Fatal(err)
		}
		s := NewSharded(4)
		s.AttachDurability(DurabilityConfig{Disk: disk})
		if err := s.Crash(); err != nil {
			t.Fatal(err)
		}
		rs, err := s.Recover()
		if err != nil {
			// Recovery may fail only on disk errors, never on log content;
			// a fault-free disk must always recover (to a possibly empty
			// prefix).
			t.Fatalf("Recover on hostile segment: %v", err)
		}
		// LSNs count delivery outcomes: a coalesced entry advances the LSN
		// by its whole covered run, so entries replayed is a lower bound
		// and outcomes replayed is exact.
		if rs.LSN != uint64(rs.OutcomesReplayed) {
			t.Fatalf("LSN %d != %d outcomes replayed (no snapshot)", rs.LSN, rs.OutcomesReplayed)
		}
		if rs.OutcomesReplayed < int64(rs.WALEntriesReplayed) {
			t.Fatalf("outcomes %d < entries %d", rs.OutcomesReplayed, rs.WALEntriesReplayed)
		}
		if rs.TruncatedBytes < 0 || rs.TruncatedBytes > int64(len(seg)) {
			t.Fatalf("truncated %d bytes of a %d-byte segment", rs.TruncatedBytes, len(seg))
		}
		// The recovered server is live and consistent: records parse back,
		// fresh ingest and analysis work.
		recs := s.Records()
		if int64(len(recs)) != rs.RecordsRecovered {
			t.Fatalf("Records() holds %d, recovery claims %d", len(recs), rs.RecordsRecovered)
		}
		probe := AppendFrame(nil, FrameHeader{Rank: 2, Seq: 1 << 60, CumRecords: 1 << 60},
			[]detect.SliceRecord{{Sensor: 0, Rank: 2, Count: 1, AvgNs: 1}})
		if err := s.Receive(probe); err != nil {
			t.Fatalf("post-recovery ingest: %v", err)
		}
		_ = s.InterProcessOutliers(0.9)
		_ = s.Liveness()
	})
}
