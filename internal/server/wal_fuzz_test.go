package server

import (
	"bytes"
	"math/rand"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/storage"
)

// FuzzWALReplay hands recovery an arbitrary byte string as the only WAL
// segment on disk (no snapshot). Whatever the bytes claim, Recover must
// neither panic nor loop: it applies the longest valid prefix, reports a
// consistent LSN, and leaves a server that accepts fresh ingest.
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: a real segment produced by a live server, plus edge shapes.
	seedDisk := storage.NewDisk(storage.Faults{})
	seedSrv := NewSharded(2)
	seedSrv.AttachDurability(DurabilityConfig{SnapshotEvery: -1, Disk: seedDisk})
	rng := rand.New(rand.NewSource(99))
	for _, frame := range buildConformanceFrames(rng, 3, 2, 2) {
		_ = seedSrv.Receive(frame)
	}
	_ = seedSrv.Receive(AppendHeartbeat(nil, 1, 1_000, 500))
	if seg, err := seedDisk.ReadFile("wal.0"); err == nil {
		f.Add(seg)
		if len(seg) > 10 {
			f.Add(seg[:len(seg)-7]) // torn tail
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, seg []byte) {
		disk := storage.NewDisk(storage.Faults{})
		if err := disk.Append("wal.0", seg); err != nil {
			t.Fatal(err)
		}
		if err := disk.Sync("wal.0"); err != nil {
			t.Fatal(err)
		}
		s := NewSharded(4)
		s.AttachDurability(DurabilityConfig{Disk: disk})
		if err := s.Crash(); err != nil {
			t.Fatal(err)
		}
		rs, err := s.Recover()
		if err != nil {
			// Recovery may fail only on disk errors, never on log content;
			// a fault-free disk must always recover (to a possibly empty
			// prefix).
			t.Fatalf("Recover on hostile segment: %v", err)
		}
		if rs.LSN != uint64(rs.WALEntriesReplayed) {
			t.Fatalf("LSN %d != %d entries replayed (no snapshot)", rs.LSN, rs.WALEntriesReplayed)
		}
		if rs.TruncatedBytes < 0 || rs.TruncatedBytes > int64(len(seg)) {
			t.Fatalf("truncated %d bytes of a %d-byte segment", rs.TruncatedBytes, len(seg))
		}
		// The recovered server is live and consistent: records parse back,
		// fresh ingest and analysis work.
		recs := s.Records()
		if int64(len(recs)) != rs.RecordsRecovered {
			t.Fatalf("Records() holds %d, recovery claims %d", len(recs), rs.RecordsRecovered)
		}
		probe := AppendFrame(nil, FrameHeader{Rank: 2, Seq: 1 << 60, CumRecords: 1 << 60},
			[]detect.SliceRecord{{Sensor: 0, Rank: 2, Count: 1, AvgNs: 1}})
		if err := s.Receive(probe); err != nil {
			t.Fatalf("post-recovery ingest: %v", err)
		}
		_ = s.InterProcessOutliers(0.9)
		_ = s.Liveness()
	})
}
