package server

import (
	"testing"
	"testing/quick"

	"vsensor/internal/detect"
)

func TestBatchRoundTrip(t *testing.T) {
	recs := []detect.SliceRecord{
		{Sensor: 1, Group: 0, Rank: 5, SliceNs: 3_000_000, Count: 12, AvgNs: 1234.5, AvgInstr: 99.25},
		{Sensor: 2, Group: 3, Rank: 0, SliceNs: 0, Count: 1, AvgNs: 7, AvgInstr: 0},
	}
	enc := encodeBatch(recs)
	got, err := decodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := decodeBatch([]byte{1}); err == nil {
		t.Error("short header accepted")
	}
	enc := encodeBatch([]detect.SliceRecord{{Sensor: 1}})
	if _, err := decodeBatch(enc[:len(enc)-2]); err == nil {
		t.Error("truncated batch accepted")
	}
}

func TestClientBatching(t *testing.T) {
	s := New()
	c := s.NewClient(10)
	for i := 0; i < 25; i++ {
		c.OnSlice(detect.SliceRecord{Sensor: 0, Rank: 1, SliceNs: int64(i), Count: 1, AvgNs: 5})
	}
	if s.Messages() != 2 {
		t.Errorf("messages before flush = %d, want 2 full batches", s.Messages())
	}
	c.Flush()
	if s.Messages() != 3 || c.RecordsSent() != 25 {
		t.Errorf("messages=%d sent=%d", s.Messages(), c.RecordsSent())
	}
	if len(s.Records()) != 25 {
		t.Errorf("server records = %d", len(s.Records()))
	}
	if c.BytesSent() != s.BytesReceived() {
		t.Errorf("byte accounting mismatch: %d vs %d", c.BytesSent(), s.BytesReceived())
	}
}

func TestBatchingReducesMessages(t *testing.T) {
	batched, unbatched := New(), New()
	cb := batched.NewClient(64)
	cu := unbatched.NewClient(1)
	for i := 0; i < 640; i++ {
		r := detect.SliceRecord{Sensor: 0, Rank: 0, SliceNs: int64(i), Count: 1, AvgNs: 1}
		cb.OnSlice(r)
		cu.OnSlice(r)
	}
	cb.Flush()
	cu.Flush()
	if batched.Messages() >= unbatched.Messages() {
		t.Errorf("batching should reduce messages: %d vs %d", batched.Messages(), unbatched.Messages())
	}
	// Payload bytes shrink too (fewer headers).
	if batched.BytesReceived() >= unbatched.BytesReceived() {
		t.Errorf("batching should reduce bytes: %d vs %d", batched.BytesReceived(), unbatched.BytesReceived())
	}
}

func TestInterProcessOutliers(t *testing.T) {
	s := New()
	c := s.NewClient(0)
	// 8 ranks, same sensor & slice; rank 5 is 2x slower.
	for rank := 0; rank < 8; rank++ {
		avg := 100.0
		if rank == 5 {
			avg = 200
		}
		c.OnSlice(detect.SliceRecord{Sensor: 3, Rank: rank, SliceNs: 1_000_000, Count: 10, AvgNs: avg})
	}
	c.Flush()
	outs := s.InterProcessOutliers(0.8)
	if len(outs) != 1 {
		t.Fatalf("outliers = %+v", outs)
	}
	o := outs[0]
	if o.Rank != 5 || o.Sensor != 3 || o.Perf > 0.51 || o.Perf < 0.49 {
		t.Errorf("outlier = %+v", o)
	}
}

func TestOutliersRequireQuorum(t *testing.T) {
	s := New()
	c := s.NewClient(0)
	c.OnSlice(detect.SliceRecord{Sensor: 0, Rank: 0, SliceNs: 0, Count: 1, AvgNs: 100})
	c.OnSlice(detect.SliceRecord{Sensor: 0, Rank: 1, SliceNs: 0, Count: 1, AvgNs: 500})
	c.Flush()
	if outs := s.InterProcessOutliers(0.8); len(outs) != 0 {
		t.Errorf("two ranks should not produce outliers: %+v", outs)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := New()
	done := make(chan struct{})
	for r := 0; r < 16; r++ {
		go func(rank int) {
			defer func() { done <- struct{}{} }()
			c := s.NewClient(7)
			for i := 0; i < 100; i++ {
				c.OnSlice(detect.SliceRecord{Sensor: 0, Rank: rank, SliceNs: int64(i), Count: 1, AvgNs: 1})
			}
			c.Flush()
		}(r)
	}
	for r := 0; r < 16; r++ {
		<-done
	}
	if len(s.Records()) != 1600 {
		t.Errorf("records = %d", len(s.Records()))
	}
}

// Property: encode/decode is the identity for arbitrary record batches.
func TestQuickWireFormat(t *testing.T) {
	f := func(sensors []uint8, avg float64, slice int64) bool {
		recs := make([]detect.SliceRecord, len(sensors))
		for i, sn := range sensors {
			recs[i] = detect.SliceRecord{
				Sensor: int(sn), Group: i % 4, Rank: i,
				SliceNs: slice, Count: int32(i + 1), AvgNs: avg, AvgInstr: avg / 2,
			}
		}
		enc := encodeBatch(recs)
		got, err := decodeBatch(enc)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
