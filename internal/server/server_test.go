package server

import (
	"encoding/binary"
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"vsensor/internal/detect"
)

func TestFrameRoundTrip(t *testing.T) {
	recs := []detect.SliceRecord{
		{Sensor: 1, Group: 0, Rank: 5, SliceNs: 3_000_000, Count: 12, AvgNs: 1234.5, AvgInstr: 99.25},
		{Sensor: 2, Group: 3, Rank: 0, SliceNs: 0, Count: 1, AvgNs: 7, AvgInstr: 0},
	}
	in := FrameHeader{Rank: 5, Seq: 3, CumRecords: 17}
	enc := AppendFrame(nil, in, recs)
	h, got, err := decodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rank != 5 || h.Seq != 3 || h.CumRecords != 17 || h.Count != len(recs) {
		t.Fatalf("header = %+v", h)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestParseFrameErrors(t *testing.T) {
	if _, err := ParseFrame([]byte{1}); err == nil {
		t.Error("short header accepted")
	}
	enc := AppendFrame(nil, FrameHeader{Rank: 0, Seq: 1, CumRecords: 1},
		[]detect.SliceRecord{{Sensor: 1}})
	if _, err := ParseFrame(enc[:len(enc)-2]); err == nil {
		t.Error("truncated frame accepted")
	}

	// Bad magic.
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if _, err := ParseFrame(bad); err == nil {
		t.Error("bad magic accepted")
	}

	// Bit corruption anywhere must be caught by the CRC.
	for _, bit := range []int{4 * 8, 9*8 + 3, 20 * 8, len(enc)*8 - 1} {
		flip := append([]byte(nil), enc...)
		flip[bit/8] ^= 1 << (bit % 8)
		_, err := ParseFrame(flip)
		if err == nil {
			t.Errorf("bit %d flip accepted", bit)
		}
	}

	// Zero sequence is reserved.
	zseq := AppendFrame(nil, FrameHeader{Rank: 0, Seq: 0, CumRecords: 1},
		[]detect.SliceRecord{{Sensor: 1}})
	if _, err := ParseFrame(zseq); err == nil {
		t.Error("seq 0 accepted")
	}

	// cumRecords must cover the frame's own records.
	lowcum := AppendFrame(nil, FrameHeader{Rank: 0, Seq: 1, CumRecords: 0},
		[]detect.SliceRecord{{Sensor: 1}})
	if _, err := ParseFrame(lowcum); err == nil {
		t.Error("cumRecords < count accepted")
	}
}

// A hostile record count must be rejected before it can size an allocation,
// and the error must not be misclassified as corruption.
func TestParseFrameHostileCount(t *testing.T) {
	enc := AppendFrame(nil, FrameHeader{Rank: 0, Seq: 1, CumRecords: 1},
		[]detect.SliceRecord{{Sensor: 1}})
	for _, n := range []uint32{MaxFrameRecords + 1, 1 << 31, 0xffffffff} {
		hostile := append([]byte(nil), enc...)
		binary.LittleEndian.PutUint32(hostile[24:], n)
		_, err := ParseFrame(hostile)
		if err == nil {
			t.Fatalf("count %d accepted", n)
		}
		if errors.Is(err, ErrChecksum) {
			t.Errorf("count %d reported as checksum error: %v", n, err)
		}
	}
	// Same guard for the rank field (bounds the per-rank flow map).
	hostile := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(hostile[4:], MaxFrameRank+1)
	if _, err := ParseFrame(hostile); err == nil {
		t.Error("hostile rank accepted")
	}
}

func TestClientBatching(t *testing.T) {
	s := New()
	c := s.NewClient(1, 10)
	for i := 0; i < 25; i++ {
		if err := c.OnSlice(detect.SliceRecord{Sensor: 0, Rank: 1, SliceNs: int64(i), Count: 1, AvgNs: 5}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Messages() != 2 {
		t.Errorf("messages before flush = %d, want 2 full batches", s.Messages())
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Messages() != 3 || c.RecordsSent() != 25 {
		t.Errorf("messages=%d sent=%d", s.Messages(), c.RecordsSent())
	}
	if len(s.Records()) != 25 {
		t.Errorf("server records = %d", len(s.Records()))
	}
	if c.BytesSent() != s.BytesReceived() {
		t.Errorf("byte accounting mismatch: %d vs %d", c.BytesSent(), s.BytesReceived())
	}
	cov := s.Coverage()
	if !cov.Complete() || cov.ExpectedRecords != 25 || cov.IngestedFrames != 3 {
		t.Errorf("coverage = %+v", cov)
	}
}

func TestBatchingReducesMessages(t *testing.T) {
	batched, unbatched := New(), New()
	cb := batched.NewClient(0, 64)
	cu := unbatched.NewClient(0, 1)
	for i := 0; i < 640; i++ {
		r := detect.SliceRecord{Sensor: 0, Rank: 0, SliceNs: int64(i), Count: 1, AvgNs: 1}
		cb.OnSlice(r)
		cu.OnSlice(r)
	}
	cb.Flush()
	cu.Flush()
	if batched.Messages() >= unbatched.Messages() {
		t.Errorf("batching should reduce messages: %d vs %d", batched.Messages(), unbatched.Messages())
	}
	// Payload bytes shrink too (fewer headers).
	if batched.BytesReceived() >= unbatched.BytesReceived() {
		t.Errorf("batching should reduce bytes: %d vs %d", batched.BytesReceived(), unbatched.BytesReceived())
	}
}

// Retransmitted frames are acknowledged but ingested exactly once, in any
// arrival order.
func TestReceiveDedupAndReorder(t *testing.T) {
	var frames [][]byte
	var cum uint64
	for seq := uint64(1); seq <= 5; seq++ {
		recs := []detect.SliceRecord{
			{Sensor: int(seq), Rank: 2, SliceNs: int64(seq), Count: 1, AvgNs: 1},
		}
		cum += uint64(len(recs))
		frames = append(frames, AppendFrame(nil, FrameHeader{Rank: 2, Seq: seq, CumRecords: cum}, recs))
	}
	s := New()
	// Deliver out of order with duplicates: 2, 2, 4, 1, 4, 3, 5, 1.
	for _, i := range []int{1, 1, 3, 0, 3, 2, 4, 0} {
		if err := s.Receive(frames[i]); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if got := len(s.Records()); got != 5 {
		t.Fatalf("records = %d, want 5", got)
	}
	cov := s.Coverage()
	if cov.DupFrames != 3 {
		t.Errorf("dup frames = %d, want 3", cov.DupFrames)
	}
	if !cov.Complete() || cov.ExpectedRecords != 5 || cov.IngestedFrames != 5 {
		t.Errorf("coverage = %+v", cov)
	}
}

// A missing frame shows up as incomplete coverage: the later frame's
// cumulative count reveals records the server never saw.
func TestCoverageGap(t *testing.T) {
	s := New()
	rec := []detect.SliceRecord{{Sensor: 1, Rank: 0, Count: 1, AvgNs: 1}}
	s.Receive(AppendFrame(nil, FrameHeader{Rank: 0, Seq: 1, CumRecords: 1}, rec))
	// Seq 2 (one record) is lost; seq 3 arrives claiming 3 cumulative.
	s.Receive(AppendFrame(nil, FrameHeader{Rank: 0, Seq: 3, CumRecords: 3}, rec))
	cov := s.Coverage()
	if cov.Complete() {
		t.Fatalf("gap not detected: %+v", cov)
	}
	if cov.ExpectedRecords != 3 || cov.IngestedRecords != 2 {
		t.Errorf("coverage = %+v", cov)
	}
	if f := cov.Fraction(); f < 0.66 || f > 0.67 {
		t.Errorf("fraction = %v", f)
	}
	rep := s.InterProcessReport(0.8)
	if rep.Confidence >= 1 {
		t.Errorf("confidence = %v on partial data", rep.Confidence)
	}
}

func TestReceiveChecksumReject(t *testing.T) {
	s := New()
	enc := AppendFrame(nil, FrameHeader{Rank: 0, Seq: 1, CumRecords: 1},
		[]detect.SliceRecord{{Sensor: 1, AvgNs: 5}})
	flip := append([]byte(nil), enc...)
	flip[frameHeaderSize+2] ^= 0x10
	if err := s.Receive(flip); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	if len(s.Records()) != 0 {
		t.Error("corrupted frame reached the log")
	}
	if cov := s.Coverage(); cov.ChecksumErrors != 1 {
		t.Errorf("coverage = %+v", cov)
	}
	// The intact original is still accepted afterwards.
	if err := s.Receive(enc); err != nil {
		t.Fatal(err)
	}
	if len(s.Records()) != 1 {
		t.Errorf("records = %d", len(s.Records()))
	}
}

// batchOutliers is the reference inter-process analysis: a single-threaded,
// post-hoc recompute over a full record log, structurally identical to the
// pre-sharding server (group by (sensor, group, slice), cross-rank median,
// threshold comparison, canonical sort). The differential conformance test
// (conformance_test.go) asserts the incremental sharded engine produces
// exactly this result for any ingest schedule.
func batchOutliers(recs []detect.SliceRecord, threshold float64) []Outlier {
	type key struct {
		sensor int
		group  int
		slice  int64
	}
	bySlice := make(map[key][]detect.SliceRecord)
	for _, r := range recs {
		k := key{r.Sensor, r.Group, r.SliceNs}
		bySlice[k] = append(bySlice[k], r)
	}
	var out []Outlier
	for k, group := range bySlice {
		if len(group) < 3 {
			continue
		}
		vals := make([]float64, len(group))
		for i, r := range group {
			vals[i] = r.AvgNs
		}
		sort.Float64s(vals)
		med := medianSorted(vals)
		if med <= 0 {
			continue
		}
		for _, r := range group {
			perf := med / r.AvgNs
			if perf < threshold {
				out = append(out, Outlier{Sensor: k.sensor, SliceNs: k.slice, Rank: r.Rank, Perf: perf})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SliceNs != out[j].SliceNs {
			return out[i].SliceNs < out[j].SliceNs
		}
		if out[i].Sensor != out[j].Sensor {
			return out[i].Sensor < out[j].Sensor
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Perf < out[j].Perf
	})
	return out
}

func TestInterProcessOutliers(t *testing.T) {
	s := New()
	c := s.NewClient(0, 0)
	// 8 ranks, same sensor & slice; rank 5 is 2x slower.
	for rank := 0; rank < 8; rank++ {
		avg := 100.0
		if rank == 5 {
			avg = 200
		}
		c.OnSlice(detect.SliceRecord{Sensor: 3, Rank: rank, SliceNs: 1_000_000, Count: 10, AvgNs: avg})
	}
	c.Flush()
	outs := s.InterProcessOutliers(0.8)
	if len(outs) != 1 {
		t.Fatalf("outliers = %+v", outs)
	}
	o := outs[0]
	if o.Rank != 5 || o.Sensor != 3 || o.Perf > 0.51 || o.Perf < 0.49 {
		t.Errorf("outlier = %+v", o)
	}
}

func TestOutliersRequireQuorum(t *testing.T) {
	s := New()
	c := s.NewClient(0, 0)
	c.OnSlice(detect.SliceRecord{Sensor: 0, Rank: 0, SliceNs: 0, Count: 1, AvgNs: 100})
	c.OnSlice(detect.SliceRecord{Sensor: 0, Rank: 1, SliceNs: 0, Count: 1, AvgNs: 500})
	c.Flush()
	if outs := s.InterProcessOutliers(0.8); len(outs) != 0 {
		t.Errorf("two ranks should not produce outliers: %+v", outs)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := New()
	done := make(chan struct{})
	for r := 0; r < 16; r++ {
		go func(rank int) {
			defer func() { done <- struct{}{} }()
			c := s.NewClient(rank, 7)
			for i := 0; i < 100; i++ {
				c.OnSlice(detect.SliceRecord{Sensor: 0, Rank: rank, SliceNs: int64(i), Count: 1, AvgNs: 1})
			}
			c.Flush()
		}(r)
	}
	for r := 0; r < 16; r++ {
		<-done
	}
	if len(s.Records()) != 1600 {
		t.Errorf("records = %d", len(s.Records()))
	}
	cov := s.Coverage()
	if !cov.Complete() || cov.ExpectedRecords != 1600 {
		t.Errorf("coverage = %+v", cov)
	}
}

// Property: encode/decode is the identity for arbitrary record batches.
func TestQuickWireFormat(t *testing.T) {
	f := func(sensors []uint8, avg float64, slice int64, seq uint64) bool {
		recs := make([]detect.SliceRecord, len(sensors))
		for i, sn := range sensors {
			recs[i] = detect.SliceRecord{
				Sensor: int(sn), Group: i % 4, Rank: i,
				SliceNs: slice, Count: int32(i + 1), AvgNs: avg, AvgInstr: avg / 2,
			}
		}
		if seq == 0 {
			seq = 1
		}
		in := FrameHeader{Rank: 3, Seq: seq, CumRecords: uint64(len(recs)) + seq}
		enc := AppendFrame(nil, in, recs)
		h, got, err := decodeFrame(enc)
		want := FrameHeader{Rank: 3, Seq: in.Seq, CumRecords: in.CumRecords, Count: len(recs)}
		if err != nil || len(got) != len(recs) || h != want {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
