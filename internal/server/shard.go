package server

import (
	"sync"

	"vsensor/internal/detect"
	"vsensor/internal/obs"
)

// A shard owns the ingest state for a subset of ranks (rank & mask). Every
// mutable structure a Receive touches — the flow table (dedup + coverage),
// the record sub-log, the per-rank progress entries — lives inside one
// shard, behind one short-lived mutex, so concurrent Receives from ranks on
// different shards never contend. Cross-shard queries (Records, Coverage,
// Progress) visit shards one at a time; nothing ever holds two shard locks
// at once.
type shard struct {
	mu sync.Mutex

	// records is the shard's append-only sub-log. Committed prefixes are
	// immutable: an append either writes past the snapshot lengths readers
	// captured, or reallocates and leaves the old backing array intact —
	// either way a reader holding a snapshot header never observes a torn
	// record.
	records []detect.SliceRecord

	// segments maps each ingested frame to its record range and the global
	// arrival ticket that linearizes it against other shards' frames.
	segments []segment

	// flows is the per-sender delivery state (dedup window + coverage),
	// keyed by the frame header's rank field.
	flows map[int]*rankFlow

	// perRank is the incremental progress state for live dashboards.
	perRank map[int]*RankProgress

	// live is the per-rank lease state (liveness.go): newest heartbeat stamp
	// and the lease it carried, for ranks routed to this shard.
	live map[int]*rankLive

	bytesReceived   int64
	messages        int64
	latestSliceNs   int64
	dupFrames       int64
	expectedRecords int64
	ingestedRecords int64

	// Observability handles (nil-safe no-ops when obs is off).
	obsRecords *obs.Gauge // server_shard_records{shard=i}
	obsFrames  *obs.Gauge // server_shard_frames{shard=i}
}

// segment is one ingested frame's slot in a shard's sub-log. The ticket is
// the global arrival number (1-based, assigned under the shard lock), so
// merging every shard's segments by ticket reproduces a single linearized
// log — identical to the order a single global lock would have produced.
type segment struct {
	ticket     uint64
	start, end int
}

// segSnap is a read-only view of one committed segment, captured under the
// owning shard's lock.
type segSnap struct {
	ticket uint64
	recs   []detect.SliceRecord
}

// orderedSegments snapshots every shard's committed segments and returns
// them sorted by arrival ticket, truncated to the contiguous ticket prefix.
// The truncation closes the cross-shard race: a reader can observe ticket
// t+1 committed on one shard while ticket t is still being written on
// another; withholding everything from the first gap onward keeps the
// merged log strictly append-only across successive snapshots, which is
// what RecordsSince's cursor semantics require.
func (s *Server) orderedSegments() []segSnap {
	// Tickets are assigned only when a frame commits, so committed segments
	// carry the dense sequence 1..N and bucket placement by ticket rebuilds
	// the linearized log in one O(n) pass — no comparison sort, one sized
	// allocation. The counter read is a safe upper bound: a segment that
	// commits after it carries a higher ticket, lands past the contiguous
	// prefix this call may expose, and is picked up by the next call —
	// exactly the withholding the gap truncation below already performs for
	// commits that race the shard walk.
	bound := s.ticket.Load()
	if bound == 0 {
		return nil
	}
	segs := make([]segSnap, bound)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, sg := range sh.segments {
			if sg.ticket <= bound {
				segs[sg.ticket-1] = segSnap{sg.ticket, sh.records[sg.start:sg.end]}
			}
		}
		sh.mu.Unlock()
	}
	for i := range segs {
		if segs[i].ticket == 0 {
			return segs[:i]
		}
	}
	return segs
}

// shardFor routes a sender rank to its shard.
func (s *Server) shardFor(rank int) *shard {
	return s.shards[uint32(rank)&s.mask]
}
