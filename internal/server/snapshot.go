package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"vsensor/internal/detect"
)

// Snapshots. A checkpoint serializes the server's complete ingest state —
// every shard's record sub-log with arrival tickets, per-rank dedup
// windows, progress and liveness entries, delivery counters — into one
// CRC-sealed blob, commits it with a durable atomic rename, rotates the
// WAL to a fresh segment, and deletes segments the snapshot supersedes.
// Recovery (recover.go) loads the newest valid snapshot and replays only
// WAL entries past its LSN, so recovery time is bounded by the checkpoint
// cadence, not the run length.
//
// Snapshot layout (little endian), sealed by a trailing CRC32 over
// everything before it:
//
//	u32 magic "vSS1" | u32 version | u64 gen | u64 lsn | u64 ticket
//	i64 checksumErrors | i64 rejectedFrames | i64 heartbeats
//	u32 shardCount
//	per shard:
//	  i64 bytesReceived | i64 messages | i64 latestSliceNs | i64 dupFrames
//	  i64 expectedRecords | i64 ingestedRecords
//	  u32 nFlows    { u32 rank, u64 contig, u64 maxSeq, u64 maxCum,
//	                  i64 frames, i64 records, u32 nAhead, u64 ahead... }
//	  u32 nPerRank  { u32 rank, i64 records, i64 latestSliceNs }
//	  u32 nLive     { u32 rank, i64 hbNs, i64 leaseNs }
//	  u32 nSegments { u64 ticket, u32 nRecs, 40-byte wire records... }
//	u32 crc
//
// Maps serialize in sorted rank order so identical state produces
// identical bytes — snapshot determinism is what lets the kill-and-recover
// conformance harness compare servers structurally.
const (
	snapMagic   = 0x76535331 // "vSS1"
	snapVersion = 1
)

// errNoSnapshot marks recovery finding no usable snapshot (cold start).
var errNoSnapshot = errors.New("server: no valid snapshot")

func appendI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// encodeSnapshot captures the server state. Caller holds the durability
// stateMu exclusively (no concurrent ingest); shard mutexes are still taken
// one at a time to honor the locking discipline used by queries.
func (s *Server) encodeSnapshot(gen, lsn uint64) []byte {
	b := make([]byte, 0, 4096)
	b = appendU32(b, snapMagic)
	b = appendU32(b, snapVersion)
	b = appendU64(b, gen)
	b = appendU64(b, lsn)
	b = appendU64(b, s.ticket.Load())
	b = appendI64(b, s.checksumErrors.Load())
	b = appendI64(b, s.rejectedFrames.Load())
	b = appendI64(b, s.heartbeats.Load())
	b = appendU32(b, uint32(len(s.shards)))
	for _, sh := range s.shards {
		sh.mu.Lock()
		b = appendI64(b, sh.bytesReceived)
		b = appendI64(b, sh.messages)
		b = appendI64(b, sh.latestSliceNs)
		b = appendI64(b, sh.dupFrames)
		b = appendI64(b, sh.expectedRecords)
		b = appendI64(b, sh.ingestedRecords)

		b = appendU32(b, uint32(len(sh.flows)))
		for _, rank := range sortedKeys(sh.flows) {
			fl := sh.flows[rank]
			b = appendU32(b, uint32(rank))
			b = appendU64(b, fl.contig)
			b = appendU64(b, fl.maxSeq)
			b = appendU64(b, fl.maxCum)
			b = appendI64(b, fl.ingestedFrames)
			b = appendI64(b, fl.ingestedRecords)
			ahead := make([]uint64, 0, len(fl.ahead))
			for seq := range fl.ahead {
				ahead = append(ahead, seq)
			}
			sort.Slice(ahead, func(i, j int) bool { return ahead[i] < ahead[j] })
			b = appendU32(b, uint32(len(ahead)))
			for _, seq := range ahead {
				b = appendU64(b, seq)
			}
		}

		b = appendU32(b, uint32(len(sh.perRank)))
		for _, rank := range sortedKeys(sh.perRank) {
			rp := sh.perRank[rank]
			b = appendU32(b, uint32(rank))
			b = appendI64(b, int64(rp.Records))
			b = appendI64(b, rp.LatestSliceNs)
		}

		b = appendU32(b, uint32(len(sh.live)))
		for _, rank := range sortedKeys(sh.live) {
			lv := sh.live[rank]
			b = appendU32(b, uint32(rank))
			b = appendI64(b, lv.hbNs)
			b = appendI64(b, lv.leaseNs)
		}

		b = appendU32(b, uint32(len(sh.segments)))
		for _, sg := range sh.segments {
			b = appendU64(b, sg.ticket)
			recs := sh.records[sg.start:sg.end]
			b = appendU32(b, uint32(len(recs)))
			b = appendRecords(b, recs)
		}
		sh.mu.Unlock()
	}
	return appendU32(b, crc32.ChecksumIEEE(b))
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// snapReader is a bounds-checked cursor over snapshot bytes; the first
// failed read poisons it so decode code reads linearly without per-field
// error plumbing.
type snapReader struct {
	data []byte
	off  int
	err  error
}

func (r *snapReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("server: snapshot truncated reading %s at offset %d", what, r.off)
	}
}

func (r *snapReader) u32(what string) uint32 {
	if r.err != nil || len(r.data)-r.off < 4 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *snapReader) u64(what string) uint64 {
	if r.err != nil || len(r.data)-r.off < 8 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *snapReader) i64(what string) int64 { return int64(r.u64(what)) }

func (r *snapReader) bytes(n int, what string) []byte {
	if r.err != nil || n < 0 || len(r.data)-r.off < n {
		r.fail(what)
		return nil
	}
	v := r.data[r.off : r.off+n]
	r.off += n
	return v
}

// snapState is a decoded snapshot, held off-server until recovery commits
// it.
type snapState struct {
	gen, lsn, ticket uint64
	checksumErrors   int64
	rejectedFrames   int64
	heartbeats       int64
	shards           []*shard
}

// decodeSnapshot validates and decodes a snapshot blob. Arbitrary bytes
// must never panic or allocate unboundedly; every count is checked against
// the remaining buffer before it sizes anything.
func decodeSnapshot(data []byte) (*snapState, error) {
	if len(data) < 4+4+8+8+8+8*3+4+4 {
		return nil, fmt.Errorf("server: snapshot too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: snapshot says %#x, computed %#x", ErrChecksum, got, want)
	}
	r := &snapReader{data: body}
	if m := r.u32("magic"); m != snapMagic {
		return nil, fmt.Errorf("server: bad snapshot magic %#x", m)
	}
	if v := r.u32("version"); v != snapVersion {
		return nil, fmt.Errorf("server: unsupported snapshot version %d", v)
	}
	st := &snapState{}
	st.gen = r.u64("gen")
	st.lsn = r.u64("lsn")
	st.ticket = r.u64("ticket")
	st.checksumErrors = r.i64("checksumErrors")
	st.rejectedFrames = r.i64("rejectedFrames")
	st.heartbeats = r.i64("heartbeats")
	nShards := r.u32("shardCount")
	if r.err != nil {
		return nil, r.err
	}
	if nShards == 0 || nShards > MaxShards || nShards&(nShards-1) != 0 {
		return nil, fmt.Errorf("server: snapshot claims %d shards", nShards)
	}
	for i := uint32(0); i < nShards; i++ {
		sh := &shard{
			flows:   make(map[int]*rankFlow),
			perRank: make(map[int]*RankProgress),
			live:    make(map[int]*rankLive),
		}
		sh.bytesReceived = r.i64("bytesReceived")
		sh.messages = r.i64("messages")
		sh.latestSliceNs = r.i64("latestSliceNs")
		sh.dupFrames = r.i64("dupFrames")
		sh.expectedRecords = r.i64("expectedRecords")
		sh.ingestedRecords = r.i64("ingestedRecords")

		nFlows := int(r.u32("nFlows"))
		for f := 0; f < nFlows && r.err == nil; f++ {
			rank := int(r.u32("flow rank"))
			fl := &rankFlow{
				contig:          r.u64("contig"),
				maxSeq:          r.u64("maxSeq"),
				maxCum:          r.u64("maxCum"),
				ingestedFrames:  r.i64("flow frames"),
				ingestedRecords: r.i64("flow records"),
			}
			nAhead := int(r.u32("nAhead"))
			for a := 0; a < nAhead && r.err == nil; a++ {
				if fl.ahead == nil {
					fl.ahead = make(map[uint64]struct{})
				}
				fl.ahead[r.u64("ahead seq")] = struct{}{}
			}
			if rank > MaxFrameRank {
				return nil, fmt.Errorf("server: snapshot flow claims rank %d", rank)
			}
			sh.flows[rank] = fl
		}

		nPerRank := int(r.u32("nPerRank"))
		for p := 0; p < nPerRank && r.err == nil; p++ {
			rank := int(r.u32("progress rank"))
			sh.perRank[rank] = &RankProgress{
				Rank:          rank,
				Records:       int(r.i64("progress records")),
				LatestSliceNs: r.i64("progress latest"),
			}
		}

		nLive := int(r.u32("nLive"))
		for l := 0; l < nLive && r.err == nil; l++ {
			rank := int(r.u32("live rank"))
			sh.live[rank] = &rankLive{hbNs: r.i64("live hb"), leaseNs: r.i64("live lease")}
		}

		nSegs := int(r.u32("nSegments"))
		for g := 0; g < nSegs && r.err == nil; g++ {
			ticket := r.u64("segment ticket")
			nRecs := int(r.u32("segment records"))
			if nRecs > MaxFrameRecords {
				return nil, fmt.Errorf("server: snapshot segment claims %d records", nRecs)
			}
			raw := r.bytes(nRecs*recordWireSize, "segment payload")
			if r.err != nil {
				break
			}
			start := len(sh.records)
			sh.records = decodeRecords(sh.records, raw, nRecs)
			sh.segments = append(sh.segments, segment{ticket: ticket, start: start, end: len(sh.records)})
		}
		if r.err != nil {
			return nil, r.err
		}
		st.shards = append(st.shards, sh)
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("server: snapshot has %d trailing bytes", len(body)-r.off)
	}
	return st, nil
}

// Checkpoint writes a snapshot of the current state, rotates the WAL to a
// new segment, and deletes WAL segments the new snapshot supersedes. Safe
// to call at any time; automatic checkpoints run every
// DurabilityConfig.SnapshotEvery frames. No-op without durability.
func (s *Server) Checkpoint() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	return s.checkpointLocked()
}

// checkpointLocked is Checkpoint's body; the caller holds the durability
// stateMu exclusively (Checkpoint, or Recover sealing a recovery).
func (s *Server) checkpointLocked() error {
	d := s.dur
	d.mu.Lock()
	defer d.mu.Unlock()
	// Commit any staged group-commit entries (closing an open coalesced
	// run) before capturing the snapshot LSN: the snapshot must cover a
	// durable prefix, and a coalesced run must never straddle a checkpoint
	// boundary — replay validates that each entry's covered range starts
	// exactly at the snapshot's LSN + 1.
	if err := d.enc.flush(); err != nil {
		return err
	}
	newGen := d.gen + 1
	enc := s.encodeSnapshot(newGen, d.lsn)
	const tmp = "snap.tmp"
	if err := d.disk.Remove(tmp); err != nil {
		return err
	}
	if err := d.disk.Append(tmp, enc); err != nil {
		return err
	}
	if err := d.disk.Sync(tmp); err != nil {
		return err
	}
	if err := d.disk.Rename(tmp, snapName(newGen)); err != nil {
		return err
	}
	// The snapshot is committed: rotate to segment newGen and drop segments
	// older than the previous generation — the previous snapshot plus its
	// segment remain the fallback if this snapshot later rots. After a
	// recovery there may be older stragglers too, so sweep by name rather
	// than deleting a single predecessor.
	oldGen := d.gen
	d.gen = newGen
	d.frames = 0
	d.snapDue = false
	d.sinceSync = 0
	for _, name := range d.disk.List() {
		if g, ok := walGen(name); ok && g < oldGen {
			if err := d.disk.Remove(name); err != nil {
				return err
			}
		}
	}
	d.snapshots++
	d.obsSnapshots.Inc()
	d.obsSnapBytes.Set(float64(len(enc)))
	return nil
}

// appendRecords serializes records in the 40-byte frame wire layout
// (shared with AppendFrame's payload encoding).
func appendRecords(dst []byte, recs []detect.SliceRecord) []byte {
	for _, r := range recs {
		var rec [recordWireSize]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(r.Sensor))
		binary.LittleEndian.PutUint32(rec[4:], uint32(r.Group))
		binary.LittleEndian.PutUint32(rec[8:], uint32(r.Rank))
		binary.LittleEndian.PutUint64(rec[12:], uint64(r.SliceNs))
		binary.LittleEndian.PutUint32(rec[20:], uint32(r.Count))
		binary.LittleEndian.PutUint64(rec[24:], math.Float64bits(r.AvgNs))
		binary.LittleEndian.PutUint64(rec[32:], math.Float64bits(r.AvgInstr))
		dst = append(dst, rec[:]...)
	}
	return dst
}

// decodeRecords deserializes n wire records (no frame header) onto out.
func decodeRecords(out []detect.SliceRecord, raw []byte, n int) []detect.SliceRecord {
	off := 0
	for i := 0; i < n; i++ {
		out = append(out, detect.SliceRecord{
			Sensor:   int(binary.LittleEndian.Uint32(raw[off:])),
			Group:    int(binary.LittleEndian.Uint32(raw[off+4:])),
			Rank:     int(binary.LittleEndian.Uint32(raw[off+8:])),
			SliceNs:  int64(binary.LittleEndian.Uint64(raw[off+12:])),
			Count:    int32(binary.LittleEndian.Uint32(raw[off+20:])),
			AvgNs:    math.Float64frombits(binary.LittleEndian.Uint64(raw[off+24:])),
			AvgInstr: math.Float64frombits(binary.LittleEndian.Uint64(raw[off+32:])),
		})
		off += recordWireSize
	}
	return out
}
