package server

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"vsensor/internal/obs"
	"vsensor/internal/storage"
)

// The write-ahead log. Every state transition the server's recovery cares
// about — an ingested frame (with its arrival ticket), an absorbed
// duplicate, a rejected frame, a heartbeat — is appended to the current WAL
// segment before the caller is acknowledged, so a crash that wipes the
// in-memory server loses at most the unsynced log tail, and Recover()
// rebuilds everything else by replay (recover.go).
//
// Entry framing (little endian):
//
//	off 0: u32 length    payload bytes that follow the 8-byte entry header
//	off 4: u32 crc       IEEE CRC32 over the payload
//	off 8: payload       u8 kind, u64 lsn, kind-specific body
//
// The LSN is a strictly increasing per-server sequence counting *delivery
// outcomes*, not entries: a coalesced entry (the N-suffixed kinds) covers a
// run of `count` consecutive outcomes and carries the LSN of the last one,
// so the LSN space stays dense — recovered LSN == delivery-schedule index —
// even when steady-state chatter (heartbeats, duplicate frames, rejects)
// collapses into O(1) journal bytes. Snapshots record the LSN they cover,
// so replay skips entries a snapshot already reflects even when old
// segments survive compaction. Reading stops at the first entry whose
// length or CRC does not check out: a torn or bit-rotten tail truncates the
// log there, and everything after it — even if intact — is discarded,
// keeping recovery a strict prefix of the acknowledged history (clients
// re-send past their last durable ack).
//
// Segments: entries append to "wal.<gen>"; a checkpoint (snapshot.go)
// starts generation gen+1 and deletes segments older than gen, so at most
// two segments — the one the newest snapshot supersedes and the live one —
// exist at a time, which is exactly what falling back to the previous
// snapshot needs.
const (
	walEntryHeader = 8

	walKindFrame     = 1 // u64 ticket, raw frame bytes
	walKindDup       = 2 // u32 rank
	walKindChecksum  = 3 // no body: a frame rejected by CRC
	walKindReject    = 4 // no body: a frame rejected for framing errors
	walKindHeartbeat = 5 // u32 rank, u64 virtual now, u64 lease ns

	// Coalesced kinds: one entry standing for a run of `count` consecutive
	// outcomes of the matching base kind. The entry's LSN is the LSN of the
	// *last* outcome in the run.
	walKindDupN       = 6 // u32 rank, u32 count
	walKindChecksumN  = 7 // u32 count
	walKindRejectN    = 8 // u32 count
	walKindHeartbeatN = 9 // u32 rank, u64 folded now, u64 folded lease, u32 count
)

// maxWALEntry bounds a decoded entry's claimed payload length: the largest
// legitimate entry is a frame entry around a maximum-size frame (with the
// vSF2 lineage extension).
const maxWALEntry = walEntryHeader + 16 + frameHeaderSize + frameTraceSize + MaxFrameRecords*recordWireSize

// maxCoalesced bounds the count field of a coalesced entry; a hostile
// segment claiming more outcomes per entry than any real run could produce
// is treated as corruption (replay truncates there).
const maxCoalesced = 1 << 30

// DurabilityConfig tunes the WAL + snapshot layer.
type DurabilityConfig struct {
	// SyncEvery is how many WAL entries may accumulate before an fsync;
	// <= 1 syncs every entry (ack implies durable — the default, and the
	// mode under which transport-level exactly-once survives real crashes).
	// Larger values model group commit: acknowledged-but-unsynced tail
	// entries can be lost at a crash and must be re-sent by clients. Only
	// meaningful for the per-op encoder (FlushEvery <= 1): the group
	// encoder syncs once per commit group instead.
	SyncEvery int

	// FlushEvery enables group commit: up to FlushEvery delivery outcomes
	// accumulate in a staging buffer and hit the device as one write + one
	// sync. <= 1 keeps the per-op encoder (every outcome is its own write,
	// synced per SyncEvery). Staged-but-unflushed outcomes are lost at a
	// crash — the same ack contract as SyncEvery > 1 — and clients re-send
	// from the recovered LSN.
	FlushEvery int

	// FlushBytes caps the staging buffer in bytes: a commit group flushes
	// when it covers FlushEvery outcomes *or* FlushBytes staged bytes,
	// whichever comes first. 0 selects DefaultFlushBytes. Ignored by the
	// per-op encoder.
	FlushBytes int

	// Coalesce collapses runs of heartbeat/dup/checksum/reject outcomes
	// into count-delta entries (walKind*N), so steady-state chatter costs
	// O(1) journal bytes per run instead of O(n). Implies group commit:
	// when FlushEvery <= 1 it is raised to DefaultFlushEvery.
	Coalesce bool

	// SnapshotEvery is how many frames are ingested between automatic
	// checkpoints (snapshot + WAL segment rotation). 0 selects
	// DefaultSnapshotEvery; negative disables automatic checkpoints
	// (Checkpoint can still be called explicitly).
	SnapshotEvery int

	// Disk is the storage device; nil creates a fresh fault-free disk.
	Disk *storage.Disk
}

// DefaultSnapshotEvery is the automatic checkpoint cadence in frames.
const DefaultSnapshotEvery = 256

// DefaultFlushEvery is the group-commit window in outcomes when Coalesce
// is set without an explicit FlushEvery.
const DefaultFlushEvery = 64

// DefaultFlushBytes is the group-commit staging cap in bytes.
const DefaultFlushBytes = 1 << 16

// walEncoder is the pluggable commit policy behind the append path. All
// methods are called with d.mu held. frame/dup/badFrame/heartbeat each
// record exactly one delivery outcome (advancing the LSN by one); flush
// forces any staged entries onto the device; reset drops staged state
// after a crash; staged reports what has been acked but not yet written.
type walEncoder interface {
	frame(ticket uint64, encoded []byte, trace uint64, rank int) error
	dup(rank int) error
	badFrame(checksum bool) error
	heartbeat(rank int, nowNs, leaseNs int64) error
	flush() error
	reset()
	staged() (entries int, bytes int64)
}

// durability is the server's WAL/snapshot state. All fields except stateMu
// are guarded by mu; stateMu serializes ingest (read side) against crash,
// recovery, and checkpoint (write side).
type durability struct {
	// stateMu is held shared for every Receive and exclusively by
	// Crash/Recover/Checkpoint, so a wipe or a state capture never
	// interleaves with a half-applied frame.
	stateMu sync.RWMutex

	mu   sync.Mutex
	disk *storage.Disk
	cfg  DurabilityConfig
	enc  walEncoder

	gen       uint64 // current WAL segment generation == checkpoint count
	lsn       uint64 // last assigned log sequence number
	sinceSync int    // entries appended since the last fsync (per-op encoder)
	frames    int    // frames appended since the last checkpoint
	snapDue   bool   // set when frames crosses SnapshotEvery; cleared by Checkpoint
	buf       []byte // reusable entry encode buffer

	// Lifetime counters (survive Crash; they describe the device, not the
	// server state).
	entries      int64
	bytes        int64
	syncs        int64
	groupCommits int64
	coalesced    int64
	snapshots    int64
	recoveries   int64
	lastRec      RecoveryStats

	// Observability handles (nil-safe no-ops when obs is off).
	obsEntries      *obs.Counter
	obsBytes        *obs.Counter
	obsSyncs        *obs.Counter
	obsGroupCommits *obs.Counter
	obsCoalesced    *obs.Counter
	obsFlushBytes   *obs.Histogram
	obsSyncWait     *obs.Histogram
	obsSnapshots    *obs.Counter
	obsSnapBytes    *obs.Gauge
	obsRecovered    *obs.Counter
	obsTruncated    *obs.Counter
	obsReplayed     *obs.Counter
	lin             *obs.Lineage // record-lineage tracer (nil = lineage off)
}

func walSegmentName(gen uint64) string { return fmt.Sprintf("wal.%d", gen) }

// snapName alternates between two snapshot slots by generation parity, so
// the previous snapshot survives until the next checkpoint overwrites its
// slot — the fallback when the newest snapshot is bit-rotten.
func snapName(gen uint64) string {
	if gen%2 == 0 {
		return "snap.a"
	}
	return "snap.b"
}

// appendEntry frames one payload and appends it to the live segment,
// syncing per the configured cadence. Caller holds d.mu. trace/rank carry
// the entry's lineage context (trace 0 for unsampled or non-frame entries):
// a sampled frame records a wal_append span over the two device appends and,
// when this entry triggers the group-commit fsync, a wal_sync span over it —
// so a lineage shows whether the record's frame paid the sync or rode an
// earlier one. Used by the per-op encoder.
func (d *durability) appendEntry(payload []byte, trace uint64, rank int) error {
	traced := d.lin != nil && trace != 0
	var t0 int64
	if traced {
		t0 = nowUnixNs()
	}
	var hdr [walEntryHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	seg := walSegmentName(d.gen)
	if err := d.disk.Append(seg, hdr[:]); err != nil {
		return err
	}
	if err := d.disk.Append(seg, payload); err != nil {
		return err
	}
	d.entries++
	d.bytes += int64(walEntryHeader + len(payload))
	d.obsEntries.Inc()
	d.obsBytes.Add(int64(walEntryHeader + len(payload)))
	if traced {
		d.lin.Record(trace, obs.StageWALAppend, rank, 0, t0, nowUnixNs()-t0, int64(len(payload)))
	}
	d.sinceSync++
	if d.cfg.SyncEvery <= 1 || d.sinceSync >= d.cfg.SyncEvery {
		var s0 int64
		if traced {
			s0 = nowUnixNs()
		}
		if err := d.disk.Sync(seg); err != nil {
			return err
		}
		d.sinceSync = 0
		d.syncs++
		d.obsSyncs.Inc()
		if traced {
			d.lin.Record(trace, obs.StageWALSync, rank, 0, s0, nowUnixNs()-s0, 0)
		}
	}
	return nil
}

// entryAt serializes the common payload prefix (kind + an explicit LSN)
// into d.buf. Caller holds d.mu.
func (d *durability) entryAt(kind byte, lsn uint64) []byte {
	b := d.buf[:0]
	b = append(b, kind)
	b = binary.LittleEndian.AppendUint64(b, lsn)
	return b
}

// entryHead assigns the next LSN and serializes the payload prefix for an
// entry covering exactly one outcome. Caller holds d.mu.
func (d *durability) entryHead(kind byte) []byte {
	d.lsn++
	return d.entryAt(kind, d.lsn)
}

// logFrame appends a frame entry (arrival ticket + raw frame bytes) and
// reports whether an automatic checkpoint is now due. The caller performs
// the checkpoint after releasing its shared stateMu hold. trace is the
// frame's lineage trace ID (0 = unsampled) for the WAL append/sync spans.
func (d *durability) logFrame(ticket uint64, encoded []byte, trace uint64) (snapDue bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rank := 0
	if trace != 0 && len(encoded) >= 8 {
		rank = int(binary.LittleEndian.Uint32(encoded[4:]))
	}
	if err := d.enc.frame(ticket, encoded, trace, rank); err != nil {
		return false, err
	}
	d.frames++
	every := d.cfg.SnapshotEvery
	if every == 0 {
		every = DefaultSnapshotEvery
	}
	if every > 0 && d.frames >= every && !d.snapDue {
		d.snapDue = true
	}
	return d.snapDue, nil
}

// logDup appends a duplicate-frame event for rank.
func (d *durability) logDup(rank int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.enc.dup(rank)
}

// logBadFrame appends a rejection event (checksum or framing).
func (d *durability) logBadFrame(checksum bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.enc.badFrame(checksum)
}

// logHeartbeat appends a liveness heartbeat event.
func (d *durability) logHeartbeat(rank int, nowNs, leaseNs int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.enc.heartbeat(rank, nowNs, leaseNs)
}

// walEntry is one decoded log entry.
type walEntry struct {
	kind byte
	lsn  uint64
	body []byte // kind-specific bytes, aliasing the segment buffer
}

// outcomeSpan reports how many delivery outcomes e covers: 1 for the
// legacy per-outcome kinds, the count field for coalesced kinds. ok is
// false when the body is too short to hold the count or the count is
// outside [1, maxCoalesced] — replay treats that like corruption.
func (e walEntry) outcomeSpan() (span uint64, ok bool) {
	var c uint32
	switch e.kind {
	case walKindDupN:
		if len(e.body) < 8 {
			return 0, false
		}
		c = binary.LittleEndian.Uint32(e.body[4:])
	case walKindChecksumN, walKindRejectN:
		if len(e.body) < 4 {
			return 0, false
		}
		c = binary.LittleEndian.Uint32(e.body)
	case walKindHeartbeatN:
		if len(e.body) < 24 {
			return 0, false
		}
		c = binary.LittleEndian.Uint32(e.body[20:])
	default:
		return 1, true
	}
	if c < 1 || c > maxCoalesced {
		return 0, false
	}
	return uint64(c), true
}

// scanWAL decodes entries from raw segment bytes, stopping at the first
// entry that fails validation (short header, hostile length, CRC mismatch,
// or a truncated payload). It returns the valid prefix, how many bytes of
// the segment it consumed, and whether it stopped early (truncation).
func scanWAL(data []byte) (entries []walEntry, consumed int, truncated bool) {
	off := 0
	for {
		if off == len(data) {
			return entries, off, false
		}
		if len(data)-off < walEntryHeader {
			return entries, off, true
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n < 9 || n > maxWALEntry || len(data)-off-walEntryHeader < n {
			return entries, off, true
		}
		payload := data[off+walEntryHeader : off+walEntryHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+4:]) {
			return entries, off, true
		}
		entries = append(entries, walEntry{
			kind: payload[0],
			lsn:  binary.LittleEndian.Uint64(payload[1:]),
			body: payload[9:],
		})
		off += walEntryHeader + n
	}
}

// DurabilityStats describes the WAL/snapshot layer for dashboards and
// /status.
type DurabilityStats struct {
	Enabled          bool
	Generation       uint64 // current WAL segment / checkpoint generation
	LSN              uint64 // last assigned log sequence number
	WALEntries       int64
	WALBytes         int64
	Syncs            int64
	GroupCommits     int64 // commit groups flushed (group encoder only)
	CoalescedEntries int64 // outcomes absorbed into an open coalesced run
	StagedEntries    int   // entries acked but not yet written to the device
	StagedBytes      int64
	Snapshots        int64
	Recoveries       int64
	DiskBytes        int64 // total bytes on the backing device
	LastRecovery     RecoveryStats
	SnapshotEvery    int
	SyncEvery        int
	FlushEvery       int  // 1 = per-op encoder
	FlushBytes       int  // 0 = per-op encoder
	Coalesce         bool
}

// DurabilityStats returns the durability layer's state; the zero value when
// durability is off.
func (s *Server) DurabilityStats() DurabilityStats {
	d := s.dur
	if d == nil {
		return DurabilityStats{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	every := d.cfg.SnapshotEvery
	if every == 0 {
		every = DefaultSnapshotEvery
	}
	sync := d.cfg.SyncEvery
	if sync <= 1 {
		sync = 1
	}
	flushEvery := d.cfg.FlushEvery
	if flushEvery <= 1 {
		flushEvery = 1
	}
	stagedEntries, stagedBytes := d.enc.staged()
	return DurabilityStats{
		Enabled:          true,
		Generation:       d.gen,
		LSN:              d.lsn,
		WALEntries:       d.entries,
		WALBytes:         d.bytes,
		Syncs:            d.syncs,
		GroupCommits:     d.groupCommits,
		CoalescedEntries: d.coalesced,
		StagedEntries:    stagedEntries,
		StagedBytes:      stagedBytes,
		Snapshots:        d.snapshots,
		Recoveries:       d.recoveries,
		DiskBytes:        d.disk.Size(),
		LastRecovery:     d.lastRec,
		SnapshotEvery:    every,
		SyncEvery:        sync,
		FlushEvery:       flushEvery,
		FlushBytes:       d.cfg.FlushBytes,
		Coalesce:         d.cfg.Coalesce,
	}
}

// Disk returns the backing storage device (nil when durability is off) —
// chaos harnesses crash it directly.
func (s *Server) Disk() *storage.Disk {
	if s.dur == nil {
		return nil
	}
	return s.dur.disk
}

// AttachDurability enables the WAL + snapshot layer over disk (a fresh
// fault-free disk when cfg.Disk is nil). Must be called before any frame is
// ingested; attaching twice or after ingest panics — durability is a
// construction-time decision. FlushEvery > 1 (or Coalesce, which implies
// it) selects the group-commit encoder; otherwise every outcome is its own
// journal write, synced per SyncEvery.
func (s *Server) AttachDurability(cfg DurabilityConfig) {
	if s.dur != nil {
		panic("server: durability already attached")
	}
	if s.ticket.Load() != 0 {
		panic("server: AttachDurability after ingest started")
	}
	disk := cfg.Disk
	if disk == nil {
		disk = storage.NewDisk(storage.Faults{})
	}
	if cfg.Coalesce && cfg.FlushEvery <= 1 {
		cfg.FlushEvery = DefaultFlushEvery
	}
	d := &durability{disk: disk, cfg: cfg}
	if cfg.FlushEvery > 1 {
		if cfg.FlushBytes <= 0 {
			d.cfg.FlushBytes = DefaultFlushBytes
		}
		d.enc = &groupEncoder{
			d:          d,
			coalesce:   cfg.Coalesce,
			flushEvery: d.cfg.FlushEvery,
			flushBytes: d.cfg.FlushBytes,
		}
	} else {
		d.cfg.FlushBytes = 0
		d.enc = &perOpEncoder{d: d}
	}
	s.dur = d
}

// setDurObs attaches the durability metric handles. Called from SetObs.
func (d *durability) setObs(o *obs.Obs) {
	d.obsEntries = o.Counter("server_wal_entries_total")
	d.obsBytes = o.Counter("server_wal_bytes_total")
	d.obsSyncs = o.Counter("server_wal_syncs_total")
	d.obsGroupCommits = o.Counter("wal_group_commits_total")
	d.obsCoalesced = o.Counter("wal_coalesced_entries_total")
	d.obsFlushBytes = o.Histogram("wal_flush_bytes")
	d.obsSyncWait = o.Histogram("wal_sync_wait_ns")
	d.obsSnapshots = o.Counter("server_snapshots_total")
	d.obsSnapBytes = o.Gauge("server_snapshot_bytes")
	d.obsRecovered = o.Counter("server_recoveries_total")
	d.obsTruncated = o.Counter("server_wal_truncated_bytes_total")
	d.obsReplayed = o.Counter("server_replayed_frames_total")
	d.lin = o.Lineage()
}
