// Package server implements the dedicated analysis-server process of paper
// §5.4. Each rank buffers its smoothed slice records locally and ships them
// in network-friendly batches; the server aggregates them, detects
// inter-process variance by comparing the performance of the same v-sensor
// across processes, and accounts the transferred data volume (the paper's
// 8.8 MB vs 501.5 MB tracing comparison).
package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"vsensor/internal/detect"
	"vsensor/internal/obs"
)

// DefaultBatchSize is how many slice records a client buffers before
// transferring them in one message.
const DefaultBatchSize = 64

// Server aggregates slice records from every rank.
type Server struct {
	mu      sync.Mutex
	records []detect.SliceRecord

	bytesReceived int64
	messages      int64

	// Incremental progress state, maintained at ingest so Progress() and
	// PerRankProgress() never rescan the record log.
	latestSliceNs int64
	perRank       map[int]*RankProgress

	// Observability handles (nil-safe no-ops when obs is off).
	obsMessages *obs.Counter
	obsBytes    *obs.Counter
	obsRecords  *obs.Counter
	obsBatch    *obs.Histogram
}

// New creates an empty analysis server.
func New() *Server { return &Server{perRank: make(map[int]*RankProgress)} }

// SetObs attaches ingest metrics: message/byte/record counters plus the
// batch-size histogram (server_batch_bytes). Call before the run starts.
func (s *Server) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	s.obsMessages = o.Counter("server_messages_total")
	s.obsBytes = o.Counter("server_bytes_total")
	s.obsRecords = o.Counter("server_records_total")
	s.obsBatch = o.Histogram("server_batch_bytes")
}

// receive ingests one encoded batch, decoding records straight into the
// server's log (no per-message temporary slice).
func (s *Server) receive(encoded []byte) error {
	n, err := checkBatch(encoded)
	if err != nil {
		return err
	}
	s.mu.Lock()
	start := len(s.records)
	s.records = appendDecoded(s.records, encoded, n)
	recs := s.records[start:]
	s.bytesReceived += int64(len(encoded))
	s.messages++
	for i := range recs {
		r := &recs[i]
		if r.SliceNs > s.latestSliceNs {
			s.latestSliceNs = r.SliceNs
		}
		rp := s.perRank[r.Rank]
		if rp == nil {
			rp = &RankProgress{Rank: r.Rank}
			s.perRank[r.Rank] = rp
		}
		rp.Records++
		if r.SliceNs > rp.LatestSliceNs {
			rp.LatestSliceNs = r.SliceNs
		}
	}
	s.mu.Unlock()
	s.obsMessages.Inc()
	s.obsBytes.Add(int64(len(encoded)))
	s.obsRecords.Add(int64(len(recs)))
	s.obsBatch.ObserveInt(int64(len(encoded)))
	return nil
}

// BytesReceived returns the total encoded bytes shipped to the server.
func (s *Server) BytesReceived() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesReceived
}

// Messages returns how many batch messages arrived.
func (s *Server) Messages() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.messages
}

// Records returns a snapshot of all received slice records.
func (s *Server) Records() []detect.SliceRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]detect.SliceRecord, len(s.records))
	copy(out, s.records)
	return out
}

// Client is a per-rank connection to the analysis server. It implements
// detect.Emitter, buffering records and transferring them in batches
// (paper: "each process buffers its data locally and periodically
// transfers them in batch to analysis-server"). Not safe for concurrent
// use; each rank owns one client.
type Client struct {
	server    *Server
	batchSize int
	buf       []detect.SliceRecord
	enc       []byte // reusable wire buffer; one allocation per client

	sent      int64
	bytesSent int64
}

// NewClient connects a rank to the server. batchSize <= 0 selects the
// default; batchSize 1 effectively disables batching (ablation A4).
func (s *Server) NewClient(batchSize int) *Client {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &Client{server: s, batchSize: batchSize}
}

// OnSlice buffers one record, flushing when the batch is full.
func (c *Client) OnSlice(r detect.SliceRecord) {
	c.buf = append(c.buf, r)
	if len(c.buf) >= c.batchSize {
		c.Flush()
	}
}

// Flush transfers the buffered records. The wire buffer is reused across
// flushes, so a warm client allocates nothing per batch.
func (c *Client) Flush() {
	if len(c.buf) == 0 {
		return
	}
	c.enc = appendEncoded(c.enc[:0], c.buf)
	if err := c.server.receive(c.enc); err != nil {
		panic(fmt.Sprintf("server: self-encoded batch failed to decode: %v", err))
	}
	c.sent += int64(len(c.buf))
	c.bytesSent += int64(len(c.enc))
	c.buf = c.buf[:0]
}

// BytesSent returns the client's total encoded payload bytes.
func (c *Client) BytesSent() int64 { return c.bytesSent }

// RecordsSent returns how many slice records this client shipped.
func (c *Client) RecordsSent() int64 { return c.sent }

// ---------- wire format ----------

// Batch layout: u32 count, then per record:
// u32 sensor, u32 group, u32 rank, i64 slice, i32 count, f64 avgNs, f64 avgInstr.
const recordWireSize = 4 + 4 + 4 + 8 + 4 + 8 + 8

// appendEncoded serializes a batch onto dst (usually a reused buffer with
// len 0) and returns the extended slice.
func appendEncoded(dst []byte, recs []detect.SliceRecord) []byte {
	start := len(dst)
	need := 4 + len(recs)*recordWireSize
	if cap(dst)-start < need {
		grown := make([]byte, start, start+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:start+need]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(recs)))
	off := start + 4
	for _, r := range recs {
		binary.LittleEndian.PutUint32(dst[off:], uint32(r.Sensor))
		binary.LittleEndian.PutUint32(dst[off+4:], uint32(r.Group))
		binary.LittleEndian.PutUint32(dst[off+8:], uint32(r.Rank))
		binary.LittleEndian.PutUint64(dst[off+12:], uint64(r.SliceNs))
		binary.LittleEndian.PutUint32(dst[off+20:], uint32(r.Count))
		binary.LittleEndian.PutUint64(dst[off+24:], math.Float64bits(r.AvgNs))
		binary.LittleEndian.PutUint64(dst[off+32:], math.Float64bits(r.AvgInstr))
		off += recordWireSize
	}
	return dst
}

func encodeBatch(recs []detect.SliceRecord) []byte {
	return appendEncoded(nil, recs)
}

// checkBatch validates a batch's header and framing, returning its record
// count.
func checkBatch(data []byte) (int, error) {
	if len(data) < 4 {
		return 0, fmt.Errorf("server: short batch header")
	}
	n := int(binary.LittleEndian.Uint32(data[:4]))
	want := 4 + n*recordWireSize
	if len(data) != want {
		return 0, fmt.Errorf("server: batch length %d, want %d for %d records", len(data), want, n)
	}
	return n, nil
}

// appendDecoded deserializes a checked batch of n records onto out.
func appendDecoded(out []detect.SliceRecord, data []byte, n int) []detect.SliceRecord {
	off := 4
	for i := 0; i < n; i++ {
		out = append(out, detect.SliceRecord{
			Sensor:   int(binary.LittleEndian.Uint32(data[off:])),
			Group:    int(binary.LittleEndian.Uint32(data[off+4:])),
			Rank:     int(binary.LittleEndian.Uint32(data[off+8:])),
			SliceNs:  int64(binary.LittleEndian.Uint64(data[off+12:])),
			Count:    int32(binary.LittleEndian.Uint32(data[off+20:])),
			AvgNs:    math.Float64frombits(binary.LittleEndian.Uint64(data[off+24:])),
			AvgInstr: math.Float64frombits(binary.LittleEndian.Uint64(data[off+32:])),
		})
		off += recordWireSize
	}
	return out
}

func decodeBatch(data []byte) ([]detect.SliceRecord, error) {
	n, err := checkBatch(data)
	if err != nil {
		return nil, err
	}
	return appendDecoded(make([]detect.SliceRecord, 0, n), data, n), nil
}

// ---------- inter-process analysis ----------

// Outlier is a rank whose performance for one sensor in one time slice lags
// its peers — the inter-process variance of paper §5.4.
type Outlier struct {
	Sensor  int
	SliceNs int64
	Rank    int
	Perf    float64 // rank's normalized perf relative to the slice median
}

// InterProcessOutliers compares the same v-sensor across processes per
// slice: a rank is an outlier when its average time exceeds the cross-rank
// median by more than 1/threshold (e.g. threshold 0.8 → 25% slower).
func (s *Server) InterProcessOutliers(threshold float64) []Outlier {
	recs := s.Records()
	type key struct {
		sensor int
		group  int
		slice  int64
	}
	bySlice := make(map[key][]detect.SliceRecord)
	for _, r := range recs {
		k := key{r.Sensor, r.Group, r.SliceNs}
		bySlice[k] = append(bySlice[k], r)
	}
	var out []Outlier
	for k, group := range bySlice {
		if len(group) < 3 {
			continue
		}
		med := medianAvg(group)
		if med <= 0 {
			continue
		}
		for _, r := range group {
			perf := med / r.AvgNs
			if perf < threshold {
				out = append(out, Outlier{Sensor: k.sensor, SliceNs: k.slice, Rank: r.Rank, Perf: perf})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SliceNs != out[j].SliceNs {
			return out[i].SliceNs < out[j].SliceNs
		}
		if out[i].Sensor != out[j].Sensor {
			return out[i].Sensor < out[j].Sensor
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

func medianAvg(recs []detect.SliceRecord) float64 {
	vals := make([]float64, len(recs))
	for i, r := range recs {
		vals[i] = r.AvgNs
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
