// Package server implements the dedicated analysis-server process of paper
// §5.4. Each rank buffers its smoothed slice records locally and ships them
// in network-friendly framed batches; the server aggregates them, detects
// inter-process variance by comparing the performance of the same v-sensor
// across processes, and accounts the transferred data volume (the paper's
// 8.8 MB vs 501.5 MB tracing comparison).
//
// Frames carry a per-rank sequence number, a cumulative record count, and a
// CRC (see wire.go), so the server tolerates the failure modes of a real,
// lossy link (internal/transport): it deduplicates retransmissions, accepts
// frames out of order, rejects corrupted frames, and tracks per-rank
// delivery coverage so downstream analysis can report confidence on partial
// data instead of silently degrading.
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"vsensor/internal/detect"
	"vsensor/internal/obs"
)

// DefaultBatchSize is how many slice records a client buffers before
// transferring them in one frame.
const DefaultBatchSize = 64

// rankFlow is the per-sender delivery-tracking state: dedup window and
// coverage counters, keyed by the frame header's rank field.
type rankFlow struct {
	// contig is the highest sequence with all of 1..contig ingested.
	contig uint64
	// ahead holds ingested sequences beyond contig+1 (only populated when
	// frames arrive out of order; nil on the reliable in-process path).
	ahead map[uint64]struct{}

	maxSeq          uint64 // highest sequence observed
	maxCum          uint64 // highest cumulative record count observed
	ingestedFrames  int64
	ingestedRecords int64
}

// Server aggregates slice records from every rank.
type Server struct {
	mu      sync.Mutex
	records []detect.SliceRecord

	bytesReceived int64
	messages      int64

	// Incremental progress state, maintained at ingest so Progress() and
	// PerRankProgress() never rescan the record log.
	latestSliceNs int64
	perRank       map[int]*RankProgress

	// Delivery tracking (dedup + coverage), keyed by frame sender rank.
	flows           map[int]*rankFlow
	dupFrames       int64
	checksumErrors  int64
	rejectedFrames  int64
	expectedRecords int64 // sum over ranks of maxCum, maintained at ingest
	ingestedRecords int64

	// Observability handles (nil-safe no-ops when obs is off).
	obsMessages *obs.Counter
	obsBytes    *obs.Counter
	obsRecords  *obs.Counter
	obsBatch    *obs.Histogram
	obsDup      *obs.Counter
	obsCRC      *obs.Counter
	obsRejected *obs.Counter
	obsExpected *obs.Gauge
	obsIngested *obs.Gauge
}

// New creates an empty analysis server.
func New() *Server {
	return &Server{
		perRank: make(map[int]*RankProgress),
		flows:   make(map[int]*rankFlow),
	}
}

// SetObs attaches ingest metrics: message/byte/record counters, the
// batch-size histogram (server_batch_bytes), dedup/corruption counters, and
// the coverage gauges (server_records_expected / server_records_ingested).
// Call before the run starts.
func (s *Server) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	s.obsMessages = o.Counter("server_messages_total")
	s.obsBytes = o.Counter("server_bytes_total")
	s.obsRecords = o.Counter("server_records_total")
	s.obsBatch = o.Histogram("server_batch_bytes")
	s.obsDup = o.Counter("server_dup_frames_total")
	s.obsCRC = o.Counter("server_checksum_errors_total")
	s.obsRejected = o.Counter("server_rejected_frames_total")
	s.obsExpected = o.Gauge("server_records_expected")
	s.obsIngested = o.Gauge("server_records_ingested")
}

// Receive ingests one encoded frame: validate (length, magic, bounded
// count, CRC), deduplicate by (sender rank, sequence), then decode records
// straight into the server's log (no per-message temporary slice).
// Duplicate frames are acknowledged (nil error) but not re-ingested;
// corrupted or malformed frames return an error without touching the log.
func (s *Server) Receive(encoded []byte) error {
	h, err := ParseFrame(encoded)
	if err != nil {
		s.mu.Lock()
		if errors.Is(err, ErrChecksum) {
			s.checksumErrors++
			s.mu.Unlock()
			s.obsCRC.Inc()
		} else {
			s.rejectedFrames++
			s.mu.Unlock()
			s.obsRejected.Inc()
		}
		return err
	}
	s.mu.Lock()
	fl := s.flows[h.Rank]
	if fl == nil {
		fl = &rankFlow{}
		s.flows[h.Rank] = fl
	}
	if h.Seq > fl.maxSeq {
		fl.maxSeq = h.Seq
	}
	if h.CumRecords > fl.maxCum {
		s.expectedRecords += int64(h.CumRecords - fl.maxCum)
		fl.maxCum = h.CumRecords
	}
	if s.seenLocked(fl, h.Seq) {
		s.dupFrames++
		expected, ingested := s.expectedRecords, s.ingestedRecords
		s.mu.Unlock()
		s.obsDup.Inc()
		s.obsExpected.Set(float64(expected))
		s.obsIngested.Set(float64(ingested))
		return nil
	}
	s.markSeenLocked(fl, h.Seq)
	fl.ingestedFrames++
	fl.ingestedRecords += int64(h.Count)
	s.ingestedRecords += int64(h.Count)

	start := len(s.records)
	s.records = appendDecoded(s.records, encoded, h.Count)
	recs := s.records[start:]
	s.bytesReceived += int64(len(encoded))
	s.messages++
	for i := range recs {
		r := &recs[i]
		if r.SliceNs > s.latestSliceNs {
			s.latestSliceNs = r.SliceNs
		}
		rp := s.perRank[r.Rank]
		if rp == nil {
			rp = &RankProgress{Rank: r.Rank}
			s.perRank[r.Rank] = rp
		}
		rp.Records++
		if r.SliceNs > rp.LatestSliceNs {
			rp.LatestSliceNs = r.SliceNs
		}
	}
	expected, ingested := s.expectedRecords, s.ingestedRecords
	s.mu.Unlock()
	s.obsMessages.Inc()
	s.obsBytes.Add(int64(len(encoded)))
	s.obsRecords.Add(int64(len(recs)))
	s.obsBatch.ObserveInt(int64(len(encoded)))
	s.obsExpected.Set(float64(expected))
	s.obsIngested.Set(float64(ingested))
	return nil
}

// seenLocked reports whether seq was already ingested from this flow.
func (s *Server) seenLocked(fl *rankFlow, seq uint64) bool {
	if seq <= fl.contig {
		return true
	}
	if fl.ahead == nil {
		return false
	}
	_, ok := fl.ahead[seq]
	return ok
}

// markSeenLocked records seq as ingested, advancing the contiguous
// high-water mark through any previously buffered out-of-order sequences.
// On the reliable in-order path this is a single increment and never
// allocates.
func (s *Server) markSeenLocked(fl *rankFlow, seq uint64) {
	if seq == fl.contig+1 {
		fl.contig++
		for fl.ahead != nil {
			if _, ok := fl.ahead[fl.contig+1]; !ok {
				break
			}
			fl.contig++
			delete(fl.ahead, fl.contig)
		}
		return
	}
	if fl.ahead == nil {
		fl.ahead = make(map[uint64]struct{})
	}
	fl.ahead[seq] = struct{}{}
}

// BytesReceived returns the total encoded bytes shipped to the server.
func (s *Server) BytesReceived() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesReceived
}

// Messages returns how many frames were ingested (duplicates excluded).
func (s *Server) Messages() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.messages
}

// Records returns a snapshot of all received slice records.
func (s *Server) Records() []detect.SliceRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]detect.SliceRecord, len(s.records))
	copy(out, s.records)
	return out
}

// Client is a per-rank connection to the analysis server. It implements
// detect.Emitter, buffering records and transferring them in framed batches
// (paper: "each process buffers its data locally and periodically
// transfers them in batch to analysis-server"). This client delivers
// in-process and reliably; internal/transport wraps the same wire format in
// a lossy, fault-injectable link. Not safe for concurrent use; each rank
// owns one client.
type Client struct {
	server    *Server
	rank      int
	batchSize int
	buf       []detect.SliceRecord
	enc       []byte // reusable wire buffer; one allocation per client

	seq       uint64
	cum       uint64
	sent      int64
	bytesSent int64
}

// NewClient connects a rank to the server. batchSize <= 0 selects the
// default; batchSize 1 effectively disables batching (ablation A4).
func (s *Server) NewClient(rank, batchSize int) *Client {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &Client{server: s, rank: rank, batchSize: batchSize}
}

// OnSlice buffers one record, flushing when the batch is full.
func (c *Client) OnSlice(r detect.SliceRecord) error {
	c.buf = append(c.buf, r)
	if len(c.buf) >= c.batchSize {
		return c.Flush()
	}
	return nil
}

// Flush transfers the buffered records as one sequenced frame. The wire
// buffer is reused across flushes, so a warm client allocates nothing per
// batch. A delivery error (impossible for a self-encoded frame, but the
// emitter contract allows it) is returned instead of panicking; the frame's
// records are dropped rather than retried — retry belongs to
// internal/transport.
func (c *Client) Flush() error {
	if len(c.buf) == 0 {
		return nil
	}
	c.seq++
	c.cum += uint64(len(c.buf))
	h := FrameHeader{Rank: c.rank, Seq: c.seq, CumRecords: c.cum}
	c.enc = AppendFrame(c.enc[:0], h, c.buf)
	n := len(c.buf)
	c.buf = c.buf[:0]
	if err := c.server.Receive(c.enc); err != nil {
		return fmt.Errorf("server: frame %d from rank %d rejected: %w", c.seq, c.rank, err)
	}
	c.sent += int64(n)
	c.bytesSent += int64(len(c.enc))
	return nil
}

// BytesSent returns the client's total encoded payload bytes.
func (c *Client) BytesSent() int64 { return c.bytesSent }

// RecordsSent returns how many slice records this client shipped.
func (c *Client) RecordsSent() int64 { return c.sent }

// ---------- delivery coverage ----------

// Coverage summarizes how completely the server's record log reflects what
// the ranks sent: expected counts come from the frame headers' sequence and
// cumulative-record fields, so gaps from dropped or still-parked frames are
// visible even though their contents never arrived.
type Coverage struct {
	ExpectedRecords int64 // highest cumulative count claimed, summed over ranks
	IngestedRecords int64 // records actually decoded into the log
	ExpectedFrames  int64 // highest sequence observed, summed over ranks
	IngestedFrames  int64 // distinct frames ingested
	DupFrames       int64 // retransmissions absorbed by dedup
	ChecksumErrors  int64 // frames rejected by CRC (bit corruption)
	RejectedFrames  int64 // frames rejected for framing/header errors
}

// Fraction returns ingested/expected records, 1.0 when nothing is missing
// (including the no-data case).
func (c Coverage) Fraction() float64 {
	if c.ExpectedRecords <= 0 {
		return 1
	}
	return float64(c.IngestedRecords) / float64(c.ExpectedRecords)
}

// Complete reports whether every record any rank claims to have sent was
// ingested.
func (c Coverage) Complete() bool { return c.IngestedRecords >= c.ExpectedRecords }

// Coverage returns the server's delivery-coverage snapshot.
func (s *Server) Coverage() Coverage {
	s.mu.Lock()
	defer s.mu.Unlock()
	cov := Coverage{
		ExpectedRecords: s.expectedRecords,
		IngestedRecords: s.ingestedRecords,
		DupFrames:       s.dupFrames,
		ChecksumErrors:  s.checksumErrors,
		RejectedFrames:  s.rejectedFrames,
	}
	for _, fl := range s.flows {
		cov.ExpectedFrames += int64(fl.maxSeq)
		cov.IngestedFrames += fl.ingestedFrames
	}
	return cov
}

// ---------- inter-process analysis ----------

// Outlier is a rank whose performance for one sensor in one time slice lags
// its peers — the inter-process variance of paper §5.4.
type Outlier struct {
	Sensor  int
	SliceNs int64
	Rank    int
	Perf    float64 // rank's normalized perf relative to the slice median
}

// InterProcessOutliers compares the same v-sensor across processes per
// slice: a rank is an outlier when its average time exceeds the cross-rank
// median by more than 1/threshold (e.g. threshold 0.8 → 25% slower).
// The result is invariant under record arrival order: records are grouped
// by (sensor, group, slice) and each group's median does not depend on
// the order the transport delivered them in.
func (s *Server) InterProcessOutliers(threshold float64) []Outlier {
	recs := s.Records()
	type key struct {
		sensor int
		group  int
		slice  int64
	}
	bySlice := make(map[key][]detect.SliceRecord)
	for _, r := range recs {
		k := key{r.Sensor, r.Group, r.SliceNs}
		bySlice[k] = append(bySlice[k], r)
	}
	var out []Outlier
	for k, group := range bySlice {
		if len(group) < 3 {
			continue
		}
		med := medianAvg(group)
		if med <= 0 {
			continue
		}
		for _, r := range group {
			perf := med / r.AvgNs
			if perf < threshold {
				out = append(out, Outlier{Sensor: k.sensor, SliceNs: k.slice, Rank: r.Rank, Perf: perf})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SliceNs != out[j].SliceNs {
			return out[i].SliceNs < out[j].SliceNs
		}
		if out[i].Sensor != out[j].Sensor {
			return out[i].Sensor < out[j].Sensor
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		// Perf breaks the remaining tie (two records from one rank in the
		// same keyed group) so the order never depends on arrival order.
		return out[i].Perf < out[j].Perf
	})
	return out
}

// OutlierReport pairs the inter-process outliers with the delivery coverage
// they were computed under, so a consumer of partial data sees "found these,
// but 12% of records never arrived" instead of a silently thinner answer.
type OutlierReport struct {
	Outliers []Outlier
	Coverage Coverage
	// Confidence is the fraction of sent records the analysis saw
	// (Coverage.Fraction): 1.0 means the log is complete.
	Confidence float64
}

// InterProcessReport runs InterProcessOutliers and stamps the result with
// the current coverage.
func (s *Server) InterProcessReport(threshold float64) OutlierReport {
	cov := s.Coverage()
	return OutlierReport{
		Outliers:   s.InterProcessOutliers(threshold),
		Coverage:   cov,
		Confidence: cov.Fraction(),
	}
}

func medianAvg(recs []detect.SliceRecord) float64 {
	vals := make([]float64, len(recs))
	for i, r := range recs {
		vals[i] = r.AvgNs
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
