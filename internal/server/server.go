// Package server implements the dedicated analysis-server process of paper
// §5.4. Each rank buffers its smoothed slice records locally and ships them
// in network-friendly framed batches; the server aggregates them, detects
// inter-process variance by comparing the performance of the same v-sensor
// across processes, and accounts the transferred data volume (the paper's
// 8.8 MB vs 501.5 MB tracing comparison).
//
// Frames carry a per-rank sequence number, a cumulative record count, and a
// CRC (see wire.go), so the server tolerates the failure modes of a real,
// lossy link (internal/transport): it deduplicates retransmissions, accepts
// frames out of order, rejects corrupted frames, and tracks per-rank
// delivery coverage so downstream analysis can report confidence on partial
// data instead of silently degrading.
//
// Ingest is sharded: each sender rank's flow state, dedup window, progress
// entries, and record sub-log live in the shard rank&mask selects (shard.go),
// so Receives from different ranks proceed in parallel. A global arrival
// ticket, assigned under the owning shard's lock, linearizes the sub-logs —
// merging segments by ticket reproduces exactly the log a single global
// lock would have built. Inter-process analysis is incremental (epoch.go):
// records fold into per-(sensor, group, slice) epoch accumulators at ingest,
// and a query only evaluates epochs the cross-rank watermark has not yet
// sealed, instead of rescanning every record ever received.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"

	"vsensor/internal/detect"
	"vsensor/internal/obs"
)

// DefaultBatchSize is how many slice records a client buffers before
// transferring them in one frame.
const DefaultBatchSize = 64

// DefaultShards is the ingest shard count when New is used directly.
// Shard counts are rounded up to a power of two so rank routing is a mask.
const DefaultShards = 16

// MaxShards bounds the shard count a caller may request.
const MaxShards = 1 << 10

// rankFlow is the per-sender delivery-tracking state: dedup window and
// coverage counters, keyed by the frame header's rank field.
type rankFlow struct {
	// contig is the highest sequence with all of 1..contig ingested.
	contig uint64
	// ahead holds ingested sequences beyond contig+1 (only populated when
	// frames arrive out of order; nil on the reliable in-process path).
	ahead map[uint64]struct{}

	maxSeq          uint64 // highest sequence observed
	maxCum          uint64 // highest cumulative record count observed
	ingestedFrames  int64
	ingestedRecords int64
}

// Server aggregates slice records from every rank. Concurrent Receives from
// ranks on different shards never contend; queries visit shards one at a
// time and never block ingest for longer than one shard's critical section.
type Server struct {
	shards []*shard
	mask   uint32

	// ticket is the global arrival counter linearizing frames across
	// shards; assigned under the ingesting shard's lock.
	ticket atomic.Uint64

	// an is the incremental inter-process analyzer (epoch.go).
	an *analyzer

	// dur is the optional WAL + snapshot layer (wal.go); nil when the server
	// is purely in-memory. down is set between Crash and Recover, making
	// Receive fail fast with ErrServerDown.
	dur  *durability
	down atomic.Bool

	// heartbeats counts liveness frames folded (liveness.go); kept out of
	// Messages and Coverage, which describe record delivery only.
	heartbeats atomic.Int64

	// Frame rejections happen before a trustworthy rank exists, so they are
	// accounted globally rather than per shard.
	checksumErrors atomic.Int64
	rejectedFrames atomic.Int64

	// Whole-server coverage totals, mirrored from the shard-local flow
	// bookkeeping so the obs gauges never need a cross-shard sweep.
	expectedRecords atomic.Int64
	ingestedRecords atomic.Int64

	// lin is the record-lineage tracer (nil when lineage is off). Set from
	// SetObs; the unsampled/off ingest path pays only nil checks.
	lin *obs.Lineage

	// snap is the versioned report cache (snapshotcache.go): every ingest
	// outcome bumps its mutation counter, and Snapshot rebuilds the shared
	// report render at most once per state change.
	snap snapshotCache

	// Observability handles (nil-safe no-ops when obs is off).
	obsMessages   *obs.Counter
	obsBytes      *obs.Counter
	obsRecords    *obs.Counter
	obsBatch      *obs.Histogram
	obsDup        *obs.Counter
	obsCRC        *obs.Counter
	obsRejected   *obs.Counter
	obsExpected   *obs.Gauge
	obsIngested   *obs.Gauge
	obsHeartbeats *obs.Counter
	obsAlive      *obs.Gauge
	obsSuspect    *obs.Gauge
	obsDead       *obs.Gauge
	obsSnapGen    *obs.Gauge
	obsSnapBuilds *obs.Counter
	obsSnapHits   *obs.Counter
}

// New creates an empty analysis server with DefaultShards ingest shards.
func New() *Server {
	return NewSharded(DefaultShards)
}

// NewSharded creates an analysis server with the given number of ingest
// shards, rounded up to a power of two in [1, MaxShards]. More shards admit
// more concurrent senders; shards only cost a few empty maps each, so
// over-provisioning is cheap.
func NewSharded(n int) *Server {
	if n <= 0 {
		n = DefaultShards
	}
	if n > MaxShards {
		n = MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	s := &Server{
		shards: make([]*shard, p),
		mask:   uint32(p - 1),
		an:     newAnalyzer(),
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			flows:   make(map[int]*rankFlow),
			perRank: make(map[int]*RankProgress),
			live:    make(map[int]*rankLive),
		}
	}
	s.snap.init()
	return s
}

// Shards returns the ingest shard count.
func (s *Server) Shards() int { return len(s.shards) }

// SetObs attaches ingest metrics: message/byte/record counters, the
// batch-size histogram (server_batch_bytes), dedup/corruption counters, the
// coverage gauges (server_records_expected / server_records_ingested),
// per-shard gauges (server_shard_records / server_shard_frames), and the
// epoch analyzer's gauges and lag histogram. Call before the run starts.
func (s *Server) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	s.obsMessages = o.Counter("server_messages_total")
	s.obsBytes = o.Counter("server_bytes_total")
	s.obsRecords = o.Counter("server_records_total")
	s.obsBatch = o.Histogram("server_batch_bytes")
	s.obsDup = o.Counter("server_dup_frames_total")
	s.obsCRC = o.Counter("server_checksum_errors_total")
	s.obsRejected = o.Counter("server_rejected_frames_total")
	s.obsExpected = o.Gauge("server_records_expected")
	s.obsIngested = o.Gauge("server_records_ingested")
	s.obsHeartbeats = o.Counter("server_heartbeats_total")
	s.obsAlive = o.Gauge("server_ranks_alive")
	s.obsSuspect = o.Gauge("server_ranks_suspect")
	s.obsDead = o.Gauge("server_ranks_dead")
	s.obsSnapGen = o.Gauge("server_report_gen")
	s.obsSnapBuilds = o.Counter("server_report_builds_total")
	s.obsSnapHits = o.Counter("server_report_hits_total")
	o.Gauge("server_shards").Set(float64(len(s.shards)))
	for i, sh := range s.shards {
		label := strconv.Itoa(i)
		sh.obsRecords = o.Gauge("server_shard_records", "shard", label)
		sh.obsFrames = o.Gauge("server_shard_frames", "shard", label)
	}
	s.lin = o.Lineage()
	s.an.setObs(o)
	if s.dur != nil {
		s.dur.setObs(o)
	}
}

// Receive ingests one encoded frame: validate (length, magic, bounded
// count, CRC), route to the sender rank's shard, deduplicate by (sender
// rank, sequence), decode records straight into the shard's sub-log (no
// per-message temporary slice), then fold them into the epoch analyzer.
// Duplicate frames are acknowledged (nil error) but not re-ingested;
// corrupted or malformed frames return an error without touching any log.
// Heartbeat frames (liveness.go) fold into the sender's lease state and are
// not counted as messages.
//
// With durability attached, every outcome — ingest, duplicate, rejection,
// heartbeat — is journaled to the WAL before Receive returns, under a
// shared lock that excludes Crash/Recover/Checkpoint, so an acknowledged
// frame is never half-applied when a crash captures the disk.
func (s *Server) Receive(encoded []byte) error {
	d := s.dur
	if d == nil {
		return s.receiveLocked(encoded)
	}
	if s.down.Load() {
		return ErrServerDown
	}
	d.stateMu.RLock()
	if s.down.Load() { // re-check: Crash may have won the lock race
		d.stateMu.RUnlock()
		return ErrServerDown
	}
	err := s.receiveLocked(encoded)
	d.mu.Lock()
	snapDue := d.snapDue
	d.mu.Unlock()
	d.stateMu.RUnlock()
	// An automatic checkpoint needs the exclusive lock, so it runs after
	// the shared hold is released. Concurrent Receives may all see snapDue;
	// the first checkpoint clears it and the rest re-snapshot harmlessly
	// (at worst one extra snapshot per racing frame).
	if snapDue && err == nil {
		if lin := s.lin; lin != nil {
			if trace := TraceOf(encoded); trace != 0 {
				rank := int(binary.LittleEndian.Uint32(encoded[4:]))
				t0 := nowUnixNs()
				cerr := s.Checkpoint()
				lin.Record(trace, obs.StageSnapshot, rank, 0, t0, nowUnixNs()-t0, 0)
				return cerr
			}
		}
		return s.Checkpoint()
	}
	return err
}

// receiveLocked is Receive's body; with durability the caller holds the
// stateMu read lock.
func (s *Server) receiveLocked(encoded []byte) error {
	// Every outcome — ingest, duplicate, rejection, heartbeat — invalidates
	// the cached report: any of them can advance the watermark, reopen an
	// epoch, move a liveness lease, or change a counter /status serves.
	defer s.bumpReadVersion()
	if IsHeartbeat(encoded) {
		rank, nowNs, leaseNs, err := parseHeartbeat(encoded)
		if err != nil {
			s.rejectedFrames.Add(1)
			s.obsRejected.Inc()
			if s.dur != nil {
				if werr := s.dur.logBadFrame(false); werr != nil {
					return werr
				}
			}
			return err
		}
		return s.receiveHeartbeat(rank, nowNs, leaseNs, true)
	}
	h, err := ParseFrame(encoded)
	if err != nil {
		checksum := errors.Is(err, ErrChecksum)
		if checksum {
			s.checksumErrors.Add(1)
			s.obsCRC.Inc()
		} else {
			s.rejectedFrames.Add(1)
			s.obsRejected.Inc()
		}
		if s.dur != nil {
			if werr := s.dur.logBadFrame(checksum); werr != nil {
				return werr
			}
		}
		return err
	}
	// Time the full live ingest only for sampled frames: the nonzero-trace
	// check is a few byte loads, so unsampled frames skip both clock reads.
	lin := s.lin
	traced := lin != nil && h.TraceID != 0
	var t0 int64
	if traced {
		t0 = nowUnixNs()
	}
	dup, ticket := s.ingestFrame(h, encoded, 0, true)
	var werr error
	if s.dur != nil {
		if dup {
			werr = s.dur.logDup(h.Rank)
		} else {
			_, werr = s.dur.logFrame(ticket, encoded, h.TraceID)
		}
	}
	if traced {
		now := nowUnixNs()
		dupArg := int64(0)
		if dup {
			dupArg = 1
		}
		lin.Record(h.TraceID, obs.StageDedup, h.Rank, 0, now, 0, dupArg)
		lin.Record(h.TraceID, obs.StageIngest, h.Rank, 0, t0, now-t0, int64(h.Count))
	}
	return werr
}

// ingestFrame applies one parsed, validated frame to the shard state and
// the epoch analyzer. forceTicket non-zero replays the frame under its
// original arrival ticket (WAL recovery); live=false additionally
// suppresses the per-frame observability counters, which describe the
// process's ingest history rather than its state.
func (s *Server) ingestFrame(h FrameHeader, encoded []byte, forceTicket uint64, live bool) (dup bool, ticket uint64) {
	sh := s.shardFor(h.Rank)
	sh.mu.Lock()
	fl := sh.flows[h.Rank]
	if fl == nil {
		fl = &rankFlow{}
		sh.flows[h.Rank] = fl
	}
	if h.Seq > fl.maxSeq {
		fl.maxSeq = h.Seq
	}
	if h.CumRecords > fl.maxCum {
		delta := int64(h.CumRecords - fl.maxCum)
		sh.expectedRecords += delta
		s.expectedRecords.Add(delta)
		fl.maxCum = h.CumRecords
	}
	if fl.seen(h.Seq) {
		sh.dupFrames++
		sh.mu.Unlock()
		if live {
			s.obsDup.Inc()
			s.setCoverageGauges()
		}
		return true, 0
	}
	fl.markSeen(h.Seq)
	fl.ingestedFrames++
	fl.ingestedRecords += int64(h.Count)
	sh.ingestedRecords += int64(h.Count)
	s.ingestedRecords.Add(int64(h.Count))

	if forceTicket != 0 {
		ticket = forceTicket
		// Replay runs under the exclusive stateMu, so a plain
		// load-compare-store cannot race another ticket assignment.
		if ticket > s.ticket.Load() {
			s.ticket.Store(ticket)
		}
	} else {
		ticket = s.ticket.Add(1)
	}
	start := len(sh.records)
	sh.records = appendDecoded(sh.records, encoded, h.Count)
	recs := sh.records[start:]
	sh.segments = append(sh.segments, segment{ticket: ticket, start: start, end: len(sh.records)})
	sh.bytesReceived += int64(len(encoded))
	sh.messages++
	for i := range recs {
		r := &recs[i]
		if r.SliceNs > sh.latestSliceNs {
			sh.latestSliceNs = r.SliceNs
		}
		rp := sh.perRank[r.Rank]
		if rp == nil {
			rp = &RankProgress{Rank: r.Rank}
			sh.perRank[r.Rank] = rp
		}
		rp.Records++
		if r.SliceNs > rp.LatestSliceNs {
			rp.LatestSliceNs = r.SliceNs
		}
	}
	shardRecords, shardFrames := len(sh.records), len(sh.segments)
	sh.mu.Unlock()

	// Fold into the epoch analyzer outside the shard lock: the committed
	// sub-log prefix is immutable, and the analyzer stripes its own locks
	// by (sensor, group, slice).
	s.an.fold(recs, h.TraceID, live)

	if live {
		s.obsMessages.Inc()
		s.obsBytes.Add(int64(len(encoded)))
		s.obsRecords.Add(int64(len(recs)))
		s.obsBatch.ObserveInt(int64(len(encoded)))
		sh.obsRecords.Set(float64(shardRecords))
		sh.obsFrames.Set(float64(shardFrames))
		s.setCoverageGauges()
	}
	return false, ticket
}

func (s *Server) setCoverageGauges() {
	s.obsExpected.Set(float64(s.expectedRecords.Load()))
	s.obsIngested.Set(float64(s.ingestedRecords.Load()))
}

// seen reports whether seq was already ingested from this flow.
func (fl *rankFlow) seen(seq uint64) bool {
	if seq <= fl.contig {
		return true
	}
	if fl.ahead == nil {
		return false
	}
	_, ok := fl.ahead[seq]
	return ok
}

// markSeen records seq as ingested, advancing the contiguous high-water
// mark through any previously buffered out-of-order sequences. On the
// reliable in-order path this is a single increment and never allocates.
func (fl *rankFlow) markSeen(seq uint64) {
	if seq == fl.contig+1 {
		fl.contig++
		for fl.ahead != nil {
			if _, ok := fl.ahead[fl.contig+1]; !ok {
				break
			}
			fl.contig++
			delete(fl.ahead, fl.contig)
		}
		return
	}
	if fl.ahead == nil {
		fl.ahead = make(map[uint64]struct{})
	}
	fl.ahead[seq] = struct{}{}
}

// BytesReceived returns the total encoded bytes shipped to the server.
func (s *Server) BytesReceived() int64 {
	var total int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.bytesReceived
		sh.mu.Unlock()
	}
	return total
}

// Messages returns how many frames were ingested (duplicates excluded).
func (s *Server) Messages() int64 {
	var total int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.messages
		sh.mu.Unlock()
	}
	return total
}

// Records returns a snapshot of the received slice records in arrival
// (ticket) order. The snapshot is built from per-shard segment views — no
// shard lock is held while the merged copy is assembled, and an ingest
// racing the snapshot only affects whether its frame is included, never the
// integrity of the records that are.
func (s *Server) Records() []detect.SliceRecord {
	segs := s.orderedSegments()
	n := 0
	for _, sg := range segs {
		n += len(sg.recs)
	}
	out := make([]detect.SliceRecord, 0, n)
	for _, sg := range segs {
		out = append(out, sg.recs...)
	}
	return out
}

// Client is a per-rank connection to the analysis server. It implements
// detect.Emitter, buffering records and transferring them in framed batches
// (paper: "each process buffers its data locally and periodically
// transfers them in batch to analysis-server"). This client delivers
// in-process and reliably; internal/transport wraps the same wire format in
// a lossy, fault-injectable link. Not safe for concurrent use; each rank
// owns one client.
type Client struct {
	server    *Server
	rank      int
	batchSize int
	buf       []detect.SliceRecord
	enc       []byte // reusable wire buffer; one allocation per client

	seq       uint64
	cum       uint64
	sent      int64
	bytesSent int64
	refused   bool  // last flush hit a down server; its records are still buffered
	packed    int64 // flushes that delivered more than one flush interval
}

// NewClient connects a rank to the server. batchSize <= 0 selects the
// default; batchSize 1 effectively disables batching (ablation A4).
func (s *Server) NewClient(rank, batchSize int) *Client {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &Client{server: s, rank: rank, batchSize: batchSize}
}

// OnSlice buffers one record, flushing when the batch is full.
func (c *Client) OnSlice(r detect.SliceRecord) error {
	c.buf = append(c.buf, r)
	if len(c.buf) >= c.batchSize {
		return c.Flush()
	}
	return nil
}

// Flush transfers the buffered records as sequenced frames — normally one,
// chunked only when packing accumulated more than a frame can carry. The
// wire buffer is reused across flushes, so a warm client allocates nothing
// per batch.
//
// Backpressure packing: when the server is down (ErrServerDown, between
// Crash and Recover), the flush's sequence number is rolled back and the
// records stay buffered — a refused frame never touched the server's dedup
// state, so the next flush may legally re-cut the same sequence number
// around a bigger batch, packing multiple flush intervals into one frame.
// Any other delivery error (impossible for a self-encoded frame, but the
// emitter contract allows it) drops the chunk's records rather than
// retrying — retry belongs to internal/transport.
func (c *Client) Flush() error {
	for len(c.buf) > 0 {
		n := len(c.buf)
		if n > MaxFrameRecords {
			n = MaxFrameRecords
		}
		c.seq++
		c.cum += uint64(n)
		h := FrameHeader{Rank: c.rank, Seq: c.seq, CumRecords: c.cum}
		lin := c.server.lin
		if lin != nil {
			h.TraceID = lin.TraceID(c.rank, c.seq)
		}
		c.enc = AppendFrame(c.enc[:0], h, c.buf[:n])
		if err := c.server.Receive(c.enc); err != nil {
			seq := c.seq
			if errors.Is(err, ErrServerDown) {
				c.seq--
				c.cum -= uint64(n)
				c.refused = true
			} else {
				c.buf = c.buf[:copy(c.buf, c.buf[n:])]
			}
			return fmt.Errorf("server: frame %d from rank %d rejected: %w", seq, c.rank, err)
		}
		if lin != nil && h.TraceID != 0 {
			lin.FrameSampled()
		}
		if c.refused {
			c.packed++
			c.refused = false
		}
		c.sent += int64(n)
		c.bytesSent += int64(len(c.enc))
		c.buf = c.buf[:copy(c.buf, c.buf[n:])]
	}
	return nil
}

// PackedFlushes reports how many flushes delivered records accumulated
// across more than one flush interval (backpressure packing).
func (c *Client) PackedFlushes() int64 { return c.packed }

// NextTrace reports the lineage trace ID the *next* flushed frame will
// carry (0 when unsampled or lineage is off). Records buffered now leave in
// frame seq+1, so the detector can tag its emit span with the same trace
// the wire will see. Implements detect.TraceSource.
func (c *Client) NextTrace() uint64 {
	lin := c.server.lin
	if lin == nil {
		return 0
	}
	return lin.TraceID(c.rank, c.seq+1)
}

// BytesSent returns the client's total encoded payload bytes.
func (c *Client) BytesSent() int64 { return c.bytesSent }

// RecordsSent returns how many slice records this client shipped.
func (c *Client) RecordsSent() int64 { return c.sent }

// ---------- delivery coverage ----------

// Coverage summarizes how completely the server's record log reflects what
// the ranks sent: expected counts come from the frame headers' sequence and
// cumulative-record fields, so gaps from dropped or still-parked frames are
// visible even though their contents never arrived.
type Coverage struct {
	ExpectedRecords int64 // highest cumulative count claimed, summed over ranks
	IngestedRecords int64 // records actually decoded into the log
	ExpectedFrames  int64 // highest sequence observed, summed over ranks
	IngestedFrames  int64 // distinct frames ingested
	DupFrames       int64 // retransmissions absorbed by dedup
	ChecksumErrors  int64 // frames rejected by CRC (bit corruption)
	RejectedFrames  int64 // frames rejected for framing/header errors
}

// Fraction returns ingested/expected records, 1.0 when nothing is missing
// (including the no-data case).
func (c Coverage) Fraction() float64 {
	if c.ExpectedRecords <= 0 {
		return 1
	}
	return float64(c.IngestedRecords) / float64(c.ExpectedRecords)
}

// Complete reports whether every record any rank claims to have sent was
// ingested.
func (c Coverage) Complete() bool { return c.IngestedRecords >= c.ExpectedRecords }

// Coverage returns the server's delivery-coverage snapshot.
func (s *Server) Coverage() Coverage {
	cov := Coverage{
		ChecksumErrors: s.checksumErrors.Load(),
		RejectedFrames: s.rejectedFrames.Load(),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		cov.ExpectedRecords += sh.expectedRecords
		cov.IngestedRecords += sh.ingestedRecords
		cov.DupFrames += sh.dupFrames
		for _, fl := range sh.flows {
			cov.ExpectedFrames += int64(fl.maxSeq)
			cov.IngestedFrames += fl.ingestedFrames
		}
		sh.mu.Unlock()
	}
	return cov
}

// ShardCoverage is one ingest shard's slice of the delivery accounting, for
// dashboards that want to see load spread across shards.
type ShardCoverage struct {
	Shard           int
	Ranks           int // distinct sender flows routed to this shard
	Frames          int64
	Records         int64
	ExpectedRecords int64
	DupFrames       int64
}

// PerShardCoverage returns each shard's delivery accounting in shard order.
func (s *Server) PerShardCoverage() []ShardCoverage {
	out := make([]ShardCoverage, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		sc := ShardCoverage{
			Shard:           i,
			Ranks:           len(sh.flows),
			Frames:          int64(len(sh.segments)),
			Records:         sh.ingestedRecords,
			ExpectedRecords: sh.expectedRecords,
			DupFrames:       sh.dupFrames,
		}
		sh.mu.Unlock()
		out[i] = sc
	}
	return out
}

// ---------- inter-process analysis ----------

// Outlier is a rank whose performance for one sensor in one time slice lags
// its peers — the inter-process variance of paper §5.4.
type Outlier struct {
	Sensor  int
	SliceNs int64
	Rank    int
	Perf    float64 // rank's normalized perf relative to the slice median
}

// InterProcessOutliers compares the same v-sensor across processes per
// slice: a rank is an outlier when its average time exceeds the cross-rank
// median by more than 1/threshold (e.g. threshold 0.8 → 25% slower).
//
// The comparison is evaluated incrementally: records were folded into
// per-(sensor, group, slice) epochs at ingest, so this call only computes
// medians for epochs still open under the cross-rank watermark — closed
// epochs reuse their cached result. The outcome is exactly what a batch
// recompute over Records() would produce, and is invariant under record
// arrival order: late records reopen their epoch rather than being dropped.
func (s *Server) InterProcessOutliers(threshold float64) []Outlier {
	watermark, haveWatermark := s.watermark()
	out := s.an.outliers(threshold, watermark, haveWatermark)
	sortOutliers(out)
	return out
}

// watermark returns the earliest latest-slice over every rank that has
// reported and is not lease-expired — the virtual instant every live
// sender is known to have progressed past. Epochs for slices strictly
// before it are sealed; a reordered frame arriving later still reopens its
// epoch, so the watermark is a performance hint, never a correctness gate.
//
// Ranks the lease state machine classifies Dead (liveness.go) are excluded:
// a rank that stopped reporting would otherwise pin the watermark forever,
// so no epoch would ever close and the analyzer's open set would grow for
// the rest of the run. Without leases (the in-process path) every rank is
// Alive and this is exactly the old all-ranks minimum.
func (s *Server) watermark() (int64, bool) {
	// Fast path: until a heartbeat arrives no rank has a lease, so none can
	// be dead and the watermark is the plain all-ranks minimum. This keeps
	// lease-free queries allocation-free instead of paying livenessView's
	// per-rank merge maps on every poll racing ingest (heartbeat frames are
	// the only writers of shard live tables, so heartbeats==0 implies every
	// lease is zero).
	if s.heartbeats.Load() == 0 {
		wm := int64(math.MaxInt64)
		have := false
		for _, sh := range s.shards {
			sh.mu.Lock()
			for _, rp := range sh.perRank {
				if !have || rp.LatestSliceNs < wm {
					wm = rp.LatestSliceNs
					have = true
				}
			}
			sh.mu.Unlock()
		}
		if !have {
			return 0, false
		}
		return wm, true
	}
	v := s.livenessView()
	dead := make(map[int]bool)
	for _, rl := range v.ranks {
		if rl.State == Dead {
			dead[rl.Rank] = true
		}
	}
	wm := int64(math.MaxInt64)
	have := false
	for rank, latest := range v.latest {
		if dead[rank] {
			continue
		}
		if !have || latest < wm {
			wm = latest
			have = true
		}
	}
	if !have {
		return 0, false
	}
	return wm, true
}

// OutlierReport pairs the inter-process outliers with the delivery coverage
// and rank liveness they were computed under, so a consumer of partial data
// sees "found these, but 12% of records never arrived and rank 3 is dead"
// instead of a silently thinner answer.
type OutlierReport struct {
	Outliers []Outlier
	Coverage Coverage

	// Liveness is every known rank's lease state; DeadRanks lists the ranks
	// whose leases expired past recovery (in rank order). Degraded is set
	// when any rank is dead: the verdict intentionally excludes senders that
	// stopped reporting rather than stalling on them.
	Liveness  []RankLiveness
	DeadRanks []int
	Degraded  bool

	// LivenessConfidence is the fraction of known ranks still contributing
	// (alive or suspect); 1.0 when no rank is dead.
	LivenessConfidence float64

	// Confidence combines delivery and liveness: Coverage.Fraction() ×
	// LivenessConfidence. 1.0 means a complete log from a fully live fleet.
	Confidence float64
}

// InterProcessReport runs InterProcessOutliers and stamps the result with
// the current coverage and liveness. With a permanently dead rank the
// report is degraded, not stalled: the dead rank is named, excluded from
// the watermark, and discounted from Confidence.
func (s *Server) InterProcessReport(threshold float64) OutlierReport {
	cov := s.Coverage()
	v := s.livenessView()
	return assembleReport(s.InterProcessOutliers(threshold), cov, v.ranks)
}
