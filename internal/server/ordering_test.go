package server

import (
	"math/rand"
	"testing"

	"vsensor/internal/detect"
)

// ingestFrames delivers one frame per record in the given order, with
// per-sender sequence numbers assigned in that order.
func ingestFrames(t *testing.T, recs []detect.SliceRecord, order []int) *Server {
	t.Helper()
	s := New()
	seqs := map[int]uint64{}
	cums := map[int]uint64{}
	for _, i := range order {
		r := recs[i]
		seqs[r.Rank]++
		cums[r.Rank]++
		enc := AppendFrame(nil, FrameHeader{
			Rank: r.Rank, Seq: seqs[r.Rank], CumRecords: cums[r.Rank],
		}, []detect.SliceRecord{r})
		if err := s.Receive(enc); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// Property: InterProcessOutliers is invariant under record arrival order.
// Whatever permutation the transport delivers a run's records in, the
// analysis must produce the identical outlier list — the guarantee that lets
// a lossy, reordering link feed the same analysis as a reliable one.
func TestOutliersReorderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 20 + rng.Intn(120)
		recs := make([]detect.SliceRecord, n)
		for i := range recs {
			recs[i] = detect.SliceRecord{
				Sensor:  rng.Intn(4),
				Group:   rng.Intn(2),
				Rank:    rng.Intn(10),
				SliceNs: int64(rng.Intn(5)) * 1_000_000,
				Count:   int32(1 + rng.Intn(9)),
				AvgNs:   50 + 200*rng.Float64(),
			}
		}
		order := rng.Perm(n)
		inOrder := make([]int, n)
		for i := range inOrder {
			inOrder[i] = i
		}
		a := ingestFrames(t, recs, inOrder).InterProcessOutliers(0.8)
		b := ingestFrames(t, recs, order).InterProcessOutliers(0.8)
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d outliers in order, %d shuffled", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: outlier %d differs: %+v vs %+v", trial, i, a[i], b[i])
			}
		}
	}
}
