package server

import (
	"testing"

	"vsensor/internal/detect"
)

func TestRecordsSinceCursor(t *testing.T) {
	s := New()
	c := s.NewClient(0, 1)
	for i := 0; i < 5; i++ {
		c.OnSlice(detect.SliceRecord{Sensor: 0, Rank: 0, SliceNs: int64(i) * 1000, Count: 1, AvgNs: 10})
	}
	first, cur := s.RecordsSince(0)
	if len(first) != 5 || cur != 5 {
		t.Fatalf("first batch: %d records, cursor %d", len(first), cur)
	}
	// Nothing new yet.
	none, cur2 := s.RecordsSince(cur)
	if len(none) != 0 || cur2 != 5 {
		t.Fatalf("expected empty delta: %d, %d", len(none), cur2)
	}
	// Two more arrive.
	c.OnSlice(detect.SliceRecord{Sensor: 0, Rank: 0, SliceNs: 9000, Count: 1, AvgNs: 10})
	c.OnSlice(detect.SliceRecord{Sensor: 1, Rank: 0, SliceNs: 10000, Count: 1, AvgNs: 10})
	delta, cur3 := s.RecordsSince(cur2)
	if len(delta) != 2 || cur3 != 7 {
		t.Fatalf("delta = %d, cursor %d", len(delta), cur3)
	}
	if delta[0].SliceNs != 9000 || delta[1].Sensor != 1 {
		t.Errorf("delta contents wrong: %+v", delta)
	}
	// Out-of-range cursors are clamped.
	if recs, cur := s.RecordsSince(-5); len(recs) != 7 || cur != 7 {
		t.Error("negative cursor not clamped")
	}
	if recs, cur := s.RecordsSince(99); len(recs) != 0 || cur != 7 {
		t.Error("overlong cursor not clamped")
	}
}

func TestPerRankProgress(t *testing.T) {
	s := New()
	if pr := s.PerRankProgress(); len(pr) != 0 {
		t.Fatalf("empty server per-rank = %v", pr)
	}
	c0 := s.NewClient(0, 1)
	c1 := s.NewClient(1, 1)
	c0.OnSlice(detect.SliceRecord{Sensor: 0, Rank: 0, SliceNs: 1_000_000, Count: 1, AvgNs: 10})
	c0.OnSlice(detect.SliceRecord{Sensor: 0, Rank: 0, SliceNs: 3_000_000, Count: 1, AvgNs: 10})
	c1.OnSlice(detect.SliceRecord{Sensor: 0, Rank: 2, SliceNs: 2_000_000, Count: 1, AvgNs: 10})
	pr := s.PerRankProgress()
	if len(pr) != 2 {
		t.Fatalf("per-rank entries = %d", len(pr))
	}
	if pr[0].Rank != 0 || pr[0].Records != 2 || pr[0].LatestSliceNs != 3_000_000 {
		t.Errorf("rank 0 progress = %+v", pr[0])
	}
	if pr[1].Rank != 2 || pr[1].Records != 1 || pr[1].LatestSliceNs != 2_000_000 {
		t.Errorf("rank 2 progress = %+v", pr[1])
	}
	if p := s.Progress(); p.LatestSliceNs != 3_000_000 {
		t.Errorf("aggregate latest = %d", p.LatestSliceNs)
	}
}

func TestProgressSnapshot(t *testing.T) {
	s := New()
	if p := s.Progress(); p.Records != 0 || p.LatestSliceNs != 0 {
		t.Errorf("empty progress = %+v", p)
	}
	c := s.NewClient(0, 2)
	c.OnSlice(detect.SliceRecord{Sensor: 0, Rank: 0, SliceNs: 5_000_000, Count: 1, AvgNs: 10})
	c.OnSlice(detect.SliceRecord{Sensor: 0, Rank: 0, SliceNs: 8_000_000, Count: 1, AvgNs: 10})
	p := s.Progress()
	if p.Records != 2 || p.Messages != 1 || p.LatestSliceNs != 8_000_000 {
		t.Errorf("progress = %+v", p)
	}
	if p.Bytes <= 0 {
		t.Error("bytes not accounted")
	}
}
