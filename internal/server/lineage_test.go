package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/obs"
)

// ---------- vSF2 wire extension ----------

func TestVSF2RoundTrip(t *testing.T) {
	recs := []detect.SliceRecord{
		{Sensor: 1, Group: 2, Rank: 3, SliceNs: 1_000_000, Count: 4, AvgNs: 123.5, AvgInstr: 9.25},
		{Sensor: 7, Group: 0, Rank: 3, SliceNs: 2_000_000, Count: 1, AvgNs: 88},
	}
	h := FrameHeader{Rank: 3, Seq: 5, CumRecords: 10, TraceID: 0xdeadbeefcafe}
	frame := AppendFrame(nil, h, recs)

	got, decoded, err := decodeFrame(frame)
	if err != nil {
		t.Fatalf("decode vSF2: %v", err)
	}
	if got.TraceID != h.TraceID || got.Rank != 3 || got.Seq != 5 || got.CumRecords != 10 || got.Count != 2 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(decoded) != 2 || decoded[0] != recs[0] || decoded[1] != recs[1] {
		t.Fatalf("payload mismatch: %+v", decoded)
	}
	if tr := TraceOf(frame); tr != h.TraceID {
		t.Fatalf("TraceOf = %#x, want %#x", tr, h.TraceID)
	}

	// The vSF1 encoding of the same content is exactly 8 bytes shorter and
	// carries no trace.
	plain := AppendFrame(nil, FrameHeader{Rank: 3, Seq: 5, CumRecords: 10}, recs)
	if len(plain) != len(frame)-frameTraceSize {
		t.Fatalf("vSF1 len %d, vSF2 len %d, want delta %d", len(plain), len(frame), frameTraceSize)
	}
	if tr := TraceOf(plain); tr != 0 {
		t.Fatalf("TraceOf(vSF1) = %#x, want 0", tr)
	}
	if ph, pd, err := decodeFrame(plain); err != nil || ph.TraceID != 0 || len(pd) != 2 || pd[0] != recs[0] {
		t.Fatalf("vSF1 decode: h=%+v err=%v", ph, err)
	}
}

func TestVSF2TraceCoveredByCRC(t *testing.T) {
	recs := []detect.SliceRecord{{Sensor: 1, Rank: 0, SliceNs: 0, Count: 1, AvgNs: 1}}
	frame := AppendFrame(nil, FrameHeader{Rank: 0, Seq: 1, CumRecords: 1, TraceID: 0xabc}, recs)
	for bit := 0; bit < frameTraceSize*8; bit += 13 {
		damaged := append([]byte(nil), frame...)
		damaged[frameHeaderSize+bit/8] ^= 1 << (bit % 8)
		if _, err := ParseFrame(damaged); !errors.Is(err, ErrChecksum) {
			t.Fatalf("bit %d in trace field flipped: err = %v, want checksum mismatch", bit, err)
		}
	}
}

func TestVSF2ZeroTraceRejected(t *testing.T) {
	// Handcraft a vSF2 frame whose trace field is zero with a valid CRC:
	// the canonical-encoding rule must reject it even though the checksum
	// passes, so each frame has exactly one valid byte encoding.
	recs := []detect.SliceRecord{{Sensor: 1, Rank: 0, SliceNs: 0, Count: 1, AvgNs: 1}}
	frame := AppendFrame(nil, FrameHeader{Rank: 0, Seq: 1, CumRecords: 1, TraceID: 0xabc}, recs)
	binary.LittleEndian.PutUint64(frame[frameHeaderSize:], 0)
	crc := crc32.ChecksumIEEE(frame[:28])
	crc = crc32.Update(crc, crc32.IEEETable, frame[frameHeaderSize:])
	binary.LittleEndian.PutUint32(frame[28:], crc)
	if _, err := ParseFrame(frame); err == nil || errors.Is(err, ErrChecksum) {
		t.Fatalf("zero-trace vSF2 accepted (err = %v), want canonical-encoding rejection", err)
	}
}

func TestZeroTraceEncodesIdenticalVSF1(t *testing.T) {
	// Lineage-off goldens depend on this: a zero TraceID must produce the
	// byte-exact vSF1 frame, not an empty extension.
	recs := []detect.SliceRecord{
		{Sensor: 2, Group: 1, Rank: 4, SliceNs: 3_000_000, Count: 2, AvgNs: 55, AvgInstr: 3},
	}
	a := AppendFrame(nil, FrameHeader{Rank: 4, Seq: 9, CumRecords: 18}, recs)
	b := AppendFrame(nil, FrameHeader{Rank: 4, Seq: 9, CumRecords: 18, TraceID: 0}, recs)
	if !bytes.Equal(a, b) {
		t.Fatal("zero-TraceID encoding differs from vSF1")
	}
	if binary.LittleEndian.Uint32(a[0:]) != frameMagic {
		t.Fatalf("magic %#x, want vSF1", binary.LittleEndian.Uint32(a[0:]))
	}
}

// ---------- spans through the ingest/WAL/epoch pipeline ----------

// stagesByTrace collects the distinct stages recorded for each trace ID.
func stagesByTrace(lin *obs.Lineage) map[uint64]map[obs.Stage]bool {
	spans, _ := lin.Snapshot(nil, 0)
	out := make(map[uint64]map[obs.Stage]bool)
	for _, sp := range spans {
		m := out[sp.Trace]
		if m == nil {
			m = make(map[obs.Stage]bool)
			out[sp.Trace] = m
		}
		m[sp.Stage] = true
	}
	return out
}

func TestLineageSpansThroughServer(t *testing.T) {
	const ranks, slices = 4, 6
	s := NewSharded(4)
	s.AttachDurability(DurabilityConfig{SnapshotEvery: 8})
	o := obs.New()
	lin := o.EnableLineage(obs.LineageConfig{SampleEvery: 1}) // trace everything
	s.SetObs(o)

	clients := make([]*Client, ranks)
	for r := range clients {
		clients[r] = s.NewClient(r, 1) // batch 1: one frame per record
	}
	for sl := 0; sl < slices; sl++ {
		for r, c := range clients {
			err := c.OnSlice(detect.SliceRecord{
				Sensor: 0, Rank: r, SliceNs: int64(sl) * 1_000_000,
				Count: 1, AvgNs: 100 + float64(r),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	// The query closes every epoch behind the watermark, emitting the
	// epoch_close + verdict spans that end each sampled journey.
	s.InterProcessOutliers(0.9)

	byTrace := stagesByTrace(lin)
	want := []obs.Stage{
		obs.StageIngest, obs.StageDedup, obs.StageWALAppend, obs.StageWALSync,
		obs.StageEpochClose, obs.StageVerdict,
	}
	full := 0
	for _, stages := range byTrace {
		n := 0
		for _, st := range want {
			if stages[st] {
				n++
			}
		}
		if n == len(want) {
			full++
		}
	}
	if full == 0 {
		t.Fatalf("no sampled record carries all of %v; journeys: %d traces", want, len(byTrace))
	}
	if got := lin.SampledFrames(); got != ranks*slices {
		t.Fatalf("SampledFrames = %d, want %d (every frame at SampleEvery=1)", got, ranks*slices)
	}

	// Snapshot spans: SnapshotEvery=8 with 24 ingested frames must have
	// checkpointed at least once, on a sampled frame's journey.
	anySnapshot := false
	for _, stages := range byTrace {
		if stages[obs.StageSnapshot] {
			anySnapshot = true
		}
	}
	if !anySnapshot {
		t.Fatal("no snapshot span recorded despite SnapshotEvery=8")
	}

	// The acceptance wiring: the exemplar on the server_ingest histogram
	// resolves back to one of the journeys in the flight recorder.
	top, ok := lin.StageHistogram(obs.StageIngest).TopExemplar()
	if !ok || top.Trace == 0 {
		t.Fatal("server_ingest histogram has no exemplar")
	}
	if byTrace[top.Trace] == nil || !byTrace[top.Trace][obs.StageIngest] {
		t.Fatalf("top exemplar trace %#x not resolvable in the flight recorder", top.Trace)
	}
}

func TestLineageDedupAndReopenSpans(t *testing.T) {
	s := NewSharded(2)
	o := obs.New()
	lin := o.EnableLineage(obs.LineageConfig{SampleEvery: 1})
	s.SetObs(o)

	mkFrame := func(rank int, seq uint64, sliceNs int64) []byte {
		recs := []detect.SliceRecord{{Sensor: 0, Rank: rank, SliceNs: sliceNs, Count: 1, AvgNs: 100}}
		return AppendFrame(nil, FrameHeader{
			Rank: rank, Seq: seq, CumRecords: seq, TraceID: lin.TraceID(rank, seq),
		}, recs)
	}
	// Three ranks cover slices 0 and 1 so slice 0 closes behind the
	// watermark.
	for r := 0; r < 3; r++ {
		for sl := int64(0); sl < 2; sl++ {
			if err := s.Receive(mkFrame(r, uint64(sl)+1, sl*1_000_000)); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.InterProcessOutliers(0.9)

	// Duplicate delivery: the retransmitted frame is absorbed, and its
	// journey gains a dedup span with arg=1.
	dupFrame := mkFrame(0, 1, 0)
	if err := s.Receive(dupFrame); err != nil {
		t.Fatal(err)
	}
	dupTrace := TraceOf(dupFrame)
	spans, _ := lin.Snapshot(nil, 0)
	sawDup, sawReopen := false, false
	for _, sp := range spans {
		if sp.Stage == obs.StageDedup && sp.Trace == dupTrace && sp.Arg == 1 {
			sawDup = true
		}
		if sp.Stage == obs.StageEpochReopen {
			sawReopen = true
		}
	}
	if !sawDup {
		t.Fatalf("no dedup(arg=1) span for duplicate trace %#x", dupTrace)
	}
	if sawReopen {
		t.Fatal("reopen span before any late record")
	}

	// A late record for the already-closed slice 0 reopens its epoch; the
	// reopen span is attributed to the late record's own trace.
	late := mkFrame(3, 1, 0)
	if err := s.Receive(late); err != nil {
		t.Fatal(err)
	}
	spans, _ = lin.Snapshot(nil, 0)
	for _, sp := range spans {
		if sp.Stage == obs.StageEpochReopen && sp.Trace == TraceOf(late) {
			sawReopen = true
		}
	}
	if !sawReopen {
		t.Fatalf("no epoch_reopen span for late trace %#x", TraceOf(late))
	}
}

// TestLineageSampledSetShardInvariant pins the sampler's key property at the
// system level: which frames are sampled depends only on (seed, rank, seq),
// never on how the server is sharded.
func TestLineageSampledSetShardInvariant(t *testing.T) {
	const ranks, frames = 16, 32
	sampledSet := func(shards int) map[uint64]bool {
		s := NewSharded(shards)
		o := obs.New()
		lin := o.EnableLineage(obs.LineageConfig{SampleEvery: 4, Seed: 99})
		s.SetObs(o)
		clients := make([]*Client, ranks)
		for r := range clients {
			clients[r] = s.NewClient(r, 1)
		}
		for seq := 0; seq < frames; seq++ {
			for r, c := range clients {
				err := c.OnSlice(detect.SliceRecord{
					Sensor: 0, Rank: r, SliceNs: int64(seq) * 1_000_000, Count: 1, AvgNs: 50,
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		set := make(map[uint64]bool)
		spans, _ := lin.Snapshot(nil, 0)
		for _, sp := range spans {
			if sp.Stage == obs.StageIngest {
				set[sp.Trace] = true
			}
		}
		if len(set) == 0 {
			t.Fatalf("shards=%d sampled nothing", shards)
		}
		return set
	}

	base := sampledSet(1)
	for _, shards := range []int{4, 16} {
		got := sampledSet(shards)
		if len(got) != len(base) {
			t.Fatalf("shards=%d sampled %d traces, shards=1 sampled %d", shards, len(got), len(base))
		}
		for tr := range base {
			if !got[tr] {
				t.Fatalf("shards=%d missing trace %#x sampled at shards=1", shards, tr)
			}
		}
	}
}

// TestWALReplayVSF2 pins two properties of crash recovery under lineage:
// sampled (vSF2) frames journaled to the WAL replay correctly, and replay
// records no spans — the flight recorder describes the process's history,
// not its reconstructed state.
func TestWALReplayVSF2(t *testing.T) {
	const ranks, frames = 3, 4
	s := NewSharded(2)
	s.AttachDurability(DurabilityConfig{})
	o := obs.New()
	lin := o.EnableLineage(obs.LineageConfig{SampleEvery: 1})
	s.SetObs(o)

	for seq := uint64(1); seq <= frames; seq++ {
		for r := 0; r < ranks; r++ {
			recs := []detect.SliceRecord{{
				Sensor: 0, Rank: r, SliceNs: int64(seq-1) * 1_000_000, Count: 1, AvgNs: 100 + float64(r),
			}}
			frame := AppendFrame(nil, FrameHeader{
				Rank: r, Seq: seq, CumRecords: seq, TraceID: lin.TraceID(r, seq),
			}, recs)
			if err := s.Receive(frame); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantRecords := len(s.Records())
	spansBefore := lin.Stats().Spans

	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Records()); got != wantRecords {
		t.Fatalf("recovered %d records, want %d", got, wantRecords)
	}
	if after := lin.Stats().Spans; after != spansBefore {
		t.Fatalf("WAL replay recorded %d spans (replay must be span-silent)", after-spansBefore)
	}

	// Post-recovery ingest resumes span recording, and a duplicate of a
	// replayed frame is still deduplicated (the vSF2 bytes round-tripped
	// through the WAL with their trace intact).
	dup := AppendFrame(nil, FrameHeader{
		Rank: 0, Seq: 1, CumRecords: 1, TraceID: lin.TraceID(0, 1),
	}, []detect.SliceRecord{{Sensor: 0, Rank: 0, SliceNs: 0, Count: 1, AvgNs: 100}})
	if err := s.Receive(dup); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Records()); got != wantRecords {
		t.Fatalf("duplicate re-ingested after recovery: %d records, want %d", got, wantRecords)
	}
	if after := lin.Stats().Spans; after <= spansBefore {
		t.Fatal("post-recovery ingest recorded no spans")
	}
}

// TestLineageOffIngestUnchanged pins that a server without lineage ingests
// vSF2 frames too (a traced client may talk to an untraced server) and that
// nothing records spans.
func TestLineageOffIngestUnchanged(t *testing.T) {
	s := NewSharded(2)
	frame := AppendFrame(nil, FrameHeader{Rank: 0, Seq: 1, CumRecords: 1, TraceID: 0x1234},
		[]detect.SliceRecord{{Sensor: 0, Rank: 0, SliceNs: 0, Count: 1, AvgNs: 10}})
	if err := s.Receive(frame); err != nil {
		t.Fatalf("lineage-off server rejected vSF2: %v", err)
	}
	if got := len(s.Records()); got != 1 {
		t.Fatalf("got %d records, want 1", got)
	}
}

// TestClientNextTraceMatchesFlush pins the TraceSource contract: the trace
// NextTrace predicts before a flush is the trace the wire actually carries.
func TestClientNextTraceMatchesFlush(t *testing.T) {
	s := NewSharded(1)
	o := obs.New()
	lin := o.EnableLineage(obs.LineageConfig{SampleEvery: 2, Seed: 5})
	s.SetObs(o)
	c := s.NewClient(7, 4)
	for seq := uint64(1); seq <= 20; seq++ {
		predicted := c.NextTrace()
		for i := 0; i < 4; i++ {
			if err := c.OnSlice(detect.SliceRecord{
				Sensor: i, Rank: 7, SliceNs: int64(seq), Count: 1, AvgNs: 1,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if want := lin.TraceID(7, seq); predicted != want {
			t.Fatalf("seq %d: NextTrace = %#x, want %#x", seq, predicted, want)
		}
	}
	if lin.SampledFrames() == 0 {
		t.Fatal("no frames sampled at SampleEvery=2")
	}
}

// benchmark sanity: the lineage bench helpers stamp the same set the live
// client would.
func TestBuildBenchFramesTraced(t *testing.T) {
	lin := obs.NewLineage(obs.LineageConfig{})
	frames := buildBenchFramesTraced(512, lin)
	sampled := 0
	for rank := range frames {
		for sl, frame := range frames[rank] {
			want := lin.TraceID(rank, uint64(sl)+1)
			if got := TraceOf(frame); got != want {
				t.Fatalf("rank %d seq %d: TraceOf = %#x, want %#x", rank, sl+1, got, want)
			}
			if want != 0 {
				sampled++
			}
		}
	}
	if sampled == 0 {
		t.Fatalf("no sampled frames in %d", 512*benchFramesPerRank)
	}
}
