package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"vsensor/internal/detect"
)

// The differential conformance property: for ANY randomized scenario —
// rank count, shard count, fault plan (drops, duplicates, bit corruption,
// adversarial frame permutations), concurrent delivery interleaving, and
// mid-stream analysis polls that close (and later reopen) epochs — the
// incremental sharded engine's InterProcessOutliers must equal the
// reference single-threaded batch recompute over the final record log,
// exactly, field for field, bit for bit.
//
// This is the acceptance gate for the epoch-watermark design: closing an
// epoch is only a caching decision, never an approximation.

// conformancePlan is a frame-level fault plan applied by the test harness
// itself (internal/transport would be an import cycle from this package).
type conformancePlan struct {
	drop    float64 // frame never delivered
	dup     float64 // frame delivered twice
	corrupt float64 // a bit-flipped copy is delivered as well
	shuffle bool    // permute global delivery order across ranks
}

// buildConformanceFrames generates each rank's record stream and splits it
// into sequenced frames, returning the encoded frames in per-rank order.
func buildConformanceFrames(rng *rand.Rand, ranks, sensors, slices int) [][]byte {
	var frames [][]byte
	for rank := 0; rank < ranks; rank++ {
		var recs []detect.SliceRecord
		for sl := 0; sl < slices; sl++ {
			for sn := 0; sn < sensors; sn++ {
				if rng.Float64() < 0.15 {
					continue // sensor didn't fire on this rank in this slice
				}
				n := 1
				if rng.Float64() < 0.1 {
					n = 2 // a rank can report the same key twice
				}
				for i := 0; i < n; i++ {
					recs = append(recs, detect.SliceRecord{
						Sensor:  sn,
						Group:   rng.Intn(2),
						Rank:    rank,
						SliceNs: int64(sl) * 1_000_000,
						Count:   int32(1 + rng.Intn(9)),
						AvgNs:   50 + 400*rng.Float64(),
					})
				}
			}
		}
		var seq, cum uint64
		for len(recs) > 0 {
			n := 1 + rng.Intn(4)
			if n > len(recs) {
				n = len(recs)
			}
			seq++
			cum += uint64(n)
			frames = append(frames, AppendFrame(nil, FrameHeader{Rank: rank, Seq: seq, CumRecords: cum}, recs[:n]))
			recs = recs[n:]
		}
	}
	return frames
}

// applyPlan expands the frame list into the delivery schedule the plan
// dictates: dropped frames vanish, duplicated frames appear twice, corrupt
// copies are injected alongside the original, and the whole schedule is
// optionally permuted so frames from one rank arrive interleaved with (and
// reordered against) every other rank's.
func applyPlan(rng *rand.Rand, frames [][]byte, plan conformancePlan) [][]byte {
	var schedule [][]byte
	for _, f := range frames {
		if rng.Float64() < plan.drop {
			continue
		}
		schedule = append(schedule, f)
		if rng.Float64() < plan.dup {
			schedule = append(schedule, f)
		}
		if rng.Float64() < plan.corrupt {
			bad := append([]byte(nil), f...)
			bit := rng.Intn(len(bad) * 8)
			bad[bit/8] ^= 1 << (bit % 8)
			schedule = append(schedule, bad)
		}
	}
	if plan.shuffle {
		rng.Shuffle(len(schedule), func(i, j int) {
			schedule[i], schedule[j] = schedule[j], schedule[i]
		})
	}
	return schedule
}

func outliersEqual(t *testing.T, trial int, got, want []Outlier) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trial %d: incremental found %d outliers, reference %d\n got: %+v\nwant: %+v",
			trial, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("trial %d: outlier %d differs:\n got: %+v\nwant: %+v", trial, i, got[i], want[i])
		}
	}
}

func TestDifferentialConformance(t *testing.T) {
	const trials = 240
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xC0FFEE + int64(trial)*7919))
			ranks := 3 + rng.Intn(14)
			shards := 1 << rng.Intn(5) // 1..16: includes the degenerate single-shard case
			sensors := 1 + rng.Intn(3)
			slices := 2 + rng.Intn(4)
			threshold := []float64{0.7, 0.8, 0.9}[rng.Intn(3)]
			plan := conformancePlan{
				drop:    []float64{0, 0.1, 0.3}[rng.Intn(3)],
				dup:     []float64{0, 0.15}[rng.Intn(2)],
				corrupt: []float64{0, 0.1}[rng.Intn(2)],
				shuffle: rng.Intn(4) != 0,
			}

			frames := buildConformanceFrames(rng, ranks, sensors, slices)
			schedule := applyPlan(rng, frames, plan)
			s := NewSharded(shards)

			// Deliver concurrently from a few senders, with a mid-stream
			// analysis poll racing ingest: the poll advances the watermark
			// machinery, closing epochs that later (reordered) frames must
			// reopen. Corrupted frames are rejected by CRC; both engines
			// therefore see the identical final record set.
			workers := 1 + rng.Intn(4)
			chunk := (len(schedule) + workers - 1) / workers
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if hi > len(schedule) {
					hi = len(schedule)
				}
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(frames [][]byte) {
					defer wg.Done()
					for i, f := range frames {
						_ = s.Receive(f) // corrupt frames error; that's their job
						if i == len(frames)/2 {
							_ = s.InterProcessOutliers(threshold)
						}
					}
				}(schedule[lo:hi])
			}
			wg.Wait()

			// Exercise the threshold-change path on closed epochs too: a
			// poll at a different threshold must not poison later queries.
			if trial%3 == 0 {
				_ = s.InterProcessOutliers(0.95)
			}

			ref := batchOutliers(s.Records(), threshold)
			got := s.InterProcessOutliers(threshold)
			outliersEqual(t, trial, got, ref)

			// Idempotence: a second query (served largely from closed-epoch
			// caches) returns the same answer.
			outliersEqual(t, trial, s.InterProcessOutliers(threshold), ref)
		})
	}
}
