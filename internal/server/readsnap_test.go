package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vsensor/internal/detect"
	"vsensor/internal/obs"
	"vsensor/internal/storage"
)

// wireReadReport wires a server's versioned snapshot into an obs HTTP
// handler the way the facade does: one obs.ReportSnapshot wrapper per
// generation, fully deterministic payloads (no clocks), so two responses at
// the same generation must be byte-identical. Returns the handler and the
// wrapper for building reference renders.
func wireReadReport(s *Server) (http.Handler, func(*ReportSnapshot) *obs.ReportSnapshot) {
	o := obs.New()
	s.SetObs(o)
	var mu sync.Mutex
	var last *obs.ReportSnapshot
	wrap := func(sn *ReportSnapshot) *obs.ReportSnapshot {
		if sn == nil {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		if last != nil && last.Gen == sn.Gen {
			return last
		}
		last = &obs.ReportSnapshot{
			Gen:      sn.Gen,
			Status:   statusPayload(sn),
			Outliers: outlierPayload(sn),
			Records: func(cursor int) (any, int, int, bool) {
				recs, next, base, ok := sn.RecordsWindow(cursor)
				return recs, next, base, ok
			},
		}
		return last
	}
	o.SetReport(
		func() *obs.ReportSnapshot { return wrap(s.Snapshot()) },
		func(after uint64, timeout time.Duration) *obs.ReportSnapshot {
			return wrap(s.WaitSnapshot(after, timeout))
		},
	)
	return o.Handler(), wrap
}

// statusPayload mirrors the facade's /status "run" payload, minus the
// static option fields (which cannot vary by generation anyway).
func statusPayload(sn *ReportSnapshot) map[string]any {
	st := map[string]any{
		"gen":          sn.Gen,
		"ticket":       sn.Ticket,
		"watermark_ns": sn.WatermarkNs,
		"progress":     sn.Progress,
		"per_rank":     sn.PerRank,
		"coverage":     sn.Coverage,
		"per_shard":    sn.PerShard,
		"epochs":       sn.Epochs,
		"liveness":     sn.Liveness,
	}
	if sn.Durability.Enabled {
		st["durability"] = sn.Durability
		st["down"] = sn.Down
	}
	return st
}

func outlierPayload(sn *ReportSnapshot) map[string]any {
	outliers := sn.Report.Outliers
	if outliers == nil {
		outliers = []Outlier{}
	}
	return map[string]any{
		"gen":          sn.Gen,
		"threshold":    sn.Threshold,
		"watermark_ns": sn.WatermarkNs,
		"outliers":     outliers,
		"degraded":     sn.Report.Degraded,
		"confidence":   sn.Report.Confidence,
	}
}

func httpGet(t *testing.T, h http.Handler, path, inm string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// feedFrames delivers a small deterministic workload.
func feedFrames(t *testing.T, s *Server, ranks, perRank int) {
	t.Helper()
	for rank := 0; rank < ranks; rank++ {
		var recs []detect.SliceRecord
		for i := 0; i < perRank; i++ {
			recs = append(recs, snapRecord(rank, i))
		}
		f := AppendFrame(nil, FrameHeader{Rank: rank, Seq: 1, CumRecords: uint64(perRank)}, recs)
		if err := s.Receive(f); err != nil {
			t.Fatalf("receive rank %d: %v", rank, err)
		}
	}
}

// The snapshot cache's contract: generations are monotone, every state
// change invalidates, and an unchanged server serves the identical snapshot
// pointer (a cache hit) forever.
func TestSnapshotInvalidation(t *testing.T) {
	s := NewSharded(4)
	feedFrames(t, s, 3, 4)

	sn1 := s.Snapshot()
	if sn1.Gen == 0 {
		t.Fatalf("first snapshot gen = 0")
	}
	if sn2 := s.Snapshot(); sn2 != sn1 {
		t.Fatalf("unchanged server rebuilt the snapshot (gen %d -> %d)", sn1.Gen, sn2.Gen)
	}

	// A new frame invalidates.
	f := AppendFrame(nil, FrameHeader{Rank: 9, Seq: 1, CumRecords: 1}, []detect.SliceRecord{snapRecord(9, 0)})
	if err := s.Receive(f); err != nil {
		t.Fatal(err)
	}
	sn3 := s.Snapshot()
	if sn3.Gen <= sn1.Gen {
		t.Fatalf("gen did not advance after ingest: %d -> %d", sn1.Gen, sn3.Gen)
	}
	if sn3.Total() != sn1.Total()+1 {
		t.Fatalf("total = %d, want %d", sn3.Total(), sn1.Total()+1)
	}

	// A duplicate frame still invalidates (dup counters are served state).
	if err := s.Receive(f); err != nil {
		t.Fatal(err)
	}
	sn4 := s.Snapshot()
	if sn4.Gen <= sn3.Gen {
		t.Fatalf("gen did not advance after duplicate: %d -> %d", sn3.Gen, sn4.Gen)
	}

	// A heartbeat invalidates (liveness is served state).
	if err := s.Receive(AppendHeartbeat(nil, 1, 5_000_000, 1_000_000)); err != nil {
		t.Fatal(err)
	}
	sn5 := s.Snapshot()
	if sn5.Gen <= sn4.Gen {
		t.Fatalf("gen did not advance after heartbeat: %d -> %d", sn4.Gen, sn5.Gen)
	}

	// Changing the render threshold invalidates.
	s.SetSnapshotThreshold(0.5)
	sn6 := s.Snapshot()
	if sn6.Gen <= sn5.Gen || sn6.Threshold != 0.5 {
		t.Fatalf("threshold change: gen %d -> %d, threshold %v", sn5.Gen, sn6.Gen, sn6.Threshold)
	}

	st := s.SnapshotStats()
	if st.Gen != sn6.Gen || st.Builds < 4 || st.Reads != st.Hits+st.Builds {
		t.Fatalf("stats inconsistent: %+v", st)
	}
}

func TestSnapshotRecordsWindow(t *testing.T) {
	s := NewSharded(2)
	feedFrames(t, s, 4, 8)
	sn := s.Snapshot()
	all := s.Records()
	if sn.Total() != len(all) {
		t.Fatalf("total = %d, want %d", sn.Total(), len(all))
	}
	if got := sn.Records(); !reflect.DeepEqual(got, all) {
		t.Fatalf("snapshot records differ from server log")
	}
	for cursor := 0; cursor <= sn.Total(); cursor++ {
		recs, next, base, ok := sn.RecordsWindow(cursor)
		if !ok || base != 0 || next != sn.Total() {
			t.Fatalf("cursor %d: ok=%v next=%d base=%d", cursor, ok, next, base)
		}
		if !reflect.DeepEqual(recs, all[cursor:]) {
			t.Fatalf("cursor %d: window differs from log suffix", cursor)
		}
	}
	if recs, _, _, ok := sn.RecordsWindow(sn.Total() + 1); ok || len(recs) != 0 {
		t.Fatalf("cursor past end accepted")
	}
	if _, _, _, ok := sn.RecordsWindow(-1); ok {
		t.Fatalf("negative cursor accepted")
	}
}

// The pinned /records regression: before this PR an out-of-range cursor was
// silently clamped, so a client resuming after a crash recovery that lost
// an unsynced WAL tail could not tell its cursor now pointed past the end
// of a shorter log. The snapshot window must reject it and the HTTP layer
// must answer with truncated=true plus the base cursor to restart from.
func TestRecordsWindowAfterRecoveryTruncation(t *testing.T) {
	s := NewSharded(4)
	// A huge SyncEvery means nothing is synced: the crash loses the whole
	// WAL tail and recovery comes back with an empty (shorter) log.
	s.AttachDurability(DurabilityConfig{Disk: storage.NewDisk(storage.Faults{}), SyncEvery: 1 << 20})
	h, _ := wireReadReport(s)
	feedFrames(t, s, 3, 6)
	pre := s.Snapshot()
	if pre.Total() == 0 {
		t.Fatalf("no records before crash")
	}
	cursor := pre.Total() // a fully caught-up client

	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	post := s.Snapshot()
	if post.Gen <= pre.Gen {
		t.Fatalf("gen not monotone across crash/recover: %d -> %d", pre.Gen, post.Gen)
	}
	if post.Total() >= cursor {
		t.Fatalf("recovery kept %d records, expected fewer than %d (unsynced tail should be lost)", post.Total(), cursor)
	}
	if _, _, _, ok := post.RecordsWindow(cursor); ok {
		t.Fatalf("stale cursor %d accepted against total %d", cursor, post.Total())
	}

	rr := httpGet(t, h, fmt.Sprintf("/records?cursor=%d", cursor), "")
	if rr.Code != http.StatusOK {
		t.Fatalf("/records stale cursor: code %d", rr.Code)
	}
	var body struct {
		Cursor    int             `json:"cursor"`
		Base      int             `json:"base"`
		Truncated bool            `json:"truncated"`
		Records   json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !body.Truncated || body.Cursor != 0 || body.Base != 0 || string(body.Records) != "[]" {
		t.Fatalf("truncation response = %+v (records %s)", body, body.Records)
	}
}

func TestWaitSnapshot(t *testing.T) {
	s := NewSharded(2)
	feedFrames(t, s, 2, 2)
	sn := s.Snapshot()

	// Timeout path: nothing changes, WaitSnapshot returns the same gen.
	start := time.Now()
	got := s.WaitSnapshot(sn.Gen, 30*time.Millisecond)
	if got.Gen != sn.Gen {
		t.Fatalf("timeout wait returned gen %d, want %d", got.Gen, sn.Gen)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatalf("wait returned before timeout")
	}

	// Wakeup path: an ingest while parked produces the next generation.
	done := make(chan *ReportSnapshot, 1)
	go func() { done <- s.WaitSnapshot(sn.Gen, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	f := AppendFrame(nil, FrameHeader{Rank: 7, Seq: 1, CumRecords: 1}, []detect.SliceRecord{snapRecord(7, 0)})
	if err := s.Receive(f); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got.Gen <= sn.Gen {
			t.Fatalf("woken wait returned gen %d, want > %d", got.Gen, sn.Gen)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("WaitSnapshot never woke")
	}
}

// normalizeStatus strips the per-request uptime stamp (the one field
// outside the generation contract) and re-marshals; two /status bodies at
// one generation must normalize to identical bytes.
func normalizeStatus(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad /status JSON: %v", err)
	}
	delete(m, "uptime_seconds")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestReadSnapshotConformance is the read-path acceptance gate: for ANY
// randomized scenario — shard count, fault plan, dead ranks, crash/recover
// mid-stream, racing pollers hammering the HTTP surface during ingest —
// every cached response must equal a fresh uncached recompute at the same
// generation, byte for byte, and generations observed by any poller must be
// monotone with no torn reads. Extends PR 4's TestRecordsSnapshotUnderIngest
// to the whole cached read surface.
func TestReadSnapshotConformance(t *testing.T) {
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xBEEF + int64(trial)*9973))
			ranks := 3 + rng.Intn(10)
			shards := 1 << rng.Intn(5)
			sensors := 1 + rng.Intn(3)
			slices := 2 + rng.Intn(4)
			threshold := []float64{0.7, 0.8, 0.9}[rng.Intn(3)]
			durable := trial%3 == 0
			crash := durable && trial%6 == 0
			liveness := trial%4 == 0
			plan := conformancePlan{
				drop:    []float64{0, 0.1}[rng.Intn(2)],
				dup:     []float64{0, 0.15}[rng.Intn(2)],
				corrupt: []float64{0, 0.1}[rng.Intn(2)],
				shuffle: rng.Intn(4) != 0,
			}

			frames := buildConformanceFrames(rng, ranks, sensors, slices)
			schedule := applyPlan(rng, frames, plan)
			if liveness {
				// Every rank heartbeats at the frontier except one, whose
				// stale stamp puts it past the dead threshold — the degraded
				// path the cached report must agree with recompute on.
				deadRank := rng.Intn(ranks)
				const lease = 1_000_000
				for rank := 0; rank < ranks; rank++ {
					stamp := int64(100 * lease)
					if rank == deadRank {
						stamp = 10 * lease
					}
					schedule = append(schedule, AppendHeartbeat(nil, rank, stamp, lease))
				}
				rng.Shuffle(len(schedule), func(i, j int) {
					schedule[i], schedule[j] = schedule[j], schedule[i]
				})
			}

			s := NewSharded(shards)
			if durable {
				s.AttachDurability(DurabilityConfig{Disk: storage.NewDisk(storage.Faults{})})
			}
			s.SetSnapshotThreshold(threshold)
			h, _ := wireReadReport(s)

			// Racing pollers: each walks /status, /outliers, and /records
			// during ingest, asserting monotone generations and gap-free
			// cursors (resetting on an explicit truncation, never silently).
			stop := make(chan struct{})
			var torn atomic.Int32
			var pwg sync.WaitGroup
			pollers := 1 + rng.Intn(3)
			for p := 0; p < pollers; p++ {
				pwg.Add(1)
				go func() {
					defer pwg.Done()
					var lastGen uint64
					cursor, seen := 0, 0
					for {
						select {
						case <-stop:
							return
						default:
						}
						rr := httpGet(t, h, "/status", "")
						var st struct {
							Gen uint64 `json:"gen"`
						}
						if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil || st.Gen < lastGen {
							torn.Add(1)
							return
						}
						lastGen = st.Gen
						rr = httpGet(t, h, fmt.Sprintf("/records?cursor=%d", cursor), "")
						var rb struct {
							Cursor    int               `json:"cursor"`
							Base      int               `json:"base"`
							Truncated bool              `json:"truncated"`
							Records   []json.RawMessage `json:"records"`
						}
						if err := json.Unmarshal(rr.Body.Bytes(), &rb); err != nil {
							torn.Add(1)
							return
						}
						if rb.Truncated {
							cursor, seen = rb.Base, rb.Base
							continue
						}
						// No skip, no dup: the chunk length must bridge
						// exactly from our cursor to the served next cursor.
						if rb.Cursor < cursor || len(rb.Records) != rb.Cursor-cursor {
							torn.Add(1)
							return
						}
						cursor = rb.Cursor
						seen += len(rb.Records)
						httpGet(t, h, "/outliers", "")
					}
				}()
			}

			var wg sync.WaitGroup
			workers := 1 + rng.Intn(3)
			chunk := (len(schedule) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if hi > len(schedule) {
					hi = len(schedule)
				}
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(frames [][]byte) {
					defer wg.Done()
					for i, f := range frames {
						_ = s.Receive(f) // corrupt frames error; down drops are re-sent below
						if i == len(frames)/2 {
							_ = s.Snapshot()
						}
					}
				}(schedule[lo:hi])
			}
			if crash {
				wg.Add(1)
				go func() {
					defer wg.Done()
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					if err := s.Crash(); err != nil {
						t.Error(err)
						return
					}
					_ = s.Snapshot() // exercise the last-known-good path while down
					if _, err := s.Recover(); err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()
			if crash {
				// Frames rejected while down (and any unsynced tail) are
				// re-sent, exactly as real clients would; dedup absorbs the
				// rest, converging on the full schedule applied once.
				for _, f := range schedule {
					_ = s.Receive(f)
				}
			}
			close(stop)
			pwg.Wait()
			if n := torn.Load(); n != 0 {
				t.Fatalf("%d poller(s) observed a torn read or non-monotone generation", n)
			}

			// Quiescent verification: the cached snapshot against fresh
			// uncached recomputes of every surface it serves.
			sn := s.Snapshot()
			outliersEqual(t, trial, sn.Report.Outliers, batchOutliers(s.Records(), threshold))
			outliersEqual(t, trial, sn.Report.Outliers, s.InterProcessOutliers(threshold))
			if !reflect.DeepEqual(sn.Records(), s.Records()) {
				t.Fatalf("trial %d: snapshot records differ from server log", trial)
			}
			if got, want := sn.Progress, s.Progress(); got != want {
				t.Fatalf("trial %d: progress %+v != %+v", trial, got, want)
			}
			if got, want := sn.PerRank, s.PerRankProgress(); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: per-rank progress differs", trial)
			}
			if got, want := sn.Coverage, s.Coverage(); got != want {
				t.Fatalf("trial %d: coverage %+v != %+v", trial, got, want)
			}
			if got, want := sn.PerShard, s.PerShardCoverage(); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: per-shard coverage differs", trial)
			}
			if got, want := sn.Epochs, s.EpochStats(); got != want {
				t.Fatalf("trial %d: epochs %+v != %+v", trial, got, want)
			}
			if got, want := sn.Liveness, s.LivenessSummary(); got != want {
				t.Fatalf("trial %d: liveness %+v != %+v", trial, got, want)
			}
			if !reflect.DeepEqual(sn.Report, s.InterProcessReport(threshold)) {
				t.Fatalf("trial %d: outlier report differs from fresh recompute", trial)
			}

			// Byte identity: two GETs at one generation are identical
			// (modulo the uptime stamp on /status), a conditional GET
			// revalidates with 304, and the served body matches a render
			// built directly from the server-side snapshot.
			st1 := httpGet(t, h, "/status", "")
			st2 := httpGet(t, h, "/status", "")
			if normalizeStatus(t, st1.Body.Bytes()) != normalizeStatus(t, st2.Body.Bytes()) {
				t.Fatalf("trial %d: two /status GETs at one generation differ", trial)
			}
			etag := st1.Header().Get("ETag")
			if etag != fmt.Sprintf("%q", fmt.Sprint(sn.Gen)) {
				t.Fatalf("trial %d: ETag %s, want gen %d", trial, etag, sn.Gen)
			}
			if rr := httpGet(t, h, "/status", etag); rr.Code != http.StatusNotModified || rr.Body.Len() != 0 {
				t.Fatalf("trial %d: revalidation got code %d, body %d bytes", trial, rr.Code, rr.Body.Len())
			}
			o1 := httpGet(t, h, "/outliers", "")
			o2 := httpGet(t, h, "/outliers", "")
			if o1.Body.String() != o2.Body.String() {
				t.Fatalf("trial %d: two /outliers GETs at one generation differ", trial)
			}
			want, err := json.Marshal(outlierPayload(sn))
			if err != nil {
				t.Fatal(err)
			}
			if o1.Body.String() != string(want)+"\n" {
				t.Fatalf("trial %d: /outliers body differs from fresh render\n got: %s\nwant: %s", trial, o1.Body.String(), want)
			}
			r1 := httpGet(t, h, "/records", "")
			r2 := httpGet(t, h, "/records", "")
			if r1.Body.String() != r2.Body.String() {
				t.Fatalf("trial %d: two /records GETs at one generation differ", trial)
			}
			var rb struct {
				Cursor int `json:"cursor"`
				Base   int `json:"base"`
			}
			if err := json.Unmarshal(r1.Body.Bytes(), &rb); err != nil {
				t.Fatal(err)
			}
			if rb.Cursor != sn.Total() || rb.Base != 0 {
				t.Fatalf("trial %d: /records cursor=%d base=%d, want total=%d base=0", trial, rb.Cursor, rb.Base, sn.Total())
			}
		})
	}
}
