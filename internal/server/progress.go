package server

import (
	"sort"

	"vsensor/internal/detect"
)

// RecordsSince returns the slice records received after the given cursor
// along with the new cursor. It lets a reporting loop poll the server while
// a job is still running and update figures incrementally — the paper's
// "the performance report is updated periodically, thus users can notice
// performance variance without waiting for a program to finish" (§2).
func (s *Server) RecordsSince(cursor int) ([]detect.SliceRecord, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(s.records) {
		cursor = len(s.records)
	}
	out := make([]detect.SliceRecord, len(s.records)-cursor)
	copy(out, s.records[cursor:])
	return out, len(s.records)
}

// Progress summarizes how much data the server has seen, for live
// dashboards.
type Progress struct {
	Records  int
	Messages int64
	Bytes    int64
	// LatestSliceNs is the most recent slice start observed; it advances
	// with the job's virtual time.
	LatestSliceNs int64
}

// Progress returns a snapshot of the server's ingest state. All fields are
// maintained incrementally at ingest, so a poll is O(1) regardless of how
// many records have accumulated.
func (s *Server) Progress() Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Progress{
		Records:       len(s.records),
		Messages:      s.messages,
		Bytes:         s.bytesReceived,
		LatestSliceNs: s.latestSliceNs,
	}
}

// RankProgress is one rank's ingest state, for live per-rank dashboards.
type RankProgress struct {
	Rank          int
	Records       int
	LatestSliceNs int64
}

// PerRankProgress returns each rank's incremental ingest state in rank
// order. Like Progress, it reads pre-aggregated state rather than
// rescanning records.
func (s *Server) PerRankProgress() []RankProgress {
	s.mu.Lock()
	out := make([]RankProgress, 0, len(s.perRank))
	for _, rp := range s.perRank {
		out = append(out, *rp)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}
