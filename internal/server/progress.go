package server

import (
	"sort"

	"vsensor/internal/detect"
)

// RecordsSince returns the slice records received after the given cursor
// along with the new cursor. It lets a reporting loop poll the server while
// a job is still running and update figures incrementally — the paper's
// "the performance report is updated periodically, thus users can notice
// performance variance without waiting for a program to finish" (§2).
//
// The cursor counts records in the linearized (ticket-ordered) log. Because
// the snapshot only exposes the contiguous ticket prefix (see
// orderedSegments), the merged log is strictly append-only across polls: a
// frame whose ticket is committed but whose predecessor is still in flight
// stays invisible until the predecessor lands, so a cursor handed back to
// the caller never points past records a later poll would insert before it.
func (s *Server) RecordsSince(cursor int) ([]detect.SliceRecord, int) {
	if cursor < 0 {
		cursor = 0
	}
	segs := s.orderedSegments()
	total := 0
	for _, sg := range segs {
		total += len(sg.recs)
	}
	if cursor > total {
		cursor = total
	}
	out := make([]detect.SliceRecord, 0, total-cursor)
	skip := cursor
	for _, sg := range segs {
		if skip >= len(sg.recs) {
			skip -= len(sg.recs)
			continue
		}
		out = append(out, sg.recs[skip:]...)
		skip = 0
	}
	return out, total
}

// Progress summarizes how much data the server has seen, for live
// dashboards.
type Progress struct {
	Records  int
	Messages int64
	Bytes    int64
	// LatestSliceNs is the most recent slice start observed; it advances
	// with the job's virtual time.
	LatestSliceNs int64
}

// Progress returns a snapshot of the server's ingest state. All fields are
// maintained incrementally at ingest, so a poll touches one counter per
// shard regardless of how many records have accumulated.
func (s *Server) Progress() Progress {
	var p Progress
	for _, sh := range s.shards {
		sh.mu.Lock()
		p.Records += len(sh.records)
		p.Messages += sh.messages
		p.Bytes += sh.bytesReceived
		if sh.latestSliceNs > p.LatestSliceNs {
			p.LatestSliceNs = sh.latestSliceNs
		}
		sh.mu.Unlock()
	}
	return p
}

// RankProgress is one rank's ingest state, for live per-rank dashboards.
type RankProgress struct {
	Rank          int
	Records       int
	LatestSliceNs int64
}

// PerRankProgress returns each rank's incremental ingest state in rank
// order. Like Progress, it reads pre-aggregated per-shard state rather
// than rescanning records.
func (s *Server) PerRankProgress() []RankProgress {
	// Records are routed to shards by the frame header's rank, but progress
	// is keyed by the record payload's rank; a frame carrying records for a
	// different rank would leave entries for one rank in two shards, so
	// merge by rank before sorting.
	merged := make(map[int]RankProgress)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, rp := range sh.perRank {
			m := merged[rp.Rank]
			m.Rank = rp.Rank
			m.Records += rp.Records
			if rp.LatestSliceNs > m.LatestSliceNs {
				m.LatestSliceNs = rp.LatestSliceNs
			}
			merged[rp.Rank] = m
		}
		sh.mu.Unlock()
	}
	out := make([]RankProgress, 0, len(merged))
	for _, m := range merged {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}
