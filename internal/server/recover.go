package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Crash recovery. Crash() models losing the server process: the backing
// disk crashes (dropping or tearing unsynced tails, possibly rotting a
// durable bit) and every in-memory structure is wiped. Recover() rebuilds
// the server purely from what survived on disk: the newest valid snapshot
// plus a replay of every WAL entry past the snapshot's LSN.
//
// The recovery invariant is *strict prefix*: the rebuilt state equals the
// state the server held after some prefix of its acknowledged ingest
// history. Replay stops at the first entry that fails validation — a torn
// tail, a rotten bit, an LSN gap left by a lying fsync — and discards
// everything after it, even segments that are themselves intact, because
// an entry beyond a gap reflects state transitions whose predecessors were
// lost. Clients learn the surviving prefix from the recovered LSN and
// re-send from there; the kill-and-recover conformance test pins that the
// result is byte-equal to a server that never crashed.

// ErrServerDown is returned by Receive between Crash and Recover.
var ErrServerDown = errors.New("server: down (crashed; awaiting recovery)")

// RecoveryStats describes one Recover() run.
type RecoveryStats struct {
	// UsedSnapshot is false on a cold start (no valid snapshot found).
	UsedSnapshot bool
	// SnapshotFallback is true when a snapshot slot existed but failed
	// validation and recovery proceeded from the other (older) slot or a
	// cold start — the bit-rot/lying-fsync path.
	SnapshotFallback bool
	SnapshotGen      uint64
	SnapshotLSN      uint64

	// LSN is the last log sequence number reflected in the recovered state;
	// clients resume re-sending after it. LSNs count delivery outcomes, so
	// with no snapshot LSN == OutcomesReplayed even when coalesced entries
	// cover many outcomes each.
	LSN uint64

	SegmentsScanned    int
	WALEntriesReplayed int
	OutcomesReplayed   int64 // delivery outcomes the replayed entries cover
	FramesReplayed     int   // walKindFrame entries re-ingested
	RecordsRecovered   int64 // records in the rebuilt log (snapshot + replay)
	TruncatedBytes     int64 // WAL bytes discarded at the truncation point
}

// Crash simulates losing the machine: the disk crashes and all in-memory
// state is dropped. The server refuses ingest (ErrServerDown) until
// Recover. Only meaningful with durability attached — a crash without a
// disk would simply be data loss.
func (s *Server) Crash() error {
	d := s.dur
	if d == nil {
		return errors.New("server: Crash without durability attached")
	}
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	s.down.Store(true)
	d.disk.Crash()
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.records = nil
		sh.segments = nil
		sh.flows = make(map[int]*rankFlow)
		sh.perRank = make(map[int]*RankProgress)
		sh.live = make(map[int]*rankLive)
		sh.bytesReceived = 0
		sh.messages = 0
		sh.latestSliceNs = 0
		sh.dupFrames = 0
		sh.expectedRecords = 0
		sh.ingestedRecords = 0
		sh.mu.Unlock()
	}
	s.ticket.Store(0)
	s.checksumErrors.Store(0)
	s.rejectedFrames.Store(0)
	s.expectedRecords.Store(0)
	s.ingestedRecords.Store(0)
	s.heartbeats.Store(0)
	// The analyzer is reset in place, never replaced: queries racing the
	// crash hold references to it.
	s.an.reset()
	d.mu.Lock()
	d.sinceSync = 0
	d.frames = 0
	d.snapDue = false
	// Staged-but-unflushed group-commit entries die with the process: they
	// were acked under the relaxed contract and clients will re-send them.
	d.enc.reset()
	d.mu.Unlock()
	s.bumpReadVersion()
	return nil
}

// Down reports whether the server is between Crash and Recover.
func (s *Server) Down() bool { return s.down.Load() }

// walGen extracts the generation from a "wal.<gen>" segment name.
func walGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal.") {
		return 0, false
	}
	g, err := strconv.ParseUint(name[len("wal."):], 10, 64)
	return g, err == nil
}

// Recover rebuilds the server from the disk: newest valid snapshot, then
// WAL replay of entries past the snapshot's LSN under the strict-prefix
// policy. It finishes by checkpointing the recovered state onto a fresh
// WAL segment, so post-recovery appends never land behind a torn tail.
func (s *Server) Recover() (RecoveryStats, error) {
	d := s.dur
	if d == nil {
		return RecoveryStats{}, errors.New("server: Recover without durability attached")
	}
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	if !s.down.Load() {
		return RecoveryStats{}, errors.New("server: Recover on a server that has not crashed")
	}

	var rs RecoveryStats
	st := loadSnapshot(d, &rs)
	nextLSN := uint64(1)
	maxGen := uint64(0)
	if st != nil {
		if len(st.shards) != len(s.shards) {
			return rs, fmt.Errorf("server: snapshot holds %d shards, server has %d", len(st.shards), len(s.shards))
		}
		s.installSnapshot(st)
		rs.UsedSnapshot = true
		rs.SnapshotGen = st.gen
		rs.SnapshotLSN = st.lsn
		nextLSN = st.lsn + 1
		maxGen = st.gen
	}

	// Replay surviving segments in generation order. maxGen covers every
	// surviving segment — even ones discarded by truncation — so the
	// post-recovery generation never collides with stale files.
	var gens []uint64
	for _, name := range d.disk.List() {
		if g, ok := walGen(name); ok {
			gens = append(gens, g)
			if g > maxGen {
				maxGen = g
			}
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	stopped := false
	for _, g := range gens {
		if stopped {
			break // strict prefix: segments past a truncation are discarded
		}
		data, err := d.disk.ReadFile(walSegmentName(g))
		if err != nil {
			continue
		}
		rs.SegmentsScanned++
		entries, consumed, truncated := scanWAL(data)
		for _, e := range entries {
			span, ok := e.outcomeSpan()
			if !ok {
				// A coalesced entry with a hostile or truncated count field
				// is corruption; truncate here.
				stopped = true
				break
			}
			if e.lsn < nextLSN {
				continue // the snapshot already reflects this entry
			}
			if e.lsn-nextLSN != span-1 {
				// The entry must cover exactly the outcomes [nextLSN,
				// nextLSN+span-1]. Covering later ones is an LSN gap — an
				// earlier segment's tail was acknowledged but lost (lying
				// fsync). Covering earlier ones means a coalesced run
				// straddles the snapshot boundary, which a correct
				// checkpoint never produces (it closes runs first). Either
				// way, everything from here on is beyond the recoverable
				// prefix.
				stopped = true
				break
			}
			if !s.applyWALEntry(e, &rs) {
				stopped = true
				break
			}
			nextLSN = e.lsn + 1
			rs.WALEntriesReplayed++
			rs.OutcomesReplayed += int64(span)
		}
		if truncated {
			rs.TruncatedBytes += int64(len(data) - consumed)
			stopped = true
		}
	}

	// Lost frames can leave permanent gaps in the global arrival-ticket
	// sequence, which orderedSegments would truncate at forever; renumber
	// the surviving segments contiguously (preserving their order).
	s.compactTickets()
	for _, sh := range s.shards {
		sh.mu.Lock()
		rs.RecordsRecovered += int64(len(sh.records))
		sh.obsRecords.Set(float64(len(sh.records)))
		sh.obsFrames.Set(float64(len(sh.segments)))
		sh.mu.Unlock()
	}
	s.setCoverageGauges()
	rs.LSN = nextLSN - 1

	d.mu.Lock()
	d.gen = maxGen
	d.lsn = rs.LSN
	d.sinceSync = 0
	d.frames = 0
	d.snapDue = false
	d.recoveries++
	d.lastRec = rs
	d.mu.Unlock()
	d.obsRecovered.Inc()
	d.obsTruncated.Add(rs.TruncatedBytes)
	d.obsReplayed.Add(int64(rs.FramesReplayed))

	// Seal recovery with a checkpoint: the recovered state becomes the
	// newest snapshot and the WAL rotates to a clean segment.
	if err := s.checkpointLocked(); err != nil {
		return rs, err
	}
	// Delete every pre-seal segment, including the one an ordinary
	// checkpoint would keep as fallback. A truncated recovery leaves a
	// stale suffix in the old segment — entries beyond the truncation
	// point whose LSNs will be reassigned to different frames when clients
	// re-send — and replaying that suffix at the next crash would
	// resurrect state the recovered prefix never contained. The seal
	// snapshot fully covers the recovered state, so nothing is lost; if it
	// later rots, the previous slot's snapshot alone is the (shorter,
	// still valid) prefix.
	for _, g := range gens {
		_ = d.disk.Remove(walSegmentName(g))
	}
	s.down.Store(false)
	s.bumpReadVersion()
	return rs, nil
}

// loadSnapshot reads both snapshot slots and returns the decoded snapshot
// with the highest generation, or nil when neither validates (cold start).
func loadSnapshot(d *durability, rs *RecoveryStats) *snapState {
	var best *snapState
	sawInvalid := false
	for _, name := range []string{"snap.a", "snap.b"} {
		data, err := d.disk.ReadFile(name)
		if err != nil {
			continue // slot never written
		}
		st, derr := decodeSnapshot(data)
		if derr != nil {
			sawInvalid = true // rotten or half-persisted snapshot
			continue
		}
		if best == nil || st.gen > best.gen {
			best = st
		}
	}
	rs.SnapshotFallback = sawInvalid
	return best
}

// installSnapshot replaces the (wiped) in-memory state with the decoded
// snapshot and refolds its records into the reset analyzer.
func (s *Server) installSnapshot(st *snapState) {
	var expected, ingested int64
	for i, sh := range s.shards {
		src := st.shards[i]
		sh.mu.Lock()
		sh.records = src.records
		sh.segments = src.segments
		sh.flows = src.flows
		sh.perRank = src.perRank
		sh.live = src.live
		sh.bytesReceived = src.bytesReceived
		sh.messages = src.messages
		sh.latestSliceNs = src.latestSliceNs
		sh.dupFrames = src.dupFrames
		sh.expectedRecords = src.expectedRecords
		sh.ingestedRecords = src.ingestedRecords
		expected += src.expectedRecords
		ingested += src.ingestedRecords
		recs := sh.records
		sh.mu.Unlock()
		// Fold outside the shard lock: the installed prefix is immutable.
		s.an.fold(recs, 0, false)
	}
	s.ticket.Store(st.ticket)
	s.checksumErrors.Store(st.checksumErrors)
	s.rejectedFrames.Store(st.rejectedFrames)
	s.heartbeats.Store(st.heartbeats)
	s.expectedRecords.Store(expected)
	s.ingestedRecords.Store(ingested)
}

// applyWALEntry replays one log entry onto the recovered state. A false
// return means the entry's body is invalid — recovery treats it like a
// truncation and stops. Replay uses live=false paths throughout: no WAL
// re-logging, no per-frame observability counters.
func (s *Server) applyWALEntry(e walEntry, rs *RecoveryStats) bool {
	switch e.kind {
	case walKindFrame:
		if len(e.body) < 8+frameHeaderSize {
			return false
		}
		ticket := binary.LittleEndian.Uint64(e.body)
		frame := e.body[8:]
		h, err := ParseFrame(frame)
		if err != nil {
			return false
		}
		// A frame entry was only logged for a non-duplicate ingest; seeing a
		// duplicate here means the log contradicts itself.
		if dup, _ := s.ingestFrame(h, frame, ticket, false); dup {
			return false
		}
		rs.FramesReplayed++
		return true
	case walKindDup, walKindDupN:
		// A duplicate frame never advances dedup state (seen implies the
		// flow already covers its seq), so replaying a run of n duplicates
		// is exactly n counter bumps on the rank's shard.
		n := int64(1)
		if len(e.body) < 4 {
			return false
		}
		if e.kind == walKindDupN {
			if len(e.body) < 8 {
				return false
			}
			n = int64(binary.LittleEndian.Uint32(e.body[4:]))
		}
		rank := int(binary.LittleEndian.Uint32(e.body))
		if rank > MaxFrameRank {
			return false
		}
		sh := s.shardFor(rank)
		sh.mu.Lock()
		sh.dupFrames += n
		sh.mu.Unlock()
		return true
	case walKindChecksum:
		s.checksumErrors.Add(1)
		return true
	case walKindReject:
		s.rejectedFrames.Add(1)
		return true
	case walKindChecksumN:
		if len(e.body) < 4 {
			return false
		}
		s.checksumErrors.Add(int64(binary.LittleEndian.Uint32(e.body)))
		return true
	case walKindRejectN:
		if len(e.body) < 4 {
			return false
		}
		s.rejectedFrames.Add(int64(binary.LittleEndian.Uint32(e.body)))
		return true
	case walKindHeartbeat, walKindHeartbeatN:
		// A coalesced heartbeat run stores the fold of its heartbeats under
		// receiveHeartbeat's own newest-now-wins rule, so applying the fold
		// once plus count-1 extra counter bumps equals sequential replay.
		n := int64(1)
		if e.kind == walKindHeartbeatN {
			if len(e.body) < 24 {
				return false
			}
			n = int64(binary.LittleEndian.Uint32(e.body[20:]))
		} else if len(e.body) < 20 {
			return false
		}
		rank := int(binary.LittleEndian.Uint32(e.body))
		nowNs := int64(binary.LittleEndian.Uint64(e.body[4:]))
		leaseNs := int64(binary.LittleEndian.Uint64(e.body[12:]))
		if rank > MaxFrameRank || nowNs < 0 || leaseNs < 0 {
			return false
		}
		_ = s.receiveHeartbeat(rank, nowNs, leaseNs, false)
		if n > 1 {
			s.heartbeats.Add(n - 1)
		}
		return true
	default:
		return false
	}
}

// compactTickets renumbers every surviving segment's arrival ticket
// contiguously from 1, preserving order, and resumes the global counter
// past them. Caller holds the durability stateMu exclusively, so no ingest
// races the renumbering; shard locks still guard each mutation against
// concurrent readers.
func (s *Server) compactTickets() {
	type ref struct {
		sh     *shard
		idx    int
		ticket uint64
	}
	var refs []ref
	for _, sh := range s.shards {
		sh.mu.Lock()
		for i := range sh.segments {
			refs = append(refs, ref{sh, i, sh.segments[i].ticket})
		}
		sh.mu.Unlock()
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].ticket < refs[j].ticket })
	for i, r := range refs {
		if r.ticket != uint64(i)+1 {
			r.sh.mu.Lock()
			r.sh.segments[r.idx].ticket = uint64(i) + 1
			r.sh.mu.Unlock()
		}
	}
	s.ticket.Store(uint64(len(refs)))
}
