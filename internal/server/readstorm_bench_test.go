package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vsensor/internal/detect"
)

// readStormPollInterval is each simulated dashboard client's refresh
// period. Real pollers are clients on a refresh timer, not tight loops;
// 1s is the standard dashboard refresh, and with 10k clients it yields
// ~10k requests/s against the ingest session.
const readStormPollInterval = time.Second

// readStormRounds is how many back-to-back frame batches one benchmark op
// ingests into the same server. A single batch at 4096 ranks clears in
// ~45ms — all cold start, none of the steady state a dashboard fleet
// actually polls against. Chaining rounds (fresh sequences continuing each
// rank's stream) makes one op a session long enough that the cache's
// steady-state behaviour, not server construction, dominates the measure.
const readStormRounds = 8

// readStormWorkers bounds the goroutines driving the storm. Like any load
// generator (wrk, vegeta), the harness multiplexes thousands of logical
// clients — each with its own cached ETag — onto a small worker pool, so
// the benchmark charges ingest for the server-side cost of the request
// rate, not for the generator's own bookkeeping (10k timer goroutines
// would add GC stack-scan and scheduler noise that says nothing about the
// read path under test).
const readStormWorkers = 16

// readStormWorker drives a slice of logical pollers: it round-robins
// through its clients at a spacing that makes each client poll once per
// readStormPollInterval, hitting /outliers and optionally revalidating
// with that client's If-None-Match so an unchanged generation costs a 304
// instead of a body. /outliers is the surface a dashboard fleet actually
// watches — the per-sensor variance verdict — and its render is small and
// shared; /status's per-rank dump (~210 KB at 4096 ranks) is a debug
// surface, not a storm-safe payload. The handler is re-read every poll
// (iterations swap in a fresh server); cached tags reset when it changes.
func readStormWorker(hptr *atomic.Pointer[http.Handler], stop <-chan struct{}, useETag bool, id, clients int) {
	etags := make([]string, clients)
	var lastH http.Handler
	req := httptest.NewRequest("GET", "/outliers", nil)
	gap := readStormPollInterval / time.Duration(clients)
	// Stagger workers so the pool doesn't phase-lock on one tick.
	jitter := time.Duration(id%readStormWorkers) * gap / readStormWorkers
	select {
	case <-stop:
		return
	case <-time.After(jitter):
	}
	tick := time.NewTicker(gap)
	defer tick.Stop()
	for i := 0; ; i = (i + 1) % clients {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		hp := hptr.Load()
		if hp == nil {
			continue
		}
		h := *hp
		if h != lastH {
			lastH = h
			for j := range etags {
				etags[j] = ""
			}
		}
		if useETag && etags[i] != "" {
			req.Header.Set("If-None-Match", etags[i])
		} else {
			req.Header.Del("If-None-Match")
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if useETag {
			if tag := rr.Header().Get("ETag"); tag != "" {
				etags[i] = tag
			}
		}
	}
}

// buildStormRound encodes one round of the storm session: the same shape
// as buildBenchFrames, but round r continues each rank's stream where
// round r-1 left off (sequences, slice timestamps, and cumulative counts
// all advance), so successive rounds are fresh records, not duplicates.
func buildStormRound(ranks, round int) [][][]byte {
	frames := make([][][]byte, ranks)
	recs := make([]detect.SliceRecord, benchSensors)
	base := round * benchFramesPerRank
	for rank := 0; rank < ranks; rank++ {
		perRank := make([][]byte, benchFramesPerRank)
		cum := uint64(base * benchSensors)
		for sl := 0; sl < benchFramesPerRank; sl++ {
			for sn := 0; sn < benchSensors; sn++ {
				avg := 100.0 + float64(sn)
				if rank == 0 {
					avg *= 2 // rank 0 stays the straggler every round
				}
				recs[sn] = detect.SliceRecord{
					Sensor:  sn,
					Rank:    rank,
					SliceNs: int64(base+sl) * 1_000_000,
					Count:   4,
					AvgNs:   avg,
				}
			}
			cum += uint64(len(recs))
			h := FrameHeader{Rank: rank, Seq: uint64(base+sl) + 1, CumRecords: cum}
			perRank[sl] = AppendFrame(nil, h, recs)
		}
		frames[rank] = perRank
	}
	return frames
}

// BenchmarkReadStorm measures what a poller storm costs ingest: the
// streaming session of BenchmarkIngestParallel runs while N dashboard
// clients poll the outlier verdict, with and without conditional
// revalidation. The check.sh gate holds the 10k-poller/etag=on ingest
// throughput at 4096 ranks within READ_MAX_TAX percent of the poller-free
// number — the versioned snapshot cache is what makes that possible
// (every poller at an unchanged generation shares one render and pays a
// 304).
func BenchmarkReadStorm(b *testing.B) {
	type combo struct {
		pollers int
		etag    bool
	}
	combos := []combo{
		{0, false},
		{100, false},
		{100, true},
		{10000, false},
		{10000, true},
	}
	for _, ranks := range benchSizes() {
		rounds := make([][][][]byte, readStormRounds)
		for r := range rounds {
			rounds[r] = buildStormRound(ranks, r)
		}
		records := ranks * benchFramesPerRank * benchSensors * readStormRounds
		for _, c := range combos {
			name := fmt.Sprintf("ranks=%d/pollers=%d/etag=off", ranks, c.pollers)
			if c.etag {
				name = fmt.Sprintf("ranks=%d/pollers=%d/etag=on", ranks, c.pollers)
			}
			b.Run(name, func(b *testing.B) {
				// The storm persists across b.N iterations (restarting it
				// per iteration would dominate setup); each iteration swaps
				// a fresh server+handler under it.
				var hptr atomic.Pointer[http.Handler]
				stop := make(chan struct{})
				var pwg sync.WaitGroup
				workers := readStormWorkers
				if c.pollers < workers {
					workers = c.pollers
				}
				for w := 0; w < workers; w++ {
					clients := c.pollers / workers
					if w < c.pollers%workers {
						clients++
					}
					pwg.Add(1)
					go func(id, clients int) {
						defer pwg.Done()
						readStormWorker(&hptr, stop, c.etag, id, clients)
					}(w, clients)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s := NewSharded(DefaultShards)
					h, _ := wireReadReport(s)
					hptr.Store(&h)
					b.StartTimer()
					for _, frames := range rounds {
						runStreamingSession(b, shardedIngester{s}, frames)
					}
				}
				b.StopTimer()
				close(stop)
				pwg.Wait()
				b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
}
