package server

import (
	"strings"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/obs"
)

func TestNewShardedRounding(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{-3, DefaultShards},
		{0, DefaultShards},
		{1, 1},
		{2, 2},
		{3, 4},
		{5, 8},
		{16, 16},
		{17, 32},
		{MaxShards, MaxShards},
		{MaxShards + 1, MaxShards},
	}
	for _, tt := range tests {
		if got := NewSharded(tt.n).Shards(); got != tt.want {
			t.Errorf("NewSharded(%d).Shards() = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestPerShardCoverageAndEpochStats(t *testing.T) {
	s := NewSharded(4)
	o := obs.New()
	s.SetObs(o)

	recs := []detect.SliceRecord{{Sensor: 1, Rank: 0, SliceNs: 0, Count: 1, AvgNs: 100}}
	var frames int64
	for rank := 0; rank < 8; rank++ {
		recs[0].Rank = rank
		f := AppendFrame(nil, FrameHeader{Rank: rank, Seq: 1, CumRecords: 1}, recs)
		if err := s.Receive(f); err != nil {
			t.Fatal(f, err)
		}
		frames++
		// Redeliver to exercise per-shard dup accounting.
		if err := s.Receive(f); err != nil {
			t.Fatal(err)
		}
	}

	per := s.PerShardCoverage()
	if len(per) != 4 {
		t.Fatalf("PerShardCoverage returned %d shards, want 4", len(per))
	}
	var ranks int
	var gotFrames, gotRecords, dups int64
	for i, sc := range per {
		if sc.Shard != i {
			t.Errorf("shard %d reports Shard=%d", i, sc.Shard)
		}
		ranks += sc.Ranks
		gotFrames += sc.Frames
		gotRecords += sc.Records
		dups += sc.DupFrames
	}
	if ranks != 8 {
		t.Errorf("per-shard flows sum to %d ranks, want 8", ranks)
	}
	// 8 ranks over 4 shards with &mask routing: every shard hosts 2 flows.
	for _, sc := range per {
		if sc.Ranks != 2 {
			t.Errorf("shard %d hosts %d flows, want 2 (uneven spread)", sc.Shard, sc.Ranks)
		}
	}
	if gotFrames != frames {
		t.Errorf("per-shard frames sum to %d, want %d", gotFrames, frames)
	}
	if gotRecords != frames {
		t.Errorf("per-shard records sum to %d, want %d", gotRecords, frames)
	}
	if dups != frames {
		t.Errorf("per-shard dup frames sum to %d, want %d", dups, frames)
	}

	// All 8 records share one (sensor, group, slice) key: one open epoch.
	es := s.EpochStats()
	if es.Open != 1 || es.Closed != 0 {
		t.Errorf("EpochStats = %+v, want {Open:1 Closed:0}", es)
	}

	// The per-shard gauges must be registered and populated.
	var sb strings.Builder
	if err := o.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	dump := sb.String()
	for _, want := range []string{"server_shards", "server_shard_records", "server_shard_frames", "server_epochs_open"} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, dump)
		}
	}
}
