package server

import (
	"sync"
	"sync/atomic"
	"testing"

	"vsensor/internal/detect"
)

// snapRecord derives every field of a record from (rank, i) so a torn read —
// a record whose fields come from two different writes, or a half-visible
// append — is detectable by pure arithmetic on the snapshot.
func snapRecord(rank, i int) detect.SliceRecord {
	return detect.SliceRecord{
		Sensor:  i % 7,
		Group:   rank % 3,
		Rank:    rank,
		SliceNs: int64(rank)*1_000_000 + int64(i),
		Count:   int32(i + 1),
		AvgNs:   float64(rank*1000 + i),
	}
}

func checkSnapRecord(t *testing.T, r detect.SliceRecord) {
	t.Helper()
	rank := r.Rank
	i := int(r.SliceNs - int64(rank)*1_000_000)
	want := snapRecord(rank, i)
	if r != want {
		t.Fatalf("torn read: got %+v, derived reference %+v", r, want)
	}
}

// TestRecordsSnapshotUnderIngest proves Records() and RecordsSince() return
// consistent snapshots while writers are actively ingesting: no torn
// records, the visible log is strictly append-only between polls, and the
// deltas collected via a cursor concatenate to exactly a prefix of the
// final log.
func TestRecordsSnapshotUnderIngest(t *testing.T) {
	const (
		writers       = 8
		framesPerRank = 200
		recordsPerF   = 3
	)
	s := NewSharded(4)

	var wg sync.WaitGroup
	var stop atomic.Bool
	for rank := 0; rank < writers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var seq, cum uint64
			for f := 0; f < framesPerRank; f++ {
				recs := make([]detect.SliceRecord, recordsPerF)
				for j := range recs {
					recs[j] = snapRecord(rank, f*recordsPerF+j)
				}
				seq++
				cum += uint64(len(recs))
				frame := AppendFrame(nil, FrameHeader{Rank: rank, Seq: seq, CumRecords: cum}, recs)
				if err := s.Receive(frame); err != nil {
					t.Errorf("rank %d frame %d: %v", rank, f, err)
					return
				}
			}
		}(rank)
	}

	// Reader 1: full snapshots. Each must be internally consistent and an
	// extension of the previous one (append-only view).
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		prevLen := 0
		for !stop.Load() {
			snap := s.Records()
			if len(snap) < prevLen {
				t.Errorf("snapshot shrank: %d -> %d", prevLen, len(snap))
				return
			}
			for _, r := range snap {
				checkSnapRecord(t, r)
			}
			prevLen = len(snap)
		}
	}()

	// Reader 2: cursor-based deltas, concatenated.
	var collected []detect.SliceRecord
	cursorDone := make(chan struct{})
	go func() {
		defer close(cursorDone)
		cursor := 0
		for !stop.Load() {
			var delta []detect.SliceRecord
			delta, cursor = s.RecordsSince(cursor)
			collected = append(collected, delta...)
		}
	}()

	wg.Wait()
	stop.Store(true)
	<-readerDone
	<-cursorDone

	final := s.Records()
	wantTotal := writers * framesPerRank * recordsPerF
	if len(final) != wantTotal {
		t.Fatalf("final log has %d records, want %d", len(final), wantTotal)
	}
	for _, r := range final {
		checkSnapRecord(t, r)
	}

	// Everything the cursor reader collected must be exactly a prefix of
	// the final log — same records, same order, nothing skipped or doubled.
	if len(collected) > len(final) {
		t.Fatalf("cursor reader collected %d records, final log only has %d", len(collected), len(final))
	}
	for i, r := range collected {
		if r != final[i] {
			t.Fatalf("cursor delta diverges from final log at %d:\n got %+v\nwant %+v", i, r, final[i])
		}
	}

	// Drain the remainder; the concatenation must now equal the whole log.
	delta, _ := s.RecordsSince(len(collected))
	collected = append(collected, delta...)
	if len(collected) != len(final) {
		t.Fatalf("after drain, cursor reader has %d records, want %d", len(collected), len(final))
	}
}
