package server

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"vsensor/internal/detect"
)

// FuzzBatchRoundTrip proves decode(encode(x)) == x: for any record batch and
// header the fuzzer can express, the frame codec must reproduce it exactly.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint64(1), uint64(1), []byte{})
	f.Add(uint32(5), uint64(3), uint64(200),
		[]byte{1, 0, 2, 0, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint32(4194304), uint64(1<<63), uint64(1<<63),
		bytes.Repeat([]byte{0xff}, 72))
	f.Fuzz(func(t *testing.T, rank uint32, seq, cum uint64, raw []byte) {
		// Materialize records from the raw bytes (9 bytes drive one record).
		var recs []detect.SliceRecord
		for off := 0; off+9 <= len(raw) && len(recs) < 256; off += 9 {
			recs = append(recs, detect.SliceRecord{
				Sensor:   int(raw[off]),
				Group:    int(raw[off+1] % 8),
				Rank:     int(raw[off+2]),
				SliceNs:  int64(raw[off+3]) * 1_000_000,
				Count:    int32(raw[off+4]) + 1,
				AvgNs:    float64(binary.LittleEndian.Uint16(raw[off+5:])) / 3,
				AvgInstr: float64(binary.LittleEndian.Uint16(raw[off+7:])),
			})
		}
		h := FrameHeader{
			Rank:       int(rank % (MaxFrameRank + 1)),
			Seq:        seq,
			CumRecords: cum,
		}
		if h.Seq == 0 {
			h.Seq = 1
		}
		if h.CumRecords < uint64(len(recs)) {
			h.CumRecords = uint64(len(recs))
		}
		enc := AppendFrame(nil, h, recs)
		got, decoded, err := decodeFrame(enc)
		if err != nil {
			t.Fatalf("self-encoded frame rejected: %v", err)
		}
		if got.Rank != h.Rank || got.Seq != h.Seq || got.CumRecords != h.CumRecords || got.Count != len(recs) {
			t.Fatalf("header mangled: sent %+v got %+v", h, got)
		}
		if len(decoded) != len(recs) {
			t.Fatalf("decoded %d records, sent %d", len(decoded), len(recs))
		}
		for i := range recs {
			if decoded[i] != recs[i] {
				t.Fatalf("record %d: sent %+v got %+v", i, recs[i], decoded[i])
			}
		}
		// AppendFrame must also compose onto a non-empty buffer.
		prefix := []byte{0xaa, 0xbb}
		composed := AppendFrame(prefix, h, recs)
		if !bytes.Equal(composed[:2], prefix) || !bytes.Equal(composed[2:], enc) {
			t.Fatal("AppendFrame corrupted the destination prefix")
		}
		// The same content must round-trip through the vSF2 lineage
		// extension: derive a nonzero trace from the fuzzed header fields.
		h2 := h
		h2.TraceID = (seq ^ cum) | 1
		enc2 := AppendFrame(nil, h2, recs)
		if len(enc2) != len(enc)+frameTraceSize {
			t.Fatalf("vSF2 frame is %d bytes, vSF1 %d, want delta %d", len(enc2), len(enc), frameTraceSize)
		}
		got2, decoded2, err := decodeFrame(enc2)
		if err != nil {
			t.Fatalf("self-encoded vSF2 frame rejected: %v", err)
		}
		if got2.TraceID != h2.TraceID || got2.Rank != h.Rank || got2.Seq != h.Seq || got2.Count != len(recs) {
			t.Fatalf("vSF2 header mangled: sent %+v got %+v", h2, got2)
		}
		if tr := TraceOf(enc2); tr != h2.TraceID {
			t.Fatalf("TraceOf = %#x, want %#x", tr, h2.TraceID)
		}
		for i := range recs {
			if decoded2[i] != recs[i] {
				t.Fatalf("vSF2 record %d: sent %+v got %+v", i, recs[i], decoded2[i])
			}
		}
	})
}

// FuzzCheckBatch throws arbitrary bytes at the frame parser and the server
// ingest path: they must never panic, never allocate from an unvalidated
// length, and never ingest a frame whose CRC does not cover its bytes.
func FuzzCheckBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x46, 0x53, 0x76}) // magic alone
	valid := AppendFrame(nil, FrameHeader{Rank: 1, Seq: 1, CumRecords: 2},
		[]detect.SliceRecord{
			{Sensor: 1, Rank: 1, SliceNs: 1000, Count: 1, AvgNs: 10},
			{Sensor: 2, Rank: 1, SliceNs: 1000, Count: 1, AvgNs: 20},
		})
	f.Add(valid)
	hostile := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hostile[24:], 0xffffffff) // huge claimed count
	f.Add(hostile)
	trunc := append([]byte(nil), valid[:40]...)
	f.Add(trunc)
	// vSF2 seeds: a valid traced frame, one truncated inside the trace
	// field, and the canonical-encoding trap — a zero trace ID with a
	// recomputed valid CRC, which the parser must reject without a
	// checksum error.
	traced := AppendFrame(nil, FrameHeader{Rank: 2, Seq: 3, CumRecords: 4, TraceID: 0x1122334455667788},
		[]detect.SliceRecord{
			{Sensor: 3, Rank: 2, SliceNs: 2000, Count: 2, AvgNs: 30},
		})
	f.Add(traced)
	f.Add(append([]byte(nil), traced[:36]...))
	zeroTrace := append([]byte(nil), traced...)
	binary.LittleEndian.PutUint64(zeroTrace[frameHeaderSize:], 0)
	crc := crc32.ChecksumIEEE(zeroTrace[:28])
	crc = crc32.Update(crc, crc32.IEEETable, zeroTrace[frameHeaderSize:])
	binary.LittleEndian.PutUint32(zeroTrace[28:], crc)
	f.Add(zeroTrace)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseFrame(data)
		if err == nil {
			// Anything the parser accepts must decode and re-encode to the
			// same bytes — acceptance implies integrity.
			_, recs, derr := decodeFrame(data)
			if derr != nil {
				t.Fatalf("ParseFrame accepted what decodeFrame rejects: %v", derr)
			}
			re := AppendFrame(nil, h, recs)
			if !bytes.Equal(re, data) {
				t.Fatal("accepted frame does not round-trip to identical bytes")
			}
		}
		// The full ingest path must hold the same guarantee under arbitrary
		// input, including dedup/coverage bookkeeping.
		s := New()
		ierr := s.Receive(data)
		if (ierr == nil) != (err == nil) {
			t.Fatalf("Receive and ParseFrame disagree: %v vs %v", ierr, err)
		}
		if err == nil && len(s.Records()) != h.Count {
			t.Fatalf("ingested %d records from a frame claiming %d", len(s.Records()), h.Count)
		}
	})
}
