package server

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// Rank liveness. A large run must keep issuing honest verdicts while some
// ranks are dead or stale: the cross-rank watermark (epoch.go) is the
// minimum progress over every reporting rank, so a single silent rank
// would otherwise pin it forever — epochs never close, the analyzer's open
// set grows without bound, and the final report quietly pretends the rank
// might still show up.
//
// Transport clients carry heartbeat frames stamped with their virtual
// clock and a lease duration (wire format below). The server folds them —
// and every record's slice time — into a per-rank last-seen mark; a rank
// whose lag behind the cluster-wide frontier exceeds its lease is suspect,
// and past deadFactor leases it is dead: excluded from the watermark and
// named in the degraded report. Ranks that never heartbeat (the direct
// in-process path) have no lease and are always considered alive, so
// lease-free runs behave exactly as before.

// LivenessState classifies one rank's lease standing.
type LivenessState uint8

const (
	// Alive: the rank's last-seen mark is within its lease of the frontier
	// (or the rank never negotiated a lease).
	Alive LivenessState = iota
	// Suspect: lag exceeds one lease but not deadFactor leases; still
	// counted into the watermark, flagged in reports.
	Suspect
	// Dead: lag exceeds deadFactor leases; excluded from the watermark and
	// reported as such.
	Dead
)

// deadFactor is how many leases of lag turn a suspect rank dead.
const deadFactor = 3

func (st LivenessState) String() string {
	switch st {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("LivenessState(%d)", uint8(st))
	}
}

// rankLive is the per-rank lease state a shard tracks at ingest: the
// newest heartbeat stamp and the lease it carried. Record ingest advances
// progress separately (RankProgress.LatestSliceNs); liveness queries merge
// both.
type rankLive struct {
	hbNs    int64 // newest heartbeat virtual time
	leaseNs int64 // lease carried by that heartbeat (0 = no lease)
}

// RankLiveness is one rank's liveness snapshot.
type RankLiveness struct {
	Rank       int
	State      LivenessState
	LastSeenNs int64 // newest evidence of life: heartbeat stamp or record slice
	LeaseNs    int64 // 0 when the rank never negotiated a lease
	LagNs      int64 // frontier minus LastSeenNs
}

// livenessView is the merged per-rank state liveness queries and the
// watermark computation share.
type livenessView struct {
	ranks    []RankLiveness
	frontier int64
	// latest maps rank -> latest record slice (the watermark inputs), for
	// ranks that have reported records.
	latest map[int]int64
}

// livenessView sweeps the shards and classifies every known rank against
// the cluster-wide frontier (the newest last-seen mark anywhere).
func (s *Server) livenessView() livenessView {
	type seen struct {
		last    int64
		lease   int64
		records bool
	}
	merged := make(map[int]*seen)
	latest := make(map[int]int64)
	get := func(rank int) *seen {
		sn := merged[rank]
		if sn == nil {
			sn = &seen{}
			merged[rank] = sn
		}
		return sn
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, rp := range sh.perRank {
			sn := get(rp.Rank)
			sn.records = true
			if rp.LatestSliceNs > sn.last {
				sn.last = rp.LatestSliceNs
			}
			// Merge across shards like PerRankProgress: a frame can carry
			// records for a rank other than its header rank, splitting one
			// rank's progress over two shards. A slice of 0 still counts as
			// having reported, so the map entry must exist either way.
			if cur, ok := latest[rp.Rank]; !ok || rp.LatestSliceNs > cur {
				latest[rp.Rank] = rp.LatestSliceNs
			}
		}
		for rank, lv := range sh.live {
			sn := get(rank)
			if lv.hbNs > sn.last {
				sn.last = lv.hbNs
			}
			if lv.leaseNs > sn.lease {
				sn.lease = lv.leaseNs
			}
		}
		sh.mu.Unlock()
	}
	var frontier int64
	for _, sn := range merged {
		if sn.last > frontier {
			frontier = sn.last
		}
	}
	out := make([]RankLiveness, 0, len(merged))
	for rank, sn := range merged {
		rl := RankLiveness{
			Rank:       rank,
			LastSeenNs: sn.last,
			LeaseNs:    sn.lease,
			LagNs:      frontier - sn.last,
		}
		if sn.lease > 0 {
			switch {
			case rl.LagNs > deadFactor*sn.lease:
				rl.State = Dead
			case rl.LagNs > sn.lease:
				rl.State = Suspect
			}
		}
		out = append(out, rl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	var alive, suspect, dead int
	for _, rl := range out {
		switch rl.State {
		case Alive:
			alive++
		case Suspect:
			suspect++
		case Dead:
			dead++
		}
	}
	s.obsAlive.Set(float64(alive))
	s.obsSuspect.Set(float64(suspect))
	s.obsDead.Set(float64(dead))
	return livenessView{ranks: out, frontier: frontier, latest: latest}
}

// Liveness returns every known rank's lease state in rank order.
func (s *Server) Liveness() []RankLiveness {
	return s.livenessView().ranks
}

// LivenessSummary aggregates the lease states for gauges and /status.
type LivenessSummary struct {
	Alive, Suspect, Dead int
	FrontierNs           int64
}

// LivenessSummary counts ranks per state.
func (s *Server) LivenessSummary() LivenessSummary {
	return summarizeLiveness(s.livenessView())
}

// receiveHeartbeat folds one heartbeat frame into the sender's shard and
// journals it when durability is on.
func (s *Server) receiveHeartbeat(rank int, nowNs, leaseNs int64, live bool) error {
	sh := s.shardFor(rank)
	sh.mu.Lock()
	lv := sh.live[rank]
	if lv == nil {
		lv = &rankLive{}
		sh.live[rank] = lv
	}
	// >= so a heartbeat stamped at virtual time 0 still records its lease
	// against the zero-valued fresh entry; among equal stamps the last
	// arrival wins, which replay reproduces exactly.
	if nowNs >= lv.hbNs {
		lv.hbNs = nowNs
		lv.leaseNs = leaseNs
	}
	sh.mu.Unlock()
	s.heartbeats.Add(1)
	if live {
		s.obsHeartbeats.Inc()
		if s.dur != nil {
			if err := s.dur.logHeartbeat(rank, nowNs, leaseNs); err != nil {
				return err
			}
		}
	}
	return nil
}

// Heartbeats returns how many heartbeat frames the server has folded.
func (s *Server) Heartbeats() int64 { return s.heartbeats.Load() }

// ---------- heartbeat wire format ----------

// Heartbeat frame layout (little endian):
//
//	off  0: u32 magic   "vSH1"
//	off  4: u32 rank
//	off  8: u64 nowNs   sender's virtual clock at emission
//	off 16: u64 leaseNs liveness lease the sender promises to renew within
//	off 24: u32 crc     IEEE CRC32 over bytes [0:24)
const (
	heartbeatMagic = 0x76534831 // "vSH1"
	heartbeatSize  = 28
)

// AppendHeartbeat serializes a heartbeat frame onto dst.
func AppendHeartbeat(dst []byte, rank int, nowNs, leaseNs int64) []byte {
	start := len(dst)
	var hdr [heartbeatSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], heartbeatMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(rank))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(nowNs))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(leaseNs))
	binary.LittleEndian.PutUint32(hdr[24:], crc32.ChecksumIEEE(hdr[:24]))
	return append(dst[:start], hdr[:]...)
}

// IsHeartbeat reports whether data begins with the heartbeat magic. The
// record-frame and heartbeat magics differ, so Receive dispatches on this
// before full validation.
func IsHeartbeat(data []byte) bool {
	return len(data) >= 4 && binary.LittleEndian.Uint32(data) == heartbeatMagic
}

// parseHeartbeat validates a heartbeat frame: exact length, bounded rank,
// non-negative stamps, CRC.
func parseHeartbeat(data []byte) (rank int, nowNs, leaseNs int64, err error) {
	if len(data) != heartbeatSize {
		return 0, 0, 0, fmt.Errorf("server: heartbeat length %d, want %d", len(data), heartbeatSize)
	}
	if got, want := binary.LittleEndian.Uint32(data[24:]), crc32.ChecksumIEEE(data[:24]); got != want {
		return 0, 0, 0, fmt.Errorf("%w: heartbeat says %#x, computed %#x", ErrChecksum, got, want)
	}
	r := binary.LittleEndian.Uint32(data[4:])
	if r > MaxFrameRank {
		return 0, 0, 0, fmt.Errorf("server: heartbeat claims rank %d (max %d)", r, MaxFrameRank)
	}
	nowNs = int64(binary.LittleEndian.Uint64(data[8:]))
	leaseNs = int64(binary.LittleEndian.Uint64(data[16:]))
	if nowNs < 0 || leaseNs < 0 {
		return 0, 0, 0, fmt.Errorf("server: heartbeat with negative stamp (now %d, lease %d)", nowNs, leaseNs)
	}
	return int(r), nowNs, leaseNs, nil
}
