package server

import (
	"testing"

	"vsensor/internal/detect"
)

// hb delivers one heartbeat through the public Receive path.
func hb(t *testing.T, s *Server, rank int, nowNs, leaseNs int64) {
	t.Helper()
	if err := s.Receive(AppendHeartbeat(nil, rank, nowNs, leaseNs)); err != nil {
		t.Fatalf("heartbeat rank %d: %v", rank, err)
	}
}

func TestHeartbeatCodec(t *testing.T) {
	f := AppendHeartbeat(nil, 7, 123_456, 5_000_000)
	if len(f) != heartbeatSize {
		t.Fatalf("heartbeat is %d bytes, want %d", len(f), heartbeatSize)
	}
	if !IsHeartbeat(f) {
		t.Fatal("IsHeartbeat rejected a heartbeat")
	}
	rank, now, lease, err := parseHeartbeat(f)
	if err != nil || rank != 7 || now != 123_456 || lease != 5_000_000 {
		t.Fatalf("parse = (%d,%d,%d,%v)", rank, now, lease, err)
	}
	// A record frame must not be mistaken for a heartbeat.
	rec := AppendFrame(nil, FrameHeader{Rank: 1, Seq: 1, CumRecords: 1},
		[]detect.SliceRecord{{Rank: 1, Count: 1, AvgNs: 1}})
	if IsHeartbeat(rec) {
		t.Fatal("record frame classified as heartbeat")
	}
	// Any single flipped bit is caught by the CRC (or the length check).
	for bit := 0; bit < len(f)*8; bit++ {
		bad := append([]byte(nil), f...)
		bad[bit/8] ^= 1 << (bit % 8)
		if !IsHeartbeat(bad) {
			continue // magic broken: dispatched as a record frame instead
		}
		if _, _, _, err := parseHeartbeat(bad); err == nil {
			t.Fatalf("bit %d flip went undetected", bit)
		}
	}
}

func TestHeartbeatRejectCounted(t *testing.T) {
	s := NewSharded(2)
	bad := AppendHeartbeat(nil, 1, 100, 50)
	bad[8] ^= 0x10 // corrupt the stamp; CRC now fails
	if err := s.Receive(bad); err == nil {
		t.Fatal("corrupt heartbeat accepted")
	}
	if got := s.Coverage().RejectedFrames; got != 1 {
		t.Fatalf("rejected frames = %d, want 1", got)
	}
	if got := s.Heartbeats(); got != 0 {
		t.Fatalf("heartbeats = %d, want 0", got)
	}
}

// The lease state machine: lag within one lease is alive, beyond one lease
// suspect, beyond deadFactor leases dead. Ranks without a lease never
// leave Alive no matter the lag.
func TestLivenessStateMachine(t *testing.T) {
	const lease = 1_000_000
	s := NewSharded(4)
	hb(t, s, 0, 0, lease)        // will lag far behind: dead
	hb(t, s, 1, 0, lease)        // will lag a little: suspect
	hb(t, s, 2, 0, 0)            // no lease: always alive
	hb(t, s, 3, 10*lease, lease) // defines the frontier: alive

	// Rank 1 renews late enough to be suspect but not dead.
	hb(t, s, 1, 10*lease-2*lease, lease)

	states := map[int]LivenessState{}
	for _, rl := range s.Liveness() {
		states[rl.Rank] = rl.State
	}
	want := map[int]LivenessState{0: Dead, 1: Suspect, 2: Alive, 3: Alive}
	for rank, st := range want {
		if states[rank] != st {
			t.Errorf("rank %d = %s, want %s", rank, states[rank], st)
		}
	}
	sum := s.LivenessSummary()
	if sum.Alive != 2 || sum.Suspect != 1 || sum.Dead != 1 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.FrontierNs != 10*lease {
		t.Errorf("frontier = %d, want %d", sum.FrontierNs, int64(10*lease))
	}
	if Alive.String() != "alive" || Suspect.String() != "suspect" || Dead.String() != "dead" {
		t.Error("LivenessState strings wrong")
	}
}

// A newer heartbeat's lease wins; a stale (reordered) one must not roll
// the last-seen mark backwards.
func TestHeartbeatMonotonic(t *testing.T) {
	s := NewSharded(1)
	hb(t, s, 0, 5_000, 100)
	hb(t, s, 0, 2_000, 100) // reordered: older stamp arrives later
	rl := s.Liveness()
	if len(rl) != 1 || rl[0].LastSeenNs != 5_000 {
		t.Fatalf("liveness = %+v, want last seen 5000", rl)
	}
	if got := s.Heartbeats(); got != 2 {
		t.Fatalf("heartbeats = %d, want 2 (both folded)", got)
	}
}

// Records are evidence of life too: a rank that streams records without
// ever heartbeating again stays alive via its slice stamps.
func TestRecordsRefreshLiveness(t *testing.T) {
	const lease = 1_000
	s := NewSharded(2)
	hb(t, s, 0, 0, lease)
	hb(t, s, 1, 0, lease)
	// Rank 0 keeps reporting records up to slice 100*lease; rank 1 is silent.
	recs := []detect.SliceRecord{{Rank: 0, SliceNs: 100 * lease, Count: 1, AvgNs: 1}}
	if err := s.Receive(AppendFrame(nil, FrameHeader{Rank: 0, Seq: 1, CumRecords: 1}, recs)); err != nil {
		t.Fatal(err)
	}
	states := map[int]LivenessState{}
	for _, rl := range s.Liveness() {
		states[rl.Rank] = rl.State
	}
	if states[0] != Alive {
		t.Errorf("reporting rank = %s, want alive", states[0])
	}
	if states[1] != Dead {
		t.Errorf("silent rank = %s, want dead", states[1])
	}
}

// The degraded verdict: a permanently dead rank is excluded from the
// watermark — epochs close and the report terminates instead of stalling —
// and the report names the rank with a liveness-discounted confidence.
func TestDegradedReportExcludesDeadRank(t *testing.T) {
	const lease = 1_000_000
	const slice = int64(1_000_000)
	s := NewSharded(4)
	// Ranks 0..3 report slice 0; ranks 0..2 advance far past it with
	// heartbeats and records, rank 3 goes silent after slice 0.
	for rank := 0; rank < 4; rank++ {
		hb(t, s, rank, 0, lease)
		recs := []detect.SliceRecord{{Sensor: 1, Rank: rank, SliceNs: 0, Count: 1, AvgNs: 100}}
		if rank == 0 {
			recs[0].AvgNs = 1000 // the outlier: 10x slower than its peers
		}
		if err := s.Receive(AppendFrame(nil, FrameHeader{Rank: rank, Seq: 1, CumRecords: 1}, recs)); err != nil {
			t.Fatal(err)
		}
	}
	for rank := 0; rank < 3; rank++ {
		hb(t, s, rank, 20*lease, lease)
		recs := []detect.SliceRecord{{Sensor: 1, Rank: rank, SliceNs: 20 * slice, Count: 1, AvgNs: 100}}
		if err := s.Receive(AppendFrame(nil, FrameHeader{Rank: rank, Seq: 2, CumRecords: 2}, recs)); err != nil {
			t.Fatal(err)
		}
	}

	rep := s.InterProcessReport(0.9)
	if !rep.Degraded {
		t.Fatal("report not degraded despite a dead rank")
	}
	if len(rep.DeadRanks) != 1 || rep.DeadRanks[0] != 3 {
		t.Fatalf("dead ranks = %v, want [3]", rep.DeadRanks)
	}
	if rep.LivenessConfidence != 0.75 {
		t.Fatalf("liveness confidence = %g, want 0.75 (3 of 4 ranks)", rep.LivenessConfidence)
	}
	if rep.Confidence >= rep.Coverage.Fraction() {
		t.Fatalf("confidence %g not discounted below coverage %g", rep.Confidence, rep.Coverage.Fraction())
	}
	// With rank 3 excluded, the watermark is the live ranks' minimum
	// (20*slice), which is past slice 0: the slice-0 epoch closed and the
	// outlier verdict was issued — the run terminated instead of stalling.
	found := false
	for _, o := range rep.Outliers {
		if o.Rank == 0 && o.SliceNs == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("slice-0 outlier not reported (epoch stalled?): %+v", rep.Outliers)
	}
}

// Without leases the watermark includes every reporting rank — one silent
// rank pins it and the early epoch stays open (pre-liveness behavior).
func TestNoLeaseRankPinsWatermark(t *testing.T) {
	s := NewSharded(4)
	for rank := 0; rank < 4; rank++ {
		recs := []detect.SliceRecord{{Sensor: 1, Rank: rank, SliceNs: 0, Count: 1, AvgNs: 100}}
		if err := s.Receive(AppendFrame(nil, FrameHeader{Rank: rank, Seq: 1, CumRecords: 1}, recs)); err != nil {
			t.Fatal(err)
		}
	}
	for rank := 0; rank < 3; rank++ {
		recs := []detect.SliceRecord{{Sensor: 1, Rank: rank, SliceNs: 20_000_000, Count: 1, AvgNs: 100}}
		if err := s.Receive(AppendFrame(nil, FrameHeader{Rank: rank, Seq: 2, CumRecords: 2}, recs)); err != nil {
			t.Fatal(err)
		}
	}
	rep := s.InterProcessReport(0.9)
	if rep.Degraded || len(rep.DeadRanks) != 0 {
		t.Fatalf("lease-free run degraded: %+v", rep)
	}
	if rep.LivenessConfidence != 1 || rep.Confidence != rep.Coverage.Fraction() {
		t.Fatalf("lease-free confidence discounted: %+v", rep)
	}
	if st := s.EpochStats(); st.Open == 0 {
		t.Fatal("silent lease-free rank did not pin the watermark (epoch closed early)")
	}
}
