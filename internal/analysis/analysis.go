package analysis

import (
	"vsensor/internal/callgraph"
	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

// Snippet is a v-sensor candidate: a loop or a call occurring inside some
// function (paper §3.1: "only loops and function calls are considered as
// v-sensor candidates").
type Snippet struct {
	// Loop is non-nil for loop snippets; CallSite for call snippets.
	Loop *ir.Loop
	Call *ir.CallSite

	Func *ir.Function
	Pos  minic.Pos
	Type ir.SnippetType

	// Deps are the workload dependencies after resolving sources internal
	// to the snippet itself: the remaining LoopVars refer to enclosing
	// loops, and Param/Global/Rank/Extern defer outward.
	Deps SourceSet

	// SensorOf lists the enclosing loops (innermost first, within the
	// containing function) for which this snippet is a v-sensor.
	SensorOf []*ir.Loop

	// FuncScope reports that the snippet is a sensor w.r.t. every enclosing
	// loop in its function, making it exportable across call sites.
	FuncScope bool

	// Global reports the snippet is a v-sensor for the whole program: its
	// workload is invariant on every call path from the entry function
	// (paper §4 "global v-sensors" — the ones selected for instrumentation).
	Global bool

	// ProcessFixed reports the workload does not depend on the process
	// rank, enabling inter-process comparison (paper §3.4).
	ProcessFixed bool

	// Depth is the snippet's loop depth: for loops, the loop's own depth;
	// for calls, the depth of the innermost enclosing loop plus one.
	// Outermost loops have depth 0 (paper §4 granularity rule).
	Depth int
}

// EnclosingLoops returns the loops enclosing the snippet within its
// function, innermost first. For a loop snippet this starts at its parent.
func (s *Snippet) EnclosingLoops() []*ir.Loop {
	if s.Loop != nil {
		return s.Loop.Ancestors()
	}
	return s.Call.Ancestors()
}

// ID returns a unique snippet identifier ("L<loopID>" or "C<callID>").
func (s *Snippet) ID() string {
	if s.Loop != nil {
		return "L" + itoa(s.Loop.ID)
	}
	return "C" + itoa(s.Call.ID)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// FuncSummary is the bottom-up analysis result for one function
// (the information propagated from callees to callers, Fig. 7).
type FuncSummary struct {
	Fn *ir.Function

	// WorkDeps are the sources that determine the function's total
	// workload when called once, over {Const, Param, Global, Rank, Extern}.
	WorkDeps SourceSet

	// ReturnDeps are the sources of the returned value.
	ReturnDeps SourceSet

	// WritesGlobals maps each global the function (transitively) assigns
	// to the sources of the values written.
	WritesGlobals map[string]SourceSet

	// HasNet / HasIO report whether the function (transitively) performs
	// network / IO operations; used for snippet typing.
	HasNet bool
	HasIO  bool

	// Snippets are all candidates found in the function body.
	Snippets []*Snippet

	// Exported are the FuncScope snippets, whose Deps contain no LoopVar.
	Exported []*Snippet
}

// Result is the whole-program identification result.
type Result struct {
	Prog  *ir.Program
	Graph *callgraph.Graph
	Funcs map[string]*FuncSummary

	// Snippets is every candidate in the program (Table 1 "Number of
	// snippets" counts these).
	Snippets []*Snippet

	// Sensors is every snippet that is a v-sensor of at least one loop
	// (Table 1 "Number of v-sensors" counts these).
	Sensors []*Snippet

	// GlobalSensors are the whole-program sensors eligible for
	// instrumentation (before the §4 selection rules are applied).
	GlobalSensors []*Snippet

	// MutatedGlobals are globals assigned anywhere in the program.
	MutatedGlobals map[string]bool
}

// Config controls identification.
type Config struct {
	// Entry is the program entry function. Default "main".
	Entry string

	// UseStaticRules additionally requires extern static-rule arguments
	// (e.g. communication peer) to be invariant (paper §3.1: "network
	// destination ... can be used in static rules"). More strict rules
	// produce fewer v-sensors.
	UseStaticRules bool
}

// Analyze runs whole-program v-sensor identification with default config.
func Analyze(p *ir.Program) *Result { return AnalyzeWith(p, Config{}) }

// AnalyzeWith runs whole-program v-sensor identification.
func AnalyzeWith(p *ir.Program, cfg Config) *Result {
	if cfg.Entry == "" {
		cfg.Entry = "main"
	}
	g := callgraph.Build(p)
	res := &Result{
		Prog:           p,
		Graph:          g,
		Funcs:          make(map[string]*FuncSummary),
		MutatedGlobals: mutatedGlobals(p),
	}
	a := &analyzer{prog: p, cfg: cfg, res: res}
	// Bottom-up: callee summaries exist before callers are analyzed
	// (paper §3.5: topological order over the preprocessed call graph).
	for _, name := range g.Order {
		a.analyzeFunction(p.Funcs[name])
	}
	a.markGlobalSensors()
	a.collect()
	return res
}

// mutatedGlobals scans the whole program for assignments to globals.
func mutatedGlobals(p *ir.Program) map[string]bool {
	out := make(map[string]bool)
	for _, f := range p.Funcs {
		locals := make(map[string]bool)
		for _, prm := range f.Decl.Params {
			locals[prm.Name] = true
		}
		minic.WalkStmts(f.Decl.Body, func(s minic.Stmt) {
			switch st := s.(type) {
			case *minic.VarDecl:
				locals[st.Name] = true
			case *minic.AssignStmt:
				var name string
				switch tgt := st.Target.(type) {
				case *minic.Ident:
					name = tgt.Name
				case *minic.IndexExpr:
					name = tgt.Array.Name
				}
				if name != "" && !locals[name] {
					if _, isGlobal := p.Globals[name]; isGlobal {
						out[name] = true
					}
				}
			}
		})
	}
	return out
}
