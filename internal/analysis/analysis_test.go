package analysis

import (
	"testing"

	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := ir.Build(minic.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(prog)
}

// snippetAt finds the snippet for the loop whose induction variable is name
// within function fn (first match in source order).
func loopSnippet(t *testing.T, res *Result, fn, indvar string) *Snippet {
	t.Helper()
	for _, s := range res.Funcs[fn].Snippets {
		if s.Loop != nil && s.Loop.IndVar == indvar {
			return s
		}
	}
	t.Fatalf("no loop snippet with indvar %q in %s", indvar, fn)
	return nil
}

// callSnippets returns the call snippets for the given callee in fn,
// in source order.
func callSnippets(res *Result, fn, callee string) []*Snippet {
	var out []*Snippet
	for _, s := range res.Funcs[fn].Snippets {
		if s.Call != nil && s.Call.Callee == callee {
			out = append(out, s)
		}
	}
	return out
}

func sensorOfIndvar(s *Snippet, indvar string) bool {
	for _, l := range s.SensorOf {
		if l.IndVar == indvar {
			return true
		}
	}
	return false
}

// The paper's Figure 6: intra-procedural analysis. Inside loop Ln, L1 has
// constant bounds (sensor), L2's bound is n (not a sensor), L3 contains a
// branch on n (not a sensor).
func TestFigure6IntraProcedural(t *testing.T) {
	res := analyze(t, `
func main() {
    int count = 0;
    for (int n = 0; n < 100; n++) {
        for (int k = 0; k < 10; k++) {
            count++;
        }
        for (int k2 = 0; k2 < n; k2++) {
            count++;
        }
        for (int k3 = 0; k3 < 10; k3++) {
            if (k3 < n) {
                count++;
            }
        }
    }
}`)
	l1 := loopSnippet(t, res, "main", "k")
	if !sensorOfIndvar(l1, "n") {
		t.Errorf("L1 (fixed bounds) should be sensor of Ln; deps=%s", l1.Deps)
	}
	l2 := loopSnippet(t, res, "main", "k2")
	if sensorOfIndvar(l2, "n") {
		t.Errorf("L2 (bound n) must not be sensor of Ln; deps=%s", l2.Deps)
	}
	l3 := loopSnippet(t, res, "main", "k3")
	if sensorOfIndvar(l3, "n") {
		t.Errorf("L3 (branch on n) must not be sensor of Ln; deps=%s", l3.Deps)
	}
	if !l1.Global {
		t.Errorf("L1 should be a global sensor; deps=%s", l1.Deps)
	}
}

// The paper's Figures 4 and 8: inter-procedural analysis. foo's workload
// depends on its first argument and global GLBV. Call-1 foo(n,k) is a
// sensor of Loop-2 (k varies, but k does not affect foo's workload) and not
// of Loop-1 (n varies). Call-2 foo(k,n) is a sensor of neither. Loop-5
// (constant inner loop of foo) is a global sensor; Loop-4 is not.
func TestFigure4And8InterProcedural(t *testing.T) {
	res := analyze(t, `
global int GLBV = 40;

func foo(int x, int y) int {
    int value = 0;
    for (int i = 0; i < x; i++) {
        value += y;
        for (int j = 0; j < 10; j++) {
            value -= 1;
        }
    }
    if (x > GLBV) {
        value -= x * y;
    }
    return value;
}

func main() {
    int count = 0;
    for (int n = 0; n < 100; n++) {
        for (int k = 0; k < 10; k++) {
            foo(n, k);
            foo(k, n);
        }
        for (int k2 = 0; k2 < 10; k2++) {
            count++;
        }
        mpi_barrier();
    }
}`)
	// foo's workload deps: param x (index 0) and global GLBV, not y.
	foo := res.Funcs["foo"]
	if !foo.WorkDeps.Has(Param(0)) {
		t.Errorf("foo work deps missing param(0): %s", foo.WorkDeps)
	}
	if foo.WorkDeps.Has(Param(1)) {
		t.Errorf("foo work deps must not include param(1) (y): %s", foo.WorkDeps)
	}
	if !foo.WorkDeps.Has(GlobalSrc("GLBV")) {
		t.Errorf("foo work deps missing GLBV: %s", foo.WorkDeps)
	}

	calls := callSnippets(res, "main", "foo")
	if len(calls) != 2 {
		t.Fatalf("foo calls = %d", len(calls))
	}
	c1, c2 := calls[0], calls[1] // foo(n,k), foo(k,n)
	if !sensorOfIndvar(c1, "k") {
		t.Errorf("Call-1 foo(n,k) should be sensor of Loop-2; deps=%s", c1.Deps)
	}
	if sensorOfIndvar(c1, "n") {
		t.Errorf("Call-1 foo(n,k) must not be sensor of Loop-1; deps=%s", c1.Deps)
	}
	if sensorOfIndvar(c2, "k") || sensorOfIndvar(c2, "n") {
		t.Errorf("Call-2 foo(k,n) must not be a sensor of either loop; deps=%s", c2.Deps)
	}

	// Loop-5 (j-loop in foo): constant workload, sensor everywhere.
	l5 := loopSnippet(t, res, "foo", "j")
	if !l5.FuncScope || !l5.Global {
		t.Errorf("Loop-5 should be a global sensor: funcScope=%v global=%v deps=%s", l5.FuncScope, l5.Global, l5.Deps)
	}
	// Loop-4 (i-loop in foo): workload depends on x; x varies at both call
	// sites across main's loops, so not a global sensor.
	l4 := loopSnippet(t, res, "foo", "i")
	if !l4.FuncScope {
		t.Errorf("Loop-4 is function-scope within foo (x fixed during one call): %s", l4.Deps)
	}
	if l4.Global {
		t.Errorf("Loop-4 must not be a global sensor; deps=%s", l4.Deps)
	}

	// The barrier call: constant workload, global Network sensor.
	bar := callSnippets(res, "main", "mpi_barrier")[0]
	if !bar.Global || bar.Type != ir.Network {
		t.Errorf("barrier: global=%v type=%v", bar.Global, bar.Type)
	}

	// Loop-3 (k2 loop in main): global sensor.
	l3 := loopSnippet(t, res, "main", "k2")
	if !l3.Global {
		t.Errorf("count loop should be global sensor; deps=%s", l3.Deps)
	}
	// Loop-2 (k loop in main): contains foo(n,·), whose work varies with n.
	l2 := loopSnippet(t, res, "main", "k")
	if sensorOfIndvar(l2, "n") || l2.Global {
		t.Errorf("Loop-2 must not be sensor of Loop-1; deps=%s", l2.Deps)
	}
}

// The paper's Figure 9: multi-process analysis. A loop whose workload
// depends on the process rank is iteration-fixed but not process-fixed.
func TestFigure9RankDependence(t *testing.T) {
	res := analyze(t, `
func main() {
    int rank = mpi_comm_rank();
    int count = 0;
    for (int n = 0; n < 100; n++) {
        for (int k = 0; k < 10; k++) {
            count++;
        }
        for (int k2 = 0; k2 < 10; k2++) {
            if (rank % 2 == 1) {
                count++;
            }
        }
    }
}`)
	l1 := loopSnippet(t, res, "main", "k")
	if !l1.Global || !l1.ProcessFixed {
		t.Errorf("L1: global=%v processFixed=%v deps=%s", l1.Global, l1.ProcessFixed, l1.Deps)
	}
	l2 := loopSnippet(t, res, "main", "k2")
	if !sensorOfIndvar(l2, "n") {
		t.Errorf("L2 is iteration-fixed for a given rank; deps=%s", l2.Deps)
	}
	if l2.ProcessFixed {
		t.Errorf("L2 depends on rank, must not be process-fixed; deps=%s", l2.Deps)
	}
}

// Never-fixed externals poison snippets (paper §3.5): print and unknown
// functions prevent sensor status.
func TestExternPoison(t *testing.T) {
	res := analyze(t, `
func main() {
    for (int n = 0; n < 10; n++) {
        for (int k = 0; k < 5; k++) {
            print("hi");
        }
        for (int k2 = 0; k2 < 5; k2++) {
            some_unknown_extern();
        }
        for (int k3 = 0; k3 < 5; k3++) {
            flops(100);
        }
    }
}`)
	if s := loopSnippet(t, res, "main", "k"); len(s.SensorOf) != 0 {
		t.Errorf("loop containing print should never be a sensor; deps=%s", s.Deps)
	}
	if s := loopSnippet(t, res, "main", "k2"); len(s.SensorOf) != 0 {
		t.Errorf("loop containing unknown extern should never be a sensor; deps=%s", s.Deps)
	}
	if s := loopSnippet(t, res, "main", "k3"); !s.Global {
		t.Errorf("flops loop should be a global sensor; deps=%s", s.Deps)
	}
}

// Recursive functions are removed from the call graph and treated as
// never-fixed (paper Fig. 10).
func TestRecursionNeverFixed(t *testing.T) {
	res := analyze(t, `
func fact(int n) int {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
func main() {
    for (int i = 0; i < 10; i++) {
        for (int k = 0; k < 3; k++) {
            fact(5);
        }
    }
}`)
	if !res.Funcs["fact"].WorkDeps.Has(ExternSrc) {
		t.Errorf("fact should be never-fixed: %s", res.Funcs["fact"].WorkDeps)
	}
	call := callSnippets(res, "main", "fact")[0]
	if len(call.SensorOf) != 0 || call.Global {
		t.Errorf("call to recursive fn must not be a sensor; deps=%s", call.Deps)
	}
	k := loopSnippet(t, res, "main", "k")
	if len(k.SensorOf) != 0 {
		t.Errorf("loop containing recursive call must not be a sensor; deps=%s", k.Deps)
	}
}

// Network sensor: message size fixed -> sensor; message size varying with
// the loop -> not (paper §3.1 network rule).
func TestNetworkMessageSizeRule(t *testing.T) {
	res := analyze(t, `
func main() {
    int rank = mpi_comm_rank();
    int peer = 1 - rank % 2 + rank - rank % 2;
    for (int i = 0; i < 100; i++) {
        mpi_send(peer, 4096);
        mpi_send(peer, i * 64);
    }
}`)
	sends := callSnippets(res, "main", "mpi_send")
	if len(sends) != 2 {
		t.Fatalf("sends = %d", len(sends))
	}
	if !sensorOfIndvar(sends[0], "i") || sends[0].Type != ir.Network {
		t.Errorf("fixed-size send should be Network sensor; deps=%s", sends[0].Deps)
	}
	if sensorOfIndvar(sends[1], "i") {
		t.Errorf("varying-size send must not be sensor; deps=%s", sends[1].Deps)
	}
	// Default rules ignore the destination; the peer depending on rank does
	// not block sensor status, but with static rules enabled it clears
	// process-fixedness.
	if !sends[0].ProcessFixed {
		t.Errorf("without static rules the peer is not a workload dep; deps=%s", sends[0].Deps)
	}
}

// With static rules enabled, the communication peer becomes a workload
// factor (paper §3.1, Fig. 5: stricter static rules produce fewer sensors).
func TestStaticRulesPeer(t *testing.T) {
	src := `
func main() {
    int rank = mpi_comm_rank();
    for (int i = 0; i < 100; i++) {
        mpi_send(rank + 1, 4096);
    }
}`
	prog, err := ir.Build(minic.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	def := AnalyzeWith(prog, Config{})
	strict := AnalyzeWith(prog, Config{UseStaticRules: true})
	dSend := callSnippets(def, "main", "mpi_send")[0]
	sSend := callSnippets(strict, "main", "mpi_send")[0]
	if !dSend.ProcessFixed {
		t.Errorf("default rules: peer ignored, should be process-fixed; deps=%s", dSend.Deps)
	}
	if sSend.ProcessFixed {
		t.Errorf("static rules: rank-dependent peer must clear process-fixed; deps=%s", sSend.Deps)
	}
}

// Accumulator pattern: a variable carried across iterations makes dependent
// snippets non-sensors, while a freshly re-initialized variable does not.
func TestAccumulatorVsReinit(t *testing.T) {
	res := analyze(t, `
func main() {
    int acc = 0;
    for (int n = 0; n < 100; n++) {
        int fresh = 7;
        for (int a = 0; a < acc; a++) {
            flops(1);
        }
        for (int b = 0; b < fresh; b++) {
            flops(1);
        }
        acc += 1;
    }
}`)
	if s := loopSnippet(t, res, "main", "a"); sensorOfIndvar(s, "n") {
		t.Errorf("accumulator-bounded loop must not be sensor of n; deps=%s", s.Deps)
	}
	if s := loopSnippet(t, res, "main", "b"); !sensorOfIndvar(s, "n") {
		t.Errorf("fresh-bounded loop should be sensor of n; deps=%s", s.Deps)
	}
}

// Globals mutated inside a loop make dependent snippets variant in that
// loop; read-only globals are fine.
func TestMutatedGlobalBlocks(t *testing.T) {
	res := analyze(t, `
global int RO = 8;
global int RW = 8;

func main() {
    for (int n = 0; n < 100; n++) {
        for (int a = 0; a < RO; a++) {
            flops(1);
        }
        for (int b = 0; b < RW; b++) {
            flops(1);
        }
        RW += 1;
    }
}`)
	if !res.MutatedGlobals["RW"] || res.MutatedGlobals["RO"] {
		t.Fatalf("mutated globals = %v", res.MutatedGlobals)
	}
	if s := loopSnippet(t, res, "main", "a"); !s.Global {
		t.Errorf("read-only-global loop should be global sensor; deps=%s", s.Deps)
	}
	if s := loopSnippet(t, res, "main", "b"); sensorOfIndvar(s, "n") || s.Global {
		t.Errorf("mutated-global loop must not be sensor; deps=%s", s.Deps)
	}
}

// A while loop whose condition variable is driven by constants is a sensor;
// one driven by received data is not.
func TestWhileLoops(t *testing.T) {
	res := analyze(t, `
func main() {
    for (int n = 0; n < 10; n++) {
        int x = 100;
        while (x > 0) {
            x -= 1;
            flops(10);
        }
        int y = mpi_recv(0, 1);
        while (y > 0) {
            y -= 1;
            flops(10);
        }
    }
}`)
	var whiles []*Snippet
	for _, s := range res.Funcs["main"].Snippets {
		if s.Loop != nil && s.Loop.IndVar == "" {
			whiles = append(whiles, s)
		}
	}
	if len(whiles) != 2 {
		t.Fatalf("while snippets = %d", len(whiles))
	}
	if !sensorOfIndvar(whiles[0], "n") {
		t.Errorf("constant-driven while should be sensor of n; deps=%s", whiles[0].Deps)
	}
	if sensorOfIndvar(whiles[1], "n") {
		t.Errorf("recv-driven while must not be sensor of n; deps=%s", whiles[1].Deps)
	}
}

// Early exits: a break bounded by a parameter propagates that dependence to
// the loop's trip count.
func TestBreakAffectsTrip(t *testing.T) {
	res := analyze(t, `
func work(int limit) {
    for (int i = 0; i < 1000; i++) {
        if (i >= limit) {
            break;
        }
        flops(5);
    }
}
func main() {
    for (int n = 0; n < 10; n++) {
        work(n);
        work(64);
    }
}`)
	calls := callSnippets(res, "main", "work")
	if sensorOfIndvar(calls[0], "n") {
		t.Errorf("work(n) must not be sensor (break bound varies); deps=%s", calls[0].Deps)
	}
	if !sensorOfIndvar(calls[1], "n") {
		t.Errorf("work(64) should be sensor; deps=%s", calls[1].Deps)
	}
}

// Triangular loop nests have fixed total workload.
func TestTriangularNestFixed(t *testing.T) {
	res := analyze(t, `
func main() {
    for (int n = 0; n < 10; n++) {
        for (int i = 0; i < 20; i++) {
            for (int j = 0; j < i; j++) {
                flops(1);
            }
        }
    }
}`)
	i := loopSnippet(t, res, "main", "i")
	if !sensorOfIndvar(i, "n") || !i.Global {
		t.Errorf("triangular nest (i) should be global sensor; deps=%s", i.Deps)
	}
	j := loopSnippet(t, res, "main", "j")
	if sensorOfIndvar(j, "i") {
		t.Errorf("inner triangular loop must not be sensor of i; deps=%s", j.Deps)
	}
	if !sensorOfIndvar(j, "n") {
		// j is not a sensor of i, so it cannot be a sensor of n either
		// (the chain stops at the first variant loop). This documents the
		// outward-chain rule.
		t.Logf("inner loop correctly blocked at i: %v", j.SensorOf)
	}
}

// Counts: every loop and call is a candidate snippet.
func TestSnippetCounts(t *testing.T) {
	res := analyze(t, `
func f(int x) { flops(x); }
func main() {
    for (int i = 0; i < 4; i++) {
        f(3);
        mpi_barrier();
    }
    while (1 < 2) {
        break;
    }
}`)
	// Loops: i-loop, while. Calls: f, flops (inside f), mpi_barrier.
	if len(res.Snippets) != 5 {
		t.Errorf("snippets = %d, want 5", len(res.Snippets))
	}
	if len(res.Sensors) == 0 || len(res.GlobalSensors) == 0 {
		t.Errorf("sensors=%d global=%d", len(res.Sensors), len(res.GlobalSensors))
	}
}
