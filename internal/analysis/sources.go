// Package analysis implements v-sensor identification (paper §3): snippet
// enumeration, dependency propagation over abstract value sources,
// intra-procedural loop-variance analysis, inter-procedural propagation
// through call sites over a bottom-up call-graph traversal, and
// multi-process (rank-dependence) analysis.
package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// SourceKind classifies an abstract value source.
type SourceKind int

// Source kinds. A value abstracted to {Const} only is a compile-time
// constant; Param and Global defer judgement to call sites; Rank marks
// process identity (paper §3.4); Extern marks never-fixed provenance
// (paper §3.5); LoopVar marks dependence on a loop's iteration state.
const (
	SrcConst SourceKind = iota
	SrcParam
	SrcGlobal
	SrcRank
	SrcExtern
	SrcLoopVar
)

// Source is one abstract provenance item.
type Source struct {
	Kind SourceKind
	Idx  int    // parameter index (SrcParam) or loop ID (SrcLoopVar)
	Name string // global name (SrcGlobal)
}

// String renders the source for diagnostics.
func (s Source) String() string {
	switch s.Kind {
	case SrcConst:
		return "const"
	case SrcParam:
		return fmt.Sprintf("param(%d)", s.Idx)
	case SrcGlobal:
		return "global(" + s.Name + ")"
	case SrcRank:
		return "rank"
	case SrcExtern:
		return "extern"
	case SrcLoopVar:
		return fmt.Sprintf("loop(%d)", s.Idx)
	}
	return "?"
}

// Param returns a parameter source.
func Param(i int) Source { return Source{Kind: SrcParam, Idx: i} }

// GlobalSrc returns a global-variable source.
func GlobalSrc(name string) Source { return Source{Kind: SrcGlobal, Name: name} }

// LoopVar returns a loop-iteration source for the loop with the given ID.
func LoopVar(loopID int) Source { return Source{Kind: SrcLoopVar, Idx: loopID} }

// Singleton sources.
var (
	ConstSrc  = Source{Kind: SrcConst}
	RankSrc   = Source{Kind: SrcRank}
	ExternSrc = Source{Kind: SrcExtern}
)

// SourceSet is a set of abstract sources. The zero value is the empty set;
// all operations are non-mutating unless named otherwise.
type SourceSet struct {
	m map[Source]bool
}

// NewSet returns a set of the given sources.
func NewSet(srcs ...Source) SourceSet {
	s := SourceSet{m: make(map[Source]bool, len(srcs))}
	for _, x := range srcs {
		s.m[x] = true
	}
	return s
}

// Has reports membership.
func (s SourceSet) Has(x Source) bool { return s.m[x] }

// HasKind reports whether any member has the given kind.
func (s SourceSet) HasKind(k SourceKind) bool {
	for x := range s.m {
		if x.Kind == k {
			return true
		}
	}
	return false
}

// Len returns the cardinality.
func (s SourceSet) Len() int { return len(s.m) }

// Union returns s ∪ t.
func (s SourceSet) Union(t SourceSet) SourceSet {
	if len(t.m) == 0 {
		return s
	}
	if len(s.m) == 0 {
		return t
	}
	u := SourceSet{m: make(map[Source]bool, len(s.m)+len(t.m))}
	for x := range s.m {
		u.m[x] = true
	}
	for x := range t.m {
		u.m[x] = true
	}
	return u
}

// Add returns s ∪ {x}.
func (s SourceSet) Add(x Source) SourceSet {
	if s.m[x] {
		return s
	}
	u := SourceSet{m: make(map[Source]bool, len(s.m)+1)}
	for y := range s.m {
		u.m[y] = true
	}
	u.m[x] = true
	return u
}

// Without returns s with every source satisfying drop removed.
func (s SourceSet) Without(drop func(Source) bool) SourceSet {
	u := SourceSet{m: make(map[Source]bool, len(s.m))}
	for x := range s.m {
		if !drop(x) {
			u.m[x] = true
		}
	}
	return u
}

// Equal reports set equality.
func (s SourceSet) Equal(t SourceSet) bool {
	if len(s.m) != len(t.m) {
		return false
	}
	for x := range s.m {
		if !t.m[x] {
			return false
		}
	}
	return true
}

// Sorted returns the members in a deterministic order.
func (s SourceSet) Sorted() []Source {
	out := make([]Source, 0, len(s.m))
	for x := range s.m {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Idx != b.Idx {
			return a.Idx < b.Idx
		}
		return a.Name < b.Name
	})
	return out
}

// String renders the set deterministically, e.g. "{param(0), global(G)}".
func (s SourceSet) String() string {
	parts := make([]string, 0, len(s.m))
	for _, x := range s.Sorted() {
		parts = append(parts, x.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Globals returns the names of all global sources in the set.
func (s SourceSet) Globals() []string {
	var out []string
	for x := range s.m {
		if x.Kind == SrcGlobal {
			out = append(out, x.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Params returns the indices of all parameter sources in the set.
func (s SourceSet) Params() []int {
	var out []int
	for x := range s.m {
		if x.Kind == SrcParam {
			out = append(out, x.Idx)
		}
	}
	sort.Ints(out)
	return out
}

// LoopIDs returns the IDs of all loop-variable sources in the set.
func (s SourceSet) LoopIDs() []int {
	var out []int
	for x := range s.m {
		if x.Kind == SrcLoopVar {
			out = append(out, x.Idx)
		}
	}
	sort.Ints(out)
	return out
}
