package analysis

import (
	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

// analyzer holds whole-program analysis state.
type analyzer struct {
	prog *ir.Program
	cfg  Config
	res  *Result

	// argSources[callID] are the resolved source sets of each argument at
	// that call site (LoopVars restricted to loops enclosing the site).
	argSources map[int][]SourceSet
}

// loopInfo accumulates per-loop analysis state during a function walk.
type loopInfo struct {
	loop *ir.Loop

	// trip is the source set of the loop's trip count: init/cond/post
	// sources excluding the induction variable itself. For while loops it
	// is the entry condition sources plus the sources of every assignment
	// to a condition variable in the body, minus the loop's own LoopVar.
	trip SourceSet

	// items are direct workload contributions from the loop's body region
	// (branch conditions, extern work arguments, call workload deps), not
	// including child loops.
	items SourceSet

	// deps is the loop's resolved snippet dependency set, set at pop time.
	deps SourceSet

	children []*loopInfo

	// globalWrites are globals assigned within the body (directly or via
	// callees), including nested loops after propagation at pop.
	globalWrites map[string]bool

	// ctlBase is the control-stack depth at loop entry, used to attribute
	// break/continue/return conditions to this loop's trip count.
	ctlBase int

	// tripReady reports that trip is final and may be substituted for this
	// loop's LoopVar during resolution. For-loop trips are ready as soon as
	// the header is analyzed; while-loop trips only at pop.
	tripReady bool

	// whileCondVars / whileAssigns support while-loop trip inference: the
	// variables read by the condition and the sources of every assignment
	// to them within the body.
	whileCondVars map[string]bool
	whileAssigns  SourceSet

	hasNet, hasIO bool
}

// funcWalker performs the intra-procedural dependence walk for a function.
type funcWalker struct {
	a  *analyzer
	fn *ir.Function

	env map[string]SourceSet // locals and parameters

	root      *loopInfo // virtual top-level region (loop == nil)
	loopStack []*loopInfo
	loopInfos map[int]*loopInfo // by loop ID, this function only

	control []SourceSet // if-condition stack (for break/continue/return)

	returnDeps    SourceSet
	writesGlobals map[string]SourceSet

	snippets []*Snippet
}

func (a *analyzer) analyzeFunction(fn *ir.Function) {
	w := &funcWalker{
		a:             a,
		fn:            fn,
		env:           make(map[string]SourceSet),
		root:          &loopInfo{globalWrites: make(map[string]bool)},
		loopInfos:     make(map[int]*loopInfo),
		writesGlobals: make(map[string]SourceSet),
	}
	if a.argSources == nil {
		a.argSources = make(map[int][]SourceSet)
	}
	for i, p := range fn.Decl.Params {
		w.env[p.Name] = NewSet(Param(i))
	}
	w.loopStack = []*loopInfo{w.root}
	w.walkBlock(fn.Decl.Body)

	sum := &FuncSummary{
		Fn:            fn,
		WritesGlobals: w.writesGlobals,
		HasNet:        w.root.hasNet,
		HasIO:         w.root.hasIO,
		Snippets:      w.snippets,
	}
	// The function's total workload: everything the top-level region and
	// its loops contribute, with every LoopVar resolved away.
	work := w.root.items
	for _, c := range w.root.children {
		work = work.Union(c.deps)
	}
	sum.WorkDeps = w.resolveFor(nil, work)
	if a.res.Graph.Recursive[fn.Name] {
		// Recursion was cut out of the call graph; treat the function's
		// workload as never-fixed (paper §3.5).
		sum.WorkDeps = sum.WorkDeps.Add(ExternSrc)
	}
	sum.ReturnDeps = w.returnDeps
	if sum.ReturnDeps.Len() == 0 {
		sum.ReturnDeps = NewSet(ConstSrc)
	}
	for _, s := range w.snippets {
		w.classifySensorOf(s)
		if s.FuncScope {
			sum.Exported = append(sum.Exported, s)
		}
	}
	a.res.Funcs[fn.Name] = sum
}

// ---------- statement walk ----------

func (w *funcWalker) cur() *loopInfo { return w.loopStack[len(w.loopStack)-1] }

func (w *funcWalker) walkBlock(b *minic.BlockStmt) {
	declared := make([]string, 0, 4)
	for _, s := range b.Stmts {
		if d, ok := s.(*minic.VarDecl); ok {
			declared = append(declared, d.Name)
		}
		w.walkStmt(s)
	}
	// Block scoping: names declared here do not escape.
	for _, name := range declared {
		delete(w.env, name)
	}
}

func (w *funcWalker) walkStmt(s minic.Stmt) {
	switch st := s.(type) {
	case nil:
	case *minic.BlockStmt:
		w.walkBlock(st)
	case *minic.VarDecl:
		src := NewSet(ConstSrc)
		if st.Init != nil {
			src = w.exprSources(st.Init)
		}
		if st.Len != nil {
			// Array contents start zeroed; the length itself is not a
			// content source.
			w.exprSources(st.Len) // still visit for call effects
			src = NewSet(ConstSrc)
		}
		w.env[st.Name] = src
	case *minic.AssignStmt:
		w.walkAssign(st)
	case *minic.IfStmt:
		w.walkIf(st)
	case *minic.ForStmt:
		w.walkFor(st)
	case *minic.WhileStmt:
		w.walkWhile(st)
	case *minic.ReturnStmt:
		var v SourceSet
		if st.Value != nil {
			v = w.exprSources(st.Value)
		} else {
			v = NewSet(ConstSrc)
		}
		ctl := w.controlUnion(0)
		w.returnDeps = w.returnDeps.Union(w.resolveFor(nil, v.Union(ctl)))
		// An early return changes the trip count of every enclosing loop.
		for _, li := range w.loopStack[1:] {
			li.trip = li.trip.Union(w.resolveForLoop(li, w.controlUnion(li.ctlBase)))
		}
	case *minic.BreakStmt, *minic.ContinueStmt:
		if len(w.loopStack) > 1 {
			li := w.cur()
			li.trip = li.trip.Union(w.resolveForLoop(li, w.controlUnion(li.ctlBase)))
		}
	case *minic.ExprStmt:
		w.exprSources(st.X)
	}
}

// controlUnion unions the control-condition sources from stack depth base.
func (w *funcWalker) controlUnion(base int) SourceSet {
	var u SourceSet
	for _, c := range w.control[base:] {
		u = u.Union(c)
	}
	return u
}

func (w *funcWalker) walkAssign(st *minic.AssignStmt) {
	val := w.exprSources(st.Value)
	switch tgt := st.Target.(type) {
	case *minic.Ident:
		if _, isLocal := w.env[tgt.Name]; isLocal {
			w.env[tgt.Name] = val
			w.noteWhileCondAssign(tgt.Name, val)
			return
		}
		if _, isGlobal := w.a.prog.Globals[tgt.Name]; isGlobal {
			w.recordGlobalWrite(tgt.Name, val)
			return
		}
		// Assignment to an undeclared name: create it (function scope).
		w.env[tgt.Name] = val
	case *minic.IndexExpr:
		idx := w.exprSources(tgt.Index)
		name := tgt.Array.Name
		if cur, isLocal := w.env[name]; isLocal {
			// Weak update: the array keeps its old sources too.
			w.env[name] = cur.Union(val).Union(idx)
			w.noteWhileCondAssign(name, val)
			return
		}
		if _, isGlobal := w.a.prog.Globals[name]; isGlobal {
			w.recordGlobalWrite(name, val.Union(idx))
		}
	}
}

func (w *funcWalker) recordGlobalWrite(name string, val SourceSet) {
	ctl := w.controlUnion(0)
	w.writesGlobals[name] = w.writesGlobals[name].Union(w.resolveFor(nil, val.Union(ctl)))
	for _, li := range w.loopStack {
		li.globalWrites[name] = true
	}
}

func (w *funcWalker) walkIf(st *minic.IfStmt) {
	cond := w.exprSources(st.Cond)
	// A branch changes the executed instruction sequence, so its condition
	// is workload-relevant for the enclosing snippet (paper §3.1).
	li := w.cur()
	li.items = li.items.Union(w.resolveForLoop(li, cond))

	pre := copyEnv(w.env)
	w.control = append(w.control, cond)
	w.walkStmt(st.Then)
	thenEnv := w.env
	w.env = copyEnv(pre)
	if st.Else != nil {
		w.walkStmt(st.Else)
	}
	elseEnv := w.env
	w.control = w.control[:len(w.control)-1]

	// Merge: any variable assigned in either branch may differ depending
	// on which branch ran, so it additionally depends on the condition.
	// (Source sets cannot distinguish two different constants, so this is
	// keyed on assignment, not on set difference.)
	assigned := make(map[string]bool)
	assignTargets(st.Then, assigned)
	assignTargets(st.Else, assigned)
	merged := make(map[string]SourceSet, len(pre))
	for name := range pre {
		m := thenEnv[name].Union(elseEnv[name])
		if assigned[name] {
			m = m.Union(cond)
		}
		merged[name] = m
	}
	w.env = merged
}

// assignTargets collects the names assigned anywhere in a statement
// (including nested loops and branches), ignoring declarations.
func assignTargets(s minic.Stmt, out map[string]bool) {
	minic.WalkStmts(s, func(x minic.Stmt) {
		if as, ok := x.(*minic.AssignStmt); ok {
			switch tgt := as.Target.(type) {
			case *minic.Ident:
				out[tgt.Name] = true
			case *minic.IndexExpr:
				out[tgt.Array.Name] = true
			}
		}
	})
}

func (w *funcWalker) pushLoop(l *ir.Loop) *loopInfo {
	li := &loopInfo{
		loop:         l,
		globalWrites: make(map[string]bool),
		ctlBase:      len(w.control),
	}
	w.loopInfos[l.ID] = li
	parent := w.cur()
	parent.children = append(parent.children, li)
	w.loopStack = append(w.loopStack, li)
	return li
}

func (w *funcWalker) popLoop() *loopInfo {
	li := w.cur()
	w.loopStack = w.loopStack[:len(w.loopStack)-1]
	parent := w.cur()
	for g := range li.globalWrites {
		parent.globalWrites[g] = true
	}
	if li.hasNet {
		parent.hasNet = true
	}
	if li.hasIO {
		parent.hasIO = true
	}
	return li
}

// injectLoopVariance adds LoopVar(l) to every live variable assigned
// somewhere in the loop body: at the start of an arbitrary iteration such a
// variable may hold an iteration-dependent value. Variables freshly
// re-assigned from invariant sources each iteration lose the marker at
// their assignment, which is what makes the inner-reinit pattern
// (for k=0; ... ) invariant, matching the paper's Figure 6.
func (w *funcWalker) injectLoopVariance(l *ir.Loop, body minic.Stmt, post minic.Stmt) {
	assigned := make(map[string]bool)
	assignTargets(body, assigned)
	assignTargets(post, assigned)
	for name := range assigned {
		if cur, ok := w.env[name]; ok {
			w.env[name] = cur.Add(LoopVar(l.ID))
		}
	}
}

func (w *funcWalker) walkFor(st *minic.ForStmt) {
	l := w.a.prog.LoopOf(st.LoopID)

	// The init clause runs once in the parent context.
	w.walkStmt(st.Init)
	li := w.pushLoop(l)

	var initVal SourceSet
	if l.IndVar != "" {
		initVal = w.env[l.IndVar]
	}

	pre := copyEnv(w.env)
	w.injectLoopVariance(l, st.Body, st.Post)

	// Header sources, with the induction variable excluded so that a loop
	// like for(k=0;k<10;k++) has a constant trip count.
	if l.IndVar != "" {
		w.env[l.IndVar] = SourceSet{}
	}
	trip := initVal
	if st.Cond != nil {
		trip = trip.Union(w.exprSources(st.Cond))
	} else {
		// No condition: termination depends on breaks, handled as they
		// are encountered; an empty condition alone is unbounded.
		trip = trip.Add(ExternSrc)
	}
	if post, ok := st.Post.(*minic.AssignStmt); ok {
		trip = trip.Union(w.exprSources(post.Value))
	}
	li.trip = w.resolveForLoop(li, trip)
	li.tripReady = true

	if l.IndVar != "" {
		w.env[l.IndVar] = NewSet(LoopVar(l.ID))
	}
	w.walkBlock(st.Body)
	w.popLoop()

	// Zero-trip merge: after the loop each variable may hold its pre-loop
	// value or any body value.
	for name, preSrc := range pre {
		if cur, ok := w.env[name]; ok {
			w.env[name] = cur.Union(preSrc)
		} else {
			w.env[name] = preSrc
		}
	}
	// The induction variable's final value is determined by the bounds.
	if l.IndVar != "" {
		w.env[l.IndVar] = li.trip
	}

	w.finishLoopSnippet(l, li)
}

func (w *funcWalker) walkWhile(st *minic.WhileStmt) {
	l := w.a.prog.LoopOf(st.LoopID)
	li := w.pushLoop(l)

	condVars := identNames(st.Cond)
	li.whileCondVars = condVars

	entryCond := w.exprSources(st.Cond)

	pre := copyEnv(w.env)
	w.injectLoopVariance(l, st.Body, nil)
	w.walkBlock(st.Body)
	w.popLoop()

	// Trip count: the entry condition sources plus everything assigned to
	// condition variables in the body, minus this loop's own variance
	// marker (self-iteration is what a trip count is).
	self := LoopVar(l.ID)
	trip := entryCond.Union(li.whileAssigns).Without(func(s Source) bool { return s == self })
	li.trip = li.trip.Union(w.resolveForLoop(li, trip))
	li.tripReady = true

	for name, preSrc := range pre {
		if cur, ok := w.env[name]; ok {
			w.env[name] = cur.Union(preSrc)
		} else {
			w.env[name] = preSrc
		}
	}
	w.finishLoopSnippet(l, li)
}

// noteWhileCondAssign records assignments to while-condition variables so
// the enclosing while loop's trip sources can include them.
func (w *funcWalker) noteWhileCondAssign(name string, val SourceSet) {
	for _, li := range w.loopStack[1:] {
		if li.whileCondVars != nil && li.whileCondVars[name] {
			li.whileAssigns = li.whileAssigns.Union(val)
		}
	}
}

// identNames collects the identifier names read by an expression.
func identNames(e minic.Expr) map[string]bool {
	out := make(map[string]bool)
	minic.WalkExprs(e, func(x minic.Expr) {
		if id, ok := x.(*minic.Ident); ok {
			out[id.Name] = true
		}
	})
	return out
}

// finishLoopSnippet computes the loop's resolved deps and records it as a
// candidate snippet.
func (w *funcWalker) finishLoopSnippet(l *ir.Loop, li *loopInfo) {
	// Break/return conditions referencing this loop's own iteration state
	// fold into the trip count through their feeding sources, which the
	// trip set already contains; the self marker itself is dropped.
	self := LoopVar(l.ID)
	li.trip = li.trip.Without(func(s Source) bool { return s == self })

	d := li.trip.Union(li.items)
	for _, c := range li.children {
		d = d.Union(c.deps)
	}
	li.deps = w.resolveFor(l.Ancestors(), d)

	typ := ir.Computation
	if li.hasNet {
		typ = ir.Network
	} else if li.hasIO {
		typ = ir.IO
	}
	w.snippets = append(w.snippets, &Snippet{
		Loop: l,
		Func: w.fn,
		Pos:  l.Pos,
		Type: typ,
		Deps: li.deps,
	})
}
