package analysis

import (
	"testing"

	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

// Branch-merged values: a variable assigned differently in two branches of
// a rank-dependent condition carries the rank dependence afterwards.
func TestBranchMergeAddsCondSources(t *testing.T) {
	res := analyze(t, `
func main() {
    int rank = mpi_comm_rank();
    int n = 10;
    if (rank % 2 == 0) {
        n = 20;
    }
    for (int outer = 0; outer < 5; outer++) {
        for (int i = 0; i < n; i++) {
            flops(10);
        }
    }
}`)
	s := loopSnippet(t, res, "main", "i")
	if s.ProcessFixed {
		t.Errorf("bound n is rank-dependent after merge; deps=%s", s.Deps)
	}
	if !sensorOfIndvar(s, "outer") {
		t.Errorf("n is fixed over outer iterations; deps=%s", s.Deps)
	}
}

// A variable NOT assigned in either branch keeps its sources.
func TestBranchMergeUnassignedUnaffected(t *testing.T) {
	res := analyze(t, `
func main() {
    int rank = mpi_comm_rank();
    int n = 10;
    int unused = 0;
    if (rank % 2 == 0) {
        unused = 1;
    }
    for (int outer = 0; outer < 5; outer++) {
        for (int i = 0; i < n; i++) {
            flops(10);
        }
    }
}`)
	s := loopSnippet(t, res, "main", "i")
	if !s.ProcessFixed || !s.Global {
		t.Errorf("n untouched by branch; deps=%s", s.Deps)
	}
}

// Array dependence: a loop bounded by an array element whose contents were
// filled from received data is not a sensor.
func TestArrayTaint(t *testing.T) {
	res := analyze(t, `
func main() {
    int sizes[4];
    sizes[0] = 16;
    for (int outer = 0; outer < 10; outer++) {
        for (int a = 0; a < sizes[0]; a++) {
            flops(10);
        }
    }
    int dyn[4];
    dyn[1] = mpi_recv(0, 8);
    for (int outer2 = 0; outer2 < 10; outer2++) {
        for (int b = 0; b < dyn[1]; b++) {
            flops(10);
        }
    }
}`)
	a := loopSnippet(t, res, "main", "a")
	if !sensorOfIndvar(a, "outer") {
		t.Errorf("const-filled array bound should be fixed; deps=%s", a.Deps)
	}
	b := loopSnippet(t, res, "main", "b")
	if sensorOfIndvar(b, "outer2") {
		t.Errorf("recv-filled array bound must not be fixed; deps=%s", b.Deps)
	}
}

// Globals written by a callee make global-dependent snippets variant.
func TestGlobalWriteThroughCall(t *testing.T) {
	res := analyze(t, `
global int G = 10;

func bump() {
    G = G + 1;
}

func main() {
    for (int outer = 0; outer < 10; outer++) {
        for (int i = 0; i < G; i++) {
            flops(10);
        }
        bump();
    }
}`)
	s := loopSnippet(t, res, "main", "i")
	if sensorOfIndvar(s, "outer") {
		t.Errorf("G is bumped via call each iteration; deps=%s", s.Deps)
	}
	if !res.MutatedGlobals["G"] {
		t.Error("G should be marked mutated")
	}
}

// Function return values propagate their dependence: a bound computed by a
// pure function of a constant is fixed; of the rank, process-variant.
func TestReturnValuePropagation(t *testing.T) {
	res := analyze(t, `
func double(int x) int {
    return x * 2;
}

func main() {
    int rank = mpi_comm_rank();
    int c = double(8);
    int r = double(rank);
    for (int outer = 0; outer < 10; outer++) {
        for (int i = 0; i < c; i++) {
            flops(5);
        }
        for (int j = 0; j < r; j++) {
            flops(5);
        }
    }
}`)
	ci := loopSnippet(t, res, "main", "i")
	if !ci.Global || !ci.ProcessFixed {
		t.Errorf("double(8) bound is const; deps=%s", ci.Deps)
	}
	rj := loopSnippet(t, res, "main", "j")
	if rj.ProcessFixed {
		t.Errorf("double(rank) bound is rank-dependent; deps=%s", rj.Deps)
	}
	if !sensorOfIndvar(rj, "outer") {
		t.Errorf("rank is iteration-invariant; deps=%s", rj.Deps)
	}
}

// A loop whose bound comes from an earlier sibling loop's accumulation
// resolves through the sibling's trip sources (paper Fig. 7's spirit).
func TestSiblingLoopResolution(t *testing.T) {
	res := analyze(t, `
func work(int n) {
    int s = 0;
    for (int a = 0; a < n; a++) {
        s = s + 2;
    }
    for (int b = 0; b < s; b++) {
        flops(10);
    }
}

func main() {
    for (int outer = 0; outer < 10; outer++) {
        work(16);
        work(outer);
    }
}`)
	calls := callSnippets(res, "main", "work")
	if !sensorOfIndvar(calls[0], "outer") {
		t.Errorf("work(16) should be a sensor; deps=%s", calls[0].Deps)
	}
	if sensorOfIndvar(calls[1], "outer") {
		t.Errorf("work(outer) must not be a sensor; deps=%s", calls[1].Deps)
	}
	// The b-loop inside work depends (through s) on param n.
	b := loopSnippet(t, res, "work", "b")
	if !b.FuncScope {
		t.Errorf("b-loop should be function scope (fixed given n); deps=%s", b.Deps)
	}
	if b.Global {
		t.Errorf("b-loop depends on n which varies at work(outer); deps=%s", b.Deps)
	}
}

// Early return whose condition is constant does not destroy sensor status;
// a data-dependent return does.
func TestReturnConditionsPropagation(t *testing.T) {
	res := analyze(t, `
func fixed_exit() {
    for (int i = 0; i < 100; i++) {
        if (i == 50) {
            return;
        }
        flops(10);
    }
}

func data_exit(int lim) {
    for (int i = 0; i < 100; i++) {
        if (i == lim) {
            return;
        }
        flops(10);
    }
}

func main() {
    int rank = mpi_comm_rank();
    for (int outer = 0; outer < 10; outer++) {
        fixed_exit();
        data_exit(rank);
    }
}`)
	fe := callSnippets(res, "main", "fixed_exit")[0]
	if !sensorOfIndvar(fe, "outer") || !fe.ProcessFixed {
		t.Errorf("fixed_exit should be a process-fixed sensor; deps=%s", fe.Deps)
	}
	de := callSnippets(res, "main", "data_exit")[0]
	if de.ProcessFixed {
		t.Errorf("data_exit(rank) must be process-variant; deps=%s", de.Deps)
	}
}

// Unknown identifiers (a bug in the program) degrade to Extern rather than
// crashing the analysis.
func TestUnknownIdentConservative(t *testing.T) {
	res := analyze(t, `
func main() {
    for (int outer = 0; outer < 10; outer++) {
        for (int i = 0; i < mystery; i++) {
            flops(5);
        }
    }
}`)
	s := loopSnippet(t, res, "main", "i")
	if len(s.SensorOf) != 0 {
		t.Errorf("unknown-bound loop must not be a sensor; deps=%s", s.Deps)
	}
}

// Entry-function override.
func TestCustomEntry(t *testing.T) {
	prog, err := ir.Build(minic.MustParse(`
func kernel() {
    for (int k = 0; k < 10; k++) {
        flops(5);
    }
}
func driver() {
    for (int i = 0; i < 10; i++) {
        kernel();
    }
}`))
	if err != nil {
		t.Fatal(err)
	}
	res := AnalyzeWith(prog, Config{Entry: "driver"})
	found := false
	for _, s := range res.GlobalSensors {
		if s.Call != nil && s.Call.Callee == "kernel" {
			found = true
		}
	}
	if !found {
		t.Errorf("kernel call should be global with driver as entry: %d global sensors", len(res.GlobalSensors))
	}
}

// Snippet metadata sanity: IDs, depth, and the SensorOfLoop helper.
func TestSnippetMetadata(t *testing.T) {
	res := analyze(t, `
func main() {
    for (int a = 0; a < 4; a++) {
        for (int b = 0; b < 4; b++) {
            flops(10);
        }
    }
}`)
	b := loopSnippet(t, res, "main", "b")
	if b.Depth != 1 {
		t.Errorf("depth = %d", b.Depth)
	}
	if b.ID() == "" || b.ID()[0] != 'L' {
		t.Errorf("ID = %q", b.ID())
	}
	if !SensorOfLoop(b, b.SensorOf[0]) {
		t.Error("SensorOfLoop inconsistent")
	}
	outer := loopSnippet(t, res, "main", "a")
	if SensorOfLoop(b, outer.Loop) != sensorOfIndvar(b, "a") {
		t.Error("SensorOfLoop mismatch with indvar check")
	}
	// Call snippet depth: flops inside b-loop has depth 2.
	for _, s := range res.Funcs["main"].Snippets {
		if s.Call != nil && s.Call.Callee == "flops" && s.Depth != 2 {
			t.Errorf("flops depth = %d", s.Depth)
		}
	}
}
