package analysis

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

// genSource builds a random structured program from a seed, mixing fixed
// and varying loops, helpers, branches and MPI calls.
func genSource(seed int64) string {
	rng := uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	var sb strings.Builder
	nHelpers := 1 + next(3)
	for h := 0; h < nHelpers; h++ {
		fmt.Fprintf(&sb, "func h%d(int n) {\n", h)
		switch next(4) {
		case 0:
			fmt.Fprintf(&sb, "    for (int i = 0; i < %d; i++) { flops(%d); }\n", 2+next(9), 5+next(100))
		case 1:
			sb.WriteString("    for (int i = 0; i < n; i++) { flops(10); }\n")
		case 2:
			fmt.Fprintf(&sb, "    if (n > %d) { mem(%d); }\n    flops(%d);\n", next(10), 5+next(40), 5+next(40))
		default:
			fmt.Fprintf(&sb, "    int acc = 0;\n    while (acc < %d) { acc++; flops(7); }\n", 2+next(20))
		}
		sb.WriteString("}\n")
	}
	sb.WriteString("func main() {\n    int rank = mpi_comm_rank();\n    int acc = 0;\n")
	fmt.Fprintf(&sb, "    for (int t = 0; t < %d; t++) {\n", 2+next(8))
	for s := 0; s < 2+next(4); s++ {
		switch next(8) {
		case 0:
			fmt.Fprintf(&sb, "        h%d(%d);\n", next(nHelpers), 1+next(9))
		case 1:
			fmt.Fprintf(&sb, "        h%d(t);\n", next(nHelpers))
		case 2:
			fmt.Fprintf(&sb, "        h%d(rank);\n", next(nHelpers))
		case 3:
			fmt.Fprintf(&sb, "        h%d(acc);\n", next(nHelpers))
		case 4:
			fmt.Fprintf(&sb, "        for (int j = 0; j < %d; j++) { for (int k = 0; k < %d; k++) { flops(9); } }\n",
				1+next(5), 1+next(5))
		case 5:
			fmt.Fprintf(&sb, "        mpi_allreduce(%d, 1.0);\n", 8*(1+next(8)))
		case 6:
			sb.WriteString("        if (t % 2 == 0) { acc += 2; }\n")
		default:
			fmt.Fprintf(&sb, "        for (int v = 0; v < acc + %d; v++) { mem(6); }\n", 1+next(4))
		}
	}
	sb.WriteString("        acc += 1;\n    }\n}\n")
	return sb.String()
}

// Invariants maintained by identification on arbitrary structured programs:
//  1. exported (function-scope) snippet deps contain no LoopVar and no
//     Extern;
//  2. SensorOf is a contiguous prefix of the enclosing-loop chain;
//  3. global sensors are a subset of sensors, which are a subset of
//     snippets;
//  4. analysis is deterministic.
func TestQuickAnalysisInvariants(t *testing.T) {
	f := func(seed int64) bool {
		src := genSource(seed)
		prog, err := ir.Build(minic.MustParse(src))
		if err != nil {
			t.Logf("seed %d: build: %v\n%s", seed, err, src)
			return false
		}
		res := Analyze(prog)
		res2 := Analyze(prog)
		if len(res.GlobalSensors) != len(res2.GlobalSensors) || len(res.Sensors) != len(res2.Sensors) {
			t.Logf("seed %d: nondeterministic", seed)
			return false
		}
		if len(res.GlobalSensors) > len(res.Sensors) || len(res.Sensors) > len(res.Snippets) {
			t.Logf("seed %d: cardinality violated", seed)
			return false
		}
		for _, sum := range res.Funcs {
			for _, s := range sum.Exported {
				if s.Deps.HasKind(SrcLoopVar) || s.Deps.Has(ExternSrc) {
					t.Logf("seed %d: exported snippet %s has bad deps %s\n%s", seed, s.ID(), s.Deps, src)
					return false
				}
			}
			for _, s := range sum.Snippets {
				chain := s.EnclosingLoops()
				if len(s.SensorOf) > len(chain) {
					return false
				}
				for i, l := range s.SensorOf {
					if chain[i] != l {
						t.Logf("seed %d: SensorOf not a prefix for %s", seed, s.ID())
						return false
					}
				}
				if s.Global && !s.FuncScope {
					t.Logf("seed %d: global snippet %s not function-scope", seed, s.ID())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
