package analysis

import (
	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

func copyEnv(env map[string]SourceSet) map[string]SourceSet {
	out := make(map[string]SourceSet, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// resolveFor rewrites d so that the only remaining LoopVar sources refer to
// loops in keep (the loops enclosing the consumer). Any other LoopVar(X) is
// replaced by loop X's trip sources, recursively; unresolvable references
// (cycles, loops whose trip is not yet known) become Extern.
func (w *funcWalker) resolveFor(keep []*ir.Loop, d SourceSet) SourceSet {
	keepIDs := make(map[int]bool, len(keep))
	for _, l := range keep {
		keepIDs[l.ID] = true
	}
	return w.resolve(keepIDs, d, nil)
}

// resolveForLoop resolves relative to a loop currently being walked: its
// own LoopVar and those of its ancestors are kept.
func (w *funcWalker) resolveForLoop(li *loopInfo, d SourceSet) SourceSet {
	keepIDs := make(map[int]bool)
	if li.loop != nil {
		keepIDs[li.loop.ID] = true
		for _, a := range li.loop.Ancestors() {
			keepIDs[a.ID] = true
		}
	}
	return w.resolve(keepIDs, d, nil)
}

func (w *funcWalker) resolve(keep map[int]bool, d SourceSet, visiting map[int]bool) SourceSet {
	out := SourceSet{}
	for _, s := range d.Sorted() {
		if s.Kind != SrcLoopVar || keep[s.Idx] {
			out = out.Add(s)
			continue
		}
		li, ok := w.loopInfos[s.Idx]
		if !ok || !li.tripReady || visiting[s.Idx] {
			out = out.Add(ExternSrc)
			continue
		}
		if visiting == nil {
			visiting = make(map[int]bool)
		}
		visiting[s.Idx] = true
		out = out.Union(w.resolve(keep, li.trip, visiting))
		delete(visiting, s.Idx)
	}
	return out
}

// ---------- expression sources ----------

// exprSources computes the abstract source set of an expression, registering
// call-site records for every call encountered.
func (w *funcWalker) exprSources(e minic.Expr) SourceSet {
	switch x := e.(type) {
	case nil:
		return SourceSet{}
	case *minic.IntLit, *minic.FloatLit, *minic.StringLit:
		return NewSet(ConstSrc)
	case *minic.Ident:
		if src, ok := w.env[x.Name]; ok {
			return src
		}
		if _, isGlobal := w.a.prog.Globals[x.Name]; isGlobal {
			return NewSet(GlobalSrc(x.Name))
		}
		// Unknown identifier: conservatively unpredictable.
		return NewSet(ExternSrc)
	case *minic.BinaryExpr:
		return w.exprSources(x.X).Union(w.exprSources(x.Y))
	case *minic.UnaryExpr:
		return w.exprSources(x.X)
	case *minic.IndexExpr:
		return w.exprSources(x.Array).Union(w.exprSources(x.Index))
	case *minic.CallExpr:
		return w.handleCall(x)
	}
	return NewSet(ExternSrc)
}

// handleCall analyzes one call site: computes the call's workload deps
// (a candidate snippet, paper §3.3), records argument sources for the
// inter-procedural global-sensor check, applies callee global-write
// effects, and returns the call's value sources.
func (w *funcWalker) handleCall(call *minic.CallExpr) SourceSet {
	cs := w.a.prog.CallOf(call.CallID)
	args := make([]SourceSet, len(call.Args))
	for i, a := range call.Args {
		args[i] = w.exprSources(a)
	}

	li := w.cur()
	var deps, value SourceSet
	var hasNet, hasIO bool
	typ := ir.Computation

	if sum, isUser := w.a.res.Funcs[cs.Callee]; isUser {
		deps = substParams(sum.WorkDeps, args)
		value = substParams(sum.ReturnDeps, args)
		hasNet, hasIO = sum.HasNet, sum.HasIO
		// Callee global writes become visible at this site.
		for g, src := range sum.WritesGlobals {
			w.writesGlobals[g] = w.writesGlobals[g].Union(substParams(src, args))
			for _, stk := range w.loopStack {
				stk.globalWrites[g] = true
			}
		}
	} else if _, defined := w.a.prog.Funcs[cs.Callee]; defined {
		// Defined but not yet summarized: only possible for functions in a
		// recursion cycle whose edges were removed. Never-fixed.
		deps = NewSet(ExternSrc)
		value = NewSet(ExternSrc)
	} else if d := w.a.prog.Externs.Lookup(cs.Callee); d != nil {
		deps = NewSet()
		for _, i := range d.WorkArgs {
			if i < len(args) {
				deps = deps.Union(args[i])
			}
		}
		if w.a.cfg.UseStaticRules {
			for _, i := range d.StaticRuleArgs {
				if i < len(args) {
					deps = deps.Union(args[i])
				}
			}
		}
		if !d.Fixed {
			deps = deps.Add(ExternSrc)
		}
		switch d.Value {
		case ir.ValueOfArgs:
			value = NewSet(ConstSrc)
			for _, a := range args {
				value = value.Union(a)
			}
		case ir.ValueRank:
			value = NewSet(RankSrc)
		case ir.ValueUnpredictable:
			value = NewSet(ExternSrc)
		}
		typ = d.Type
		hasNet = d.Type == ir.Network
		hasIO = d.Type == ir.IO
	} else {
		// Undescribed external function: never-fixed workload (paper §3.5),
		// unpredictable value.
		deps = NewSet(ExternSrc)
		value = NewSet(ExternSrc)
	}

	if hasNet {
		typ = ir.Network
	} else if hasIO {
		typ = ir.IO
	}

	rdeps := w.resolveForLoop(li, deps)
	li.items = li.items.Union(rdeps)
	li.hasNet = li.hasNet || hasNet
	li.hasIO = li.hasIO || hasIO

	// Resolve argument sources relative to the call site's enclosing loops
	// for the inter-procedural pass.
	rargs := make([]SourceSet, len(args))
	for i, a := range args {
		rargs[i] = w.resolveFor(cs.Ancestors(), a)
	}
	w.a.argSources[cs.ID] = rargs

	w.snippets = append(w.snippets, &Snippet{
		Call: cs,
		Func: w.fn,
		Pos:  cs.Pos,
		Type: typ,
		Deps: w.resolveFor(cs.Ancestors(), deps),
	})
	return value
}

// substParams replaces Param(i) sources with the corresponding argument
// sources; everything else passes through.
func substParams(d SourceSet, args []SourceSet) SourceSet {
	out := SourceSet{}
	for _, s := range d.Sorted() {
		if s.Kind != SrcParam {
			out = out.Add(s)
			continue
		}
		if s.Idx < len(args) {
			out = out.Union(args[s.Idx])
		} else {
			out = out.Add(ExternSrc) // arity mismatch: unpredictable
		}
	}
	return out
}
