package analysis

import (
	"strings"

	"vsensor/internal/ir"
)

// classifySensorOf computes, for a snippet with resolved deps, the maximal
// chain of enclosing loops for which it is a v-sensor (paper §3.2): walking
// outward from the innermost enclosing loop, the chain ends at the first
// loop whose iteration state the workload depends on — because variance
// within loop Li implies variance within every loop containing Li.
func (w *funcWalker) classifySensorOf(s *Snippet) {
	blocked := s.Deps.Has(ExternSrc)
	enclosing := s.EnclosingLoops()

	if s.Loop != nil {
		s.Depth = s.Loop.Depth
	} else if s.Call.Loop != nil {
		s.Depth = s.Call.Loop.Depth + 1
	}

	if !blocked {
		globalDeps := s.Deps.Globals()
		for _, l := range enclosing {
			li := w.loopInfos[l.ID]
			if s.Deps.Has(LoopVar(l.ID)) || writesAny(li, globalDeps) {
				break
			}
			s.SensorOf = append(s.SensorOf, l)
		}
	}
	s.FuncScope = !blocked && len(s.SensorOf) == len(enclosing)
	s.ProcessFixed = !s.Deps.Has(RankSrc)
}

func writesAny(li *loopInfo, globals []string) bool {
	if li == nil {
		return false
	}
	for _, g := range globals {
		if li.globalWrites[g] {
			return true
		}
	}
	return false
}

// markGlobalSensors runs the inter-procedural check (paper §3.3, Fig. 7):
// an exported (function-scope) snippet is a global v-sensor iff on every
// call path from the entry function, the parameters and globals its
// workload depends on are invariant across all loops enclosing each call
// site. Rank dependence does not block globality but clears ProcessFixed.
func (a *analyzer) markGlobalSensors() {
	entry := a.cfg.Entry
	reachable := a.res.Graph.ReachableFrom(entry)
	memo := make(map[string]pathVerdict)
	repeatsMemo := make(map[string]int)

	for name, sum := range a.res.Funcs {
		if !reachable[name] {
			continue
		}
		for _, s := range sum.Exported {
			// A v-sensor must execute repeatedly (paper §3.1: "a v-sensor
			// must be a snippet of code inside a loop"): it needs an
			// enclosing loop in its own function or on some call path.
			if len(s.EnclosingLoops()) == 0 && !a.funcRepeats(name, reachable, repeatsMemo) {
				continue
			}
			v := a.checkGlobal(name, s.Deps, memo, nil)
			s.Global = v.ok
			if v.ok {
				s.ProcessFixed = s.ProcessFixed && v.rankFree
			}
		}
	}
}

// funcRepeats reports whether fn can execute more than once in a run:
// some reachable call site of fn is inside a loop, or its caller repeats.
func (a *analyzer) funcRepeats(fn string, reachable map[string]bool, memo map[string]int) bool {
	switch memo[fn] {
	case 1:
		return true
	case -1, 2: // known false, or in progress (cycle)
		return false
	}
	memo[fn] = 2
	result := false
	for _, c := range a.prog.Calls {
		if c.Callee != fn || !reachable[c.Func.Name] {
			continue
		}
		if c.Loop != nil || a.funcRepeats(c.Func.Name, reachable, memo) {
			result = true
			break
		}
	}
	if result {
		memo[fn] = 1
	} else {
		memo[fn] = -1
	}
	return result
}

type pathVerdict struct {
	ok       bool
	rankFree bool
}

// checkGlobal verifies that dependency set d, attached to a snippet inside
// function fn, is invariant on every call path from the entry function.
func (a *analyzer) checkGlobal(fn string, d SourceSet, memo map[string]pathVerdict, visiting []string) pathVerdict {
	if d.Has(ExternSrc) || d.HasKind(SrcLoopVar) {
		return pathVerdict{}
	}
	// A workload depending on a global that anything in the program mutates
	// is rejected (conservative whole-program rule, paper §3.3 condition 2).
	for _, g := range d.Globals() {
		if a.res.MutatedGlobals[g] {
			return pathVerdict{}
		}
	}
	rankFree := !d.Has(RankSrc)

	if fn == a.cfg.Entry {
		// The entry function has no parameters to vary.
		if len(d.Params()) > 0 {
			return pathVerdict{}
		}
		return pathVerdict{ok: true, rankFree: rankFree}
	}
	if a.res.Graph.Recursive[fn] {
		return pathVerdict{}
	}
	for _, v := range visiting {
		if v == fn {
			return pathVerdict{} // call-path cycle remnant; be conservative
		}
	}

	key := fn + "|" + depsKey(d)
	if v, ok := memo[key]; ok {
		return v
	}
	// Seed the memo pessimistically to terminate any residual cycles.
	memo[key] = pathVerdict{}

	reachable := a.res.Graph.ReachableFrom(a.cfg.Entry)
	sites := 0
	out := pathVerdict{ok: true, rankFree: rankFree}
	for _, c := range a.prog.Calls {
		if c.Callee != fn || !reachable[c.Func.Name] {
			continue
		}
		sites++
		args := a.argSources[c.ID]
		sub := substParams(d, args)
		// Any remaining LoopVar refers to a loop enclosing this call site
		// (argument sources were resolved that way): the workload would
		// change across that loop's iterations.
		v := a.checkGlobal(c.Func.Name, sub, memo, append(visiting, fn))
		if !v.ok {
			out = pathVerdict{}
			break
		}
		out.rankFree = out.rankFree && v.rankFree
	}
	if sites == 0 {
		out = pathVerdict{} // unreachable in practice; not a global sensor
	}
	memo[key] = out
	return out
}

func depsKey(d SourceSet) string {
	var sb strings.Builder
	for _, s := range d.Sorted() {
		sb.WriteString(s.String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// collect fills the result's flat snippet views in a deterministic order.
func (a *analyzer) collect() {
	for _, name := range a.res.Graph.Order {
		sum := a.res.Funcs[name]
		for _, s := range sum.Snippets {
			a.res.Snippets = append(a.res.Snippets, s)
			if len(s.SensorOf) > 0 || s.Global {
				a.res.Sensors = append(a.res.Sensors, s)
			}
			if s.Global {
				a.res.GlobalSensors = append(a.res.GlobalSensors, s)
			}
		}
	}
}

// SensorOfLoop reports whether snippet s is a v-sensor of loop l.
func SensorOfLoop(s *Snippet, l *ir.Loop) bool {
	for _, x := range s.SensorOf {
		if x == l {
			return true
		}
	}
	return false
}
