package tracer

import (
	"sync"
	"testing"

	"vsensor/internal/vm"
)

func TestByteAccountingMatchesEncoding(t *testing.T) {
	tr := New()
	c := tr.Collector(0)
	c.OnEvent(vm.Event{Rank: 0, Kind: vm.EvNet, Op: "mpi_alltoall", Start: 1, End: 2, Bytes: 4096})
	c.OnEvent(vm.Event{Rank: 0, Kind: vm.EvIO, Op: "io_write", Start: 3, End: 9, Bytes: 64})
	if tr.Events() != 2 {
		t.Fatalf("events = %d", tr.Events())
	}
	enc := tr.Encode()
	if int64(len(enc)) != tr.Bytes() {
		t.Errorf("accounted %d bytes, encoded %d", tr.Bytes(), len(enc))
	}
}

func TestConcurrentCollectors(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := tr.Collector(rank)
			for i := 0; i < 1000; i++ {
				c.OnEvent(vm.Event{Rank: rank, Kind: vm.EvNet, Op: "mpi_send", Start: int64(i), End: int64(i + 1)})
			}
		}(r)
	}
	wg.Wait()
	if tr.Events() != 8000 {
		t.Errorf("events = %d", tr.Events())
	}
	per := int64(eventFixedSize + len("mpi_send"))
	if tr.Bytes() != 8000*per {
		t.Errorf("bytes = %d, want %d", tr.Bytes(), 8000*per)
	}
}
