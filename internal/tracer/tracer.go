// Package tracer is the ITAC-equivalent baseline of paper §6.4: a full MPI
// event tracer that records every communication operation with timestamps.
// Its purpose here is the data-volume comparison — the paper measured
// 501.5 MB of trace against 8.8 MB of vSensor data for the same run — and
// the scalability argument that full tracing cannot be used on-line.
package tracer

import (
	"bytes"
	"encoding/binary"
	"sync"

	"vsensor/internal/vm"
)

// eventWireSize is the encoded size of one trace event:
// rank u32, kind u8, op-len u8, start i64, end i64, bytes i64 + op name.
const eventFixedSize = 4 + 1 + 1 + 8 + 8 + 8

// Trace accumulates events from all ranks and accounts encoded bytes.
type Trace struct {
	mu     sync.Mutex
	events []vm.Event
	bytes  int64
}

// New creates an empty trace.
func New() *Trace { return &Trace{} }

// Collector returns the per-rank event sink feeding this trace.
func (t *Trace) Collector(rank int) vm.EventSink {
	return &collector{t: t}
}

type collector struct {
	t *Trace
}

// OnEvent records one event, charging its encoded size.
func (c *collector) OnEvent(e vm.Event) {
	c.t.mu.Lock()
	c.t.events = append(c.t.events, e)
	c.t.bytes += int64(eventFixedSize + len(e.Op))
	c.t.mu.Unlock()
}

// Events returns the number of recorded events.
func (t *Trace) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// AllEvents returns a snapshot of every recorded event.
func (t *Trace) AllEvents() []vm.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]vm.Event, len(t.events))
	copy(out, t.events)
	return out
}

// Bytes returns the total encoded trace size.
func (t *Trace) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes
}

// Encode serializes the whole trace (verifying the byte accounting).
func (t *Trace) Encode() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b bytes.Buffer
	b.Grow(int(t.bytes))
	var scratch [8]byte
	for _, e := range t.events {
		binary.LittleEndian.PutUint32(scratch[:4], uint32(e.Rank))
		b.Write(scratch[:4])
		b.WriteByte(byte(e.Kind))
		b.WriteByte(byte(len(e.Op)))
		binary.LittleEndian.PutUint64(scratch[:], uint64(e.Start))
		b.Write(scratch[:])
		binary.LittleEndian.PutUint64(scratch[:], uint64(e.End))
		b.Write(scratch[:])
		binary.LittleEndian.PutUint64(scratch[:], uint64(e.Bytes))
		b.Write(scratch[:])
		b.WriteString(e.Op)
	}
	return b.Bytes()
}
