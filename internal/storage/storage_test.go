package storage

import (
	"bytes"
	"testing"
	"time"
)

func TestAppendSyncCrash(t *testing.T) {
	d := NewDisk(Faults{})
	if err := d.Append("wal", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync("wal"); err != nil {
		t.Fatal(err)
	}
	if err := d.Append("wal", []byte("def")); err != nil {
		t.Fatal(err)
	}
	// Reads see the cached (unsynced) tail.
	got, err := d.ReadFile("wal")
	if err != nil || !bytes.Equal(got, []byte("abcdef")) {
		t.Fatalf("read = %q, %v", got, err)
	}
	// An honest crash loses exactly the unsynced tail.
	d.Crash()
	got, err = d.ReadFile("wal")
	if err != nil || !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("post-crash read = %q, %v (want synced prefix only)", got, err)
	}
}

// SetSyncDelayNs models device fsync latency: each Sync stalls its caller
// for at least the configured delay; appends and reads stay free.
func TestSyncDelayStallsSync(t *testing.T) {
	d := NewDisk(Faults{})
	const delay = 200_000 // generous vs timer noise
	d.SetSyncDelayNs(delay)
	if err := d.Append("wal", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := d.Sync("wal"); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(t0).Nanoseconds(); took < delay {
		t.Errorf("sync took %dns, want >= %dns", took, delay)
	}
	got, err := d.ReadFile("wal")
	if err != nil || !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("read = %q, %v", got, err)
	}
	d.SetSyncDelayNs(0)
	t0 = time.Now()
	if err := d.Sync("wal"); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(t0).Nanoseconds(); took > delay {
		t.Errorf("delay-free sync took %dns", took)
	}
}

func TestRenameAtomicDurable(t *testing.T) {
	d := NewDisk(Faults{})
	d.Append("snap.tmp", []byte("state"))
	if err := d.Sync("snap.tmp"); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("snap.tmp", "snap.a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadFile("snap.tmp"); err == nil {
		t.Fatal("old name still readable after rename")
	}
	d.Crash()
	got, err := d.ReadFile("snap.a")
	if err != nil || !bytes.Equal(got, []byte("state")) {
		t.Fatalf("renamed file lost at crash: %q, %v", got, err)
	}
	// Rename replaces an existing target.
	d.Append("snap.tmp", []byte("newer"))
	d.Sync("snap.tmp")
	if err := d.Rename("snap.tmp", "snap.a"); err != nil {
		t.Fatal(err)
	}
	got, _ = d.ReadFile("snap.a")
	if !bytes.Equal(got, []byte("newer")) {
		t.Fatalf("rename did not replace: %q", got)
	}
}

func TestErrors(t *testing.T) {
	d := NewDisk(Faults{})
	if _, err := d.ReadFile("missing"); err == nil {
		t.Error("read of missing file succeeded")
	}
	if err := d.Sync("missing"); err == nil {
		t.Error("sync of missing file succeeded")
	}
	if err := d.Rename("missing", "x"); err == nil {
		t.Error("rename of missing file succeeded")
	}
	if err := d.Remove("missing"); err != nil {
		t.Errorf("remove of missing file errored: %v", err)
	}
	if err := (Faults{TornWrite: 2}).Validate(); err == nil {
		t.Error("out-of-range fault rate accepted")
	}
}

func TestTornWriteKeepsPrefix(t *testing.T) {
	// With TornWrite=1 every crash keeps some prefix (possibly empty) of the
	// unsynced tail; the durable base is never damaged.
	for seed := int64(0); seed < 20; seed++ {
		d := NewDisk(Faults{Seed: seed, TornWrite: 1})
		d.Append("wal", []byte("synced|"))
		d.Sync("wal")
		tail := []byte("0123456789")
		d.Append("wal", tail)
		d.Crash()
		got, err := d.ReadFile("wal")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(got, []byte("synced|")) {
			t.Fatalf("seed %d: durable prefix damaged: %q", seed, got)
		}
		rest := got[len("synced|"):]
		if !bytes.HasPrefix(tail, rest) {
			t.Fatalf("seed %d: torn tail %q is not a prefix of %q", seed, rest, tail)
		}
	}
}

func TestSyncLossLosesAckedData(t *testing.T) {
	d := NewDisk(Faults{Seed: 7, SyncLoss: 1})
	d.Append("wal", []byte("abc"))
	if err := d.Sync("wal"); err != nil {
		t.Fatalf("lying sync must still report success: %v", err)
	}
	d.Crash()
	got, err := d.ReadFile("wal")
	if err != nil || len(got) != 0 {
		t.Fatalf("sync-loss data survived crash: %q, %v", got, err)
	}
	if st := d.Stats(); st.SyncsLost != 1 {
		t.Errorf("stats = %+v, want 1 lost sync", st)
	}
}

func TestBitRotFlipsOneBit(t *testing.T) {
	d := NewDisk(Faults{Seed: 3, BitRot: 1})
	orig := []byte("abcdefgh")
	d.Append("f", orig)
	d.Sync("f")
	d.Crash()
	got, _ := d.ReadFile("f")
	diff := 0
	for i := range got {
		b := got[i] ^ orig[i]
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit rot flipped %d bits, want exactly 1 (%q vs %q)", diff, got, orig)
	}
	if st := d.Stats(); st.BitFlips != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeterministicFaultStream(t *testing.T) {
	run := func() []byte {
		d := NewDisk(Faults{Seed: 99, TornWrite: 0.7, BitRot: 0.5})
		d.Append("wal", bytes.Repeat([]byte("x"), 64))
		d.Sync("wal")
		d.Append("wal", bytes.Repeat([]byte("y"), 64))
		d.Crash()
		got, _ := d.ReadFile("wal")
		return got
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Errorf("same seed, different crash outcome:\n%q\n%q", a, b)
	}
}

func TestListAndSize(t *testing.T) {
	d := NewDisk(Faults{})
	d.Append("b", []byte("22"))
	d.Append("a", []byte("1"))
	names := d.List()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("list = %v", names)
	}
	if d.Size() != 3 {
		t.Errorf("size = %d", d.Size())
	}
	d.Remove("b")
	if got := d.List(); len(got) != 1 || got[0] != "a" {
		t.Errorf("list after remove = %v", got)
	}
}
