// Package storage is a simulated, fault-injectable persistence device for
// the analysis server's durability layer (WAL + snapshots). The in-process
// server of earlier PRs never loses state, so its "crash recovery" was
// untestable fiction; this package gives the reproduction a disk with the
// failure modes real write-ahead logs are built to survive:
//
//   - Writes land in an unsynced region first (the page cache). A crash
//     discards whatever was not fsynced — or, under the torn-write fault,
//     keeps an arbitrary byte prefix of it, the classic partially-persisted
//     append that forces WAL readers to truncate at the first bad CRC.
//   - Sync moves the unsynced region into durable bytes — unless the
//     sync-loss fault makes it lie: it reports success while the data stays
//     volatile, the fsync-error-swallowed bug of real storage stacks.
//   - A crash can flip a random bit in a file's durable bytes (bit rot),
//     which recovery must detect by checksum rather than trust.
//
// All faults are probabilities drawn from a stream seeded by Faults.Seed,
// so a crash schedule reproduces exactly across runs. The zero Faults
// value is an honest disk: Sync is truthful and a crash loses exactly the
// unsynced tails.
package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Faults configures the disk's seeded failure injection. Probabilities are
// in [0,1]; the zero value injects nothing.
type Faults struct {
	// Seed derives the fault stream; crash outcomes are deterministic per
	// (Seed, operation sequence).
	Seed int64

	// TornWrite is the probability, per file with unsynced data at crash
	// time, that a byte prefix of the unsynced tail survives instead of the
	// whole tail vanishing — a partially persisted append.
	TornWrite float64

	// SyncLoss is the probability a Sync call claims success while leaving
	// the data unsynced (lost if a crash follows before a later, honest
	// Sync).
	SyncLoss float64

	// BitRot is the probability, per file at crash time, that one random
	// bit of the file's durable bytes is flipped.
	BitRot float64
}

// Validate rejects out-of-range rates.
func (f Faults) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"tornwrite", f.TornWrite}, {"syncloss", f.SyncLoss}, {"bitrot", f.BitRot}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("storage: %s rate %g out of [0,1]", r.name, r.v)
		}
	}
	return nil
}

// file is one stored object: durable bytes survive a crash; unsynced bytes
// are the page-cache tail that a crash discards (or tears).
type file struct {
	durable  []byte
	unsynced []byte
}

// view returns what a running process reads: durable bytes plus the cached
// unsynced tail.
func (f *file) view() []byte {
	out := make([]byte, 0, len(f.durable)+len(f.unsynced))
	out = append(out, f.durable...)
	return append(out, f.unsynced...)
}

// Stats counts the disk's operation history, for tests and observability.
type Stats struct {
	Appends     int64
	AppendBytes int64
	Syncs       int64
	SyncsLost   int64 // Syncs that lied (sync-loss fault)
	Crashes     int64
	TornKept    int64 // bytes of unsynced data a torn write preserved
	BitFlips    int64
	Renames     int64
	Removes     int64
}

// Disk is the fault-injectable device. Safe for concurrent use.
type Disk struct {
	mu          sync.Mutex
	files       map[string]*file
	rng         *rand.Rand
	faults      Faults
	stats       Stats
	syncDelayNs int64
}

// NewDisk creates an empty disk with the given fault plan. Panics on an
// invalid plan (rates out of range) — fault plans are test/CLI inputs that
// should have been validated already.
func NewDisk(f Faults) *Disk {
	if err := f.Validate(); err != nil {
		panic(err)
	}
	return &Disk{
		files:  make(map[string]*file),
		rng:    rand.New(rand.NewSource(f.Seed ^ 0x5deece66d)),
		faults: f,
	}
}

// Append buffers p onto the end of name, creating it if absent. The bytes
// are volatile (lost or torn at crash) until a truthful Sync.
func (d *Disk) Append(name string, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[name]
	if f == nil {
		f = &file{}
		d.files[name] = f
	}
	f.unsynced = append(f.unsynced, p...)
	d.stats.Appends++
	d.stats.AppendBytes += int64(len(p))
	return nil
}

// SetSyncDelayNs models the device's sync latency: every Sync call busy
// waits this long while holding the disk lock, the way a real fsync
// stalls its caller for the flush round trip. The default (0) keeps Sync
// free, which is right for correctness tests but hides exactly the cost
// that sync batching amortizes — load benchmarks set a realistic delay.
// A busy wait rather than a sleep because sub-100µs sleeps round up to
// scheduler granularity and would distort the model.
func (d *Disk) SetSyncDelayNs(ns int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncDelayNs = ns
}

// Sync makes name's unsynced bytes durable. Under the sync-loss fault it
// may lie: report success and leave the tail volatile.
func (d *Disk) Sync(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[name]
	if f == nil {
		return fmt.Errorf("storage: sync %q: no such file", name)
	}
	if d.syncDelayNs > 0 {
		for t0 := time.Now(); time.Since(t0).Nanoseconds() < d.syncDelayNs; {
		}
	}
	d.stats.Syncs++
	if d.faults.SyncLoss > 0 && d.rng.Float64() < d.faults.SyncLoss {
		d.stats.SyncsLost++
		return nil
	}
	f.durable = append(f.durable, f.unsynced...)
	f.unsynced = f.unsynced[:0]
	return nil
}

// ReadFile returns the running-process view of name: durable bytes plus the
// cached unsynced tail. The returned slice is a copy.
func (d *Disk) ReadFile(name string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[name]
	if f == nil {
		return nil, fmt.Errorf("storage: read %q: no such file", name)
	}
	return f.view(), nil
}

// Rename atomically and durably renames old to new, replacing any existing
// new — the commit primitive snapshots rely on. Metadata operations are
// modeled as journaled by the filesystem: a crash never observes a half
// rename.
func (d *Disk) Rename(oldName, newName string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[oldName]
	if f == nil {
		return fmt.Errorf("storage: rename %q: no such file", oldName)
	}
	delete(d.files, oldName)
	d.files[newName] = f
	d.stats.Renames++
	return nil
}

// Remove deletes name; removing a missing file is not an error (idempotent
// cleanup).
func (d *Disk) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; ok {
		delete(d.files, name)
		d.stats.Removes++
	}
	return nil
}

// List returns the stored file names in sorted order.
func (d *Disk) List() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.files))
	for name := range d.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Crash simulates losing the machine: every file's unsynced tail is
// discarded — or torn, keeping a random byte prefix, under the torn-write
// fault — and durable bytes may suffer a single-bit flip under the bit-rot
// fault. The disk remains usable afterwards; recovery reads what survived.
func (d *Disk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Crashes++
	// Iterate in sorted order so the fault stream is deterministic: map
	// iteration order must not decide which file tears.
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := d.files[name]
		if len(f.unsynced) > 0 {
			if d.faults.TornWrite > 0 && d.rng.Float64() < d.faults.TornWrite {
				keep := d.rng.Intn(len(f.unsynced) + 1)
				f.durable = append(f.durable, f.unsynced[:keep]...)
				d.stats.TornKept += int64(keep)
			}
			f.unsynced = nil
		}
		if len(f.durable) > 0 && d.faults.BitRot > 0 && d.rng.Float64() < d.faults.BitRot {
			bit := d.rng.Intn(len(f.durable) * 8)
			f.durable[bit/8] ^= 1 << (bit % 8)
			d.stats.BitFlips++
		}
	}
}

// Stats returns a snapshot of the operation counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Size returns the total bytes stored (durable + unsynced) across files.
func (d *Disk) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, f := range d.files {
		n += int64(len(f.durable) + len(f.unsynced))
	}
	return n
}
