// Package load is a closed-loop load harness for the durable analysis
// server: it pre-encodes a deterministic per-rank delivery schedule —
// frames interleaved with the heartbeat and duplicate chatter a real
// deployment produces — then drives it through Server.Receive from a pool
// of workers that each own a partition of the ranks (per-rank frame order
// is a protocol invariant, so ops never cross ranks between workers).
// Every Receive call is timed, so the harness reports both throughput
// (records/s, WAL bytes/s, syncs/s) and the hot-path latency distribution
// (p50/p95/p99) for a given durability configuration.
//
// Its purpose is the durability-throughput comparison behind the
// group-commit WAL: the same workload run under the per-op, group-commit,
// and coalesced encoders (VariantDurability) makes the cost of "one sync
// per outcome" and the win from batching directly measurable.
// scripts/check.sh renders the comparison to BENCH_load.json and gates the
// group-commit speedup.
package load

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vsensor/internal/detect"
	"vsensor/internal/server"
	"vsensor/internal/storage"
)

// Config shapes one load run. The zero value is invalid; use Defaults or
// fill every field. The schedule it generates is deterministic: the same
// config always produces byte-identical ops, so two variants of the same
// workload differ only in the server's durability configuration.
type Config struct {
	// Ranks is how many sending processes the workload models.
	Ranks int

	// FramesPerRank is how many record frames each rank delivers.
	FramesPerRank int

	// RecordsPerFrame is the batch size inside each frame.
	RecordsPerFrame int

	// HeartbeatsPerFrame interleaves this many liveness heartbeats after
	// every frame — the steady-state chatter that dominates a mostly-idle
	// deployment and that the coalescing encoder collapses.
	HeartbeatsPerFrame int

	// DupEvery redelivers every DupEvery-th frame immediately (modeling a
	// lost ack and sender retransmit); 0 disables duplicates.
	DupEvery int

	// Workers is the delivery concurrency. Ranks are partitioned across
	// workers (rank % Workers) so each rank's frames arrive in order.
	Workers int

	// Shards is the server's ingest shard count (0 = server default).
	Shards int

	// SyncDelayNs is the modeled device sync latency
	// (storage.Disk.SetSyncDelayNs); 0 keeps Sync free. The comparison is
	// about amortizing this cost, so Defaults picks a realistic SSD fsync.
	SyncDelayNs int64

	// Durability configures the server's WAL; the harness installs a fresh
	// in-memory disk per run. A zero value is the per-op encoder with a
	// sync per outcome.
	Durability server.DurabilityConfig
}

// Defaults returns a config sized for ranks that exercises group commit
// meaningfully: a few frames per rank with heartbeat chatter in between.
func Defaults(ranks int) Config {
	return Config{
		Ranks:              ranks,
		FramesPerRank:      4,
		RecordsPerFrame:    8,
		HeartbeatsPerFrame: 6,
		DupEvery:           2,
		Workers:            8,
		SyncDelayNs:        5_000, // a fast SSD's fsync
	}
}

// Variants lists the durability configurations the harness compares, in
// presentation order.
func Variants() []string { return []string{"per-op", "group", "coalesced"} }

// VariantDurability maps a variant name to its durability configuration
// (without a disk; Run installs one).
func VariantDurability(v string) (server.DurabilityConfig, error) {
	switch v {
	case "per-op":
		return server.DurabilityConfig{}, nil
	case "group":
		return server.DurabilityConfig{FlushEvery: server.DefaultFlushEvery}, nil
	case "coalesced":
		return server.DurabilityConfig{FlushEvery: server.DefaultFlushEvery, Coalesce: true}, nil
	default:
		return server.DurabilityConfig{}, fmt.Errorf("load: unknown variant %q (want per-op, group, or coalesced)", v)
	}
}

// Schedule is the pre-encoded workload: ops[rank] is that rank's delivery
// sequence, each element one Receive call (a frame, a redelivered frame,
// or a heartbeat). Records counts the distinct records the schedule
// carries; Ops counts total deliveries.
type Schedule struct {
	ops     [][][]byte
	Records int64
	Ops     int64
}

// BuildSchedule pre-encodes the workload outside any timed region.
func BuildSchedule(cfg Config) *Schedule {
	s := &Schedule{ops: make([][][]byte, cfg.Ranks)}
	recs := make([]detect.SliceRecord, cfg.RecordsPerFrame)
	for rank := 0; rank < cfg.Ranks; rank++ {
		var perRank [][]byte
		var cum uint64
		for f := 0; f < cfg.FramesPerRank; f++ {
			for i := range recs {
				avg := 100.0 + float64(i)
				if rank%64 == 0 {
					avg *= 2 // a sprinkling of genuine outliers
				}
				recs[i] = detect.SliceRecord{
					Sensor:  i,
					Rank:    rank,
					SliceNs: int64(f) * 1_000_000,
					Count:   4,
					AvgNs:   avg,
				}
			}
			cum += uint64(len(recs))
			frame := server.AppendFrame(nil, server.FrameHeader{
				Rank: rank, Seq: uint64(f) + 1, CumRecords: cum,
			}, recs)
			perRank = append(perRank, frame)
			s.Records += int64(len(recs))
			if cfg.DupEvery > 0 && (f+1)%cfg.DupEvery == 0 {
				perRank = append(perRank, frame) // retransmit after a lost ack
			}
			for h := 0; h < cfg.HeartbeatsPerFrame; h++ {
				now := (int64(f)*int64(cfg.HeartbeatsPerFrame) + int64(h) + 1) * 1_000
				perRank = append(perRank, server.AppendHeartbeat(nil, rank, now, 10_000))
			}
		}
		s.ops[rank] = perRank
		s.Ops += int64(len(perRank))
	}
	return s
}

// Result is one run's throughput and latency report.
type Result struct {
	Variant string
	Ranks   int

	Ops       int64 // Receive calls driven
	Records   int64 // distinct records delivered
	ElapsedNs int64

	RecordsPerSec  float64
	WALBytesPerSec float64
	SyncsPerSec    float64

	// Hot-path Receive latency percentiles, nanoseconds.
	P50Ns int64
	P95Ns int64
	P99Ns int64

	// Raw durability counters for the run.
	WALBytes         int64
	Syncs            int64
	GroupCommits     int64
	CoalescedEntries int64
}

// Run executes the schedule against a fresh durable server under
// cfg.Durability and reports throughput plus hot-path latency. The final
// Checkpoint (flushing any staged commit-group tail) is included in the
// elapsed window — a variant does not get to leave its last group
// unsynced — and the run fails rather than report numbers for a workload
// that did not fully ingest.
func Run(cfg Config, sched *Schedule) (Result, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = server.DefaultShards
	}
	srv := server.NewSharded(shards)
	dur := cfg.Durability
	dur.Disk = storage.NewDisk(storage.Faults{})
	dur.Disk.SetSyncDelayNs(cfg.SyncDelayNs)
	if dur.SnapshotEvery == 0 {
		dur.SnapshotEvery = -1 // measure the WAL, not snapshot cadence
	}
	srv.AttachDurability(dur)

	workers := cfg.Workers
	if workers > cfg.Ranks {
		workers = cfg.Ranks
	}
	lat := make([][]int64, workers)
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := make([]int64, 0, sched.Ops/int64(workers)+1)
			for rank := w; rank < cfg.Ranks; rank += workers {
				for _, op := range sched.ops[rank] {
					t0 := time.Now()
					err := srv.Receive(op)
					own = append(own, time.Since(t0).Nanoseconds())
					if err != nil {
						firstErr.CompareAndSwap(nil, error(err))
						return
					}
				}
			}
			lat[w] = own
		}(w)
	}
	wg.Wait()
	if err := srv.Checkpoint(); err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return Result{}, err
	}
	cov := srv.Coverage()
	if cov.IngestedRecords != sched.Records || cov.Fraction() != 1 {
		return Result{}, fmt.Errorf("load: run ingested %d of %d records", cov.IngestedRecords, sched.Records)
	}

	var all []int64
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	st := srv.DurabilityStats()
	sec := elapsed.Seconds()
	return Result{
		Ranks:            cfg.Ranks,
		Ops:              sched.Ops,
		Records:          sched.Records,
		ElapsedNs:        elapsed.Nanoseconds(),
		RecordsPerSec:    float64(sched.Records) / sec,
		WALBytesPerSec:   float64(st.WALBytes) / sec,
		SyncsPerSec:      float64(st.Syncs) / sec,
		P50Ns:            percentile(all, 50),
		P95Ns:            percentile(all, 95),
		P99Ns:            percentile(all, 99),
		WALBytes:         st.WALBytes,
		Syncs:            st.Syncs,
		GroupCommits:     st.GroupCommits,
		CoalescedEntries: st.CoalescedEntries,
	}, nil
}

// RunVariant builds cfg's durability from a named variant and runs it.
func RunVariant(variant string, cfg Config, sched *Schedule) (Result, error) {
	dur, err := VariantDurability(variant)
	if err != nil {
		return Result{}, err
	}
	cfg.Durability = dur
	res, err := Run(cfg, sched)
	res.Variant = variant
	return res, err
}

// percentile returns the p-th percentile of sorted (nearest-rank method);
// 0 for an empty slice.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}
