package load

import (
	"fmt"
	"testing"
)

// BenchmarkLoadDurable is the durability-throughput comparison behind the
// group-commit WAL: the identical pre-encoded workload driven through the
// per-op, group-commit, and coalesced encoders at three cluster sizes.
// One benchmark op is one complete run (every frame, duplicate, and
// heartbeat ingested, final group flushed). The reported metrics are what
// the comparison is about — records/s (durable ingest throughput),
// wal_B/s (journal write rate), syncs/s (disk sync pressure), and p95_ns
// (hot-path Receive latency). scripts/check.sh renders them to
// BENCH_load.json and gates group-commit's speedup over per-op at 4096
// ranks.
func BenchmarkLoadDurable(b *testing.B) {
	for _, ranks := range []int{64, 512, 4096} {
		cfg := Defaults(ranks)
		sched := BuildSchedule(cfg)
		for _, variant := range Variants() {
			b.Run(fmt.Sprintf("variant=%s/ranks=%d", variant, ranks), func(b *testing.B) {
				var last Result
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := RunVariant(variant, cfg, sched)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(float64(sched.Records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
				b.ReportMetric(float64(last.WALBytes)*float64(b.N)/b.Elapsed().Seconds(), "wal_B/s")
				b.ReportMetric(float64(last.Syncs)*float64(b.N)/b.Elapsed().Seconds(), "syncs/s")
				b.ReportMetric(float64(last.P95Ns), "p95_ns")
			})
		}
	}
}
