package load

import (
	"bytes"
	"testing"
)

// The schedule is the experiment's control variable: the same config must
// produce byte-identical ops so variants differ only in durability config.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Defaults(8)
	a, b := BuildSchedule(cfg), BuildSchedule(cfg)
	if a.Ops != b.Ops || a.Records != b.Records {
		t.Fatalf("schedules disagree: %+v vs %+v", a, b)
	}
	for rank := range a.ops {
		if len(a.ops[rank]) != len(b.ops[rank]) {
			t.Fatalf("rank %d op counts differ", rank)
		}
		for i := range a.ops[rank] {
			if !bytes.Equal(a.ops[rank][i], b.ops[rank][i]) {
				t.Fatalf("rank %d op %d differs", rank, i)
			}
		}
	}
	wantRecords := int64(cfg.Ranks * cfg.FramesPerRank * cfg.RecordsPerFrame)
	if a.Records != wantRecords {
		t.Errorf("records = %d, want %d", a.Records, wantRecords)
	}
	// frames + dups + heartbeats per rank
	perRank := cfg.FramesPerRank*(1+cfg.HeartbeatsPerFrame) + cfg.FramesPerRank/cfg.DupEvery
	if want := int64(cfg.Ranks * perRank); a.Ops != want {
		t.Errorf("ops = %d, want %d", a.Ops, want)
	}
}

func TestVariantDurability(t *testing.T) {
	for _, v := range Variants() {
		dur, err := VariantDurability(v)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		switch v {
		case "per-op":
			if dur.FlushEvery != 0 || dur.Coalesce {
				t.Errorf("per-op config = %+v, want zero", dur)
			}
		case "group":
			if dur.FlushEvery <= 1 || dur.Coalesce {
				t.Errorf("group config = %+v, want FlushEvery>1 without coalescing", dur)
			}
		case "coalesced":
			if dur.FlushEvery <= 1 || !dur.Coalesce {
				t.Errorf("coalesced config = %+v, want FlushEvery>1 with coalescing", dur)
			}
		}
	}
	if _, err := VariantDurability("bogus"); err == nil {
		t.Error("unknown variant accepted")
	}
}

// Every variant must fully ingest the same workload and report coherent
// counters: the harness refuses to benchmark a lossy run, and the
// comparison's key physical facts (per-op syncs every outcome; group
// commit amortizes; coalescing journals fewer bytes) hold even at test
// scale.
func TestRunVariantsIngestEverything(t *testing.T) {
	cfg := Defaults(16)
	cfg.Workers = 4
	sched := BuildSchedule(cfg)
	results := map[string]Result{}
	for _, v := range Variants() {
		res, err := RunVariant(v, cfg, sched)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if res.Records != sched.Records || res.Ops != sched.Ops {
			t.Errorf("%s: result counts %d/%d, want %d/%d", v, res.Records, res.Ops, sched.Records, sched.Ops)
		}
		if res.RecordsPerSec <= 0 || res.ElapsedNs <= 0 {
			t.Errorf("%s: degenerate throughput %+v", v, res)
		}
		if res.P50Ns > res.P95Ns || res.P95Ns > res.P99Ns {
			t.Errorf("%s: percentiles out of order %d/%d/%d", v, res.P50Ns, res.P95Ns, res.P99Ns)
		}
		results[v] = res
	}
	perOp, group, coal := results["per-op"], results["group"], results["coalesced"]
	if perOp.Syncs != sched.Ops {
		t.Errorf("per-op synced %d times, want one per outcome (%d)", perOp.Syncs, sched.Ops)
	}
	if group.Syncs >= perOp.Syncs || group.GroupCommits == 0 {
		t.Errorf("group commit did not amortize: %d syncs vs per-op %d, %d groups",
			group.Syncs, perOp.Syncs, group.GroupCommits)
	}
	if coal.CoalescedEntries == 0 {
		t.Errorf("coalesced run collapsed no outcomes: %+v", coal)
	}
	if coal.WALBytes >= group.WALBytes {
		t.Errorf("coalescing journaled %d bytes, group-commit %d: no reduction", coal.WALBytes, group.WALBytes)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    int
		want int64
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}}
	for _, tc := range cases {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("p%d = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 95); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
}
