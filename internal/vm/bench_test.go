package vm

import (
	"fmt"
	"testing"

	"vsensor/internal/analysis"
	"vsensor/internal/instrument"
	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

// The VM benchmarks scale the interpreted program's outer loop by b.N, so
// ns/op and allocs/op converge to the steady-state cost of ONE loop
// iteration: fixed setup cost (parse, resolve, goroutine spawn) amortizes
// to zero as b.N grows. This is what makes "0 allocs/op on the
// variable-access path" a measurable acceptance criterion — any per-access
// or per-block allocation in the interpreter shows up as a nonzero
// allocs/op here. Results are written to BENCH_vm.json by scripts/check.sh
// for PR-over-PR regression diffing.

func benchProg(b *testing.B, src string) *ir.Program {
	b.Helper()
	prog, err := ir.Build(minic.MustParse(src))
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkVarAccess measures pure name-resolution speed: every statement
// in the loop body is scalar variable traffic (locals at several block
// depths, a shadowed name, and a global), with no arrays, calls, or MPI.
func BenchmarkVarAccess(b *testing.B) {
	src := fmt.Sprintf(`
global int G = 1;
func main() {
    int a = 1;
    int c = 3;
    int s = 0;
    for (int i = 0; i < %d; i++) {
        int t = a + G;
        {
            int a = t + c;
            s = s + a;
        }
        s = s - t;
        G = G + 1;
    }
    if (s == 123456789) { print("never", s); }
}`, b.N)
	prog := benchProg(b, src)
	m := New(prog, Config{Ranks: 1})
	b.ReportAllocs()
	b.ResetTimer()
	res := m.Run()
	if err := res.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkInterpHotLoop is the interpreter-bound workload of the
// acceptance criteria: mixed arithmetic, array indexing, function calls
// and control flow, still with zero simulated MPI/IO so wall time is pure
// interpreter speed.
func BenchmarkInterpHotLoop(b *testing.B) {
	src := fmt.Sprintf(`
global float ACC = 0.0;
func body(int k, float x) float {
    float r = x;
    for (int j = 0; j < 4; j++) {
        r = r + k * 0.5 - j;
    }
    return r;
}
func main() {
    float a[16];
    for (int i = 0; i < %d; i++) {
        int k = i - i / 16 * 16;
        a[k] = body(k, a[k]) - a[k] / 2.0;
        ACC = ACC + a[k];
        while (k > 12) {
            k--;
        }
    }
}`, b.N)
	prog := benchProg(b, src)
	m := New(prog, Config{Ranks: 1})
	b.ReportAllocs()
	b.ResetTimer()
	res := m.Run()
	if err := res.Err(); err != nil {
		b.Fatal(err)
	}
}

// discardSink drops records; the e2e bench measures engine + probe cost,
// not the detector.
type discardSink struct{}

func (discardSink) OnRecord(Record) {}

// BenchmarkRankRunE2E is the end-to-end configuration: an instrumented
// 4-rank program with sensors firing Tick/Tock probes and records flowing
// to a sink, i.e. the full per-record path the pipeline rides on.
func BenchmarkRankRunE2E(b *testing.B) {
	src := fmt.Sprintf(`
func main() {
    for (int n = 0; n < %d; n++) {
        for (int k = 0; k < 4; k++) {
            flops(50);
        }
        mpi_allreduce(16, 1.0);
    }
}`, b.N)
	prog := benchProg(b, src)
	ins := instrument.Apply(analysis.Analyze(prog), instrument.Config{})
	m := NewInstrumented(ins, Config{
		Ranks:       4,
		ProbeCostNs: 25,
		SinkFactory: func(int) Sink { return discardSink{} },
	})
	b.ReportAllocs()
	b.ResetTimer()
	res := m.Run()
	if err := res.Err(); err != nil {
		b.Fatal(err)
	}
}
