package vm

import (
	"fmt"
	"io"
	"sync"

	"vsensor/internal/cluster"
	"vsensor/internal/instrument"
	"vsensor/internal/ir"
	"vsensor/internal/minic"
	"vsensor/internal/mpisim"
	"vsensor/internal/obs"
	"vsensor/internal/pmu"
	"vsensor/internal/resolve"
)

// Record is one sensor measurement: the virtual wall-time of one execution
// of an instrumented v-sensor on one rank, with PMU readings.
type Record struct {
	Sensor   int
	Rank     int
	Start    int64 // virtual ns
	End      int64
	Instr    int64   // PMU instruction delta (jittered)
	MissRate float64 // synthetic cache miss rate for this execution
}

// Duration returns the record's elapsed virtual time.
func (r Record) Duration() int64 { return r.End - r.Start }

// Sink consumes sensor records on the rank's own goroutine.
type Sink interface {
	OnRecord(Record)
}

// Clock is the rank-local virtual-time view handed to sinks: Now reads the
// rank's clock, AdvanceTo charges time to it. mpisim.Proc implements it.
type Clock interface {
	Now() int64
	AdvanceTo(t int64)
}

// ClockBinder is implemented by sinks (or sink chains) that charge virtual
// time to the rank they serve — e.g. a lossy-transport emitter whose retry
// and backoff delays must show up in the rank's execution time. The VM
// binds the rank's clock once, before execution starts.
type ClockBinder interface {
	BindClock(Clock)
}

// EventKind classifies runtime events for tracer/profiler baselines.
type EventKind uint8

// Event kinds.
const (
	EvComp EventKind = iota // a span of local computation
	EvNet                   // an MPI operation
	EvIO                    // an io_read/io_write
)

// Event is a runtime event for baseline tools (mpiP/ITAC equivalents).
type Event struct {
	Rank  int
	Kind  EventKind
	Op    string // operation name for Net/IO events
	Start int64
	End   int64
	Bytes int64
}

// EventSink consumes events on the rank's own goroutine.
type EventSink interface {
	OnEvent(Event)
}

// Config controls a run.
type Config struct {
	Ranks   int
	Cluster *cluster.Cluster

	// SinkFactory builds the per-rank consumer of sensor records (the
	// on-line detector). Nil discards records.
	SinkFactory func(rank int) Sink

	// EventFactory builds the per-rank consumer of runtime events
	// (profiler/tracer baselines). Nil disables event generation.
	EventFactory func(rank int) EventSink

	// MissRate supplies the synthetic cache-miss-rate signal per sensor
	// execution (paper §5.3 dynamic rules). Nil yields 0.
	MissRate func(rank, sensor int, execIdx int64) float64

	// PMUJitterPct bounds the PMU read error (paper §6.2 validation).
	PMUJitterPct float64

	// ProbeCostNs is the virtual cost charged for each Tick/Tock probe
	// pair; this is what makes instrumentation overhead non-zero.
	ProbeCostNs float64

	// MaxSteps bounds interpreted statements per rank (runaway guard).
	// Zero selects a large default.
	MaxSteps int64

	// Stdout receives print() output; nil discards it.
	Stdout io.Writer

	// Obs attaches the self-observability layer: per-rank execution spans,
	// record/step/probe counters, and event counts by kind. Nil (the
	// default) disables all of it; the simulation's virtual time is
	// identical either way.
	Obs *obs.Obs

	Seed int64
}

// Cost model: nominal nanoseconds charged per interpreted operation.
const (
	stmtCostNs      = 2.0 // per executed statement
	exprCostNs      = 0.8 // per evaluated expression node
	flopCostNs      = 0.5 // per unit of flops(n)
	memCostNs       = 1.0 // per unit of mem(n), charged as memory time
	defaultMaxSteps = int64(2_000_000_000)
)

// RankStats summarizes one rank's run.
type RankStats struct {
	Rank    int
	Total   int64 // final virtual clock
	CompNs  int64 // time in local computation
	NetNs   int64 // time inside MPI operations
	IONs    int64 // time inside IO operations
	Instr   int64 // exact instructions retired
	Records int   // sensor records emitted
	Err     error
}

// Result is the outcome of a run.
type Result struct {
	TotalNs int64 // job execution time (max over ranks)
	Ranks   []RankStats
}

// Err returns the first rank error, if any.
func (r *Result) Err() error {
	for _, s := range r.Ranks {
		if s.Err != nil {
			return s.Err
		}
	}
	return nil
}

// Machine executes a program (instrumented or not) on a simulated cluster.
type Machine struct {
	prog *ir.Program
	ins  *instrument.Instrumented // nil when running uninstrumented
	cfg  Config

	// Per-program dispatch tables, computed once at construction so the
	// per-rank interpreters share them read-only:
	mainFn     *minic.FuncDecl
	loopSensor []int32 // sensor ID by LoopID, -1 = uninstrumented
	callSensor []int32 // sensor ID by CallID, -1 = uninstrumented
	numSensors int
}

// New creates a machine for an uninstrumented program.
func New(prog *ir.Program, cfg Config) *Machine {
	return newMachine(prog, nil, cfg)
}

// NewInstrumented creates a machine that fires Tick/Tock around the
// instrumented sensors.
func NewInstrumented(ins *instrument.Instrumented, cfg Config) *Machine {
	return newMachine(ins.Prog, ins, cfg)
}

func newMachine(prog *ir.Program, ins *instrument.Instrumented, cfg Config) *Machine {
	// ir.Build resolves slots; ASTs constructed some other way get the pass
	// here so the interpreter can assume a resolved program.
	if !prog.AST.Resolved {
		resolve.Resolve(prog.AST)
	}
	m := &Machine{
		prog:       prog,
		ins:        ins,
		cfg:        cfg,
		mainFn:     prog.AST.Func("main"),
		loopSensor: denseSensors(len(prog.Loops), nil),
		callSensor: denseSensors(len(prog.Calls), nil),
	}
	if ins != nil {
		m.numSensors = len(ins.Sensors)
		m.loopSensor = denseSensors(len(prog.Loops), ins.LoopSensor)
		m.callSensor = denseSensors(len(prog.Calls), ins.CallSensor)
	}
	return m
}

// denseSensors flattens an instrumentation site->sensor map into an
// ID-indexed table (-1 = no sensor), the form the interpreter's loop and
// call paths index without hashing.
func denseSensors(n int, m map[int]*instrument.Sensor) []int32 {
	t := make([]int32, n)
	for i := range t {
		t[i] = -1
	}
	for id, s := range m {
		if id >= 0 && id < n {
			t[id] = int32(s.ID)
		}
	}
	return t
}

// sensorOfLoop returns the sensor ID instrumenting a loop, or -1.
func (m *Machine) sensorOfLoop(loopID int) int {
	if loopID < 0 || loopID >= len(m.loopSensor) {
		return -1
	}
	return int(m.loopSensor[loopID])
}

// sensorOfCall returns the sensor ID instrumenting a call site, or -1.
// Call expressions outside any function body (global initializers) carry
// the zero CallID; they are never instrumented, and the bounds check keeps
// them (and unindexed programs) off the table.
func (m *Machine) sensorOfCall(callID int) int {
	if m.ins == nil || callID < 0 || callID >= len(m.callSensor) {
		return -1
	}
	return int(m.callSensor[callID])
}

// Run executes main() on every rank and returns aggregate results.
func (m *Machine) Run() *Result {
	cfg := m.cfg
	if cfg.Ranks <= 0 {
		cfg.Ranks = 1
	}
	if cfg.Cluster == nil {
		cfg.Cluster = cluster.New(cluster.Config{Nodes: 1, RanksPerNode: cfg.Ranks})
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = defaultMaxSteps
	}
	if m.prog.AST.Func("main") == nil {
		res := &Result{Ranks: []RankStats{{Err: fmt.Errorf("vm: program has no main function")}}}
		return res
	}

	if cfg.Stdout != nil {
		cfg.Stdout = &lockedWriter{w: cfg.Stdout}
	}

	o := cfg.Obs
	vmMetrics := newRankMetrics(o) // nil-safe: nil obs yields no-op handles
	if o != nil {
		cfg.Cluster.SetObs(o)
		if cfg.EventFactory != nil {
			inner := cfg.EventFactory
			counts := [3]*obs.Counter{
				EvComp: o.Counter("vm_events_total", "kind", "comp"),
				EvNet:  o.Counter("vm_events_total", "kind", "net"),
				EvIO:   o.Counter("vm_events_total", "kind", "io"),
			}
			cfg.EventFactory = func(rank int) EventSink {
				return &countingEventSink{next: inner(rank), counts: counts}
			}
		}
		for r := 0; r < cfg.Ranks; r++ {
			o.NameThread(r+1, fmt.Sprintf("rank %d", r))
		}
	}

	world := mpisim.NewWorld(cfg.Ranks, cfg.Cluster)
	world.SetObs(o)
	stats := make([]RankStats, cfg.Ranks)
	var mu sync.Mutex

	total := world.Run(func(p *mpisim.Proc) {
		sp := o.Span(p.Rank+1, "rank").Arg("rank", itoa(p.Rank))
		vmMetrics.active.Add(1)
		in := newInterp(m, p, cfg)
		err := in.runMain()
		in.flush()
		st := RankStats{
			Rank:    p.Rank,
			Total:   p.Now(),
			CompNs:  in.compNs,
			NetNs:   in.netNs,
			IONs:    in.ioNs,
			Instr:   in.pmu.Exact(),
			Records: in.records,
			Err:     err,
		}
		mu.Lock()
		stats[p.Rank] = st
		mu.Unlock()
		vmMetrics.flushRank(&st, in)
		vmMetrics.active.Add(-1)
		sp.End()
	})
	return &Result{TotalNs: total, Ranks: stats}
}

// rankMetrics holds the vm-level counter handles, resolved once per run.
// Per-statement quantities (steps, probe time) are accumulated locally in
// each interp and flushed here once per rank, keeping the interpreter's
// inner loop free of shared-cache-line traffic.
type rankMetrics struct {
	active  *obs.Gauge
	records *obs.Counter
	steps   *obs.Counter
	probeNs *obs.Counter
	timeNs  [3]*obs.Counter // by EventKind category
}

func newRankMetrics(o *obs.Obs) *rankMetrics {
	return &rankMetrics{
		active:  o.Gauge("vm_active_ranks"),
		records: o.Counter("vm_records_total"),
		steps:   o.Counter("vm_steps_total"),
		probeNs: o.Counter("vm_probe_ns_total"),
		timeNs: [3]*obs.Counter{
			EvComp: o.Counter("vm_time_ns_total", "kind", "comp"),
			EvNet:  o.Counter("vm_time_ns_total", "kind", "net"),
			EvIO:   o.Counter("vm_time_ns_total", "kind", "io"),
		},
	}
}

// flushRank folds one finished rank's locally accumulated totals in.
func (rm *rankMetrics) flushRank(st *RankStats, in *interp) {
	rm.records.Add(int64(st.Records))
	rm.steps.Add(in.steps)
	rm.probeNs.Add(int64(in.probeNs))
	rm.timeNs[EvComp].Add(st.CompNs)
	rm.timeNs[EvNet].Add(st.NetNs)
	rm.timeNs[EvIO].Add(st.IONs)
}

// countingEventSink tees event counts by kind into the registry before the
// baseline sink (profiler/tracer) sees them.
type countingEventSink struct {
	next   EventSink
	counts [3]*obs.Counter
}

func (c *countingEventSink) OnEvent(e Event) {
	if int(e.Kind) < len(c.counts) {
		c.counts[e.Kind].Inc()
	}
	c.next.OnEvent(e)
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// newPMU builds the per-rank counter.
func (m *Machine) newPMU(rank int) *pmu.Counter {
	return pmu.New(rank, m.cfg.Seed, m.cfg.PMUJitterPct)
}

// lockedWriter serializes print() output across rank goroutines.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
