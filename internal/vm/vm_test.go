package vm

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"vsensor/internal/analysis"
	"vsensor/internal/cluster"
	"vsensor/internal/instrument"
	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

func mustProg(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.Build(minic.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// collectSink gathers all records thread-safely across ranks.
type collectSink struct {
	mu   sync.Mutex
	recs []Record
}

func (c *collectSink) OnRecord(r Record) {
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
}

func runSrc(t *testing.T, src string, ranks int, cfg Config) (*Result, *collectSink) {
	t.Helper()
	prog := mustProg(t, src)
	ins := instrument.Apply(analysis.Analyze(prog), instrument.Config{})
	sink := &collectSink{}
	cfg.Ranks = ranks
	if cfg.SinkFactory == nil {
		cfg.SinkFactory = func(int) Sink { return sink }
	}
	m := NewInstrumented(ins, cfg)
	res := m.Run()
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return res, sink
}

func TestArithmeticAndControlFlow(t *testing.T) {
	var buf bytes.Buffer
	src := `
func fib(int n) int {
    if (n <= 1) { return n; }
    int a = 0;
    int b = 1;
    for (int i = 2; i <= n; i++) {
        int c = a + b;
        a = b;
        b = c;
    }
    return b;
}
func main() {
    print("fib10", fib(10));
    print("mix", 7 % 3, 2.5 * 4.0, 10 / 4, -3, !0);
    int x = 0;
    while (x < 100) {
        x += 7;
        if (x > 50) { break; }
    }
    print("x", x);
}`
	prog := mustProg(t, src)
	m := New(prog, Config{Ranks: 1, Stdout: &buf})
	if err := m.Run().Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fib10 55", "mix 1 10 2 -3 1", "x 56"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestArraysAndFloats(t *testing.T) {
	var buf bytes.Buffer
	src := `
global float G[8];
func main() {
    int a[4];
    a[0] = 3;
    a[1] = a[0] * 2;
    G[7] = 1.5;
    float s = 0.0;
    for (int i = 0; i < 8; i++) {
        G[i] += 0.5;
        s += G[i];
    }
    print("a1", a[1], "s", s, "sqrt", sqrt_f(16.0));
}`
	prog := mustProg(t, src)
	m := New(prog, Config{Ranks: 1, Stdout: &buf})
	if err := m.Run().Err(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a1 6 s 5.5 sqrt 4") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestGlobalsPerRank(t *testing.T) {
	var buf bytes.Buffer
	src := `
global int COUNTER = 0;
func main() {
    int rank = mpi_comm_rank();
    COUNTER = COUNTER + rank + 1;
    print("counter", COUNTER);
}`
	prog := mustProg(t, src)
	m := New(prog, Config{Ranks: 4, Stdout: &buf})
	if err := m.Run().Err(); err != nil {
		t.Fatal(err)
	}
	// Each rank has an independent copy of COUNTER.
	for _, want := range []string{"[rank 0] counter 1", "[rank 3] counter 4"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in:\n%s", want, buf.String())
		}
	}
}

func TestMPIBuiltinsEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	src := `
func main() {
    int rank = mpi_comm_rank();
    int size = mpi_comm_size();
    float sum = mpi_allreduce(8, rank * 1.0);
    float b = mpi_bcast(0, 8, 42.0 + rank);
    mpi_barrier();
    float got = 0.0;
    if (rank == 0) {
        mpi_send(1, 1024, 7.5);
    }
    if (rank == 1) {
        got = mpi_recv(0, 1024);
        print("recv", got, "sum", sum, "b", b, "size", size);
    }
}`
	prog := mustProg(t, src)
	m := New(prog, Config{Ranks: 4, Stdout: &buf})
	if err := m.Run().Err(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "recv 7.5 sum 6 b 42 size 4") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestSensorRecordsEmitted(t *testing.T) {
	src := `
func main() {
    for (int n = 0; n < 20; n++) {
        for (int k = 0; k < 10; k++) {
            flops(1000);
        }
        mpi_barrier();
    }
}`
	res, sink := runSrc(t, src, 2, Config{})
	if res.TotalNs <= 0 {
		t.Fatal("no time elapsed")
	}
	bySensor := make(map[int]int)
	for _, r := range sink.recs {
		bySensor[r.Sensor]++
		if r.End <= r.Start {
			t.Fatalf("record has non-positive duration: %+v", r)
		}
	}
	// Two sensors (k-loop, barrier) × 20 iterations × 2 ranks.
	if len(bySensor) != 2 {
		t.Fatalf("sensors seen = %v", bySensor)
	}
	for id, n := range bySensor {
		if n != 40 {
			t.Errorf("sensor %d records = %d, want 40", id, n)
		}
	}
}

func TestFixedWorkloadInstrCounts(t *testing.T) {
	// The instrumented k-loop has fixed workload: exact instruction deltas
	// must be identical across all its executions (PMU jitter disabled).
	src := `
func main() {
    for (int n = 0; n < 15; n++) {
        for (int k = 0; k < 10; k++) {
            flops(500);
        }
    }
}`
	_, sink := runSrc(t, src, 1, Config{})
	if len(sink.recs) != 15 {
		t.Fatalf("records = %d", len(sink.recs))
	}
	first := sink.recs[0].Instr
	if first <= 5000 {
		t.Fatalf("instr count too low: %d", first)
	}
	for _, r := range sink.recs {
		if r.Instr != first {
			t.Fatalf("workload not fixed: %d vs %d", r.Instr, first)
		}
	}
}

func TestPMUJitterWorkloadError(t *testing.T) {
	src := `
func main() {
    for (int n = 0; n < 50; n++) {
        for (int k = 0; k < 10; k++) {
            flops(500);
        }
    }
}`
	_, sink := runSrc(t, src, 1, Config{PMUJitterPct: 0.005, Seed: 9})
	var min, max int64 = 1 << 62, 0
	for _, r := range sink.recs {
		if r.Instr < min {
			min = r.Instr
		}
		if r.Instr > max {
			max = r.Instr
		}
	}
	ps := float64(max) / float64(min)
	if ps <= 1.0 {
		t.Errorf("expected jittered measurements, Ps=%v", ps)
	}
	if ps > 1.011 {
		t.Errorf("Ps=%v exceeds 2×jitter bound", ps)
	}
}

func TestDeterministicTotalTime(t *testing.T) {
	src := `
func main() {
    int rank = mpi_comm_rank();
    for (int n = 0; n < 10; n++) {
        flops(10000);
        mem(2000);
        mpi_sendrecv(rank - rank % 2 + (1 - rank % 2), 4096, 1.0);
        mpi_allreduce(64, 1.0);
    }
}`
	run := func() int64 {
		prog := mustProg(t, src)
		c := cluster.New(cluster.Config{Nodes: 2, RanksPerNode: 2, Seed: 3, JitterPct: 0.02})
		m := New(prog, Config{Ranks: 4, Cluster: c, Seed: 3})
		res := m.Run()
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		return res.TotalNs
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %d vs %d", a, b)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"div-zero", `func main() { int x = 0; int y = 1 / x; }`, "division by zero"},
		{"oob", `func main() { int a[3]; a[5] = 1; }`, "out of range"},
		{"undefined-var", `func main() { x = y + 1; }`, "undefined variable"},
		{"undefined-fn", `func main() { nope(); }`, "undefined function"},
		{"bad-rank", `func main() { mpi_send(99, 8, 0.0); }`, "out of range"},
		{"runaway", `func main() { while (1 == 1) { flops(1); } }`, "step limit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog := mustProg(t, c.src)
			m := New(prog, Config{Ranks: 1, MaxSteps: 100000})
			err := m.Run().Err()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestStatsCategories(t *testing.T) {
	src := `
func main() {
    for (int i = 0; i < 5; i++) {
        flops(100000);
        mpi_barrier();
        io_write(100000);
    }
}`
	prog := mustProg(t, src)
	m := New(prog, Config{Ranks: 2})
	res := m.Run()
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	st := res.Ranks[0]
	if st.CompNs <= 0 || st.NetNs <= 0 || st.IONs <= 0 {
		t.Errorf("stats: comp=%d net=%d io=%d", st.CompNs, st.NetNs, st.IONs)
	}
	if st.Total < st.CompNs || st.Total < st.IONs {
		t.Errorf("total %d inconsistent with categories", st.Total)
	}
	if st.Instr <= 0 {
		t.Error("no instructions counted")
	}
}

func TestInstrumentedSourceRoundTrip(t *testing.T) {
	// Emit instrumented source (vs_tick/vs_tock textual probes), re-parse,
	// re-build, and run WITHOUT IR marking: the textual probes must produce
	// the same records as the IR-marked execution — the paper's
	// "instrument source, compile with original compiler" path.
	src := `
func main() {
    for (int n = 0; n < 12; n++) {
        for (int k = 0; k < 8; k++) {
            flops(200);
        }
        mpi_allreduce(32, 1.0);
    }
}`
	prog := mustProg(t, src)
	ins := instrument.Apply(analysis.Analyze(prog), instrument.Config{})
	emitted := ins.EmitSource()

	prog2, err := ir.Build(minic.MustParse(emitted))
	if err != nil {
		t.Fatalf("emitted source invalid: %v\n%s", err, emitted)
	}
	sink2 := &collectSink{}
	m2 := New(prog2, Config{Ranks: 2, SinkFactory: func(int) Sink { return sink2 }})
	if err := m2.Run().Err(); err != nil {
		t.Fatal(err)
	}

	sink1 := &collectSink{}
	m1 := NewInstrumented(ins, Config{Ranks: 2, SinkFactory: func(int) Sink { return sink1 }})
	if err := m1.Run().Err(); err != nil {
		t.Fatal(err)
	}
	if len(sink1.recs) == 0 || len(sink1.recs) != len(sink2.recs) {
		t.Errorf("record counts differ: IR-marked %d vs source-probes %d", len(sink1.recs), len(sink2.recs))
	}
}

func TestRecursionRuns(t *testing.T) {
	var buf bytes.Buffer
	src := `
func fact(int n) int {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
func main() { print("f6", fact(6)); }`
	prog := mustProg(t, src)
	m := New(prog, Config{Ranks: 1, Stdout: &buf})
	if err := m.Run().Err(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "f6 720") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestProbeOverheadMeasurable(t *testing.T) {
	src := `
func main() {
    for (int n = 0; n < 200; n++) {
        for (int k = 0; k < 4; k++) {
            flops(2000);
        }
    }
}`
	prog := mustProg(t, src)
	plain := New(prog, Config{Ranks: 1}).Run()
	ins := instrument.Apply(analysis.Analyze(prog), instrument.Config{})
	probed := NewInstrumented(ins, Config{Ranks: 1, ProbeCostNs: 40}).Run()
	if probed.TotalNs <= plain.TotalNs {
		t.Errorf("instrumented run should cost more: %d vs %d", probed.TotalNs, plain.TotalNs)
	}
	overhead := float64(probed.TotalNs-plain.TotalNs) / float64(plain.TotalNs)
	if overhead > 0.1 {
		t.Errorf("overhead suspiciously large: %.3f", overhead)
	}
}
