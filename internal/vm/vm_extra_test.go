package vm

import (
	"bytes"
	"strings"
	"testing"

	"vsensor/internal/analysis"
	"vsensor/internal/cluster"
	"vsensor/internal/instrument"
)

func TestWhileLoopSensor(t *testing.T) {
	src := `
func main() {
    for (int n = 0; n < 10; n++) {
        int x = 50;
        while (x > 0) {
            x--;
            flops(100);
        }
    }
}`
	_, sink := runSrc(t, src, 1, Config{})
	if len(sink.recs) != 10 {
		t.Fatalf("while sensor records = %d, want 10", len(sink.recs))
	}
	first := sink.recs[0].Instr
	for _, r := range sink.recs {
		if r.Instr != first {
			t.Errorf("while workload should be fixed: %d vs %d", r.Instr, first)
		}
	}
}

func TestNestedProbesWithKeepNested(t *testing.T) {
	src := `
func inner() {
    for (int j = 0; j < 5; j++) {
        flops(100);
    }
}
func main() {
    for (int n = 0; n < 10; n++) {
        for (int k = 0; k < 3; k++) {
            inner();
        }
    }
}`
	prog := mustProg(t, src)
	ins := instrument.Apply(analysis.Analyze(prog), instrument.Config{KeepNested: true})
	if len(ins.Sensors) < 3 {
		t.Fatalf("expected nested sensors, got %d", len(ins.Sensors))
	}
	sink := &collectSink{}
	m := NewInstrumented(ins, Config{Ranks: 1, SinkFactory: func(int) Sink { return sink }})
	if err := m.Run().Err(); err != nil {
		t.Fatal(err)
	}
	// Every record well-formed despite nesting.
	for _, r := range sink.recs {
		if r.End < r.Start {
			t.Fatalf("bad record %+v", r)
		}
	}
	if len(sink.recs) < 40 {
		t.Errorf("records = %d", len(sink.recs))
	}
}

func TestMismatchedProbesError(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"tock-without-tick", `func main() { vs_tock(0); }`, "without matching"},
		{"wrong-id", `func main() { vs_tick(0); vs_tock(1); }`, "does not match"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog := mustProg(t, c.src)
			err := New(prog, Config{Ranks: 1}).Run().Err()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v", err)
			}
		})
	}
}

func TestMissRateWiring(t *testing.T) {
	src := `
func main() {
    for (int n = 0; n < 10; n++) {
        for (int k = 0; k < 5; k++) {
            flops(100);
        }
    }
}`
	prog := mustProg(t, src)
	ins := instrument.Apply(analysis.Analyze(prog), instrument.Config{})
	sink := &collectSink{}
	m := NewInstrumented(ins, Config{
		Ranks:       1,
		SinkFactory: func(int) Sink { return sink },
		MissRate: func(rank, sensor int, execIdx int64) float64 {
			if execIdx%2 == 1 {
				return 0.5
			}
			return 0.05
		},
	})
	if err := m.Run().Err(); err != nil {
		t.Fatal(err)
	}
	var high, low int
	for _, r := range sink.recs {
		switch r.MissRate {
		case 0.5:
			high++
		case 0.05:
			low++
		default:
			t.Fatalf("unexpected miss rate %v", r.MissRate)
		}
	}
	if high != 5 || low != 5 {
		t.Errorf("high=%d low=%d", high, low)
	}
}

func TestRemainingBuiltins(t *testing.T) {
	var buf bytes.Buffer
	src := `
func main() {
    int rank = mpi_comm_rank();
    float r = mpi_reduce(0, 8, 2.0);
    print("reduce", r);
    print("minmax", min_i(3, 7), max_i(3, 7), abs_i(-5));
    int x = rand_i(10);
    if (x < 0 || x >= 10) {
        print("rand-out-of-range");
    }
    int z = rand_i(0);
    print("randzero", z);
    float fm = 7.5 % 2.0;
    print("fmod", fm);
    mpi_alltoall(128);
    io_read(64);
}`
	prog := mustProg(t, src)
	m := New(prog, Config{Ranks: 2, Stdout: &buf})
	if err := m.Run().Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"reduce 4", "minmax 3 7 5", "randzero 0", "fmod 1.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "rand-out-of-range") {
		t.Error("rand_i out of range")
	}
}

func TestEventGenerationKinds(t *testing.T) {
	src := `
func main() {
    mpi_barrier();
    io_write(1024);
    flops(100);
}`
	prog := mustProg(t, src)
	type evc struct{ evs []Event }
	collected := &evc{}
	m := New(prog, Config{
		Ranks: 1,
		EventFactory: func(rank int) EventSink {
			return eventFunc(func(e Event) { collected.evs = append(collected.evs, e) })
		},
	})
	if err := m.Run().Err(); err != nil {
		t.Fatal(err)
	}
	var net, io int
	for _, e := range collected.evs {
		switch e.Kind {
		case EvNet:
			net++
			if e.Op != "mpi_barrier" {
				t.Errorf("net op = %q", e.Op)
			}
		case EvIO:
			io++
			if e.Bytes != 1024 {
				t.Errorf("io bytes = %d", e.Bytes)
			}
		}
	}
	if net != 1 || io != 1 {
		t.Errorf("net=%d io=%d", net, io)
	}
}

type eventFunc func(Event)

func (f eventFunc) OnEvent(e Event) { f(e) }

func TestFloatCoercionOnAssign(t *testing.T) {
	var buf bytes.Buffer
	src := `
func main() {
    float f = 3;
    int i = 2.9;
    f = 7;
    i = f;
    print("fi", f, i);
}`
	prog := mustProg(t, src)
	if err := New(prog, Config{Ranks: 1, Stdout: &buf}).Run().Err(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fi 7 7") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestNegativeArrayLength(t *testing.T) {
	prog := mustProg(t, `func main() { int n = 0 - 3; int a[n]; }`)
	err := New(prog, Config{Ranks: 1}).Run().Err()
	if err == nil || !strings.Contains(err.Error(), "negative array length") {
		t.Errorf("err = %v", err)
	}
}

func TestNoMainError(t *testing.T) {
	prog := mustProg(t, `func helper() { flops(1); }`)
	err := New(prog, Config{Ranks: 1}).Run().Err()
	if err == nil || !strings.Contains(err.Error(), "no main") {
		t.Errorf("err = %v", err)
	}
}

func TestIOWindowSlowsIO(t *testing.T) {
	src := `
func main() {
    for (int i = 0; i < 20; i++) {
        io_write(100000);
    }
}`
	run := func(storm bool) int64 {
		cl := cluster.New(cluster.Config{Nodes: 1, RanksPerNode: 1})
		if storm {
			cl.AddIOWindow(0, 1<<62, 0.1)
		}
		prog := mustProg(t, src)
		res := New(prog, Config{Ranks: 1, Cluster: cl}).Run()
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		return res.TotalNs
	}
	normal, slow := run(false), run(true)
	if slow < normal*5 {
		t.Errorf("IO storm should slow the run ~10x: %d vs %d", slow, normal)
	}
}
