package vm

import (
	"math"

	"vsensor/internal/minic"
	"vsensor/internal/resolve"
)

func (in *interp) eval(base int, e minic.Expr) Value {
	// Cases ordered by dynamic frequency: identifier loads and binary
	// arithmetic dominate interpreted expression traffic.
	switch x := e.(type) {
	case *minic.Ident:
		return *in.slotOf(base, x)
	case *minic.BinaryExpr:
		return in.evalBinary(base, x)
	case *minic.IntLit:
		return IntVal(x.Value)
	case *minic.FloatLit:
		return FloatVal(x.Value)
	case *minic.StringLit:
		return IntVal(0) // strings only reach print(), handled there
	case *minic.IndexExpr:
		arr := in.slotOf(base, x.Array)
		idx := in.eval(base, x.Index).AsInt()
		in.pmu.AddMemOps(1)
		in.charge(exprCostNs, memCostNs)
		switch arr.Kind {
		case KIntArr:
			in.boundCheck(x, idx, len(arr.AI))
			return IntVal(arr.AI[idx])
		case KFloatArr:
			in.boundCheck(x, idx, len(arr.AF))
			return FloatVal(arr.AF[idx])
		}
		panic(rtErr(in.proc.Rank, x.Pos(), "indexing non-array %q", x.Array.Name))
	case *minic.UnaryExpr:
		v := in.eval(base, x.X)
		in.pmu.AddInstructions(1)
		in.charge(exprCostNs, 0)
		switch x.Op {
		case minic.Minus:
			if v.Kind == KFloat {
				return FloatVal(-v.F)
			}
			return IntVal(-v.I)
		case minic.Not:
			if truthy(v) {
				return IntVal(0)
			}
			return IntVal(1)
		}
	case *minic.CallExpr:
		return in.evalCall(base, x)
	}
	panic(rtErr(in.proc.Rank, e.Pos(), "cannot evaluate expression"))
}

func (in *interp) evalBinary(base int, x *minic.BinaryExpr) Value {
	// Short-circuit logicals.
	switch x.Op {
	case minic.AndAnd:
		in.pmu.AddInstructions(1)
		in.charge(exprCostNs, 0)
		if !truthy(in.eval(base, x.X)) {
			return IntVal(0)
		}
		return boolVal(truthy(in.eval(base, x.Y)))
	case minic.OrOr:
		in.pmu.AddInstructions(1)
		in.charge(exprCostNs, 0)
		if truthy(in.eval(base, x.X)) {
			return IntVal(1)
		}
		return boolVal(truthy(in.eval(base, x.Y)))
	}

	a := in.eval(base, x.X)
	b := in.eval(base, x.Y)
	in.pmu.AddInstructions(1)
	in.charge(exprCostNs, 0)

	if a.Kind == KFloat || b.Kind == KFloat {
		af, bf := a.AsFloat(), b.AsFloat()
		switch x.Op {
		case minic.Plus:
			return FloatVal(af + bf)
		case minic.Minus:
			return FloatVal(af - bf)
		case minic.Star:
			return FloatVal(af * bf)
		case minic.Slash:
			if bf == 0 {
				panic(rtErr(in.proc.Rank, x.Pos(), "division by zero"))
			}
			return FloatVal(af / bf)
		case minic.Percent:
			if bf == 0 {
				panic(rtErr(in.proc.Rank, x.Pos(), "modulo by zero"))
			}
			return FloatVal(math.Mod(af, bf))
		case minic.Eq:
			return boolVal(af == bf)
		case minic.NotEq:
			return boolVal(af != bf)
		case minic.Lt:
			return boolVal(af < bf)
		case minic.Gt:
			return boolVal(af > bf)
		case minic.LtEq:
			return boolVal(af <= bf)
		case minic.GtEq:
			return boolVal(af >= bf)
		}
	}
	ai, bi := a.I, b.I
	switch x.Op {
	case minic.Plus:
		return IntVal(ai + bi)
	case minic.Minus:
		return IntVal(ai - bi)
	case minic.Star:
		return IntVal(ai * bi)
	case minic.Slash:
		if bi == 0 {
			panic(rtErr(in.proc.Rank, x.Pos(), "division by zero"))
		}
		return IntVal(ai / bi)
	case minic.Percent:
		if bi == 0 {
			panic(rtErr(in.proc.Rank, x.Pos(), "modulo by zero"))
		}
		return IntVal(ai % bi)
	case minic.Eq:
		return boolVal(ai == bi)
	case minic.NotEq:
		return boolVal(ai != bi)
	case minic.Lt:
		return boolVal(ai < bi)
	case minic.Gt:
		return boolVal(ai > bi)
	case minic.LtEq:
		return boolVal(ai <= bi)
	case minic.GtEq:
		return boolVal(ai >= bi)
	}
	panic(rtErr(in.proc.Rank, x.Pos(), "unknown operator"))
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

// ---------- calls ----------

// evalCall dispatches a call through its resolver pre-binding: user-defined
// targets are direct *FuncDecl pointers (no name lookup), everything else
// goes to the dense builtin switch. Arguments for user calls are evaluated
// into the reusable argBuf scratch (stack discipline via mark), so a
// steady-state call allocates nothing.
func (in *interp) evalCall(base int, call *minic.CallExpr) Value {
	if fn := call.Target; fn != nil {
		sensor := in.m.sensorOfCall(call.CallID)
		mark := len(in.argBuf)
		for _, a := range call.Args {
			in.argBuf = append(in.argBuf, in.eval(base, a))
		}
		if sensor >= 0 {
			in.tick(sensor)
			defer in.tock(sensor)
		}
		in.pmu.AddInstructions(1)
		in.charge(stmtCostNs, 0)
		ret := in.callFn(fn, in.argBuf[mark:], call.Pos())
		in.argBuf = in.argBuf[:mark]
		return ret
	}
	return in.evalBuiltin(base, call)
}

// netOp wraps an MPI operation: flushes pending work, runs op, accounts the
// elapsed time as network time, and emits a trace event.
func (in *interp) netOp(name string, bytes int64, op func()) {
	in.flush()
	start := in.proc.Now()
	op()
	end := in.proc.Now()
	in.netNs += end - start
	if in.events != nil {
		in.events.OnEvent(Event{Rank: in.proc.Rank, Kind: EvNet, Op: name, Start: start, End: end, Bytes: bytes})
	}
}

func (in *interp) evalBuiltin(base int, call *minic.CallExpr) Value {
	bi := resolve.Builtin(call.Builtin)

	// Evaluate arguments (print handles string literals specially).
	argOf := func(i int) Value {
		if i < len(call.Args) {
			return in.eval(base, call.Args[i])
		}
		return IntVal(0)
	}

	switch bi {
	case resolve.BuiltinPrint:
		args := make([]Value, len(call.Args))
		lits := make([]string, len(call.Args))
		for i, a := range call.Args {
			if s, ok := a.(*minic.StringLit); ok {
				lits[i] = s.Value
				continue
			}
			args[i] = in.eval(base, a)
		}
		in.pmu.AddInstructions(1)
		in.charge(stmtCostNs, 0)
		in.printf(args, lits)
		return IntVal(0)
	case resolve.BuiltinVsTick:
		in.tick(int(argOf(0).AsInt()))
		return IntVal(0)
	case resolve.BuiltinVsTock:
		in.tock(int(argOf(0).AsInt()))
		return IntVal(0)
	}

	if sensor := in.m.sensorOfCall(call.CallID); sensor >= 0 {
		in.tick(sensor)
		defer in.tock(sensor)
	}
	in.pmu.AddInstructions(1)
	in.charge(exprCostNs, 0)

	switch bi {
	case resolve.BuiltinMPICommRank:
		return IntVal(int64(in.proc.Rank))
	case resolve.BuiltinMPICommSize:
		return IntVal(int64(in.proc.World.P))
	case resolve.BuiltinMPIBarrier:
		in.netOp(call.Name, 0, func() { in.proc.Barrier() })
		return IntVal(0)
	case resolve.BuiltinMPISend:
		dst := argOf(0).AsInt()
		n := argOf(1).AsInt()
		val := argOf(2).AsFloat()
		in.checkRank(call, dst)
		in.netOp(call.Name, n, func() { in.proc.Send(int(dst), n, val) })
		return IntVal(0)
	case resolve.BuiltinMPIRecv:
		src := argOf(0).AsInt()
		n := argOf(1).AsInt()
		in.checkRank(call, src)
		var v float64
		in.netOp(call.Name, n, func() { v = in.proc.Recv(int(src), n) })
		return FloatVal(v)
	case resolve.BuiltinMPIISend:
		dst := argOf(0).AsInt()
		n := argOf(1).AsInt()
		val := argOf(2).AsFloat()
		in.checkRank(call, dst)
		// Post eagerly; completion is instantaneous for the sender.
		in.netOp(call.Name, n, func() { in.proc.Send(int(dst), n, val) })
		in.nextReq++
		in.postReq(in.nextReq, pendingReq{peer: int(dst), bytes: n})
		return IntVal(in.nextReq)
	case resolve.BuiltinMPIIRecv:
		src := argOf(0).AsInt()
		n := argOf(1).AsInt()
		in.checkRank(call, src)
		// Posting a receive costs almost nothing; the transfer is charged
		// at mpi_wait.
		in.nextReq++
		in.postReq(in.nextReq, pendingReq{isRecv: true, peer: int(src), bytes: n})
		return IntVal(in.nextReq)
	case resolve.BuiltinMPIWait:
		id := argOf(0).AsInt()
		req, ok := in.takeReq(id)
		if !ok {
			panic(rtErr(in.proc.Rank, call.Pos(), "mpi_wait: unknown request %d", id))
		}
		if !req.isRecv {
			return FloatVal(0) // isend already completed at post time
		}
		var v float64
		in.netOp(call.Name, req.bytes, func() { v = in.proc.Recv(req.peer, req.bytes) })
		return FloatVal(v)
	case resolve.BuiltinMPISendRecv:
		peer := argOf(0).AsInt()
		n := argOf(1).AsInt()
		val := argOf(2).AsFloat()
		in.checkRank(call, peer)
		var v float64
		in.netOp(call.Name, n, func() { v = in.proc.SendRecv(int(peer), n, val) })
		return FloatVal(v)
	case resolve.BuiltinMPIAllreduce:
		n := argOf(0).AsInt()
		contrib := argOf(1).AsFloat()
		var v float64
		in.netOp(call.Name, n, func() { v = in.proc.Allreduce(n, contrib) })
		return FloatVal(v)
	case resolve.BuiltinMPIAlltoall:
		n := argOf(0).AsInt()
		in.netOp(call.Name, n, func() { in.proc.Alltoall(n) })
		return IntVal(0)
	case resolve.BuiltinMPIBcast:
		root := argOf(0).AsInt()
		n := argOf(1).AsInt()
		val := argOf(2).AsFloat()
		in.checkRank(call, root)
		var v float64
		in.netOp(call.Name, n, func() { v = in.proc.Bcast(int(root), n, val) })
		return FloatVal(v)
	case resolve.BuiltinMPIReduce:
		root := argOf(0).AsInt()
		n := argOf(1).AsInt()
		contrib := argOf(2).AsFloat()
		in.checkRank(call, root)
		var v float64
		in.netOp(call.Name, n, func() { v = in.proc.Reduce(int(root), n, contrib) })
		return FloatVal(v)
	case resolve.BuiltinIORead, resolve.BuiltinIOWrite:
		n := argOf(0).AsInt()
		in.flush()
		start := in.proc.Now()
		in.proc.AdvanceTo(start + in.cfg.Cluster.IOCost(start, n))
		end := in.proc.Now()
		in.ioNs += end - start
		if in.events != nil {
			in.events.OnEvent(Event{Rank: in.proc.Rank, Kind: EvIO, Op: call.Name, Start: start, End: end, Bytes: n})
		}
		if bi == resolve.BuiltinIORead {
			return IntVal(n)
		}
		return IntVal(0)
	case resolve.BuiltinFlops:
		n := argOf(0).AsInt()
		if n < 0 {
			n = 0
		}
		in.pmu.AddInstructions(n)
		in.pmu.AddFlops(n)
		in.charge(float64(n)*flopCostNs, 0)
		return IntVal(0)
	case resolve.BuiltinMem:
		n := argOf(0).AsInt()
		if n < 0 {
			n = 0
		}
		in.pmu.AddMemOps(n)
		in.charge(0, float64(n)*memCostNs)
		return IntVal(0)
	case resolve.BuiltinAbsI:
		v := argOf(0).AsInt()
		if v < 0 {
			v = -v
		}
		return IntVal(v)
	case resolve.BuiltinMinI:
		a, b := argOf(0).AsInt(), argOf(1).AsInt()
		if a < b {
			return IntVal(a)
		}
		return IntVal(b)
	case resolve.BuiltinMaxI:
		a, b := argOf(0).AsInt(), argOf(1).AsInt()
		if a > b {
			return IntVal(a)
		}
		return IntVal(b)
	case resolve.BuiltinSqrtF:
		return FloatVal(math.Sqrt(argOf(0).AsFloat()))
	case resolve.BuiltinRandI:
		n := argOf(0).AsInt()
		if n <= 0 {
			return IntVal(0)
		}
		in.rng = in.rng*6364136223846793005 + 1442695040888963407
		return IntVal(int64(in.rng>>33) % n)
	}
	panic(rtErr(in.proc.Rank, call.Pos(), "call to undefined function %q", call.Name))
}

// postReq records an outstanding nonblocking request in the small-slice
// table (appends reuse freed capacity, so steady-state posting is
// allocation-free).
func (in *interp) postReq(id int64, req pendingReq) {
	in.requests = append(in.requests, reqEntry{id: id, req: req})
}

// takeReq removes and returns the request with the given id. Outstanding
// requests are few, so linear scan + swap-remove beats a map.
func (in *interp) takeReq(id int64) (pendingReq, bool) {
	for i := range in.requests {
		if in.requests[i].id == id {
			req := in.requests[i].req
			last := len(in.requests) - 1
			in.requests[i] = in.requests[last]
			in.requests = in.requests[:last]
			return req, true
		}
	}
	return pendingReq{}, false
}

func (in *interp) checkRank(call *minic.CallExpr, r int64) {
	if r < 0 || r >= int64(in.proc.World.P) {
		panic(rtErr(in.proc.Rank, call.Pos(), "%s: rank %d out of range [0,%d)", call.Name, r, in.proc.World.P))
	}
}
