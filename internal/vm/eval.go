package vm

import (
	"math"

	"vsensor/internal/minic"
)

func (in *interp) eval(fr *frame, e minic.Expr) Value {
	switch x := e.(type) {
	case *minic.IntLit:
		return IntVal(x.Value)
	case *minic.FloatLit:
		return FloatVal(x.Value)
	case *minic.StringLit:
		return IntVal(0) // strings only reach print(), handled there
	case *minic.Ident:
		return *in.lvalue(fr, x)
	case *minic.IndexExpr:
		arr := in.lvalue(fr, x.Array)
		idx := in.eval(fr, x.Index).AsInt()
		in.pmu.AddMemOps(1)
		in.charge(exprCostNs, memCostNs)
		switch arr.Kind {
		case KIntArr:
			in.boundCheck(x, idx, len(arr.AI))
			return IntVal(arr.AI[idx])
		case KFloatArr:
			in.boundCheck(x, idx, len(arr.AF))
			return FloatVal(arr.AF[idx])
		}
		panic(rtErr(in.proc.Rank, x.Pos(), "indexing non-array %q", x.Array.Name))
	case *minic.UnaryExpr:
		v := in.eval(fr, x.X)
		in.pmu.AddInstructions(1)
		in.charge(exprCostNs, 0)
		switch x.Op {
		case minic.Minus:
			if v.Kind == KFloat {
				return FloatVal(-v.F)
			}
			return IntVal(-v.I)
		case minic.Not:
			if truthy(v) {
				return IntVal(0)
			}
			return IntVal(1)
		}
	case *minic.BinaryExpr:
		return in.evalBinary(fr, x)
	case *minic.CallExpr:
		return in.evalCall(fr, x)
	}
	panic(rtErr(in.proc.Rank, e.Pos(), "cannot evaluate expression"))
}

func (in *interp) evalBinary(fr *frame, x *minic.BinaryExpr) Value {
	// Short-circuit logicals.
	switch x.Op {
	case minic.AndAnd:
		in.pmu.AddInstructions(1)
		in.charge(exprCostNs, 0)
		if !truthy(in.eval(fr, x.X)) {
			return IntVal(0)
		}
		return boolVal(truthy(in.eval(fr, x.Y)))
	case minic.OrOr:
		in.pmu.AddInstructions(1)
		in.charge(exprCostNs, 0)
		if truthy(in.eval(fr, x.X)) {
			return IntVal(1)
		}
		return boolVal(truthy(in.eval(fr, x.Y)))
	}

	a := in.eval(fr, x.X)
	b := in.eval(fr, x.Y)
	in.pmu.AddInstructions(1)
	in.charge(exprCostNs, 0)

	if a.Kind == KFloat || b.Kind == KFloat {
		af, bf := a.AsFloat(), b.AsFloat()
		switch x.Op {
		case minic.Plus:
			return FloatVal(af + bf)
		case minic.Minus:
			return FloatVal(af - bf)
		case minic.Star:
			return FloatVal(af * bf)
		case minic.Slash:
			if bf == 0 {
				panic(rtErr(in.proc.Rank, x.Pos(), "division by zero"))
			}
			return FloatVal(af / bf)
		case minic.Percent:
			if bf == 0 {
				panic(rtErr(in.proc.Rank, x.Pos(), "modulo by zero"))
			}
			return FloatVal(math.Mod(af, bf))
		case minic.Eq:
			return boolVal(af == bf)
		case minic.NotEq:
			return boolVal(af != bf)
		case minic.Lt:
			return boolVal(af < bf)
		case minic.Gt:
			return boolVal(af > bf)
		case minic.LtEq:
			return boolVal(af <= bf)
		case minic.GtEq:
			return boolVal(af >= bf)
		}
	}
	ai, bi := a.I, b.I
	switch x.Op {
	case minic.Plus:
		return IntVal(ai + bi)
	case minic.Minus:
		return IntVal(ai - bi)
	case minic.Star:
		return IntVal(ai * bi)
	case minic.Slash:
		if bi == 0 {
			panic(rtErr(in.proc.Rank, x.Pos(), "division by zero"))
		}
		return IntVal(ai / bi)
	case minic.Percent:
		if bi == 0 {
			panic(rtErr(in.proc.Rank, x.Pos(), "modulo by zero"))
		}
		return IntVal(ai % bi)
	case minic.Eq:
		return boolVal(ai == bi)
	case minic.NotEq:
		return boolVal(ai != bi)
	case minic.Lt:
		return boolVal(ai < bi)
	case minic.Gt:
		return boolVal(ai > bi)
	case minic.LtEq:
		return boolVal(ai <= bi)
	case minic.GtEq:
		return boolVal(ai >= bi)
	}
	panic(rtErr(in.proc.Rank, x.Pos(), "unknown operator"))
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

// ---------- calls ----------

func (in *interp) evalCall(fr *frame, call *minic.CallExpr) Value {
	// User-defined functions.
	if fn := in.m.prog.AST.Func(call.Name); fn != nil {
		sensor := in.callSensor(call.CallID)
		args := make([]Value, len(call.Args))
		for i, a := range call.Args {
			args[i] = in.eval(fr, a)
		}
		if sensor >= 0 {
			in.tick(sensor)
			defer in.tock(sensor)
		}
		in.pmu.AddInstructions(1)
		in.charge(stmtCostNs, 0)
		return in.call(fn, args, call.Pos())
	}
	return in.evalBuiltin(fr, call)
}

func (in *interp) callSensor(callID int) int {
	if in.m.ins == nil {
		return -1
	}
	if s, ok := in.m.ins.CallSensor[callID]; ok {
		return s.ID
	}
	return -1
}

// netOp wraps an MPI operation: flushes pending work, runs op, accounts the
// elapsed time as network time, and emits a trace event.
func (in *interp) netOp(name string, bytes int64, op func()) {
	in.flush()
	start := in.proc.Now()
	op()
	end := in.proc.Now()
	in.netNs += end - start
	if in.events != nil {
		in.events.OnEvent(Event{Rank: in.proc.Rank, Kind: EvNet, Op: name, Start: start, End: end, Bytes: bytes})
	}
}

func (in *interp) evalBuiltin(fr *frame, call *minic.CallExpr) Value {
	name := call.Name
	sensor := in.callSensor(call.CallID)

	// Evaluate arguments (print handles string literals specially).
	argOf := func(i int) Value {
		if i < len(call.Args) {
			return in.eval(fr, call.Args[i])
		}
		return IntVal(0)
	}

	if name == "print" {
		args := make([]Value, len(call.Args))
		lits := make([]string, len(call.Args))
		for i, a := range call.Args {
			if s, ok := a.(*minic.StringLit); ok {
				lits[i] = s.Value
				continue
			}
			args[i] = in.eval(fr, a)
		}
		in.pmu.AddInstructions(1)
		in.charge(stmtCostNs, 0)
		in.printf(args, lits)
		return IntVal(0)
	}

	if name == "vs_tick" || name == "vs_tock" {
		id := int(argOf(0).AsInt())
		if name == "vs_tick" {
			in.tick(id)
		} else {
			in.tock(id)
		}
		return IntVal(0)
	}

	if sensor >= 0 {
		in.tick(sensor)
		defer in.tock(sensor)
	}
	in.pmu.AddInstructions(1)
	in.charge(exprCostNs, 0)

	switch name {
	case "mpi_comm_rank":
		return IntVal(int64(in.proc.Rank))
	case "mpi_comm_size":
		return IntVal(int64(in.proc.World.P))
	case "mpi_barrier":
		in.netOp(name, 0, func() { in.proc.Barrier() })
		return IntVal(0)
	case "mpi_send":
		dst := argOf(0).AsInt()
		n := argOf(1).AsInt()
		val := argOf(2).AsFloat()
		in.checkRank(call, dst)
		in.netOp(name, n, func() { in.proc.Send(int(dst), n, val) })
		return IntVal(0)
	case "mpi_recv":
		src := argOf(0).AsInt()
		n := argOf(1).AsInt()
		in.checkRank(call, src)
		var v float64
		in.netOp(name, n, func() { v = in.proc.Recv(int(src), n) })
		return FloatVal(v)
	case "mpi_isend":
		dst := argOf(0).AsInt()
		n := argOf(1).AsInt()
		val := argOf(2).AsFloat()
		in.checkRank(call, dst)
		// Post eagerly; completion is instantaneous for the sender.
		in.netOp(name, n, func() { in.proc.Send(int(dst), n, val) })
		in.nextReq++
		in.requests[in.nextReq] = pendingReq{peer: int(dst), bytes: n}
		return IntVal(in.nextReq)
	case "mpi_irecv":
		src := argOf(0).AsInt()
		n := argOf(1).AsInt()
		in.checkRank(call, src)
		// Posting a receive costs almost nothing; the transfer is charged
		// at mpi_wait.
		in.nextReq++
		in.requests[in.nextReq] = pendingReq{isRecv: true, peer: int(src), bytes: n}
		return IntVal(in.nextReq)
	case "mpi_wait":
		id := argOf(0).AsInt()
		req, ok := in.requests[id]
		if !ok {
			panic(rtErr(in.proc.Rank, call.Pos(), "mpi_wait: unknown request %d", id))
		}
		delete(in.requests, id)
		if !req.isRecv {
			return FloatVal(0) // isend already completed at post time
		}
		var v float64
		in.netOp(name, req.bytes, func() { v = in.proc.Recv(req.peer, req.bytes) })
		return FloatVal(v)
	case "mpi_sendrecv":
		peer := argOf(0).AsInt()
		n := argOf(1).AsInt()
		val := argOf(2).AsFloat()
		in.checkRank(call, peer)
		var v float64
		in.netOp(name, n, func() { v = in.proc.SendRecv(int(peer), n, val) })
		return FloatVal(v)
	case "mpi_allreduce":
		n := argOf(0).AsInt()
		contrib := argOf(1).AsFloat()
		var v float64
		in.netOp(name, n, func() { v = in.proc.Allreduce(n, contrib) })
		return FloatVal(v)
	case "mpi_alltoall":
		n := argOf(0).AsInt()
		in.netOp(name, n, func() { in.proc.Alltoall(n) })
		return IntVal(0)
	case "mpi_bcast":
		root := argOf(0).AsInt()
		n := argOf(1).AsInt()
		val := argOf(2).AsFloat()
		in.checkRank(call, root)
		var v float64
		in.netOp(name, n, func() { v = in.proc.Bcast(int(root), n, val) })
		return FloatVal(v)
	case "mpi_reduce":
		root := argOf(0).AsInt()
		n := argOf(1).AsInt()
		contrib := argOf(2).AsFloat()
		in.checkRank(call, root)
		var v float64
		in.netOp(name, n, func() { v = in.proc.Reduce(int(root), n, contrib) })
		return FloatVal(v)
	case "io_read", "io_write":
		n := argOf(0).AsInt()
		in.flush()
		start := in.proc.Now()
		in.proc.AdvanceTo(start + in.cfg.Cluster.IOCost(start, n))
		end := in.proc.Now()
		in.ioNs += end - start
		if in.events != nil {
			in.events.OnEvent(Event{Rank: in.proc.Rank, Kind: EvIO, Op: name, Start: start, End: end, Bytes: n})
		}
		if name == "io_read" {
			return IntVal(n)
		}
		return IntVal(0)
	case "flops":
		n := argOf(0).AsInt()
		if n < 0 {
			n = 0
		}
		in.pmu.AddInstructions(n)
		in.pmu.AddFlops(n)
		in.charge(float64(n)*flopCostNs, 0)
		return IntVal(0)
	case "mem":
		n := argOf(0).AsInt()
		if n < 0 {
			n = 0
		}
		in.pmu.AddMemOps(n)
		in.charge(0, float64(n)*memCostNs)
		return IntVal(0)
	case "abs_i":
		v := argOf(0).AsInt()
		if v < 0 {
			v = -v
		}
		return IntVal(v)
	case "min_i":
		a, b := argOf(0).AsInt(), argOf(1).AsInt()
		if a < b {
			return IntVal(a)
		}
		return IntVal(b)
	case "max_i":
		a, b := argOf(0).AsInt(), argOf(1).AsInt()
		if a > b {
			return IntVal(a)
		}
		return IntVal(b)
	case "sqrt_f":
		return FloatVal(math.Sqrt(argOf(0).AsFloat()))
	case "rand_i":
		n := argOf(0).AsInt()
		if n <= 0 {
			return IntVal(0)
		}
		in.rng = in.rng*6364136223846793005 + 1442695040888963407
		return IntVal(int64(in.rng>>33) % n)
	}
	panic(rtErr(in.proc.Rank, call.Pos(), "call to undefined function %q", name))
}

func (in *interp) checkRank(call *minic.CallExpr, r int64) {
	if r < 0 || r >= int64(in.proc.World.P) {
		panic(rtErr(in.proc.Rank, call.Pos(), "%s: rank %d out of range [0,%d)", call.Name, r, in.proc.World.P))
	}
}
