package vm

import (
	"bytes"
	"testing"

	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

// These goldens were captured on the scope-map interpreter the slot engine
// replaced; total virtual time, retired instructions, and printed output
// must all be bit-identical. Together the programs pin the scoping rules
// the resolver must reproduce: block shadowing, same-scope redeclaration,
// for-init scopes with continue/break, parameter shadowing of globals,
// global-initializer ordering, read-before-declare binding to the outer
// scope, recursion depth, and per-iteration redeclaration in while bodies.
var semanticsGoldens = []struct {
	name  string
	src   string
	total int64 // virtual ns of the whole run
	instr int64 // exact instructions retired on rank 0
	out   []string
}{
	{
		name: "shadowing",
		src: `
global int G = 10;
func main() {
    int x = 1;
    {
        int x = 2;
        {
            int x = x + G;
            print("inner", x);
        }
        print("mid", x);
    }
    print("outer", x);
    int x = 99;
    print("redecl", x);
}`,
		total: 29,
		instr: 15,
		out:   []string{"inner 12", "mid 2", "outer 1", "redecl 99"},
	},
	{
		name: "forinit",
		src: `
func main() {
    int s = 0;
    for (int i = 0; i < 5; i++) {
        int d = i * 2;
        if (d == 4) { continue; }
        if (d > 6) { break; }
        s += d;
    }
    for (int i = 10; i < 12; i++) {
        s += i;
    }
    print("s", s);
}`,
		total: 101,
		instr: 75,
		out:   []string{"s 29"},
	},
	{
		name: "globals-locals",
		src: `
global int A = 3;
global int B = A + 4;
global float F[3];
func touch(int A) int {
    B = B + A;
    return A * 2;
}
func main() {
    F[1] = 2.5;
    int B = 100;
    print("t", touch(5), "B", B, "gB", A + F[1]);
}`,
		total: 21,
		instr: 11,
		out:   []string{"t 10 B 100 gB 5.5"},
	},
	{
		name: "recursion",
		src: `
func fib(int n) int {
    if (n <= 1) { return n; }
    int a = fib(n - 1);
    int b = fib(n - 2);
    return a + b;
}
func main() { print("fib12", fib(12)); }`,
		total: 4651,
		instr: 3022,
		out:   []string{"fib12 144"},
	},
	{
		name: "readbeforedecl",
		src: `
global int V = 7;
func main() {
    for (int i = 0; i < 3; i++) {
        print("pre", V);
        int V = i;
        print("post", V);
    }
    print("end", V);
}`,
		total: 53,
		instr: 33,
		out:   []string{"pre 7", "post 0", "pre 7", "post 1", "pre 7", "post 2", "end 7"},
	},
	{
		name: "whiledecl",
		src: `
func main() {
    int n = 3;
    int acc = 0;
    while (n > 0) {
        int sq = n * n;
        acc += sq;
        n--;
    }
    print("acc", acc, "n", n);
}`,
		total: 42,
		instr: 31,
		out:   []string{"acc 14 n 0"},
	},
}

// TestScopingSemanticsGoldens runs each program on a single rank and
// asserts output, final virtual clock, and instruction count all match the
// pre-slot-engine interpreter exactly.
func TestScopingSemanticsGoldens(t *testing.T) {
	for _, tc := range semanticsGoldens {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := ir.Build(minic.MustParse(tc.src))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			res := New(prog, Config{Ranks: 1, Stdout: &buf}).Run()
			if err := res.Err(); err != nil {
				t.Fatal(err)
			}
			if res.TotalNs != tc.total {
				t.Errorf("TotalNs = %d, want %d (virtual time drifted)", res.TotalNs, tc.total)
			}
			if got := res.Ranks[0].Instr; got != tc.instr {
				t.Errorf("Instr = %d, want %d", got, tc.instr)
			}
			want := ""
			for _, line := range tc.out {
				want += "[rank 0] " + line + "\n"
			}
			if got := buf.String(); got != want {
				t.Errorf("output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
