package vm

import (
	"fmt"
	"math"

	"vsensor/internal/minic"
	"vsensor/internal/mpisim"
	"vsensor/internal/pmu"
)

// interp executes one rank.
type interp struct {
	m    *Machine
	proc *mpisim.Proc
	cfg  Config

	globals map[string]*Value
	pmu     *pmu.Counter
	sink    Sink
	events  EventSink

	// pending nominal costs not yet charged to the virtual clock.
	pendingCPU float64
	pendingMem float64

	// time accounting per category.
	compNs, netNs, ioNs int64

	// active sensor probes (nested probes form a stack).
	probes []probeFrame
	// probeNs accumulates the virtual cost charged for probes, flushed to
	// vm_probe_ns_total once per rank (probe-overhead accounting).
	probeNs float64
	// per-sensor execution counters, for the miss-rate model.
	execIdx map[int]int64
	records int

	steps int64
	rng   uint64

	// Nonblocking point-to-point request table.
	nextReq  int64
	requests map[int64]pendingReq
}

// pendingReq is an outstanding mpi_isend/mpi_irecv awaiting mpi_wait.
type pendingReq struct {
	isRecv bool
	peer   int
	bytes  int64
}

type probeFrame struct {
	sensor  int
	start   int64
	instrAt int64
}

// frame is one function activation; scopes is a stack of name->value maps.
type frame struct {
	scopes []map[string]*Value
}

func (f *frame) push() { f.scopes = append(f.scopes, make(map[string]*Value, 8)) }
func (f *frame) pop()  { f.scopes = f.scopes[:len(f.scopes)-1] }
func (f *frame) declare(name string, v Value) {
	f.scopes[len(f.scopes)-1][name] = &v
}
func (f *frame) lookup(name string) *Value {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if v, ok := f.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

// ctrl signals non-linear control flow during statement execution.
type ctrl uint8

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

func newInterp(m *Machine, proc *mpisim.Proc, cfg Config) *interp {
	in := &interp{
		m:        m,
		proc:     proc,
		cfg:      cfg,
		globals:  make(map[string]*Value),
		pmu:      m.newPMU(proc.Rank),
		execIdx:  make(map[int]int64),
		requests: make(map[int64]pendingReq),
		rng:      uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(proc.Rank) + 0x632be59bd9b4e019,
	}
	if cfg.SinkFactory != nil {
		in.sink = cfg.SinkFactory(proc.Rank)
	}
	if cfg.EventFactory != nil {
		in.events = cfg.EventFactory(proc.Rank)
	}
	return in
}

// runMain initializes globals and executes main().
func (in *interp) runMain() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RuntimeError); ok {
				err = re
				return
			}
			panic(r)
		}
	}()
	fr := &frame{}
	fr.push()
	for _, g := range in.m.prog.AST.Globals {
		arrLen := 0
		if g.Len != nil {
			arrLen = int(in.eval(fr, g.Len).AsInt())
			if arrLen < 0 {
				panic(rtErr(in.proc.Rank, g.Pos(), "negative array length %d for global %s", arrLen, g.Name))
			}
		}
		v := zeroValue(g.Type, arrLen)
		if g.Init != nil {
			v = coerce(in.eval(fr, g.Init), g.Type)
		}
		gv := v
		in.globals[g.Name] = &gv
	}
	in.call(in.m.prog.AST.Func("main"), nil, minic.Pos{Line: 1, Col: 1})
	return nil
}

// ---------- cost accounting ----------

const flushThresholdNs = 5000

func (in *interp) charge(cpu, mem float64) {
	in.pendingCPU += cpu
	in.pendingMem += mem
	if in.pendingCPU+in.pendingMem >= flushThresholdNs {
		in.flush()
	}
}

// flush converts pending nominal work into virtual time.
func (in *interp) flush() {
	if in.pendingCPU == 0 && in.pendingMem == 0 {
		return
	}
	before := in.proc.Now()
	in.proc.Compute(in.pendingCPU, in.pendingMem)
	in.compNs += in.proc.Now() - before
	in.pendingCPU, in.pendingMem = 0, 0
}

func (in *interp) step(pos minic.Pos) {
	in.steps++
	if in.steps > in.cfg.MaxSteps {
		panic(rtErr(in.proc.Rank, pos, "step limit exceeded (%d): possible runaway loop", in.cfg.MaxSteps))
	}
	in.pmu.AddInstructions(1)
	in.charge(stmtCostNs, 0)
}

// ---------- probes (Tick/Tock) ----------

func (in *interp) tick(sensor int) {
	in.flush()
	if in.cfg.ProbeCostNs > 0 {
		in.charge(in.cfg.ProbeCostNs, 0)
		in.flush()
		in.probeNs += in.cfg.ProbeCostNs
	}
	in.probes = append(in.probes, probeFrame{
		sensor:  sensor,
		start:   in.proc.Now(),
		instrAt: in.pmu.Exact(),
	})
}

func (in *interp) tock(sensor int) {
	in.flush()
	if len(in.probes) == 0 {
		panic(rtErr(in.proc.Rank, minic.Pos{}, "vs_tock(%d) without matching vs_tick", sensor))
	}
	pf := in.probes[len(in.probes)-1]
	in.probes = in.probes[:len(in.probes)-1]
	if pf.sensor != sensor {
		panic(rtErr(in.proc.Rank, minic.Pos{}, "vs_tock(%d) does not match vs_tick(%d)", sensor, pf.sensor))
	}
	if in.cfg.ProbeCostNs > 0 {
		in.charge(in.cfg.ProbeCostNs, 0)
		in.flush()
		in.probeNs += in.cfg.ProbeCostNs
	}
	idx := in.execIdx[sensor]
	in.execIdx[sensor] = idx + 1
	var miss float64
	if in.cfg.MissRate != nil {
		miss = in.cfg.MissRate(in.proc.Rank, sensor, idx)
	}
	if in.sink != nil {
		exact := in.pmu.Exact() - pf.instrAt
		measured := in.jitterInstr(exact)
		in.sink.OnRecord(Record{
			Sensor:   sensor,
			Rank:     in.proc.Rank,
			Start:    pf.start,
			End:      in.proc.Now(),
			Instr:    measured,
			MissRate: miss,
		})
		in.records++
	}
}

// jitterInstr applies the PMU measurement error to a span count.
func (in *interp) jitterInstr(v int64) int64 {
	if in.cfg.PMUJitterPct == 0 || v == 0 {
		return v
	}
	in.rng = in.rng*6364136223846793005 + 1442695040888963407
	u := float64(in.rng>>11) / float64(1<<53)
	out := int64(math.Round(float64(v) * (1 + in.cfg.PMUJitterPct*(2*u-1))))
	if out < 0 {
		out = 0
	}
	return out
}

// ---------- statements ----------

func (in *interp) execBlock(fr *frame, b *minic.BlockStmt, ret *Value) ctrl {
	fr.push()
	defer fr.pop()
	for _, s := range b.Stmts {
		if c := in.execStmt(fr, s, ret); c != ctrlNone {
			return c
		}
	}
	return ctrlNone
}

func (in *interp) execStmt(fr *frame, s minic.Stmt, ret *Value) ctrl {
	in.step(s.Pos())
	switch st := s.(type) {
	case *minic.BlockStmt:
		return in.execBlock(fr, st, ret)
	case *minic.VarDecl:
		arrLen := 0
		if st.Len != nil {
			arrLen = int(in.eval(fr, st.Len).AsInt())
			if arrLen < 0 {
				panic(rtErr(in.proc.Rank, st.Pos(), "negative array length %d for %s", arrLen, st.Name))
			}
		}
		v := zeroValue(st.Type, arrLen)
		if st.Init != nil {
			v = coerce(in.eval(fr, st.Init), st.Type)
		}
		fr.declare(st.Name, v)
	case *minic.AssignStmt:
		in.assign(fr, st)
	case *minic.IfStmt:
		if truthy(in.eval(fr, st.Cond)) {
			return in.execBlock(fr, st.Then, ret)
		}
		if st.Else != nil {
			return in.execStmt(fr, st.Else, ret)
		}
	case *minic.ForStmt:
		return in.execFor(fr, st, ret)
	case *minic.WhileStmt:
		return in.execWhile(fr, st, ret)
	case *minic.ReturnStmt:
		if st.Value != nil && ret != nil {
			*ret = in.eval(fr, st.Value)
		}
		return ctrlReturn
	case *minic.BreakStmt:
		return ctrlBreak
	case *minic.ContinueStmt:
		return ctrlContinue
	case *minic.ExprStmt:
		in.eval(fr, st.X)
	}
	return ctrlNone
}

func (in *interp) execFor(fr *frame, st *minic.ForStmt, ret *Value) ctrl {
	sensor := in.loopSensor(st.LoopID)
	if sensor >= 0 {
		in.tick(sensor)
		defer in.tock(sensor)
	}
	fr.push() // scope for the init declaration
	defer fr.pop()
	if st.Init != nil {
		in.execStmt(fr, st.Init, ret)
	}
	for {
		if st.Cond != nil {
			in.pmu.AddInstructions(1)
			in.charge(exprCostNs, 0)
			if !truthy(in.eval(fr, st.Cond)) {
				break
			}
		}
		c := in.execBlock(fr, st.Body, ret)
		if c == ctrlBreak {
			break
		}
		if c == ctrlReturn {
			return ctrlReturn
		}
		if st.Post != nil {
			in.execStmt(fr, st.Post, ret)
		}
	}
	return ctrlNone
}

func (in *interp) execWhile(fr *frame, st *minic.WhileStmt, ret *Value) ctrl {
	sensor := in.loopSensor(st.LoopID)
	if sensor >= 0 {
		in.tick(sensor)
		defer in.tock(sensor)
	}
	for {
		in.pmu.AddInstructions(1)
		in.charge(exprCostNs, 0)
		if !truthy(in.eval(fr, st.Cond)) {
			return ctrlNone
		}
		c := in.execBlock(fr, st.Body, ret)
		if c == ctrlBreak {
			return ctrlNone
		}
		if c == ctrlReturn {
			return ctrlReturn
		}
	}
}

// loopSensor returns the sensor ID instrumenting a loop, or -1.
func (in *interp) loopSensor(loopID int) int {
	if in.m.ins == nil {
		return -1
	}
	if s, ok := in.m.ins.LoopSensor[loopID]; ok {
		return s.ID
	}
	return -1
}

func (in *interp) assign(fr *frame, st *minic.AssignStmt) {
	val := in.eval(fr, st.Value)
	switch tgt := st.Target.(type) {
	case *minic.Ident:
		slot := in.lvalue(fr, tgt)
		*slot = coerceLike(val, *slot)
	case *minic.IndexExpr:
		arr := in.lvalue(fr, tgt.Array)
		idx := in.eval(fr, tgt.Index).AsInt()
		in.pmu.AddMemOps(1)
		in.charge(0, memCostNs)
		switch arr.Kind {
		case KIntArr:
			in.boundCheck(tgt, idx, len(arr.AI))
			arr.AI[idx] = val.AsInt()
		case KFloatArr:
			in.boundCheck(tgt, idx, len(arr.AF))
			arr.AF[idx] = val.AsFloat()
		default:
			panic(rtErr(in.proc.Rank, tgt.Pos(), "indexing non-array %s", tgt.Array.Name))
		}
	}
}

func (in *interp) boundCheck(e minic.Expr, idx int64, n int) {
	if idx < 0 || idx >= int64(n) {
		panic(rtErr(in.proc.Rank, e.Pos(), "index %d out of range [0,%d)", idx, n))
	}
}

// lvalue resolves a name to its storage slot (local shadows global).
func (in *interp) lvalue(fr *frame, id *minic.Ident) *Value {
	if v := fr.lookup(id.Name); v != nil {
		return v
	}
	if v, ok := in.globals[id.Name]; ok {
		return v
	}
	panic(rtErr(in.proc.Rank, id.Pos(), "undefined variable %q", id.Name))
}

// call executes a user-defined function.
func (in *interp) call(fn *minic.FuncDecl, args []Value, pos minic.Pos) Value {
	if len(args) != len(fn.Params) {
		panic(rtErr(in.proc.Rank, pos, "%s expects %d args, got %d", fn.Name, len(fn.Params), len(args)))
	}
	fr := &frame{}
	fr.push()
	for i, p := range fn.Params {
		fr.declare(p.Name, coerce(args[i], p.Type))
	}
	var ret Value
	if fn.Ret == minic.TypeFloat {
		ret = FloatVal(0)
	}
	in.execBlock(fr, fn.Body, &ret)
	return coerce(ret, fn.Ret)
}

// ---------- helpers ----------

func truthy(v Value) bool {
	if v.Kind == KFloat {
		return v.F != 0
	}
	return v.I != 0
}

// coerce converts a value to a declared type.
func coerce(v Value, t minic.Type) Value {
	switch t {
	case minic.TypeInt:
		return IntVal(v.AsInt())
	case minic.TypeFloat:
		return FloatVal(v.AsFloat())
	}
	return v
}

// coerceLike converts v to the kind of model (for assignments).
func coerceLike(v Value, model Value) Value {
	switch model.Kind {
	case KInt:
		return IntVal(v.AsInt())
	case KFloat:
		return FloatVal(v.AsFloat())
	}
	return v
}

func (in *interp) printf(args []Value, lits []string) {
	if in.cfg.Stdout == nil {
		return
	}
	out := ""
	for i, a := range args {
		if i > 0 {
			out += " "
		}
		if lits[i] != "" {
			out += lits[i]
		} else {
			out += a.String()
		}
	}
	fmt.Fprintf(in.cfg.Stdout, "[rank %d] %s\n", in.proc.Rank, out)
}
