package vm

import (
	"fmt"
	"math"

	"vsensor/internal/minic"
	"vsensor/internal/mpisim"
	"vsensor/internal/pmu"
)

// interp executes one rank. It runs the slot-resolved program form: locals
// live in flat frame windows carved out of a single growing value stack,
// globals in a dense per-rank array, and every identifier access is a
// direct index computed at compile time (internal/resolve) — no scope maps,
// no string hashing, no per-block allocation.
type interp struct {
	m    *Machine
	proc *mpisim.Proc
	cfg  Config

	// globals is the per-rank global array, indexed by GlobalDecl.Slot.
	// liveGlobals counts how many are initialized so far: during the global
	// initialization phase a forward reference faults exactly like the
	// scope-map interpreter's progressively filled table did.
	globals     []Value
	liveGlobals int

	// stack backs all function frames; a frame is the window
	// [base, base+NumSlots). It grows by appending, so *Value pointers into
	// it are taken fresh after any evaluation that could call a function.
	stack []Value
	// argBuf is scratch for evaluating call arguments in the caller's frame
	// before they are copied into the callee's; stack discipline (marks)
	// makes nested calls in argument position safe, and the buffer is
	// reused so steady-state calls allocate nothing.
	argBuf []Value

	pmu    *pmu.Counter
	sink   Sink
	events EventSink

	// pending nominal costs not yet charged to the virtual clock.
	pendingCPU float64
	pendingMem float64

	// time accounting per category.
	compNs, netNs, ioNs int64

	// active sensor probes (nested probes form a stack).
	probes []probeFrame
	// probeNs accumulates the virtual cost charged for probes, flushed to
	// vm_probe_ns_total once per rank (probe-overhead accounting).
	probeNs float64
	// execIdx holds the per-sensor execution counters for the miss-rate
	// model, dense by sensor ID (sensor IDs are small contiguous ints from
	// instrument; it grows on demand for raw vs_tick/vs_tock source).
	// execIdxNeg backs the pathological negative-ID probes reachable only
	// from hand-written vs_tick calls; allocated lazily.
	execIdx    []int64
	execIdxNeg map[int]int64
	records    int

	steps int64
	rng   uint64

	// Nonblocking point-to-point request table: outstanding requests are
	// few, so a small slice with linear search beats a map — posting and
	// completing a request allocates nothing once capacity is warm.
	nextReq  int64
	requests []reqEntry
}

// pendingReq is an outstanding mpi_isend/mpi_irecv awaiting mpi_wait.
type pendingReq struct {
	isRecv bool
	peer   int
	bytes  int64
}

// reqEntry is one outstanding request in the small-slice table.
type reqEntry struct {
	id  int64
	req pendingReq
}

type probeFrame struct {
	sensor  int
	start   int64
	instrAt int64
}

// ctrl signals non-linear control flow during statement execution.
type ctrl uint8

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

func newInterp(m *Machine, proc *mpisim.Proc, cfg Config) *interp {
	in := &interp{
		m:       m,
		proc:    proc,
		cfg:     cfg,
		pmu:     m.newPMU(proc.Rank),
		execIdx: make([]int64, m.numSensors),
		rng:     uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(proc.Rank) + 0x632be59bd9b4e019,
	}
	if cfg.SinkFactory != nil {
		in.sink = cfg.SinkFactory(proc.Rank)
		if b, ok := in.sink.(ClockBinder); ok {
			b.BindClock(proc)
		}
	}
	if cfg.EventFactory != nil {
		in.events = cfg.EventFactory(proc.Rank)
	}
	return in
}

// runMain initializes globals and executes main().
func (in *interp) runMain() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RuntimeError); ok {
				err = re
				return
			}
			panic(r)
		}
	}()
	ast := in.m.prog.AST
	in.globals = make([]Value, len(ast.Globals))
	for i, g := range ast.Globals {
		in.liveGlobals = i
		arrLen := 0
		if g.Len != nil {
			arrLen = int(in.eval(0, g.Len).AsInt())
			if arrLen < 0 {
				panic(rtErr(in.proc.Rank, g.Pos(), "negative array length %d for global %s", arrLen, g.Name))
			}
		}
		v := zeroValue(g.Type, arrLen)
		if g.Init != nil {
			v = coerce(in.eval(0, g.Init), g.Type)
		}
		in.globals[i] = v
	}
	in.liveGlobals = len(ast.Globals)
	in.callFn(in.m.mainFn, nil, minic.Pos{Line: 1, Col: 1})
	return nil
}

// ---------- cost accounting ----------

const flushThresholdNs = 5000

func (in *interp) charge(cpu, mem float64) {
	in.pendingCPU += cpu
	in.pendingMem += mem
	if in.pendingCPU+in.pendingMem >= flushThresholdNs {
		in.flush()
	}
}

// flush converts pending nominal work into virtual time.
func (in *interp) flush() {
	if in.pendingCPU == 0 && in.pendingMem == 0 {
		return
	}
	before := in.proc.Now()
	in.proc.Compute(in.pendingCPU, in.pendingMem)
	in.compNs += in.proc.Now() - before
	in.pendingCPU, in.pendingMem = 0, 0
}

// step charges one statement; s.Pos() is only consulted on the (cold)
// step-limit fault, keeping the dynamic Pos dispatch off the hot path.
func (in *interp) step(s minic.Stmt) {
	in.steps++
	if in.steps > in.cfg.MaxSteps {
		panic(rtErr(in.proc.Rank, s.Pos(), "step limit exceeded (%d): possible runaway loop", in.cfg.MaxSteps))
	}
	in.pmu.AddInstructions(1)
	in.charge(stmtCostNs, 0)
}

// ---------- probes (Tick/Tock) ----------

func (in *interp) tick(sensor int) {
	in.flush()
	if in.cfg.ProbeCostNs > 0 {
		in.charge(in.cfg.ProbeCostNs, 0)
		in.flush()
		in.probeNs += in.cfg.ProbeCostNs
	}
	in.probes = append(in.probes, probeFrame{
		sensor:  sensor,
		start:   in.proc.Now(),
		instrAt: in.pmu.Exact(),
	})
}

func (in *interp) tock(sensor int) {
	in.flush()
	if len(in.probes) == 0 {
		panic(rtErr(in.proc.Rank, minic.Pos{}, "vs_tock(%d) without matching vs_tick", sensor))
	}
	pf := in.probes[len(in.probes)-1]
	in.probes = in.probes[:len(in.probes)-1]
	if pf.sensor != sensor {
		panic(rtErr(in.proc.Rank, minic.Pos{}, "vs_tock(%d) does not match vs_tick(%d)", sensor, pf.sensor))
	}
	if in.cfg.ProbeCostNs > 0 {
		in.charge(in.cfg.ProbeCostNs, 0)
		in.flush()
		in.probeNs += in.cfg.ProbeCostNs
	}
	idx := in.bumpExecIdx(sensor)
	var miss float64
	if in.cfg.MissRate != nil {
		miss = in.cfg.MissRate(in.proc.Rank, sensor, idx)
	}
	if in.sink != nil {
		exact := in.pmu.Exact() - pf.instrAt
		measured := in.jitterInstr(exact)
		in.sink.OnRecord(Record{
			Sensor:   sensor,
			Rank:     in.proc.Rank,
			Start:    pf.start,
			End:      in.proc.Now(),
			Instr:    measured,
			MissRate: miss,
		})
		in.records++
	}
}

// bumpExecIdx post-increments the sensor's execution counter. Instrumented
// runs hit the pre-sized dense slice; raw vs_tick source with larger IDs
// grows it on demand, and negative IDs fall back to a lazy map.
func (in *interp) bumpExecIdx(sensor int) int64 {
	if sensor < 0 {
		if in.execIdxNeg == nil {
			in.execIdxNeg = make(map[int]int64)
		}
		idx := in.execIdxNeg[sensor]
		in.execIdxNeg[sensor] = idx + 1
		return idx
	}
	if sensor >= len(in.execIdx) {
		grown := make([]int64, sensor+1)
		copy(grown, in.execIdx)
		in.execIdx = grown
	}
	idx := in.execIdx[sensor]
	in.execIdx[sensor] = idx + 1
	return idx
}

// jitterInstr applies the PMU measurement error to a span count.
func (in *interp) jitterInstr(v int64) int64 {
	if in.cfg.PMUJitterPct == 0 || v == 0 {
		return v
	}
	in.rng = in.rng*6364136223846793005 + 1442695040888963407
	u := float64(in.rng>>11) / float64(1<<53)
	out := int64(math.Round(float64(v) * (1 + in.cfg.PMUJitterPct*(2*u-1))))
	if out < 0 {
		out = 0
	}
	return out
}

// ---------- statements ----------

// execBlock runs a block's statements. Scope entry/exit is free: slot
// layout was fixed at resolve time, so blocks need no runtime bookkeeping.
func (in *interp) execBlock(base int, b *minic.BlockStmt, ret *Value) ctrl {
	for _, s := range b.Stmts {
		if c := in.execStmt(base, s, ret); c != ctrlNone {
			return c
		}
	}
	return ctrlNone
}

func (in *interp) execStmt(base int, s minic.Stmt, ret *Value) ctrl {
	in.step(s)
	switch st := s.(type) {
	case *minic.BlockStmt:
		return in.execBlock(base, st, ret)
	case *minic.VarDecl:
		arrLen := 0
		if st.Len != nil {
			arrLen = int(in.eval(base, st.Len).AsInt())
			if arrLen < 0 {
				panic(rtErr(in.proc.Rank, st.Pos(), "negative array length %d for %s", arrLen, st.Name))
			}
		}
		v := zeroValue(st.Type, arrLen)
		if st.Init != nil {
			v = coerce(in.eval(base, st.Init), st.Type)
		}
		in.stack[base+int(st.Slot)] = v
	case *minic.AssignStmt:
		in.assign(base, st)
	case *minic.IfStmt:
		if truthy(in.eval(base, st.Cond)) {
			return in.execBlock(base, st.Then, ret)
		}
		if st.Else != nil {
			return in.execStmt(base, st.Else, ret)
		}
	case *minic.ForStmt:
		return in.execFor(base, st, ret)
	case *minic.WhileStmt:
		return in.execWhile(base, st, ret)
	case *minic.ReturnStmt:
		if st.Value != nil && ret != nil {
			*ret = in.eval(base, st.Value)
		}
		return ctrlReturn
	case *minic.BreakStmt:
		return ctrlBreak
	case *minic.ContinueStmt:
		return ctrlContinue
	case *minic.ExprStmt:
		in.eval(base, st.X)
	}
	return ctrlNone
}

func (in *interp) execFor(base int, st *minic.ForStmt, ret *Value) ctrl {
	sensor := in.m.sensorOfLoop(st.LoopID)
	if sensor >= 0 {
		in.tick(sensor)
		defer in.tock(sensor)
	}
	if st.Init != nil {
		in.execStmt(base, st.Init, ret)
	}
	for {
		if st.Cond != nil {
			in.pmu.AddInstructions(1)
			in.charge(exprCostNs, 0)
			if !truthy(in.eval(base, st.Cond)) {
				break
			}
		}
		c := in.execBlock(base, st.Body, ret)
		if c == ctrlBreak {
			break
		}
		if c == ctrlReturn {
			return ctrlReturn
		}
		if st.Post != nil {
			in.execStmt(base, st.Post, ret)
		}
	}
	return ctrlNone
}

func (in *interp) execWhile(base int, st *minic.WhileStmt, ret *Value) ctrl {
	sensor := in.m.sensorOfLoop(st.LoopID)
	if sensor >= 0 {
		in.tick(sensor)
		defer in.tock(sensor)
	}
	for {
		in.pmu.AddInstructions(1)
		in.charge(exprCostNs, 0)
		if !truthy(in.eval(base, st.Cond)) {
			return ctrlNone
		}
		c := in.execBlock(base, st.Body, ret)
		if c == ctrlBreak {
			return ctrlNone
		}
		if c == ctrlReturn {
			return ctrlReturn
		}
	}
}

func (in *interp) assign(base int, st *minic.AssignStmt) {
	val := in.eval(base, st.Value)
	switch tgt := st.Target.(type) {
	case *minic.Ident:
		slot := in.slotOf(base, tgt)
		*slot = coerceLike(val, *slot)
	case *minic.IndexExpr:
		arr := in.slotOf(base, tgt.Array)
		idx := in.eval(base, tgt.Index).AsInt()
		in.pmu.AddMemOps(1)
		in.charge(0, memCostNs)
		switch arr.Kind {
		case KIntArr:
			in.boundCheck(tgt, idx, len(arr.AI))
			arr.AI[idx] = val.AsInt()
		case KFloatArr:
			in.boundCheck(tgt, idx, len(arr.AF))
			arr.AF[idx] = val.AsFloat()
		default:
			panic(rtErr(in.proc.Rank, tgt.Pos(), "indexing non-array %s", tgt.Array.Name))
		}
	}
}

func (in *interp) boundCheck(e minic.Expr, idx int64, n int) {
	if idx < 0 || idx >= int64(n) {
		panic(rtErr(in.proc.Rank, e.Pos(), "index %d out of range [0,%d)", idx, n))
	}
}

// slotOf returns the storage slot of a resolved identifier: a direct frame
// or global index. Unresolved names fault here, preserving the lazy
// undefined-variable semantics of the scope-map interpreter.
func (in *interp) slotOf(base int, id *minic.Ident) *Value {
	switch id.Scope {
	case minic.ScopeLocal:
		return &in.stack[base+int(id.Slot)]
	case minic.ScopeGlobal:
		if int(id.Slot) < in.liveGlobals {
			return &in.globals[id.Slot]
		}
	}
	panic(rtErr(in.proc.Rank, id.Pos(), "undefined variable %q", id.Name))
}

// callFn executes a user-defined function over a frame window pushed onto
// the value stack. args may alias in.argBuf; they are copied (with
// coercion) into the frame before evaluation continues.
func (in *interp) callFn(fn *minic.FuncDecl, args []Value, pos minic.Pos) Value {
	if len(args) != len(fn.Params) {
		panic(rtErr(in.proc.Rank, pos, "%s expects %d args, got %d", fn.Name, len(fn.Params), len(args)))
	}
	nb := len(in.stack)
	top := nb + int(fn.NumSlots)
	if top <= cap(in.stack) {
		in.stack = in.stack[:top]
	} else {
		in.stack = append(in.stack, make([]Value, top-nb)...)
	}
	for i, p := range fn.Params {
		in.stack[nb+i] = coerce(args[i], p.Type)
	}
	var ret Value
	if fn.Ret == minic.TypeFloat {
		ret = FloatVal(0)
	}
	in.execBlock(nb, fn.Body, &ret)
	// Clear the frame before popping so array values don't outlive the
	// activation in the reused stack memory. Slots are never read before
	// their declaration re-executes, so this is purely for the GC.
	clear(in.stack[nb:])
	in.stack = in.stack[:nb]
	return coerce(ret, fn.Ret)
}

// ---------- helpers ----------

func truthy(v Value) bool {
	if v.Kind == KFloat {
		return v.F != 0
	}
	return v.I != 0
}

// coerce converts a value to a declared type.
func coerce(v Value, t minic.Type) Value {
	switch t {
	case minic.TypeInt:
		return IntVal(v.AsInt())
	case minic.TypeFloat:
		return FloatVal(v.AsFloat())
	}
	return v
}

// coerceLike converts v to the kind of model (for assignments).
func coerceLike(v Value, model Value) Value {
	switch model.Kind {
	case KInt:
		return IntVal(v.AsInt())
	case KFloat:
		return FloatVal(v.AsFloat())
	}
	return v
}

func (in *interp) printf(args []Value, lits []string) {
	if in.cfg.Stdout == nil {
		return
	}
	out := ""
	for i, a := range args {
		if i > 0 {
			out += " "
		}
		if lits[i] != "" {
			out += lits[i]
		} else {
			out += a.String()
		}
	}
	fmt.Fprintf(in.cfg.Stdout, "[rank %d] %s\n", in.proc.Rank, out)
}
