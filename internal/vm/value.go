// Package vm interprets analyzed mini-C programs on the simulated cluster.
// It executes one goroutine per MPI rank over virtual clocks (mpisim),
// charges compute/memory/network/IO costs through the cluster model, drives
// the simulated PMU, and fires Tick/Tock probe events for instrumented
// v-sensors (paper workflow step 6: "Run").
package vm

import (
	"fmt"

	"vsensor/internal/minic"
)

// Kind tags a runtime value.
type Kind uint8

// Value kinds.
const (
	KInt Kind = iota
	KFloat
	KIntArr
	KFloatArr
)

// Value is a mini-C runtime value. Arrays are reference values.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	AI   []int64
	AF   []float64
}

// IntVal wraps an int64.
func IntVal(v int64) Value { return Value{Kind: KInt, I: v} }

// FloatVal wraps a float64.
func FloatVal(v float64) Value { return Value{Kind: KFloat, F: v} }

// AsInt converts numeric values to int64.
func (v Value) AsInt() int64 {
	if v.Kind == KFloat {
		return int64(v.F)
	}
	return v.I
}

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() float64 {
	if v.Kind == KFloat {
		return v.F
	}
	return float64(v.I)
}

// IsArray reports whether the value is an array.
func (v Value) IsArray() bool { return v.Kind == KIntArr || v.Kind == KFloatArr }

// Len returns an array's length.
func (v Value) Len() int {
	switch v.Kind {
	case KIntArr:
		return len(v.AI)
	case KFloatArr:
		return len(v.AF)
	}
	return 0
}

// String renders the value for print().
func (v Value) String() string {
	switch v.Kind {
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KFloat:
		return fmt.Sprintf("%g", v.F)
	case KIntArr:
		return fmt.Sprintf("int[%d]", len(v.AI))
	case KFloatArr:
		return fmt.Sprintf("float[%d]", len(v.AF))
	}
	return "?"
}

// zeroValue returns the zero value for a declared type.
func zeroValue(t minic.Type, arrLen int) Value {
	switch t {
	case minic.TypeInt:
		return IntVal(0)
	case minic.TypeFloat:
		return FloatVal(0)
	case minic.TypeIntArray:
		return Value{Kind: KIntArr, AI: make([]int64, arrLen)}
	case minic.TypeFloatArray:
		return Value{Kind: KFloatArr, AF: make([]float64, arrLen)}
	}
	return IntVal(0)
}

// RuntimeError is an execution fault with a source position.
type RuntimeError struct {
	Rank int
	Pos  minic.Pos
	Msg  string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("rank %d: %s: %s", e.Rank, e.Pos, e.Msg)
}

func rtErr(rank int, pos minic.Pos, format string, args ...any) *RuntimeError {
	return &RuntimeError{Rank: rank, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
