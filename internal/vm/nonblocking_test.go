package vm

import (
	"bytes"
	"strings"
	"testing"

	"vsensor/internal/analysis"
	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

func TestNonblockingExchange(t *testing.T) {
	var buf bytes.Buffer
	src := `
func main() {
    int rank = mpi_comm_rank();
    int peer = 1 - rank;
    int rreq = mpi_irecv(peer, 4096);
    int sreq = mpi_isend(peer, 4096, 10.0 + rank);
    flops(100000);
    float got = mpi_wait(rreq);
    mpi_wait(sreq);
    print("got", got);
}`
	prog := mustProg(t, src)
	if err := New(prog, Config{Ranks: 2, Stdout: &buf}).Run().Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[rank 0] got 11") || !strings.Contains(out, "[rank 1] got 10") {
		t.Errorf("exchange values wrong:\n%s", out)
	}
}

func TestWaitUnknownRequest(t *testing.T) {
	prog := mustProg(t, `func main() { mpi_wait(42); }`)
	err := New(prog, Config{Ranks: 1}).Run().Err()
	if err == nil || !strings.Contains(err.Error(), "unknown request") {
		t.Errorf("err = %v", err)
	}
}

// mpi_wait is never-fixed (the matched request's size is not statically
// known), so loops containing it are not sensors; isend/irecv posts with
// fixed sizes are.
func TestNonblockingAnalysis(t *testing.T) {
	src := `
func main() {
    int rank = mpi_comm_rank();
    int peer = 1 - rank;
    for (int i = 0; i < 50; i++) {
        int r = mpi_irecv(peer, 8192);
        int s = mpi_isend(peer, 8192, 1.0);
        flops(5000);
        mpi_wait(r);
        mpi_wait(s);
    }
}`
	prog, err := ir.Build(minic.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Analyze(prog)
	for _, s := range res.Funcs["main"].Snippets {
		if s.Call == nil {
			// The i-loop contains mpi_wait: never a sensor.
			if len(s.SensorOf) != 0 {
				t.Errorf("loop with mpi_wait must not be a sensor: %s", s.Deps)
			}
			continue
		}
		switch s.Call.Callee {
		case "mpi_irecv", "mpi_isend":
			if len(s.SensorOf) == 0 {
				t.Errorf("%s post with fixed size should be a sensor: %s", s.Call.Callee, s.Deps)
			}
		case "mpi_wait":
			if len(s.SensorOf) != 0 {
				t.Errorf("mpi_wait must never be a sensor: %s", s.Deps)
			}
		}
	}
}
