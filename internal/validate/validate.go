// Package validate implements the paper's §6.2 validation methodology:
// checking that identified v-sensors really have fixed workloads. As in the
// paper, computation sensors are validated through PMU instruction counts
// (Ps = MAX(v_i)/MIN(v_i) per sensor, Pa = MAX(Ps) over sensors, Pm =
// MAX(Pa) over processes), and network sensors are validated by recording
// their message sizes and checking that they never change.
package validate

import (
	"fmt"
	"sort"

	"vsensor/internal/instrument"
	"vsensor/internal/ir"
	"vsensor/internal/vm"
)

// SensorStats is the validation result for one sensor on one rank.
type SensorStats struct {
	Sensor     int
	Rank       int
	Executions int
	MinInstr   int64
	MaxInstr   int64
}

// Ps returns the per-sensor-per-rank max/min instruction ratio.
func (s SensorStats) Ps() float64 {
	if s.MinInstr <= 0 {
		return 1
	}
	return float64(s.MaxInstr) / float64(s.MinInstr)
}

// Result aggregates a validation pass.
type Result struct {
	PerSensor []SensorStats

	// Pm is the maximum Ps over all computation sensors and ranks; the
	// workload max error of Table 1 is Pm - 1.
	Pm float64

	// NetFixed reports whether every network sensor's event sizes were
	// constant. With the simulated runtime message sizes are recorded
	// exactly, so this should always hold for identified sensors.
	NetFixed bool

	// Violations lists sensors whose instruction counts varied more than
	// the tolerance allows.
	Violations []SensorStats
}

// WorkloadMaxError returns Pm - 1 (Table 1's column).
func (r *Result) WorkloadMaxError() float64 { return r.Pm - 1 }

// Records validates raw sensor records against the instrumented sensor set.
// tolerance bounds the acceptable Ps (e.g. 1.02 with 0.5% PMU jitter:
// worst case ~1.01 both ways); computation sensors exceeding it are
// reported as violations.
func Records(ins *instrument.Instrumented, records []vm.Record, tolerance float64) *Result {
	if tolerance <= 0 {
		tolerance = 1.02
	}
	compSensor := make(map[int]bool)
	for _, s := range ins.Sensors {
		if s.Type == ir.Computation {
			compSensor[s.ID] = true
		}
	}

	type key struct{ sensor, rank int }
	agg := make(map[key]*SensorStats)
	for _, rec := range records {
		if !compSensor[rec.Sensor] || rec.Instr <= 0 {
			continue
		}
		k := key{rec.Sensor, rec.Rank}
		st := agg[k]
		if st == nil {
			st = &SensorStats{Sensor: rec.Sensor, Rank: rec.Rank, MinInstr: rec.Instr, MaxInstr: rec.Instr}
			agg[k] = st
		}
		st.Executions++
		if rec.Instr < st.MinInstr {
			st.MinInstr = rec.Instr
		}
		if rec.Instr > st.MaxInstr {
			st.MaxInstr = rec.Instr
		}
	}

	res := &Result{Pm: 1, NetFixed: true}
	keys := make([]key, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sensor != keys[j].sensor {
			return keys[i].sensor < keys[j].sensor
		}
		return keys[i].rank < keys[j].rank
	})
	for _, k := range keys {
		st := *agg[k]
		res.PerSensor = append(res.PerSensor, st)
		if st.Executions < 2 {
			continue
		}
		if ps := st.Ps(); ps > res.Pm {
			res.Pm = ps
		}
		if st.Ps() > tolerance {
			res.Violations = append(res.Violations, st)
		}
	}
	return res
}

// NetSizes validates network sensors from runtime events: for every network
// operation inside an identified network sensor, the byte count must be
// constant per (sensor-site, rank). The simulated runtime exposes events
// per MPI op; this helper checks size constancy per (op, rank) as the paper
// did by "recording their message sizes".
func NetSizes(events []vm.Event) (fixed bool, violations []string) {
	type key struct {
		rank int
		op   string
	}
	sizes := make(map[key]int64)
	seen := make(map[key]bool)
	keys := make([]key, 0)
	for _, e := range events {
		if e.Kind != vm.EvNet {
			continue
		}
		k := key{e.Rank, e.Op}
		if !seen[k] {
			seen[k] = true
			sizes[k] = e.Bytes
			keys = append(keys, k)
			continue
		}
		if sizes[k] != e.Bytes && sizes[k] >= 0 {
			sizes[k] = -1 // mark varying
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rank != keys[j].rank {
			return keys[i].rank < keys[j].rank
		}
		return keys[i].op < keys[j].op
	})
	fixed = true
	for _, k := range keys {
		if sizes[k] == -1 {
			fixed = false
			violations = append(violations, fmt.Sprintf("rank %d %s", k.rank, k.op))
		}
	}
	return fixed, violations
}
