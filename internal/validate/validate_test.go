package validate

import (
	"sync"
	"testing"

	"vsensor/internal/analysis"
	"vsensor/internal/instrument"
	"vsensor/internal/ir"
	"vsensor/internal/minic"
	"vsensor/internal/vm"
)

func buildIns(t *testing.T, src string) *instrument.Instrumented {
	t.Helper()
	prog, err := ir.Build(minic.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return instrument.Apply(analysis.Analyze(prog), instrument.Config{})
}

const validSrc = `
func main() {
    for (int n = 0; n < 10; n++) {
        for (int k = 0; k < 5; k++) {
            flops(100);
        }
        mpi_allreduce(64, 1.0);
    }
}`

func TestRecordsCleanValidation(t *testing.T) {
	ins := buildIns(t, validSrc)
	var compID = -1
	for _, s := range ins.Sensors {
		if s.Type == ir.Computation {
			compID = s.ID
		}
	}
	if compID < 0 {
		t.Fatal("no computation sensor")
	}
	var recs []vm.Record
	for rank := 0; rank < 2; rank++ {
		for i := 0; i < 10; i++ {
			recs = append(recs, vm.Record{Sensor: compID, Rank: rank, Instr: 500})
		}
	}
	res := Records(ins, recs, 1.02)
	if res.Pm != 1 || res.WorkloadMaxError() != 0 {
		t.Errorf("Pm = %v", res.Pm)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations = %+v", res.Violations)
	}
	if len(res.PerSensor) != 2 {
		t.Errorf("per-sensor entries = %d", len(res.PerSensor))
	}
}

func TestRecordsDetectsJitterAndViolation(t *testing.T) {
	ins := buildIns(t, validSrc)
	compID := -1
	for _, s := range ins.Sensors {
		if s.Type == ir.Computation {
			compID = s.ID
		}
	}
	recs := []vm.Record{
		{Sensor: compID, Rank: 0, Instr: 1000},
		{Sensor: compID, Rank: 0, Instr: 1005}, // 0.5% jitter: fine
		{Sensor: compID, Rank: 1, Instr: 1000},
		{Sensor: compID, Rank: 1, Instr: 1500}, // 50%: a violation
	}
	res := Records(ins, recs, 1.02)
	if res.Pm < 1.49 || res.Pm > 1.51 {
		t.Errorf("Pm = %v", res.Pm)
	}
	if len(res.Violations) != 1 || res.Violations[0].Rank != 1 {
		t.Errorf("violations = %+v", res.Violations)
	}
}

func TestRecordsIgnoresNetworkSensors(t *testing.T) {
	ins := buildIns(t, validSrc)
	netID := -1
	for _, s := range ins.Sensors {
		if s.Type == ir.Network {
			netID = s.ID
		}
	}
	recs := []vm.Record{
		{Sensor: netID, Rank: 0, Instr: 2},
		{Sensor: netID, Rank: 0, Instr: 3}, // tiny counts: excluded
	}
	res := Records(ins, recs, 1.02)
	if res.Pm != 1 || len(res.PerSensor) != 0 {
		t.Errorf("network sensor leaked into PMU validation: %+v", res)
	}
}

func TestNetSizes(t *testing.T) {
	fixed, v := NetSizes([]vm.Event{
		{Rank: 0, Kind: vm.EvNet, Op: "mpi_send", Bytes: 4096},
		{Rank: 0, Kind: vm.EvNet, Op: "mpi_send", Bytes: 4096},
		{Rank: 0, Kind: vm.EvIO, Op: "io_write", Bytes: 1}, // ignored
		{Rank: 1, Kind: vm.EvNet, Op: "mpi_send", Bytes: 8192},
	})
	if !fixed || len(v) != 0 {
		t.Errorf("fixed=%v v=%v", fixed, v)
	}
	fixed, v = NetSizes([]vm.Event{
		{Rank: 0, Kind: vm.EvNet, Op: "mpi_send", Bytes: 4096},
		{Rank: 0, Kind: vm.EvNet, Op: "mpi_send", Bytes: 5000},
	})
	if fixed || len(v) != 1 {
		t.Errorf("varying sizes not flagged: fixed=%v v=%v", fixed, v)
	}
}

// End-to-end: a real run through the VM validates clean with jitter inside
// tolerance.
func TestEndToEndValidation(t *testing.T) {
	ins := buildIns(t, validSrc)
	type collector struct {
		mu   sync.Mutex
		recs []vm.Record
	}
	col := &collector{}
	m := vm.NewInstrumented(ins, vm.Config{
		Ranks:        2,
		PMUJitterPct: 0.005,
		SinkFactory: func(int) vm.Sink {
			return sinkFunc(func(r vm.Record) {
				col.mu.Lock()
				col.recs = append(col.recs, r)
				col.mu.Unlock()
			})
		},
	})
	if err := m.Run().Err(); err != nil {
		t.Fatal(err)
	}
	res := Records(ins, col.recs, 1.02)
	if len(res.Violations) != 0 {
		t.Errorf("violations on a clean run: %+v", res.Violations)
	}
	if res.Pm <= 1.0 {
		t.Errorf("jitter should produce Pm > 1: %v", res.Pm)
	}
	// 2x jitter plus integer-rounding slack on few-hundred-instruction
	// counts.
	if res.WorkloadMaxError() > 0.013 {
		t.Errorf("workload error %v exceeds 2x jitter + rounding", res.WorkloadMaxError())
	}
}

type sinkFunc func(vm.Record)

func (f sinkFunc) OnRecord(r vm.Record) { f(r) }
