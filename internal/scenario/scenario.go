// Package scenario codifies the paper's evaluation scenarios — the case
// studies of §6.4-6.5 and generic variance injections — as reusable,
// parameterized configurations. A scenario pairs a workload with a cluster
// shape and an injection plan, so examples, experiments, and user code can
// reproduce a situation ("CG on 256 ranks with one slow-memory node") in
// one call instead of re-encoding the setup.
package scenario

import (
	"fmt"
	"sort"

	"vsensor/internal/apps"
	"vsensor/internal/cluster"
	"vsensor/internal/transport"
)

// Injection plans variance relative to the expected run length: fractions
// of the clean run's total time, resolved to absolute virtual times once
// the baseline duration is known.
type Injection struct {
	Kind InjectionKind

	// Node is the target node for node-scoped injections.
	Node int

	// Factor is the performance multiplier (e.g. 0.55 = 55% of nominal).
	Factor float64

	// StartFrac/EndFrac bound windowed injections as fractions of the
	// clean run time; EndFrac > 1 extends past the expected end (the
	// congested run grows). Both zero means the whole run.
	StartFrac, EndFrac float64

	// Period/Duration configure OS noise (absolute nanoseconds).
	Period, Duration int64
}

// InjectionKind enumerates supported variance injections.
type InjectionKind int

// Injection kinds.
const (
	// BadNodeMemory permanently degrades one node's memory (Fig. 21).
	BadNodeMemory InjectionKind = iota
	// BadNodeCPU permanently degrades one node's CPU.
	BadNodeCPU
	// NodeCPUWindow slows one node's CPUs during the window (Figs. 18-20).
	NodeCPUWindow
	// NetworkWindow degrades the interconnect during the window (Fig. 22).
	NetworkWindow
	// IOWindow degrades the shared filesystem during the window.
	IOWindow
	// OSNoise enables periodic kernel noise on every node (Fig. 12).
	OSNoise
)

// String names the injection kind.
func (k InjectionKind) String() string {
	switch k {
	case BadNodeMemory:
		return "bad-node-memory"
	case BadNodeCPU:
		return "bad-node-cpu"
	case NodeCPUWindow:
		return "node-cpu-window"
	case NetworkWindow:
		return "network-window"
	case IOWindow:
		return "io-window"
	case OSNoise:
		return "os-noise"
	}
	return "?"
}

// Scenario is a reproducible experimental situation.
type Scenario struct {
	Name         string
	Description  string
	App          string
	Scale        apps.Scale
	Ranks        int
	RanksPerNode int
	Injections   []Injection

	// Faults, when non-nil, routes the record path through the lossy
	// transport link (internal/transport) with this plan — variance
	// injection on the *monitoring pipeline itself* rather than the
	// application's compute or network. The detection must survive it.
	Faults *transport.FaultPlan
}

// Cluster builds the scenario's cluster with injections applied.
// baselineNs is the clean run's total time, used to resolve window
// fractions; pass 0 when the scenario has no windowed injections.
func (s *Scenario) Cluster(baselineNs int64) (*cluster.Cluster, error) {
	rpn := s.RanksPerNode
	if rpn <= 0 {
		rpn = 8
	}
	nodes := (s.Ranks + rpn - 1) / rpn
	if nodes < 1 {
		nodes = 1
	}
	cl := cluster.New(cluster.Config{Nodes: nodes, RanksPerNode: rpn})
	for _, inj := range s.Injections {
		if err := apply(cl, inj, nodes, baselineNs); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	return cl, nil
}

// CleanCluster builds the scenario's cluster shape without any injections,
// for baseline runs.
func (s *Scenario) CleanCluster() (*cluster.Cluster, error) {
	clean := *s
	clean.Injections = nil
	return clean.Cluster(0)
}

// Source builds the scenario's program.
func (s *Scenario) Source() (string, error) {
	app, err := apps.Get(s.App, s.Scale)
	if err != nil {
		return "", err
	}
	return app.Source, nil
}

// NeedsBaseline reports whether the scenario has windowed injections that
// require a clean-run duration to resolve.
func (s *Scenario) NeedsBaseline() bool {
	for _, inj := range s.Injections {
		switch inj.Kind {
		case NodeCPUWindow, NetworkWindow, IOWindow:
			return true
		}
	}
	return false
}

func apply(cl *cluster.Cluster, inj Injection, nodes int, baselineNs int64) error {
	if inj.Node < 0 || inj.Node >= nodes {
		switch inj.Kind {
		case BadNodeMemory, BadNodeCPU, NodeCPUWindow:
			return fmt.Errorf("injection %s: node %d out of range [0,%d)", inj.Kind, inj.Node, nodes)
		}
	}
	start, end := window(inj, baselineNs)
	switch inj.Kind {
	case BadNodeMemory:
		cl.SetNodeMemSpeed(inj.Node, inj.Factor)
	case BadNodeCPU:
		cl.SetNodeCPUSpeed(inj.Node, inj.Factor)
	case NodeCPUWindow:
		cl.AddCPUNoise(inj.Node, start, end, inj.Factor)
	case NetworkWindow:
		cl.AddNetWindow(start, end, inj.Factor)
	case IOWindow:
		cl.AddIOWindow(start, end, inj.Factor)
	case OSNoise:
		cl.SetOSNoise(inj.Period, inj.Duration, inj.Factor)
	default:
		return fmt.Errorf("unknown injection kind %d", inj.Kind)
	}
	return nil
}

func window(inj Injection, baselineNs int64) (int64, int64) {
	if inj.StartFrac == 0 && inj.EndFrac == 0 {
		return 0, int64(1) << 62
	}
	start := int64(inj.StartFrac * float64(baselineNs))
	end := int64(inj.EndFrac * float64(baselineNs))
	if end <= start {
		end = int64(1) << 62
	}
	return start, end
}

// ---------- registry: the paper's case studies ----------

var registry = map[string]*Scenario{
	"badnode-cg": {
		Name:        "badnode-cg",
		Description: "Fig. 21: CG with one slow-memory node (55% of nominal)",
		App:         "CG", Scale: apps.Scale{Iters: 100, Work: 100},
		Ranks: 256, RanksPerNode: 8,
		Injections: []Injection{{Kind: BadNodeMemory, Node: 16, Factor: 0.55}},
	},
	"congestion-ft": {
		Name:        "congestion-ft",
		Description: "Fig. 22: FT under a persistent mid-run network degradation",
		App:         "FT", Scale: apps.Scale{Iters: 50, Work: 40},
		Ranks: 1024, RanksPerNode: 16,
		Injections: []Injection{{Kind: NetworkWindow, Factor: 0.25, StartFrac: 0.2, EndFrac: 100}},
	},
	"noiseinject-cg": {
		Name:        "noiseinject-cg",
		Description: "Figs. 18-20: CG with two CPU-noise windows on rank blocks",
		App:         "CG", Scale: apps.Scale{Iters: 200, Work: 150},
		Ranks: 128, RanksPerNode: 8,
		Injections: []Injection{
			{Kind: NodeCPUWindow, Node: 3, Factor: 0.3, StartFrac: 0.25, EndFrac: 0.42},
			{Kind: NodeCPUWindow, Node: 4, Factor: 0.3, StartFrac: 0.25, EndFrac: 0.42},
			{Kind: NodeCPUWindow, Node: 5, Factor: 0.3, StartFrac: 0.25, EndFrac: 0.42},
			{Kind: NodeCPUWindow, Node: 9, Factor: 0.3, StartFrac: 0.66, EndFrac: 0.83},
			{Kind: NodeCPUWindow, Node: 10, Factor: 0.3, StartFrac: 0.66, EndFrac: 0.83},
			{Kind: NodeCPUWindow, Node: 11, Factor: 0.3, StartFrac: 0.66, EndFrac: 0.83},
		},
	},
	"osnoise-cg": {
		Name:        "osnoise-cg",
		Description: "Fig. 12 backdrop: CG under periodic kernel noise",
		App:         "CG", Scale: apps.Scale{Iters: 60, Work: 60},
		Ranks: 16, RanksPerNode: 8,
		Injections: []Injection{{Kind: OSNoise, Period: 100_000, Duration: 10_000, Factor: 0.3}},
	},
	"iostorm-btio": {
		Name:        "iostorm-btio",
		Description: "shared-filesystem degradation during BT-IO's checkpointing",
		App:         "BTIO", Scale: apps.Scale{Iters: 60, Work: 60},
		Ranks: 32, RanksPerNode: 8,
		Injections: []Injection{{Kind: IOWindow, Factor: 0.15, StartFrac: 0.3, EndFrac: 0.7}},
	},
	"lossylink-cg": {
		Name: "lossylink-cg",
		Description: "CG with one slow-memory node *and* a lossy record link " +
			"(drops, duplicates, reordering, corruption, one server crash-restart): " +
			"detection must still localize the bad node on a flaky monitoring path",
		App:   "CG",
		Scale: apps.Scale{Iters: 60, Work: 80},
		Ranks: 64, RanksPerNode: 8,
		Injections: []Injection{{Kind: BadNodeMemory, Node: 3, Factor: 0.55}},
		Faults: &transport.FaultPlan{
			Seed: 7, Drop: 0.2, Dup: 0.08, Reorder: 0.1, Corrupt: 0.03,
			DelayNs: 5_000, CrashAfterFrames: 40, CrashDownFrames: 15,
		},
	},
}

// Names lists registered scenarios.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns a copy of the named scenario.
func Get(name string) (*Scenario, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown %q (have %v)", name, Names())
	}
	cp := *s
	cp.Injections = append([]Injection(nil), s.Injections...)
	if s.Faults != nil {
		f := *s.Faults
		cp.Faults = &f
	}
	return &cp, nil
}
