package scenario

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("scenarios = %v", names)
	}
	for _, n := range names {
		s, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Description == "" || s.Ranks <= 0 {
			t.Errorf("%s: incomplete metadata %+v", n, s)
		}
		if _, err := s.Source(); err != nil {
			t.Errorf("%s: source: %v", n, err)
		}
	}
	if _, err := Get("no-such"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Error("unknown scenario accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	a, _ := Get("badnode-cg")
	a.Injections[0].Factor = 0.01
	b, _ := Get("badnode-cg")
	if b.Injections[0].Factor == 0.01 {
		t.Error("Get leaked shared injection slice")
	}
}

func TestBadNodeCluster(t *testing.T) {
	s, _ := Get("badnode-cg")
	cl, err := s.Cluster(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.NeedsBaseline() {
		t.Error("permanent injection should not need a baseline")
	}
	// Node 16 hosts ranks 128..135 at 8 rpn.
	if cl.MemFactor(130, 0) != 0.55 {
		t.Errorf("bad node mem factor = %v", cl.MemFactor(130, 0))
	}
	if cl.MemFactor(0, 0) != 1.0 {
		t.Error("other nodes affected")
	}
}

func TestWindowedCluster(t *testing.T) {
	s, _ := Get("congestion-ft")
	if !s.NeedsBaseline() {
		t.Error("windowed injection should need a baseline")
	}
	cl, err := s.Cluster(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if cl.NetFactor(100_000) != 1.0 {
		t.Error("before window")
	}
	if cl.NetFactor(300_000) != 0.25 {
		t.Errorf("inside window: %v", cl.NetFactor(300_000))
	}
	// EndFrac 100 => extends far beyond the baseline.
	if cl.NetFactor(50_000_000) != 0.25 {
		t.Error("persistent window should extend")
	}
}

func TestOSNoiseCluster(t *testing.T) {
	s, _ := Get("osnoise-cg")
	cl, err := s.Cluster(0)
	if err != nil {
		t.Fatal(err)
	}
	if cl.CPUFactor(0, 5_000) != 0.3 {
		t.Error("noise slice missing")
	}
	if cl.CPUFactor(0, 50_000) != 1.0 {
		t.Error("noise outside slice")
	}
}

func TestInjectionValidation(t *testing.T) {
	s := &Scenario{
		Name: "bad", App: "CG", Ranks: 8, RanksPerNode: 8,
		Injections: []Injection{{Kind: BadNodeMemory, Node: 42, Factor: 0.5}},
	}
	if _, err := s.Cluster(0); err == nil {
		t.Error("out-of-range node accepted")
	}
	s.Injections[0].Kind = InjectionKind(99)
	s.Injections[0].Node = 0
	if _, err := s.Cluster(0); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestKindNames(t *testing.T) {
	for k := BadNodeMemory; k <= OSNoise; k++ {
		if k.String() == "?" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}
