package minic

import "strconv"

// Parser is a recursive-descent parser for mini-C.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses src into a Program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{Source: src}
	for p.cur().Kind != EOF {
		switch p.cur().Kind {
		case KwGlobal:
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case KwFunc:
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, errf(p.cur().Pos, "expected 'global' or 'func' at top level, got %s", p.cur())
		}
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded apps.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) expect(k Kind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, errf(p.cur().Pos, "expected %s, got %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) parseType() (Type, error) {
	switch p.cur().Kind {
	case KwInt:
		p.next()
		return TypeInt, nil
	case KwFloat:
		p.next()
		return TypeFloat, nil
	case KwVoid:
		p.next()
		return TypeVoid, nil
	}
	return TypeVoid, errf(p.cur().Pos, "expected type, got %s", p.cur())
}

// global int NAME = expr;   global float A[expr];
func (p *Parser) parseGlobal() (*GlobalDecl, error) {
	if _, err := p.expect(KwGlobal); err != nil {
		return nil, err
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if typ == TypeVoid {
		return nil, errf(p.cur().Pos, "global cannot be void")
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{NamePos: name.Pos, Name: name.Text, Type: typ}
	if p.accept(LBracket) {
		ln, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		g.Len = ln
		if typ == TypeInt {
			g.Type = TypeIntArray
		} else {
			g.Type = TypeFloatArray
		}
	} else if p.accept(Assign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		g.Init = init
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return g, nil
}

// func NAME(type a, type b) type { ... }   (return type optional => void)
func (p *Parser) parseFunc() (*FuncDecl, error) {
	kw, err := p.expect(KwFunc)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{FuncPos: kw.Pos, Name: name.Text, Ret: TypeVoid}
	for p.cur().Kind != RParen {
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if typ == TypeVoid {
			return nil, errf(p.cur().Pos, "parameter cannot be void")
		}
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.accept(LBracket) { // array parameter: int a[]
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			if typ == TypeInt {
				typ = TypeIntArray
			} else {
				typ = TypeFloatArray
			}
		}
		f.Params = append(f.Params, Param{NamePos: pn.Pos, Name: pn.Text, Type: typ})
		if !p.accept(Comma) {
			break
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if p.cur().Kind == KwInt || p.cur().Kind == KwFloat || p.cur().Kind == KwVoid {
		rt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		f.Ret = rt
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{LBrace: lb.Pos}
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, errf(lb.Pos, "unclosed block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // }
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case LBrace:
		return p.parseBlock()
	case KwInt, KwFloat:
		d, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return d, nil
	case KwIf:
		return p.parseIf()
	case KwFor:
		return p.parseFor()
	case KwWhile:
		return p.parseWhile()
	case KwReturn:
		kw := p.next()
		rs := &ReturnStmt{RetPos: kw.Pos}
		if p.cur().Kind != Semicolon {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.Value = v
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return rs, nil
	case KwBreak:
		kw := p.next()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{BrPos: kw.Pos}, nil
	case KwContinue:
		kw := p.next()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{CtPos: kw.Pos}, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// parseVarDecl parses "int x = e" / "float a[n]" without the semicolon.
func (p *Parser) parseVarDecl() (*VarDecl, error) {
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{NamePos: name.Pos, Name: name.Text, Type: typ}
	if p.accept(LBracket) {
		ln, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		d.Len = ln
		if typ == TypeInt {
			d.Type = TypeIntArray
		} else {
			d.Type = TypeFloatArray
		}
	} else if p.accept(Assign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

// parseSimpleStmt parses an assignment (with compound-op desugaring), an
// increment/decrement, or a call expression statement — without semicolon.
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	mkBin := func(op Kind, rhs Expr) Stmt {
		return &AssignStmt{Target: e, Value: &BinaryExpr{Op: op, X: e, Y: rhs}}
	}
	switch p.cur().Kind {
	case Assign:
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !isLvalue(e) {
			return nil, errf(e.Pos(), "cannot assign to this expression")
		}
		return &AssignStmt{Target: e, Value: rhs}, nil
	case PlusEq, MinusEq, StarEq, SlashEq:
		opTok := p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !isLvalue(e) {
			return nil, errf(e.Pos(), "cannot assign to this expression")
		}
		var op Kind
		switch opTok.Kind {
		case PlusEq:
			op = Plus
		case MinusEq:
			op = Minus
		case StarEq:
			op = Star
		case SlashEq:
			op = Slash
		}
		return mkBin(op, rhs), nil
	case PlusPlus:
		p.next()
		if !isLvalue(e) {
			return nil, errf(e.Pos(), "cannot increment this expression")
		}
		return mkBin(Plus, &IntLit{LitPos: e.Pos(), Value: 1}), nil
	case MinusMinus:
		p.next()
		if !isLvalue(e) {
			return nil, errf(e.Pos(), "cannot decrement this expression")
		}
		return mkBin(Minus, &IntLit{LitPos: e.Pos(), Value: 1}), nil
	}
	if _, ok := e.(*CallExpr); ok {
		return &ExprStmt{X: e}, nil
	}
	return nil, errf(e.Pos(), "expected assignment or call statement")
}

func isLvalue(e Expr) bool {
	switch e.(type) {
	case *Ident, *IndexExpr:
		return true
	}
	return false
}

func (p *Parser) parseIf() (Stmt, error) {
	kw := p.next() // if
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{IfPos: kw.Pos, Cond: cond, Then: then}
	if p.accept(KwElse) {
		if p.cur().Kind == KwIf {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	kw := p.next() // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	st := &ForStmt{ForPos: kw.Pos}
	if p.cur().Kind != Semicolon {
		if p.cur().Kind == KwInt || p.cur().Kind == KwFloat {
			d, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			st.Init = d
		} else {
			s, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			st.Init = s
		}
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.cur().Kind != Semicolon {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.cur().Kind != RParen {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw := p.next() // while
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{WhilePos: kw.Pos, Cond: cond, Body: body}, nil
}

// ---------- Expressions (precedence climbing) ----------

// Binding powers, loosest to tightest:
//
//	||  &&  (== !=)  (< > <= >=)  (+ -)  (* / %)  unary  primary
func binPrec(k Kind) int {
	switch k {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Eq, NotEq:
		return 3
	case Lt, Gt, LtEq, GtEq:
		return 4
	case Plus, Minus:
		return 5
	case Star, Slash, Percent:
		return 6
	}
	return 0
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec := binPrec(p.cur().Kind)
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Kind, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case Minus, Not:
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{OpPos: op.Pos, Op: op.Kind, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch t := p.cur(); t.Kind {
	case INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad integer literal %q", t.Text)
		}
		return &IntLit{LitPos: t.Pos, Value: v}, nil
	case FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float literal %q", t.Text)
		}
		return &FloatLit{LitPos: t.Pos, Value: v}, nil
	case STRING:
		p.next()
		return &StringLit{LitPos: t.Pos, Value: t.Text}, nil
	case IDENT:
		p.next()
		if p.cur().Kind == LParen { // call
			p.next()
			call := &CallExpr{NamePos: t.Pos, Name: t.Text}
			for p.cur().Kind != RParen {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(Comma) {
					break
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		id := &Ident{NamePos: t.Pos, Name: t.Text}
		if p.cur().Kind == LBracket { // index
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Array: id, Index: idx}, nil
		}
		return id, nil
	case LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(p.cur().Pos, "expected expression, got %s", p.cur())
}
