package minic

import "testing"

// FuzzParse checks the front end never panics on arbitrary input, and that
// accepted programs survive a print→parse round trip. Run with
// `go test -fuzz FuzzParse ./internal/minic` for coverage-guided fuzzing;
// plain `go test` exercises the seed corpus.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"func main() {}",
		"global int X = 1;\nfunc main() { X = X + 1; }",
		"func f(int a, float b[]) float { return b[a]; }",
		"func main() { for (int i = 0; i < 10; i++) { flops(i); } }",
		"func main() { while (1 < 2) { break; } }",
		"func main() { if (1 == 1) { } else if (2 > 1) { } else { } }",
		"func main() { print(\"s\", 1, 2.5); }",
		"func f() { /* comment */ // line\n }",
		"func main() { int a[10]; a[0] = -a[1] * (2 + 3) % 4; }",
		"global float Y[8];\nfunc main() { Y[7] = 1.0e-3; }",
		"func f() { x += 1; }",
		"func f() int { return 1 && 0 || !1; }",
		"}{)(", "func", "global global", "\"unterminated",
		"func main() { for (;;) { continue; } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out := Format(prog)
		prog2, err := Parse(out)
		if err != nil {
			t.Fatalf("accepted program failed to re-parse: %v\noriginal: %q\nprinted: %q", err, src, out)
		}
		if out2 := Format(prog2); out != out2 {
			t.Fatalf("printer not a fixed point:\n%q\nvs\n%q", out, out2)
		}
	})
}

// FuzzLex checks the lexer in isolation.
func FuzzLex(f *testing.F) {
	f.Add("int x = 1; // c")
	f.Add("\"str\\n\" 1.5e-3 <= >= != && ||")
	f.Add("/* unterminated")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != EOF {
			t.Fatalf("token stream not EOF-terminated: %v", toks)
		}
	})
}
