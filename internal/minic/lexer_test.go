package minic

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex("func main() { int x = 42; }")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwFunc, IDENT, LParen, RParen, LBrace, KwInt, IDENT, Assign, INT, Semicolon, RBrace, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "+ - * / % ++ -- += -= *= /= == != < > <= >= && || ! = ( ) { } [ ] , ;"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Plus, Minus, Star, Slash, Percent, PlusPlus, MinusMinus,
		PlusEq, MinusEq, StarEq, SlashEq, Eq, NotEq, Lt, Gt, LtEq, GtEq,
		AndAnd, OrOr, Not, Assign, LParen, RParen, LBrace, RBrace,
		LBracket, RBracket, Comma, Semicolon, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"0", INT},
		{"12345", INT},
		{"3.5", FLOAT},
		{"1e9", FLOAT},
		{"2.5e-3", FLOAT},
		{"1E+6", FLOAT},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if toks[0].Kind != c.kind || toks[0].Text != c.src {
			t.Errorf("%q: got %s %q", c.src, toks[0].Kind, toks[0].Text)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `// line comment
int /* block
comment */ x`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwInt, IDENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestLexPositions(t *testing.T) {
	src := "int\n  x = 1"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("int pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("x pos = %v", toks[1].Pos)
	}
	if toks[3].Pos != (Pos{2, 7}) {
		t.Errorf("1 pos = %v", toks[3].Pos)
	}
}

func TestLexString(t *testing.T) {
	toks, err := Lex(`print("a\n\"b\"")`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != STRING || toks[2].Text != "a\n\"b\"" {
		t.Errorf("got %q", toks[2].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", `"unterminated`, "/* open", `"bad \q esc"`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("Lex(%q): error lacks position: %v", src, err)
		}
	}
}

func TestPosHelpers(t *testing.T) {
	a, b := Pos{1, 5}, Pos{2, 1}
	if !a.Before(b) || b.Before(a) {
		t.Error("Before ordering wrong across lines")
	}
	c := Pos{1, 9}
	if !a.Before(c) {
		t.Error("Before ordering wrong within line")
	}
	if (Pos{}).Valid() || !a.Valid() {
		t.Error("Valid wrong")
	}
	if a.String() != "1:5" {
		t.Errorf("String = %s", a)
	}
}
